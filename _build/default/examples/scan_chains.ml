(* Scan compatibility (§2) in action: registers in different scan
   partitions never merge; members of an ordered scan section merge only
   together, and the MBR's internal chain preserves the section order.

   Run with: dune exec examples/scan_chains.exe *)

module Compat = Mbr_core.Compat
module Compose = Mbr_core.Compose
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Cell_lib = Mbr_liberty.Cell
module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement

let lib = Presets.default ()

let sdffr1 = Library.find lib "SDFFR1_X1"

let info cid ~partition ~section x =
  let footprint = Rect.make ~lx:x ~ly:0.0 ~hx:(x +. 2.0) ~hy:1.2 in
  Compat.
    {
      cid;
      bits = 1;
      func_class = "sdffr";
      clock = 0;
      enable = None;
      reset = Some 1;
      scan = Some Types.{ partition; section };
      drive_res = 2.0;
      d_slack = 50.0;
      q_slack = 50.0;
      footprint;
      feasible = Rect.expand footprint 20.0;
      center = Rect.center footprint;
    }

let yesno b = if b then "YES" else "no"

let () =
  print_endline "=== scan compatibility rules (paper section 2) ===";
  let a = info 0 ~partition:0 ~section:None 0.0 in
  let b = info 1 ~partition:0 ~section:None 4.0 in
  let c = info 2 ~partition:1 ~section:None 8.0 in
  Printf.printf "same partition, free order      -> compatible: %s\n"
    (yesno (Compat.scan_compatible a b));
  Printf.printf "different scan partitions       -> compatible: %s\n"
    (yesno (Compat.scan_compatible a c));
  let s10 = info 3 ~partition:0 ~section:(Some (1, 0)) 12.0 in
  let s15 = info 4 ~partition:0 ~section:(Some (1, 5)) 16.0 in
  let s20 = info 5 ~partition:0 ~section:(Some (2, 0)) 20.0 in
  Printf.printf "same ordered section            -> compatible: %s\n"
    (yesno (Compat.scan_compatible s10 s15));
  Printf.printf "different ordered sections      -> compatible: %s\n"
    (yesno (Compat.scan_compatible s10 s20));
  Printf.printf "ordered vs free                 -> compatible: %s\n"
    (yesno (Compat.scan_compatible s10 a));

  print_endline "\n=== merging an ordered section preserves scan order ===";
  (* two scan registers placed in REVERSE of their scan order: the MBR's
     internal chain must still follow the section positions *)
  let d = Design.create ~name:"scan_demo" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let _ = Design.add_clock_root d "uclk" clk in
  let rst = Design.add_net d "rst" in
  let se = Design.add_net d "se" in
  let core = Rect.make ~lx:0.0 ~ly:0.0 ~hx:40.0 ~hy:40.0 in
  let pl = Placement.create (Floorplan.make ~core ~row_height:1.2 ~site_width:0.2) d in
  let mk name pos x =
    let dnet = Design.add_net d (name ^ "_d") in
    let _ = Design.add_port d (name ^ "_pi") Types.In_port dnet in
    (match Design.find_cell d (name ^ "_pi") with
    | Some p -> Placement.set pl p (Point.make x 0.0)
    | None -> ());
    let attrs =
      Types.
        {
          lib_cell = sdffr1;
          fixed = false;
          size_only = false;
          scan = Some { partition = 0; section = Some (7, pos) };
          gate_enable = None;
        }
    in
    let conn =
      {
        Design.d_nets = [| Some dnet |];
        q_nets = [| None |];
        clock = clk;
        reset = Some rst;
        scan_enable = Some se;
        scan_ins = [];
        scan_outs = [];
      }
    in
    let r = Design.add_register d name attrs conn in
    Placement.set pl r (Point.make x 2.4);
    (r, dnet)
  in
  let r_first, net_first = mk "scan_pos0" 0 20.0 (* scan-first, placed right *) in
  let r_second, net_second = mk "scan_pos1" 1 5.0 (* scan-second, placed left *) in
  let cell2 = Library.find lib "SDFFR2_X1" in
  let id =
    Compose.execute pl
      { Compose.member_cids = [ r_second; r_first ]; cell = cell2;
        corner = Point.make 10.0 2.4 }
  in
  let net_of_bit bit =
    match Design.pin_of d id (Types.Pin_d bit) with
    | Some pid -> (Design.pin d pid).Types.p_net
    | None -> None
  in
  Printf.printf "bit 0 carries the section-position-0 register: %s\n"
    (yesno (net_of_bit 0 = Some net_first));
  Printf.printf "bit 1 carries the section-position-1 register: %s\n"
    (yesno (net_of_bit 1 = Some net_second));
  (match (Design.reg_attrs d id).Types.scan with
  | Some s ->
    Printf.printf "merged MBR stays in partition %d, section %s\n" s.Types.partition
      (match s.Types.section with
      | Some (sec, pos) -> Printf.sprintf "%d (position %d)" sec pos
      | None -> "-")
  | None -> print_endline "unexpected: scan info lost");
  Printf.printf "netlist still valid: %s\n"
    (yesno (Design.validate d = []))
