(* A full incremental MBR-composition run (the Fig. 4 flow) on a
   synthetic SoC block — the same machinery the Table 1 benchmark uses,
   on one design, with a readable report.

   Run with: dune exec examples/soc_block.exe *)

module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile
module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module Design = Mbr_netlist.Design
module Texttab = Mbr_util.Texttab
module Stats = Mbr_util.Stats

let () =
  let profile = P.scaled P.d1 0.5 in
  Printf.printf "generating a %d-register SoC block (profile %s, seed fixed)...\n%!"
    profile.P.n_registers profile.P.name;
  let g = G.generate profile in
  Printf.printf "  %d cells, %d nets, utilization %.0f%%\n\n%!"
    (Design.n_cells g.G.design) (Design.n_nets g.G.design)
    (100.0 *. Mbr_place.Placement.utilization g.G.placement);

  Printf.printf "running MBR composition (compatibility -> K-partition -> ILP\n";
  Printf.printf "-> mapping -> LP placement -> useful skew -> sizing)...\n%!";
  let r =
    Flow.run ~design:g.G.design ~placement:g.G.placement ~library:g.G.library
      ~sta_config:g.G.sta_config ()
  in
  Printf.printf "  %d MBRs created from %d registers (%d incomplete, %d resized)\n"
    r.Flow.n_merges r.Flow.n_regs_merged r.Flow.n_incomplete r.Flow.n_resized;
  Printf.printf "  %d blocks, %d candidates, all ILPs optimal: %b, %.1f s\n\n"
    r.Flow.n_blocks r.Flow.n_candidates r.Flow.all_optimal r.Flow.runtime_s;

  let b = r.Flow.before and a = r.Flow.after in
  let tab = Texttab.create ~headers:[ "metric"; "before"; "after"; "save" ] in
  let rowi name get =
    Texttab.add_row tab
      [
        name;
        Texttab.fmt_int (get b);
        Texttab.fmt_int (get a);
        Texttab.fmt_pct
          (Stats.pct_change (float_of_int (get b)) (float_of_int (get a)));
      ]
  in
  let rowf ?(dec = 1) name get =
    Texttab.add_row tab
      [
        name;
        Texttab.fmt_float ~dec (get b);
        Texttab.fmt_float ~dec (get a);
        Texttab.fmt_pct (Stats.pct_change (get b) (get a));
      ]
  in
  rowi "total registers" (fun m -> m.Metrics.total_regs);
  rowi "composable registers" (fun m -> m.Metrics.comp_regs);
  rowf "clock capacitance (fF)" (fun m -> m.Metrics.clk_cap);
  rowi "clock buffers" (fun m -> m.Metrics.clk_bufs);
  rowf "clock wirelength (um)" (fun m -> m.Metrics.clk_wl);
  rowf "signal wirelength (um)" (fun m -> m.Metrics.other_wl);
  rowf "cell area (um^2)" (fun m -> m.Metrics.area);
  rowf "TNS (ps)" (fun m -> m.Metrics.tns);
  rowi "failing endpoints" (fun m -> m.Metrics.failing);
  rowi "overflow edges" (fun m -> m.Metrics.ovfl);
  Texttab.print tab;

  (match r.Flow.skew_report with
  | Some s ->
    Printf.printf
      "\nuseful skew: wns %.1f -> %.1f ps, tns %.1f -> %.1f ps (max |skew| %.1f ps)\n"
      s.Mbr_sta.Skew.wns_before s.Mbr_sta.Skew.wns_after s.Mbr_sta.Skew.tns_before
      s.Mbr_sta.Skew.tns_after s.Mbr_sta.Skew.max_abs_skew
  | None -> ());

  Printf.printf "\nstage breakdown: %s\n"
    (String.concat ", "
       (List.filter_map
          (fun (name, t) ->
            if t >= 0.01 then Some (Printf.sprintf "%s %.2fs" name t) else None)
          r.Flow.stage_times));

  Printf.printf "\nMBR width histogram (Fig. 5 view):\n";
  List.iter
    (fun (w, n) -> Printf.printf "  %d-bit: %d\n" w n)
    (G.width_histogram g.G.design)
