examples/soc_block.ml: List Mbr_core Mbr_designgen Mbr_netlist Mbr_place Mbr_sta Mbr_util Printf String
