examples/useful_skew.ml: Mbr_core Mbr_designgen Mbr_geom Mbr_sta Printf
