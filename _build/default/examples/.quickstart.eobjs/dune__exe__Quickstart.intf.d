examples/quickstart.mli:
