examples/scan_chains.ml: Mbr_core Mbr_geom Mbr_liberty Mbr_netlist Mbr_place Printf
