examples/soc_block.mli:
