examples/incomplete_mbrs.mli:
