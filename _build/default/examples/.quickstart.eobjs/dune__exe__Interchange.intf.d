examples/interchange.mli:
