examples/quickstart.ml: Array List Mbr_core Mbr_graph Mbr_netlist Mbr_util Printf String
