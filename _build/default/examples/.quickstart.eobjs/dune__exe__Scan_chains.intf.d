examples/scan_chains.mli:
