examples/useful_skew.mli:
