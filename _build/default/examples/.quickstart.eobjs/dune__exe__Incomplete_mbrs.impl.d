examples/incomplete_mbrs.ml: List Mbr_core Mbr_designgen Mbr_liberty Mbr_util Printf
