examples/interchange.ml: Float List Mbr_core Mbr_designgen Mbr_export Mbr_liberty Mbr_netlist Mbr_place Mbr_sta Printf String
