(* Incomplete MBRs (§3): when a clique's bit total misses every library
   width, it can round up to the next width and leave D/Q pairs
   unconnected — if the area rule allows. This example sweeps the
   area-overhead knob on a design and shows the effect on register count
   and area, and demonstrates why the rule exists.

   Run with: dune exec examples/incomplete_mbrs.exe *)

module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile
module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module Allocate = Mbr_core.Allocate
module Candidate = Mbr_core.Candidate
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Cell_lib = Mbr_liberty.Cell
module Texttab = Mbr_util.Texttab

let run_with overhead allow =
  let g = G.generate (P.tiny ~seed:909) in
  let options =
    {
      Flow.default_options with
      Flow.allocate =
        {
          Allocate.default_config with
          Allocate.candidate =
            {
              Candidate.default_config with
              Candidate.allow_incomplete = allow;
              incomplete_area_overhead = overhead;
            };
        };
    }
  in
  let r =
    Flow.run ~options ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  (r.Flow.after.Metrics.total_regs, r.Flow.n_incomplete, r.Flow.after.Metrics.area)

let () =
  print_endline "=== why incomplete MBRs? library-width granularity ===";
  let lib = Presets.default () in
  List.iter
    (fun bits ->
      match Library.smallest_width_geq lib ~func_class:"dff" bits with
      | Some w when w = bits -> Printf.printf "%d bits -> exact %d-bit cell\n" bits w
      | Some w ->
        let cell8 = Library.find lib (Printf.sprintf "DFF%d_X1" w) in
        let members = float_of_int bits *. (Library.find lib "DFF1_X1").Cell_lib.area in
        Printf.printf
          "%d bits -> incomplete %d-bit cell (cell %.1f um2 vs %.1f um2 replaced: %+.0f%%)\n"
          bits w cell8.Cell_lib.area members
          ((cell8.Cell_lib.area -. members) /. members *. 100.0)
      | None -> Printf.printf "%d bits -> no cell wide enough\n" bits)
    [ 3; 5; 6; 7; 8 ];
  print_endline
    "\nonly near-full incompletes pay off: the area rule (<= 5% overhead in\n\
     the paper's experiments) admits 7-in-8 but rejects 3-in-4 or 5-in-8.";

  print_endline "\n=== sweep: incomplete-MBR area-overhead budget ===";
  let tab =
    Texttab.create ~headers:[ "setting"; "final regs"; "incomplete MBRs"; "area (um^2)" ]
  in
  let row label (regs, inc, area) =
    Texttab.add_row tab
      [ label; string_of_int regs; string_of_int inc; Texttab.fmt_float ~dec:0 area ]
  in
  row "disabled" (run_with 0.05 false);
  row "overhead 0%" (run_with 0.0 true);
  row "overhead 5% (paper)" (run_with 0.05 true);
  row "overhead 25%" (run_with 0.25 true);
  row "overhead 100%" (run_with 1.0 true);
  Texttab.print tab;
  print_endline
    "\nlooser budgets buy a few more merges but pay area for dark bits —\n\
     exactly the trade-off the paper's rule caps at 5%."
