(* Interchange: save a design as Liberty + structural Verilog + DEF,
   reload it from the text, and verify the reloaded copy times and
   composes identically — the workflow an adopter with an existing
   netlist would follow (see also `mbrc export` / `mbrc compose`).

   Run with: dune exec examples/interchange.exe *)

module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile
module Design = Mbr_netlist.Design
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module Verilog = Mbr_export.Verilog
module Def = Mbr_export.Def
module Liberty_io = Mbr_liberty.Liberty_io

let count_lines s =
  List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' s))

let () =
  let g = G.generate (P.tiny ~seed:2468) in
  Printf.printf "original: %d cells, %d nets, %d registers\n\n"
    (Design.n_cells g.G.design) (Design.n_nets g.G.design)
    (List.length (Design.registers g.G.design));

  print_endline "=== save: three industry-format views of the design ===";
  let lib_text =
    Liberty_io.to_liberty ~name:"demo28" ~gates:(G.gate_cells ()) g.G.library
  in
  let v_text = Verilog.to_verilog ~module_name:"demo_top" g.G.design in
  let def_text = Def.to_def g.G.placement in
  Printf.printf "liberty : %5d lines (%d cells)\n" (count_lines lib_text)
    (List.length (Mbr_liberty.Library.cells g.G.library));
  Printf.printf "verilog : %5d lines\n" (count_lines v_text);
  Printf.printf "def     : %5d lines\n\n" (count_lines def_text);

  print_endline "=== reload from the text alone ===";
  let library, gate_cells = Liberty_io.of_liberty_full lib_text in
  let design =
    Verilog.of_verilog ~library ~gates:(Verilog.resolver_of_gates gate_cells)
      v_text
  in
  let placement = Def.of_def design def_text in
  Printf.printf "reloaded: %d cells, %d registers, netlist valid: %b\n\n"
    (Design.n_cells design)
    (List.length (Design.registers design))
    (Design.validate design = []);

  print_endline "=== the reloaded copy behaves identically ===";
  let timing pl =
    let eng = Engine.build ~config:g.G.sta_config pl in
    Engine.analyze eng;
    (Engine.wns eng, Engine.tns eng, Engine.failing_endpoints eng)
  in
  let w1, t1, f1 = timing g.G.placement in
  let w2, t2, f2 = timing placement in
  Printf.printf "original wns/tns/failing: %.1f / %.1f / %d\n" w1 t1 f1;
  Printf.printf "reloaded wns/tns/failing: %.1f / %.1f / %d\n" w2 t2 f2;
  (* DEF quantizes coordinates to 1/1000 um, so wire delays may shift
     by fractions of a femtosecond; compare at 0.1 ps *)
  Printf.printf "identical timing (within DEF quantization): %b\n\n"
    (Float.abs (w1 -. w2) < 0.1 && Float.abs (t1 -. t2) < 0.1 && f1 = f2);

  let r =
    Flow.run ~design ~placement ~library ~sta_config:g.G.sta_config ()
  in
  Printf.printf "composition on the reloaded design: %d MBRs, %d -> %d registers\n"
    r.Flow.n_merges r.Flow.before.Metrics.total_regs
    r.Flow.after.Metrics.total_regs;
  Printf.printf "composed copy can be saved again: %d verilog lines\n"
    (count_lines (Verilog.to_verilog design))
