(* Useful skew after composition (Fig. 4): composition only merges
   registers with similar D/Q slacks precisely so that one clock offset
   per MBR can still fix its violations. This example shows the skew
   solver recovering timing on a composed design, and why merging
   registers with OPPOSITE skew needs would have been a mistake.

   Run with: dune exec examples/useful_skew.exe *)

module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile
module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module Compat = Mbr_core.Compat
module Engine = Mbr_sta.Engine
module Skew = Mbr_sta.Skew
module Rect = Mbr_geom.Rect

let () =
  print_endline "=== opposite skew pressure (section 2) ===";
  let mk cid d_slack q_slack =
    let footprint = Rect.make ~lx:0.0 ~ly:0.0 ~hx:2.0 ~hy:1.2 in
    Compat.
      {
        cid;
        bits = 1;
        func_class = "dff";
        clock = 0;
        enable = None;
        reset = None;
        scan = None;
        drive_res = 2.0;
        d_slack;
        q_slack;
        footprint;
        feasible = Rect.expand footprint 10.0;
        center = Rect.center footprint;
      }
  in
  let needs_later = mk 0 (-40.0) 30.0 (* violating D: wants clock later *) in
  let needs_earlier = mk 1 35.0 (-25.0) (* violating Q: wants clock earlier *) in
  let agree = mk 2 (-30.0) 20.0 in
  let cfg = Compat.default_config in
  Printf.printf "late-wanting + early-wanting  -> timing compatible: %b\n"
    (Compat.timing_compatible cfg needs_later needs_earlier);
  Printf.printf "late-wanting + late-wanting   -> timing compatible: %b\n"
    (Compat.timing_compatible cfg needs_later agree);
  print_endline
    "one MBR gets one clock arrival; members must pull in the same direction.";

  print_endline "\n=== useful skew on a composed design ===";
  let g = G.generate (P.tiny ~seed:1101) in
  let options = { Flow.default_options with Flow.skew = None; resize = None } in
  let r =
    Flow.run ~options ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  Printf.printf "composed %d MBRs; timing before skew: tns %.1f ps, %d failing\n"
    r.Flow.n_merges r.Flow.after.Metrics.tns r.Flow.after.Metrics.failing;
  let eng = Engine.build ~config:g.G.sta_config g.G.placement in
  let report = Skew.optimize eng in
  Printf.printf "after useful skew:             tns %.1f ps (was %.1f)\n"
    report.Skew.tns_after report.Skew.tns_before;
  Printf.printf "                               wns %.1f ps (was %.1f)\n"
    report.Skew.wns_after report.Skew.wns_before;
  Printf.printf "max |skew| used: %.1f ps (bound %.1f), %d sweeps\n"
    report.Skew.max_abs_skew Skew.default_config.Skew.bound report.Skew.sweeps_run;
  Printf.printf "failing endpoints now: %d\n" (Engine.failing_endpoints eng);
  print_endline
    "\nthe same offsets would be impossible if composition had merged\n\
     registers with dissimilar or opposing slacks — which is why timing\n\
     compatibility gates the merge in the first place."
