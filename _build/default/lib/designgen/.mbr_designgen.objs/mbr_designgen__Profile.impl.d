lib/designgen/profile.ml:
