lib/designgen/profile.mli:
