lib/designgen/generate.ml: Array Fun Hashtbl List Mbr_dft Mbr_geom Mbr_liberty Mbr_netlist Mbr_place Mbr_sta Mbr_util Printf Profile Seq
