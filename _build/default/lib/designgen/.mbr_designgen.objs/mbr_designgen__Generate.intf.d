lib/designgen/generate.mli: Mbr_liberty Mbr_netlist Mbr_place Mbr_sta Profile
