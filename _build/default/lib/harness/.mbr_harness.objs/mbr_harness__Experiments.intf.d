lib/harness/experiments.mli: Mbr_core Mbr_designgen
