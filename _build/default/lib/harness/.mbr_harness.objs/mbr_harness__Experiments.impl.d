lib/harness/experiments.ml: Array Buffer List Mbr_core Mbr_designgen Mbr_sta Mbr_util Printf
