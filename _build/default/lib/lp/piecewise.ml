type term = { lo : float; hi : float; offset : float; weight : float }

let check t =
  if t.hi < t.lo then invalid_arg "Piecewise: term with hi < lo";
  if t.weight < 0.0 then invalid_arg "Piecewise: negative weight"

let eval terms u =
  List.fold_left
    (fun acc t ->
      let v = u +. t.offset in
      acc +. (t.weight *. (Float.max t.hi v -. Float.min t.lo v)))
    0.0 terms

(* f(u) = sum_t w_t * (max(h_t, u+d_t) - min(l_t, u+d_t)) is convex
   piecewise-linear with slope -W below all breakpoints and +W above.
   Breakpoints in u-space: (l_t - d_t) adds +w to the slope when crossed
   (the min stops tracking), (h_t - d_t) adds +w as well (the max starts
   tracking). Total slope at -inf is -W where W = sum w; the minimizer is
   where the running slope first becomes >= 0. *)
let minimize ?bounds terms =
  List.iter check terms;
  (match bounds with
  | Some (lo, hi) when hi < lo -> invalid_arg "Piecewise.minimize: empty bounds"
  | Some _ | None -> ());
  let clamp u =
    match bounds with
    | None -> u
    | Some (lo, hi) -> Float.max lo (Float.min hi u)
  in
  match terms with
  | [] ->
    let u = clamp 0.0 in
    (u, 0.0)
  | _ ->
    let bps =
      List.concat_map
        (fun t -> [ (t.lo -. t.offset, t.weight); (t.hi -. t.offset, t.weight) ])
        terms
    in
    let bps = List.sort (fun (a, _) (b, _) -> compare a b) bps in
    (* Slope at -inf is -W (W = sum of term weights); every breakpoint,
       whether an l- or an h-crossing, adds +w, for a total change of
       +2W across the scan. *)
    let total = List.fold_left (fun acc t -> acc +. t.weight) 0.0 terms in
    let rec scan slope = function
      | [] -> (match List.rev bps with (u, _) :: _ -> u | [] -> 0.0)
      | (u, w) :: rest ->
        let slope' = slope +. w in
        if slope' >= -1e-12 then u else scan slope' rest
    in
    let u_star = clamp (scan (-.total) bps) in
    (u_star, eval terms u_star)
