(** Exact minimizer for sums of interval-distance terms — the separable
    form of the paper's §4.2 MBR-placement objective.

    Each D/Q pin of a new MBR at cell corner [u] (one axis at a time,
    HPWL is separable) contributes
    [max(h, u + d) - min(l, u + d)] where \[[l], [h]\] is the bounding
    interval of the pin's fan-in/fan-out pins and [d] the pin's offset in
    the cell. Each term is convex piecewise-linear, so the sum is
    minimized by a weighted-median scan over breakpoints — this module is
    both the production fast path and the oracle the simplex-based LP is
    tested against. *)

type term = { lo : float; hi : float; offset : float; weight : float }
(** One pin: box interval \[[lo], [hi]\], pin offset from the cell corner,
    and a multiplicity weight (>= 0). Requires [lo <= hi]. *)

val eval : term list -> float -> float
(** Objective value at corner coordinate [u]. *)

val minimize : ?bounds:float * float -> term list -> float * float
(** [(u_star, f u_star)] — a minimizer (leftmost of the optimal interval) and
    its objective, optionally clamped to [bounds = (lo_bound, hi_bound)].
    An empty term list returns the clamp of 0. Raises
    [Invalid_argument] on an empty bounds interval or a term with
    [hi < lo]. *)
