lib/lp/simplex.mli:
