lib/lp/piecewise.mli:
