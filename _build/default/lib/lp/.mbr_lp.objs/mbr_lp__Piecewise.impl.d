lib/lp/piecewise.ml: Float List
