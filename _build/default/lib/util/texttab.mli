(** Plain-text table rendering for experiment reports.

    Produces aligned, pipe-separated tables in the style of the paper's
    Table 1 so that benchmark output is directly readable and diffable. *)

type align = Left | Right | Center

type t

val create : headers:string list -> t
(** New table; column count is fixed by the header row. *)

val set_aligns : t -> align list -> unit
(** Per-column alignment (default: first column [Left], rest [Right]).
    Raises [Invalid_argument] on a length mismatch. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header. *)

val add_sep : t -> unit
(** Horizontal separator line at this position. *)

val render : t -> string
(** Full table, trailing newline included. *)

val print : t -> unit
(** [render] to stdout. *)

val fmt_float : ?dec:int -> float -> string
(** Fixed-point float with [dec] decimals (default 2). *)

val fmt_pct : float -> string
(** Percentage with sign and one decimal, e.g. ["+3.1 %"]. *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. ["485,350"]. *)
