type align = Left | Right | Center

type row = Cells of string list | Sep

type t = {
  headers : string list;
  width : int;
  mutable aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~headers =
  let width = List.length headers in
  let aligns =
    List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  { headers; width; aligns; rows = [] }

let set_aligns t aligns =
  if List.length aligns <> t.width then
    invalid_arg "Texttab.set_aligns: width mismatch";
  t.aligns <- aligns

let add_row t cells =
  if List.length cells <> t.width then
    invalid_arg "Texttab.add_row: width mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let left = (width - n) / 2 in
      String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.make t.width 0 in
  let note cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  note t.headers;
  List.iter (function Cells c -> note c | Sep -> ()) rows;
  let buf = Buffer.create 1024 in
  let sep_line () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (if i = 0 then "|" else "");
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '|')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    List.iteri
      (fun i c ->
        let a = List.nth t.aligns i in
        Buffer.add_string buf (if i = 0 then "| " else " ");
        Buffer.add_string buf (pad a widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  sep_line ();
  List.iter (function Cells c -> emit c | Sep -> sep_line ()) rows;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(dec = 2) x = Printf.sprintf "%.*f" dec x

let fmt_pct x = Printf.sprintf "%+.1f %%" x

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
