type t = { n : int; words : int array }

let bits_per_word = 62

let nwords n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Array.make (max 1 (nwords n)) 0 }

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: element out of range"

let add t i =
  check t i;
  let words = Array.copy t.words in
  let w = i / bits_per_word and b = i mod bits_per_word in
  words.(w) <- words.(w) lor (1 lsl b);
  { t with words }

let of_list n elems =
  let t = create n in
  let words = t.words in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Bitset.of_list: out of range";
      let w = i / bits_per_word and b = i mod bits_per_word in
      words.(w) <- words.(w) lor (1 lsl b))
    elems;
  t

let universe_size t = t.n

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let zip f a b =
  if a.n <> b.n then invalid_arg "Bitset: universe mismatch";
  { n = a.n; words = Array.init (Array.length a.words) (fun i -> f a.words.(i) b.words.(i)) }

let union = zip ( lor )

let inter = zip ( land )

let diff = zip (fun x y -> x land lnot y)

let disjoint a b =
  if a.n <> b.n then invalid_arg "Bitset: universe mismatch";
  let rec go i =
    i >= Array.length a.words || (a.words.(i) land b.words.(i) = 0 && go (i + 1))
  in
  go 0

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset: universe mismatch";
  let rec go i =
    i >= Array.length a.words
    || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.n = b.n && a.words = b.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let elements t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc
