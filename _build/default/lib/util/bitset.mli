(** Fixed-universe bitsets over \[0, n) backed by int arrays. Used for
    fast disjointness tests between MBR-candidate register sets during
    branch-and-bound. Immutable interface: operations return fresh sets
    unless named [_into]. *)

type t

val create : int -> t
(** Empty set over universe size [n]. *)

val of_list : int -> int list -> t
(** [of_list n elems]; raises [Invalid_argument] on out-of-range. *)

val universe_size : t -> int

val add : t -> int -> t

val mem : t -> int -> bool

val cardinal : t -> int

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val disjoint : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b]: is [a] ⊆ [b]. *)

val is_empty : t -> bool

val equal : t -> t -> bool

val elements : t -> int list
(** Ascending order. *)

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
