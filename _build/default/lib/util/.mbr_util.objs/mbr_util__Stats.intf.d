lib/util/stats.mli:
