lib/util/texttab.mli:
