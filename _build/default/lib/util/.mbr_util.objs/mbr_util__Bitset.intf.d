lib/util/bitset.mli:
