lib/util/vec.mli:
