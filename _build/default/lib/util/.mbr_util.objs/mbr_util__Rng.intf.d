lib/util/rng.mli:
