type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

(* Non-negative 62-bit value, safe to use as an OCaml int (whose max is
   2^62 - 1 on 64-bit platforms). *)
let bits63 t = Int64.to_int (Int64.logand (bits64 t) 0x3FFFFFFFFFFFFFFFL)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits63 t mod n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (u /. 9007199254740992.0 (* 2^53 *))

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let gaussian t ~mean ~stddev =
  (* Box–Muller; u1 must be nonzero for the log. *)
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ :: _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample: bad k";
  let scratch = Array.copy arr in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = scratch.(i) in
    scratch.(i) <- scratch.(j);
    scratch.(j) <- tmp
  done;
  Array.sub scratch 0 k
