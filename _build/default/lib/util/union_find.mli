(** Classic disjoint-set forest with path compression and union by rank. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> unit
(** Merge the two sets (no-op when already merged). *)

val same : t -> int -> int -> bool

val groups : t -> int list array
(** All sets as member lists, indexed arbitrarily; singleton sets
    included. Members appear in increasing order. *)
