let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. log x) xs;
    exp (!acc /. float_of_int n)
  end

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    sqrt (!acc /. float_of_int n)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let total = Array.fold_left ( +. ) 0.0

let histogram ~bins xs =
  let nb = Array.length bins in
  let counts = Array.make (nb + 1) 0 in
  let place x =
    let rec find i = if i >= nb then nb else if x <= bins.(i) then i else find (i + 1) in
    find 0
  in
  Array.iter (fun x -> let b = place x in counts.(b) <- counts.(b) + 1) xs;
  counts

let pct_change base v = if base = 0.0 then 0.0 else (base -. v) /. base *. 100.0
