(** Deterministic pseudo-random number generation.

    All stochastic parts of the repository (design generation, property
    tests that need their own stream, tie-breaking) draw from this
    splitmix64 generator so that every experiment is reproducible from a
    seed, independent of the OCaml [Random] module state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in \[0, n). Raises [Invalid_argument] if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in \[0, x). *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in \[lo, hi). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to \[0,1\]). *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box–Muller normal deviate. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [k] distinct elements (k <= length). *)
