(** Small descriptive-statistics helpers used by reports and benchmarks. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0 for an empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val min_max : float array -> float * float
(** Raises [Invalid_argument] on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in \[0,100\], linear interpolation.
    Raises [Invalid_argument] on an empty array. *)

val total : float array -> float

val histogram : bins:float array -> float array -> int array
(** [histogram ~bins xs] counts values per bin; [bins] are ascending
    upper bounds, a final overflow bin is appended (result length =
    [Array.length bins + 1]). *)

val pct_change : float -> float -> float
(** [pct_change base v] is the saving [(base - v) / base * 100.]; 0 when
    [base = 0]. Positive means [v] improved (decreased) versus [base]. *)
