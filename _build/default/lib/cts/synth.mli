(** Clock-tree synthesis substrate.

    MBR composition's headline benefit is a lighter clock tree: fewer
    sinks ⇒ less leaf wire, lower total pin capacitance ⇒ fewer and
    smaller buffers (§1). Table 1 reports clock buffers, clock
    capacitance and clock wirelength before/after composition, so this
    module builds a deterministic buffered tree over the register clock
    pins and reports exactly those metrics.

    Algorithm: per clock domain (registers grouped by clock net), sinks
    are clustered bottom-up — recursive median bisection until every
    cluster respects the fanout and capacitance limits, a buffer at each
    cluster's centroid, repeated level by level until a single node
    remains, then connected to the clock root. Wire is star-routed
    inside each cluster. *)

type config = {
  max_fanout : int;  (** sinks a buffer may drive (default 16) *)
  max_cap : float;  (** fF a buffer may drive (default 48) *)
  buf_input_cap : float;  (** fF (default 1.2) *)
  buf_area : float;  (** µm² (default 1.4) *)
  wire_cap : float;  (** fF per µm (default 0.2) *)
}

val default_config : config

type node =
  | Sink of { reg : Mbr_netlist.Types.cell_id; at : Mbr_geom.Point.t; cap : float }
  | Buffer of { at : Mbr_geom.Point.t; children : node list }

type domain = {
  clock_net : Mbr_netlist.Types.net_id;
  root : node;
  n_sinks : int;
  n_buffers : int;
  wirelength : float;
  sink_cap : float;  (** sum of register clock-pin caps *)
  wire_capacitance : float;
  buffer_cap : float;  (** sum of buffer input caps *)
  depth : int;  (** buffer levels above the sinks *)
}

type result = {
  domains : domain list;
  n_sinks : int;
  n_buffers : int;
  wirelength : float;
  total_cap : float;  (** sink + wire + buffer capacitance, all domains *)
}

val synthesize : ?config:config -> Mbr_place.Placement.t -> result
(** Unplaced registers are skipped; a domain with no placed sinks is
    omitted. *)
