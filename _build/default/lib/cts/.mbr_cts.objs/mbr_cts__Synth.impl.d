lib/cts/synth.ml: Float Hashtbl List Mbr_geom Mbr_liberty Mbr_netlist Mbr_place
