lib/cts/synth.mli: Mbr_geom Mbr_netlist Mbr_place
