module Point = Mbr_geom.Point
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Cell_lib = Mbr_liberty.Cell

type config = {
  max_fanout : int;
  max_cap : float;
  buf_input_cap : float;
  buf_area : float;
  wire_cap : float;
}

let default_config =
  {
    max_fanout = 16;
    max_cap = 48.0;
    buf_input_cap = 1.2;
    buf_area = 1.4;
    wire_cap = 0.2;
  }

type node =
  | Sink of { reg : Types.cell_id; at : Point.t; cap : float }
  | Buffer of { at : Point.t; children : node list }

type domain = {
  clock_net : Types.net_id;
  root : node;
  n_sinks : int;
  n_buffers : int;
  wirelength : float;
  sink_cap : float;
  wire_capacitance : float;
  buffer_cap : float;
  depth : int;
}

type result = {
  domains : domain list;
  n_sinks : int;
  n_buffers : int;
  wirelength : float;
  total_cap : float;
}

let node_at = function Sink s -> s.at | Buffer b -> b.at

let node_cap cfg = function Sink s -> s.cap | Buffer _ -> cfg.buf_input_cap

(* Median bisection of nodes along the wider axis until each group
   respects fanout and cap limits. *)
let rec split_groups cfg nodes =
  let total_cap = List.fold_left (fun acc n -> acc +. node_cap cfg n) 0.0 nodes in
  if List.length nodes <= cfg.max_fanout && total_cap <= cfg.max_cap then
    [ nodes ]
  else begin
    match nodes with
    | [] | [ _ ] -> [ nodes ]
    | _ ->
      let pts = List.map node_at nodes in
      let xs = List.map (fun (p : Point.t) -> p.x) pts in
      let ys = List.map (fun (p : Point.t) -> p.y) pts in
      let spread vs =
        List.fold_left Float.max neg_infinity vs
        -. List.fold_left Float.min infinity vs
      in
      let use_x = spread xs >= spread ys in
      let key n =
        let p = node_at n in
        if use_x then (p.Point.x, p.Point.y) else (p.Point.y, p.Point.x)
      in
      let sorted = List.stable_sort (fun a b -> compare (key a) (key b)) nodes in
      let half = (List.length sorted + 1) / 2 in
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | n :: rest -> take (k - 1) (n :: acc) rest
      in
      let left, right = take half [] sorted in
      split_groups cfg left @ split_groups cfg right
  end

let cluster_level cfg nodes =
  let groups = split_groups cfg nodes in
  List.map
    (fun members ->
      match members with
      | [ single ] -> single
      | _ ->
        let centroid = Point.centroid (List.map node_at members) in
        Buffer { at = centroid; children = members })
    groups

let rec tree_stats cfg node =
  (* (buffers, wirelength, depth) *)
  match node with
  | Sink _ -> (0, 0.0, 0)
  | Buffer b ->
    List.fold_left
      (fun (nb, wl, dep) child ->
        let cb, cwl, cdep = tree_stats cfg child in
        ( nb + cb,
          wl +. cwl +. Point.manhattan b.at (node_at child),
          max dep (cdep + 1) ))
      (1, 0.0, 0) b.children

let rec count_buffer_caps cfg node =
  match node with
  | Sink _ -> 0.0
  | Buffer b ->
    List.fold_left
      (fun acc c -> acc +. count_buffer_caps cfg c)
      cfg.buf_input_cap b.children

let build_domain cfg pl clock_net sinks =
  let rec reduce nodes =
    match nodes with
    | [] -> None
    | [ single ] -> Some single
    | _ -> reduce (cluster_level cfg nodes)
  in
  match reduce sinks with
  | None -> None
  | Some root ->
    (* connect the top node to the clock root driver if placed *)
    let dsg = Placement.design pl in
    let root_wire =
      match Design.driver dsg clock_net with
      | Some pid ->
        let p = Design.pin dsg pid in
        (match Placement.location_opt pl p.Types.p_cell with
        | Some _ -> Point.manhattan (Placement.pin_location pl pid) (node_at root)
        | None -> 0.0)
      | None -> 0.0
    in
    let n_buffers, wl, depth = tree_stats cfg root in
    let wl = wl +. root_wire in
    let sink_cap =
      List.fold_left
        (fun acc n -> match n with Sink s -> acc +. s.cap | Buffer _ -> acc)
        0.0 sinks
    in
    let wire_capacitance = wl *. cfg.wire_cap in
    let buffer_cap = count_buffer_caps cfg root in
    Some
      {
        clock_net;
        root;
        n_sinks = List.length sinks;
        n_buffers;
        wirelength = wl;
        sink_cap;
        wire_capacitance;
        buffer_cap;
        depth;
      }

let synthesize ?(config = default_config) pl =
  let dsg = Placement.design pl in
  (* group placed registers by clock net *)
  let by_net = Hashtbl.create 8 in
  List.iter
    (fun cid ->
      if Placement.is_placed pl cid then begin
        match Design.pin_of dsg cid Types.Pin_clock with
        | Some pid -> (
          let p = Design.pin dsg pid in
          match p.Types.p_net with
          | Some nid ->
            let a = Design.reg_attrs dsg cid in
            let sink =
              Sink
                {
                  reg = cid;
                  at = Placement.pin_location pl pid;
                  cap = a.Types.lib_cell.Cell_lib.clock_pin_cap;
                }
            in
            let cur = match Hashtbl.find_opt by_net nid with Some l -> l | None -> [] in
            Hashtbl.replace by_net nid (sink :: cur)
          | None -> ())
        | None -> ()
      end)
    (Design.registers dsg);
  let domains =
    Hashtbl.fold
      (fun nid sinks acc ->
        match build_domain config pl nid sinks with
        | Some d -> d :: acc
        | None -> acc)
      by_net []
  in
  let domains = List.sort (fun a b -> compare a.clock_net b.clock_net) domains in
  let sum f = List.fold_left (fun acc d -> acc +. f d) 0.0 domains in
  let sumi f = List.fold_left (fun acc d -> acc + f d) 0 domains in
  {
    domains;
    n_sinks = sumi (fun d -> d.n_sinks);
    n_buffers = sumi (fun d -> d.n_buffers);
    wirelength = sum (fun d -> d.wirelength);
    total_cap = sum (fun d -> d.sink_cap +. d.wire_capacitance +. d.buffer_cap);
  }
