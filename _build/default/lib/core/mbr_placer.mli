(** MBR placement (§4.2): the wirelength-minimizing location of a new
    MBR inside the common timing-feasible region.

    Every connected D/Q pin of the new cell contributes the half-
    perimeter of the bounding box spanned by its fan-in/fan-out pins
    and the (unknown) pin location, expressed relative to the cell's
    lower-left corner plus the pin's fixed offset — exactly the LP of
    the paper, with max/min linearized away. Because the objective is
    separable per axis and convex piecewise-linear, the production
    solver is an exact weighted-median scan ({!Mbr_lp.Piecewise});
    {!lp_corner} solves the same program with the simplex (helper
    variables for max/min) and is used to cross-check the fast path in
    the test suite. *)

type conn_box = {
  offset : Mbr_geom.Point.t;  (** pin offset from the cell corner *)
  box : Mbr_geom.Rect.t;  (** bbox of the pins the MBR pin connects to *)
}

val conn_boxes :
  Mbr_place.Placement.t ->
  cell:Mbr_liberty.Cell.t ->
  assignment:(int * Mbr_netlist.Types.net_id option * Mbr_netlist.Types.net_id option) list ->
  exclude:Mbr_netlist.Types.cell_id list ->
  conn_box list
(** [assignment] maps new-cell bit -> (D net, Q net); pins owned by
    [exclude]d cells (the registers being replaced) and unplaced cells
    do not contribute to the boxes. Bits whose net has no remaining
    pins yield no box. *)

val optimal_corner :
  cell:Mbr_liberty.Cell.t ->
  conns:conn_box list ->
  region:Mbr_geom.Rect.t ->
  Mbr_geom.Point.t * float
(** Exact minimizer (corner, objective). The corner keeps the footprint
    inside [region] when the region is large enough; otherwise it is
    clamped to the region's lower-left corner. *)

val lp_corner :
  cell:Mbr_liberty.Cell.t ->
  conns:conn_box list ->
  region:Mbr_geom.Rect.t ->
  (Mbr_geom.Point.t * float) option
(** Simplex reference solution of the same LP; [None] if the LP is
    infeasible (region smaller than the footprint). *)
