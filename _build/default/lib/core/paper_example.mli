(** The paper's worked example (Figs. 1–3): six registers A1, B1, C1,
    D1, E4, F2 with the Fig. 2 placement, a library with 1/2/3/4/8-bit
    MBRs, and the Fig. 1 compatibility graph.

    Geometry is reconstructed from the constraints the paper states:
    D's center lies inside the test polygons of \{B,C\} and \{A,B,C\}
    (making their weights 4 and 6), every other documented candidate is
    clean, and \{A,C,E\} totals 6 bits (so it can only map to an
    incomplete 8-bit MBR). The module is the ground truth for the
    golden tests and the quickstart example. *)

type t = {
  design : Mbr_netlist.Design.t;
  placement : Mbr_place.Placement.t;
  library : Mbr_liberty.Library.t;
  graph : Compat.graph;  (** node order: A, B, C, D, E, F *)
  blocker_index : Mbr_netlist.Types.cell_id Spatial.t;
  names : string array;  (** [|"A";"B";"C";"D";"E";"F"|] *)
}

val build : unit -> t

val node : t -> string -> int
(** Graph node of a register by name; raises [Not_found]. *)

val weight_of : t -> string list -> float
(** Weight of the candidate formed by the named registers (the Fig. 3
    table), computed with the real hull/blocker machinery. Singletons
    cost 1. *)

val candidates :
  ?allow_incomplete:bool ->
  ?incomplete_area_overhead:float ->
  t ->
  Candidate.t list
(** Enumerate candidates over the whole example (one block). The
    paper's Fig. 3 admits the incomplete AE candidate "on purpose"
    although the production 5 % area rule would reject it; pass
    [incomplete_area_overhead] ~0.6 to reproduce the figure. *)

val solve :
  ?allow_incomplete:bool ->
  ?incomplete_area_overhead:float ->
  t ->
  Mbr_netlist.Types.cell_id list list * float
(** ILP selection: the chosen groups (as member cid lists, merges and
    singletons alike) and the objective value. *)
