(** Post-composition MBR sizing (Fig. 4, "MBR sizing").

    Useful skew widens the worst slack of each new MBR; any remaining
    positive margin is spent on a weaker drive of the same cell family,
    reducing area and clock-pin capacitance. The delay increase of
    every Q output is bounded by (Δdrive_res × measured load) and must
    fit inside the available slack minus the configured margin. *)

type config = {
  margin : float;  (** ps of slack never spent (default 20) *)
}

val default_config : config

val downsize :
  ?config:config ->
  Mbr_sta.Engine.t ->
  Mbr_liberty.Library.t ->
  Mbr_netlist.Types.cell_id list ->
  int
(** Try to downsize each given register; returns how many were swapped.
    The engine must be rebuilt by the caller afterwards (pin caps and
    drive resistances changed). *)
