(** The comparison heuristic of the paper's Fig. 6 — "a maximal clique
    identification and MBR mapping heuristic", in the spirit of
    Wang/Liang/Kuo/Mak (TCAD'12) and Lin/Hsu/Chen (TCAD'15):

    repeatedly take the maximal clique with the most register bits from
    the remaining compatibility subgraph, pack its members
    (nearest-first around the clique centroid, keeping the common
    feasible region non-empty) down to the largest {e complete} library
    width, merge, remove, and continue. No candidate weights, no global
    optimization, no incomplete MBRs — those are the proposed method's
    contributions, which is precisely what Fig. 6 measures. *)

val solve_block :
  Compat.graph ->
  block:int list ->
  lib:Mbr_liberty.Library.t ->
  int list list
(** Merge groups (node lists, each a clique with >= 2 members mapping
    exactly to a library width) plus implicit singletons: nodes of the
    block not covered by any returned group stay as they are. *)
