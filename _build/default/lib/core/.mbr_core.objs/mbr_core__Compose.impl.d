lib/core/compose.ml: Array List Mbr_geom Mbr_liberty Mbr_netlist Mbr_place Printf
