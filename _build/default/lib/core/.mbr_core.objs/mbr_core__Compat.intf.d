lib/core/compat.mli: Mbr_geom Mbr_graph Mbr_liberty Mbr_netlist Mbr_sta
