lib/core/mapping.mli: Compat Mbr_liberty
