lib/core/power.mli: Mbr_place Mbr_sta
