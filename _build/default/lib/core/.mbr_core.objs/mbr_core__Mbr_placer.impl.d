lib/core/mbr_placer.ml: Array Float List Mbr_geom Mbr_liberty Mbr_lp Mbr_netlist Mbr_place
