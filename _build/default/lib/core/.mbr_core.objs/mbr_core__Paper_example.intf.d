lib/core/paper_example.mli: Candidate Compat Mbr_liberty Mbr_netlist Mbr_place Spatial
