lib/core/weight.mli: Mbr_geom Mbr_netlist Spatial
