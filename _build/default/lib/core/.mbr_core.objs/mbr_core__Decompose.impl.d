lib/core/decompose.ml: Array List Mbr_geom Mbr_liberty Mbr_netlist Mbr_place Printf
