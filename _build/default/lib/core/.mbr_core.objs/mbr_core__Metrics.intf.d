lib/core/metrics.mli: Format Mbr_cts Mbr_liberty Mbr_route Mbr_sta
