lib/core/candidate.ml: Array Compat Float Hashtbl List Mapping Mbr_geom Mbr_graph Mbr_liberty Mbr_netlist Weight
