lib/core/paper_example.ml: Array Candidate Compat List Mbr_geom Mbr_graph Mbr_ilp Mbr_liberty Mbr_netlist Mbr_place Printf Spatial Weight
