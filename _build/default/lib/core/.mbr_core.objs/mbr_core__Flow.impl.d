lib/core/flow.ml: Allocate Candidate Compat Compose Decompose Float List Mapping Mbr_cts Mbr_dft Mbr_geom Mbr_liberty Mbr_netlist Mbr_place Mbr_placer Mbr_route Mbr_sta Metrics Resize Spatial Unix
