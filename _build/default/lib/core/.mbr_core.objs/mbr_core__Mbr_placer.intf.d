lib/core/mbr_placer.mli: Mbr_geom Mbr_liberty Mbr_netlist Mbr_place
