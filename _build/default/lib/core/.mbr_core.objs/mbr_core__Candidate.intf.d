lib/core/candidate.mli: Compat Mbr_geom Mbr_liberty Mbr_netlist Spatial
