lib/core/baseline.ml: Array Compat Hashtbl List Mbr_geom Mbr_graph Mbr_liberty
