lib/core/allocate.ml: Array Baseline Candidate Compat Hashtbl List Mbr_geom Mbr_graph Mbr_ilp
