lib/core/compat.ml: Array Float Hashtbl List Mbr_geom Mbr_graph Mbr_liberty Mbr_netlist Mbr_place Mbr_sta
