lib/core/allocate.mli: Candidate Compat Mbr_liberty Mbr_netlist Spatial
