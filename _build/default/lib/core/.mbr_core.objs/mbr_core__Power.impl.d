lib/core/power.ml: List Mbr_cts Mbr_liberty Mbr_netlist Mbr_place Mbr_route Mbr_sta
