lib/core/metrics.ml: Compat Format List Mbr_cts Mbr_netlist Mbr_place Mbr_route Mbr_sta Mbr_util Power
