lib/core/spatial.mli: Mbr_geom
