lib/core/spatial.ml: Float Hashtbl List Mbr_geom
