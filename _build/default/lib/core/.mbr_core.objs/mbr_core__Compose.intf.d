lib/core/compose.mli: Mbr_geom Mbr_liberty Mbr_netlist Mbr_place
