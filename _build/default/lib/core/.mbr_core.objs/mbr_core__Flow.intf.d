lib/core/flow.mli: Allocate Compat Mbr_cts Mbr_liberty Mbr_netlist Mbr_place Mbr_route Mbr_sta Metrics Resize
