lib/core/baseline.mli: Compat Mbr_liberty
