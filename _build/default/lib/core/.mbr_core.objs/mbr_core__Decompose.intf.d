lib/core/decompose.mli: Mbr_liberty Mbr_netlist Mbr_place
