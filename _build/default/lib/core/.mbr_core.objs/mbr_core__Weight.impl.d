lib/core/weight.ml: List Mbr_geom Spatial
