lib/core/mapping.ml: Array Compat Float List Mbr_liberty
