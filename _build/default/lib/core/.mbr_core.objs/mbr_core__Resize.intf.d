lib/core/resize.mli: Mbr_liberty Mbr_netlist Mbr_sta
