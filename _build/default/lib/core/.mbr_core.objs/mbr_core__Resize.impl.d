lib/core/resize.ml: Float List Mbr_liberty Mbr_netlist Mbr_place Mbr_sta
