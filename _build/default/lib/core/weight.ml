module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Hull = Mbr_geom.Hull

let test_polygon rects = Hull.of_rects rects

let count_blockers ~polygon ~constituents ~index =
  match polygon with
  | [] -> 0
  | _ ->
    let bbox = Rect.of_points polygon in
    let inside = Spatial.query_rect index bbox in
    List.length
      (List.filter
         (fun (cid, p) ->
           (not (List.mem cid constituents)) && Hull.contains polygon p)
         inside)

let formula ~bits ~blockers =
  if bits <= 0 then invalid_arg "Weight.formula: bits <= 0";
  if blockers = 0 then 1.0 /. float_of_int bits
  else if blockers >= bits then infinity
  else float_of_int bits *. (2.0 ** float_of_int blockers)

let candidate_weight ~n_members ~bits ~blockers =
  if n_members <= 1 then 1.0 else formula ~bits ~blockers
