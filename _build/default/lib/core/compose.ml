module Point = Mbr_geom.Point
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Cell_lib = Mbr_liberty.Cell

type spec = {
  member_cids : Types.cell_id list;
  cell : Cell_lib.t;
  corner : Point.t;
}

let mbr_counter = ref 0

let pin_net dsg cid kind =
  match Design.pin_of dsg cid kind with
  | Some pid -> (Design.pin dsg pid).Types.p_net
  | None -> None

(* Members ordered for bit assignment: ordered-scan position first,
   spatial order otherwise. *)
let order_members pl members =
  let dsg = Placement.design pl in
  let key cid =
    let a = Design.reg_attrs dsg cid in
    let scan_pos =
      match a.Types.scan with
      | Some { Types.section = Some (_, pos); _ } -> (0, pos)
      | Some { Types.section = None; _ } | None -> (1, 0)
    in
    let spatial =
      match Placement.location_opt pl cid with
      | Some p -> (p.Point.x, p.Point.y)
      | None -> (0.0, 0.0)
    in
    (scan_pos, spatial, cid)
  in
  List.sort (fun a b -> compare (key a) (key b)) members

let bit_assignment pl members =
  let dsg = Placement.design pl in
  let ordered = order_members pl members in
  let next = ref 0 in
  List.concat_map
    (fun cid ->
      let a = Design.reg_attrs dsg cid in
      List.init a.Types.lib_cell.Cell_lib.bits (fun b ->
          let bit = !next in
          incr next;
          (bit, pin_net dsg cid (Types.Pin_d b), pin_net dsg cid (Types.Pin_q b))))
    ordered

let merged_attrs dsg cell members =
  let attrs = List.map (Design.reg_attrs dsg) members in
  let enable =
    match attrs with
    | a :: _ -> a.Types.gate_enable
    | [] -> invalid_arg "Compose: no members"
  in
  let scan =
    match List.filter_map (fun a -> a.Types.scan) attrs with
    | [] -> None
    | scans ->
      let partition =
        match scans with s :: _ -> s.Types.partition | [] -> assert false
      in
      let sections = List.filter_map (fun s -> s.Types.section) scans in
      let section =
        match sections with
        | [] -> None
        | (sec, _) :: _ ->
          let min_pos =
            List.fold_left (fun acc (_, p) -> min acc p) max_int sections
          in
          Some (sec, min_pos)
      in
      Some { Types.partition; section }
  in
  Types.{ lib_cell = cell; fixed = false; size_only = false; scan; gate_enable = enable }

let common_net name nets =
  match List.sort_uniq compare nets with
  | [ n ] -> n
  | [] -> invalid_arg (Printf.sprintf "Compose: no %s net among members" name)
  | _ :: _ :: _ ->
    invalid_arg (Printf.sprintf "Compose: members disagree on %s net" name)

let execute pl spec =
  let dsg = Placement.design pl in
  let members = spec.member_cids in
  let total_bits =
    List.fold_left
      (fun acc cid ->
        acc + (Design.reg_attrs dsg cid).Types.lib_cell.Cell_lib.bits)
      0 members
  in
  if total_bits > spec.cell.Cell_lib.bits then
    invalid_arg "Compose.execute: members exceed the target cell width";
  let assignment = bit_assignment pl members in
  let clock =
    common_net "clock"
      (List.filter_map (fun cid -> pin_net dsg cid Types.Pin_clock) members)
  in
  let resets = List.filter_map (fun cid -> pin_net dsg cid Types.Pin_reset) members in
  let reset =
    match resets with [] -> None | _ -> Some (common_net "reset" resets)
  in
  let scan_enables =
    List.filter_map (fun cid -> pin_net dsg cid Types.Pin_scan_enable) members
  in
  let scan_enable =
    match scan_enables with
    | [] -> None
    | _ -> Some (common_net "scan-enable" scan_enables)
  in
  let attrs = merged_attrs dsg spec.cell members in
  (* remove the old registers before wiring the new cell *)
  List.iter
    (fun cid ->
      Design.remove_cell dsg cid;
      Placement.remove pl cid)
    members;
  let bits = spec.cell.Cell_lib.bits in
  let d = Array.make bits None in
  let q = Array.make bits None in
  List.iter
    (fun (bit, dn, qn) ->
      d.(bit) <- dn;
      q.(bit) <- qn)
    assignment;
  let conn =
    {
      Design.d_nets = d;
      q_nets = q;
      clock;
      reset;
      scan_enable;
      scan_ins = [];
      scan_outs = [];
    }
  in
  let name = Printf.sprintf "mbr_%d" !mbr_counter in
  incr mbr_counter;
  let id = Design.add_register dsg name attrs conn in
  Placement.set pl id spec.corner;
  id
