(** Netlist surgery for a selected merge: tombstone the member
    registers, instantiate the mapped MBR cell at its legalized
    location, and rewire every connected D/Q/control net onto the new
    pins.

    Bit order inside the MBR follows the scan-section positions when
    the members belong to an ordered section (so the internal scan
    chain preserves the required order, §2), and the members' spatial
    order (x, then y) otherwise. Incomplete bits stay unconnected. *)

type spec = {
  member_cids : Mbr_netlist.Types.cell_id list;
  cell : Mbr_liberty.Cell.t;  (** mapped library cell *)
  corner : Mbr_geom.Point.t;  (** legalized lower-left corner *)
}

val bit_assignment :
  Mbr_place.Placement.t ->
  Mbr_netlist.Types.cell_id list ->
  (int * Mbr_netlist.Types.net_id option * Mbr_netlist.Types.net_id option) list
(** The (new-cell bit → D net / Q net) map that {!execute} will apply,
    exposed so the placer can be driven by the same assignment. Bits
    are numbered 0.. in merged order; unconnected member pins yield
    [None] entries. *)

val execute : Mbr_place.Placement.t -> spec -> Mbr_netlist.Types.cell_id
(** Performs the merge and returns the new register's cell id. Raises
    [Invalid_argument] when members total more bits than the cell has,
    or members disagree on clock/reset/scan-enable nets. *)
