(** MBR mapping (§4.1): bind a selected candidate to a concrete library
    cell.

    Rules, in order: the cell's drive resistance must not exceed the
    {e minimum} drive resistance of the replaced registers (so no
    replaced output gets weaker — timing cannot degrade, at some area
    cost); among those, the lowest clock-pin capacitance wins (clock
    power); per-bit-scan cells are penalized and used only when no
    internal-scan cell of the width exists (external scan chains burn
    routing). *)

val scan_need :
  Compat.reg_info array -> int list -> [ `No | `Internal ]
(** [`Internal] as soon as any member is a scan register. *)

val best_for :
  Mbr_liberty.Library.t ->
  func_class:string ->
  bits:int ->
  max_drive_res:float ->
  need:[ `No | `Internal ] ->
  Mbr_liberty.Cell.t option
(** Library choice with the per-bit-scan fallback. *)

val for_members :
  Mbr_liberty.Library.t ->
  Compat.reg_info array ->
  members:int list ->
  target_bits:int ->
  Mbr_liberty.Cell.t option
(** The cell a finished candidate maps to ([None] should not occur for
    candidates produced by candidate enumeration, which validates cell
    existence). *)

val min_drive_res : Compat.reg_info array -> int list -> float
