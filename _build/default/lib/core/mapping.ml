module Library = Mbr_liberty.Library

let scan_need infos members =
  if List.exists (fun i -> (infos.(i) : Compat.reg_info).Compat.scan <> None) members
  then `Internal
  else `No

let min_drive_res infos members =
  List.fold_left
    (fun acc i -> Float.min acc (infos.(i) : Compat.reg_info).Compat.drive_res)
    infinity members

let best_for lib ~func_class ~bits ~max_drive_res ~need =
  let need_scan = (need :> [ `No | `Internal | `Any_scan ]) in
  match Library.best_cell lib ~func_class ~bits ~max_drive_res ~need_scan with
  | Some c -> Some c
  | None ->
    if need = `Internal then
      Library.best_cell lib ~func_class ~bits ~max_drive_res ~need_scan:`Any_scan
    else None

let for_members lib infos ~members ~target_bits =
  let func_class =
    match members with
    | m :: _ -> (infos.(m) : Compat.reg_info).Compat.func_class
    | [] -> invalid_arg "Mapping.for_members: empty member list"
  in
  best_for lib ~func_class ~bits:target_bits
    ~max_drive_res:(min_drive_res infos members)
    ~need:(scan_need infos members)
