(** Shared netlist vocabulary: ids, pin and cell kinds, register
    attributes. Gathered in one definitions-only module (opened freely,
    per the OCaml guidelines on shared-type modules). *)

type cell_id = int

type net_id = int

type pin_id = int

type direction = Input | Output

type pin_kind =
  | Pin_d of int  (** data input, bit index within the register *)
  | Pin_q of int  (** data output, bit index *)
  | Pin_clock
  | Pin_reset
  | Pin_scan_in of int  (** bit index; internal-scan cells use bit 0 *)
  | Pin_scan_out of int
  | Pin_scan_enable
  | Pin_in of int  (** combinational input, position *)
  | Pin_out  (** combinational / buffer / gate output *)
  | Pin_port  (** the single pin of a primary-IO pseudo cell *)

(** Scan-chain membership of a register (§2 "scan compatibility"). *)
type scan_info = {
  partition : int;  (** registers may share a chain only within one *)
  section : (int * int) option;
      (** [(section_id, position)] when the register belongs to an
          {e ordered} scan section: merged registers must preserve the
          order inside one MBR's internal chain *)
}

type reg_attrs = {
  lib_cell : Mbr_liberty.Cell.t;
  fixed : bool;  (** designer-specified: never moved or merged *)
  size_only : bool;  (** may be resized but not merged *)
  scan : scan_info option;
  gate_enable : string option;
      (** clock-gating enable condition id; merged registers must share
          it (same ICG cone) *)
}

type comb_attrs = {
  gate : string;  (** e.g. "NAND2_X1" — informational *)
  n_inputs : int;
  drive_res : float;  (** kΩ *)
  intrinsic : float;  (** ps *)
  input_cap : float;  (** fF per input pin *)
  area : float;
  g_width : float;
  g_height : float;
}

type port_dir = In_port | Out_port

type cell_kind =
  | Register of reg_attrs
  | Comb of comb_attrs
  | Clock_root  (** clock source pseudo cell (one output pin) *)
  | Clock_gate of { enable : string }
      (** integrated clock gate: pins CKIN(Pin_in 0), CKOUT(Pin_out) *)
  | Port of port_dir

type pin = {
  p_cell : cell_id;
  p_kind : pin_kind;
  p_dir : direction;
  mutable p_net : net_id option;
}

type net = {
  n_name : string;
  mutable n_pins : pin_id list;  (** unordered *)
  n_is_clock : bool;
}

type cell = {
  c_name : string;
  mutable c_kind : cell_kind;
  mutable c_pins : pin_id list;  (** in creation order *)
  mutable c_dead : bool;  (** tombstoned by netlist edits *)
}

val pin_kind_to_string : pin_kind -> string

val is_data_input : pin_kind -> bool

val is_data_output : pin_kind -> bool
