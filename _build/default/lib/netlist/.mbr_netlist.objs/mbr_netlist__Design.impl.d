lib/netlist/design.ml: Array Fun List Mbr_liberty Mbr_util Printf Types
