lib/netlist/design.mli: Mbr_liberty Types
