lib/netlist/types.ml: Mbr_liberty Printf
