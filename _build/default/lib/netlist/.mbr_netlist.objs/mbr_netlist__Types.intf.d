lib/netlist/types.mli: Mbr_liberty
