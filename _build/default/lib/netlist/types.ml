type cell_id = int

type net_id = int

type pin_id = int

type direction = Input | Output

type pin_kind =
  | Pin_d of int
  | Pin_q of int
  | Pin_clock
  | Pin_reset
  | Pin_scan_in of int
  | Pin_scan_out of int
  | Pin_scan_enable
  | Pin_in of int
  | Pin_out
  | Pin_port

type scan_info = { partition : int; section : (int * int) option }

type reg_attrs = {
  lib_cell : Mbr_liberty.Cell.t;
  fixed : bool;
  size_only : bool;
  scan : scan_info option;
  gate_enable : string option;
}

type comb_attrs = {
  gate : string;
  n_inputs : int;
  drive_res : float;
  intrinsic : float;
  input_cap : float;
  area : float;
  g_width : float;
  g_height : float;
}

type port_dir = In_port | Out_port

type cell_kind =
  | Register of reg_attrs
  | Comb of comb_attrs
  | Clock_root
  | Clock_gate of { enable : string }
  | Port of port_dir

type pin = {
  p_cell : cell_id;
  p_kind : pin_kind;
  p_dir : direction;
  mutable p_net : net_id option;
}

type net = { n_name : string; mutable n_pins : pin_id list; n_is_clock : bool }

type cell = {
  c_name : string;
  mutable c_kind : cell_kind;
  mutable c_pins : pin_id list;
  mutable c_dead : bool;
}

let pin_kind_to_string = function
  | Pin_d i -> Printf.sprintf "D%d" i
  | Pin_q i -> Printf.sprintf "Q%d" i
  | Pin_clock -> "CK"
  | Pin_reset -> "R"
  | Pin_scan_in i -> Printf.sprintf "SI%d" i
  | Pin_scan_out i -> Printf.sprintf "SO%d" i
  | Pin_scan_enable -> "SE"
  | Pin_in i -> Printf.sprintf "A%d" i
  | Pin_out -> "Y"
  | Pin_port -> "P"

let is_data_input = function
  | Pin_d _ | Pin_in _ -> true
  | Pin_q _ | Pin_clock | Pin_reset | Pin_scan_in _ | Pin_scan_out _
  | Pin_scan_enable | Pin_out | Pin_port ->
    false

let is_data_output = function
  | Pin_q _ | Pin_out -> true
  | Pin_d _ | Pin_clock | Pin_reset | Pin_scan_in _ | Pin_scan_out _
  | Pin_scan_enable | Pin_in _ | Pin_port ->
    false
