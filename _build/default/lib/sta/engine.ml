module Point = Mbr_geom.Point
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Cell_lib = Mbr_liberty.Cell

type config = {
  clock_period : float;
  wire_res : float;
  wire_cap : float;
  input_delay : float;
  output_delay : float;
}

let default_config =
  {
    clock_period = 800.0;
    wire_res = 0.002;
    wire_cap = 0.2;
    input_delay = 40.0;
    output_delay = 40.0;
  }

(* Arc kinds: delays are recomputed at each analyze because they depend
   on pin locations and net loads. *)
type arc =
  | Net_arc of Types.pin_id * Types.pin_id (* driver -> sink *)
  | Cell_arc of Types.pin_id * Types.pin_id (* comb input -> output *)

type endpoint_kind = Ep_reg_d of Types.cell_id | Ep_out_port

type t = {
  cfg : config;
  pl : Placement.t;
  dsg : Design.t;
  n : int; (* pin count *)
  in_graph : bool array;
  succs : (Types.pin_id * arc) list array;
  preds : (Types.pin_id * arc) list array;
  topo : Types.pin_id array;
  topo_pos : int array;  (** pin -> index in [topo] (-1 outside graph) *)
  is_start : bool array;
  ep_of : endpoint_kind option array;
  startpoints : Types.pin_id list;
  endpoints : (Types.pin_id * endpoint_kind) list;
  skews : (Types.cell_id, float) Hashtbl.t;
  arrival : float array;
  required : float array;
  arc_delay_cache : (arc, float) Hashtbl.t;
  mutable analyzed : bool;
}

let config t = t.cfg

let placement t = t.pl

let set_skew t id s =
  Hashtbl.replace t.skews id s;
  t.analyzed <- false

let skew t id = match Hashtbl.find_opt t.skews id with Some s -> s | None -> 0.0

(* The data graph excludes clock distribution and scan pins. *)
let data_pin dsg pid =
  let p = Design.pin dsg pid in
  let c = Design.cell dsg p.Types.p_cell in
  if c.Types.c_dead then false
  else
    match (c.Types.c_kind, p.Types.p_kind) with
    | Types.Register _, (Types.Pin_d _ | Types.Pin_q _) -> true
    | Types.Register _, _ -> false
    | Types.Comb _, (Types.Pin_in _ | Types.Pin_out) -> true
    | Types.Comb _, _ -> false
    | Types.Port _, Types.Pin_port -> true
    | Types.Port _, _ -> false
    | (Types.Clock_root | Types.Clock_gate _), _ -> false

let build ?(config = default_config) pl =
  let dsg = Placement.design pl in
  let n = Design.n_pins dsg in
  let in_graph = Array.make n false in
  for pid = 0 to n - 1 do
    in_graph.(pid) <- data_pin dsg pid
  done;
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let add_arc src dst arc =
    succs.(src) <- (dst, arc) :: succs.(src);
    preds.(dst) <- (src, arc) :: preds.(dst)
  in
  (* net arcs *)
  for nid = 0 to Design.n_nets dsg - 1 do
    let net = Design.net dsg nid in
    if not net.Types.n_is_clock then begin
      match Design.driver dsg nid with
      | Some d when in_graph.(d) ->
        List.iter
          (fun s -> if in_graph.(s) then add_arc d s (Net_arc (d, s)))
          (Design.sinks dsg nid)
      | Some _ | None -> ()
    end
  done;
  (* comb cell arcs *)
  List.iter
    (fun cid ->
      let c = Design.cell dsg cid in
      match c.Types.c_kind with
      | Types.Comb _ ->
        let outs, ins =
          List.partition
            (fun pid -> (Design.pin dsg pid).Types.p_dir = Types.Output)
            c.Types.c_pins
        in
        List.iter
          (fun o ->
            List.iter
              (fun i ->
                if in_graph.(i) && in_graph.(o) then add_arc i o (Cell_arc (i, o)))
              ins)
          outs
      | Types.Register _ | Types.Clock_root | Types.Clock_gate _ | Types.Port _
        ->
        ())
    (Design.live_cells dsg);
  (* start / end points *)
  let startpoints = ref [] in
  let endpoints = ref [] in
  List.iter
    (fun cid ->
      let c = Design.cell dsg cid in
      match c.Types.c_kind with
      | Types.Register _ ->
        List.iter
          (fun pid ->
            let p = Design.pin dsg pid in
            match p.Types.p_kind with
            | Types.Pin_q _ when p.Types.p_net <> None ->
              startpoints := pid :: !startpoints
            | Types.Pin_d _ when p.Types.p_net <> None ->
              endpoints := (pid, Ep_reg_d cid) :: !endpoints
            | _ -> ())
          c.Types.c_pins
      | Types.Port Types.In_port ->
        List.iter (fun pid -> startpoints := pid :: !startpoints) c.Types.c_pins
      | Types.Port Types.Out_port ->
        List.iter
          (fun pid ->
            let p = Design.pin dsg pid in
            if p.Types.p_net <> None then endpoints := (pid, Ep_out_port) :: !endpoints)
          c.Types.c_pins
      | Types.Comb _ | Types.Clock_root | Types.Clock_gate _ -> ())
    (Design.live_cells dsg);
  (* Kahn topological order over pins that are in the graph *)
  let indeg = Array.make n 0 in
  for pid = 0 to n - 1 do
    indeg.(pid) <- List.length preds.(pid)
  done;
  let queue = Queue.create () in
  for pid = 0 to n - 1 do
    if in_graph.(pid) && indeg.(pid) = 0 then Queue.add pid queue
  done;
  let topo = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let pid = Queue.pop queue in
    topo.(!k) <- pid;
    incr k;
    List.iter
      (fun (s, _) ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      succs.(pid)
  done;
  let n_in_graph = ref 0 in
  Array.iter (fun b -> if b then incr n_in_graph) in_graph;
  if !k <> !n_in_graph then failwith "Sta.build: combinational cycle detected";
  let topo = Array.sub topo 0 !k in
  let topo_pos = Array.make n (-1) in
  Array.iteri (fun idx pid -> topo_pos.(pid) <- idx) topo;
  let is_start = Array.make n false in
  List.iter (fun pid -> is_start.(pid) <- true) !startpoints;
  let ep_of = Array.make n None in
  List.iter (fun (pid, kind) -> ep_of.(pid) <- Some kind) !endpoints;
  {
    cfg = config;
    pl;
    dsg;
    n;
    in_graph;
    succs;
    preds;
    topo;
    topo_pos;
    is_start;
    ep_of;
    startpoints = !startpoints;
    endpoints = !endpoints;
    skews = Hashtbl.create 64;
    arrival = Array.make n neg_infinity;
    required = Array.make n infinity;
    arc_delay_cache = Hashtbl.create 1024;
    analyzed = false;
  }

(* ---- delay computation ---- *)

let net_load t nid =
  let dsg = t.dsg in
  let pin_caps =
    List.fold_left
      (fun acc s -> acc +. Design.pin_cap dsg s)
      0.0 (Design.sinks dsg nid)
  in
  let pts =
    List.filter_map
      (fun pid ->
        let p = Design.pin dsg pid in
        match Placement.location_opt t.pl p.Types.p_cell with
        | Some _ -> Some (Placement.pin_location t.pl pid)
        | None -> None)
      (Design.net dsg nid).Types.n_pins
  in
  let wire_len =
    match pts with
    | [] | [ _ ] -> 0.0
    | _ -> Mbr_geom.Rect.half_perimeter (Mbr_geom.Rect.of_points pts)
  in
  pin_caps +. (t.cfg.wire_cap *. wire_len)

let wire_delay t src dst =
  let dsg = t.dsg in
  let psrc = Design.pin dsg src and pdst = Design.pin dsg dst in
  match
    ( Placement.location_opt t.pl psrc.Types.p_cell,
      Placement.location_opt t.pl pdst.Types.p_cell )
  with
  | Some _, Some _ ->
    let a = Placement.pin_location t.pl src in
    let b = Placement.pin_location t.pl dst in
    let len = Point.manhattan a b in
    let sink_cap = Design.pin_cap dsg dst in
    t.cfg.wire_res *. len *. ((t.cfg.wire_cap *. len /. 2.0) +. sink_cap)
  | _, _ -> 0.0

let arc_delay t arc =
  match Hashtbl.find_opt t.arc_delay_cache arc with
  | Some d -> d
  | None ->
    let d =
      match arc with
      | Net_arc (src, dst) -> wire_delay t src dst
      | Cell_arc (_, out) ->
        let p = Design.pin t.dsg out in
        let c = Design.cell t.dsg p.Types.p_cell in
        (match c.Types.c_kind with
        | Types.Comb a ->
          let load =
            match p.Types.p_net with
            | Some nid -> net_load t nid
            | None -> 0.0
          in
          a.Types.intrinsic +. (a.Types.drive_res *. load)
        | Types.Register _ | Types.Clock_root | Types.Clock_gate _
        | Types.Port _ ->
          0.0)
    in
    Hashtbl.replace t.arc_delay_cache arc d;
    d

let clock_arrival t cid = skew t cid

let launch_arrival t pid =
  (* arrival at a startpoint *)
  let p = Design.pin t.dsg pid in
  let c = Design.cell t.dsg p.Types.p_cell in
  match (c.Types.c_kind, p.Types.p_kind) with
  | Types.Register a, Types.Pin_q _ ->
    let load =
      match p.Types.p_net with Some nid -> net_load t nid | None -> 0.0
    in
    clock_arrival t p.Types.p_cell
    +. Cell_lib.clk_to_q a.Types.lib_cell ~load
  | Types.Port Types.In_port, _ -> t.cfg.input_delay
  | (Types.Register _ | Types.Comb _ | Types.Clock_root | Types.Clock_gate _
    | Types.Port Types.Out_port), _ ->
    0.0

let endpoint_required t (pid, kind) =
  ignore pid;
  match kind with
  | Ep_reg_d cid ->
    let a = Design.reg_attrs t.dsg cid in
    t.cfg.clock_period +. clock_arrival t cid
    -. a.Types.lib_cell.Cell_lib.setup
  | Ep_out_port -> t.cfg.clock_period -. t.cfg.output_delay

let analyze t =
  Hashtbl.reset t.arc_delay_cache;
  Array.fill t.arrival 0 t.n neg_infinity;
  Array.fill t.required 0 t.n infinity;
  List.iter
    (fun pid -> t.arrival.(pid) <- Float.max t.arrival.(pid) (launch_arrival t pid))
    t.startpoints;
  (* forward *)
  Array.iter
    (fun pid ->
      if t.arrival.(pid) > neg_infinity then
        List.iter
          (fun (s, arc) ->
            let a = t.arrival.(pid) +. arc_delay t arc in
            if a > t.arrival.(s) then t.arrival.(s) <- a)
          t.succs.(pid))
    t.topo;
  (* backward *)
  List.iter
    (fun (pid, kind) ->
      t.required.(pid) <- Float.min t.required.(pid) (endpoint_required t (pid, kind)))
    t.endpoints;
  for k = Array.length t.topo - 1 downto 0 do
    let pid = t.topo.(k) in
    if t.required.(pid) < infinity then
      List.iter
        (fun (p, arc) ->
          let r = t.required.(pid) -. arc_delay t arc in
          if r < t.required.(p) then t.required.(p) <- r)
        t.preds.(pid)
  done;
  t.analyzed <- true

let ensure t = if not t.analyzed then analyze t

(* Incremental re-timing after skew-only changes. Arc delays are
   untouched (they depend on placement/loads, not on clock arrivals), so
   only the forward cone of the changed Q pins (arrivals) and the
   backward cone of the changed D pins (requireds) need recomputation. *)
let update_skews t assignments =
  if not t.analyzed then begin
    List.iter (fun (cid, s) -> Hashtbl.replace t.skews cid s) assignments;
    analyze t
  end
  else begin
    let changed =
      List.filter (fun (cid, s) -> skew t cid <> s) assignments
    in
    List.iter (fun (cid, s) -> Hashtbl.replace t.skews cid s) changed;
    t.analyzed <- true;
    (* seed pins *)
    let q_seeds = ref [] and d_seeds = ref [] in
    List.iter
      (fun (cid, _) ->
        List.iter
          (fun pid ->
            let p = Design.pin t.dsg pid in
            match p.Types.p_kind with
            | Types.Pin_q _ when t.in_graph.(pid) -> q_seeds := pid :: !q_seeds
            | Types.Pin_d _ when t.in_graph.(pid) -> d_seeds := pid :: !d_seeds
            | _ -> ())
          (Design.pins_of t.dsg cid))
      changed;
    (* forward cone of the Q seeds *)
    let in_f = Array.make t.n false in
    let rec mark_f pid =
      if not in_f.(pid) then begin
        in_f.(pid) <- true;
        List.iter (fun (s, _) -> mark_f s) t.succs.(pid)
      end
    in
    List.iter mark_f !q_seeds;
    (* backward cone of the D seeds *)
    let in_b = Array.make t.n false in
    let rec mark_b pid =
      if not in_b.(pid) then begin
        in_b.(pid) <- true;
        List.iter (fun (p, _) -> mark_b p) t.preds.(pid)
      end
    in
    List.iter mark_b !d_seeds;
    (* arrivals forward within the cone, preds outside keep their values *)
    Array.iter
      (fun pid ->
        if in_f.(pid) then begin
          let a = if t.is_start.(pid) then launch_arrival t pid else neg_infinity in
          let a =
            List.fold_left
              (fun acc (p, arc) ->
                if t.arrival.(p) > neg_infinity then
                  Float.max acc (t.arrival.(p) +. arc_delay t arc)
                else acc)
              a t.preds.(pid)
          in
          t.arrival.(pid) <- a
        end)
      t.topo;
    (* requireds backward within the cone *)
    for k = Array.length t.topo - 1 downto 0 do
      let pid = t.topo.(k) in
      if in_b.(pid) then begin
        let r =
          match t.ep_of.(pid) with
          | Some kind -> endpoint_required t (pid, kind)
          | None -> infinity
        in
        let r =
          List.fold_left
            (fun acc (s, arc) ->
              if t.required.(s) < infinity then
                Float.min acc (t.required.(s) -. arc_delay t arc)
              else acc)
            r t.succs.(pid)
        in
        t.required.(pid) <- r
      end
    done
  end

let arrival t pid =
  ensure t;
  if pid < 0 || pid >= t.n || not t.in_graph.(pid) then None
  else begin
    let a = t.arrival.(pid) in
    if a = neg_infinity then None else Some a
  end

let required t pid =
  ensure t;
  if pid < 0 || pid >= t.n || not t.in_graph.(pid) then None
  else begin
    let r = t.required.(pid) in
    if r = infinity then None else Some r
  end

let slack t pid =
  match (arrival t pid, required t pid) with
  | Some a, Some r -> Some (r -. a)
  | _, _ -> None

let endpoint_slacks t =
  ensure t;
  List.filter_map
    (fun (pid, _) ->
      match slack t pid with Some s -> Some (pid, s) | None -> None)
    t.endpoints

let wns t =
  List.fold_left (fun acc (_, s) -> Float.min acc s) infinity (endpoint_slacks t)

let tns t =
  List.fold_left
    (fun acc (_, s) -> if s < 0.0 then acc +. s else acc)
    0.0 (endpoint_slacks t)

let failing_endpoints t =
  List.length (List.filter (fun (_, s) -> s < 0.0) (endpoint_slacks t))

let n_endpoints t = List.length t.endpoints

let output_load t pid =
  let p = Design.pin t.dsg pid in
  if p.Types.p_dir <> Types.Output then 0.0
  else match p.Types.p_net with Some nid -> net_load t nid | None -> 0.0

let reg_pin_slack t cid want_d =
  let c = Design.cell t.dsg cid in
  (match c.Types.c_kind with
  | Types.Register _ -> ()
  | Types.Comb _ | Types.Clock_root | Types.Clock_gate _ | Types.Port _ ->
    invalid_arg "Sta: not a register");
  List.fold_left
    (fun acc pid ->
      let p = Design.pin t.dsg pid in
      let relevant =
        match p.Types.p_kind with
        | Types.Pin_d _ -> want_d && p.Types.p_net <> None
        | Types.Pin_q _ -> (not want_d) && p.Types.p_net <> None
        | _ -> false
      in
      if relevant then
        match slack t pid with Some s -> Float.min acc s | None -> acc
      else acc)
    infinity c.Types.c_pins

let reg_d_slack t cid = reg_pin_slack t cid true

let reg_q_slack t cid = reg_pin_slack t cid false
