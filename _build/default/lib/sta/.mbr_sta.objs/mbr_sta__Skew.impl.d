lib/sta/skew.ml: Engine Float List Mbr_netlist Mbr_place
