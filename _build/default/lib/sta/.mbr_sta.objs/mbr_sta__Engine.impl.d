lib/sta/engine.ml: Array Float Hashtbl List Mbr_geom Mbr_liberty Mbr_netlist Mbr_place Queue
