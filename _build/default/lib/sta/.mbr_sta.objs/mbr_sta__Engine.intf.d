lib/sta/engine.mli: Mbr_netlist Mbr_place
