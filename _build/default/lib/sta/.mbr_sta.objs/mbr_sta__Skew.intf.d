lib/sta/skew.mli: Engine
