module Int_set = Set.Make (Int)

(* Bron-Kerbosch with pivoting:
   BK(R, P, X): if P and X empty, report R.
   Choose pivot u in P ∪ X maximizing |P ∩ N(u)|; iterate v over
   P \ N(u): BK(R+v, P ∩ N(v), X ∩ N(v)); move v from P to X. *)
let iter_cliques g f =
  let n = Ugraph.n_nodes g in
  let adj = Array.init n (fun i -> Int_set.of_list (Ugraph.neighbors g i)) in
  let rec bk r p x =
    if Int_set.is_empty p && Int_set.is_empty x then f r
    else begin
      let candidates_for_pivot = Int_set.union p x in
      let pivot =
        Int_set.fold
          (fun u best ->
            let score = Int_set.cardinal (Int_set.inter p adj.(u)) in
            match best with
            | Some (_, s) when s >= score -> best
            | Some _ | None -> Some (u, score))
          candidates_for_pivot None
      in
      let expand =
        match pivot with
        | Some (u, _) -> Int_set.diff p adj.(u)
        | None -> p
      in
      let p = ref p and x = ref x in
      Int_set.iter
        (fun v ->
          bk (v :: r) (Int_set.inter !p adj.(v)) (Int_set.inter !x adj.(v));
          p := Int_set.remove v !p;
          x := Int_set.add v !x)
        expand
    end
  in
  (* Degeneracy-ordered outer level keeps recursion shallow on sparse
     graphs. *)
  let order = Ugraph.degeneracy_order g in
  let pos = Array.make n 0 in
  Array.iteri (fun k v -> pos.(v) <- k) order;
  Array.iter
    (fun v ->
      let later, earlier =
        Int_set.partition (fun w -> pos.(w) > pos.(v)) adj.(v)
      in
      bk [ v ] later earlier)
    order

let maximal_cliques g =
  let acc = ref [] in
  iter_cliques g (fun clique -> acc := List.sort compare clique :: !acc);
  List.sort compare !acc

let max_clique_size g =
  let best = ref 0 in
  iter_cliques g (fun clique -> best := max !best (List.length clique));
  !best

let count_maximal_cliques g =
  let k = ref 0 in
  iter_cliques g (fun _ -> incr k);
  !k
