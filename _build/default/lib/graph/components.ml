let component_of g =
  let n = Ugraph.n_nodes g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) < 0 then begin
      let id = !next in
      incr next;
      let stack = ref [ v ] in
      comp.(v) <- id;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
          stack := rest;
          List.iter
            (fun w ->
              if comp.(w) < 0 then begin
                comp.(w) <- id;
                stack := w :: !stack
              end)
            (Ugraph.neighbors g u)
      done
    end
  done;
  comp

let components g =
  let comp = component_of g in
  let n = Array.length comp in
  let k = Array.fold_left (fun acc c -> max acc (c + 1)) 0 comp in
  let buckets = Array.make k [] in
  for v = n - 1 downto 0 do
    buckets.(comp.(v)) <- v :: buckets.(comp.(v))
  done;
  Array.to_list buckets
