lib/graph/ugraph.ml: Array Hashtbl Int List Set
