lib/graph/kpart.mli: Mbr_geom Ugraph
