lib/graph/components.ml: Array List Ugraph
