lib/graph/bron_kerbosch.ml: Array Int List Set Ugraph
