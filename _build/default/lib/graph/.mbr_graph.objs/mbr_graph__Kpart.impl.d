lib/graph/kpart.ml: Components Float List Mbr_geom
