lib/graph/ugraph.mli:
