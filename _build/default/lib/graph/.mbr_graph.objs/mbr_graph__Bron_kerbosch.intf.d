lib/graph/bron_kerbosch.mli: Ugraph
