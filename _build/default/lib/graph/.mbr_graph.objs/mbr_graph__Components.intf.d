lib/graph/components.mli: Ugraph
