module Int_set = Set.Make (Int)

type t = { n : int; adj : Int_set.t array; mutable m : int }

let create n =
  if n < 0 then invalid_arg "Ugraph.create";
  { n; adj = Array.make n Int_set.empty; m = 0 }

let n_nodes t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Ugraph: node out of range"

let add_edge t a b =
  check t a;
  check t b;
  if a = b then invalid_arg "Ugraph.add_edge: self-loop";
  if not (Int_set.mem b t.adj.(a)) then begin
    t.adj.(a) <- Int_set.add b t.adj.(a);
    t.adj.(b) <- Int_set.add a t.adj.(b);
    t.m <- t.m + 1
  end

let has_edge t a b =
  check t a;
  check t b;
  Int_set.mem b t.adj.(a)

let neighbors t i =
  check t i;
  Int_set.elements t.adj.(i)

let degree t i =
  check t i;
  Int_set.cardinal t.adj.(i)

let n_edges t = t.m

let edges t =
  let acc = ref [] in
  for a = t.n - 1 downto 0 do
    Int_set.iter (fun b -> if a < b then acc := (a, b) :: !acc) t.adj.(a)
  done;
  List.sort compare !acc

let induced t nodes =
  let k = Array.length nodes in
  let index = Hashtbl.create k in
  Array.iteri
    (fun i v ->
      check t v;
      if Hashtbl.mem index v then invalid_arg "Ugraph.induced: duplicate node";
      Hashtbl.add index v i)
    nodes;
  let sub = create k in
  Array.iteri
    (fun i v ->
      Int_set.iter
        (fun w ->
          match Hashtbl.find_opt index w with
          | Some j when i < j -> add_edge sub i j
          | Some _ | None -> ())
        t.adj.(v))
    nodes;
  sub

let is_clique t nodes =
  let rec go = function
    | [] | [ _ ] -> true
    | v :: rest -> List.for_all (fun w -> has_edge t v w) rest && go rest
  in
  go nodes

let degeneracy_order t =
  let n = t.n in
  let deg = Array.init n (fun i -> Int_set.cardinal t.adj.(i)) in
  let removed = Array.make n false in
  let order = Array.make n 0 in
  (* Buckets by current degree; O(n + m) with lazy deletion. *)
  let max_deg = Array.fold_left max 0 deg in
  let buckets = Array.make (max_deg + 1) [] in
  for i = 0 to n - 1 do
    buckets.(deg.(i)) <- i :: buckets.(deg.(i))
  done;
  let cursor = ref 0 in
  for k = 0 to n - 1 do
    (* find a live minimum-degree node *)
    if !cursor > 0 then cursor := 0;
    let rec next () =
      match buckets.(!cursor) with
      | [] ->
        incr cursor;
        next ()
      | v :: rest ->
        buckets.(!cursor) <- rest;
        if removed.(v) || deg.(v) <> !cursor then next () else v
    in
    let v = next () in
    removed.(v) <- true;
    order.(k) <- v;
    Int_set.iter
      (fun w ->
        if not removed.(w) then begin
          deg.(w) <- deg.(w) - 1;
          buckets.(deg.(w)) <- w :: buckets.(deg.(w))
        end)
      t.adj.(v)
  done;
  order
