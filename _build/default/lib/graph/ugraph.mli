(** Simple undirected graphs over integer nodes \[0, n). The register
    compatibility graph G of the paper is an instance: nodes are
    composable registers, edges are pairwise compatibility. *)

type t

val create : int -> t
(** [create n]: n isolated nodes. *)

val n_nodes : t -> int

val add_edge : t -> int -> int -> unit
(** Idempotent; self-loops are rejected with [Invalid_argument]. *)

val has_edge : t -> int -> int -> bool

val neighbors : t -> int -> int list
(** Ascending order. *)

val degree : t -> int -> int

val n_edges : t -> int

val edges : t -> (int * int) list
(** Each undirected edge once, as (lo, hi), lexicographically sorted. *)

val induced : t -> int array -> t
(** [induced g nodes]: subgraph on [nodes]; node [i] of the result is
    [nodes.(i)]. Duplicate entries are rejected. *)

val is_clique : t -> int list -> bool
(** All pairs adjacent (singletons and empty are cliques). *)

val degeneracy_order : t -> int array
(** Degeneracy ordering (repeatedly remove a minimum-degree node); used
    to make Bron–Kerbosch near-optimal on sparse graphs. *)
