(** Maximal-clique enumeration (Bron–Kerbosch, Algorithm 457) with pivot
    selection and degeneracy-ordered outer loop — the candidate-MBR
    enumeration engine of the paper's §3. The worst case is O(3^(n/3)),
    which is why callers first K-partition the compatibility graph into
    blocks of at most 30 nodes. *)

val maximal_cliques : Ugraph.t -> int list list
(** All maximal cliques, each sorted ascending; the list of cliques is
    sorted lexicographically for determinism. Isolated nodes yield
    singleton cliques. The empty graph (0 nodes) yields []. *)

val max_clique_size : Ugraph.t -> int
(** Size of the largest clique (0 for the empty graph). *)

val count_maximal_cliques : Ugraph.t -> int
