(** Connected components of an undirected graph. *)

val components : Ugraph.t -> int list list
(** Each component as an ascending node list; components ordered by
    their smallest node. *)

val component_of : Ugraph.t -> int array
(** [.(v)] = component index of node [v] (indices follow the order of
    {!components}). *)
