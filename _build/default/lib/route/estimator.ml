module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Floorplan = Mbr_place.Floorplan

type config = { gcell : float; cap_h : float; cap_v : float }

let default_config = { gcell = 10.0; cap_h = 14.0; cap_v = 12.0 }

type result = {
  signal_wl : float;
  overflow_edges : int;
  max_utilization : float;
  n_routed_nets : int;
}

let net_pin_points pl nid =
  let dsg = Placement.design pl in
  List.filter_map
    (fun pid ->
      let p = Design.pin dsg pid in
      if (Design.cell dsg p.Types.p_cell).Types.c_dead then None
      else
        match Placement.location_opt pl p.Types.p_cell with
        | Some _ -> Some (Placement.pin_location pl pid)
        | None -> None)
    (Design.net dsg nid).Types.n_pins

let median xs =
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  if n = 0 then 0.0
  else if n mod 2 = 1 then arr.(n / 2)
  else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let star_center pts =
  Point.make
    (median (List.map (fun (p : Point.t) -> p.x) pts))
    (median (List.map (fun (p : Point.t) -> p.y) pts))

let net_star_wl pl nid =
  match net_pin_points pl nid with
  | [] | [ _ ] -> 0.0
  | pts ->
    let c = star_center pts in
    List.fold_left (fun acc p -> acc +. Point.manhattan c p) 0.0 pts

let net_hpwl pl nid =
  match net_pin_points pl nid with
  | [] | [ _ ] -> 0.0
  | pts -> Rect.half_perimeter (Rect.of_points pts)

let estimate ?(config = default_config) pl =
  let dsg = Placement.design pl in
  let fp = Placement.floorplan pl in
  let grid =
    Grid.create ~core:fp.Floorplan.core ~gcell:config.gcell ~cap_h:config.cap_h
      ~cap_v:config.cap_v
  in
  let signal_wl = ref 0.0 in
  let n_routed = ref 0 in
  for nid = 0 to Design.n_nets dsg - 1 do
    let n = Design.net dsg nid in
    if not n.Types.n_is_clock then begin
      match net_pin_points pl nid with
      | [] | [ _ ] -> ()
      | pts ->
        let c = star_center pts in
        List.iter
          (fun p ->
            signal_wl := !signal_wl +. Point.manhattan c p;
            Grid.route_l grid c p ~demand:1.0)
          pts;
        incr n_routed
    end
  done;
  {
    signal_wl = !signal_wl;
    overflow_edges = Grid.overflow_edges grid;
    max_utilization = Grid.max_utilization grid;
    n_routed_nets = !n_routed;
  }
