lib/route/estimator.ml: Array Grid List Mbr_geom Mbr_netlist Mbr_place
