lib/route/grid.ml: Array Float Mbr_geom
