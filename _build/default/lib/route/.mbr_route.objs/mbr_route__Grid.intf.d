lib/route/grid.mli: Mbr_geom
