lib/route/estimator.mli: Mbr_netlist Mbr_place
