(** Design-level wirelength and congestion estimation.

    Signal nets are decomposed into a star from the pin median and each
    branch is L-routed onto the grid; wirelength is the star length
    (a tighter estimate than pure HPWL for multi-pin nets, without a
    full Steiner construction). Clock nets are excluded here — their
    wire is owned by the clock tree ({!Mbr_cts}) both in the paper's
    Table 1 ("Wirelength Clk" vs "Other") and in this reproduction. *)

type config = {
  gcell : float;  (** tile size, µm (default 10) *)
  cap_h : float;  (** horizontal tracks per edge (default 14) *)
  cap_v : float;  (** vertical tracks per edge (default 12) *)
}

val default_config : config

type result = {
  signal_wl : float;  (** total star wirelength of non-clock nets, µm *)
  overflow_edges : int;
  max_utilization : float;
  n_routed_nets : int;
}

val net_star_wl : Mbr_place.Placement.t -> Mbr_netlist.Types.net_id -> float
(** Star wirelength of one net (0 for fewer than 2 placed pins). *)

val net_hpwl : Mbr_place.Placement.t -> Mbr_netlist.Types.net_id -> float

val estimate : ?config:config -> Mbr_place.Placement.t -> result
