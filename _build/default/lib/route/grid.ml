module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect

type t = {
  core : Rect.t;
  gcell : float;
  nx : int;
  ny : int;
  cap_h : float;
  cap_v : float;
  (* h_dem.(j).(i): edge between tile (i, j) and (i+1, j); nx-1 per row *)
  h_dem : float array array;
  (* v_dem.(j).(i): edge between tile (i, j) and (i, j+1); ny-1 rows *)
  v_dem : float array array;
}

let create ~core ~gcell ~cap_h ~cap_v =
  if gcell <= 0.0 then invalid_arg "Grid.create: non-positive gcell";
  let nx = max 1 (int_of_float (ceil (Rect.width core /. gcell))) in
  let ny = max 1 (int_of_float (ceil (Rect.height core /. gcell))) in
  {
    core;
    gcell;
    nx;
    ny;
    cap_h;
    cap_v;
    h_dem = Array.init ny (fun _ -> Array.make (max 0 (nx - 1)) 0.0);
    v_dem = Array.init (max 0 (ny - 1)) (fun _ -> Array.make nx 0.0);
  }

let nx t = t.nx

let ny t = t.ny

let clamp lo hi v = max lo (min hi v)

let tile_of t (p : Point.t) =
  let i = int_of_float ((p.x -. t.core.Rect.lx) /. t.gcell) in
  let j = int_of_float ((p.y -. t.core.Rect.ly) /. t.gcell) in
  (clamp 0 (t.nx - 1) i, clamp 0 (t.ny - 1) j)

let add_h_segment t ~y ~x0 ~x1 ~demand =
  let i0, j = tile_of t (Point.make (Float.min x0 x1) y) in
  let i1, _ = tile_of t (Point.make (Float.max x0 x1) y) in
  for i = i0 to i1 - 1 do
    t.h_dem.(j).(i) <- t.h_dem.(j).(i) +. demand
  done

let add_v_segment t ~x ~y0 ~y1 ~demand =
  let i, j0 = tile_of t (Point.make x (Float.min y0 y1)) in
  let _, j1 = tile_of t (Point.make x (Float.max y0 y1)) in
  for j = j0 to j1 - 1 do
    t.v_dem.(j).(i) <- t.v_dem.(j).(i) +. demand
  done

let route_l t (a : Point.t) (b : Point.t) ~demand =
  let half = demand /. 2.0 in
  (* lower L: horizontal at a.y then vertical at b.x *)
  add_h_segment t ~y:a.y ~x0:a.x ~x1:b.x ~demand:half;
  add_v_segment t ~x:b.x ~y0:a.y ~y1:b.y ~demand:half;
  (* upper L: vertical at a.x then horizontal at b.y *)
  add_v_segment t ~x:a.x ~y0:a.y ~y1:b.y ~demand:half;
  add_h_segment t ~y:b.y ~x0:a.x ~x1:b.x ~demand:half

let fold_edges t f init =
  let acc = ref init in
  Array.iter
    (fun row -> Array.iter (fun d -> acc := f !acc `H d) row)
    t.h_dem;
  Array.iter
    (fun row -> Array.iter (fun d -> acc := f !acc `V d) row)
    t.v_dem;
  !acc

let overflow_edges t =
  fold_edges t
    (fun acc dir d ->
      let cap = match dir with `H -> t.cap_h | `V -> t.cap_v in
      if d > cap +. 1e-9 then acc + 1 else acc)
    0

let max_utilization t =
  fold_edges t
    (fun acc dir d ->
      let cap = match dir with `H -> t.cap_h | `V -> t.cap_v in
      Float.max acc (if cap > 0.0 then d /. cap else 0.0))
    0.0

let total_demand t = fold_edges t (fun acc _ d -> acc +. d) 0.0

let reset t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0.0) t.h_dem;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0.0) t.v_dem
