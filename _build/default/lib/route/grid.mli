(** Global-routing grid (g-cells) with per-edge capacities, in the style
    of the congestion estimation literature the paper cites
    (Sapatnekar/Saxena/Shelar): demand is accumulated on the boundary
    edges between adjacent g-cells and an edge whose demand exceeds its
    capacity is an {e overflow edge} — Table 1's "Ovfl Edges" metric. *)

type t

val create :
  core:Mbr_geom.Rect.t ->
  gcell:float ->
  cap_h:float ->
  cap_v:float ->
  t
(** [gcell] is the tile edge length (µm); [cap_h] is the capacity of
    each horizontal routing edge (crossings between horizontally
    adjacent tiles), [cap_v] vertical. *)

val nx : t -> int

val ny : t -> int

val tile_of : t -> Mbr_geom.Point.t -> int * int
(** Clamped tile coordinates of a point. *)

val add_h_segment : t -> y:float -> x0:float -> x1:float -> demand:float -> unit
(** Accumulate demand on every horizontal edge crossed by the segment. *)

val add_v_segment : t -> x:float -> y0:float -> y1:float -> demand:float -> unit

val route_l : t -> Mbr_geom.Point.t -> Mbr_geom.Point.t -> demand:float -> unit
(** L-shaped route between two points; demand is split half/half over
    the lower-L and upper-L bends so the estimate is unbiased. *)

val overflow_edges : t -> int
(** Edges with demand strictly above capacity. *)

val max_utilization : t -> float
(** max over edges of demand/capacity (0 when the grid is empty). *)

val total_demand : t -> float

val reset : t -> unit
