module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement

exception Parse_error of string

let dbu = 1000.0

let to_dbu x = int_of_float (Float.round (x *. dbu))

let master_of dsg cid =
  let c = Design.cell dsg cid in
  match c.Types.c_kind with
  | Types.Register a -> a.Types.lib_cell.Mbr_liberty.Cell.name
  | Types.Comb g -> g.Types.gate
  | Types.Clock_root -> "CLKROOT"
  | Types.Clock_gate _ -> "CLKGATE"
  | Types.Port Types.In_port -> "PORT_IN"
  | Types.Port Types.Out_port -> "PORT_OUT"

let to_def ?design_name pl =
  let dsg = Placement.design pl in
  let fp = Placement.floorplan pl in
  let core = fp.Floorplan.core in
  let name =
    match design_name with Some n -> n | None -> Design.name dsg
  in
  let buf = Buffer.create 16384 in
  Printf.bprintf buf "VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n"
    name (int_of_float dbu);
  Printf.bprintf buf "DIEAREA ( %d %d ) ( %d %d ) ;\n" (to_dbu core.Rect.lx)
    (to_dbu core.Rect.ly) (to_dbu core.Rect.hx) (to_dbu core.Rect.hy);
  Printf.bprintf buf "ROW core_rows %d %d ;\n"
    (to_dbu fp.Floorplan.row_height)
    (to_dbu fp.Floorplan.site_width);
  let placed = ref [] in
  Placement.iter (fun cid p -> placed := (cid, p) :: !placed) pl;
  let placed = List.rev !placed in
  Printf.bprintf buf "COMPONENTS %d ;\n" (List.length placed);
  List.iter
    (fun (cid, (p : Point.t)) ->
      Printf.bprintf buf "- %s %s + PLACED ( %d %d ) N ;\n"
        (Design.cell dsg cid).Types.c_name (master_of dsg cid) (to_dbu p.Point.x)
        (to_dbu p.Point.y))
    placed;
  Buffer.add_string buf "END COMPONENTS\nEND DESIGN\n";
  Buffer.contents buf

(* ---- reader: token stream of whitespace-separated words ---- *)

let words src =
  String.split_on_char '\n' src
  |> List.concat_map (fun line -> String.split_on_char ' ' line)
  |> List.filter (fun w -> w <> "")

let of_def dsg src =
  let toks = ref (words src) in
  let next () =
    match !toks with
    | [] -> raise (Parse_error "unexpected end of DEF")
    | w :: rest ->
      toks := rest;
      w
  in
  let num what w =
    match int_of_string_opt w with
    | Some v -> float_of_int v /. dbu
    | None -> raise (Parse_error ("expected a number for " ^ what ^ ", got " ^ w))
  in
  let die = ref None in
  let row = ref None in
  let components = ref [] in
  let rec scan () =
    match !toks with
    | [] -> ()
    | _ -> (
      match next () with
      | "DIEAREA" ->
        (* ( x0 y0 ) ( x1 y1 ) ; *)
        let expect w =
          let got = next () in
          if got <> w then raise (Parse_error ("DIEAREA: expected " ^ w))
        in
        expect "(";
        let x0 = num "die x0" (next ()) in
        let y0 = num "die y0" (next ()) in
        expect ")";
        expect "(";
        let x1 = num "die x1" (next ()) in
        let y1 = num "die y1" (next ()) in
        expect ")";
        die := Some (Rect.make ~lx:x0 ~ly:y0 ~hx:x1 ~hy:y1);
        scan ()
      | "ROW" ->
        let _name = next () in
        let rh = num "row height" (next ()) in
        let sw = num "site width" (next ()) in
        row := Some (rh, sw);
        scan ()
      | "-" -> (
        (* - name master + PLACED ( x y ) N ; *)
        let cname = next () in
        let _master = next () in
        let rec to_placed () =
          match next () with
          | "PLACED" -> ()
          | ";" -> raise (Parse_error (cname ^ ": component without PLACED"))
          | _ -> to_placed ()
        in
        to_placed ();
        match next () with
        | "(" ->
          let x = num "x" (next ()) in
          let y = num "y" (next ()) in
          components := (cname, Point.make x y) :: !components;
          scan ()
        | w -> raise (Parse_error ("expected ( after PLACED, got " ^ w)))
      | _ -> scan ())
  in
  scan ();
  let core =
    match !die with
    | Some r -> r
    | None -> raise (Parse_error "DEF without DIEAREA")
  in
  let row_height, site_width = match !row with Some p -> p | None -> (1.2, 0.2) in
  let fp = Floorplan.make ~core ~row_height ~site_width in
  let pl = Placement.create fp dsg in
  let by_name = Hashtbl.create 1024 in
  List.iter
    (fun cid -> Hashtbl.replace by_name (Design.cell dsg cid).Types.c_name cid)
    (Design.live_cells dsg);
  List.iter
    (fun (cname, p) ->
      match Hashtbl.find_opt by_name cname with
      | Some cid -> Placement.set pl cid p
      | None -> raise (Parse_error ("DEF places unknown component " ^ cname)))
    (List.rev !components);
  pl
