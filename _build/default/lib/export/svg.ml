module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Floorplan = Mbr_place.Floorplan
module Cell_lib = Mbr_liberty.Cell

let scale = 8.0

let width_color = function
  | 1 -> "#7aa6c2" (* 1-bit: blue-grey *)
  | 2 -> "#5d9b68" (* 2-bit: green *)
  | 3 | 4 -> "#d4a24c" (* 4-bit: amber *)
  | _ -> "#c25b4e" (* 8-bit+: red *)

let render ?(highlight = []) ?(title = "") pl =
  let dsg = Placement.design pl in
  let fp = Placement.floorplan pl in
  let core = fp.Floorplan.core in
  let buf = Buffer.create 65536 in
  let margin = 12.0 in
  let legend_h = 28.0 in
  let w = (Rect.width core *. scale) +. (2.0 *. margin) in
  let h = (Rect.height core *. scale) +. (2.0 *. margin) +. legend_h in
  (* SVG y grows downward; flip so the core's ly sits at the bottom *)
  let x_of v = margin +. ((v -. core.Rect.lx) *. scale) in
  let y_of v = margin +. ((core.Rect.hy -. v) *. scale) in
  Printf.bprintf buf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
     viewBox=\"0 0 %.0f %.0f\">\n"
    w h w h;
  Printf.bprintf buf "<rect width=\"%.0f\" height=\"%.0f\" fill=\"#fbfaf7\"/>\n" w h;
  if title <> "" then
    Printf.bprintf buf
      "<text x=\"%.1f\" y=\"%.1f\" font-family=\"sans-serif\" font-size=\"11\" \
       fill=\"#333\">%s</text>\n"
      margin (margin -. 3.0) title;
  (* core outline *)
  Printf.bprintf buf
    "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"none\" \
     stroke=\"#888\" stroke-width=\"1\"/>\n"
    (x_of core.Rect.lx) (y_of core.Rect.hy) (Rect.width core *. scale)
    (Rect.height core *. scale);
  let emit_rect ?(stroke = "none") ?(stroke_w = 0.0) r fill opacity =
    Printf.bprintf buf
      "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"%s\" \
       fill-opacity=\"%.2f\" stroke=\"%s\" stroke-width=\"%.1f\"/>\n"
      (x_of r.Rect.lx) (y_of r.Rect.hy) (Rect.width r *. scale)
      (Rect.height r *. scale) fill opacity stroke stroke_w
  in
  (* combinational cells first (background layer) *)
  Placement.iter
    (fun cid _ ->
      match (Design.cell dsg cid).Types.c_kind with
      | Types.Comb _ -> emit_rect (Placement.footprint pl cid) "#d8d5ce" 0.8
      | Types.Register _ | Types.Clock_root | Types.Clock_gate _ | Types.Port _
        ->
        ())
    pl;
  (* registers by width *)
  Placement.iter
    (fun cid _ ->
      match (Design.cell dsg cid).Types.c_kind with
      | Types.Register a ->
        let bits = a.Types.lib_cell.Cell_lib.bits in
        emit_rect (Placement.footprint pl cid) (width_color bits) 0.95
      | Types.Comb _ | Types.Clock_root | Types.Clock_gate _ | Types.Port _ ->
        ())
    pl;
  (* highlights on top *)
  List.iter
    (fun cid ->
      match Design.cell dsg cid with
      | c ->
        if (not c.Types.c_dead) && Placement.is_placed pl cid then
          emit_rect
            (Placement.footprint pl cid)
            "none" 1.0 ~stroke:"#111" ~stroke_w:1.6
      | exception Invalid_argument _ -> () (* unknown ids are ignored *))
    highlight;
  (* legend *)
  let ly = h -. legend_h +. 8.0 in
  List.iteri
    (fun i (label, color) ->
      let x = margin +. (float_of_int i *. 72.0) in
      Printf.bprintf buf
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"10\" height=\"10\" fill=\"%s\"/>\n" x ly
        color;
      Printf.bprintf buf
        "<text x=\"%.1f\" y=\"%.1f\" font-family=\"sans-serif\" font-size=\"10\" \
         fill=\"#333\">%s</text>\n"
        (x +. 14.0) (ly +. 9.0) label)
    [
      ("1-bit", width_color 1);
      ("2-bit", width_color 2);
      ("4-bit", width_color 4);
      ("8-bit", width_color 8);
      ("logic", "#d8d5ce");
    ];
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
