lib/export/svg.ml: Buffer List Mbr_geom Mbr_liberty Mbr_netlist Mbr_place Printf
