lib/export/verilog.mli: Mbr_liberty Mbr_netlist
