lib/export/svg.mli: Mbr_netlist Mbr_place
