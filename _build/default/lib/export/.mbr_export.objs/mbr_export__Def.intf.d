lib/export/def.mli: Mbr_netlist Mbr_place
