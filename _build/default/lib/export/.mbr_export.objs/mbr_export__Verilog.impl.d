lib/export/verilog.ml: Array Buffer Hashtbl List Mbr_liberty Mbr_netlist Option Printf String
