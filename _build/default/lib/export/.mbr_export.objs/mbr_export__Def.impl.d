lib/export/def.ml: Buffer Float Hashtbl List Mbr_geom Mbr_liberty Mbr_netlist Mbr_place Printf String
