(** DEF-style placement interchange.

    {!to_def} writes the floorplan (DIEAREA, row/site pitch) and every
    placed live cell as a [COMPONENTS] entry with a [PLACED] location;
    {!of_def} reads it back onto a design whose cell names match
    (typically one reconstructed from the matching Verilog netlist).
    Coordinates use the customary 1000 database units per micron. *)

val to_def : ?design_name:string -> Mbr_place.Placement.t -> string

exception Parse_error of string

val of_def : Mbr_netlist.Design.t -> string -> Mbr_place.Placement.t
(** Builds the floorplan from DIEAREA/ROW pitch and places every
    component found by name. Unknown component names and malformed
    input raise {!Parse_error}; cells of the design absent from the
    file are simply left unplaced. *)
