module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Cell_lib = Mbr_liberty.Cell

exception Parse_error of string

type gate_resolver = string -> Types.comb_attrs option

let resolver_of_gates gates name =
  List.find_map
    (fun (g : Mbr_liberty.Liberty_io.gate) ->
      if g.Mbr_liberty.Liberty_io.g_name = name then
        Some
          Types.
            {
              gate = g.Mbr_liberty.Liberty_io.g_name;
              n_inputs = g.Mbr_liberty.Liberty_io.g_inputs;
              drive_res = g.Mbr_liberty.Liberty_io.g_drive_res;
              intrinsic = g.Mbr_liberty.Liberty_io.g_intrinsic;
              input_cap = g.Mbr_liberty.Liberty_io.g_input_cap;
              area = g.Mbr_liberty.Liberty_io.g_area;
              g_width = g.Mbr_liberty.Liberty_io.g_area /. 1.2;
              g_height = 1.2;
            }
      else None)
    gates

(* ---------- writer ---------- *)

let sanitize name =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        || c = '_'
      then c
      else '_')
    name

(* Net output names: a net carrying exactly one primary IO takes the
   port's name so the module interface reads naturally; extra ports on
   the same net become assign aliases. *)
let net_names dsg =
  let names = Array.init (Design.n_nets dsg) (fun _ -> "") in
  let used = Hashtbl.create 256 in
  let claim base =
    let rec go k =
      let cand = if k = 0 then base else Printf.sprintf "%s_%d" base k in
      if Hashtbl.mem used cand then go (k + 1)
      else begin
        Hashtbl.replace used cand ();
        cand
      end
    in
    go 0
  in
  let port_of_net = Hashtbl.create 64 in
  let extra_ports = ref [] in
  List.iter
    (fun cid ->
      let c = Design.cell dsg cid in
      match c.Types.c_kind with
      | Types.Port dir ->
        List.iter
          (fun pid ->
            match (Design.pin dsg pid).Types.p_net with
            | Some nid ->
              if Hashtbl.mem port_of_net nid then
                extra_ports := (c.Types.c_name, dir, nid) :: !extra_ports
              else Hashtbl.replace port_of_net nid (c.Types.c_name, dir)
            | None -> ())
          c.Types.c_pins
      | Types.Register _ | Types.Comb _ | Types.Clock_root | Types.Clock_gate _
        ->
        ())
    (Design.live_cells dsg);
  Hashtbl.iter
    (fun nid (pname, _) -> names.(nid) <- claim (sanitize pname))
    port_of_net;
  for nid = 0 to Design.n_nets dsg - 1 do
    if names.(nid) = "" then
      names.(nid) <- claim (sanitize (Design.net dsg nid).Types.n_name)
  done;
  (names, port_of_net, List.rev !extra_ports)

let reg_attr_string (a : Types.reg_attrs) =
  let parts = ref [] in
  if a.Types.fixed then parts := "mbr_fixed" :: !parts;
  if a.Types.size_only then parts := "mbr_size_only" :: !parts;
  (match a.Types.scan with
  | Some s ->
    parts := Printf.sprintf "mbr_scan_partition = %d" s.Types.partition :: !parts;
    (match s.Types.section with
    | Some (sec, pos) ->
      parts := Printf.sprintf "mbr_scan_section = %d" sec :: !parts;
      parts := Printf.sprintf "mbr_scan_pos = %d" pos :: !parts
    | None -> ())
  | None -> ());
  (match a.Types.gate_enable with
  | Some e -> parts := Printf.sprintf "mbr_enable = \"%s\"" e :: !parts
  | None -> ());
  match List.rev !parts with
  | [] -> ""
  | ps -> Printf.sprintf "(* %s *)\n  " (String.concat ", " ps)

let pin_name = Types.pin_kind_to_string

let to_verilog ?module_name dsg =
  let names, port_of_net, extra_ports = net_names dsg in
  let mname =
    match module_name with Some m -> m | None -> sanitize (Design.name dsg)
  in
  let buf = Buffer.create 16384 in
  let ports =
    Hashtbl.fold (fun nid (_, dir) acc -> (names.(nid), dir, nid) :: acc)
      port_of_net []
    @ List.map (fun (n, d, nid) -> (sanitize n, d, nid)) extra_ports
  in
  let ports = List.sort compare ports in
  Printf.bprintf buf "module %s (%s);\n" mname
    (String.concat ", " (List.map (fun (n, _, _) -> n) ports));
  List.iter
    (fun (n, dir, _) ->
      Printf.bprintf buf "  %s %s;\n"
        (match dir with Types.In_port -> "input" | Types.Out_port -> "output")
        n)
    ports;
  (* wires for every other live net *)
  let port_nets = Hashtbl.copy port_of_net in
  for nid = 0 to Design.n_nets dsg - 1 do
    let n = Design.net dsg nid in
    if (not (Hashtbl.mem port_nets nid)) && n.Types.n_pins <> [] then
      Printf.bprintf buf "  wire %s;\n" names.(nid)
  done;
  (* aliases for extra ports sharing a net *)
  List.iter
    (fun (pname, dir, nid) ->
      match dir with
      | Types.Out_port -> Printf.bprintf buf "  assign %s = %s;\n" (sanitize pname) names.(nid)
      | Types.In_port -> Printf.bprintf buf "  assign %s = %s;\n" names.(nid) (sanitize pname))
    extra_ports;
  (* instances *)
  let emit_instance master inst attr conns =
    let conns =
      List.filter_map
        (fun (pin, nid) ->
          match nid with
          | Some nid -> Some (Printf.sprintf ".%s(%s)" pin names.(nid))
          | None -> None)
        conns
    in
    Printf.bprintf buf "  %s%s %s (%s);\n" attr master (sanitize inst)
      (String.concat ", " conns)
  in
  List.iter
    (fun cid ->
      let c = Design.cell dsg cid in
      let pin_conns () =
        List.map
          (fun pid ->
            let p = Design.pin dsg pid in
            (pin_name p.Types.p_kind, p.Types.p_net))
          c.Types.c_pins
      in
      match c.Types.c_kind with
      | Types.Register a ->
        emit_instance a.Types.lib_cell.Cell_lib.name c.Types.c_name
          (reg_attr_string a) (pin_conns ())
      | Types.Comb g -> emit_instance g.Types.gate c.Types.c_name "" (pin_conns ())
      | Types.Clock_root -> emit_instance "CLKROOT" c.Types.c_name "" (pin_conns ())
      | Types.Clock_gate { enable } ->
        emit_instance "CLKGATE" c.Types.c_name
          (Printf.sprintf "(* mbr_enable = \"%s\" *)\n  " enable)
          (pin_conns ())
      | Types.Port _ -> ())
    (Design.live_cells dsg);
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

(* ---------- parser ---------- *)

type token =
  | Tident of string
  | Tnum of int
  | Tstr of string
  | Tsym of char
  | Tattr of (string * string option) list
  | Teof

let tokenize src =
  let n = String.length src in
  let i = ref 0 in
  let line = ref 1 in
  let out = ref [] in
  let fail msg = raise (Parse_error (Printf.sprintf "line %d: %s" !line msg)) in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '$'
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* attribute list *)
      let stop =
        let rec find j =
          if j + 1 >= n then fail "unterminated attribute"
          else if src.[j] = '*' && src.[j + 1] = ')' then j
          else find (j + 1)
        in
        find (!i + 2)
      in
      let body = String.sub src (!i + 2) (stop - !i - 2) in
      i := stop + 2;
      let parse_item item =
        match String.index_opt item '=' with
        | None -> (String.trim item, None)
        | Some k ->
          let key = String.trim (String.sub item 0 k) in
          let v = String.trim (String.sub item (k + 1) (String.length item - k - 1)) in
          let v =
            if String.length v >= 2 && v.[0] = '"' then String.sub v 1 (String.length v - 2)
            else v
          in
          (key, Some v)
      in
      let items =
        List.filter_map
          (fun s -> if String.trim s = "" then None else Some (parse_item s))
          (String.split_on_char ',' body)
      in
      out := Tattr items :: !out
    end
    else if c = '"' then begin
      let rec find j = if j >= n then fail "unterminated string" else if src.[j] = '"' then j else find (j + 1) in
      let stop = find (!i + 1) in
      out := Tstr (String.sub src (!i + 1) (stop - !i - 1)) :: !out;
      i := stop + 1
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      let w = String.sub src start (!i - start) in
      match int_of_string_opt w with
      | Some v -> out := Tnum v :: !out
      | None -> out := Tident w :: !out
    end
    else if c = '(' || c = ')' || c = ';' || c = ',' || c = '.' || c = '=' then begin
      out := Tsym c :: !out;
      incr i
    end
    else fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev (Teof :: !out)

type stream = { mutable toks : token list }

let peek s = match s.toks with t :: _ -> t | [] -> Teof

let advance s = match s.toks with _ :: r -> s.toks <- r | [] -> ()

let expect_sym s c =
  match peek s with
  | Tsym c' when c' = c -> advance s
  | _ -> raise (Parse_error (Printf.sprintf "expected %C" c))

let ident s what =
  match peek s with
  | Tident id ->
    advance s;
    id
  | _ -> raise (Parse_error ("expected " ^ what))

(* statements collected before design construction *)
type stmt =
  | Decl of string * string list (* input/output/wire *)
  | Assign of string * string
  | Inst of {
      master : string;
      inst : string;
      attrs : (string * string option) list;
      conns : (string * string) list;
    }

let parse_module src =
  let s = { toks = tokenize src } in
  (match ident s "module keyword" with
  | "module" -> ()
  | _ -> raise (Parse_error "expected 'module'"));
  let mname = ident s "module name" in
  expect_sym s '(';
  let rec ports acc =
    match peek s with
    | Tsym ')' ->
      advance s;
      List.rev acc
    | Tident id ->
      advance s;
      (match peek s with Tsym ',' -> advance s | _ -> ());
      ports (id :: acc)
    | _ -> raise (Parse_error "malformed port list")
  in
  let port_list = ports [] in
  expect_sym s ';';
  let stmts = ref [] in
  let pending_attrs = ref [] in
  let rec body () =
    match peek s with
    | Tident "endmodule" ->
      advance s;
      ()
    | Tattr items ->
      advance s;
      pending_attrs := !pending_attrs @ items;
      body ()
    | Tident (("input" | "output" | "wire") as kw) ->
      advance s;
      let rec names acc =
        let id = ident s "declaration name" in
        match peek s with
        | Tsym ',' ->
          advance s;
          names (id :: acc)
        | Tsym ';' ->
          advance s;
          List.rev (id :: acc)
        | _ -> raise (Parse_error "malformed declaration")
      in
      stmts := Decl (kw, names []) :: !stmts;
      body ()
    | Tident "assign" ->
      advance s;
      let lhs = ident s "assign lhs" in
      expect_sym s '=';
      let rhs = ident s "assign rhs" in
      expect_sym s ';';
      stmts := Assign (lhs, rhs) :: !stmts;
      body ()
    | Tident master ->
      advance s;
      let inst = ident s "instance name" in
      expect_sym s '(';
      let rec conns acc =
        match peek s with
        | Tsym ')' ->
          advance s;
          List.rev acc
        | Tsym '.' ->
          advance s;
          let pin = ident s "pin name" in
          expect_sym s '(';
          let net = ident s "net name" in
          expect_sym s ')';
          (match peek s with Tsym ',' -> advance s | _ -> ());
          conns ((pin, net) :: acc)
        | _ -> raise (Parse_error "malformed connection list")
      in
      let conns = conns [] in
      expect_sym s ';';
      let attrs = !pending_attrs in
      pending_attrs := [];
      stmts := Inst { master; inst; attrs; conns } :: !stmts;
      body ()
    | Teof -> raise (Parse_error "unexpected end of file (missing endmodule?)")
    | _ -> raise (Parse_error "unexpected token in module body")
  in
  body ();
  (mname, port_list, List.rev !stmts)

let pin_kind_of_name name =
  let tail s = int_of_string_opt (String.sub s 1 (String.length s - 1)) in
  let tail2 s = int_of_string_opt (String.sub s 2 (String.length s - 2)) in
  if name = "CK" then Some Types.Pin_clock
  else if name = "R" then Some Types.Pin_reset
  else if name = "SE" then Some Types.Pin_scan_enable
  else if name = "Y" then Some Types.Pin_out
  else if name = "P" then Some Types.Pin_port
  else if String.length name >= 2 && name.[0] = 'D' then
    Option.map (fun i -> Types.Pin_d i) (tail name)
  else if String.length name >= 2 && name.[0] = 'Q' then
    Option.map (fun i -> Types.Pin_q i) (tail name)
  else if String.length name >= 2 && name.[0] = 'A' then
    Option.map (fun i -> Types.Pin_in i) (tail name)
  else if String.length name >= 3 && String.sub name 0 2 = "SI" then
    Option.map (fun i -> Types.Pin_scan_in i) (tail2 name)
  else if String.length name >= 3 && String.sub name 0 2 = "SO" then
    Option.map (fun i -> Types.Pin_scan_out i) (tail2 name)
  else None

let of_verilog ~library ~gates src =
  let mname, port_list, stmts = parse_module src in
  (* alias resolution via union-find over names *)
  let alias = Hashtbl.create 16 in
  let rec resolve n = match Hashtbl.find_opt alias n with Some m -> resolve m | None -> n in
  List.iter
    (fun st -> match st with Assign (a, b) -> Hashtbl.replace alias a (resolve b) | Decl _ | Inst _ -> ())
    stmts;
  (* which nets are clocks: nets on CK pins or driven by CLKROOT/CLKGATE *)
  let clockish = Hashtbl.create 8 in
  List.iter
    (fun st ->
      match st with
      | Inst { master; conns; _ } ->
        List.iter
          (fun (pin, net) ->
            if pin = "CK" || ((master = "CLKROOT" || master = "CLKGATE") && pin = "Y")
            then Hashtbl.replace clockish (resolve net) ())
          conns
      | Decl _ | Assign _ -> ())
    stmts;
  let dsg = Design.create ~name:mname in
  let nets = Hashtbl.create 256 in
  let net_of name =
    let name = resolve name in
    match Hashtbl.find_opt nets name with
    | Some nid -> nid
    | None ->
      let nid = Design.add_net ~is_clock:(Hashtbl.mem clockish name) dsg name in
      Hashtbl.replace nets name nid;
      nid
  in
  (* port directions *)
  let dirs = Hashtbl.create 16 in
  List.iter
    (fun st ->
      match st with
      | Decl ("input", names) -> List.iter (fun n -> Hashtbl.replace dirs n Types.In_port) names
      | Decl ("output", names) -> List.iter (fun n -> Hashtbl.replace dirs n Types.Out_port) names
      | Decl _ | Assign _ | Inst _ -> ())
    stmts;
  List.iter
    (fun p ->
      match Hashtbl.find_opt dirs p with
      | Some dir -> ignore (Design.add_port dsg p dir (net_of p))
      | None -> raise (Parse_error ("port without direction: " ^ p)))
    port_list;
  (* instances *)
  let attr_flag attrs k = List.mem_assoc k attrs in
  let attr_int attrs k =
    match List.assoc_opt k attrs with
    | Some (Some v) -> int_of_string_opt v
    | _ -> None
  in
  let attr_str attrs k =
    match List.assoc_opt k attrs with Some (Some v) -> Some v | _ -> None
  in
  List.iter
    (fun st ->
      match st with
      | Decl _ | Assign _ -> ()
      | Inst { master; inst; attrs; conns } -> (
        let conns =
          List.map
            (fun (pin, net) ->
              match pin_kind_of_name pin with
              | Some k -> (k, net_of net)
              | None -> raise (Parse_error ("unknown pin name " ^ pin)))
            conns
        in
        let find k = List.assoc_opt k conns in
        match master with
        | "CLKROOT" -> (
          match find Types.Pin_out with
          | Some nid -> ignore (Design.add_clock_root dsg inst nid)
          | None -> raise (Parse_error (inst ^ ": CLKROOT without Y")))
        | "CLKGATE" -> (
          let enable =
            match attr_str attrs "mbr_enable" with Some e -> e | None -> inst
          in
          match (find (Types.Pin_in 0), find Types.Pin_out) with
          | Some a, Some y ->
            ignore (Design.add_clock_gate dsg inst ~enable ~ck_in:a ~ck_out:y)
          | _, _ -> raise (Parse_error (inst ^ ": CLKGATE needs A0 and Y")))
        | _ -> (
          match Library.find library master with
          | cell ->
            let bits = cell.Cell_lib.bits in
            let pick f = Array.init bits (fun b -> find (f b)) in
            let scan =
              match attr_int attrs "mbr_scan_partition" with
              | Some partition ->
                let section =
                  match
                    (attr_int attrs "mbr_scan_section", attr_int attrs "mbr_scan_pos")
                  with
                  | Some sec, Some pos -> Some (sec, pos)
                  | _, _ -> None
                in
                Some Types.{ partition; section }
              | None -> None
            in
            let a =
              Types.
                {
                  lib_cell = cell;
                  fixed = attr_flag attrs "mbr_fixed";
                  size_only = attr_flag attrs "mbr_size_only";
                  scan;
                  gate_enable = attr_str attrs "mbr_enable";
                }
            in
            let clock =
              match find Types.Pin_clock with
              | Some nid -> nid
              | None -> raise (Parse_error (inst ^ ": register without CK"))
            in
            let scan_pins f =
              List.filter_map
                (fun (k, nid) ->
                  match f k with Some b -> Some (b, nid) | None -> None)
                conns
            in
            let conn =
              {
                Design.d_nets = pick (fun b -> Types.Pin_d b);
                q_nets = pick (fun b -> Types.Pin_q b);
                clock;
                reset = find Types.Pin_reset;
                scan_enable = find Types.Pin_scan_enable;
                scan_ins =
                  scan_pins (function Types.Pin_scan_in b -> Some b | _ -> None);
                scan_outs =
                  scan_pins (function Types.Pin_scan_out b -> Some b | _ -> None);
              }
            in
            ignore (Design.add_register dsg inst a conn)
          | exception Not_found -> (
            match gates master with
            | Some g ->
              let inputs =
                List.filter_map
                  (fun (k, nid) ->
                    match k with Types.Pin_in i -> Some (i, nid) | _ -> None)
                  conns
                |> List.sort compare |> List.map snd
              in
              let output =
                match find Types.Pin_out with
                | Some nid -> nid
                | None -> raise (Parse_error (inst ^ ": gate without Y"))
              in
              ignore (Design.add_comb dsg inst g ~inputs ~output)
            | None -> raise (Parse_error ("unknown master " ^ master)))))
      )
    stmts;
  dsg
