(** SVG rendering of a placement — the Fig. 2-style view: the core
    outline, combinational cells in grey, registers coloured by bit
    width, optional highlights (e.g. the MBRs a flow run created).
    Written for visual inspection of before/after composition. *)

val render :
  ?highlight:Mbr_netlist.Types.cell_id list ->
  ?title:string ->
  Mbr_place.Placement.t ->
  string
(** A standalone SVG document. [highlight]ed cells get a strong outline
    (unknown or unplaced ids are ignored). Scale: 8 px per µm, plus a
    legend of register widths. *)
