(** Structural Verilog interchange.

    {!to_verilog} writes a gate-level netlist: one module whose ports
    are the design's primary IOs, a [wire] per internal net, and one
    instance per live cell with named port connections. Register
    attributes that Verilog cannot express (fixed/size-only, scan
    partition and section, clock-gating enable) ride on standard
    [(* attribute *)] annotations, so {!of_verilog} reconstructs the
    design losslessly given the same register library and a resolver
    for combinational gate names.

    Pin naming follows the library model: [D<i>]/[Q<i>], [CK], [R],
    [SE], [SI<i>]/[SO<i>] for registers; [A<i>]/[Y] for gates. *)

val to_verilog : ?module_name:string -> Mbr_netlist.Design.t -> string

exception Parse_error of string

type gate_resolver = string -> Mbr_netlist.Types.comb_attrs option
(** Maps an instantiated gate master name (e.g. "NAND2_X1") to its
    electrical model. *)

val resolver_of_gates : Mbr_liberty.Liberty_io.gate list -> gate_resolver
(** Build a resolver from the combinational cells of a Liberty file
    (see {!Mbr_liberty.Liberty_io.of_liberty_full}); footprints assume
    the standard 1.2 µm row height. *)

val of_verilog :
  library:Mbr_liberty.Library.t ->
  gates:gate_resolver ->
  string ->
  Mbr_netlist.Design.t
(** Parse a netlist written by {!to_verilog} (or equivalent structural
    Verilog in the same subset: module/wire/instances with named
    connections, [(* *)] attributes). Raises {!Parse_error} on
    malformed input, unknown masters, or unresolvable gates. *)
