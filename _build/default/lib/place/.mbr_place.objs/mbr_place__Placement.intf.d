lib/place/placement.mli: Floorplan Mbr_geom Mbr_netlist
