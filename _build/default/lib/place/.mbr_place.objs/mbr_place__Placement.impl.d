lib/place/placement.ml: Floorplan Hashtbl List Mbr_geom Mbr_liberty Mbr_netlist
