lib/place/legalizer.ml: Array Float Floorplan List Mbr_geom Mbr_netlist Option Placement
