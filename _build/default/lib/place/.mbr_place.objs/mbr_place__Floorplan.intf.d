lib/place/floorplan.mli: Mbr_geom
