lib/place/floorplan.ml: Float Mbr_geom
