lib/place/legalizer.mli: Mbr_geom Placement
