(** Row-based core area: standard-cell rows of fixed height on a site
    grid, the coordinate frame for placement and legalization. *)

type t = {
  core : Mbr_geom.Rect.t;
  row_height : float;
  site_width : float;
}

val make :
  core:Mbr_geom.Rect.t -> row_height:float -> site_width:float -> t
(** Raises [Invalid_argument] on non-positive row height / site width. *)

val n_rows : t -> int

val row_y : t -> int -> float
(** Bottom y of row [i]; raises [Invalid_argument] out of range. *)

val row_of_y : t -> float -> int
(** Row whose strip contains (or is nearest to) [y], clamped to valid
    rows. *)

val snap_x : t -> float -> float
(** Nearest site boundary, clamped into the core. *)

val snap : t -> Mbr_geom.Point.t -> Mbr_geom.Point.t
(** Lower-left corner snapped to (site, row). *)

val inside : t -> Mbr_geom.Rect.t -> bool
(** Is the footprint fully inside the core? *)

val clamp_ll : t -> w:float -> h:float -> Mbr_geom.Point.t -> Mbr_geom.Point.t
(** Clamp a lower-left corner so a w×h footprint stays inside the
    core. *)
