(** Placement legalization under the paper's simplified physical
    constraints (§3.2/§4.2): a composed MBR needs a row-aligned,
    in-core location that does not overlap any {e register} — smaller
    combinational cells in the area are assumed displaceable by the
    subsequent incremental placement pass ("registers are larger and
    often have higher placement priority").

    {!Occupancy} maintains the register footprints per row and answers
    nearest-free-site queries; {!legalize_all} is the batch Tetris-style
    pass used to produce a legal starting placement. *)

module Occupancy : sig
  type t

  val of_placement : Placement.t -> t
  (** Indexes the current live placed registers. *)

  val add : t -> Mbr_geom.Rect.t -> unit
  (** Mark a footprint occupied. *)

  val remove : t -> Mbr_geom.Rect.t -> unit
  (** Unmark (exact rectangle previously added); unknown rectangles are
      ignored. *)

  val fits : t -> Mbr_geom.Rect.t -> bool
  (** In-core, row-aligned-height span with no register overlap? *)

  val find_nearest :
    t ->
    ?region:Mbr_geom.Rect.t ->
    w:float ->
    Mbr_geom.Point.t ->
    Mbr_geom.Point.t option
  (** Nearest (Manhattan, lower-left to lower-left) legal row-aligned
      location for a cell of width [w] and row height, optionally
      constrained so the footprint stays inside [region]. [None] when no
      row has a wide-enough gap. *)
end

val legalize_all : Placement.t -> unit
(** Snap every placed live cell to a row and site with no overlaps,
    processing registers first (priority), then the rest, each to the
    nearest free location. Mutates the placement in place. *)

val total_displacement : before:Placement.t -> after:Placement.t -> float
(** Sum of Manhattan moves of cells placed in both snapshots. *)
