module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect

type t = { core : Rect.t; row_height : float; site_width : float }

let make ~core ~row_height ~site_width =
  if row_height <= 0.0 || site_width <= 0.0 then
    invalid_arg "Floorplan.make: non-positive pitch";
  { core; row_height; site_width }

let n_rows t = int_of_float (Rect.height t.core /. t.row_height)

let row_y t i =
  if i < 0 || i >= n_rows t then invalid_arg "Floorplan.row_y: out of range";
  t.core.Rect.ly +. (float_of_int i *. t.row_height)

let row_of_y t y =
  let raw = (y -. t.core.Rect.ly) /. t.row_height in
  let i = int_of_float (Float.round raw) in
  max 0 (min (n_rows t - 1) i)

let snap_x t x =
  let sites = Float.round ((x -. t.core.Rect.lx) /. t.site_width) in
  let x' = t.core.Rect.lx +. (sites *. t.site_width) in
  Float.max t.core.Rect.lx (Float.min t.core.Rect.hx x')

let snap t (p : Point.t) = Point.make (snap_x t p.x) (row_y t (row_of_y t p.y))

let inside t r = Rect.contains_rect t.core r

let clamp_ll t ~w ~h (p : Point.t) =
  let x = Float.max t.core.Rect.lx (Float.min (t.core.Rect.hx -. w) p.x) in
  let y = Float.max t.core.Rect.ly (Float.min (t.core.Rect.hy -. h) p.y) in
  Point.make x y
