module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types

module Occupancy = struct
  type t = {
    fp : Floorplan.t;
    rows : (float * float) list array; (* sorted disjoint x-intervals *)
  }

  (* Rows a rectangle's interior touches: floor-based so a cell lying
     exactly on rows [i, i+k) marks exactly those rows (row_of_y rounds
     to the nearest row, which is the wrong semantics here). *)
  let rows_of_rect t (r : Rect.t) =
    let fp = t.fp in
    let core = fp.Floorplan.core in
    let row_floor y =
      let i = int_of_float (Float.floor ((y -. core.Rect.ly) /. fp.Floorplan.row_height)) in
      max 0 (min (Floorplan.n_rows fp - 1) i)
    in
    let lo = row_floor (r.Rect.ly +. 1e-6) in
    let hi = row_floor (r.Rect.hy -. 1e-6) in
    List.init (hi - lo + 1) (fun k -> lo + k)

  let create fp = { fp; rows = Array.make (max 1 (Floorplan.n_rows fp)) [] }

  let insert_interval intervals (lo, hi) =
    let rec go = function
      | [] -> [ (lo, hi) ]
      | (a, b) :: rest when a < lo -> (a, b) :: go rest
      | rest -> (lo, hi) :: rest
    in
    go intervals

  let add t r =
    List.iter
      (fun row ->
        t.rows.(row) <- insert_interval t.rows.(row) (r.Rect.lx, r.Rect.hx))
      (rows_of_rect t r)

  let remove t r =
    List.iter
      (fun row ->
        let eq (a, b) =
          Float.abs (a -. r.Rect.lx) < 1e-9 && Float.abs (b -. r.Rect.hx) < 1e-9
        in
        let rec drop_first = function
          | [] -> []
          | iv :: rest -> if eq iv then rest else iv :: drop_first rest
        in
        t.rows.(row) <- drop_first t.rows.(row))
      (rows_of_rect t r)

  let of_placement pl =
    let t = create (Placement.floorplan pl) in
    List.iter (fun id -> add t (Placement.footprint pl id)) (Placement.placed_registers pl);
    t

  let row_free t row (lo, hi) =
    List.for_all (fun (a, b) -> b <= lo +. 1e-9 || a >= hi -. 1e-9) t.rows.(row)

  let fits t r =
    Floorplan.inside t.fp r
    && List.for_all (fun row -> row_free t row (r.Rect.lx, r.Rect.hx)) (rows_of_rect t r)

  (* Nearest x position in a row where a width-w cell fits, given the
     sorted occupied intervals and the allowed x-range. *)
  let nearest_x_in_row t row ~w ~xmin ~xmax ~desired =
    if xmax -. xmin < w -. 1e-9 then None
    else begin
      let intervals = t.rows.(row) in
      (* Build free gaps clipped to [xmin, xmax]. *)
      let gaps = ref [] in
      let cursor = ref xmin in
      List.iter
        (fun (a, b) ->
          if a > !cursor then gaps := (!cursor, Float.min a xmax) :: !gaps;
          cursor := Float.max !cursor b)
        intervals;
      if !cursor < xmax then gaps := (!cursor, xmax) :: !gaps;
      let best = ref None in
      List.iter
        (fun (glo, ghi) ->
          if ghi -. glo >= w -. 1e-9 then begin
            let x = Float.max glo (Float.min (ghi -. w) desired) in
            let cost = Float.abs (x -. desired) in
            match !best with
            | Some (_, c) when c <= cost -> ()
            | Some _ | None -> best := Some (x, cost)
          end)
        !gaps;
      Option.map fst !best
    end

  let find_nearest t ?region ~w (desired : Point.t) =
    let fp = t.fp in
    let core = fp.Floorplan.core in
    let h = fp.Floorplan.row_height in
    let xmin, xmax, ymin, ymax =
      match region with
      | Some r ->
        ( Float.max core.Rect.lx r.Rect.lx,
          Float.min (core.Rect.hx -. w) (r.Rect.hx -. w),
          Float.max core.Rect.ly r.Rect.ly,
          Float.min (core.Rect.hy -. h) (r.Rect.hy -. h) )
      | None ->
        (core.Rect.lx, core.Rect.hx -. w, core.Rect.ly, core.Rect.hy -. h)
    in
    if xmax < xmin -. 1e-9 || ymax < ymin -. 1e-9 then None
    else begin
      let n_rows = Floorplan.n_rows fp in
      let desired_row = Floorplan.row_of_y fp desired.Point.y in
      let best = ref None in
      let consider row =
        if row >= 0 && row < n_rows then begin
          let y = Floorplan.row_y fp row in
          if y >= ymin -. 1e-9 && y <= ymax +. 1e-9 then begin
            let dy = Float.abs (y -. desired.Point.y) in
            let prune =
              match !best with Some (_, c) -> dy >= c | None -> false
            in
            if not prune then begin
              match
                nearest_x_in_row t row ~w ~xmin ~xmax:(xmax +. w) ~desired:desired.Point.x
              with
              | Some x ->
                let cost = dy +. Float.abs (x -. desired.Point.x) in
                (match !best with
                | Some (_, c) when c <= cost -> ()
                | Some _ | None -> best := Some (Point.make x y, cost))
              | None -> ()
            end
          end
        end
      in
      (* Expand outward from the desired row; dy grows monotonically so
         the prune above terminates the scan early. *)
      let max_radius = n_rows in
      let rec expand r =
        if r <= max_radius then begin
          let continue_ =
            match !best with
            | Some (_, c) -> float_of_int (r - 1) *. fp.Floorplan.row_height <= c
            | None -> true
          in
          if continue_ then begin
            consider (desired_row + r);
            if r > 0 then consider (desired_row - r);
            expand (r + 1)
          end
        end
      in
      expand 0;
      Option.map fst !best
    end
end

let legalize_all pl =
  let dsg = Placement.design pl in
  let fp = Placement.floorplan pl in
  let occ = Occupancy.create fp in
  let cells =
    List.filter (fun id -> Placement.is_placed pl id) (Design.live_cells dsg)
  in
  let priority id =
    match (Design.cell dsg id).Types.c_kind with
    | Types.Register _ -> 0
    | Types.Clock_gate _ -> 1
    | Types.Comb _ -> 2
    | Types.Clock_root | Types.Port _ -> 3
  in
  let keyed =
    List.map (fun id -> ((priority id, Placement.location pl id), id)) cells
  in
  let ordered = List.map snd (List.sort compare keyed) in
  List.iter
    (fun id ->
      let w, h = Design.cell_size dsg id in
      if w > 0.0 && h > 0.0 then begin
        let desired = Placement.location pl id in
        match Occupancy.find_nearest occ ~w desired with
        | Some p ->
          let p = Point.make (Floorplan.snap_x fp p.Point.x) p.Point.y in
          Placement.set pl id p;
          Occupancy.add occ (Placement.footprint pl id)
        | None -> () (* no room: leave as-is; caller can check overlaps *)
      end)
    ordered

let total_displacement ~before ~after =
  let acc = ref 0.0 in
  Placement.iter
    (fun id p ->
      match Placement.location_opt after id with
      | Some q -> acc := !acc +. Point.manhattan p q
      | None -> ())
    before;
  !acc
