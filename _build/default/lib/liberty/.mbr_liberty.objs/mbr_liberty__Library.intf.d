lib/liberty/library.mli: Cell
