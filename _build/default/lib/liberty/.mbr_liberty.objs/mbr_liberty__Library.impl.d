lib/liberty/library.ml: Cell Hashtbl List
