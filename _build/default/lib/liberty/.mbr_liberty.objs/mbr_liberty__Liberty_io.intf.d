lib/liberty/liberty_io.mli: Library
