lib/liberty/cell.ml: Format Mbr_geom
