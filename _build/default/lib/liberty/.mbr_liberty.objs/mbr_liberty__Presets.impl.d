lib/liberty/presets.ml: Cell Library List Printf
