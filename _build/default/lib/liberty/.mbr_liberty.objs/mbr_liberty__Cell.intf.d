lib/liberty/cell.mli: Format Mbr_geom
