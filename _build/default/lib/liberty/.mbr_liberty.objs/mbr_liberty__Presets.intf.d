lib/liberty/presets.mli: Library
