lib/liberty/liberty_io.ml: Buffer Cell Fun Library List Printf String
