(* Liberty subset: groups, simple attributes, string/number values.

     library (name) {
       cell (DFF2_X1) {
         area : 2.97 ;
         cell_leakage_power : 3.27 ;
         user_func_class : "dff" ;
         user_drive : 1 ;
         user_width : 2.48 ;
         user_height : 1.2 ;
         ff (IQ, IQN) { next_state : "D" ; clocked_on : "CK" ; }
         pin (CK) { direction : input ; clock : true ; capacitance : 1.0 ; }
         pin (D0) { direction : input ; capacitance : 0.6 ; }
         pin (Q0) {
           direction : output ;
           timing () {
             related_pin : "CK" ;
             intrinsic_rise : 62.0 ;
             rise_resistance : 2.0 ;
             timing_type : rising_edge ;
           }
         }
         pin (SI0) { direction : input ; capacitance : 0.42 ; }
         pin (SO0) { direction : output ; }
         pin (SE)  { direction : input ; capacitance : 0.42 ; }
         setup_time : 25.0 ;   (as user attribute on the cell)
       }
     }

   Scan style: SE pin present => scannable; one SI/SO pair => internal
   scan; one pair per bit => per-bit scan. *)

type value = Num of float | Str of string | Ident of string

type node = {
  group : string;
  args : string list;
  attrs : (string * value) list;
  children : node list;
}

exception Parse_error of string

(* ---------- lexer ---------- *)

type token =
  | Tident of string
  | Tnum of float
  | Tstr of string
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tcolon
  | Tsemi
  | Tcomma
  | Teof

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let i = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "line %d: %s" !line msg)) in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '-' || c = '+'
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment *)
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then fail "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
        else begin
          if src.[!i] = '\n' then incr line;
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if c = '"' then begin
      let start = !i + 1 in
      let rec scan j =
        if j >= n then fail "unterminated string"
        else if src.[j] = '"' then j
        else scan (j + 1)
      in
      let stop = scan start in
      tokens := Tstr (String.sub src start (stop - start)) :: !tokens;
      i := stop + 1
    end
    else if c = '(' then (tokens := Tlparen :: !tokens; incr i)
    else if c = ')' then (tokens := Trparen :: !tokens; incr i)
    else if c = '{' then (tokens := Tlbrace :: !tokens; incr i)
    else if c = '}' then (tokens := Trbrace :: !tokens; incr i)
    else if c = ':' then (tokens := Tcolon :: !tokens; incr i)
    else if c = ';' then (tokens := Tsemi :: !tokens; incr i)
    else if c = ',' then (tokens := Tcomma :: !tokens; incr i)
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      match float_of_string_opt word with
      | Some f -> tokens := Tnum f :: !tokens
      | None -> tokens := Tident word :: !tokens
    end
    else fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev (Teof :: !tokens)

(* ---------- parser ---------- *)

type stream = { mutable toks : token list }

let peek s = match s.toks with t :: _ -> t | [] -> Teof

let advance s = match s.toks with _ :: rest -> s.toks <- rest | [] -> ()

let expect s tok what =
  if peek s = tok then advance s
  else raise (Parse_error (Printf.sprintf "expected %s" what))

(* group := IDENT '(' args ')' '{' (attribute | group)* '}' *)
let rec parse_group s name =
  expect s Tlparen "'('";
  let rec args acc =
    match peek s with
    | Trparen ->
      advance s;
      List.rev acc
    | Tident id ->
      advance s;
      (match peek s with Tcomma -> advance s | _ -> ());
      args (id :: acc)
    | Tstr str ->
      advance s;
      (match peek s with Tcomma -> advance s | _ -> ());
      args (str :: acc)
    | Tnum f ->
      advance s;
      (match peek s with Tcomma -> advance s | _ -> ());
      args (Printf.sprintf "%g" f :: acc)
    | _ -> raise (Parse_error "malformed group arguments")
  in
  let args = args [] in
  expect s Tlbrace "'{'";
  let attrs = ref [] in
  let children = ref [] in
  let rec body () =
    match peek s with
    | Trbrace -> advance s
    | Tident id -> (
      advance s;
      match peek s with
      | Tcolon ->
        advance s;
        let v =
          match peek s with
          | Tnum f ->
            advance s;
            Num f
          | Tstr str ->
            advance s;
            Str str
          | Tident w ->
            advance s;
            Ident w
          | _ -> raise (Parse_error (Printf.sprintf "bad value for %s" id))
        in
        (match peek s with Tsemi -> advance s | _ -> ());
        attrs := (id, v) :: !attrs;
        body ()
      | Tlparen ->
        children := parse_group s id :: !children;
        body ()
      | _ -> raise (Parse_error (Printf.sprintf "expected ':' or '(' after %s" id)))
    | Teof -> raise (Parse_error "unexpected end of file")
    | _ -> raise (Parse_error "unexpected token in group body")
  in
  body ();
  { group = name; args; attrs = List.rev !attrs; children = List.rev !children }

let parse_top src =
  let s = { toks = tokenize src } in
  match peek s with
  | Tident "library" ->
    advance s;
    let g = parse_group s "library" in
    expect s Teof "end of file";
    g
  | _ -> raise (Parse_error "expected a 'library' group")

(* ---------- writer ---------- *)

let scan_suffix (c : Cell.t) =
  match c.Cell.scan with
  | Cell.No_scan -> []
  | Cell.Internal_scan -> [ 0 ]
  | Cell.Per_bit_scan -> List.init c.Cell.bits Fun.id

type gate = {
  g_name : string;
  g_inputs : int;
  g_drive_res : float;
  g_intrinsic : float;
  g_input_cap : float;
  g_area : float;
}

let gate_to_buf buf g =
  Printf.bprintf buf "  cell (%s) {\n" g.g_name;
  Printf.bprintf buf "    area : %.9g ;\n" g.g_area;
  for i = 0 to g.g_inputs - 1 do
    Printf.bprintf buf
      "    pin (A%d) { direction : input ; capacitance : %.9g ; }\n" i
      g.g_input_cap
  done;
  Printf.bprintf buf "    pin (Y) {\n";
  Printf.bprintf buf "      direction : output ;\n";
  Printf.bprintf buf "      timing () {\n";
  Printf.bprintf buf "        intrinsic_rise : %.9g ;\n" g.g_intrinsic;
  Printf.bprintf buf "        rise_resistance : %.9g ;\n" g.g_drive_res;
  Printf.bprintf buf "      }\n    }\n  }\n"

let to_liberty ?(name = "mbr_library") ?(gates = []) lib =
  let buf = Buffer.create 8192 in
  Printf.bprintf buf "library (%s) {\n" name;
  Printf.bprintf buf "  time_unit : \"1ps\" ;\n";
  Printf.bprintf buf "  capacitive_load_unit : \"1ff\" ;\n";
  List.iter (gate_to_buf buf) gates;
  List.iter
    (fun (c : Cell.t) ->
      Printf.bprintf buf "  cell (%s) {\n" c.Cell.name;
      Printf.bprintf buf "    area : %.9g ;\n" c.Cell.area;
      Printf.bprintf buf "    cell_leakage_power : %.9g ;\n" c.Cell.leakage;
      Printf.bprintf buf "    user_func_class : \"%s\" ;\n" c.Cell.func_class;
      Printf.bprintf buf "    user_drive : %d ;\n" c.Cell.drive;
      Printf.bprintf buf "    user_width : %.9g ;\n" c.Cell.width;
      Printf.bprintf buf "    user_height : %.9g ;\n" c.Cell.height;
      Printf.bprintf buf "    user_setup : %.9g ;\n" c.Cell.setup;
      Printf.bprintf buf "    ff (IQ, IQN) { next_state : \"D0\" ; clocked_on : \"CK\" ; }\n";
      Printf.bprintf buf
        "    pin (CK) { direction : input ; clock : true ; capacitance : %.9g ; }\n"
        c.Cell.clock_pin_cap;
      for b = 0 to c.Cell.bits - 1 do
        Printf.bprintf buf
          "    pin (D%d) { direction : input ; capacitance : %.9g ; }\n" b
          c.Cell.data_pin_cap;
        Printf.bprintf buf "    pin (Q%d) {\n" b;
        Printf.bprintf buf "      direction : output ;\n";
        Printf.bprintf buf "      timing () {\n";
        Printf.bprintf buf "        related_pin : \"CK\" ;\n";
        Printf.bprintf buf "        timing_type : rising_edge ;\n";
        Printf.bprintf buf "        intrinsic_rise : %.9g ;\n" c.Cell.intrinsic;
        Printf.bprintf buf "        rise_resistance : %.9g ;\n" c.Cell.drive_res;
        Printf.bprintf buf "      }\n";
        Printf.bprintf buf "    }\n"
      done;
      List.iter
        (fun b ->
          Printf.bprintf buf
            "    pin (SI%d) { direction : input ; capacitance : %.9g ; }\n" b
            (c.Cell.data_pin_cap *. 0.7);
          Printf.bprintf buf "    pin (SO%d) { direction : output ; }\n" b)
        (scan_suffix c);
      if c.Cell.scan <> Cell.No_scan then
        Printf.bprintf buf
          "    pin (SE) { direction : input ; capacitance : %.9g ; }\n"
          (c.Cell.data_pin_cap *. 0.7);
      Buffer.add_string buf "  }\n")
    (Library.cells lib);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ---------- reader ---------- *)

let num_attr node key =
  match List.assoc_opt key node.attrs with
  | Some (Num f) -> Some f
  | Some (Str s) -> float_of_string_opt s
  | Some (Ident s) -> float_of_string_opt s
  | None -> None

let str_attr node key =
  match List.assoc_opt key node.attrs with
  | Some (Str s) -> Some s
  | Some (Ident s) -> Some s
  | Some (Num f) -> Some (Printf.sprintf "%g" f)
  | None -> None

let require what = function
  | Some v -> v
  | None -> raise (Parse_error ("missing " ^ what))

let cell_of_node node =
  let cell_name = match node.args with a :: _ -> a | [] -> raise (Parse_error "cell without a name") in
  let pins = List.filter (fun g -> g.group = "pin") node.children in
  let pin_named name = List.find_opt (fun p -> p.args = [ name ]) pins in
  let count prefix =
    List.length
      (List.filter
         (fun p ->
           match p.args with
           | [ a ] ->
             String.length a > String.length prefix
             && String.sub a 0 (String.length prefix) = prefix
             && (match
                   int_of_string_opt
                     (String.sub a (String.length prefix)
                        (String.length a - String.length prefix))
                 with
                | Some _ -> true
                | None -> false)
           | _ -> false)
         pins)
  in
  let bits = count "D" in
  if bits = 0 then raise (Parse_error (cell_name ^ ": no D pins"));
  if count "Q" <> bits then raise (Parse_error (cell_name ^ ": D/Q pin mismatch"));
  let n_si = count "SI" in
  let scan =
    if pin_named "SE" = None then Cell.No_scan
    else if n_si >= bits && bits > 1 then Cell.Per_bit_scan
    else if n_si = bits && bits = 1 then
      (* ambiguous for 1-bit cells; internal and per-bit coincide *)
      Cell.Internal_scan
    else Cell.Internal_scan
  in
  let ck = require (cell_name ^ ": CK pin") (pin_named "CK") in
  let d0 = require (cell_name ^ ": D0 pin") (pin_named "D0") in
  let q0 = require (cell_name ^ ": Q0 pin") (pin_named "Q0") in
  let timing =
    match List.find_opt (fun g -> g.group = "timing") q0.children with
    | Some t -> t
    | None -> raise (Parse_error (cell_name ^ ": Q0 has no timing group"))
  in
  let area = require (cell_name ^ ": area") (num_attr node "area") in
  let height =
    match num_attr node "user_height" with Some h -> h | None -> 1.2
  in
  let width =
    match num_attr node "user_width" with Some w -> w | None -> area /. height
  in
  Cell.
    {
      name = cell_name;
      func_class =
        (match str_attr node "user_func_class" with Some s -> s | None -> "dff");
      bits;
      drive =
        (match num_attr node "user_drive" with Some d -> int_of_float d | None -> 1);
      area;
      width;
      height;
      clock_pin_cap = require (cell_name ^ ": CK cap") (num_attr ck "capacitance");
      data_pin_cap = require (cell_name ^ ": D0 cap") (num_attr d0 "capacitance");
      drive_res =
        require (cell_name ^ ": rise_resistance") (num_attr timing "rise_resistance");
      intrinsic =
        require (cell_name ^ ": intrinsic_rise") (num_attr timing "intrinsic_rise");
      setup = (match num_attr node "user_setup" with Some s -> s | None -> 25.0);
      leakage =
        (match num_attr node "cell_leakage_power" with Some l -> l | None -> 0.0);
      scan;
    }

let count_pins node prefix =
  List.length
    (List.filter
       (fun p ->
         p.group = "pin"
         &&
         match p.args with
         | [ a ] ->
           String.length a > String.length prefix
           && String.sub a 0 (String.length prefix) = prefix
           && (match
                 int_of_string_opt
                   (String.sub a (String.length prefix)
                      (String.length a - String.length prefix))
               with
              | Some _ -> true
              | None -> false)
         | _ -> false)
       node.children)

let is_gate_node node =
  count_pins node "D" = 0
  && List.exists (fun p -> p.group = "pin" && p.args = [ "Y" ]) node.children

let gate_of_node node =
  let g_name =
    match node.args with a :: _ -> a | [] -> raise (Parse_error "cell without a name")
  in
  let pins = List.filter (fun g -> g.group = "pin") node.children in
  let g_inputs = count_pins node "A" in
  if g_inputs = 0 then raise (Parse_error (g_name ^ ": gate without inputs"));
  let a0 =
    match List.find_opt (fun p -> p.args = [ "A0" ]) pins with
    | Some p -> p
    | None -> raise (Parse_error (g_name ^ ": missing A0"))
  in
  let y =
    match List.find_opt (fun p -> p.args = [ "Y" ]) pins with
    | Some p -> p
    | None -> raise (Parse_error (g_name ^ ": missing Y"))
  in
  let timing =
    match List.find_opt (fun g -> g.group = "timing") y.children with
    | Some t -> t
    | None -> raise (Parse_error (g_name ^ ": Y has no timing group"))
  in
  {
    g_name;
    g_inputs;
    g_drive_res =
      require (g_name ^ ": rise_resistance") (num_attr timing "rise_resistance");
    g_intrinsic =
      require (g_name ^ ": intrinsic_rise") (num_attr timing "intrinsic_rise");
    g_input_cap = require (g_name ^ ": A0 cap") (num_attr a0 "capacitance");
    g_area = require (g_name ^ ": area") (num_attr node "area");
  }

let of_liberty_full src =
  let top = parse_top src in
  let cell_nodes = List.filter (fun g -> g.group = "cell") top.children in
  let gate_nodes, reg_nodes = List.partition is_gate_node cell_nodes in
  let cells = List.map cell_of_node reg_nodes in
  if cells = [] then raise (Parse_error "library contains no register cells");
  (Library.make cells, List.map gate_of_node gate_nodes)

let of_liberty src = fst (of_liberty_full src)
