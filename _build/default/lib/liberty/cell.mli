(** Register standard-cell model — the library-side view of single- and
    multi-bit registers. Timing follows the linear approximation the
    paper states it reasons in (§4.1): delay = intrinsic + drive
    resistance × load capacitance.

    Units: distance µm, capacitance fF, resistance kΩ, time ps,
    area µm², leakage nW. With these, kΩ × fF = ps directly. *)

type scan_style =
  | No_scan  (** not scannable *)
  | Internal_scan
      (** one SI/SO pin pair; bits form a fixed internal chain, so scan
          order inside the MBR is the bit order *)
  | Per_bit_scan
      (** independent SI/SO per bit; several chains may cross the cell
          (costlier in routing, penalized during mapping §4.1) *)

type t = {
  name : string;
  func_class : string;
      (** registers merge only within a functional-equivalence class,
          e.g. "dff", "dffr", "sdffr" (§2) *)
  bits : int;  (** number of D/Q pin pairs *)
  drive : int;  (** drive-strength grade (X1 = 1, X2 = 2, ...) *)
  area : float;
  width : float;
  height : float;
  clock_pin_cap : float;  (** the single shared CK pin *)
  data_pin_cap : float;  (** per D pin *)
  drive_res : float;  (** per Q output, kΩ *)
  intrinsic : float;  (** clk→Q intrinsic delay, ps *)
  setup : float;  (** D setup before clk, ps *)
  leakage : float;
  scan : scan_style;
}

val area_per_bit : t -> float

val d_pin_offset : t -> int -> Mbr_geom.Point.t
(** Offset of the i-th D pin from the cell's lower-left corner. Pins are
    laid out on a per-bit pitch: D pins along the bottom edge, Q pins
    along the top edge, clock pin at the cell center. Raises
    [Invalid_argument] for a bit index outside \[0, bits). *)

val q_pin_offset : t -> int -> Mbr_geom.Point.t

val clock_pin_offset : t -> Mbr_geom.Point.t

val clk_to_q : t -> load:float -> float
(** clk→Q delay under [load] fF: [intrinsic + drive_res * load]. *)

val footprint_at : t -> Mbr_geom.Point.t -> Mbr_geom.Rect.t
(** Cell rectangle when the lower-left corner is at the given point. *)

val pp : Format.formatter -> t -> unit
