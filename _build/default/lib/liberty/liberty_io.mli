(** Liberty-format interchange for register libraries.

    Production flows describe cells in Synopsys Liberty; this module
    writes our register libraries as a well-formed Liberty subset and
    parses that subset back (recursive-descent over the generic
    [group(args) { attribute : value; ... }] syntax).

    The timing model maps onto Liberty's classic CMOS attributes —
    [rise_resistance] (our drive resistance) and [intrinsic_rise]
    (our clk→Q intrinsic); pin capacitances, area, leakage and cell
    footprint map directly. Scan style is encoded structurally (SI/SO
    pins plus the [test_cell]-style [scan_enable] pin) and the
    functional class rides on the [ff] group's banks. Writing then
    parsing reproduces the library exactly (see the round-trip
    property test). *)

(** A combinational cell, the non-register complement of {!Cell.t}
    (same linear timing model). *)
type gate = {
  g_name : string;
  g_inputs : int;
  g_drive_res : float;  (** kΩ *)
  g_intrinsic : float;  (** ps *)
  g_input_cap : float;  (** fF per input *)
  g_area : float;  (** µm² *)
}

val to_liberty : ?name:string -> ?gates:gate list -> Library.t -> string
(** Render the library as Liberty text; [gates] adds combinational
    cells (pins A0..A(n-1) and Y), making the file self-sufficient for
    re-importing a full netlist. *)

exception Parse_error of string
(** Raised with a descriptive message (line number included) on
    malformed input. *)

val of_liberty : string -> Library.t
(** Parse Liberty text produced by {!to_liberty} (or hand-written text
    within the same subset); combinational cells are skipped. Raises
    {!Parse_error}. *)

val of_liberty_full : string -> Library.t * gate list
(** Like {!of_liberty}, additionally returning the combinational cells
    in the file (cells with A*/Y pins and no CK pin). *)
