type t = {
  all : Cell.t list;
  by_name : (string, Cell.t) Hashtbl.t;
  by_class : (string, Cell.t list) Hashtbl.t; (* cells sorted by bits *)
}

let make cells =
  let by_name = Hashtbl.create 64 in
  let by_class = Hashtbl.create 8 in
  List.iter
    (fun (c : Cell.t) ->
      if Hashtbl.mem by_name c.Cell.name then
        invalid_arg ("Library.make: duplicate cell " ^ c.Cell.name);
      Hashtbl.add by_name c.Cell.name c;
      let cur =
        match Hashtbl.find_opt by_class c.Cell.func_class with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace by_class c.Cell.func_class (c :: cur))
    cells;
  Hashtbl.iter
    (fun k l ->
      Hashtbl.replace by_class k
        (List.stable_sort (fun (a : Cell.t) b -> compare a.Cell.bits b.Cell.bits) l))
    by_class;
  { all = cells; by_name; by_class }

let cells t = t.all

let find t name =
  match Hashtbl.find_opt t.by_name name with
  | Some c -> c
  | None -> raise Not_found

let classes t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.by_class [])

let class_cells t func_class =
  match Hashtbl.find_opt t.by_class func_class with Some l -> l | None -> []

let widths t ~func_class =
  List.sort_uniq compare (List.map (fun (c : Cell.t) -> c.Cell.bits) (class_cells t func_class))

let max_width t ~func_class =
  List.fold_left max 0 (List.map (fun (c : Cell.t) -> c.Cell.bits) (class_cells t func_class))

let cells_of t ~func_class ~bits =
  List.filter (fun (c : Cell.t) -> c.Cell.bits = bits) (class_cells t func_class)

let smallest_width_geq t ~func_class b =
  List.find_opt (fun w -> w >= b) (widths t ~func_class)

let scan_ok need (c : Cell.t) =
  match (need, c.Cell.scan) with
  | `No, (Cell.No_scan | Cell.Internal_scan | Cell.Per_bit_scan) -> true
  | `Internal, Cell.Internal_scan -> true
  | `Internal, (Cell.No_scan | Cell.Per_bit_scan) -> false
  | `Any_scan, (Cell.Internal_scan | Cell.Per_bit_scan) -> true
  | `Any_scan, Cell.No_scan -> false

let best_cell t ~func_class ~bits ~max_drive_res ~need_scan =
  let candidates = List.filter (scan_ok need_scan) (cells_of t ~func_class ~bits) in
  match candidates with
  | [] -> None
  | _ :: _ ->
    (* Prefer: meets resistance bound; then internal scan over per-bit
       scan (external chains consume routing, §4.1); then min clock cap;
       then min area. When nothing meets the bound, fall back to the
       strongest cell. *)
    let penalty (c : Cell.t) =
      match c.Cell.scan with
      | Cell.Per_bit_scan -> 1
      | Cell.No_scan | Cell.Internal_scan -> 0
    in
    let fitting =
      List.filter (fun (c : Cell.t) -> c.Cell.drive_res <= max_drive_res +. 1e-9) candidates
    in
    let key (c : Cell.t) = (penalty c, c.Cell.clock_pin_cap, c.Cell.area, c.Cell.name) in
    let strongest (c : Cell.t) = (penalty c, c.Cell.drive_res, c.Cell.clock_pin_cap) in
    let min_by f = function
      | [] -> None
      | c0 :: rest ->
        Some (List.fold_left (fun best c -> if f c < f best then c else best) c0 rest)
    in
    (match min_by key fitting with
    | Some _ as r -> r
    | None -> min_by strongest candidates)
