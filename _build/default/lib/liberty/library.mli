(** A register-cell library: the set of MBR cells available per
    functional class, with the queries MBR composition needs —
    which bit widths exist, and which concrete cell best matches a
    required drive resistance and scan constraint (§4.1 mapping). *)

type t

val make : Cell.t list -> t
(** Raises [Invalid_argument] on duplicate cell names. *)

val cells : t -> Cell.t list

val find : t -> string -> Cell.t
(** By name; raises [Not_found]. *)

val classes : t -> string list
(** All functional classes, sorted. *)

val widths : t -> func_class:string -> int list
(** Available bit widths in the class, ascending, e.g. \[1; 2; 4; 8\].
    Empty when the class is unknown. *)

val max_width : t -> func_class:string -> int
(** 0 when the class is unknown. *)

val cells_of : t -> func_class:string -> bits:int -> Cell.t list
(** All drive/scan variants of that width. *)

val smallest_width_geq : t -> func_class:string -> int -> int option
(** Smallest library width >= the given bit count: the width an
    incomplete MBR would be mapped to. [None] when none exists. *)

val best_cell :
  t ->
  func_class:string ->
  bits:int ->
  max_drive_res:float ->
  need_scan:[ `No | `Internal | `Any_scan ] ->
  Cell.t option
(** The paper's mapping rule: among cells of the class/width whose drive
    resistance does not exceed [max_drive_res] (so timing cannot
    degrade), pick the one with the lowest clock-pin capacitance;
    per-bit-scan cells are penalized (selected only when no internal-
    scan alternative fits). When no cell meets the resistance bound, the
    strongest (lowest-resistance) candidate is returned instead, and the
    caller decides whether the timing cost is acceptable. *)
