(** Built-in register libraries.

    No liberty files can ship with the repo (proprietary), so these
    presets play the role of the 28 nm production library of the paper's
    experiments: realistic relative economics — per-bit area and clock
    pin capacitance drop as bit width grows, drive strength trades
    resistance for area — with arbitrary but self-consistent absolute
    values. All composition/timing decisions depend only on the relative
    values. *)

val default : unit -> Library.t
(** Functional classes ["dff"], ["dffr"], ["dlat"] (transparent
    latches) and ["sdffr"]; widths 1/2/4/8; drives X1/X2/X4; ["sdffr"]
    in both internal-scan and per-bit-scan variants. Latches compose
    exactly like flops but only within their own class (§2). *)

val paper_example : unit -> Library.t
(** The worked-example library of the paper's Fig. 3: a single class
    ["dff"] with 1, 2, 3, 4 and 8-bit MBRs, one drive strength, sized so
    that incomplete 8-bit mapping is attractive (as the figure
    "highlights on purpose"). *)

val bit_widths : Library.t -> func_class:string -> int list
(** Convenience re-export of {!Library.widths}. *)
