let row_height = 1.2

(* Per-bit area shrink from control sharing as width grows. *)
let share_factor = function
  | 1 -> 1.0
  | 2 -> 0.93
  | 3 -> 0.90
  | 4 -> 0.87
  | 8 -> 0.82
  | _ -> 0.85

(* A b-bit MBR exposes one clock pin whose capacitance grows slower
   than b separate pins would (shared local clock buffering); the 0.45
   slope keeps the per-merge saving at the moderate level 28 nm
   libraries exhibit (an 8-bit pin ≈ 52 % of eight 1-bit pins). *)
let clock_cap_of ~base bits = base *. (1.0 +. (0.45 *. float_of_int (bits - 1)))

let drive_area_factor = function 1 -> 1.0 | 2 -> 1.18 | 4 -> 1.42 | _ -> 1.6

let make_cell ~name ~func_class ~bits ~drive ~scan ~base_bit_area ~base_ccap
    ~scan_area_factor =
  let area =
    base_bit_area *. float_of_int bits *. share_factor bits
    *. drive_area_factor drive *. scan_area_factor
  in
  let width = area /. row_height in
  Cell.
    {
      name;
      func_class;
      bits;
      drive;
      area;
      width;
      height = row_height;
      clock_pin_cap = clock_cap_of ~base:base_ccap bits;
      data_pin_cap = 0.6;
      drive_res = 2.0 /. float_of_int drive;
      intrinsic = 58.0 +. (2.0 *. float_of_int bits);
      setup = 25.0;
      leakage = area *. 1.1;
      scan;
    }

let default () =
  let widths = [ 1; 2; 4; 8 ] in
  let drives = [ 1; 2; 4 ] in
  let plain =
    List.concat_map
      (fun bits ->
        List.map
          (fun drive ->
            let name = Printf.sprintf "DFF%d_X%d" bits drive in
            make_cell ~name ~func_class:"dff" ~bits ~drive ~scan:Cell.No_scan
              ~base_bit_area:1.6 ~base_ccap:0.8 ~scan_area_factor:1.0)
          drives)
      widths
  in
  let reset =
    List.concat_map
      (fun bits ->
        List.map
          (fun drive ->
            let name = Printf.sprintf "DFFR%d_X%d" bits drive in
            make_cell ~name ~func_class:"dffr" ~bits ~drive ~scan:Cell.No_scan
              ~base_bit_area:1.8 ~base_ccap:0.85 ~scan_area_factor:1.0)
          drives)
      widths
  in
  let scan_internal =
    List.concat_map
      (fun bits ->
        List.map
          (fun drive ->
            let name = Printf.sprintf "SDFFR%d_X%d" bits drive in
            make_cell ~name ~func_class:"sdffr" ~bits ~drive
              ~scan:Cell.Internal_scan ~base_bit_area:2.0 ~base_ccap:0.9
              ~scan_area_factor:1.15)
          drives)
      widths
  in
  (* Transparent-high latches: a separate functional class — the paper
     composes latches exactly like flops, just never across classes.
     Timing uses the same linear model (checked at the closing edge; no
     time borrowing, a documented conservative simplification). *)
  let latches =
    List.concat_map
      (fun bits ->
        List.map
          (fun drive ->
            let name = Printf.sprintf "DLAT%d_X%d" bits drive in
            make_cell ~name ~func_class:"dlat" ~bits ~drive ~scan:Cell.No_scan
              ~base_bit_area:1.3 ~base_ccap:0.7 ~scan_area_factor:1.0)
          drives)
      widths
  in
  (* Per-bit scan variants only exist for the multi-bit widths; the cell
     itself is slightly smaller than the internal-scan twin but costs
     external scan routing (penalized at mapping time). *)
  let scan_per_bit =
    List.concat_map
      (fun bits ->
        List.map
          (fun drive ->
            let name = Printf.sprintf "SDFFR%d_X%d_PB" bits drive in
            make_cell ~name ~func_class:"sdffr" ~bits ~drive
              ~scan:Cell.Per_bit_scan ~base_bit_area:2.0 ~base_ccap:0.9
              ~scan_area_factor:1.10)
          drives)
      [ 2; 4; 8 ]
  in
  Library.make (plain @ reset @ latches @ scan_internal @ scan_per_bit)

let paper_example () =
  let cell bits =
    make_cell
      ~name:(Printf.sprintf "EX_DFF%d" bits)
      ~func_class:"dff" ~bits ~drive:1 ~scan:Cell.No_scan ~base_bit_area:1.6
      ~base_ccap:0.8 ~scan_area_factor:1.0
  in
  Library.make (List.map cell [ 1; 2; 3; 4; 8 ])

let bit_widths lib ~func_class = Library.widths lib ~func_class
