module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect

type scan_style = No_scan | Internal_scan | Per_bit_scan

type t = {
  name : string;
  func_class : string;
  bits : int;
  drive : int;
  area : float;
  width : float;
  height : float;
  clock_pin_cap : float;
  data_pin_cap : float;
  drive_res : float;
  intrinsic : float;
  setup : float;
  leakage : float;
  scan : scan_style;
}

let area_per_bit c = c.area /. float_of_int c.bits

let check_bit c i =
  if i < 0 || i >= c.bits then invalid_arg "Cell: bit index out of range"

let pitch c = c.width /. float_of_int c.bits

let d_pin_offset c i =
  check_bit c i;
  Point.make ((float_of_int i +. 0.25) *. pitch c) (0.1 *. c.height)

let q_pin_offset c i =
  check_bit c i;
  Point.make ((float_of_int i +. 0.75) *. pitch c) (0.9 *. c.height)

let clock_pin_offset c = Point.make (c.width /. 2.0) (c.height /. 2.0)

let clk_to_q c ~load = c.intrinsic +. (c.drive_res *. load)

let footprint_at c (p : Point.t) =
  Rect.make ~lx:p.x ~ly:p.y ~hx:(p.x +. c.width) ~hy:(p.y +. c.height)

let pp ppf c =
  Format.fprintf ppf "%s(%s, %db, X%d, %.2fum2)" c.name c.func_class c.bits
    c.drive c.area
