(** 2-D points in micrometres (floats). *)

type t = { x : float; y : float }

val make : float -> float -> t

val origin : t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val manhattan : t -> t -> float
(** |dx| + |dy| — the routing distance metric used throughout. *)

val euclid : t -> t -> float

val midpoint : t -> t -> t

val centroid : t list -> t
(** Raises [Invalid_argument] on an empty list. *)

val equal : ?eps:float -> t -> t -> bool
(** Component-wise comparison with tolerance (default 1e-9). *)

val compare_lex : t -> t -> int
(** Lexicographic (x then y); total order used by hull construction. *)

val cross : o:t -> t -> t -> float
(** Z-component of (a-o) x (b-o): >0 when o→a→b turns left. *)

val pp : Format.formatter -> t -> unit
