type t = { lx : float; ly : float; hx : float; hy : float }

let make ~lx ~ly ~hx ~hy =
  if hx < lx || hy < ly then invalid_arg "Rect.make: inverted bounds";
  { lx; ly; hx; hy }

let of_points = function
  | [] -> invalid_arg "Rect.of_points: empty"
  | (p : Point.t) :: rest ->
    let f (r : t) (q : Point.t) =
      {
        lx = Float.min r.lx q.x;
        ly = Float.min r.ly q.y;
        hx = Float.max r.hx q.x;
        hy = Float.max r.hy q.y;
      }
    in
    List.fold_left f { lx = p.x; ly = p.y; hx = p.x; hy = p.y } rest

let of_center (c : Point.t) ~w ~h =
  make ~lx:(c.x -. (w /. 2.)) ~ly:(c.y -. (h /. 2.)) ~hx:(c.x +. (w /. 2.))
    ~hy:(c.y +. (h /. 2.))

let width r = r.hx -. r.lx

let height r = r.hy -. r.ly

let area r = width r *. height r

let half_perimeter r = width r +. height r

let center r = Point.make ((r.lx +. r.hx) /. 2.0) ((r.ly +. r.hy) /. 2.0)

let corners r =
  [
    Point.make r.lx r.ly;
    Point.make r.hx r.ly;
    Point.make r.hx r.hy;
    Point.make r.lx r.hy;
  ]

let contains r (p : Point.t) =
  p.x >= r.lx && p.x <= r.hx && p.y >= r.ly && p.y <= r.hy

let contains_rect outer inner =
  inner.lx >= outer.lx && inner.ly >= outer.ly && inner.hx <= outer.hx
  && inner.hy <= outer.hy

let intersects a b =
  a.lx <= b.hx && b.lx <= a.hx && a.ly <= b.hy && b.ly <= a.hy

let overlaps_strictly ?(eps = 1e-9) a b =
  a.lx < b.hx -. eps && b.lx < a.hx -. eps && a.ly < b.hy -. eps
  && b.ly < a.hy -. eps

let inter a b =
  let lx = Float.max a.lx b.lx and ly = Float.max a.ly b.ly in
  let hx = Float.min a.hx b.hx and hy = Float.min a.hy b.hy in
  if hx < lx || hy < ly then None else Some { lx; ly; hx; hy }

let inter_all = function
  | [] -> None
  | r :: rest ->
    List.fold_left
      (fun acc b -> match acc with None -> None | Some a -> inter a b)
      (Some r) rest

let union a b =
  {
    lx = Float.min a.lx b.lx;
    ly = Float.min a.ly b.ly;
    hx = Float.max a.hx b.hx;
    hy = Float.max a.hy b.hy;
  }

let expand r d =
  let lx = r.lx -. d and ly = r.ly -. d in
  let hx = r.hx +. d and hy = r.hy +. d in
  if hx >= lx && hy >= ly then { lx; ly; hx; hy }
  else begin
    let c = center r in
    { lx = c.x; ly = c.y; hx = c.x; hy = c.y }
  end

let clamp_point r (p : Point.t) =
  Point.make (Float.max r.lx (Float.min r.hx p.x))
    (Float.max r.ly (Float.min r.hy p.y))

let translate r (d : Point.t) =
  { lx = r.lx +. d.x; ly = r.ly +. d.y; hx = r.hx +. d.x; hy = r.hy +. d.y }

let pp ppf r =
  Format.fprintf ppf "[%.3f, %.3f]x[%.3f, %.3f]" r.lx r.hx r.ly r.hy
