(** Convex hulls and convex-polygon containment.

    The paper's weight heuristic (§3.2) builds, for every candidate MBR,
    the convex hull of the corner points of its constituent registers and
    counts foreign registers whose center lies inside that "test
    polygon". *)

val convex : Point.t list -> Point.t list
(** Convex hull by Andrew's monotone chain, counter-clockwise, without
    repeating the first vertex. Collinear points on the boundary are
    dropped. Degenerate inputs yield the degenerate hull: 0, 1 or 2
    distinct points (a segment). *)

val contains : Point.t list -> Point.t -> bool
(** [contains hull p]: closed containment of [p] in the convex polygon
    given in counter-clockwise order. Handles degenerate hulls (point,
    segment) by distance-to-set with a 1e-9 tolerance. *)

val area : Point.t list -> float
(** Shoelace area of a counter-clockwise simple polygon; 0 for fewer
    than 3 vertices. *)

val of_rects : Rect.t list -> Point.t list
(** Convex hull of all corner points of the rectangles — the paper's
    test polygon for a clique of register footprints. *)
