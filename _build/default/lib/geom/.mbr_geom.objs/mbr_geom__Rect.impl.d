lib/geom/rect.ml: Float Format List Point
