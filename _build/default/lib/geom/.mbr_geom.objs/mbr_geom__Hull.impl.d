lib/geom/hull.ml: Array Float List Point Rect
