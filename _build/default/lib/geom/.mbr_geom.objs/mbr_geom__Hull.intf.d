lib/geom/hull.mli: Point Rect
