let dedup_sorted pts =
  let rec go acc = function
    | [] -> List.rev acc
    | [ p ] -> List.rev (p :: acc)
    | p :: (q :: _ as rest) ->
      if Point.equal ~eps:0.0 p q then go acc rest else go (p :: acc) rest
  in
  go [] pts

(* Andrew's monotone chain. Returns CCW vertices, first vertex not
   repeated. Strictly convex output: collinear boundary points dropped. *)
let convex pts =
  let pts = dedup_sorted (List.sort Point.compare_lex pts) in
  match pts with
  | [] | [ _ ] | [ _; _ ] -> pts
  | _ ->
    let build input =
      List.fold_left
        (fun chain p ->
          let rec pop = function
            | b :: a :: rest when Point.cross ~o:a b p <= 0.0 -> pop (a :: rest)
            | chain -> chain
          in
          p :: pop chain)
        [] input
    in
    let lower = build pts in
    let upper = build (List.rev pts) in
    (* Each chain ends with its endpoint duplicated in the other chain. *)
    let drop_last l = List.rev (List.tl (List.rev l)) in
    let hull = drop_last (List.rev lower) @ drop_last (List.rev upper) in
    (match hull with
    | [] | [ _ ] -> dedup_sorted (List.sort Point.compare_lex hull)
    | _ -> hull)

let seg_distance (a : Point.t) (b : Point.t) (p : Point.t) =
  let abx = b.x -. a.x and aby = b.y -. a.y in
  let len2 = (abx *. abx) +. (aby *. aby) in
  if len2 <= 0.0 then Point.euclid a p
  else begin
    let t = (((p.x -. a.x) *. abx) +. ((p.y -. a.y) *. aby)) /. len2 in
    let t = Float.max 0.0 (Float.min 1.0 t) in
    Point.euclid (Point.make (a.x +. (t *. abx)) (a.y +. (t *. aby))) p
  end

let contains hull p =
  match hull with
  | [] -> false
  | [ a ] -> Point.euclid a p <= 1e-9
  | [ a; b ] -> seg_distance a b p <= 1e-9
  | _ ->
    let n = List.length hull in
    let arr = Array.of_list hull in
    let ok = ref true in
    for i = 0 to n - 1 do
      let a = arr.(i) and b = arr.((i + 1) mod n) in
      if Point.cross ~o:a b p < -1e-9 then ok := false
    done;
    !ok

let area hull =
  match hull with
  | [] | [ _ ] | [ _; _ ] -> 0.0
  | _ ->
    let arr = Array.of_list hull in
    let n = Array.length arr in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let a : Point.t = arr.(i) and b : Point.t = arr.((i + 1) mod n) in
      acc := !acc +. ((a.x *. b.y) -. (b.x *. a.y))
    done;
    Float.abs !acc /. 2.0

let of_rects rects = convex (List.concat_map Rect.corners rects)
