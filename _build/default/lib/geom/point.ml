type t = { x : float; y : float }

let make x y = { x; y }

let origin = { x = 0.0; y = 0.0 }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }

let scale k p = { x = k *. p.x; y = k *. p.y }

let manhattan a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)

let euclid a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let midpoint a b = { x = (a.x +. b.x) /. 2.0; y = (a.y +. b.y) /. 2.0 }

let centroid = function
  | [] -> invalid_arg "Point.centroid: empty"
  | ps ->
    let n = float_of_int (List.length ps) in
    let sum = List.fold_left add origin ps in
    scale (1.0 /. n) sum

let equal ?(eps = 1e-9) a b =
  Float.abs (a.x -. b.x) <= eps && Float.abs (a.y -. b.y) <= eps

let compare_lex a b =
  let c = compare a.x b.x in
  if c <> 0 then c else compare a.y b.y

let cross ~o a b =
  ((a.x -. o.x) *. (b.y -. o.y)) -. ((a.y -. o.y) *. (b.x -. o.x))

let pp ppf p = Format.fprintf ppf "(%.3f, %.3f)" p.x p.y
