(** Axis-aligned rectangles (cell footprints, feasible regions, bounding
    boxes). Degenerate rectangles (zero width/height) are allowed: a
    register whose slack permits no movement has a feasible region equal
    to its own footprint, possibly collapsed to a point. *)

type t = { lx : float; ly : float; hx : float; hy : float }

val make : lx:float -> ly:float -> hx:float -> hy:float -> t
(** Raises [Invalid_argument] when [hx < lx] or [hy < ly]. *)

val of_points : Point.t list -> t
(** Tight bounding box of a non-empty point set. *)

val of_center : Point.t -> w:float -> h:float -> t

val width : t -> float

val height : t -> float

val area : t -> float

val half_perimeter : t -> float
(** (width + height): the HPWL of the box. *)

val center : t -> Point.t

val corners : t -> Point.t list
(** The four corner points, counter-clockwise from (lx, ly). *)

val contains : t -> Point.t -> bool
(** Closed containment (boundary counts). *)

val contains_rect : t -> t -> bool
(** [contains_rect outer inner]. *)

val intersects : t -> t -> bool
(** Closed-interval overlap (touching edges intersect). *)

val overlaps_strictly : ?eps:float -> t -> t -> bool
(** Overlap of area above noise level (touching edges do not count; an
    [eps] band, default 1e-9, absorbs float round-off) — the test used
    for placement legality. *)

val inter : t -> t -> t option
(** Intersection rectangle; [None] when disjoint (touching boxes yield a
    degenerate rectangle, not [None]). *)

val inter_all : t list -> t option
(** Intersection of all; [None] when the list is empty or the common
    region is empty. *)

val union : t -> t -> t
(** Bounding box of the two. *)

val expand : t -> float -> t
(** Minkowski expansion by [d] on every side; negative [d] shrinks and
    collapses to the center when over-shrunk. *)

val clamp_point : t -> Point.t -> Point.t
(** Nearest point of the rectangle to the argument. *)

val translate : t -> Point.t -> t

val pp : Format.formatter -> t -> unit
