lib/ilp/set_partition.mli:
