lib/ilp/set_partition.ml: Array Float Fun List Mbr_lp Mbr_util
