(** Exact solver for the paper's ILP (§3.1):

    {v minimize   sum_i w_i x_i
       subject to for every register j: sum_{i : j in M_i} x_i = 1
                  x_i in {0, 1} v}

    i.e. weighted set partitioning over MBR candidates. Because the
    compatibility graph is K-partitioned into blocks of at most 30
    registers (§3), each instance is small and is solved to proven
    optimality by depth-first branch-and-bound:

    - branch on the uncovered element with the fewest remaining
      candidates (fail-first);
    - per-element share lower bound
      [sum_e min_{c ∋ e} w_c / |c|] for pruning;
    - optional LP-relaxation root bound via {!Mbr_lp.Simplex}.

    Callers must include a candidate for every element that can stand
    alone (the paper's "Original" singletons), otherwise the instance
    may be infeasible — which is detected and reported, not an error. *)

type candidate = { weight : float; elems : int list }
(** [elems] are register indices in \[0, n_elems); duplicates are
    ignored. Candidates with [weight = infinity] (the paper's
    [n_i >= b_i] case) are skipped by the solver. *)

type problem = { n_elems : int; candidates : candidate array }

type status = Optimal | Feasible | Infeasible

type result = {
  status : status;
  cost : float;  (** total weight of [chosen]; [nan] when infeasible *)
  chosen : int list;  (** indices into [candidates], ascending *)
  nodes : int;  (** search-tree nodes explored *)
}

val solve : ?node_limit:int -> ?lp_bound:bool -> problem -> result
(** [node_limit] (default 2_000_000) caps the search; when hit, the best
    incumbent is returned with [status = Feasible]. [lp_bound] (default
    [true]) computes the root LP relaxation for pruning. *)

val lp_relaxation : problem -> float option
(** Optimal value of the LP relaxation, [None] when LP-infeasible.
    Exposed for tests and for the benchmark's ILP-vs-LP gap report. *)

val brute_force : problem -> result
(** Exhaustive oracle for tests. Exponential: use only with a handful of
    candidates. *)
