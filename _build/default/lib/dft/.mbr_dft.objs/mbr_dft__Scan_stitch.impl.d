lib/dft/scan_stitch.ml: Fun Hashtbl List Mbr_geom Mbr_liberty Mbr_netlist Mbr_place Printf
