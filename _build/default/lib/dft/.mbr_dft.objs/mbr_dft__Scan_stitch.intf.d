lib/dft/scan_stitch.mli: Mbr_netlist Mbr_place
