(** Scan-chain stitching and verification.

    The paper's scan-compatibility rules (§2) exist to keep the scan
    chains stitchable after composition; this module makes that
    concrete: it wires one chain per scan partition (SI port → SI/SO
    hops → SO port), re-wires after composition, and verifies chain
    integrity.

    Ordering inside a partition: ordered sections first, section by
    section, each in ascending position (§2's order constraint), then
    the unordered registers, greedily nearest-neighbour from the last
    endpoint (short chains = less routing — the §4.1 concern about
    external chains). Internal-scan MBRs contribute one hop (the chain
    enters SI0 and leaves SO0 through the cell's internal chain);
    per-bit-scan cells contribute one hop per bit, wired externally. *)

type report = {
  n_chains : int;
  n_hops : int;  (** SI/SO pin pairs threaded *)
  wirelength : float;  (** Manhattan length of the stitched nets, µm *)
}

val stitch : Mbr_place.Placement.t -> report
(** (Re)stitch every partition of the design. Existing scan wiring is
    dropped first, so the call is idempotent; chain ports are created
    on demand (named [scan_si<p>] / [scan_so<p>]). Unplaced scannable
    registers are appended at the end of their partition's chain. *)

val verify : Mbr_netlist.Design.t -> string list
(** Chain-integrity violations (empty = healthy): every scannable
    register reachable from its partition's SI port exactly once,
    chains terminate at the SO port, and ordered-section members appear
    in ascending position order along the chain. *)
