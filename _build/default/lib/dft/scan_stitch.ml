module Point = Mbr_geom.Point
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Cell_lib = Mbr_liberty.Cell

type report = { n_chains : int; n_hops : int; wirelength : float }

(* Scannable live registers grouped by partition. *)
let by_partition dsg =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun cid ->
      match (Design.reg_attrs dsg cid).Types.scan with
      | Some s ->
        let cur =
          match Hashtbl.find_opt tbl s.Types.partition with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace tbl s.Types.partition (cid :: cur)
      | None -> ())
    (Design.registers dsg);
  List.sort compare (Hashtbl.fold (fun p l acc -> (p, List.rev l) :: acc) tbl [])

(* The SI/SO hop pins a register contributes, in chain order. *)
let hops dsg cid =
  let a = Design.reg_attrs dsg cid in
  let bit_pair b =
    match
      (Design.pin_of dsg cid (Types.Pin_scan_in b),
       Design.pin_of dsg cid (Types.Pin_scan_out b))
    with
    | Some si, Some so -> Some (si, so)
    | _, _ -> None
  in
  match a.Types.lib_cell.Cell_lib.scan with
  | Cell_lib.No_scan -> []
  | Cell_lib.Internal_scan -> ( match bit_pair 0 with Some p -> [ p ] | None -> [] )
  | Cell_lib.Per_bit_scan ->
    List.filter_map bit_pair (List.init a.Types.lib_cell.Cell_lib.bits Fun.id)

let disconnect_scan_wiring dsg =
  List.iter
    (fun cid ->
      List.iter
        (fun pid ->
          match (Design.pin dsg pid).Types.p_kind with
          | Types.Pin_scan_in _ | Types.Pin_scan_out _ -> Design.disconnect dsg pid
          | Types.Pin_d _ | Types.Pin_q _ | Types.Pin_clock | Types.Pin_reset
          | Types.Pin_scan_enable | Types.Pin_in _ | Types.Pin_out | Types.Pin_port
            ->
            ())
        (Design.pins_of dsg cid))
    (Design.registers dsg)

(* Chain order within one partition: section runs first, then unordered
   registers nearest-neighbour from the previous chain endpoint. *)
let chain_order pl members =
  let dsg = Placement.design pl in
  let sectioned, free =
    List.partition
      (fun cid ->
        match (Design.reg_attrs dsg cid).Types.scan with
        | Some { Types.section = Some _; _ } -> true
        | Some { Types.section = None; _ } | None -> false)
      members
  in
  let sec_key cid =
    match (Design.reg_attrs dsg cid).Types.scan with
    | Some { Types.section = Some (sec, pos); _ } -> (sec, pos, cid)
    | Some { Types.section = None; _ } | None -> (max_int, 0, cid)
  in
  let sectioned = List.sort (fun a b -> compare (sec_key a) (sec_key b)) sectioned in
  let pos_of cid =
    match Placement.location_opt pl cid with
    | Some _ -> Some (Placement.center pl cid)
    | None -> None
  in
  (* greedy nearest-neighbour walk over the free registers *)
  let placed_free, unplaced_free = List.partition (fun c -> pos_of c <> None) free in
  let start =
    match List.rev sectioned with
    | last :: _ -> pos_of last
    | [] -> None
  in
  let rec walk at remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let dist c =
        match (at, pos_of c) with
        | Some p, Some q -> Point.manhattan p q
        | _, _ -> 0.0
      in
      let next =
        List.fold_left
          (fun best c ->
            match best with
            | Some (b, bd) when bd <= dist c -> Some (b, bd)
            | Some _ | None -> Some (c, dist c))
          None remaining
      in
      (match next with
      | Some (c, _) ->
        walk (pos_of c) (List.filter (fun x -> x <> c) remaining) (c :: acc)
      | None -> List.rev acc)
  in
  let start =
    match (start, placed_free) with
    | None, c :: _ -> pos_of c
    | s, _ -> s
  in
  sectioned @ walk start placed_free [] @ unplaced_free

let stitch pl =
  let dsg = Placement.design pl in
  disconnect_scan_wiring dsg;
  let chains = by_partition dsg in
  let n_hops = ref 0 in
  let wirelength = ref 0.0 in
  let stitch_one (partition, members) =
    let ordered = chain_order pl members in
    let hop_list = List.concat_map (fun cid -> hops dsg cid) ordered in
    match hop_list with
    | [] -> false
    | _ ->
      let port_net name dir =
        let nid =
          match Design.find_cell dsg name with
          | Some cell_id -> (
            (* reuse the existing port's net *)
            match (Design.cell dsg cell_id).Types.c_pins with
            | pid :: _ -> (
              match (Design.pin dsg pid).Types.p_net with
              | Some n -> n
              | None ->
                let n = Design.add_net dsg (name ^ "_net") in
                Design.connect dsg pid n;
                n)
            | [] -> Design.add_net dsg (name ^ "_net"))
          | None ->
            let n = Design.add_net dsg (name ^ "_net") in
            ignore (Design.add_port dsg name dir n);
            n
        in
        nid
      in
      let si_net = port_net (Printf.sprintf "scan_si%d" partition) Types.In_port in
      let so_net = port_net (Printf.sprintf "scan_so%d" partition) Types.Out_port in
      let pin_pos pid =
        let cid = (Design.pin dsg pid).Types.p_cell in
        match Placement.location_opt pl cid with
        | Some _ -> Some (Placement.pin_location pl pid)
        | None -> None
      in
      let rec thread prev_so = function
        | [] ->
          (* close the chain into the scan-out port *)
          Design.connect dsg prev_so so_net
        | (si, so) :: rest ->
          let nid = Design.add_net dsg (Printf.sprintf "scan%d_%d" partition !n_hops) in
          Design.connect dsg prev_so nid;
          Design.connect dsg si nid;
          incr n_hops;
          (match (pin_pos prev_so, pin_pos si) with
          | Some a, Some b -> wirelength := !wirelength +. Point.manhattan a b
          | _, _ -> ());
          thread so rest
      in
      (match hop_list with
      | (first_si, first_so) :: rest ->
        (* scan-in port drives the first SI directly *)
        Design.connect dsg first_si si_net;
        incr n_hops;
        thread first_so rest
      | [] -> ());
      true
  in
  let n_chains = List.length (List.filter stitch_one chains) in
  { n_chains; n_hops = !n_hops; wirelength = !wirelength }

let verify dsg =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let chains = by_partition dsg in
  List.iter
    (fun (partition, members) ->
      let expected_hops =
        List.fold_left (fun acc cid -> acc + List.length (hops dsg cid)) 0 members
      in
      if expected_hops > 0 then begin
        match Design.find_cell dsg (Printf.sprintf "scan_si%d" partition) with
        | None -> bad "partition %d has scan registers but no scan-in port" partition
        | Some port -> (
          let start_net =
            match (Design.cell dsg port).Types.c_pins with
            | pid :: _ -> (Design.pin dsg pid).Types.p_net
            | [] -> None
          in
          match start_net with
          | None -> bad "partition %d scan-in port unconnected" partition
          | Some nid ->
            (* walk SI -> (register) -> SO -> next SI *)
            let visited_regs = Hashtbl.create 16 in
            let section_watch = ref [] in
            let rec follow nid steps =
              if steps > expected_hops + 2 then
                bad "partition %d chain does not terminate" partition
              else begin
                let sis =
                  List.filter
                    (fun pid ->
                      match (Design.pin dsg pid).Types.p_kind with
                      | Types.Pin_scan_in _ -> true
                      | _ -> false)
                    (Design.sinks dsg nid)
                in
                match sis with
                | [] ->
                  (* must be the scan-out port *)
                  let is_so_port =
                    List.exists
                      (fun pid ->
                        let c = Design.cell dsg (Design.pin dsg pid).Types.p_cell in
                        c.Types.c_name = Printf.sprintf "scan_so%d" partition)
                      (Design.sinks dsg nid)
                  in
                  if not is_so_port then
                    bad "partition %d chain dead-ends mid-way" partition
                | [ si ] -> (
                  let p = Design.pin dsg si in
                  let cid = p.Types.p_cell in
                  let bit =
                    match p.Types.p_kind with Types.Pin_scan_in b -> b | _ -> 0
                  in
                  Hashtbl.replace visited_regs (cid, bit) ();
                  (match (Design.reg_attrs dsg cid).Types.scan with
                  | Some { Types.section = Some (sec, pos); _ } ->
                    section_watch := (sec, pos) :: !section_watch
                  | Some { Types.section = None; _ } | None -> ());
                  match Design.pin_of dsg cid (Types.Pin_scan_out bit) with
                  | Some so -> (
                    match (Design.pin dsg so).Types.p_net with
                    | Some next -> follow next (steps + 1)
                    | None -> bad "partition %d: SO of %s bit %d unconnected"
                                partition (Design.cell dsg cid).Types.c_name bit)
                  | None -> bad "partition %d: missing SO pin" partition)
                | _ :: _ :: _ -> bad "partition %d: net fans out to several SIs" partition
              end
            in
            follow nid 0;
            let n_visited = Hashtbl.length visited_regs in
            if n_visited <> expected_hops then
              bad "partition %d: chain visits %d of %d hops" partition n_visited
                expected_hops;
            (* ordered sections must appear in ascending position *)
            let per_section = Hashtbl.create 4 in
            List.iter
              (fun (sec, pos) ->
                let cur =
                  match Hashtbl.find_opt per_section sec with Some l -> l | None -> []
                in
                Hashtbl.replace per_section sec (pos :: cur))
              (List.rev !section_watch);
            Hashtbl.iter
              (fun sec poss ->
                let order = List.rev poss in
                if order <> List.sort compare order then
                  bad "partition %d: section %d out of order" partition sec)
              per_section)
      end)
    chains;
  List.rev !problems
