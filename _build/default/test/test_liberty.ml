(* Tests for Mbr_liberty: cell model geometry/economics, library queries
   and the §4.1 mapping rule implemented by best_cell. *)

module Cell = Mbr_liberty.Cell
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf = Alcotest.(check (float 1e-9))

let lib = Presets.default ()

let dff1 = Library.find lib "DFF1_X1"

let dff8 = Library.find lib "DFF8_X1"

(* ---- Cell ---- *)

let test_cell_area_per_bit_decreases () =
  (* control sharing: wider MBRs cost less area per bit *)
  let apb w = Cell.area_per_bit (Library.find lib (Printf.sprintf "DFF%d_X1" w)) in
  check "2 < 1" true (apb 2 < apb 1);
  check "4 < 2" true (apb 4 < apb 2);
  check "8 < 4" true (apb 8 < apb 4)

let test_cell_clock_cap_sublinear () =
  (* one shared clock pin: cap grows far slower than bit count *)
  check "8-bit cap < 8x 1-bit" true
    (dff8.Cell.clock_pin_cap < 8.0 *. dff1.Cell.clock_pin_cap);
  check "cap grows with width" true (dff8.Cell.clock_pin_cap > dff1.Cell.clock_pin_cap)

let test_cell_drive_res_vs_strength () =
  let x1 = Library.find lib "DFF1_X1" in
  let x2 = Library.find lib "DFF1_X2" in
  let x4 = Library.find lib "DFF1_X4" in
  check "x2 stronger" true (x2.Cell.drive_res < x1.Cell.drive_res);
  check "x4 strongest" true (x4.Cell.drive_res < x2.Cell.drive_res);
  check "strength costs area" true (x4.Cell.area > x1.Cell.area)

let test_cell_pin_offsets_inside () =
  List.iter
    (fun (c : Cell.t) ->
      for b = 0 to c.Cell.bits - 1 do
        let d = Cell.d_pin_offset c b and q = Cell.q_pin_offset c b in
        check "d inside" true
          (d.Mbr_geom.Point.x >= 0.0 && d.Mbr_geom.Point.x <= c.Cell.width
          && d.Mbr_geom.Point.y >= 0.0 && d.Mbr_geom.Point.y <= c.Cell.height);
        check "q inside" true
          (q.Mbr_geom.Point.x >= 0.0 && q.Mbr_geom.Point.x <= c.Cell.width
          && q.Mbr_geom.Point.y >= 0.0 && q.Mbr_geom.Point.y <= c.Cell.height)
      done)
    (Library.cells lib)

let test_cell_pin_offsets_distinct () =
  let offsets =
    List.init dff8.Cell.bits (fun b -> Cell.d_pin_offset dff8 b)
  in
  checki "8 distinct D offsets" 8 (List.length (List.sort_uniq compare offsets))

let test_cell_bad_bit_index () =
  Alcotest.check_raises "bit oob" (Invalid_argument "Cell: bit index out of range")
    (fun () -> ignore (Cell.d_pin_offset dff1 1))

let test_cell_clk_to_q_linear () =
  let d0 = Cell.clk_to_q dff1 ~load:0.0 in
  let d10 = Cell.clk_to_q dff1 ~load:10.0 in
  checkf "intrinsic at zero load" dff1.Cell.intrinsic d0;
  checkf "slope = drive_res" dff1.Cell.drive_res ((d10 -. d0) /. 10.0)

let test_cell_footprint () =
  let fp = Cell.footprint_at dff1 (Mbr_geom.Point.make 3.0 4.0) in
  checkf "lx" 3.0 fp.Mbr_geom.Rect.lx;
  checkf "width" dff1.Cell.width (Mbr_geom.Rect.width fp);
  checkf "height" dff1.Cell.height (Mbr_geom.Rect.height fp)

(* ---- Library ---- *)

let test_library_widths () =
  Alcotest.(check (list int)) "dff widths" [ 1; 2; 4; 8 ]
    (Library.widths lib ~func_class:"dff");
  checki "max width" 8 (Library.max_width lib ~func_class:"dff");
  Alcotest.(check (list int)) "unknown class" [] (Library.widths lib ~func_class:"nope")

let test_library_find_missing () =
  check "missing raises" true
    (try ignore (Library.find lib "NOPE"); false with Not_found -> true)

let test_library_duplicate_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Library.make: duplicate cell DFF1_X1")
    (fun () -> ignore (Library.make [ dff1; dff1 ]))

let test_library_classes () =
  Alcotest.(check (list string)) "classes" [ "dff"; "dffr"; "dlat"; "sdffr" ]
    (Library.classes lib)

let test_smallest_width_geq () =
  check "3 -> 4" true (Library.smallest_width_geq lib ~func_class:"dff" 3 = Some 4);
  check "5 -> 8" true (Library.smallest_width_geq lib ~func_class:"dff" 5 = Some 8);
  check "8 -> 8" true (Library.smallest_width_geq lib ~func_class:"dff" 8 = Some 8);
  check "9 -> none" true (Library.smallest_width_geq lib ~func_class:"dff" 9 = None)

let test_best_cell_respects_drive_bound () =
  (* requiring resistance <= 1.0 excludes X1 (2.0) *)
  match
    Library.best_cell lib ~func_class:"dff" ~bits:4 ~max_drive_res:1.0 ~need_scan:`No
  with
  | Some c ->
    check "drive fits" true (c.Cell.drive_res <= 1.0);
    (* among fitting drives, min clock cap = weakest fitting drive *)
    checki "X2 chosen" 2 c.Cell.drive
  | None -> Alcotest.fail "expected a cell"

let test_best_cell_fallback_strongest () =
  (* impossible bound: falls back to the strongest cell *)
  match
    Library.best_cell lib ~func_class:"dff" ~bits:2 ~max_drive_res:0.01 ~need_scan:`No
  with
  | Some c -> checki "strongest" 4 c.Cell.drive
  | None -> Alcotest.fail "expected fallback"

let test_best_cell_scan_requirements () =
  (match
     Library.best_cell lib ~func_class:"sdffr" ~bits:4 ~max_drive_res:10.0
       ~need_scan:`Internal
   with
  | Some c -> check "internal scan" true (c.Cell.scan = Cell.Internal_scan)
  | None -> Alcotest.fail "expected internal-scan cell");
  (* per-bit-scan cells only win under `Any_scan when they beat internal
     on the penalty ordering — they never do while internal exists *)
  (match
     Library.best_cell lib ~func_class:"sdffr" ~bits:4 ~max_drive_res:10.0
       ~need_scan:`Any_scan
   with
  | Some c -> check "still internal (penalty)" true (c.Cell.scan = Cell.Internal_scan)
  | None -> Alcotest.fail "expected cell")

let test_best_cell_unknown () =
  check "unknown class" true
    (Library.best_cell lib ~func_class:"latch" ~bits:2 ~max_drive_res:10.0
       ~need_scan:`No
    = None);
  check "unknown width" true
    (Library.best_cell lib ~func_class:"dff" ~bits:3 ~max_drive_res:10.0
       ~need_scan:`No
    = None)

let test_paper_example_library () =
  let ex = Presets.paper_example () in
  Alcotest.(check (list int)) "widths 1,2,3,4,8" [ 1; 2; 3; 4; 8 ]
    (Library.widths ex ~func_class:"dff")

let () =
  Alcotest.run "mbr_liberty"
    [
      ( "cell",
        [
          Alcotest.test_case "area/bit decreases" `Quick test_cell_area_per_bit_decreases;
          Alcotest.test_case "clock cap sublinear" `Quick test_cell_clock_cap_sublinear;
          Alcotest.test_case "drive strength" `Quick test_cell_drive_res_vs_strength;
          Alcotest.test_case "pin offsets inside" `Quick test_cell_pin_offsets_inside;
          Alcotest.test_case "pin offsets distinct" `Quick test_cell_pin_offsets_distinct;
          Alcotest.test_case "bad bit index" `Quick test_cell_bad_bit_index;
          Alcotest.test_case "clk_to_q linear" `Quick test_cell_clk_to_q_linear;
          Alcotest.test_case "footprint" `Quick test_cell_footprint;
        ] );
      ( "library",
        [
          Alcotest.test_case "widths" `Quick test_library_widths;
          Alcotest.test_case "find missing" `Quick test_library_find_missing;
          Alcotest.test_case "duplicate rejected" `Quick test_library_duplicate_rejected;
          Alcotest.test_case "classes" `Quick test_library_classes;
          Alcotest.test_case "smallest width geq" `Quick test_smallest_width_geq;
          Alcotest.test_case "drive bound" `Quick test_best_cell_respects_drive_bound;
          Alcotest.test_case "fallback strongest" `Quick test_best_cell_fallback_strongest;
          Alcotest.test_case "scan requirements" `Quick test_best_cell_scan_requirements;
          Alcotest.test_case "unknown lookups" `Quick test_best_cell_unknown;
          Alcotest.test_case "paper example library" `Quick test_paper_example_library;
        ] );
    ]
