(* Tests for Mbr_graph: Ugraph, Bron–Kerbosch (vs a brute-force maximal
   clique oracle), connected components, K-partitioning. *)

module Ugraph = Mbr_graph.Ugraph
module Bk = Mbr_graph.Bron_kerbosch
module Components = Mbr_graph.Components
module Kpart = Mbr_graph.Kpart
module Point = Mbr_geom.Point
module Rng = Mbr_util.Rng

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let graph_of_edges n edges =
  let g = Ugraph.create n in
  List.iter (fun (a, b) -> Ugraph.add_edge g a b) edges;
  g

(* ---- Ugraph ---- *)

let test_ugraph_basic () =
  let g = graph_of_edges 4 [ (0, 1); (1, 2) ] in
  check "has 0-1" true (Ugraph.has_edge g 0 1);
  check "symmetric" true (Ugraph.has_edge g 1 0);
  check "no 0-2" false (Ugraph.has_edge g 0 2);
  checki "edges" 2 (Ugraph.n_edges g);
  checki "deg 1" 2 (Ugraph.degree g 1);
  Alcotest.(check (list int)) "neighbors" [ 0; 2 ] (Ugraph.neighbors g 1)

let test_ugraph_idempotent_edges () =
  let g = graph_of_edges 3 [ (0, 1); (0, 1); (1, 0) ] in
  checki "one edge" 1 (Ugraph.n_edges g)

let test_ugraph_self_loop () =
  let g = Ugraph.create 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Ugraph.add_edge: self-loop")
    (fun () -> Ugraph.add_edge g 1 1)

let test_ugraph_edges_sorted () =
  let g = graph_of_edges 4 [ (2, 3); (0, 1); (1, 3) ] in
  Alcotest.(check (list (pair int int))) "sorted" [ (0, 1); (1, 3); (2, 3) ]
    (Ugraph.edges g)

let test_ugraph_induced () =
  let g = graph_of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] in
  let sub = Ugraph.induced g [| 0; 1; 4 |] in
  checki "3 nodes" 3 (Ugraph.n_nodes sub);
  check "0-1 kept" true (Ugraph.has_edge sub 0 1);
  check "0-4 kept (as 0-2)" true (Ugraph.has_edge sub 0 2);
  check "1-4 absent" false (Ugraph.has_edge sub 1 2)

let test_ugraph_is_clique () =
  let g = graph_of_edges 4 [ (0, 1); (0, 2); (1, 2) ] in
  check "triangle" true (Ugraph.is_clique g [ 0; 1; 2 ]);
  check "not clique" false (Ugraph.is_clique g [ 0; 1; 3 ]);
  check "singleton" true (Ugraph.is_clique g [ 3 ]);
  check "empty" true (Ugraph.is_clique g [])

let test_degeneracy_order () =
  let g = graph_of_edges 5 [ (0, 1); (0, 2); (1, 2); (3, 0) ] in
  let order = Ugraph.degeneracy_order g in
  checki "permutation length" 5 (Array.length order);
  let sorted = Array.copy order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" [| 0; 1; 2; 3; 4 |] sorted

(* ---- Bron–Kerbosch ---- *)

let brute_maximal_cliques g =
  (* all maximal cliques by subset enumeration; n <= ~15 *)
  let n = Ugraph.n_nodes g in
  let cliques = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let members = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id) in
    if Ugraph.is_clique g members then begin
      (* maximal iff no external vertex adjacent to all *)
      let maximal =
        not
          (List.exists
             (fun v ->
               (not (List.mem v members))
               && List.for_all (fun m -> Ugraph.has_edge g v m) members)
             (List.init n Fun.id))
      in
      if maximal then cliques := members :: !cliques
    end
  done;
  List.sort compare !cliques

let test_bk_triangle_plus_edge () =
  let g = graph_of_edges 4 [ (0, 1); (0, 2); (1, 2); (2, 3) ] in
  Alcotest.(check (list (list int))) "cliques" [ [ 0; 1; 2 ]; [ 2; 3 ] ]
    (Bk.maximal_cliques g)

let test_bk_isolated_nodes () =
  let g = Ugraph.create 3 in
  Alcotest.(check (list (list int))) "singletons" [ [ 0 ]; [ 1 ]; [ 2 ] ]
    (Bk.maximal_cliques g)

let test_bk_complete_graph () =
  let n = 6 in
  let g = Ugraph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Ugraph.add_edge g i j
    done
  done;
  Alcotest.(check (list (list int))) "one clique" [ List.init n Fun.id ]
    (Bk.maximal_cliques g);
  checki "max size" n (Bk.max_clique_size g)

let test_bk_paper_fig1 () =
  (* the compatibility graph of the paper's Fig. 1:
     A=0 B=1 C=2 D=3 E=4 F=5; edges: all pairs of {A,B,C,D}, B-F, C-F,
     A-E, C-E. Maximal cliques: {A,B,C,D}, {B,C,F}, {A,C,E}. *)
  let g =
    graph_of_edges 6
      [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3); (1, 5); (2, 5); (0, 4); (2, 4) ]
  in
  Alcotest.(check (list (list int)))
    "paper cliques"
    [ [ 0; 1; 2; 3 ]; [ 0; 2; 4 ]; [ 1; 2; 5 ] ]
    (Bk.maximal_cliques g)

let test_bk_count () =
  let g = graph_of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  checki "path cliques" 4 (Bk.count_maximal_cliques g)

let random_graph rng n p =
  let g = Ugraph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.chance rng p then Ugraph.add_edge g i j
    done
  done;
  g

let bk_matches_oracle =
  QCheck.Test.make ~name:"Bron-Kerbosch = brute-force maximal cliques" ~count:150
    QCheck.(pair (int_range 1 9) (int_bound 100))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = random_graph rng n 0.45 in
      Bk.maximal_cliques g = brute_maximal_cliques g)

let bk_all_are_cliques_and_maximal =
  QCheck.Test.make ~name:"every reported clique is maximal" ~count:100
    QCheck.(int_bound 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 14 in
      let g = random_graph rng n 0.4 in
      List.for_all
        (fun c ->
          Ugraph.is_clique g c
          && not
               (List.exists
                  (fun v ->
                    (not (List.mem v c))
                    && List.for_all (fun m -> Ugraph.has_edge g v m) c)
                  (List.init n Fun.id)))
        (Bk.maximal_cliques g))

(* ---- Components ---- *)

let test_components_basic () =
  let g = graph_of_edges 6 [ (0, 1); (1, 2); (4, 5) ] in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ] ]
    (Components.components g)

let test_component_of () =
  let g = graph_of_edges 4 [ (0, 2) ] in
  let comp = Components.component_of g in
  checki "same comp" comp.(0) comp.(2);
  check "diff comp" true (comp.(0) <> comp.(1))

(* ---- Kpart ---- *)

let grid_position n i =
  ignore n;
  Point.make (Float.of_int (i mod 10)) (Float.of_int (i / 10))

let test_kpart_respects_bound () =
  let n = 100 in
  let g = Ugraph.create n in
  for i = 0 to n - 2 do
    Ugraph.add_edge g i (i + 1)
  done;
  let blocks = Kpart.partition ~bound:30 g ~position:(grid_position n) in
  List.iter (fun b -> check "bound" true (List.length b <= 30)) blocks;
  checki "all nodes once" n (List.length (List.concat blocks));
  Alcotest.(check (list int)) "exactly the nodes" (List.init n Fun.id)
    (List.sort compare (List.concat blocks))

let test_kpart_small_component_untouched () =
  let g = graph_of_edges 5 [ (0, 1); (2, 3) ] in
  let blocks = Kpart.partition ~bound:30 g ~position:(grid_position 5) in
  checki "3 blocks" 3 (List.length blocks)

let test_kpart_never_straddles_components () =
  let g = graph_of_edges 8 [ (0, 1); (1, 2); (2, 3); (4, 5); (5, 6); (6, 7) ] in
  let blocks = Kpart.partition ~bound:2 g ~position:(grid_position 8) in
  List.iter
    (fun b ->
      let comp_a = List.for_all (fun v -> v <= 3) b in
      let comp_b = List.for_all (fun v -> v >= 4) b in
      check "single component per block" true (comp_a || comp_b))
    blocks

let test_kpart_invalid_bound () =
  let g = Ugraph.create 2 in
  Alcotest.check_raises "bound" (Invalid_argument "Kpart.partition: bound < 1")
    (fun () -> ignore (Kpart.partition ~bound:0 g ~position:(grid_position 2)))

let test_split_by_median () =
  let position i = Point.make (Float.of_int i) 0.0 in
  let left, right = Kpart.split_by_median ~position [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "left half" [ 0; 1; 2 ] (List.sort compare left);
  Alcotest.(check (list int)) "right half" [ 3; 4; 5 ] (List.sort compare right)

let test_split_by_wider_axis () =
  (* spread is larger in y: split must separate low-y from high-y *)
  let position i = Point.make 0.0 (Float.of_int (i * 10)) in
  let left, right = Kpart.split_by_median ~position [ 0; 1; 2; 3 ] in
  check "y split" true
    (List.for_all (fun v -> v < 2) left && List.for_all (fun v -> v >= 2) right)

let kpart_partition_property =
  QCheck.Test.make ~name:"kpart: bound respected, nodes covered exactly once"
    ~count:100
    QCheck.(pair (int_range 1 60) (int_bound 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = random_graph rng n 0.1 in
      let position i =
        Point.make (Rng.float (Rng.create (i + seed)) 100.0) (Float.of_int (i mod 7))
      in
      let blocks = Kpart.partition ~bound:10 g ~position in
      List.for_all (fun b -> List.length b <= 10 && b <> []) blocks
      && List.sort compare (List.concat blocks) = List.init n Fun.id)

let () =
  Alcotest.run "mbr_graph"
    [
      ( "ugraph",
        [
          Alcotest.test_case "basic" `Quick test_ugraph_basic;
          Alcotest.test_case "idempotent edges" `Quick test_ugraph_idempotent_edges;
          Alcotest.test_case "self loop" `Quick test_ugraph_self_loop;
          Alcotest.test_case "edges sorted" `Quick test_ugraph_edges_sorted;
          Alcotest.test_case "induced" `Quick test_ugraph_induced;
          Alcotest.test_case "is_clique" `Quick test_ugraph_is_clique;
          Alcotest.test_case "degeneracy order" `Quick test_degeneracy_order;
        ] );
      ( "bron_kerbosch",
        [
          Alcotest.test_case "triangle + edge" `Quick test_bk_triangle_plus_edge;
          Alcotest.test_case "isolated nodes" `Quick test_bk_isolated_nodes;
          Alcotest.test_case "complete graph" `Quick test_bk_complete_graph;
          Alcotest.test_case "paper Fig.1 cliques" `Quick test_bk_paper_fig1;
          Alcotest.test_case "count" `Quick test_bk_count;
          QCheck_alcotest.to_alcotest bk_matches_oracle;
          QCheck_alcotest.to_alcotest bk_all_are_cliques_and_maximal;
        ] );
      ( "components",
        [
          Alcotest.test_case "basic" `Quick test_components_basic;
          Alcotest.test_case "component_of" `Quick test_component_of;
        ] );
      ( "kpart",
        [
          Alcotest.test_case "respects bound" `Quick test_kpart_respects_bound;
          Alcotest.test_case "small components" `Quick test_kpart_small_component_untouched;
          Alcotest.test_case "no straddling" `Quick test_kpart_never_straddles_components;
          Alcotest.test_case "invalid bound" `Quick test_kpart_invalid_bound;
          Alcotest.test_case "split by median" `Quick test_split_by_median;
          Alcotest.test_case "split wider axis" `Quick test_split_by_wider_axis;
          QCheck_alcotest.to_alcotest kpart_partition_property;
        ] );
    ]
