(* Tests for Mbr_dft.Scan_stitch: chain construction, verification,
   ordered-section order, per-bit-scan threading, idempotency, and
   integration with the composition flow. *)

module Scan_stitch = Mbr_dft.Scan_stitch
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Cell_lib = Mbr_liberty.Cell
module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement
module Flow = Mbr_core.Flow
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let lib = Presets.default ()

let core = Rect.make ~lx:0.0 ~ly:0.0 ~hx:60.0 ~hy:60.0

let fp = Floorplan.make ~core ~row_height:1.2 ~site_width:0.2

let fresh () =
  let d = Design.create ~name:"dft" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let _ = Design.add_clock_root d "uclk" clk in
  let rst = Design.add_net d "rst" in
  let se = Design.add_net d "se" in
  let pl = Placement.create fp d in
  (d, pl, clk, rst, se)

let add_scan_reg d pl clk rst se ~name ~cell ~partition ?section x =
  let attrs =
    Types.
      {
        lib_cell = cell;
        fixed = false;
        size_only = false;
        scan = Some { partition; section };
        gate_enable = None;
      }
  in
  let bits = cell.Cell_lib.bits in
  let conn =
    {
      Design.d_nets = Array.make bits None;
      q_nets = Array.make bits None;
      clock = clk;
      reset = Some rst;
      scan_enable = Some se;
      scan_ins = [];
      scan_outs = [];
    }
  in
  let r = Design.add_register d name attrs conn in
  Placement.set pl r (Point.make x 2.4);
  r

let sdffr1 = Library.find lib "SDFFR1_X1"

let sdffr2 = Library.find lib "SDFFR2_X1"

let sdffr4_pb = Library.find lib "SDFFR4_X1_PB"

let test_single_chain () =
  let d, pl, clk, rst, se = fresh () in
  let _r1 = add_scan_reg d pl clk rst se ~name:"a" ~cell:sdffr1 ~partition:0 5.0 in
  let _r2 = add_scan_reg d pl clk rst se ~name:"b" ~cell:sdffr1 ~partition:0 10.0 in
  let _r3 = add_scan_reg d pl clk rst se ~name:"c" ~cell:sdffr1 ~partition:0 15.0 in
  let r = Scan_stitch.stitch pl in
  checki "one chain" 1 r.Scan_stitch.n_chains;
  checki "three hops" 3 r.Scan_stitch.n_hops;
  check "wire measured" true (r.Scan_stitch.wirelength > 0.0);
  Alcotest.(check (list string)) "verified" [] (Scan_stitch.verify d);
  Alcotest.(check (list string)) "netlist valid" [] (Design.validate d)

let test_partitions_get_separate_chains () =
  let d, pl, clk, rst, se = fresh () in
  let _ = add_scan_reg d pl clk rst se ~name:"a" ~cell:sdffr1 ~partition:0 5.0 in
  let _ = add_scan_reg d pl clk rst se ~name:"b" ~cell:sdffr1 ~partition:1 10.0 in
  let r = Scan_stitch.stitch pl in
  checki "two chains" 2 r.Scan_stitch.n_chains;
  check "two SI ports" true
    (Design.find_cell d "scan_si0" <> None && Design.find_cell d "scan_si1" <> None);
  Alcotest.(check (list string)) "verified" [] (Scan_stitch.verify d)

let test_nearest_neighbour_order () =
  (* registers placed 0, 20, 10: chain should visit 0 -> 10 -> 20, not
     input order *)
  let d, pl, clk, rst, se = fresh () in
  let _ = add_scan_reg d pl clk rst se ~name:"a" ~cell:sdffr1 ~partition:0 0.5 in
  let _ = add_scan_reg d pl clk rst se ~name:"b" ~cell:sdffr1 ~partition:0 20.0 in
  let _ = add_scan_reg d pl clk rst se ~name:"c" ~cell:sdffr1 ~partition:0 10.0 in
  let r = Scan_stitch.stitch pl in
  (* greedy walk: total wire ~ 20 plus pin offsets, not ~ 40 *)
  check "short chain" true (r.Scan_stitch.wirelength < 30.0);
  Alcotest.(check (list string)) "verified" [] (Scan_stitch.verify d)

let test_ordered_sections_first_and_in_order () =
  let d, pl, clk, rst, se = fresh () in
  (* section positions deliberately anti-spatial *)
  let _ = add_scan_reg d pl clk rst se ~name:"s2" ~cell:sdffr1 ~partition:0
      ~section:(1, 2) 2.0 in
  let _ = add_scan_reg d pl clk rst se ~name:"s0" ~cell:sdffr1 ~partition:0
      ~section:(1, 0) 20.0 in
  let _ = add_scan_reg d pl clk rst se ~name:"s1" ~cell:sdffr1 ~partition:0
      ~section:(1, 1) 10.0 in
  let _ = add_scan_reg d pl clk rst se ~name:"free" ~cell:sdffr1 ~partition:0 5.0 in
  let _ = Scan_stitch.stitch pl in
  Alcotest.(check (list string)) "verified (order included)" []
    (Scan_stitch.verify d)

let test_internal_scan_mbr_one_hop () =
  let d, pl, clk, rst, se = fresh () in
  let _ = add_scan_reg d pl clk rst se ~name:"m" ~cell:sdffr2 ~partition:0 5.0 in
  let r = Scan_stitch.stitch pl in
  checki "2-bit internal-scan cell = one hop" 1 r.Scan_stitch.n_hops;
  Alcotest.(check (list string)) "verified" [] (Scan_stitch.verify d)

let test_per_bit_scan_threads_every_bit () =
  let d, pl, clk, rst, se = fresh () in
  let _ = add_scan_reg d pl clk rst se ~name:"pb" ~cell:sdffr4_pb ~partition:0 5.0 in
  let r = Scan_stitch.stitch pl in
  checki "4 hops for a per-bit 4-bit cell" 4 r.Scan_stitch.n_hops;
  Alcotest.(check (list string)) "verified" [] (Scan_stitch.verify d)

let test_restitch_idempotent () =
  let d, pl, clk, rst, se = fresh () in
  let _ = add_scan_reg d pl clk rst se ~name:"a" ~cell:sdffr1 ~partition:0 5.0 in
  let _ = add_scan_reg d pl clk rst se ~name:"b" ~cell:sdffr1 ~partition:0 10.0 in
  let r1 = Scan_stitch.stitch pl in
  let r2 = Scan_stitch.stitch pl in
  checki "same hops" r1.Scan_stitch.n_hops r2.Scan_stitch.n_hops;
  Alcotest.(check (list string)) "still verified" [] (Scan_stitch.verify d);
  Alcotest.(check (list string)) "netlist valid after restitch" [] (Design.validate d)

let test_verify_catches_broken_chain () =
  let d, pl, clk, rst, se = fresh () in
  let r1 = add_scan_reg d pl clk rst se ~name:"a" ~cell:sdffr1 ~partition:0 5.0 in
  let _ = add_scan_reg d pl clk rst se ~name:"b" ~cell:sdffr1 ~partition:0 10.0 in
  let _ = Scan_stitch.stitch pl in
  (* snip the chain mid-way *)
  (match Design.pin_of d r1 (Types.Pin_scan_out 0) with
  | Some pid -> Design.disconnect d pid
  | None -> Alcotest.fail "SO pin");
  check "verify reports a problem" true (Scan_stitch.verify d <> [])

let test_generated_design_chains_ok () =
  let g = G.generate (P.tiny ~seed:606) in
  Alcotest.(check (list string)) "chains verified at generation" []
    (Scan_stitch.verify g.G.design)

let test_flow_restitches () =
  let g = G.generate (P.tiny ~seed:607) in
  let r =
    Flow.run ~design:g.G.design ~placement:g.G.placement ~library:g.G.library
      ~sta_config:g.G.sta_config ()
  in
  check "merges happened" true (r.Flow.n_merges > 0);
  check "scan wl reported" true (r.Flow.scan_chain_wl > 0.0);
  Alcotest.(check (list string)) "chains verified after composition" []
    (Scan_stitch.verify g.G.design);
  Alcotest.(check (list string)) "netlist valid" [] (Design.validate g.G.design)

let () =
  Alcotest.run "mbr_dft"
    [
      ( "stitch",
        [
          Alcotest.test_case "single chain" `Quick test_single_chain;
          Alcotest.test_case "separate partitions" `Quick
            test_partitions_get_separate_chains;
          Alcotest.test_case "nearest-neighbour order" `Quick
            test_nearest_neighbour_order;
          Alcotest.test_case "ordered sections" `Quick
            test_ordered_sections_first_and_in_order;
          Alcotest.test_case "internal scan = one hop" `Quick
            test_internal_scan_mbr_one_hop;
          Alcotest.test_case "per-bit scan threads bits" `Quick
            test_per_bit_scan_threads_every_bit;
          Alcotest.test_case "restitch idempotent" `Quick test_restitch_idempotent;
          Alcotest.test_case "verify catches breaks" `Quick
            test_verify_catches_broken_chain;
        ] );
      ( "integration",
        [
          Alcotest.test_case "generated design chains" `Quick
            test_generated_design_chains_ok;
          Alcotest.test_case "flow restitches" `Quick test_flow_restitches;
        ] );
    ]
