(* Tests for Mbr_core.Power: unit conversions, the paper's 20-40 %
   clock-share claim on generated designs, and the headline effect —
   composition lowers clock power. *)

module Power = Mbr_core.Power
module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile

let check = Alcotest.(check bool)

let checkf = Alcotest.(check (float 1e-6))

let lib = Presets.default ()

let cfg =
  { Power.vdd = 1.0; clock_period = 1000.0; data_activity = 0.5; wire_cap = 0.2 }

(* a single register, clock pin cap known exactly, everything co-located *)
let single_reg () =
  let d = Design.create ~name:"p" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let root = Design.add_clock_root d "uclk" clk in
  let cell = Library.find lib "DFF1_X1" in
  let attrs =
    Types.
      { lib_cell = cell; fixed = false; size_only = false; scan = None; gate_enable = None }
  in
  let r =
    Design.add_register d "r" attrs
      (Design.simple_conn ~d:[| None |] ~q:[| None |] ~clock:clk)
  in
  let core = Rect.make ~lx:0.0 ~ly:0.0 ~hx:20.0 ~hy:20.0 in
  let pl = Placement.create (Floorplan.make ~core ~row_height:1.2 ~site_width:0.2) d in
  let at = Point.make 5.0 6.0 in
  Placement.set pl r at;
  Placement.set pl root at;
  (d, pl, cell)

let test_units () =
  (* one sink, zero clock wire (co-located root), no signal nets:
     P = 1000 * C * V^2 / period uW with V=1, period=1000 -> P = C *)
  let _, pl, cell = single_reg () in
  let r = Power.estimate ~config:cfg pl in
  (* clock cap here = the register's clock pin plus ~1 um of root wire *)
  check "clock power ~ pin cap" true
    (Float.abs (r.Power.clock_power -. cell.Mbr_liberty.Cell.clock_pin_cap) < 0.5);
  checkf "no signal power" 0.0 r.Power.signal_power;
  check "leakage from the cell" true
    (Float.abs (r.Power.leakage_power -. (cell.Mbr_liberty.Cell.leakage /. 1000.0))
    < 1e-9);
  check "total adds up" true
    (Float.abs
       (r.Power.total
       -. (r.Power.clock_power +. r.Power.signal_power +. r.Power.leakage_power))
    < 1e-9)

let test_faster_clock_more_power () =
  let _, pl, _ = single_reg () in
  let slow = Power.estimate ~config:cfg pl in
  let fast = Power.estimate ~config:{ cfg with Power.clock_period = 500.0 } pl in
  checkf "halving the period doubles clock power"
    (2.0 *. slow.Power.clock_power) fast.Power.clock_power

let test_vdd_quadratic () =
  let _, pl, _ = single_reg () in
  let v1 = Power.estimate ~config:cfg pl in
  let v2 = Power.estimate ~config:{ cfg with Power.vdd = 2.0 } pl in
  checkf "4x at double vdd" (4.0 *. v1.Power.clock_power) v2.Power.clock_power

let test_clock_share_in_paper_range () =
  let g = G.generate (P.tiny ~seed:515) in
  let r =
    Power.estimate ~config:(Power.config_of_sta g.G.sta_config) g.G.placement
  in
  (* §1: clock is 20-40 % of dynamic power for synchronous designs *)
  check "clock share plausible" true
    (r.Power.clock_fraction > 0.15 && r.Power.clock_fraction < 0.55);
  check "all components positive" true
    (r.Power.clock_power > 0.0 && r.Power.signal_power > 0.0
    && r.Power.leakage_power > 0.0)

let test_composition_reduces_clock_power () =
  let g = G.generate (P.tiny ~seed:616) in
  let r =
    Flow.run ~design:g.G.design ~placement:g.G.placement ~library:g.G.library
      ~sta_config:g.G.sta_config ()
  in
  check "clock power drops" true
    (r.Flow.after.Metrics.clk_power < r.Flow.before.Metrics.clk_power);
  check "share reported" true
    (r.Flow.before.Metrics.clk_power_frac > 0.0
    && r.Flow.before.Metrics.clk_power_frac < 1.0)

let () =
  Alcotest.run "mbr_core.power"
    [
      ( "model",
        [
          Alcotest.test_case "units" `Quick test_units;
          Alcotest.test_case "frequency scaling" `Quick test_faster_clock_more_power;
          Alcotest.test_case "vdd quadratic" `Quick test_vdd_quadratic;
        ] );
      ( "designs",
        [
          Alcotest.test_case "clock share 20-40%" `Quick test_clock_share_in_paper_range;
          Alcotest.test_case "composition reduces clock power" `Quick
            test_composition_reduces_clock_power;
        ] );
    ]
