(* Tests for Mbr_harness.Experiments: the drivers behind bench/main.exe
   and bin/mbrc — table/figure rendering, the Fig. 6 direction, and the
   ablation plumbing, all on down-scaled profiles to stay fast. *)

module E = Mbr_harness.Experiments
module P = Mbr_designgen.Profile
module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let small = List.map (fun p -> P.scaled p 0.15) [ P.d1; P.d4 ]

let runs = List.map E.run_profile small

let test_run_profile_sane () =
  List.iter
    (fun r ->
      let res = r.E.result in
      check "merges happen" true (res.Flow.n_merges > 0);
      check "registers drop" true
        (res.Flow.after.Metrics.total_regs < res.Flow.before.Metrics.total_regs);
      check "histograms cover all registers" true
        (List.fold_left (fun acc (_, n) -> acc + n) 0 r.E.hist_before
         = res.Flow.before.Metrics.total_regs
        && List.fold_left (fun acc (_, n) -> acc + n) 0 r.E.hist_after
           = res.Flow.after.Metrics.total_regs))
    runs

let test_table1_renders () =
  let s = E.table1 runs in
  check "has Base row" true (contains_sub s "Base");
  check "has Ours row" true (contains_sub s "Ours");
  check "has Save row" true (contains_sub s "Save");
  check "lists D1" true (contains_sub s "D1");
  check "lists D4" true (contains_sub s "D4")

let test_summary_renders () =
  let s = E.table1_summary runs in
  check "mentions paper numbers" true (contains_sub s "paper: 29 %");
  check "mentions failing EPs" true (contains_sub s "failing EPs")

let test_fig5_renders () =
  let s = E.fig5 runs in
  check "has before rows" true (contains_sub s "before");
  check "has after rows" true (contains_sub s "after");
  check "has widths" true (contains_sub s "8-bit")

let test_fig6_direction () =
  let rows, text = E.fig6 small in
  checki "one row per profile" (List.length small) (List.length rows);
  check "renders" true (contains_sub text "ILP");
  List.iter
    (fun r ->
      check
        (Printf.sprintf "%s: both allocators improve on base" r.E.name)
        true
        (r.E.ilp_regs < r.E.base_regs && r.E.heuristic_regs < r.E.base_regs);
      check
        (Printf.sprintf "%s: Fig. 6 direction" r.E.name)
        true
        (r.E.ilp_regs <= r.E.heuristic_regs))
    rows

let test_ablations_render () =
  let p = P.scaled P.d1 0.15 in
  check "partition bound table" true
    (contains_sub (E.ablation_partition_bound p [ 20; 30 ]) "Partition bound");
  check "weights table" true (contains_sub (E.ablation_weights p) "placement-aware");
  check "incomplete table" true
    (contains_sub (E.ablation_incomplete p) "Incomplete MBRs");
  check "skew table" true (contains_sub (E.ablation_skew p) "Useful skew");
  check "decompose table" true
    (contains_sub (E.ablation_decompose p) "Decompose")

let () =
  Alcotest.run "mbr_harness"
    [
      ( "experiments",
        [
          Alcotest.test_case "run_profile" `Quick test_run_profile_sane;
          Alcotest.test_case "table1" `Quick test_table1_renders;
          Alcotest.test_case "summary" `Quick test_summary_renders;
          Alcotest.test_case "fig5" `Quick test_fig5_renders;
          Alcotest.test_case "fig6 direction" `Slow test_fig6_direction;
          Alcotest.test_case "ablations" `Slow test_ablations_render;
        ] );
    ]
