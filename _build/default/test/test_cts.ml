(* Tests for Mbr_cts: clustering limits, metrics, and the monotonicity
   MBR composition relies on — fewer/lighter sinks give a lighter tree. *)

module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Cell_lib = Mbr_liberty.Cell
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement
module Synth = Mbr_cts.Synth
module Rng = Mbr_util.Rng

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf = Alcotest.(check (float 1e-9))

let lib = Presets.default ()

let core = Rect.make ~lx:0.0 ~ly:0.0 ~hx:120.0 ~hy:120.0

let fp = Floorplan.make ~core ~row_height:1.2 ~site_width:0.2

let attrs cell =
  Types.{ lib_cell = cell; fixed = false; size_only = false; scan = None; gate_enable = None }

(* n registers of the given cell on a grid; returns (design, placement) *)
let grid_design ?(cell_name = "DFF1_X1") n =
  let cell = Library.find lib cell_name in
  let d = Design.create ~name:"cts" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let root = Design.add_clock_root d "uclk" clk in
  let pl = Placement.create fp d in
  Placement.set pl root (Point.make 60.0 60.0);
  let bits = cell.Cell_lib.bits in
  for i = 0 to n - 1 do
    let r =
      Design.add_register d
        (Printf.sprintf "r%d" i)
        (attrs cell)
        (Design.simple_conn ~d:(Array.make bits None) ~q:(Array.make bits None)
           ~clock:clk)
    in
    Placement.set pl r
      (Point.make (10.0 +. (10.0 *. float_of_int (i mod 10)))
         (10.0 +. (10.0 *. float_of_int (i / 10))))
  done;
  (d, pl)

let test_sink_count () =
  let _, pl = grid_design 25 in
  let r = Synth.synthesize pl in
  checki "sinks" 25 r.Synth.n_sinks;
  check "buffers inserted" true (r.Synth.n_buffers >= 2);
  check "wl positive" true (r.Synth.wirelength > 0.0)

let test_fanout_limit () =
  let _, pl = grid_design 64 in
  let cfg = { Synth.default_config with Synth.max_fanout = 4; max_cap = 1e9 } in
  let r = Synth.synthesize ~config:cfg pl in
  (* walk the tree: every buffer drives at most 4 children *)
  let rec walk = function
    | Synth.Sink _ -> true
    | Synth.Buffer b -> List.length b.children <= 4 && List.for_all walk b.children
  in
  List.iter (fun d -> check "fanout bound" true (walk d.Synth.root)) r.Synth.domains

let test_cap_limit () =
  let _, pl = grid_design 64 in
  let cfg = { Synth.default_config with Synth.max_fanout = 1000; max_cap = 3.0 } in
  let r = Synth.synthesize ~config:cfg pl in
  let node_cap = function
    | Synth.Sink { cap; _ } -> cap
    | Synth.Buffer _ -> cfg.Synth.buf_input_cap
  in
  let rec walk = function
    | Synth.Sink _ -> true
    | Synth.Buffer b ->
      List.fold_left (fun acc c -> acc +. node_cap c) 0.0 b.children
      <= cfg.Synth.max_cap +. 1e-9
      && List.for_all walk b.children
  in
  List.iter (fun d -> check "cap bound" true (walk d.Synth.root)) r.Synth.domains

let test_every_sink_in_tree () =
  let _, pl = grid_design 30 in
  let r = Synth.synthesize pl in
  let rec count = function
    | Synth.Sink _ -> 1
    | Synth.Buffer b -> List.fold_left (fun acc c -> acc + count c) 0 b.children
  in
  let total = List.fold_left (fun acc d -> acc + count d.Synth.root) 0 r.Synth.domains in
  checki "all sinks reachable" 30 total

let test_fewer_sinks_lighter_tree () =
  (* the core claim of MBR composition: 64 single-bit sinks vs 8 8-bit
     MBR sinks covering the same bits *)
  let _, pl1 = grid_design 64 ~cell_name:"DFF1_X1" in
  let _, pl8 = grid_design 8 ~cell_name:"DFF8_X1" in
  let r1 = Synth.synthesize pl1 in
  let r8 = Synth.synthesize pl8 in
  check "fewer buffers" true (r8.Synth.n_buffers <= r1.Synth.n_buffers);
  check "less clock cap" true (r8.Synth.total_cap < r1.Synth.total_cap);
  check "less wl" true (r8.Synth.wirelength < r1.Synth.wirelength)

let test_empty_design () =
  let d = Design.create ~name:"none" in
  let pl = Placement.create fp d in
  let r = Synth.synthesize pl in
  checki "no sinks" 0 r.Synth.n_sinks;
  checki "no domains" 0 (List.length r.Synth.domains);
  checkf "no wl" 0.0 r.Synth.wirelength

let test_single_sink () =
  let _, pl = grid_design 1 in
  let r = Synth.synthesize pl in
  checki "one sink" 1 r.Synth.n_sinks;
  checki "no buffers needed" 0 r.Synth.n_buffers

let test_two_domains () =
  let d = Design.create ~name:"dom" in
  let clk1 = Design.add_net ~is_clock:true d "clk1" in
  let clk2 = Design.add_net ~is_clock:true d "clk2" in
  let _ = Design.add_clock_root d "u1" clk1 in
  let _ = Design.add_clock_root d "u2" clk2 in
  let pl = Placement.create fp d in
  let cell = Library.find lib "DFF1_X1" in
  let add name clk x =
    let r =
      Design.add_register d name (attrs cell)
        (Design.simple_conn ~d:[| None |] ~q:[| None |] ~clock:clk)
    in
    Placement.set pl r (Point.make x 12.0)
  in
  add "a" clk1 10.0;
  add "b" clk1 20.0;
  add "c" clk2 30.0;
  let r = Synth.synthesize pl in
  checki "two domains" 2 (List.length r.Synth.domains);
  checki "three sinks total" 3 r.Synth.n_sinks

let test_total_cap_decomposition () =
  let _, pl = grid_design 20 in
  let r = Synth.synthesize pl in
  let sum =
    List.fold_left
      (fun acc d -> acc +. d.Synth.sink_cap +. d.Synth.wire_capacitance +. d.Synth.buffer_cap)
      0.0 r.Synth.domains
  in
  checkf "total = sinks + wire + buffers" sum r.Synth.total_cap

let test_deterministic () =
  let _, pl = grid_design 40 in
  let a = Synth.synthesize pl in
  let b = Synth.synthesize pl in
  checki "same buffers" a.Synth.n_buffers b.Synth.n_buffers;
  checkf "same wl" a.Synth.wirelength b.Synth.wirelength

let () =
  Alcotest.run "mbr_cts"
    [
      ( "synthesis",
        [
          Alcotest.test_case "sink count" `Quick test_sink_count;
          Alcotest.test_case "fanout limit" `Quick test_fanout_limit;
          Alcotest.test_case "cap limit" `Quick test_cap_limit;
          Alcotest.test_case "all sinks in tree" `Quick test_every_sink_in_tree;
          Alcotest.test_case "fewer sinks lighter tree" `Quick
            test_fewer_sinks_lighter_tree;
          Alcotest.test_case "empty design" `Quick test_empty_design;
          Alcotest.test_case "single sink" `Quick test_single_sink;
          Alcotest.test_case "two domains" `Quick test_two_domains;
          Alcotest.test_case "cap decomposition" `Quick test_total_cap_decomposition;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
    ]
