(* Multi-seed robustness: the full flow must uphold its invariants on
   any generated design, not just the seeds the other tests use. Each
   seed runs the complete pipeline and checks the structural and
   metric invariants; edge-case designs (no composable registers, a
   single register, no scan, the paper's 6-register example) are
   exercised explicitly. *)

module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module Scan_stitch = Mbr_dft.Scan_stitch
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let invariants ?(check_cap = true) seed (g : G.t) (r : Flow.result) =
  let name msg = Printf.sprintf "seed %d: %s" seed msg in
  Alcotest.(check (list string)) (name "netlist valid") []
    (Design.validate g.G.design);
  checki (name "no register overlaps") 0
    (List.length (Placement.overlapping_registers g.G.placement));
  Alcotest.(check (list string)) (name "scan chains verified") []
    (Scan_stitch.verify g.G.design);
  checki (name "register accounting")
    (r.Flow.before.Metrics.total_regs - r.Flow.n_regs_merged + r.Flow.n_merges
    + (r.Flow.n_split (* each split adds one cell net of the original *)))
    r.Flow.after.Metrics.total_regs;
  check (name "tns not degraded") true
    (r.Flow.after.Metrics.tns >= r.Flow.before.Metrics.tns -. 1e-6);
  (* the paper's Table 1 itself shows ±1 % overflow deltas ("the
     difference ... is marginal"); hold the flow to the same bar *)
  check (name "overflow only marginally changed") true
    (float_of_int r.Flow.after.Metrics.ovfl
    <= (1.03 *. float_of_int r.Flow.before.Metrics.ovfl) +. 2.0);
  if check_cap then
    check (name "clock cap not degraded") true
      (r.Flow.after.Metrics.clk_cap <= r.Flow.before.Metrics.clk_cap +. 1e-6);
  List.iter
    (fun cid ->
      check (name "new MBR live") true (not (Design.cell g.G.design cid).Types.c_dead);
      check (name "new MBR placed") true (Placement.is_placed g.G.placement cid))
    r.Flow.new_mbrs;
  (* every stage time is non-negative and they roughly fill the runtime *)
  List.iter (fun (_, t) -> check (name "stage time sane") true (t >= 0.0))
    r.Flow.stage_times

let run_seed ?(options = Flow.default_options) seed =
  let g = G.generate (P.tiny ~seed) in
  let r =
    Flow.run ~options ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  (g, r)

let test_many_seeds () =
  List.iter
    (fun seed ->
      let g, r = run_seed seed in
      invariants seed g r;
      check
        (Printf.sprintf "seed %d: merges found" seed)
        true (r.Flow.n_merges > 0))
    [ 11; 22; 33; 44; 55; 66; 77; 88; 99; 110 ]

let test_many_seeds_with_decompose () =
  List.iter
    (fun seed ->
      let g, r = run_seed ~options:{ Flow.default_options with Flow.decompose = true } seed in
      (* stranded split halves may raise clock cap (see the decompose
         ablation); the structural invariants must still hold *)
      invariants ~check_cap:false seed g r)
    [ 7; 14; 21 ]

let test_latches_compose_within_class () =
  (* latches (class dlat) merge with latches, never with flops *)
  let g = G.generate (P.tiny ~seed:909) in
  let class_of cid =
    (Design.reg_attrs g.G.design cid).Types.lib_cell.Mbr_liberty.Cell.func_class
  in
  let latches_before =
    List.filter (fun cid -> class_of cid = "dlat") (Design.registers g.G.design)
  in
  check "design has latches" true (List.length latches_before > 3);
  let r =
    Flow.run ~design:g.G.design ~placement:g.G.placement ~library:g.G.library
      ~sta_config:g.G.sta_config ()
  in
  (* every new MBR is class-pure by construction; check it anyway *)
  List.iter
    (fun cid ->
      check "new MBR has a single class" true
        (List.mem (class_of cid) [ "dff"; "dffr"; "dlat"; "sdffr" ]))
    r.Flow.new_mbrs;
  let latch_mbrs =
    List.filter (fun cid -> class_of cid = "dlat") r.Flow.new_mbrs
  in
  check "some latch MBRs were composed" true (latch_mbrs <> []);
  Alcotest.(check (list string)) "valid" [] (Design.validate g.G.design)

let test_global_placement_entry () =
  (* the conclusion's claim: composition applies after global placement
     too — overlapping, off-grid registers *)
  let g = G.generate (P.tiny ~seed:808) in
  G.to_global_placement g;
  check "global snapshot has register overlaps" true
    (Placement.overlapping_registers g.G.placement <> []);
  let r =
    Flow.run ~design:g.G.design ~placement:g.G.placement ~library:g.G.library
      ~sta_config:g.G.sta_config ()
  in
  check "merges from global placement" true (r.Flow.n_merges > 0);
  Alcotest.(check (list string)) "netlist valid" [] (Design.validate g.G.design);
  Alcotest.(check (list string)) "scan chains verified" []
    (Scan_stitch.verify g.G.design);
  (* new MBRs must be mutually legal even though the surrounding sea of
     unmerged cells is still a global placement *)
  let new_set = r.Flow.new_mbrs in
  List.iter
    (fun (a, b) ->
      check "no overlap among new MBRs" true
        (not (List.mem a new_set && List.mem b new_set)))
    (Placement.overlapping_registers g.G.placement)

(* ---- edge cases ---- *)

let test_flow_on_paper_example () =
  (* six registers, no gates: the flow should still run and merge *)
  let t = Mbr_core.Paper_example.build () in
  let cfg = { Engine.default_config with Engine.clock_period = 2000.0 } in
  let r =
    Flow.run ~design:t.Mbr_core.Paper_example.design
      ~placement:t.Mbr_core.Paper_example.placement
      ~library:t.Mbr_core.Paper_example.library ~sta_config:cfg ()
  in
  check "merges on the example" true (r.Flow.n_merges > 0);
  Alcotest.(check (list string)) "valid" []
    (Design.validate t.Mbr_core.Paper_example.design)

let test_flow_no_composable () =
  (* all registers fixed: nothing to do, nothing broken *)
  let g = G.generate (P.tiny ~seed:3131) in
  List.iter
    (fun cid ->
      let a = Design.reg_attrs g.G.design cid in
      (* brute-force pin them by retyping attrs through the record *)
      let c = Design.cell g.G.design cid in
      c.Types.c_kind <- Types.Register { a with Types.fixed = true })
    (Design.registers g.G.design);
  let r =
    Flow.run ~design:g.G.design ~placement:g.G.placement ~library:g.G.library
      ~sta_config:g.G.sta_config ()
  in
  checki "no merges" 0 r.Flow.n_merges;
  checki "register count unchanged" r.Flow.before.Metrics.total_regs
    r.Flow.after.Metrics.total_regs;
  Alcotest.(check (list string)) "valid" [] (Design.validate g.G.design)

let test_flow_empty_design () =
  let d = Design.create ~name:"empty" in
  let core = Mbr_geom.Rect.make ~lx:0.0 ~ly:0.0 ~hx:20.0 ~hy:20.0 in
  let fp = Mbr_place.Floorplan.make ~core ~row_height:1.2 ~site_width:0.2 in
  let pl = Placement.create fp d in
  let r =
    Flow.run ~design:d ~placement:pl
      ~library:(Mbr_liberty.Presets.default ())
      ~sta_config:Engine.default_config ()
  in
  checki "nothing merged" 0 r.Flow.n_merges;
  checki "no registers" 0 r.Flow.after.Metrics.total_regs

let test_flow_single_register () =
  let d = Design.create ~name:"single" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let _ = Design.add_clock_root d "uclk" clk in
  let lib = Mbr_liberty.Presets.default () in
  let cell = Mbr_liberty.Library.find lib "DFF1_X1" in
  let attrs =
    Types.
      { lib_cell = cell; fixed = false; size_only = false; scan = None; gate_enable = None }
  in
  let r =
    Design.add_register d "lonely" attrs
      (Design.simple_conn ~d:[| None |] ~q:[| None |] ~clock:clk)
  in
  let core = Mbr_geom.Rect.make ~lx:0.0 ~ly:0.0 ~hx:20.0 ~hy:20.0 in
  let fp = Mbr_place.Floorplan.make ~core ~row_height:1.2 ~site_width:0.2 in
  let pl = Placement.create fp d in
  Placement.set pl r (Mbr_geom.Point.make 5.0 2.4);
  (match Design.find_cell d "uclk" with
  | Some id -> Placement.set pl id (Mbr_geom.Point.make 10.0 10.0)
  | None -> ());
  let res =
    Flow.run ~design:d ~placement:pl ~library:lib
      ~sta_config:Engine.default_config ()
  in
  checki "kept alone" 1 res.Flow.after.Metrics.total_regs;
  checki "no merges" 0 res.Flow.n_merges

let () =
  Alcotest.run "mbr_core.flow_random"
    [
      ( "seeds",
        [
          Alcotest.test_case "ten random seeds" `Slow test_many_seeds;
          Alcotest.test_case "with decompose" `Slow test_many_seeds_with_decompose;
        ] );
      ( "edge_cases",
        [
          Alcotest.test_case "latches compose within class" `Quick
            test_latches_compose_within_class;
          Alcotest.test_case "global placement entry" `Quick
            test_global_placement_entry;
          Alcotest.test_case "paper example design" `Quick test_flow_on_paper_example;
          Alcotest.test_case "no composable registers" `Quick test_flow_no_composable;
          Alcotest.test_case "empty design" `Quick test_flow_empty_design;
          Alcotest.test_case "single register" `Quick test_flow_single_register;
        ] );
    ]
