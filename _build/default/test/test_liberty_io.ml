(* Tests for Mbr_liberty.Liberty_io: the Liberty writer/parser subset,
   round-trip fidelity, and error reporting on malformed input. *)

module Cell = Mbr_liberty.Cell
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Io = Mbr_liberty.Liberty_io

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf = Alcotest.(check (float 1e-9))

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let lib = Presets.default ()

let test_writer_shape () =
  let s = Io.to_liberty ~name:"testlib" lib in
  check "library group" true (contains_sub s "library (testlib) {");
  check "a known cell" true (contains_sub s "cell (DFF8_X4) {");
  check "clock pin marked" true (contains_sub s "clock : true");
  check "linear model attrs" true
    (contains_sub s "rise_resistance" && contains_sub s "intrinsic_rise");
  check "scan pins for scan cells" true (contains_sub s "pin (SE)")

let cells_equal (a : Cell.t) (b : Cell.t) =
  a.Cell.name = b.Cell.name
  && a.Cell.func_class = b.Cell.func_class
  && a.Cell.bits = b.Cell.bits
  && a.Cell.drive = b.Cell.drive
  && Float.abs (a.Cell.area -. b.Cell.area) < 1e-6
  && Float.abs (a.Cell.width -. b.Cell.width) < 1e-6
  && Float.abs (a.Cell.height -. b.Cell.height) < 1e-6
  && Float.abs (a.Cell.clock_pin_cap -. b.Cell.clock_pin_cap) < 1e-6
  && Float.abs (a.Cell.data_pin_cap -. b.Cell.data_pin_cap) < 1e-6
  && Float.abs (a.Cell.drive_res -. b.Cell.drive_res) < 1e-6
  && Float.abs (a.Cell.intrinsic -. b.Cell.intrinsic) < 1e-6
  && Float.abs (a.Cell.setup -. b.Cell.setup) < 1e-6
  && Float.abs (a.Cell.leakage -. b.Cell.leakage) < 1e-6
  && a.Cell.scan = b.Cell.scan

let test_roundtrip_default () =
  let parsed = Io.of_liberty (Io.to_liberty lib) in
  checki "same cell count" (List.length (Library.cells lib))
    (List.length (Library.cells parsed));
  List.iter
    (fun (c : Cell.t) ->
      let c' = Library.find parsed c.Cell.name in
      check (c.Cell.name ^ " roundtrips") true (cells_equal c c'))
    (Library.cells lib)

let test_roundtrip_paper_example () =
  let ex = Presets.paper_example () in
  let parsed = Io.of_liberty (Io.to_liberty ex) in
  Alcotest.(check (list int)) "widths preserved" [ 1; 2; 3; 4; 8 ]
    (Library.widths parsed ~func_class:"dff")

let test_handwritten_minimal () =
  let src =
    {|
/* a minimal hand-written cell */
library (mini) {
  cell (TOY1) {
    area : 2.0 ;
    user_func_class : "dff" ;
    pin (CK) { direction : input ; clock : true ; capacitance : 0.9 ; }
    pin (D0) { direction : input ; capacitance : 0.5 ; }
    pin (Q0) {
      direction : output ;
      timing () {
        related_pin : "CK" ;
        intrinsic_rise : 55.0 ;
        rise_resistance : 1.5 ;
      }
    }
  }
}
|}
  in
  let parsed = Io.of_liberty src in
  let c = Library.find parsed "TOY1" in
  checki "bits" 1 c.Cell.bits;
  checkf "cap" 0.9 c.Cell.clock_pin_cap;
  checkf "res" 1.5 c.Cell.drive_res;
  checkf "intrinsic" 55.0 c.Cell.intrinsic;
  check "defaults fill in" true (c.Cell.scan = Cell.No_scan && c.Cell.drive = 1)

let expect_error src fragment =
  match Io.of_liberty src with
  | _ -> Alcotest.failf "expected a parse error mentioning %S" fragment
  | exception Io.Parse_error msg ->
    check (Printf.sprintf "error mentions %S (got %S)" fragment msg) true
      (contains_sub msg fragment)

let test_errors () =
  expect_error "cell (X) {}" "library";
  expect_error "library (l) { cell (X) { } }" "no D pins";
  expect_error
    "library (l) { cell (X) { pin (D0) { capacitance : 0.5 ; } pin (Q0) { } \
     pin (CK) { capacitance : 1.0 ; } } }"
    "timing";
  expect_error "library (l) {" "unexpected end of file";
  expect_error "library (l) { pin } " "expected";
  expect_error "library (l) { /* open comment " "comment"

let test_comments_and_whitespace () =
  let src =
    "library(l){/*c*/cell(T){area:1.0;\n\n  user_func_class:\"dff\";\n\
     pin(CK){clock:true;capacitance:1.0;}pin(D0){capacitance:0.4;}\n\
     pin(Q0){timing(){intrinsic_rise:50;rise_resistance:2;}}}}"
  in
  let parsed = Io.of_liberty src in
  checki "parsed" 1 (List.length (Library.cells parsed))

let demo_gates =
  Io.
    [
      { g_name = "NAND2_X1"; g_inputs = 2; g_drive_res = 2.2; g_intrinsic = 16.0;
        g_input_cap = 0.55; g_area = 1.2 };
      { g_name = "INV_X1"; g_inputs = 1; g_drive_res = 1.8; g_intrinsic = 12.0;
        g_input_cap = 0.45; g_area = 0.8 };
    ]

let test_gate_cells_roundtrip () =
  let src = Io.to_liberty ~gates:demo_gates lib in
  check "gate cell written" true (contains_sub src "cell (NAND2_X1) {");
  let parsed_lib, gates = Io.of_liberty_full src in
  checki "registers preserved" (List.length (Library.cells lib))
    (List.length (Library.cells parsed_lib));
  checki "two gates" 2 (List.length gates);
  (match List.find_opt (fun g -> g.Io.g_name = "NAND2_X1") gates with
  | Some g ->
    checki "inputs" 2 g.Io.g_inputs;
    checkf "res" 2.2 g.Io.g_drive_res;
    checkf "intrinsic" 16.0 g.Io.g_intrinsic;
    checkf "input cap" 0.55 g.Io.g_input_cap;
    checkf "area" 1.2 g.Io.g_area
  | None -> Alcotest.fail "NAND2_X1 expected");
  (* the registers-only reader simply skips gate cells *)
  let only_regs = Io.of_liberty src in
  checki "of_liberty skips gates" (List.length (Library.cells lib))
    (List.length (Library.cells only_regs))

let test_gates_only_file_rejected () =
  let src = Io.to_liberty ~gates:demo_gates (Library.make []) in
  ignore src;
  match Io.of_liberty src with
  | _ -> Alcotest.fail "expected rejection"
  | exception Io.Parse_error msg ->
    check "mentions register cells" true (contains_sub msg "register")

let test_scan_style_detection () =
  let parsed = Io.of_liberty (Io.to_liberty lib) in
  let internal = Library.find parsed "SDFFR4_X1" in
  let per_bit = Library.find parsed "SDFFR4_X1_PB" in
  let plain = Library.find parsed "DFF4_X1" in
  check "internal" true (internal.Cell.scan = Cell.Internal_scan);
  check "per-bit" true (per_bit.Cell.scan = Cell.Per_bit_scan);
  check "none" true (plain.Cell.scan = Cell.No_scan)

let () =
  Alcotest.run "liberty_io"
    [
      ( "writer",
        [ Alcotest.test_case "shape" `Quick test_writer_shape ] );
      ( "roundtrip",
        [
          Alcotest.test_case "default library" `Quick test_roundtrip_default;
          Alcotest.test_case "paper example" `Quick test_roundtrip_paper_example;
          Alcotest.test_case "scan styles" `Quick test_scan_style_detection;
          Alcotest.test_case "gate cells" `Quick test_gate_cells_roundtrip;
          Alcotest.test_case "gates-only rejected" `Quick test_gates_only_file_rejected;
        ] );
      ( "parser",
        [
          Alcotest.test_case "hand-written" `Quick test_handwritten_minimal;
          Alcotest.test_case "comments/whitespace" `Quick test_comments_and_whitespace;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]
