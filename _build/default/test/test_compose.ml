(* Tests for Mbr_core.Compose: the netlist rewrite that replaces member
   registers with one MBR — connectivity preservation, bit ordering,
   incomplete bits, attribute merging, and error cases. *)

module Compose = Mbr_core.Compose
module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Cell_lib = Mbr_liberty.Cell
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let lib = Presets.default ()

let dff1 = Library.find lib "DFF1_X1"

let dff2 = Library.find lib "DFF2_X1"

let dff4 = Library.find lib "DFF4_X1"

let dff8 = Library.find lib "DFF8_X1"

let core = Rect.make ~lx:0.0 ~ly:0.0 ~hx:60.0 ~hy:60.0

let fp = Floorplan.make ~core ~row_height:1.2 ~site_width:0.2

let attrs ?scan ?(enable = None) cell =
  Types.{ lib_cell = cell; fixed = false; size_only = false; scan; gate_enable = enable }

(* n single/multi-bit registers with driven D nets and loaded Q nets *)
let setup cells =
  let d = Design.create ~name:"c" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let _ = Design.add_clock_root d "uclk" clk in
  let pl = Placement.create fp d in
  let regs =
    List.mapi
      (fun i (cell : Cell_lib.t) ->
        let bits = cell.Cell_lib.bits in
        let dn =
          Array.init bits (fun b ->
              let nid = Design.add_net d (Printf.sprintf "d%d_%d" i b) in
              let p = Design.add_port d (Printf.sprintf "pi%d_%d" i b) Types.In_port nid in
              Placement.set pl p (Point.make 1.0 1.2);
              Some nid)
        in
        let qn =
          Array.init bits (fun b ->
              let nid = Design.add_net d (Printf.sprintf "q%d_%d" i b) in
              let p = Design.add_port d (Printf.sprintf "po%d_%d" i b) Types.Out_port nid in
              Placement.set pl p (Point.make 50.0 1.2);
              Some nid)
        in
        let r =
          Design.add_register d (Printf.sprintf "r%d" i) (attrs cell)
            (Design.simple_conn ~d:dn ~q:qn ~clock:clk)
        in
        Placement.set pl r (Point.make (5.0 +. (6.0 *. float_of_int i)) 2.4);
        r)
      cells
  in
  (d, pl, clk, regs)

let test_merge_two_singles () =
  let d, pl, _, regs = setup [ dff1; dff1 ] in
  (* record the old D/Q nets *)
  let nets r kind =
    List.filter_map
      (fun pid ->
        let p = Design.pin d pid in
        match (p.Types.p_kind, kind) with
        | Types.Pin_d _, `D -> p.Types.p_net
        | Types.Pin_q _, `Q -> p.Types.p_net
        | _ -> None)
      (Design.pins_of d r)
  in
  let old_d = List.concat_map (fun r -> nets r `D) regs in
  let old_q = List.concat_map (fun r -> nets r `Q) regs in
  let id =
    Compose.execute pl
      { Compose.member_cids = regs; cell = dff2; corner = Point.make 10.0 2.4 }
  in
  check "valid netlist" true (Design.validate d = []);
  checki "one register left" 1 (List.length (Design.registers d));
  (* old members dead *)
  List.iter (fun r -> check "dead" true (Design.cell d r).Types.c_dead) regs;
  check "members unplaced" true
    (List.for_all (fun r -> not (Placement.is_placed pl r)) regs);
  (* every old D/Q net now lands on the new cell *)
  let new_d = nets id `D and new_q = nets id `Q in
  Alcotest.(check (list int)) "D nets preserved" (List.sort compare old_d)
    (List.sort compare new_d);
  Alcotest.(check (list int)) "Q nets preserved" (List.sort compare old_q)
    (List.sort compare new_q);
  check "placed at corner" true
    (Point.equal (Placement.location pl id) (Point.make 10.0 2.4))

let test_merge_mixed_widths () =
  (* 2-bit + 1-bit + 1-bit -> 4-bit *)
  let d, pl, _, regs = setup [ dff2; dff1; dff1 ] in
  let id =
    Compose.execute pl
      { Compose.member_cids = regs; cell = dff4; corner = Point.make 12.0 3.6 }
  in
  check "valid" true (Design.validate d = []);
  checki "4 connected D pins" 4
    (List.length
       (List.filter
          (fun pid ->
            let p = Design.pin d pid in
            Types.is_data_input p.Types.p_kind && p.Types.p_net <> None)
          (Design.pins_of d id)))

let test_merge_incomplete () =
  (* 3 bits into a 4-bit cell: last bit unconnected *)
  let d, pl, _, regs = setup [ dff2; dff1 ] in
  let id =
    Compose.execute pl
      { Compose.member_cids = regs; cell = dff4; corner = Point.make 12.0 3.6 }
  in
  check "valid" true (Design.validate d = []);
  (match Design.pin_of d id (Types.Pin_d 3) with
  | Some pid -> check "bit 3 tied off" true ((Design.pin d pid).Types.p_net = None)
  | None -> Alcotest.fail "pin exists");
  (match Design.pin_of d id (Types.Pin_d 0) with
  | Some pid -> check "bit 0 wired" true ((Design.pin d pid).Types.p_net <> None)
  | None -> Alcotest.fail "pin exists")

let test_bit_order_spatial () =
  (* members ordered by x: r0 at x=5 gets bit 0, r1 at x=11 bit 1 *)
  let d, pl, _, regs = setup [ dff1; dff1 ] in
  let assign = Compose.bit_assignment pl regs in
  (match (assign, regs) with
  | [ (0, d0, _); (1, d1, _) ], [ r0; r1 ] ->
    let d_net r =
      match Design.pin_of d r (Types.Pin_d 0) with
      | Some pid -> (Design.pin d pid).Types.p_net
      | None -> None
    in
    check "bit0 from left reg" true (d0 = d_net r0);
    check "bit1 from right reg" true (d1 = d_net r1)
  | _ -> Alcotest.fail "two bits expected")

let test_bit_order_scan_sections () =
  (* ordered scan sections dominate spatial order *)
  let d, pl, clk, _ = setup [] in
  ignore clk;
  let clk2 = Design.add_net ~is_clock:true d "clk2" in
  let mk name pos x =
    let scan = Types.{ partition = 0; section = Some (7, pos) } in
    let r =
      Design.add_register d name (attrs ~scan dff1)
        (Design.simple_conn ~d:[| None |] ~q:[| None |] ~clock:clk2)
    in
    Placement.set pl r (Point.make x 4.8);
    r
  in
  (* rightmost register has the SMALLER scan position *)
  let r_right = mk "sright" 0 20.0 in
  let r_left = mk "sleft" 1 5.0 in
  let assign = Compose.bit_assignment pl [ r_left; r_right ] in
  (match assign with
  | [ (0, _, _); (1, _, _) ] -> ()
  | _ -> Alcotest.fail "two bits");
  (* verify bit 0 belongs to r_right (scan pos 0) despite being right *)
  let ordered = Compose.bit_assignment pl [ r_right; r_left ] in
  check "same order regardless of input order" true (assign = ordered);
  ignore r_right;
  ignore r_left

let test_merged_scan_attrs () =
  let d, pl, clk, _ = setup [] in
  ignore clk;
  let clk2 = Design.add_net ~is_clock:true d "clk2" in
  let mk name pos =
    let scan = Types.{ partition = 3; section = Some (1, pos) } in
    let r =
      Design.add_register d name (attrs ~scan dff1)
        (Design.simple_conn ~d:[| None |] ~q:[| None |] ~clock:clk2)
    in
    Placement.set pl r (Point.make (5.0 *. float_of_int (pos + 1)) 4.8);
    r
  in
  let a = mk "a" 2 in
  let b = mk "b" 4 in
  let id =
    Compose.execute pl
      { Compose.member_cids = [ a; b ]; cell = dff2; corner = Point.make 8.0 4.8 }
  in
  match (Design.reg_attrs d id).Types.scan with
  | Some s ->
    checki "partition kept" 3 s.Types.partition;
    check "section kept with min pos" true (s.Types.section = Some (1, 2))
  | None -> Alcotest.fail "scan info expected"

let test_too_many_bits_rejected () =
  let _, pl, _, regs = setup [ dff4; dff4; dff1 ] in
  Alcotest.check_raises "overflow"
    (Invalid_argument "Compose.execute: members exceed the target cell width")
    (fun () ->
      ignore
        (Compose.execute pl
           { Compose.member_cids = regs; cell = dff8; corner = Point.origin }))

let test_clock_mismatch_rejected () =
  let d, pl, _, regs = setup [ dff1 ] in
  let clk2 = Design.add_net ~is_clock:true d "clk2" in
  let other =
    Design.add_register d "other" (attrs dff1)
      (Design.simple_conn ~d:[| None |] ~q:[| None |] ~clock:clk2)
  in
  Placement.set pl other (Point.make 30.0 2.4);
  (match regs with
  | [ r ] ->
    Alcotest.check_raises "clock mismatch"
      (Invalid_argument "Compose: members disagree on clock net") (fun () ->
        ignore
          (Compose.execute pl
             { Compose.member_cids = [ r; other ]; cell = dff2; corner = Point.origin }))
  | _ -> Alcotest.fail "one reg")

let test_total_register_count_drops () =
  let d, pl, _, regs = setup [ dff1; dff1; dff1; dff1 ] in
  let n0 = List.length (Design.registers d) in
  let _ =
    Compose.execute pl
      { Compose.member_cids = regs; cell = dff4; corner = Point.make 10.0 2.4 }
  in
  checki "4 -> 1" (n0 - 3) (List.length (Design.registers d))

let () =
  Alcotest.run "mbr_core.compose"
    [
      ( "merging",
        [
          Alcotest.test_case "two singles" `Quick test_merge_two_singles;
          Alcotest.test_case "mixed widths" `Quick test_merge_mixed_widths;
          Alcotest.test_case "incomplete bits" `Quick test_merge_incomplete;
          Alcotest.test_case "register count drops" `Quick
            test_total_register_count_drops;
        ] );
      ( "bit_order",
        [
          Alcotest.test_case "spatial" `Quick test_bit_order_spatial;
          Alcotest.test_case "scan sections" `Quick test_bit_order_scan_sections;
          Alcotest.test_case "merged scan attrs" `Quick test_merged_scan_attrs;
        ] );
      ( "errors",
        [
          Alcotest.test_case "too many bits" `Quick test_too_many_bits_rejected;
          Alcotest.test_case "clock mismatch" `Quick test_clock_mismatch_rejected;
        ] );
    ]
