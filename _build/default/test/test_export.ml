(* Tests for Mbr_export: Verilog and DEF writers/parsers, including the
   full save/reload/compose loop on a generated design. *)

module Verilog = Mbr_export.Verilog
module Def = Mbr_export.Def
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let g = G.generate (P.tiny ~seed:321)

let reimport () =
  let src = Verilog.to_verilog g.G.design in
  Verilog.of_verilog ~library:g.G.library ~gates:G.gate_resolver src

let test_verilog_shape () =
  let src = Verilog.to_verilog ~module_name:"top" g.G.design in
  check "module header" true (contains_sub src "module top (");
  check "ends" true (contains_sub src "endmodule");
  check "has wires" true (contains_sub src "  wire ");
  check "has input" true (contains_sub src "  input ");
  check "scan attr present" true (contains_sub src "mbr_scan_partition");
  check "clock root instance" true (contains_sub src "CLKROOT ")

let test_verilog_roundtrip_counts () =
  let d2 = reimport () in
  checki "cells" (Design.n_cells g.G.design) (Design.n_cells d2);
  checki "registers"
    (List.length (Design.registers g.G.design))
    (List.length (Design.registers d2));
  Alcotest.(check (list string)) "reimport valid" [] (Design.validate d2)

let test_verilog_roundtrip_attrs () =
  let d2 = reimport () in
  let summarize dsg =
    List.map
      (fun cid ->
        let c = Design.cell dsg cid in
        let a = Design.reg_attrs dsg cid in
        ( c.Types.c_name,
          a.Types.lib_cell.Mbr_liberty.Cell.name,
          a.Types.fixed,
          a.Types.size_only,
          a.Types.scan,
          a.Types.gate_enable ))
      (Design.registers dsg)
    |> List.sort compare
  in
  check "register attributes identical" true (summarize g.G.design = summarize d2)

let test_verilog_roundtrip_connectivity () =
  let d2 = reimport () in
  (* compare driver/sink structure per register D pin, via net -> driver
     cell-name maps *)
  let d_driver dsg cid b =
    match Design.pin_of dsg cid (Types.Pin_d b) with
    | Some pid -> (
      match (Design.pin dsg pid).Types.p_net with
      | Some nid -> (
        match Design.driver dsg nid with
        | Some dp -> Some (Design.cell dsg (Design.pin dsg dp).Types.p_cell).Types.c_name
        | None -> None)
      | None -> None)
    | None -> None
  in
  let name_of dsg cid = (Design.cell dsg cid).Types.c_name in
  let by_name dsg =
    List.map (fun cid -> (name_of dsg cid, cid)) (Design.registers dsg)
  in
  let m1 = by_name g.G.design and m2 = by_name d2 in
  List.iter
    (fun (n, c1) ->
      match List.assoc_opt n m2 with
      | Some c2 ->
        let bits = (Design.reg_attrs g.G.design c1).Types.lib_cell.Mbr_liberty.Cell.bits in
        for b = 0 to bits - 1 do
          check
            (Printf.sprintf "driver of %s.D%d" n b)
            true
            (d_driver g.G.design c1 b = d_driver d2 c2 b)
        done
      | None -> Alcotest.failf "register %s missing after reimport" n)
    m1

let test_verilog_parse_errors () =
  let expect src frag =
    match Verilog.of_verilog ~library:g.G.library ~gates:G.gate_resolver src with
    | _ -> Alcotest.failf "expected parse error about %s" frag
    | exception Verilog.Parse_error msg ->
      check (Printf.sprintf "mentions %s (got %s)" frag msg) true
        (contains_sub msg frag)
  in
  expect "wire x;" "module";
  expect "module m (a); input a; BOGUS_MASTER u0 (.Y(a)); endmodule" "unknown master";
  expect "module m (a); DFF1_X1 r (.D0(a)); endmodule" "direction";
  expect "module m (); wire w; " "endmodule"

let test_def_roundtrip () =
  let src = Def.to_def g.G.placement in
  check "die area present" true (contains_sub src "DIEAREA");
  check "components" true (contains_sub src "COMPONENTS");
  let pl2 = Def.of_def g.G.design src in
  (* every placed cell comes back at the same spot *)
  Placement.iter
    (fun cid p ->
      match Placement.location_opt pl2 cid with
      | Some q ->
        check "location preserved" true (Mbr_geom.Point.manhattan p q < 2e-3)
      | None -> Alcotest.fail "cell lost in DEF roundtrip")
    g.G.placement;
  let fp1 = Placement.floorplan g.G.placement in
  let fp2 = Placement.floorplan pl2 in
  check "core preserved" true
    (Mbr_geom.Rect.half_perimeter fp1.Mbr_place.Floorplan.core
     -. Mbr_geom.Rect.half_perimeter fp2.Mbr_place.Floorplan.core
     |> Float.abs < 1e-2)

let test_def_errors () =
  let expect src frag =
    match Def.of_def g.G.design src with
    | _ -> Alcotest.failf "expected DEF error about %s" frag
    | exception Def.Parse_error msg ->
      check (Printf.sprintf "mentions %s (got %s)" frag msg) true (contains_sub msg frag)
  in
  expect "VERSION 5.8 ;\nEND DESIGN" "DIEAREA";
  expect "DIEAREA ( 0 0 ) ( 1000 1000 ) ;\n- ghost DFF1_X1 + PLACED ( 0 0 ) N ;"
    "unknown component"


(* ---- SVG ---- *)

let test_svg_renders () =
  let svg = Mbr_export.Svg.render ~title:"before" g.G.placement in
  check "svg document" true (contains_sub svg "<svg xmlns=");
  check "closes" true (contains_sub svg "</svg>");
  check "has legend" true (contains_sub svg "8-bit");
  (* one rect per placed register at least *)
  let rects =
    List.length
      (String.split_on_char '\n' svg
      |> List.filter (fun l -> String.length l > 5 && String.sub l 0 5 = "<rect"))
  in
  check "enough rectangles" true
    (rects > List.length (Design.registers g.G.design))

let test_svg_highlight () =
  let some_reg = List.nth (Design.registers g.G.design) 0 in
  let svg = Mbr_export.Svg.render ~highlight:[ some_reg ] g.G.placement in
  check "highlight stroke present" true (contains_sub svg "stroke-width=\"1.6\"");
  (* unknown ids are ignored rather than failing *)
  let svg2 = Mbr_export.Svg.render ~highlight:[ 999999 ] g.G.placement in
  ignore svg2

(* the full loop: export both views, reimport, and the flow still runs *)
let test_full_save_load_compose () =
  let v = Verilog.to_verilog g.G.design in
  let d = Def.to_def g.G.placement in
  let design = Verilog.of_verilog ~library:g.G.library ~gates:G.gate_resolver v in
  let placement = Def.of_def design d in
  let eng = Engine.build ~config:g.G.sta_config placement in
  Engine.analyze eng;
  check "timing runs on reloaded design" true (Float.is_finite (Engine.wns eng));
  let r =
    Flow.run ~design ~placement ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  check "composition works after reload" true (r.Flow.n_merges > 0);
  check "registers drop" true
    (r.Flow.after.Metrics.total_regs < r.Flow.before.Metrics.total_regs);
  Alcotest.(check (list string)) "valid" [] (Design.validate design)

let () =
  Alcotest.run "mbr_export"
    [
      ( "verilog",
        [
          Alcotest.test_case "shape" `Quick test_verilog_shape;
          Alcotest.test_case "roundtrip counts" `Quick test_verilog_roundtrip_counts;
          Alcotest.test_case "roundtrip attrs" `Quick test_verilog_roundtrip_attrs;
          Alcotest.test_case "roundtrip connectivity" `Quick
            test_verilog_roundtrip_connectivity;
          Alcotest.test_case "parse errors" `Quick test_verilog_parse_errors;
        ] );
      ( "def",
        [
          Alcotest.test_case "roundtrip" `Quick test_def_roundtrip;
          Alcotest.test_case "errors" `Quick test_def_errors;
        ] );
      ( "svg",
        [
          Alcotest.test_case "renders" `Quick test_svg_renders;
          Alcotest.test_case "highlight" `Quick test_svg_highlight;
        ] );
      ( "integration",
        [ Alcotest.test_case "save/load/compose" `Quick test_full_save_load_compose ] );
    ]
