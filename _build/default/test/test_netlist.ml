(* Tests for Mbr_netlist.Design: construction, queries, edits,
   validation. *)

module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Cell_lib = Mbr_liberty.Cell

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf = Alcotest.(check (float 1e-9))

let lib = Presets.default ()

let dff1 = Library.find lib "DFF1_X1"

let dff4 = Library.find lib "DFF4_X1"

let sdffr2 = Library.find lib "SDFFR2_X1"

let attrs ?(fixed = false) ?(size_only = false) ?scan ?enable cell =
  Types.{ lib_cell = cell; fixed; size_only; scan; gate_enable = enable }

let nand2 =
  Types.
    {
      gate = "NAND2_X1";
      n_inputs = 2;
      drive_res = 2.2;
      intrinsic = 16.0;
      input_cap = 0.55;
      area = 1.2;
      g_width = 1.0;
      g_height = 1.2;
    }

(* clk net, one 1-bit register fed by a NAND2 of two input ports, Q to
   an output port *)
let small_design () =
  let d = Design.create ~name:"small" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let _ = Design.add_clock_root d "uclk" clk in
  let a = Design.add_net d "a" in
  let b = Design.add_net d "b" in
  let n1 = Design.add_net d "n1" in
  let q = Design.add_net d "q" in
  let _ = Design.add_port d "a" Types.In_port a in
  let _ = Design.add_port d "b" Types.In_port b in
  let _ = Design.add_port d "q" Types.Out_port q in
  let g = Design.add_comb d "g0" nand2 ~inputs:[ a; b ] ~output:n1 in
  let r =
    Design.add_register d "r0" (attrs dff1)
      (Design.simple_conn ~d:[| Some n1 |] ~q:[| Some q |] ~clock:clk)
  in
  (d, clk, n1, q, g, r)

let test_counts () =
  let d, _, _, _, _, _ = small_design () in
  checki "cells" 6 (Design.n_cells d);
  checki "nets" 5 (Design.n_nets d);
  checki "registers" 1 (List.length (Design.registers d));
  check "valid" true (Design.validate d = [])

let test_driver_sinks () =
  let d, _, n1, q, g, r = small_design () in
  (match Design.driver d n1 with
  | Some pid -> checki "n1 driven by gate" g (Design.pin d pid).Types.p_cell
  | None -> Alcotest.fail "n1 has a driver");
  let sinks = Design.sinks d n1 in
  checki "one sink" 1 (List.length sinks);
  (match sinks with
  | [ pid ] -> checki "sink is register" r (Design.pin d pid).Types.p_cell
  | _ -> Alcotest.fail "one sink expected");
  checki "q sinks = out port" 1 (List.length (Design.sinks d q))

let test_pin_of () =
  let d, _, _, _, _, r = small_design () in
  check "has D0" true (Design.pin_of d r (Types.Pin_d 0) <> None);
  check "has CK" true (Design.pin_of d r Types.Pin_clock <> None);
  check "no D1" true (Design.pin_of d r (Types.Pin_d 1) = None);
  check "no reset pin" true (Design.pin_of d r Types.Pin_reset = None)

let test_pin_caps () =
  let d, _, _, _, _, r = small_design () in
  (match Design.pin_of d r Types.Pin_clock with
  | Some pid -> checkf "clock cap" dff1.Cell_lib.clock_pin_cap (Design.pin_cap d pid)
  | None -> Alcotest.fail "ck pin");
  (match Design.pin_of d r (Types.Pin_d 0) with
  | Some pid -> checkf "data cap" dff1.Cell_lib.data_pin_cap (Design.pin_cap d pid)
  | None -> Alcotest.fail "d pin");
  (match Design.pin_of d r (Types.Pin_q 0) with
  | Some pid ->
    checkf "output pin cap 0" 0.0 (Design.pin_cap d pid);
    checkf "drive res" dff1.Cell_lib.drive_res (Design.pin_drive_res d pid)
  | None -> Alcotest.fail "q pin")

let test_register_attrs () =
  let d, _, _, _, _, r = small_design () in
  let a = Design.reg_attrs d r in
  check "not fixed" true (not a.Types.fixed);
  checki "bits" 1 a.Types.lib_cell.Cell_lib.bits

let test_multibit_register () =
  let d = Design.create ~name:"mb" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let nets = Array.init 4 (fun i -> Some (Design.add_net d (Printf.sprintf "d%d" i))) in
  let qs = Array.init 4 (fun i -> Some (Design.add_net d (Printf.sprintf "q%d" i))) in
  let r = Design.add_register d "m" (attrs dff4) (Design.simple_conn ~d:nets ~q:qs ~clock:clk) in
  checki "9 pins (4D + 4Q + CK)" 9 (List.length (Design.pins_of d r));
  check "valid" true (Design.validate d = [])

let test_incomplete_register () =
  (* tied-off bits: D/Q arrays with None entries *)
  let d = Design.create ~name:"inc" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let d0 = Design.add_net d "d0" in
  let q0 = Design.add_net d "q0" in
  let dn = [| Some d0; None; None; None |] in
  let qn = [| Some q0; None; None; None |] in
  let r = Design.add_register d "m" (attrs dff4) (Design.simple_conn ~d:dn ~q:qn ~clock:clk) in
  check "valid" true (Design.validate d = []);
  (match Design.pin_of d r (Types.Pin_d 1) with
  | Some pid -> check "bit1 unconnected" true ((Design.pin d pid).Types.p_net = None)
  | None -> Alcotest.fail "pin exists even when unconnected")

let test_register_arity_mismatch () =
  let d = Design.create ~name:"bad" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  Alcotest.check_raises "arity"
    (Invalid_argument "Design.add_register: D/Q array length must equal cell bits")
    (fun () ->
      ignore
        (Design.add_register d "m" (attrs dff4)
           (Design.simple_conn ~d:[| None |] ~q:[| None |] ~clock:clk)))

let test_comb_arity_mismatch () =
  let d = Design.create ~name:"bad" in
  let n = Design.add_net d "n" in
  let o = Design.add_net d "o" in
  Alcotest.check_raises "arity" (Invalid_argument "Design.add_comb: input arity mismatch")
    (fun () -> ignore (Design.add_comb d "g" nand2 ~inputs:[ n ] ~output:o))

let test_connect_disconnect () =
  let d, _, n1, _, _, r = small_design () in
  let pid =
    match Design.pin_of d r (Types.Pin_d 0) with
    | Some p -> p
    | None -> Alcotest.fail "d pin"
  in
  Design.disconnect d pid;
  check "disconnected" true ((Design.pin d pid).Types.p_net = None);
  checki "net lost the sink" 0 (List.length (Design.sinks d n1));
  Design.connect d pid n1;
  checki "reconnected" 1 (List.length (Design.sinks d n1));
  check "valid after edits" true (Design.validate d = [])

let test_connect_moves_pin () =
  let d, _, n1, q, _, r = small_design () in
  ignore q;
  let pid =
    match Design.pin_of d r (Types.Pin_d 0) with Some p -> p | None -> assert false
  in
  let other = Design.add_net d "other" in
  Design.connect d pid other;
  checki "old net empty" 0 (List.length (Design.sinks d n1));
  checki "new net has it" 1 (List.length (Design.sinks d other));
  check "valid" true (Design.validate d = [])

let test_remove_cell () =
  let d, _, _, _, _, r = small_design () in
  let before = Design.n_cells d in
  Design.remove_cell d r;
  checki "one fewer" (before - 1) (Design.n_cells d);
  checki "no registers" 0 (List.length (Design.registers d));
  check "valid after removal" true (Design.validate d = []);
  (* idempotent *)
  Design.remove_cell d r;
  checki "still one fewer" (before - 1) (Design.n_cells d);
  check "attrs of dead cell rejected" true
    (try ignore (Design.reg_attrs d r); false with Invalid_argument _ -> true)

let test_find_cell () =
  let d, _, _, _, _, r = small_design () in
  check "find r0" true (Design.find_cell d "r0" = Some r);
  check "missing" true (Design.find_cell d "nope" = None);
  Design.remove_cell d r;
  check "dead not found" true (Design.find_cell d "r0" = None)

let test_total_area () =
  let d, _, _, _, _, _ = small_design () in
  checkf "area = gate + register" (nand2.Types.area +. dff1.Cell_lib.area)
    (Design.total_area d)

let test_clock_nets () =
  let d, clk, _, _, _, _ = small_design () in
  Alcotest.(check (list int)) "clock nets" [ clk ] (Design.clock_nets d)

let test_retype_register () =
  let d = Design.create ~name:"rt" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let r =
    Design.add_register d "r" (attrs dff1)
      (Design.simple_conn ~d:[| None |] ~q:[| None |] ~clock:clk)
  in
  let x2 = Library.find lib "DFF1_X2" in
  Design.retype_register d r x2;
  checki "drive swapped" 2 (Design.reg_attrs d r).Types.lib_cell.Cell_lib.drive;
  Alcotest.check_raises "bits mismatch"
    (Invalid_argument "Design.retype_register: incompatible replacement cell")
    (fun () -> Design.retype_register d r dff4);
  Alcotest.check_raises "scan mismatch"
    (Invalid_argument "Design.retype_register: incompatible replacement cell")
    (fun () -> Design.retype_register d r sdffr2)

let test_validate_catches_double_driver () =
  let d = Design.create ~name:"dd" in
  let n = Design.add_net d "n" in
  let _p1 = Design.add_port d "p1" Types.In_port n in
  let _p2 = Design.add_port d "p2" Types.In_port n in
  check "double driver flagged" true (Design.validate d <> [])

let test_scan_register_pins () =
  let d = Design.create ~name:"scan" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let se = Design.add_net d "se" in
  let si = Design.add_net d "si" in
  let so = Design.add_net d "so" in
  let rst = Design.add_net d "rst" in
  let conn =
    {
      Design.d_nets = [| None; None |];
      q_nets = [| None; None |];
      clock = clk;
      reset = Some rst;
      scan_enable = Some se;
      scan_ins = [ (0, si) ];
      scan_outs = [ (0, so) ];
    }
  in
  let scan_info = Types.{ partition = 0; section = None } in
  let r = Design.add_register d "sr" (attrs ~scan:scan_info sdffr2) conn in
  check "has SE" true (Design.pin_of d r Types.Pin_scan_enable <> None);
  check "has SI0" true (Design.pin_of d r (Types.Pin_scan_in 0) <> None);
  (* internal-scan cell: exactly one SI/SO pair regardless of bits *)
  check "has SO0" true (Design.pin_of d r (Types.Pin_scan_out 0) <> None);
  check "no SI1" true (Design.pin_of d r (Types.Pin_scan_in 1) = None);
  check "has reset" true (Design.pin_of d r Types.Pin_reset <> None);
  check "valid" true (Design.validate d = []);
  (* a connection naming a pin the cell lacks is rejected *)
  Alcotest.check_raises "bad scan pin"
    (Invalid_argument "Design.add_register: scan connection to a missing pin")
    (fun () ->
      ignore
        (Design.add_register d "sr2" (attrs ~scan:scan_info sdffr2)
           { conn with Design.scan_outs = [ (1, so) ] }))

let () =
  Alcotest.run "mbr_netlist"
    [
      ( "construction",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "driver/sinks" `Quick test_driver_sinks;
          Alcotest.test_case "pin_of" `Quick test_pin_of;
          Alcotest.test_case "pin caps" `Quick test_pin_caps;
          Alcotest.test_case "register attrs" `Quick test_register_attrs;
          Alcotest.test_case "multibit register" `Quick test_multibit_register;
          Alcotest.test_case "incomplete register" `Quick test_incomplete_register;
          Alcotest.test_case "register arity" `Quick test_register_arity_mismatch;
          Alcotest.test_case "comb arity" `Quick test_comb_arity_mismatch;
          Alcotest.test_case "scan register pins" `Quick test_scan_register_pins;
        ] );
      ( "queries",
        [
          Alcotest.test_case "find_cell" `Quick test_find_cell;
          Alcotest.test_case "total area" `Quick test_total_area;
          Alcotest.test_case "clock nets" `Quick test_clock_nets;
        ] );
      ( "edits",
        [
          Alcotest.test_case "connect/disconnect" `Quick test_connect_disconnect;
          Alcotest.test_case "connect moves pin" `Quick test_connect_moves_pin;
          Alcotest.test_case "remove cell" `Quick test_remove_cell;
          Alcotest.test_case "retype register" `Quick test_retype_register;
          Alcotest.test_case "validate double driver" `Quick
            test_validate_catches_double_driver;
        ] );
    ]
