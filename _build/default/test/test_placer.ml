(* Tests for Mbr_core.Mbr_placer: the §4.2 LP. The weighted-median fast
   path is validated against the simplex reference on random instances,
   plus hand-checked cases and region clamping. *)

module Mbr_placer = Mbr_core.Mbr_placer
module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Cell_lib = Mbr_liberty.Cell

let check = Alcotest.(check bool)

let checkf = Alcotest.(check (float 1e-6))

let lib = Presets.default ()

let dff2 = Library.find lib "DFF2_X1"

let big_region = Rect.make ~lx:(-100.0) ~ly:(-100.0) ~hx:100.0 ~hy:100.0

let conn ?(off = Point.origin) lx ly hx hy =
  { Mbr_placer.offset = off; box = Rect.make ~lx ~ly ~hx ~hy }

let test_single_point_target () =
  (* one pin with offset o connecting to a point net at p: corner = p - o *)
  let off = Cell_lib.d_pin_offset dff2 0 in
  let conns = [ { Mbr_placer.offset = off; box = Rect.make ~lx:10.0 ~ly:8.0 ~hx:10.0 ~hy:8.0 } ] in
  let corner, wl = Mbr_placer.optimal_corner ~cell:dff2 ~conns ~region:big_region in
  checkf "x" (10.0 -. off.Point.x) corner.Point.x;
  checkf "y" (8.0 -. off.Point.y) corner.Point.y;
  checkf "zero wl" 0.0 wl

let test_inside_box_free () =
  (* pin whose net box is large: anywhere inside costs the box HPWL *)
  let conns = [ conn 0.0 0.0 20.0 10.0 ] in
  let _, wl = Mbr_placer.optimal_corner ~cell:dff2 ~conns ~region:big_region in
  checkf "box half-perimeter" 30.0 wl

let test_median_of_three () =
  (* three point nets at x = 0, 6, 100 (same y): optimal x tracks the
     median net *)
  let conns = [ conn 0.0 0.0 0.0 0.0; conn 6.0 0.0 6.0 0.0; conn 100.0 0.0 100.0 0.0 ] in
  let corner, _ = Mbr_placer.optimal_corner ~cell:dff2 ~conns ~region:big_region in
  (* all offsets are 0 here: corner x = median = 6 *)
  checkf "median x" 6.0 corner.Point.x

let test_region_clamp () =
  let conns = [ conn 50.0 50.0 50.0 50.0 ] in
  let region = Rect.make ~lx:0.0 ~ly:0.0 ~hx:10.0 ~hy:10.0 in
  let corner, _ = Mbr_placer.optimal_corner ~cell:dff2 ~conns ~region in
  check "inside region" true
    (Rect.contains_rect region (Cell_lib.footprint_at dff2 corner))

let test_tight_region_degenerates () =
  (* region smaller than the footprint: corner pinned to region corner *)
  let region = Rect.make ~lx:5.0 ~ly:5.0 ~hx:5.5 ~hy:5.5 in
  let corner, _ =
    Mbr_placer.optimal_corner ~cell:dff2 ~conns:[ conn 0.0 0.0 1.0 1.0 ] ~region
  in
  checkf "x pinned" 5.0 corner.Point.x;
  checkf "y pinned" 5.0 corner.Point.y

let test_lp_agrees_on_simple_case () =
  let conns = [ conn 0.0 0.0 0.0 0.0; conn 10.0 4.0 10.0 4.0 ] in
  let _, fast = Mbr_placer.optimal_corner ~cell:dff2 ~conns ~region:big_region in
  match Mbr_placer.lp_corner ~cell:dff2 ~conns ~region:big_region with
  | Some (_, lp) -> checkf "objectives equal" lp fast
  | None -> Alcotest.fail "lp feasible"

(* ---- property: fast path = simplex on random instances ---- *)

let conns_gen =
  let open QCheck.Gen in
  let box =
    map2
      (fun (x0, y0) (dx, dy) ->
        conn (Float.of_int x0) (Float.of_int y0)
          (Float.of_int (x0 + dx))
          (Float.of_int (y0 + dy))
          ~off:Point.origin)
      (pair (int_range (-30) 30) (int_range (-30) 30))
      (pair (int_bound 20) (int_bound 20))
  in
  list_size (int_range 1 10) box

let conns_arb =
  QCheck.make
    ~print:(fun cs ->
      String.concat ";"
        (List.map
           (fun c ->
             Printf.sprintf "[%g,%g]x[%g,%g]" c.Mbr_placer.box.Rect.lx
               c.Mbr_placer.box.Rect.hx c.Mbr_placer.box.Rect.ly
               c.Mbr_placer.box.Rect.hy)
           cs))
    conns_gen

let fast_matches_lp =
  QCheck.Test.make ~name:"weighted-median placement = simplex LP" ~count:150
    conns_arb (fun conns ->
      let _, fast = Mbr_placer.optimal_corner ~cell:dff2 ~conns ~region:big_region in
      match Mbr_placer.lp_corner ~cell:dff2 ~conns ~region:big_region with
      | Some (_, lp) -> Float.abs (fast -. lp) < 1e-5
      | None -> false)

let optimum_no_worse_than_probes =
  QCheck.Test.make ~name:"no probe point beats the reported optimum" ~count:150
    conns_arb (fun conns ->
      let corner, best =
        Mbr_placer.optimal_corner ~cell:dff2 ~conns ~region:big_region
      in
      ignore corner;
      let eval (p : Point.t) =
        List.fold_left
          (fun acc c ->
            let px = p.Point.x +. c.Mbr_placer.offset.Point.x in
            let py = p.Point.y +. c.Mbr_placer.offset.Point.y in
            let b = c.Mbr_placer.box in
            acc
            +. (Float.max b.Rect.hx px -. Float.min b.Rect.lx px)
            +. (Float.max b.Rect.hy py -. Float.min b.Rect.ly py))
          0.0 conns
      in
      let ok = ref true in
      for x = -8 to 8 do
        for y = -8 to 8 do
          let p = Point.make (Float.of_int (4 * x)) (Float.of_int (4 * y)) in
          if eval p < best -. 1e-9 then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "mbr_core.placer"
    [
      ( "optimal_corner",
        [
          Alcotest.test_case "single point target" `Quick test_single_point_target;
          Alcotest.test_case "inside box free" `Quick test_inside_box_free;
          Alcotest.test_case "median of three" `Quick test_median_of_three;
          Alcotest.test_case "region clamp" `Quick test_region_clamp;
          Alcotest.test_case "tight region" `Quick test_tight_region_degenerates;
          Alcotest.test_case "lp agrees (simple)" `Quick test_lp_agrees_on_simple_case;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest fast_matches_lp;
          QCheck_alcotest.to_alcotest optimum_no_worse_than_probes;
        ] );
    ]
