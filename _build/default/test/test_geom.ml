(* Tests for Mbr_geom: Point, Rect, Hull — including property tests that
   the convex hull contains all input points and is convex, and that
   point-in-polygon agrees with an O(n) half-plane oracle. *)

module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Hull = Mbr_geom.Hull

let check = Alcotest.(check bool)

let checkf = Alcotest.(check (float 1e-9))

let p = Point.make

(* ---- Point ---- *)

let test_point_arith () =
  let a = p 1.0 2.0 and b = p 3.0 5.0 in
  checkf "manhattan" 5.0 (Point.manhattan a b);
  checkf "euclid" (sqrt 13.0) (Point.euclid a b);
  check "midpoint" true (Point.equal (Point.midpoint a b) (p 2.0 3.5));
  check "add" true (Point.equal (Point.add a b) (p 4.0 7.0));
  check "sub" true (Point.equal (Point.sub b a) (p 2.0 3.0));
  check "scale" true (Point.equal (Point.scale 2.0 a) (p 2.0 4.0))

let test_point_centroid () =
  let c = Point.centroid [ p 0.0 0.0; p 2.0 0.0; p 2.0 2.0; p 0.0 2.0 ] in
  check "centroid" true (Point.equal c (p 1.0 1.0))

let test_point_cross () =
  checkf "left turn" 1.0 (Point.cross ~o:(p 0.0 0.0) (p 1.0 0.0) (p 1.0 1.0));
  checkf "right turn" (-1.0) (Point.cross ~o:(p 0.0 0.0) (p 1.0 0.0) (p 1.0 (-1.0)));
  checkf "collinear" 0.0 (Point.cross ~o:(p 0.0 0.0) (p 1.0 1.0) (p 2.0 2.0))

(* ---- Rect ---- *)

let test_rect_basics () =
  let r = Rect.make ~lx:1.0 ~ly:2.0 ~hx:4.0 ~hy:6.0 in
  checkf "width" 3.0 (Rect.width r);
  checkf "height" 4.0 (Rect.height r);
  checkf "area" 12.0 (Rect.area r);
  checkf "half perim" 7.0 (Rect.half_perimeter r);
  check "center" true (Point.equal (Rect.center r) (p 2.5 4.0))

let test_rect_invalid () =
  Alcotest.check_raises "inverted" (Invalid_argument "Rect.make: inverted bounds")
    (fun () -> ignore (Rect.make ~lx:1.0 ~ly:0.0 ~hx:0.0 ~hy:1.0))

let test_rect_contains () =
  let r = Rect.make ~lx:0.0 ~ly:0.0 ~hx:2.0 ~hy:2.0 in
  check "inside" true (Rect.contains r (p 1.0 1.0));
  check "boundary" true (Rect.contains r (p 0.0 2.0));
  check "outside" false (Rect.contains r (p 2.1 1.0))

let test_rect_intersects () =
  let a = Rect.make ~lx:0.0 ~ly:0.0 ~hx:2.0 ~hy:2.0 in
  let b = Rect.make ~lx:1.0 ~ly:1.0 ~hx:3.0 ~hy:3.0 in
  let c = Rect.make ~lx:2.0 ~ly:0.0 ~hx:4.0 ~hy:2.0 in
  let d = Rect.make ~lx:5.0 ~ly:5.0 ~hx:6.0 ~hy:6.0 in
  check "overlap" true (Rect.intersects a b);
  check "touching intersects" true (Rect.intersects a c);
  check "touching not strict" false (Rect.overlaps_strictly a c);
  check "strict overlap" true (Rect.overlaps_strictly a b);
  check "disjoint" false (Rect.intersects a d)

let test_rect_inter () =
  let a = Rect.make ~lx:0.0 ~ly:0.0 ~hx:2.0 ~hy:2.0 in
  let b = Rect.make ~lx:1.0 ~ly:1.0 ~hx:3.0 ~hy:3.0 in
  (match Rect.inter a b with
  | Some r ->
    checkf "inter lx" 1.0 r.Rect.lx;
    checkf "inter hy" 2.0 r.Rect.hy
  | None -> Alcotest.fail "expected intersection");
  check "disjoint inter none" true
    (Rect.inter a (Rect.make ~lx:5.0 ~ly:5.0 ~hx:6.0 ~hy:6.0) = None)

let test_rect_inter_all () =
  let rs =
    [
      Rect.make ~lx:0.0 ~ly:0.0 ~hx:4.0 ~hy:4.0;
      Rect.make ~lx:1.0 ~ly:1.0 ~hx:5.0 ~hy:5.0;
      Rect.make ~lx:2.0 ~ly:0.0 ~hx:3.0 ~hy:6.0;
    ]
  in
  (match Rect.inter_all rs with
  | Some r ->
    checkf "lx" 2.0 r.Rect.lx;
    checkf "hx" 3.0 r.Rect.hx;
    checkf "ly" 1.0 r.Rect.ly;
    checkf "hy" 4.0 r.Rect.hy
  | None -> Alcotest.fail "expected common region");
  check "empty list" true (Rect.inter_all [] = None)

let test_rect_expand () =
  let r = Rect.make ~lx:1.0 ~ly:1.0 ~hx:3.0 ~hy:3.0 in
  let e = Rect.expand r 0.5 in
  checkf "expanded lx" 0.5 e.Rect.lx;
  checkf "expanded hy" 3.5 e.Rect.hy;
  (* over-shrinking collapses to the center *)
  let s = Rect.expand r (-5.0) in
  checkf "collapsed" 0.0 (Rect.area s);
  check "collapsed at center" true (Point.equal (Rect.center r) (Rect.center s))

let test_rect_clamp () =
  let r = Rect.make ~lx:0.0 ~ly:0.0 ~hx:2.0 ~hy:2.0 in
  check "inside unchanged" true (Point.equal (Rect.clamp_point r (p 1.0 1.0)) (p 1.0 1.0));
  check "clamped" true (Point.equal (Rect.clamp_point r (p 9.0 (-3.0))) (p 2.0 0.0))

let test_rect_of_points () =
  let r = Rect.of_points [ p 1.0 5.0; p 3.0 2.0; p 2.0 7.0 ] in
  checkf "lx" 1.0 r.Rect.lx;
  checkf "hx" 3.0 r.Rect.hx;
  checkf "ly" 2.0 r.Rect.ly;
  checkf "hy" 7.0 r.Rect.hy

(* ---- Hull ---- *)

let test_hull_square () =
  let pts = [ p 0.0 0.0; p 2.0 0.0; p 2.0 2.0; p 0.0 2.0; p 1.0 1.0 ] in
  let h = Hull.convex pts in
  Alcotest.(check int) "4 vertices" 4 (List.length h);
  check "interior point dropped" true
    (not (List.exists (fun q -> Point.equal q (p 1.0 1.0)) h))

let test_hull_collinear () =
  let h = Hull.convex [ p 0.0 0.0; p 1.0 1.0; p 2.0 2.0; p 3.0 3.0 ] in
  Alcotest.(check int) "segment" 2 (List.length h)

let test_hull_degenerate () =
  Alcotest.(check int) "empty" 0 (List.length (Hull.convex []));
  Alcotest.(check int) "point" 1 (List.length (Hull.convex [ p 1.0 1.0 ]));
  Alcotest.(check int) "dup points" 1
    (List.length (Hull.convex [ p 1.0 1.0; p 1.0 1.0 ]))

let test_hull_contains () =
  let h = Hull.convex [ p 0.0 0.0; p 4.0 0.0; p 4.0 4.0; p 0.0 4.0 ] in
  check "inside" true (Hull.contains h (p 2.0 2.0));
  check "vertex" true (Hull.contains h (p 0.0 0.0));
  check "edge" true (Hull.contains h (p 2.0 0.0));
  check "outside" false (Hull.contains h (p 5.0 2.0));
  check "outside diagonal" false (Hull.contains h (p 4.1 4.1))

let test_hull_contains_degenerate () =
  check "single point yes" true (Hull.contains [ p 1.0 1.0 ] (p 1.0 1.0));
  check "single point no" false (Hull.contains [ p 1.0 1.0 ] (p 1.0 1.1));
  let seg = [ p 0.0 0.0; p 2.0 2.0 ] in
  check "on segment" true (Hull.contains seg (p 1.0 1.0));
  check "off segment" false (Hull.contains seg (p 1.0 0.0));
  check "empty hull" false (Hull.contains [] (p 0.0 0.0))

let test_hull_area () =
  let h = Hull.convex [ p 0.0 0.0; p 2.0 0.0; p 2.0 3.0; p 0.0 3.0 ] in
  checkf "area" 6.0 (Hull.area h);
  checkf "triangle" 2.0 (Hull.area (Hull.convex [ p 0.0 0.0; p 2.0 0.0; p 0.0 2.0 ]))

let test_hull_of_rects () =
  let rects =
    [
      Rect.make ~lx:0.0 ~ly:0.0 ~hx:1.0 ~hy:1.0;
      Rect.make ~lx:3.0 ~ly:3.0 ~hx:4.0 ~hy:4.0;
    ]
  in
  let h = Hull.of_rects rects in
  Alcotest.(check int) "hexagon" 6 (List.length h);
  check "contains between" true (Hull.contains h (p 2.0 2.0));
  check "not corner" false (Hull.contains h (p 0.0 4.0))

(* ---- properties ---- *)

let point_gen =
  QCheck.Gen.map2 (fun x y -> p (Float.of_int x /. 4.0) (Float.of_int y /. 4.0))
    (QCheck.Gen.int_range (-40) 40) (QCheck.Gen.int_range (-40) 40)

let points_arb =
  QCheck.make
    ~print:(fun pts ->
      String.concat ";"
        (List.map (fun (q : Point.t) -> Printf.sprintf "(%g,%g)" q.Point.x q.Point.y) pts))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 3 25) point_gen)

let hull_contains_all =
  QCheck.Test.make ~name:"hull contains all input points" ~count:300 points_arb
    (fun pts ->
      let h = Hull.convex pts in
      List.for_all (fun q -> Hull.contains h q) pts)

let hull_is_convex =
  QCheck.Test.make ~name:"hull vertices are in convex position (CCW)" ~count:300
    points_arb (fun pts ->
      let h = Hull.convex pts in
      match h with
      | [] | [ _ ] | [ _; _ ] -> true
      | _ ->
        let arr = Array.of_list h in
        let n = Array.length arr in
        let ok = ref true in
        for i = 0 to n - 1 do
          let a = arr.(i) and b = arr.((i + 1) mod n) and c = arr.((i + 2) mod n) in
          if Point.cross ~o:a b c <= 1e-12 then ok := false
        done;
        !ok)

let hull_idempotent =
  QCheck.Test.make ~name:"hull of hull = hull" ~count:300 points_arb (fun pts ->
      let h = Hull.convex pts in
      let h2 = Hull.convex h in
      List.length h = List.length h2)

let hull_bbox_consistent =
  QCheck.Test.make ~name:"hull bbox = points bbox" ~count:300 points_arb
    (fun pts ->
      match pts with
      | [] -> true
      | _ ->
        let h = Hull.convex pts in
        (match h with
        | [] -> false
        | _ -> Rect.of_points h = Rect.of_points pts))

let () =
  Alcotest.run "mbr_geom"
    [
      ( "point",
        [
          Alcotest.test_case "arith" `Quick test_point_arith;
          Alcotest.test_case "centroid" `Quick test_point_centroid;
          Alcotest.test_case "cross" `Quick test_point_cross;
        ] );
      ( "rect",
        [
          Alcotest.test_case "basics" `Quick test_rect_basics;
          Alcotest.test_case "invalid" `Quick test_rect_invalid;
          Alcotest.test_case "contains" `Quick test_rect_contains;
          Alcotest.test_case "intersects" `Quick test_rect_intersects;
          Alcotest.test_case "inter" `Quick test_rect_inter;
          Alcotest.test_case "inter_all" `Quick test_rect_inter_all;
          Alcotest.test_case "expand" `Quick test_rect_expand;
          Alcotest.test_case "clamp" `Quick test_rect_clamp;
          Alcotest.test_case "of_points" `Quick test_rect_of_points;
        ] );
      ( "hull",
        [
          Alcotest.test_case "square" `Quick test_hull_square;
          Alcotest.test_case "collinear" `Quick test_hull_collinear;
          Alcotest.test_case "degenerate" `Quick test_hull_degenerate;
          Alcotest.test_case "contains" `Quick test_hull_contains;
          Alcotest.test_case "contains degenerate" `Quick test_hull_contains_degenerate;
          Alcotest.test_case "area" `Quick test_hull_area;
          Alcotest.test_case "of_rects" `Quick test_hull_of_rects;
          QCheck_alcotest.to_alcotest hull_contains_all;
          QCheck_alcotest.to_alcotest hull_is_convex;
          QCheck_alcotest.to_alcotest hull_idempotent;
          QCheck_alcotest.to_alcotest hull_bbox_consistent;
        ] );
    ]
