(* Tests for Mbr_route: grid demand accumulation, overflow counting,
   star wirelength and the design-level estimate. *)

module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Grid = Mbr_route.Grid
module Estimator = Mbr_route.Estimator
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf = Alcotest.(check (float 1e-9))

let core = Rect.make ~lx:0.0 ~ly:0.0 ~hx:100.0 ~hy:100.0

let grid ?(cap = 2.0) () = Grid.create ~core ~gcell:10.0 ~cap_h:cap ~cap_v:cap

let test_grid_dims () =
  let g = grid () in
  checki "nx" 10 (Grid.nx g);
  checki "ny" 10 (Grid.ny g)

let test_tile_of () =
  let g = grid () in
  check "origin tile" true (Grid.tile_of g (Point.make 0.0 0.0) = (0, 0));
  check "mid tile" true (Grid.tile_of g (Point.make 55.0 25.0) = (5, 2));
  check "clamped" true (Grid.tile_of g (Point.make 1000.0 (-4.0)) = (9, 0))

let test_h_segment_demand () =
  let g = grid () in
  (* segment spanning tiles 1..4 in x crosses 3 edges *)
  Grid.add_h_segment g ~y:5.0 ~x0:15.0 ~x1:45.0 ~demand:1.0;
  checkf "demand" 3.0 (Grid.total_demand g)

let test_v_segment_demand () =
  let g = grid () in
  Grid.add_v_segment g ~x:5.0 ~y0:15.0 ~y1:45.0 ~demand:2.0;
  checkf "demand" 6.0 (Grid.total_demand g)

let test_route_l_symmetric () =
  let g = grid () in
  (* L route across 2 tiles in x and 1 in y: both bends add up to the
     full demand on 3 tile-boundary crossings *)
  Grid.route_l g (Point.make 5.0 5.0) (Point.make 25.0 15.0) ~demand:1.0;
  checkf "total crossings" 3.0 (Grid.total_demand g)

let test_route_l_same_tile () =
  let g = grid () in
  Grid.route_l g (Point.make 2.0 2.0) (Point.make 8.0 8.0) ~demand:1.0;
  checkf "no crossings" 0.0 (Grid.total_demand g)

let test_overflow_counting () =
  let g = grid ~cap:2.0 () in
  checki "no overflow initially" 0 (Grid.overflow_edges g);
  (* push 3 units across one edge: over the 2.0 cap *)
  for _ = 1 to 3 do
    Grid.add_h_segment g ~y:5.0 ~x0:5.0 ~x1:15.0 ~demand:1.0
  done;
  checki "one overflow edge" 1 (Grid.overflow_edges g);
  checkf "max utilization" 1.5 (Grid.max_utilization g);
  Grid.reset g;
  checki "reset clears" 0 (Grid.overflow_edges g);
  checkf "reset demand" 0.0 (Grid.total_demand g)

(* ---- Estimator over a real placed design ---- *)

let lib = Presets.default ()

let dff1 = Library.find lib "DFF1_X1"

let attrs =
  Types.
    { lib_cell = dff1; fixed = false; size_only = false; scan = None; gate_enable = None }

let placed_pair () =
  (* two registers connected q1 -> d2, plus a clock net *)
  let d = Design.create ~name:"r" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let n = Design.add_net d "n" in
  let r1 =
    Design.add_register d "r1" attrs
      (Design.simple_conn ~d:[| None |] ~q:[| Some n |] ~clock:clk)
  in
  let r2 =
    Design.add_register d "r2" attrs
      (Design.simple_conn ~d:[| Some n |] ~q:[| None |] ~clock:clk)
  in
  let fp = Floorplan.make ~core ~row_height:1.2 ~site_width:0.2 in
  let pl = Placement.create fp d in
  Placement.set pl r1 (Point.make 10.0 12.0);
  Placement.set pl r2 (Point.make 40.0 12.0);
  (d, pl, n)

let test_net_star_wl () =
  let _, pl, n = placed_pair () in
  let wl = Estimator.net_star_wl pl n in
  (* two pins: star wl = manhattan distance between them *)
  check "positive" true (wl > 25.0 && wl < 35.0);
  checkf "hpwl matches for 2 pins" (Estimator.net_hpwl pl n) wl

let test_estimate_excludes_clock () =
  let _, pl, _ = placed_pair () in
  let r = Estimator.estimate pl in
  checki "one routed net (clock excluded)" 1 r.Estimator.n_routed_nets;
  check "wl positive" true (r.Estimator.signal_wl > 0.0);
  checki "no overflow for one net" 0 r.Estimator.overflow_edges

let test_estimate_empty_design () =
  let d = Design.create ~name:"empty" in
  let fp = Floorplan.make ~core ~row_height:1.2 ~site_width:0.2 in
  let pl = Placement.create fp d in
  let r = Estimator.estimate pl in
  checki "no nets" 0 r.Estimator.n_routed_nets;
  checkf "no wl" 0.0 r.Estimator.signal_wl

let test_unplaced_pins_skipped () =
  let d = Design.create ~name:"u" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let n = Design.add_net d "n" in
  let _r1 =
    Design.add_register d "r1" attrs
      (Design.simple_conn ~d:[| None |] ~q:[| Some n |] ~clock:clk)
  in
  let fp = Floorplan.make ~core ~row_height:1.2 ~site_width:0.2 in
  let pl = Placement.create fp d in
  (* nothing placed: nothing routed *)
  let r = Estimator.estimate pl in
  checki "nothing routed" 0 r.Estimator.n_routed_nets

let test_star_center_median () =
  (* three sinks in a line: star center is the median, wl = spread *)
  let d = Design.create ~name:"m" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let n = Design.add_net d "n" in
  let fp = Floorplan.make ~core ~row_height:1.2 ~site_width:0.2 in
  let pl = Placement.create fp d in
  let reg name x ~drives =
    let conn =
      if drives then Design.simple_conn ~d:[| None |] ~q:[| Some n |] ~clock:clk
      else Design.simple_conn ~d:[| Some n |] ~q:[| None |] ~clock:clk
    in
    let r = Design.add_register d name attrs conn in
    Placement.set pl r (Point.make x 12.0);
    r
  in
  let _ = reg "a" 0.0 ~drives:true in
  let _ = reg "b" 20.0 ~drives:false in
  let _ = reg "c" 50.0 ~drives:false in
  let wl = Estimator.net_star_wl pl n in
  (* pins at x ~ 0/20/50 (pin offsets shift all equally): star from the
     median pin ~= 50 total in x *)
  check "around 50" true (wl > 45.0 && wl < 56.0)

let () =
  Alcotest.run "mbr_route"
    [
      ( "grid",
        [
          Alcotest.test_case "dims" `Quick test_grid_dims;
          Alcotest.test_case "tile_of" `Quick test_tile_of;
          Alcotest.test_case "h segment" `Quick test_h_segment_demand;
          Alcotest.test_case "v segment" `Quick test_v_segment_demand;
          Alcotest.test_case "L route" `Quick test_route_l_symmetric;
          Alcotest.test_case "same tile" `Quick test_route_l_same_tile;
          Alcotest.test_case "overflow" `Quick test_overflow_counting;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "star wl" `Quick test_net_star_wl;
          Alcotest.test_case "clock excluded" `Quick test_estimate_excludes_clock;
          Alcotest.test_case "empty design" `Quick test_estimate_empty_design;
          Alcotest.test_case "unplaced skipped" `Quick test_unplaced_pins_skipped;
          Alcotest.test_case "median star center" `Quick test_star_center_median;
        ] );
    ]
