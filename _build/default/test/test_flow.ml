(* Integration tests: the full Fig. 4 flow on generated designs. These
   assert the paper's qualitative claims — register count and clock
   capacitance drop, netlist/placement stay legal, timing and congestion
   do not degrade — plus option plumbing (greedy mode, skew off,
   incomplete off). *)

module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module Allocate = Mbr_core.Allocate
module Candidate = Mbr_core.Candidate
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let run ?(options = Flow.default_options) seed =
  let g = G.generate (P.tiny ~seed) in
  let r =
    Flow.run ~options ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  (g, r)

let g0, r0 = run 2024

let b0 = r0.Flow.before

let a0 = r0.Flow.after

let test_registers_drop () =
  check "merges happened" true (r0.Flow.n_merges > 0);
  check "total registers drop" true (a0.Metrics.total_regs < b0.Metrics.total_regs);
  checki "counts reconcile"
    (b0.Metrics.total_regs - r0.Flow.n_regs_merged + r0.Flow.n_merges)
    a0.Metrics.total_regs

let test_composable_drop () =
  check "composable registers drop" true (a0.Metrics.comp_regs < b0.Metrics.comp_regs)

let test_clock_improves () =
  check "clock cap drops" true (a0.Metrics.clk_cap < b0.Metrics.clk_cap);
  check "clock wl not worse" true (a0.Metrics.clk_wl <= b0.Metrics.clk_wl +. 1e-6);
  check "buffer count not worse" true (a0.Metrics.clk_bufs <= b0.Metrics.clk_bufs)

let test_timing_not_degraded () =
  (* the paper's invariant: no added violations (ours also applies
     useful skew, so timing typically improves) *)
  check "tns not worse" true (a0.Metrics.tns >= b0.Metrics.tns -. 1e-6);
  check "failing endpoints not worse" true (a0.Metrics.failing <= b0.Metrics.failing)

let test_congestion_not_degraded () =
  check "overflow edges not worse" true (a0.Metrics.ovfl <= b0.Metrics.ovfl)

let test_wirelength_not_degraded () =
  check "signal wl not worse" true
    (a0.Metrics.other_wl <= b0.Metrics.other_wl *. 1.01)

let test_merge_displacement_bounded () =
  (* §3.2: composition should disturb the placement only locally — on
     average each MBR lands within the feasible-region scale of its
     members' centroid *)
  check "some displacement measured" true (r0.Flow.merge_displacement > 0.0);
  let avg = r0.Flow.merge_displacement /. float_of_int (max 1 r0.Flow.n_merges) in
  check "average displacement local" true
    (avg <= 2.0 *. Mbr_core.Compat.default_config.Mbr_core.Compat.max_dist)

let test_netlist_stays_legal () =
  Alcotest.(check (list string)) "valid" [] (Design.validate g0.G.design);
  checki "no register overlaps" 0
    (List.length (Placement.overlapping_registers g0.G.placement))

let test_new_mbrs_live_and_placed () =
  List.iter
    (fun cid ->
      check "live" true (not (Design.cell g0.G.design cid).Types.c_dead);
      check "placed" true (Placement.is_placed g0.G.placement cid))
    r0.Flow.new_mbrs;
  checki "one per merge" r0.Flow.n_merges (List.length r0.Flow.new_mbrs)

let test_fixed_registers_untouched () =
  (* every fixed register of the 'before' design must still exist *)
  List.iter
    (fun cid ->
      let a = Design.reg_attrs g0.G.design cid in
      check "fixed never merged" true (not a.Types.fixed || true))
    (Design.registers g0.G.design);
  (* stronger: no fixed register can be dead unless it was never fixed *)
  let g1 = G.generate (P.tiny ~seed:2024) in
  let fixed_before =
    List.filter
      (fun cid -> (Design.reg_attrs g1.G.design cid).Types.fixed)
      (Design.registers g1.G.design)
  in
  let _ =
    Flow.run ~design:g1.G.design ~placement:g1.G.placement ~library:g1.G.library
      ~sta_config:g1.G.sta_config ()
  in
  List.iter
    (fun cid ->
      check "fixed cell still live" true (not (Design.cell g1.G.design cid).Types.c_dead))
    fixed_before

let test_greedy_mode_worse_or_equal () =
  let _, r_ilp = run 555 in
  let options = { Flow.default_options with Flow.mode = `Greedy_share } in
  let _, r_greedy = run ~options 555 in
  check "Fig.6: ILP keeps fewer registers" true
    (r_ilp.Flow.after.Metrics.total_regs <= r_greedy.Flow.after.Metrics.total_regs)

let test_skew_disabled () =
  let options = { Flow.default_options with Flow.skew = None; resize = None } in
  let _, r = run ~options 777 in
  check "no skew report" true (r.Flow.skew_report = None);
  checki "no resizes" 0 r.Flow.n_resized

let test_incomplete_disabled () =
  let options =
    {
      Flow.default_options with
      Flow.allocate =
        {
          Allocate.default_config with
          Allocate.candidate =
            { Candidate.default_config with Candidate.allow_incomplete = false };
        };
    }
  in
  let _, r = run ~options 888 in
  checki "no incomplete merges" 0 r.Flow.n_incomplete

let test_deterministic () =
  let _, ra = run 42 in
  let _, rb = run 42 in
  checki "same merges" ra.Flow.n_merges rb.Flow.n_merges;
  check "same cost" true (ra.Flow.ilp_cost = rb.Flow.ilp_cost);
  checki "same final registers" ra.Flow.after.Metrics.total_regs
    rb.Flow.after.Metrics.total_regs

let test_flow_idempotent_second_pass_smaller () =
  (* running the flow again on the already-composed design merges less *)
  let g, r1 = run 4242 in
  let r2 =
    Flow.run ~design:g.G.design ~placement:g.G.placement ~library:g.G.library
      ~sta_config:g.G.sta_config ()
  in
  check "second pass finds fewer merges" true (r2.Flow.n_merges <= r1.Flow.n_merges);
  Alcotest.(check (list string)) "still valid" [] (Design.validate g.G.design)

let () =
  Alcotest.run "mbr_core.flow"
    [
      ( "paper_claims",
        [
          Alcotest.test_case "registers drop" `Quick test_registers_drop;
          Alcotest.test_case "composable drop" `Quick test_composable_drop;
          Alcotest.test_case "clock improves" `Quick test_clock_improves;
          Alcotest.test_case "timing not degraded" `Quick test_timing_not_degraded;
          Alcotest.test_case "congestion not degraded" `Quick
            test_congestion_not_degraded;
          Alcotest.test_case "wirelength not degraded" `Quick
            test_wirelength_not_degraded;
          Alcotest.test_case "displacement bounded" `Quick
            test_merge_displacement_bounded;
        ] );
      ( "structure",
        [
          Alcotest.test_case "netlist legal" `Quick test_netlist_stays_legal;
          Alcotest.test_case "new MBRs live+placed" `Quick test_new_mbrs_live_and_placed;
          Alcotest.test_case "fixed untouched" `Quick test_fixed_registers_untouched;
        ] );
      ( "options",
        [
          Alcotest.test_case "greedy mode" `Quick test_greedy_mode_worse_or_equal;
          Alcotest.test_case "skew disabled" `Quick test_skew_disabled;
          Alcotest.test_case "incomplete disabled" `Quick test_incomplete_disabled;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "second pass" `Quick test_flow_idempotent_second_pass_smaller;
        ] );
    ]
