#!/bin/sh
# Tier-1 CI entry point: build, test, keep the example walkthroughs
# honest (they are documentation that must compile AND run), and smoke
# the parallel allocate path (domain pool, jobs = 2) plus an ECO
# perturb + recompose round.
#
# Usage: ./ci.sh          (from the repo root)

set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== ECO session equivalence (recompose = from-scratch run) =="
dune exec test/test_flow_eco.exe > /dev/null

echo "== ILP kernel (staged solver = oracle; reductions ablation; pool order) =="
dune exec test/test_ilp.exe > /dev/null
dune exec test/test_pool.exe > /dev/null

echo "== examples (build + execute) =="
for ex in quickstart soc_block scan_chains incomplete_mbrs useful_skew \
          interchange; do
  echo "-- examples/$ex.exe"
  dune exec "examples/$ex.exe" > /dev/null
done

echo "== bench smoke (parallel allocate jobs = 2; ECO recompose round) =="
dune exec bench/main.exe -- --smoke

echo "== large-scale smoke (scale-8 D1, jobs 1, wall + RSS + skew-stage ceilings) =="
dune exec tools/scale_smoke.exe

echo "== telemetry smoke (traced flow -> Chrome JSON + metrics snapshot) =="
trace_tmp=$(mktemp /tmp/mbrc_trace.XXXXXX.json)
metrics_tmp=$(mktemp /tmp/mbrc_metrics.XXXXXX.json)
# scale 4: the bare tiny run is ~20 ms, where a single scheduler or GC
# hiccup between stages can eat the 5 % slack the coverage gate allows;
# at scale 4 the stage work dominates and the gate is stable
dune exec bin/mbrc.exe -- run -p tiny --scale 4 -j 2 \
  --trace "$trace_tmp" --metrics "$metrics_tmp" > /dev/null
dune exec tools/telemetry_check.exe -- "$trace_tmp" "$metrics_tmp"

echo "== prometheus exposition (prom_export -> 0.0.4 grammar gate) =="
prom_tmp=$(mktemp /tmp/mbrc_prom.XXXXXX.txt)
dune exec tools/prom_export.exe -- "$metrics_tmp" > "$prom_tmp"
dune exec tools/telemetry_check.exe -- --prom "$prom_tmp" \
  mbr_flow_recomposes mbr_alloc_block_solve_s
rm -f "$prom_tmp" "$trace_tmp" "$metrics_tmp"

echo "== recovery smoke (derate set forces a decompose round, then closes) =="
trace_tmp=$(mktemp /tmp/mbrc_rtrace.XXXXXX.json)
metrics_tmp=$(mktemp /tmp/mbrc_rmetrics.XXXXXX.json)
dune exec tools/recover_smoke.exe -- "$trace_tmp" "$metrics_tmp"
dune exec tools/telemetry_check.exe -- "$trace_tmp" "$metrics_tmp"
rm -f "$trace_tmp" "$metrics_tmp"

echo "== BENCH.json schema (v9: per-row skew-stage counters on top of v8) =="
grep -q '"schema_version": 9' BENCH.json \
  || { echo "BENCH.json is not schema v9"; exit 1; }
grep -q '"skew_frontier_pins"' BENCH.json \
  || { echo "BENCH.json flow_scaling lacks the skew-stage counters"; exit 1; }
grep -q '"recovery_loop"' BENCH.json \
  || { echo "BENCH.json lacks the recovery_loop section"; exit 1; }
grep -q '"after_corners"' BENCH.json \
  || { echo "BENCH.json recovery_loop lacks per-corner QoR"; exit 1; }
grep -q '"telemetry_overhead"' BENCH.json \
  || { echo "BENCH.json lacks the telemetry_overhead section"; exit 1; }
grep -q '"recompose_p99_ratio"' BENCH.json \
  || { echo "BENCH.json telemetry_overhead lacks the p99 ratio"; exit 1; }

echo "== service smoke (mbrd daemon + scripted mbrc client session) =="
sock=$(mktemp -u /tmp/mbrd_ci.XXXXXX.sock)
daemon_prom=$(mktemp -u /tmp/mbrd_ci_prom.XXXXXX.txt)
dune exec bin/mbrd.exe -- --socket "$sock" --queue-limit 8 \
  --prom-file "$daemon_prom" --sample-period 0.2 &
mbrd_pid=$!
trap 'kill "$mbrd_pid" 2> /dev/null || true; rm -f "$sock" "$daemon_prom"' EXIT
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ] || { echo "mbrd did not come up"; exit 1; }
mbrc_client() {
  dune exec bin/mbrc.exe -- client --socket "$sock" "$@"
}
mbrc_client load --session ci --profile tiny --scale 8 --seed 5 > /dev/null
mbrc_client perturb --session ci --seed 6 > /dev/null
# progress streaming: the scale-8 recompose emits one JSON event line
# per Fig.-4 stage on stderr; telemetry_check gates their ordering
events_tmp=$(mktemp /tmp/mbrc_events.XXXXXX.jsonl)
recompose_out=$(mbrc_client recompose --session ci --progress 2> "$events_tmp")
echo "$recompose_out" | grep -q '"round"' \
  || { echo "recompose response malformed: $recompose_out"; exit 1; }
dune exec tools/telemetry_check.exe -- --events "$events_tmp"
rm -f "$events_tmp"
# telemetry verb: full snapshot with cursor + flight-recorder dump
telemetry_out=$(mbrc_client telemetry --flight)
echo "$telemetry_out" | grep -q '"cursor"' \
  || { echo "telemetry response lacks a cursor: $telemetry_out"; exit 1; }
echo "$telemetry_out" | grep -q '"flight"' \
  || { echo "telemetry response lacks the flight dump"; exit 1; }
# deadline path: must fail with the cancelled code, then keep serving
if mbrc_client recompose --session ci --timeout 0 2> /dev/null; then
  echo "zero-deadline recompose unexpectedly succeeded"; exit 1
fi
mbrc_client recompose --session ci > /dev/null
metrics_out=$(mbrc_client query-metrics)
echo "$metrics_out" | grep -q '"ci"' \
  || { echo "query-metrics lost the session: $metrics_out"; exit 1; }
mbrc_client shutdown > /dev/null
wait "$mbrd_pid"   # daemon must exit cleanly once drained
trap - EXIT
[ ! -e "$sock" ] || { echo "mbrd left its socket behind"; exit 1; }
# the sampler dumped a scrape-ready exposition file; gate its grammar
# and the families the daemon must always export
[ -s "$daemon_prom" ] || { echo "mbrd --prom-file wrote nothing"; exit 1; }
dune exec tools/telemetry_check.exe -- --prom "$daemon_prom" \
  mbr_svc_latency_s mbr_gc_heap_mb mbr_svc_exec_queue_depth
rm -f "$daemon_prom"

echo "ci.sh: all green"
