#!/bin/sh
# Tier-1 CI entry point: build, test, keep the example walkthroughs
# honest (they are documentation that must compile AND run), and smoke
# the parallel allocate path (domain pool, jobs = 2) plus an ECO
# perturb + recompose round.
#
# Usage: ./ci.sh          (from the repo root)

set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== ECO session equivalence (recompose = from-scratch run) =="
dune exec test/test_flow_eco.exe > /dev/null

echo "== ILP kernel (staged solver = oracle; reductions ablation; pool order) =="
dune exec test/test_ilp.exe > /dev/null
dune exec test/test_pool.exe > /dev/null

echo "== examples (build + execute) =="
for ex in quickstart soc_block scan_chains incomplete_mbrs useful_skew \
          interchange; do
  echo "-- examples/$ex.exe"
  dune exec "examples/$ex.exe" > /dev/null
done

echo "== bench smoke (parallel allocate jobs = 2; ECO recompose round) =="
dune exec bench/main.exe -- --smoke

echo "== large-scale smoke (scale-8 D1, jobs 1, wall + RSS ceilings) =="
dune exec tools/scale_smoke.exe

echo "== telemetry smoke (traced flow -> Chrome JSON + metrics snapshot) =="
trace_tmp=$(mktemp /tmp/mbrc_trace.XXXXXX.json)
metrics_tmp=$(mktemp /tmp/mbrc_metrics.XXXXXX.json)
dune exec bin/mbrc.exe -- run -p tiny -j 2 \
  --trace "$trace_tmp" --metrics "$metrics_tmp" > /dev/null
dune exec tools/telemetry_check.exe -- "$trace_tmp" "$metrics_tmp"
rm -f "$trace_tmp" "$metrics_tmp"

echo "== recovery smoke (derate set forces a decompose round, then closes) =="
trace_tmp=$(mktemp /tmp/mbrc_rtrace.XXXXXX.json)
metrics_tmp=$(mktemp /tmp/mbrc_rmetrics.XXXXXX.json)
dune exec tools/recover_smoke.exe -- "$trace_tmp" "$metrics_tmp"
dune exec tools/telemetry_check.exe -- "$trace_tmp" "$metrics_tmp"
rm -f "$trace_tmp" "$metrics_tmp"

echo "== BENCH.json schema (v7: per-corner QoR + recovery loop section) =="
grep -q '"schema_version": 7' BENCH.json \
  || { echo "BENCH.json is not schema v7"; exit 1; }
grep -q '"recovery_loop"' BENCH.json \
  || { echo "BENCH.json lacks the recovery_loop section"; exit 1; }
grep -q '"after_corners"' BENCH.json \
  || { echo "BENCH.json recovery_loop lacks per-corner QoR"; exit 1; }

echo "== service smoke (mbrd daemon + scripted mbrc client session) =="
sock=$(mktemp -u /tmp/mbrd_ci.XXXXXX.sock)
dune exec bin/mbrd.exe -- --socket "$sock" --queue-limit 8 &
mbrd_pid=$!
trap 'kill "$mbrd_pid" 2> /dev/null || true; rm -f "$sock"' EXIT
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ] || { echo "mbrd did not come up"; exit 1; }
mbrc_client() {
  dune exec bin/mbrc.exe -- client --socket "$sock" "$@"
}
mbrc_client load --session ci --profile tiny --seed 5 > /dev/null
mbrc_client perturb --session ci --seed 6 > /dev/null
recompose_out=$(mbrc_client recompose --session ci)
echo "$recompose_out" | grep -q '"round"' \
  || { echo "recompose response malformed: $recompose_out"; exit 1; }
# deadline path: must fail with the cancelled code, then keep serving
if mbrc_client recompose --session ci --timeout 0 2> /dev/null; then
  echo "zero-deadline recompose unexpectedly succeeded"; exit 1
fi
mbrc_client recompose --session ci > /dev/null
metrics_out=$(mbrc_client query-metrics)
echo "$metrics_out" | grep -q '"ci"' \
  || { echo "query-metrics lost the session: $metrics_out"; exit 1; }
mbrc_client shutdown > /dev/null
wait "$mbrd_pid"   # daemon must exit cleanly once drained
trap - EXIT
[ ! -e "$sock" ] || { echo "mbrd left its socket behind"; exit 1; }

echo "ci.sh: all green"
