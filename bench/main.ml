(* bench/main.exe — regenerates every table and figure of the paper's
   evaluation (section 5) on the synthetic D1-D5 designs, runs the
   design-choice ablations, and times the core kernels with bechamel.

   Sections:
     1. Table 1  (Base / Ours / Save per design + section-5 averages)
     2. Fig. 5   (MBR bit-width histograms before/after)
     3. Fig. 6   (ILP vs heuristic allocator, normalized registers)
     4. Ablations (partition bound, weights, incomplete, skew, decompose)
     5. Runtime scaling (flow wall time + per-stage breakdown)
     5b. Allocate-stage parallel scaling (serial vs domain pool)
     5c. ECO recompose (persistent session vs from-scratch re-run)
     6. Kernel microbenchmarks (bechamel)
     7. mbrd service soak
     8. compose <-> decompose recovery loop (worst-corner closure)

   Sections 5, 5b, 5c, 6, 7 and 8 also emit BENCH.json
   (machine-readable numbers for regression tracking; schema documented
   in EXPERIMENTS.md). `--soak` and `--recover` refresh only their own
   section of an existing BENCH.json.

   `bench/main.exe --smoke` instead runs only a tiny design through the
   parallel (jobs = 2) allocate path plus one ECO perturb + recompose
   round and checks both against from-scratch results — the CI smoke
   test for the domain-pool and session code paths (a few seconds, no
   BENCH.json rewrite).

   Expected wall time (full run): tens of minutes — the scaling ladder
   tops out at a >=100k-register design whose generation and flow
   dominate the run. *)

module E = Mbr_harness.Experiments
module P = Mbr_designgen.Profile
module G = Mbr_designgen.Generate
module Eco = Mbr_designgen.Eco
module Flow = Mbr_core.Flow

let banner title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 72 '=') title (String.make 72 '=')

let section_tables () =
  banner "1. Table 1 - industrial design characteristics before/after composition";
  let t0 = Unix.gettimeofday () in
  let runs = List.map E.run_profile P.all in
  print_string (E.table1 runs);
  print_newline ();
  print_string (E.table1_summary runs);
  Printf.printf "\n(table generated in %.1f s)\n" (Unix.gettimeofday () -. t0);

  banner "2. Fig. 5 - MBR bit widths before & after MBR composition";
  print_string (E.fig5 runs);
  print_string
    "(as in the paper: composition shifts mass toward 8-bit MBRs; D4,\n\
     already 8-bit-rich, moves the least)\n";

  banner "3. Fig. 6 - ILP vs maximal-clique heuristic (normalized registers)";
  let _, fig6_text = E.fig6 P.all in
  print_string fig6_text

let section_ablations () =
  banner "4. Ablations (design choices called out in DESIGN.md section 5)";
  let p = P.scaled P.d1 0.5 in
  Printf.printf "profile: %s at half scale (%d registers)\n\n" p.P.name
    p.P.n_registers;
  print_endline "--- 4a. K-partition bound (paper section 3: 30 is the sweet spot) ---";
  print_string (E.ablation_partition_bound p [ 10; 20; 30; 40 ]);
  print_endline "\n--- 4b. placement-aware weights (section 3.2) ---";
  print_string (E.ablation_weights p);
  print_endline "\n--- 4c. incomplete MBRs (section 3) ---";
  print_string (E.ablation_incomplete p);
  print_endline "\n--- 4d. useful skew after composition (Fig. 4) ---";
  print_string (E.ablation_skew p);
  print_endline
    "\n--- 4e. decompose + recompose max-width MBRs (section 5 future work,\n\
     \        implemented) on the 8-bit-rich D4 ---";
  print_string (E.ablation_decompose (P.scaled P.d4 0.5));
  print_endline
    "\n--- 4f. entry point: after global vs after detailed placement ---";
  print_string (E.ablation_global_entry p)

(* ---- bechamel microbenchmarks of the core kernels ---- *)

let kernel_tests () =
  let open Bechamel in
  let rng = Mbr_util.Rng.create 99 in
  (* convex hull of 64 points *)
  let pts =
    List.init 64 (fun _ ->
        Mbr_geom.Point.make (Mbr_util.Rng.float rng 100.0) (Mbr_util.Rng.float rng 100.0))
  in
  let hull_test =
    Test.make ~name:"hull.convex-64pts" (Staged.stage (fun () -> Mbr_geom.Hull.convex pts))
  in
  (* Bron-Kerbosch on a 30-node random graph *)
  let g30 =
    let g = Mbr_graph.Ugraph.create 30 in
    for i = 0 to 29 do
      for j = i + 1 to 29 do
        if Mbr_util.Rng.chance rng 0.3 then Mbr_graph.Ugraph.add_edge g i j
      done
    done;
    g
  in
  let bk_test =
    Test.make ~name:"bron-kerbosch.30n-p0.3"
      (Staged.stage (fun () -> Mbr_graph.Bron_kerbosch.count_maximal_cliques g30))
  in
  (* set-partition ILP: 20 elements, 120 candidates *)
  let sp_problem =
    let singles = List.init 20 (fun i -> { Mbr_ilp.Set_partition.weight = 1.0; elems = [ i ] }) in
    let pairs =
      List.init 100 (fun k ->
          let a = k mod 20 and b = (k + 1 + (k / 20)) mod 20 in
          if a = b then { Mbr_ilp.Set_partition.weight = 1.0; elems = [ a ] }
          else { Mbr_ilp.Set_partition.weight = 0.5; elems = [ a; b ] })
    in
    { Mbr_ilp.Set_partition.n_elems = 20; candidates = Array.of_list (singles @ pairs) }
  in
  let ilp_test =
    Test.make ~name:"ilp.20elem-120cand"
      (Staged.stage (fun () -> Mbr_ilp.Set_partition.solve sp_problem))
  in
  (* the same kernel at the two candidate-density extremes the staged
     solver was built for: a sparse instance whose overlap graph falls
     apart into six components, and a dense single-component instance
     where the search itself carries the load *)
  let sp_sparse =
    (* 24 singletons + every pair inside disjoint groups of 4 *)
    let singles =
      List.init 24 (fun i -> { Mbr_ilp.Set_partition.weight = 1.0; elems = [ i ] })
    in
    let pairs =
      List.concat
        (List.init 6 (fun g ->
             let base = 4 * g in
             List.concat
               (List.init 4 (fun i ->
                    List.filter_map
                      (fun j ->
                        if j > i then
                          Some
                            {
                              Mbr_ilp.Set_partition.weight =
                                0.5 +. (0.05 *. float_of_int ((i + j) mod 3));
                              elems = [ base + i; base + j ];
                            }
                        else None)
                      (List.init 4 Fun.id)))))
    in
    { Mbr_ilp.Set_partition.n_elems = 24; candidates = Array.of_list (singles @ pairs) }
  in
  let ilp_sparse_test =
    Test.make ~name:"ilp.24elem-60cand-sparse"
      (Staged.stage (fun () -> Mbr_ilp.Set_partition.solve sp_sparse))
  in
  let sp_dense =
    (* 24 singletons + all 276 pairs: one component, maximal overlap *)
    let singles =
      List.init 24 (fun i -> { Mbr_ilp.Set_partition.weight = 1.0; elems = [ i ] })
    in
    let pairs =
      List.concat
        (List.init 24 (fun i ->
             List.filter_map
               (fun j ->
                 if j > i then
                   Some
                     {
                       Mbr_ilp.Set_partition.weight =
                         0.4 +. (0.05 *. float_of_int ((i + j) mod 7));
                       elems = [ i; j ];
                     }
                 else None)
               (List.init 24 Fun.id)))
    in
    { Mbr_ilp.Set_partition.n_elems = 24; candidates = Array.of_list (singles @ pairs) }
  in
  let ilp_dense_test =
    Test.make ~name:"ilp.24elem-300cand-dense"
      (Staged.stage (fun () -> Mbr_ilp.Set_partition.solve sp_dense))
  in
  (* simplex: 30x60 LP *)
  let simplex_test =
    Test.make ~name:"simplex.30rows-60vars"
      (Staged.stage (fun () ->
           let module S = Mbr_lp.Simplex in
           let lp = S.create () in
           let vars = Array.init 60 (fun i -> S.add_var ~obj:(1.0 +. float_of_int (i mod 7)) lp) in
           for r = 0 to 29 do
             let terms = List.init 6 (fun k -> (vars.((r + (k * 5)) mod 60), 1.0)) in
             S.add_constraint lp terms S.Ge (float_of_int (1 + (r mod 4)))
           done;
           S.solve lp))
  in
  (* full STA analysis of a tiny placed design *)
  let tiny = G.generate (P.tiny ~seed:5) in
  let eng = Mbr_sta.Engine.build ~config:tiny.G.sta_config tiny.G.placement in
  let sta_test =
    Test.make ~name:"sta.analyze-tiny" (Staged.stage (fun () -> Mbr_sta.Engine.analyze eng))
  in
  (* CTS over the tiny design *)
  let cts_test =
    Test.make ~name:"cts.synthesize-tiny"
      (Staged.stage (fun () -> Mbr_cts.Synth.synthesize tiny.G.placement))
  in
  [
    hull_test; bk_test; ilp_test; ilp_sparse_test; ilp_dense_test;
    simplex_test; sta_test; cts_test;
  ]

let pretty_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let section_kernels () =
  banner "6. Kernel microbenchmarks (bechamel, OLS on monotonic clock)";
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  Printf.printf "%-28s %14s %8s\n" "kernel" "time/run" "r^2";
  let out = ref [] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
      List.iter
        (fun (name, r) ->
          let est =
            match Analyze.OLS.estimates r with
            | Some (e :: _) -> e
            | Some [] | None -> nan
          in
          let r2 = Analyze.OLS.r_square r in
          out := (name, est, r2) :: !out;
          let r2s =
            match r2 with Some v -> Printf.sprintf "%.3f" v | None -> "-"
          in
          Printf.printf "%-28s %14s %8s\n%!" name (pretty_ns est) r2s)
        (List.sort compare rows))
    (kernel_tests ());
  List.rev !out

type scaling_row = {
  sc_profile : string;
  sc_scale : float;
  sc_registers : int;
  sc_cells : int;
  sc_result : Mbr_core.Flow.result;
  sc_metrics : Mbr_obs.Metrics.snapshot;  (* registry state for this run only *)
  sc_rss_mb : float option;
      (* process peak RSS right after the row's flow. VmHWM is monotonic
         over the process lifetime, so with rows ordered smallest to
         largest each value is "peak memory needed up to and including
         this design size" — the bound a capacity planner wants. *)
}

(* ---- allocate-stage parallel scaling (section 5b) ---- *)

type alloc_scaling_row = {
  as_profile : string;
  as_scale : float;
  as_jobs : int;
  as_time_s : float;
  as_speedup : float;  (* serial time / this time *)
  as_identical : bool;  (* selection equals the jobs=1 selection *)
  as_degraded : bool;
      (* jobs exceed the host's cores: the row times oversubscription,
         not parallel speedup, and regression tracking should not gate
         on it *)
  as_block_mean_s : float;
  as_block_max_s : float;
}

(* the decision content of a selection — everything except the timing
   histogram, which legitimately varies run to run *)
let selection_key (s : Mbr_core.Allocate.selection) =
  ( s.Mbr_core.Allocate.merges,
    s.Mbr_core.Allocate.kept,
    s.Mbr_core.Allocate.cost,
    s.Mbr_core.Allocate.n_blocks,
    s.Mbr_core.Allocate.n_candidates,
    s.Mbr_core.Allocate.all_optimal )

(* Build the allocate-stage inputs the way Flow does, once per design,
   so the jobs sweep times exactly the per-block solve fan-out. *)
let allocate_inputs profile =
  let g = G.generate profile in
  let eng = Mbr_sta.Engine.build ~config:g.G.sta_config g.G.placement in
  Mbr_sta.Engine.analyze eng;
  let graph = Mbr_core.Compat.build_graph eng g.G.library in
  let blocker_index = Mbr_core.Spatial.create () in
  List.iter
    (fun cid ->
      if Mbr_place.Placement.is_placed g.G.placement cid then
        Mbr_core.Spatial.add blocker_index cid
          (Mbr_place.Placement.center g.G.placement cid))
    (Mbr_netlist.Design.registers g.G.design);
  (graph, g.G.library, blocker_index)

let allocate_sweep ?(jobs_list = [ 1; 2; 4; 8 ]) profile scale =
  let p = P.scaled profile scale in
  let graph, lib, blocker_index = allocate_inputs p in
  let time_run jobs =
    let config = { Mbr_core.Allocate.default_config with Mbr_core.Allocate.jobs } in
    let t0 = Unix.gettimeofday () in
    let sel = Mbr_core.Allocate.run ~config graph ~lib ~blocker_index in
    (sel, Unix.gettimeofday () -. t0)
  in
  let serial_sel, serial_t = time_run 1 in
  let cores = Mbr_util.Pool.recommended_jobs () in
  List.map
    (fun jobs ->
      let sel, t = if jobs = 1 then (serial_sel, serial_t) else time_run jobs in
      let bt = sel.Mbr_core.Allocate.block_times in
      {
        as_profile = p.P.name;
        as_scale = scale;
        as_jobs = jobs;
        as_time_s = t;
        as_speedup = (if t > 0.0 then serial_t /. t else 1.0);
        as_identical = selection_key sel = selection_key serial_sel;
        as_degraded = jobs > cores;
        as_block_mean_s = bt.Mbr_core.Allocate.mean_s;
        as_block_max_s = bt.Mbr_core.Allocate.max_s;
      })
    jobs_list

let section_allocate_scaling () =
  banner
    "5b. Allocate-stage parallel scaling (per-block ILP solves on a domain \
     pool)";
  Printf.printf "(host reports %d recommended domain(s))\n\n"
    (Mbr_util.Pool.recommended_jobs ());
  Printf.printf "%-8s %-7s %-5s %-10s %-8s %-10s %-10s %-10s %s\n" "design"
    "scale" "jobs" "alloc s" "speedup" "blk mean" "blk max" "identical"
    "degraded";
  let rows =
    List.concat_map (fun scale -> allocate_sweep P.d1 scale) [ 1.0; 2.0 ]
  in
  List.iter
    (fun r ->
      Printf.printf
        "%-8s %-7.2f %-5d %-10.3f %-8.2f %-10.5f %-10.5f %-10s %s\n%!"
        r.as_profile r.as_scale r.as_jobs r.as_time_s r.as_speedup
        r.as_block_mean_s r.as_block_max_s
        (if r.as_identical then "yes" else "NO (BUG)")
        (if r.as_degraded then "yes" else "no");
      if not r.as_identical then
        failwith "parallel allocate diverged from serial — determinism bug")
    rows;
  print_endline
    "\n(results are bit-identical at every jobs setting by construction;\n\
     speedup tracks the host's core count — a single-core container pins\n\
     it near 1.0 and only the scheduling overhead shows)";
  rows

(* ---- ECO recompose: persistent session vs from-scratch flow (5c) ---- *)

type eco_row = {
  ec_profile : string;
  ec_scale : float;
  ec_round : int;
  ec_edits : int;
  ec_blocks : int;
  ec_resolved : int;
  ec_reused : int;
  ec_full_s : float;  (* from-scratch Flow.run on the lockstep copy *)
  ec_recompose_s : float;  (* Session.recompose on the session copy *)
  ec_identical : bool;  (* final metrics match to 1e-6 *)
  ec_metrics : Mbr_obs.Metrics.snapshot;  (* counters of the recompose alone *)
}

let results_close (ra : Flow.result) (rb : Flow.result) =
  let module M = Mbr_core.Metrics in
  let close a b =
    a = b || (Float.is_finite a && Float.is_finite b && Float.abs (a -. b) <= 1e-6)
  in
  ra.Flow.after.M.total_regs = rb.Flow.after.M.total_regs
  && ra.Flow.n_merges = rb.Flow.n_merges
  && close ra.Flow.ilp_cost rb.Flow.ilp_cost
  && close ra.Flow.after.M.wns rb.Flow.after.M.wns
  && close ra.Flow.after.M.tns rb.Flow.after.M.tns

(* Lockstep protocol (same as test_flow_eco): two identically-seeded
   design copies; each round perturbs both with identically-seeded
   batches, then copy A advances by the session's recompose and copy B
   by a from-scratch Flow.run. Determinism keeps the copies in
   lockstep, so the two wall times price the same work. *)
let eco_sweep ?(converge_rounds = 3) ?(eco_rounds = 2) profile scale =
  let p = P.scaled profile scale in
  let ga = G.generate p and gb = G.generate p in
  let session =
    Flow.Session.create ~design:ga.G.design ~placement:ga.G.placement
      ~library:ga.G.library ~sta_config:ga.G.sta_config ()
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let recompose () = timed (fun () -> Flow.Session.recompose session) in
  let fresh () =
    timed (fun () ->
        Flow.run ~design:gb.G.design ~placement:gb.G.placement
          ~library:gb.G.library ~sta_config:gb.G.sta_config ())
  in
  (* settle both copies: the first rounds still merge registers *)
  for _ = 1 to converge_rounds do
    ignore (recompose ());
    ignore (fresh ())
  done;
  List.init eco_rounds (fun i ->
      let round = i + 1 in
      let batch_seed = 1000 + (97 * round) in
      let sa = Eco.perturb (Mbr_util.Rng.create batch_seed) ga in
      ignore (Eco.perturb (Mbr_util.Rng.create batch_seed) gb);
      Mbr_obs.Metrics.reset ();
      let ra, ta = recompose () in
      (* snapshot before the lockstep full run so the row's counters
         describe the recompose, not the reference re-run *)
      let ec_metrics = Mbr_obs.Metrics.snapshot () in
      let rb, tb = fresh () in
      {
        ec_profile = p.P.name;
        ec_scale = scale;
        ec_round = round;
        ec_edits = Eco.total sa;
        ec_blocks = ra.Flow.n_blocks;
        ec_resolved = ra.Flow.eco_blocks_resolved;
        ec_reused = ra.Flow.eco_blocks_reused;
        ec_full_s = tb;
        ec_recompose_s = ta;
        ec_identical = results_close ra rb;
        ec_metrics;
      })

let section_eco () =
  banner
    "5c. ECO recompose (persistent session vs from-scratch flow, 10% \
     perturbation)";
  Printf.printf "%-8s %-7s %-6s %-6s %-14s %-8s %-10s %-8s %s\n" "design"
    "scale" "round" "edits" "blocks rslv/n" "reused" "full s" "eco s"
    "identical";
  let rows =
    List.concat_map (fun scale -> eco_sweep P.d1 scale) [ 1.0; 2.0 ]
  in
  List.iter
    (fun r ->
      Printf.printf "%-8s %-7.2f %-6d %-6d %5d/%-8d %-8d %-10.3f %-8.3f %s\n%!"
        r.ec_profile r.ec_scale r.ec_round r.ec_edits r.ec_resolved r.ec_blocks
        r.ec_reused r.ec_full_s r.ec_recompose_s
        (if r.ec_identical then "yes" else "NO (BUG)");
      if not r.ec_identical then
        failwith "recompose diverged from the from-scratch flow";
      if r.ec_reused = 0 || r.ec_resolved >= r.ec_blocks then
        failwith "recompose re-solved every block on a localized ECO")
    rows;
  print_endline
    "\n(identical final metrics by the lockstep protocol; recompose skips\n\
     the blocks the ECO left untouched, so its allocate stage scales with\n\
     the perturbation, not the design)";
  rows

(* ---- --smoke: the CI parallel-path check (tiny design, jobs = 2) ---- *)

let smoke () =
  banner "smoke: parallel allocate path (tiny design, jobs = 2)";
  let rows = allocate_sweep ~jobs_list:[ 1; 2 ] (P.tiny ~seed:1) 1.0 in
  List.iter
    (fun r ->
      Printf.printf "jobs=%d: %.3f s, identical=%b\n" r.as_jobs r.as_time_s
        r.as_identical;
      if not r.as_identical then failwith "smoke: parallel allocate diverged")
    rows;
  (* and once through the full staged flow with the pool engaged *)
  let g = G.generate (P.tiny ~seed:7) in
  let options =
    { Mbr_core.Flow.default_options with Mbr_core.Flow.jobs = Some 2 }
  in
  let r =
    Mbr_core.Flow.run ~options ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  Printf.printf "flow (jobs=2): %d MBRs from %d registers, %d blocks, %.1f s\n"
    r.Mbr_core.Flow.n_merges r.Mbr_core.Flow.n_regs_merged
    r.Mbr_core.Flow.n_blocks r.Mbr_core.Flow.runtime_s;
  if r.Mbr_core.Flow.alloc_jobs <> 2 then failwith "smoke: jobs not plumbed";
  if r.Mbr_core.Flow.n_merges <= 0 then failwith "smoke: no merges";
  (* and one ECO perturb + recompose round against a lockstep re-run *)
  let rows = eco_sweep ~converge_rounds:2 ~eco_rounds:1 (P.tiny ~seed:3) 1.0 in
  List.iter
    (fun e ->
      Printf.printf
        "eco: %d edits, %d/%d blocks re-solved (%d reused), identical=%b\n"
        e.ec_edits e.ec_resolved e.ec_blocks e.ec_reused e.ec_identical;
      if not e.ec_identical then failwith "smoke: recompose diverged";
      if e.ec_resolved + e.ec_reused <> e.ec_blocks then
        failwith "smoke: reuse counters do not cover the partition")
    rows;
  print_endline "smoke OK"

let section_scaling () =
  banner "5. Runtime scaling (flow wall time vs design size, D1 profile)";
  Printf.printf "%-10s %-10s %-9s %-9s %-7s | %s\n" "registers" "cells" "flow s"
    "rss MB" "sta b/r" "stage breakdown (s)";
  let rows =
    List.map
      (fun scale ->
        let p = P.scaled P.d1 scale in
        let g = G.generate p in
        let cells = Mbr_netlist.Design.n_cells g.G.design in
        (* reset between runs so each row's counters price one flow;
           compact so a row measures its own flow, not allocation into
           whatever fragmented major heap the previous sections left
           behind (worth ~30-40 % on the small rows' hot stages) *)
        Mbr_obs.Metrics.reset ();
        Gc.compact ();
        let r =
          Mbr_core.Flow.run ~design:g.G.design ~placement:g.G.placement
            ~library:g.G.library ~sta_config:g.G.sta_config ()
        in
        let snap = Mbr_obs.Metrics.snapshot () in
        let rss = Mbr_obs.Rss.peak_mb () in
        let breakdown =
          String.concat " "
            (List.filter_map
               (fun (name, t) ->
                 if t >= 0.05 then Some (Printf.sprintf "%s=%.1f" name t) else None)
               r.Mbr_core.Flow.stage_times)
        in
        Printf.printf "%-10d %-10d %-9.1f %-9s %d/%-5d | %s\n%!" p.P.n_registers
          cells r.Mbr_core.Flow.runtime_s
          (match rss with Some m -> Printf.sprintf "%.0f" m | None -> "n/a")
          r.Mbr_core.Flow.sta_full_builds r.Mbr_core.Flow.sta_refreshes
          breakdown;
        {
          sc_profile = P.d1.P.name;
          sc_scale = scale;
          sc_registers = p.P.n_registers;
          sc_cells = cells;
          sc_result = r;
          sc_metrics = snap;
          sc_rss_mb = rss;
        })
      [ 0.25; 0.5; 1.0; 2.0; 8.0; 70.0 ]
  in
  print_endline
    "(near-linear; the composition stages run through Engine.refresh, which\n\
     either splices localized edits into the existing timing graph or — for\n\
     bulk edit batches like a full composition pass — falls back to a\n\
     rebuild, whichever is cheaper; the 70x row is the >=100k-register\n\
     large-design checkpoint and its rss column bounds the whole ladder)";
  rows

(* ---- section 7: mbrd service soak ----

   Many concurrent sessions, several concurrent clients, a randomized
   ECO request mix — the service-level counterpart of section 5c. The
   numbers that matter: per-verb p50/p99 round-trip latency, zero
   failed or misrouted requests, and the cancelled-deadline path
   exercised on every session.

   GC hygiene: Gc.compact and heap accounting run ONLY at the phase
   boundaries (before the clients start, after the last one joins).
   A compaction inside the soak would stop every domain — including
   the ones mid-request — and bill the pause to whichever latencies
   happen to be in flight, so nothing GC-related runs while any
   request timer does. *)

module Svc_client = Mbr_service.Client
module Svc_protocol = Mbr_service.Protocol
module Svc_server = Mbr_service.Server

type soak_config = {
  sk_sessions : int;
  sk_clients : int;
  sk_reqs_per_session : int;  (* load + mix + deadline + recovery *)
  sk_scale : float;
  sk_queue_limit : int;
}

let default_soak =
  {
    sk_sessions = 24;
    sk_clients = 6;
    sk_reqs_per_session = 84;  (* 24 x 84 = 2016 requests *)
    sk_scale = 0.4;
    sk_queue_limit = 64;
  }

type soak_result = {
  so_config : soak_config;
  so_workers : int;
  so_requests : int;
  so_ok : int;
  so_cancelled : int;  (* deadline recomposes answered `cancelled` *)
  so_failed : int;  (* any other error: must be 0 *)
  so_misrouted : int;  (* served-count mismatches: must be 0 *)
  so_wall_s : float;
  so_heap_mb_before : float;
  so_heap_mb_after : float;
  so_latencies : (string * float list) list;  (* verb -> round-trip seconds *)
}

let heap_mb () =
  float_of_int (Gc.stat ()).Gc.heap_words *. float_of_int (Sys.word_size / 8)
  /. 1048576.0

(* [telemetry] switches the whole observability plane: per-session
   labeled metric series, the periodic sampler, and progress-event
   streaming on every recompose. The overhead section runs the same
   soak both ways and compares tails. *)
let section_soak ?(cfg = default_soak) ?(telemetry = true)
    ?(title = "7. mbrd service soak (concurrent sessions, randomized ECO traffic)")
    () =
  banner title;
  let socket_path =
    Printf.sprintf "%s/mbrd-soak-%d.sock" (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  let workers = Mbr_util.Pool.recommended_jobs () in
  Printf.printf
    "%d sessions, %d clients, %d requests (%d per session), %d worker \
     domain(s), queue limit %d\n%!"
    cfg.sk_sessions cfg.sk_clients
    (cfg.sk_sessions * cfg.sk_reqs_per_session)
    cfg.sk_reqs_per_session workers cfg.sk_queue_limit;
  let ready = Mutex.create () and cond = Condition.create () in
  let up = ref false in
  let server =
    Thread.create
      (fun () ->
        Svc_server.run
          ~on_ready:(fun () ->
            Mutex.lock ready;
            up := true;
            Condition.signal cond;
            Mutex.unlock ready)
          {
            Svc_server.default_config with
            Svc_server.socket_path;
            workers;
            queue_limit = cfg.sk_queue_limit;
            alloc_jobs = 1;
            session_metrics = telemetry;
            sample_period_s = (if telemetry then 0.25 else 0.0);
          })
      ()
  in
  Mutex.lock ready;
  while not !up do
    Condition.wait cond ready
  done;
  Mutex.unlock ready;
  (* phase boundary: all GC work happens before any request timer runs *)
  Gc.compact ();
  let heap_before = heap_mb () in
  let ok = Atomic.make 0
  and cancelled = Atomic.make 0
  and failed = Atomic.make 0 in
  (* client-side expectation of each session's served count, indexed by
     session number; compared against the daemon's own accounting *)
  let expected_served = Array.make cfg.sk_sessions 0 in
  (* per-thread latency sinks, merged after the join: no locking inside
     the measurement loop *)
  let sinks =
    Array.init cfg.sk_clients (fun _ -> ref ([] : (string * float) list))
  in
  let t0 = Mbr_obs.Clock.now_s () in
  let client k () =
    let sink = sinks.(k) in
    (* when the plane is on, every recompose also streams its
       per-stage progress events — the cost of consuming them is part
       of what the overhead section measures *)
    let on_progress =
      if telemetry then Some (fun (_ : Svc_protocol.progress_event) -> ())
      else None
    in
    let c = Svc_client.connect socket_path in
    Fun.protect ~finally:(fun () -> Svc_client.close c) @@ fun () ->
    let timed verb f =
      let t1 = Mbr_obs.Clock.now_s () in
      let r = f () in
      let t2 = Mbr_obs.Clock.now_s () in
      sink := (Svc_protocol.verb_to_string verb, t2 -. t1) :: !sink;
      r
    in
    let count ~expect_cancelled = function
      | Ok _ -> Atomic.incr ok
      | Error { Svc_protocol.code = Svc_protocol.Cancelled; _ }
        when expect_cancelled ->
        Atomic.incr cancelled
      | Error { Svc_protocol.code; message } ->
        Printf.eprintf "soak: unexpected %s: %s\n%!"
          (Svc_protocol.error_code_to_string code)
          message;
        Atomic.incr failed
    in
    let s = ref k in
    while !s < cfg.sk_sessions do
      let session = !s in
      let name = Printf.sprintf "soak-%d" session in
      let rng = Mbr_util.Rng.create (7000 + session) in
      let send ?(expect_cancelled = false) verb f =
        count ~expect_cancelled (timed verb f);
        expected_served.(session) <- expected_served.(session) + 1
      in
      send Svc_protocol.Load (fun () ->
          Svc_client.load c ~session:name ~profile:"tiny" ~scale:cfg.sk_scale
            ~seed:session ());
      (* randomized mix; the last two slots are reserved for the
         deadline + recovery pair *)
      for _ = 1 to cfg.sk_reqs_per_session - 3 do
        if Mbr_util.Rng.float rng 1.0 < 0.45 then
          send Svc_protocol.Perturb (fun () ->
              Svc_client.perturb c ~session:name
                ~seed:(Mbr_util.Rng.int rng 1_000_000)
                ~frac:(0.5 +. Mbr_util.Rng.float rng 1.0)
                ())
        else
          send Svc_protocol.Recompose (fun () ->
              Svc_client.recompose c ~session:name ?on_progress ())
      done;
      (* every session exercises the deadline path, then proves it is
         still usable *)
      send ~expect_cancelled:true Svc_protocol.Recompose (fun () ->
          Svc_client.recompose c ~session:name ~timeout_s:0.0 ?on_progress ());
      send Svc_protocol.Recompose (fun () ->
          Svc_client.recompose c ~session:name ?on_progress ());
      s := !s + cfg.sk_clients
    done
  in
  let threads = Array.init cfg.sk_clients (fun k -> Thread.create (client k) ()) in
  Array.iter Thread.join threads;
  let wall_s = Mbr_obs.Clock.now_s () -. t0 in
  (* every request timer has stopped: GC work is legal again *)
  Gc.compact ();
  let heap_after = heap_mb () in
  (* routing audit straight from the daemon's own per-session counters *)
  let c = Svc_client.connect socket_path in
  let misrouted =
    match Svc_client.query_metrics c with
    | Error _ -> cfg.sk_sessions (* can't audit: count everything wrong *)
    | Ok m -> (
      let module J = Mbr_obs.Json in
      match Option.bind (J.member "sessions" m) J.to_list with
      | None -> cfg.sk_sessions
      | Some rows ->
        let served = Hashtbl.create 32 in
        List.iter
          (fun row ->
            match
              ( Option.bind (J.member "name" row) J.to_str,
                Option.bind (J.member "served" row) J.to_int,
                Option.bind (J.member "pending" row) J.to_int )
            with
            | Some n, Some sv, Some pend -> Hashtbl.replace served n (sv, pend)
            | _ -> ())
          rows;
        let bad = ref 0 in
        Array.iteri
          (fun i expect ->
            match Hashtbl.find_opt served (Printf.sprintf "soak-%d" i) with
            | Some (sv, 0) when sv = expect -> ()
            | _ -> incr bad)
          expected_served;
        !bad)
  in
  ignore (Svc_client.shutdown c);
  Svc_client.close c;
  Thread.join server;
  let latencies =
    List.map
      (fun v ->
        let name = Svc_protocol.verb_to_string v in
        ( name,
          Array.to_list sinks
          |> List.concat_map (fun sink ->
                 List.filter_map
                   (fun (n, dt) -> if n = name then Some dt else None)
                   !sink) ))
      Svc_protocol.[ Load; Perturb; Recompose ]
  in
  let r =
    {
      so_config = cfg;
      so_workers = workers;
      so_requests = cfg.sk_sessions * cfg.sk_reqs_per_session;
      so_ok = Atomic.get ok;
      so_cancelled = Atomic.get cancelled;
      so_failed = Atomic.get failed;
      so_misrouted = misrouted;
      so_wall_s = wall_s;
      so_heap_mb_before = heap_before;
      so_heap_mb_after = heap_after;
      so_latencies = latencies;
    }
  in
  Printf.printf
    "%d requests in %.1f s (%.0f req/s): %d ok, %d cancelled-by-deadline, \
     %d failed, %d misrouted\n"
    r.so_requests wall_s
    (float_of_int r.so_requests /. wall_s)
    r.so_ok r.so_cancelled r.so_failed r.so_misrouted;
  List.iter
    (fun (verb, lats) ->
      if lats <> [] then begin
        let a = Array.of_list lats in
        Printf.printf
          "  %-10s %5d reqs  p50 %7.2f ms  p99 %7.2f ms  max %7.2f ms\n" verb
          (Array.length a)
          (Mbr_util.Stats.percentile a 50.0 *. 1e3)
          (Mbr_util.Stats.percentile a 99.0 *. 1e3)
          (snd (Mbr_util.Stats.min_max a) *. 1e3)
      end)
    r.so_latencies;
  Printf.printf "heap after compaction: %.1f MB -> %.1f MB\n" heap_before
    heap_after;
  if r.so_failed > 0 || r.so_misrouted > 0 then
    failwith "service soak: failed or misrouted requests";
  r

let soak_to_json (r : soak_result) =
  let module J = Mbr_obs.Json in
  let num f = J.Num f in
  let int i = J.Num (float_of_int i) in
  J.Obj
    [
      ("sessions", int r.so_config.sk_sessions);
      ("clients", int r.so_config.sk_clients);
      ("workers", int r.so_workers);
      ("queue_limit", int r.so_config.sk_queue_limit);
      ("scale", num r.so_config.sk_scale);
      ("requests", int r.so_requests);
      ("ok", int r.so_ok);
      ("cancelled_by_deadline", int r.so_cancelled);
      ("failed", int r.so_failed);
      ("misrouted", int r.so_misrouted);
      ("wall_s", num r.so_wall_s);
      ("throughput_rps", num (float_of_int r.so_requests /. r.so_wall_s));
      ("heap_mb_before", num r.so_heap_mb_before);
      ("heap_mb_after", num r.so_heap_mb_after);
      ( "per_verb",
        J.Arr
          (List.filter_map
             (fun (verb, lats) ->
               if lats = [] then None
               else
                 let a = Array.of_list lats in
                 Some
                   (J.Obj
                      [
                        ("verb", J.Str verb);
                        ("count", int (Array.length a));
                        ("p50_ms", num (Mbr_util.Stats.percentile a 50.0 *. 1e3));
                        ("p99_ms", num (Mbr_util.Stats.percentile a 99.0 *. 1e3));
                        ("mean_ms", num (Mbr_util.Stats.mean a *. 1e3));
                        ("max_ms", num (snd (Mbr_util.Stats.min_max a) *. 1e3));
                      ]))
             r.so_latencies) );
    ]

(* ---- section 9: telemetry overhead ----

   The observability plane must be cheap enough to leave on: the same
   (smaller) soak runs twice, once with per-session labeled series +
   the 0.25 s sampler + progress streaming on every recompose, once
   with all of it off, and the per-verb latency tails are compared.
   The acceptance bar lives in EXPERIMENTS.md: recompose p99 within a
   few percent. Ratios are reported rather than enforced here — a
   loaded CI host can blur a 2 ms tail — but the JSON records both
   runs so regressions are visible. *)

let telemetry_soak =
  {
    sk_sessions = 8;
    sk_clients = 4;
    sk_reqs_per_session = 36;  (* 8 x 36 = 288 requests per run *)
    sk_scale = 0.3;
    sk_queue_limit = 64;
  }

type telemetry_overhead = {
  tv_on : soak_result;
  tv_off : soak_result;
}

let percentile_of verb pct (r : soak_result) =
  match List.assoc_opt verb r.so_latencies with
  | Some (_ :: _ as lats) ->
    Some (Mbr_util.Stats.percentile (Array.of_list lats) pct)
  | _ -> None

let section_telemetry_overhead () =
  let on =
    section_soak ~cfg:telemetry_soak ~telemetry:true
      ~title:
        "9. telemetry overhead — soak with the plane ON (labeled series, \
         sampler, progress streaming)"
      ()
  in
  let off =
    section_soak ~cfg:telemetry_soak ~telemetry:false
      ~title:"9 (cont.) — same soak with the plane OFF" ()
  in
  List.iter
    (fun verb ->
      match
        ( percentile_of verb 50.0 on,
          percentile_of verb 99.0 on,
          percentile_of verb 50.0 off,
          percentile_of verb 99.0 off )
      with
      | Some p50_on, Some p99_on, Some p50_off, Some p99_off ->
        Printf.printf
          "  %-10s p50 %7.2f -> %7.2f ms (%+5.1f%%)  p99 %7.2f -> %7.2f ms \
           (%+5.1f%%)\n"
          verb (p50_off *. 1e3) (p50_on *. 1e3)
          (100.0 *. ((p50_on /. Float.max 1e-9 p50_off) -. 1.0))
          (p99_off *. 1e3) (p99_on *. 1e3)
          (100.0 *. ((p99_on /. Float.max 1e-9 p99_off) -. 1.0))
      | _ -> ())
    [ "load"; "perturb"; "recompose" ];
  { tv_on = on; tv_off = off }

let telemetry_overhead_to_json (tv : telemetry_overhead) =
  let module J = Mbr_obs.Json in
  let ratio verb pct =
    match (percentile_of verb pct tv.tv_on, percentile_of verb pct tv.tv_off)
    with
    | Some a, Some b when b > 0.0 -> J.Num (a /. b)
    | _ -> J.Null
  in
  J.Obj
    [
      ("on", soak_to_json tv.tv_on);
      ("off", soak_to_json tv.tv_off);
      ("recompose_p50_ratio", ratio "recompose" 50.0);
      ("recompose_p99_ratio", ratio "recompose" 99.0);
      ("perturb_p99_ratio", ratio "perturb" 99.0);
    ]

(* ---- section 8: compose <-> decompose recovery loop ----

   The scenario the loop exists for. Composition cannot go negative at
   a corner it analyzes — the placement-aware weights and the
   displacement bound share the STA's own (derated) delay model — so
   the loop's work arrives from outside the compose step. Here the
   session composes under typical alone, then two things happen that a
   real ECO queue serves up daily: the composed banks are displaced
   (an incremental-placement pass re-spreads the region, here modeled
   as each bank landing at the die corner farthest from where the flow
   put it), and sign-off widens the corner set to a cell-derated
   stress corner. Every micron of displacement costs load — wire cap
   into the driving cells' delay, a cell-derated term in this model —
   so the derated view prices the same microns at twice the typical
   cost, and banks whose members had little worst-corner headroom go
   negative. The derate set is what forces the decompose rounds: under
   typical alone the identical displacement stays affordable and the
   loop never fires.

   Recovery splits each victim, pins the halves (size-only, so they
   can never re-compose) and re-places them at their nets' centroid —
   restoring the wire the displacement added — then re-enters
   partition → allocate → compose on the affected region. Useful skew
   runs with a tight post-CTS bound: enough range to absorb the mild
   residual violations ordinary corner-aware closure handles, far too
   little for a misplaced bank — splitting is the only repair for
   those, which is exactly the separation under test. The clock period
   is relaxed just enough that the un-composed design is clean at the
   derated corner, so convergence (final worst-corner WNS >= 0) is the
   loop's to win or lose.

   The subject is the flat (aggregation-hostile) profile deliberately:
   its compatible registers are scattered across the die, so composed
   banks serve cones whose centers of gravity lie far apart — long
   nets whose load the stress corner derates hardest. *)

type recovery_row = {
  rc_profile : string;
  rc_registers : int;
  rc_corners : string;
  rc_period : float;  (* relaxed clock period, ps *)
  rc_margin : float;  (* slack headroom added over the probe WNS, ps *)
  rc_drift_um : float;  (* mean manhattan displacement per composed bank *)
  rc_budget : int;
  rc_result : Flow.result;
  rc_wall_s : float;
  rc_converged : bool;  (* final worst-corner WNS >= 0 *)
}

let section_recovery () =
  banner "8. compose <-> decompose recovery loop (worst-corner closure)";
  let p = P.flat ~seed:3 in
  (* stress corner heavy on the cell derate: a drifted bank's microns
     cost load (wire cap into the driving cells' delay — a cell-derated
     term in this model), so the derate multiplies what each micron of
     drift costs and drifted MBRs go worst-corner-negative without ever
     showing up at typical *)
  let corners =
    match Mbr_sta.Corner.parse_set "typical,stress:2.0:2.0:1.2" with
    | Ok c -> c
    | Error m -> failwith m
  in
  let budget = 4 in
  let run_attempt ~period ~recover =
    (* generation is deterministic, so each attempt gets a pristine
       copy — composition mutates the design *)
    let g = G.generate p in
    let sta_config =
      { g.G.sta_config with Mbr_sta.Engine.clock_period = period }
    in
    (* useful skew stays on but with a tight post-CTS bound: it can
       absorb the mild baseline violations the derated corner uncovers
       (that is ordinary corner-aware closure) but not the tens of ps a
       drifted bank loses — those only splitting repairs, which is what
       separates the recovery loop's work from the skew stage's *)
    let options =
      {
        Flow.default_options with
        Flow.skew =
          Some { Mbr_sta.Skew.default_config with Mbr_sta.Skew.bound = 5.0 };
        Flow.corners = [| Mbr_sta.Corner.typical |];
      }
    in
    let session =
      Flow.Session.create ~options ~design:g.G.design ~placement:g.G.placement
        ~library:g.G.library ~sta_config ()
    in
    let first = Flow.Session.recompose session in
    (* post-compose placement drift on the composed banks, through the
       edit-logged placement API (the session refreshes from the log) *)
    let pl = Flow.Session.placement session in
    let fp = Mbr_place.Placement.floorplan pl in
    let total_drift = ref 0.0 in
    List.iter
      (fun cid ->
        let loc = Mbr_place.Placement.location pl cid in
        let box = Mbr_place.Placement.footprint pl cid in
        let w = box.Mbr_geom.Rect.hx -. box.Mbr_geom.Rect.lx in
        let h = box.Mbr_geom.Rect.hy -. box.Mbr_geom.Rect.ly in
        (* of the four die corners, the one farthest from where the
           flow placed the bank (its nets' weighted centroid) *)
        let far =
          List.fold_left
            (fun acc cand ->
              let p = Mbr_place.Floorplan.clamp_ll fp ~w ~h cand in
              if
                Mbr_geom.Point.manhattan p loc
                > Mbr_geom.Point.manhattan acc loc
              then p
              else acc)
            loc
            [
              { Mbr_geom.Point.x = -1e9; y = -1e9 };
              { Mbr_geom.Point.x = -1e9; y = 1e9 };
              { Mbr_geom.Point.x = 1e9; y = -1e9 };
              { Mbr_geom.Point.x = 1e9; y = 1e9 };
            ]
        in
        total_drift := !total_drift +. Mbr_geom.Point.manhattan far loc;
        Mbr_place.Placement.set pl cid far)
      first.Flow.new_mbrs;
    let mean_drift =
      !total_drift /. float_of_int (max 1 (List.length first.Flow.new_mbrs))
    in
    Flow.Session.set_corners session corners;
    let t0 = Unix.gettimeofday () in
    let r = Flow.Session.recompose ~recover session in
    (first, r, Unix.gettimeofday () -. t0, mean_drift)
  in
  (* stress-corner baseline WNS at the calibrated period, un-composed *)
  let wns0, base_period =
    let g = G.generate p in
    let eng =
      Mbr_sta.Engine.build ~config:g.G.sta_config ~corners g.G.placement
    in
    Mbr_sta.Engine.analyze eng;
    let tv = Mbr_sta.Timing_view.of_engine eng in
    let wns, _ = Mbr_sta.Timing_view.wns_tns tv in
    (wns, g.G.sta_config.Mbr_sta.Engine.clock_period)
  in
  Printf.printf
    "probe: worst-corner WNS %.1f ps at the calibrated period %.1f ps\n" wns0
    base_period;
  (* slack is linear in the clock period, so relax by the probe's
     violation plus a margin small enough that the displaced banks
     cross zero at the derated corner but not at typical; take the
     first margin where the loop both fires (>= 1 round) and closes
     worst-corner timing *)
  let attempt margin =
    let period = base_period -. Float.min wns0 0.0 +. margin in
    let first, r, wall, drift = run_attempt ~period ~recover:budget in
    Printf.printf
      "  margin %5.1f drift %5.1f: period %7.1f, %d merges then rounds %d, \
       splits %3d, final wns %8.1f\n%!"
      margin drift period first.Flow.n_merges r.Flow.recover_rounds
      r.Flow.recover_splits r.Flow.after.Mbr_core.Metrics.wns;
    {
      rc_profile = p.P.name;
      rc_registers = p.P.n_registers;
      rc_corners = Mbr_sta.Corner.set_to_string corners;
      rc_period = period;
      rc_margin = margin;
      rc_drift_um = drift;
      rc_budget = budget;
      rc_result = r;
      rc_wall_s = wall;
      rc_converged = r.Flow.after.Mbr_core.Metrics.wns >= 0.0;
    }
  in
  let rec search = function
    | [] -> failwith "section_recovery: empty scenario ladder"
    | [ m ] -> attempt m
    | m :: rest ->
      let row = attempt m in
      if row.rc_converged && row.rc_result.Flow.recover_rounds >= 1 then row
      else search rest
  in
  let row = search [ 0.0; 2.0; 5.0; -3.0; 8.0; 12.0 ] in
  let r = row.rc_result in
  Printf.printf
    "period %.1f ps (margin %.1f, drift %.1f um): %d recovery rounds, \
     %d registers split, %d merges, converged=%b, %.2f s\n"
    row.rc_period row.rc_margin row.rc_drift_um r.Flow.recover_rounds
    r.Flow.recover_splits r.Flow.n_merges row.rc_converged row.rc_wall_s;
  List.iter
    (fun (name, wns, tns) ->
      Printf.printf "  corner %-10s wns %8.1f  tns %10.1f\n" name wns tns)
    r.Flow.after.Mbr_core.Metrics.corners;
  row

let json_corners (m : Mbr_core.Metrics.t) =
  let module J = Mbr_obs.Json in
  J.Arr
    (List.map
       (fun (name, wns, tns) ->
         J.Obj [ ("name", J.Str name); ("wns", J.Num wns); ("tns", J.Num tns) ])
       m.Mbr_core.Metrics.corners)

let recovery_to_json (row : recovery_row) =
  let module J = Mbr_obs.Json in
  let num f = J.Num f in
  let int i = J.Num (float_of_int i) in
  let r = row.rc_result in
  J.Obj
    [
      ("profile", J.Str row.rc_profile);
      ("registers", int row.rc_registers);
      ("corners", J.Str row.rc_corners);
      ("clock_period_ps", num row.rc_period);
      ("margin_ps", num row.rc_margin);
      ("drift_um", num row.rc_drift_um);
      ("recover_budget", int row.rc_budget);
      ("recover_rounds", int r.Flow.recover_rounds);
      ("recover_splits", int r.Flow.recover_splits);
      ("n_merges", int r.Flow.n_merges);
      ("converged", J.Bool row.rc_converged);
      ("wall_s", num row.rc_wall_s);
      ("before_corners", json_corners r.Flow.before);
      ("after_corners", json_corners r.Flow.after);
    ]

(* `--soak` / `--recover` refresh only their section of an existing
   BENCH.json: parse, bump the schema, splice the section in, pretty
   print. The heavyweight sections keep their recorded numbers. *)
let patch_bench_json ~path ~key value =
  let module J = Mbr_obs.Json in
  let old = In_channel.with_open_text path In_channel.input_all in
  match J.of_string old with
  | J.Obj kvs ->
    let kvs =
      List.map
        (fun (k, v) -> if k = "schema_version" then (k, J.Num 9.0) else (k, v))
        (List.filter (fun (k, _) -> k <> key) kvs)
      @ [ (key, value) ]
    in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (J.to_string_pretty (J.Obj kvs)));
    Printf.printf "\npatched %s (schema_version 9, %s refreshed)\n" path key
  | _ -> failwith (path ^ ": not a JSON object")

(* ---- BENCH.json: the numbers above, machine-readable ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

(* Counters-only embed of a registry snapshot: the histograms are
   already summarized by the row's own fields, and counters are what
   regression tracking diffs. *)
let json_of_counters (snap : Mbr_obs.Metrics.snapshot) =
  Mbr_obs.Json.to_string
    (Mbr_obs.Json.Obj
       (List.map
          (fun (k, v) -> (k, Mbr_obs.Json.Num (float_of_int v)))
          snap.Mbr_obs.Metrics.counters))

(* Recovery rounds re-run flow stages, so stage_times may carry the
   same stage name several times; a JSON dict wants one key per stage,
   so sum repeats (first-occurrence order preserved). *)
let aggregate_stages stage_times =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, t) ->
      match Hashtbl.find_opt tbl name with
      | None ->
        order := name :: !order;
        Hashtbl.replace tbl name t
      | Some prev -> Hashtbl.replace tbl name (prev +. t))
    stage_times;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order

let emit_bench_json ~path ~kernels ~scaling ~alloc_scaling ~eco_rows ~soak
    ~recovery ~telemetry_overhead =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema_version\": 9,\n";
  p "  \"generated_by\": \"bench/main.exe\",\n";
  (* core count up front: speedup and degraded flags below are only
     interpretable against the parallelism the host actually offers *)
  p "  \"cores\": %d,\n" (Mbr_util.Pool.recommended_jobs ());
  p "  \"kernels\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      p "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r2\": %s}%s\n"
        (json_escape name) (json_float ns)
        (match r2 with Some v -> json_float v | None -> "null")
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  p "  ],\n";
  p "  \"flow_scaling\": [\n";
  List.iteri
    (fun i row ->
      let r = row.sc_result in
      let stages =
        String.concat ", "
          (List.map
             (fun (name, t) ->
               Printf.sprintf "\"%s\": %s" (json_escape name) (json_float t))
             (aggregate_stages r.Mbr_core.Flow.stage_times))
      in
      let corners =
        String.concat ", "
          (List.map
             (fun (name, wns, tns) ->
               Printf.sprintf "{\"name\": \"%s\", \"wns\": %s, \"tns\": %s}"
                 (json_escape name) (json_float wns) (json_float tns))
             r.Mbr_core.Flow.after.Mbr_core.Metrics.corners)
      in
      (* best measured speedup of the parallel allocate sweep at the
         same scale, when section 5b ran it *)
      let speedup =
        List.fold_left
          (fun acc a ->
            if a.as_scale = row.sc_scale && a.as_jobs > 1 then
              match acc with
              | Some best when best >= a.as_speedup -> acc
              | Some _ | None -> Some a.as_speedup
            else acc)
          None alloc_scaling
      in
      let bt = r.Mbr_core.Flow.alloc_block_times in
      (* v9: the skew stage's own counters surfaced per row, so ladder
         diffs see frontier growth without digging into "metrics" *)
      let skew_counter name =
        match
          List.assoc_opt name row.sc_metrics.Mbr_obs.Metrics.counters
        with
        | Some v -> v
        | None -> 0
      in
      p
        "    {\"profile\": \"%s\", \"scale\": %s, \"registers\": %d, \
         \"cells\": %d, \"wall_s\": %s, \"rss_mb\": %s, \"jobs\": %d, \
         \"allocate_parallel_speedup\": %s, \"block_solve_mean_s\": %s, \
         \"block_solve_max_s\": %s, \"sta_full_builds\": %d, \
         \"sta_refreshes\": %d, \"recover_rounds\": %d, \
         \"recover_splits\": %d, \"skew_frontier_pins\": %d, \
         \"skew_level_passes\": %d, \"skew_corner_par\": %d, \
         \"corners\": [%s], \"stages\": {%s}, \
         \"metrics\": %s}%s\n"
        (json_escape row.sc_profile) (json_float row.sc_scale)
        row.sc_registers row.sc_cells
        (json_float r.Mbr_core.Flow.runtime_s)
        (match row.sc_rss_mb with Some m -> json_float m | None -> "null")
        r.Mbr_core.Flow.alloc_jobs
        (match speedup with Some v -> json_float v | None -> "null")
        (json_float bt.Mbr_core.Allocate.mean_s)
        (json_float bt.Mbr_core.Allocate.max_s)
        r.Mbr_core.Flow.sta_full_builds r.Mbr_core.Flow.sta_refreshes
        r.Mbr_core.Flow.recover_rounds r.Mbr_core.Flow.recover_splits
        (skew_counter "sta.skew.frontier_pins")
        (skew_counter "sta.skew.level_passes")
        (skew_counter "sta.skew.corner_par")
        corners stages
        (json_of_counters row.sc_metrics)
        (if i = List.length scaling - 1 then "" else ","))
    scaling;
  p "  ],\n";
  p "  \"allocate_scaling\": [\n";
  List.iteri
    (fun i a ->
      p
        "    {\"profile\": \"%s\", \"scale\": %s, \"jobs\": %d, \
         \"allocate_s\": %s, \"speedup\": %s, \"identical\": %b, \
         \"degraded\": %b, \"block_solve_mean_s\": %s, \
         \"block_solve_max_s\": %s}%s\n"
        (json_escape a.as_profile) (json_float a.as_scale) a.as_jobs
        (json_float a.as_time_s) (json_float a.as_speedup) a.as_identical
        a.as_degraded
        (json_float a.as_block_mean_s) (json_float a.as_block_max_s)
        (if i = List.length alloc_scaling - 1 then "" else ","))
    alloc_scaling;
  p "  ],\n";
  p "  \"eco_recompose\": [\n";
  List.iteri
    (fun i e ->
      p
        "    {\"profile\": \"%s\", \"scale\": %s, \"round\": %d, \
         \"edits\": %d, \"blocks\": %d, \"blocks_resolved\": %d, \
         \"blocks_reused\": %d, \"full_run_s\": %s, \"recompose_s\": %s, \
         \"identical\": %b, \"metrics\": %s}%s\n"
        (json_escape e.ec_profile) (json_float e.ec_scale) e.ec_round
        e.ec_edits e.ec_blocks e.ec_resolved e.ec_reused
        (json_float e.ec_full_s) (json_float e.ec_recompose_s) e.ec_identical
        (json_of_counters e.ec_metrics)
        (if i = List.length eco_rows - 1 then "" else ","))
    eco_rows;
  p "  ],\n";
  p "  \"service_soak\": %s,\n" (Mbr_obs.Json.to_string soak);
  p "  \"telemetry_overhead\": %s,\n" (Mbr_obs.Json.to_string telemetry_overhead);
  p "  \"recovery_loop\": %s\n" (Mbr_obs.Json.to_string recovery);
  p "}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let () =
  Mbr_util.Runtime.tune ();
  Mbr_obs.Log.setup ();
  (* counters on for the whole harness; each reporting row resets and
     snapshots around the run it describes *)
  Mbr_obs.Metrics.enable ();
  if Array.exists (fun a -> a = "--smoke") Sys.argv then smoke ()
  else if Array.exists (fun a -> a = "--soak") Sys.argv then begin
    (* service soak only; splice the result into the existing
       BENCH.json rather than rerunning the multi-minute sections *)
    let r = section_soak () in
    patch_bench_json ~path:"BENCH.json" ~key:"service_soak" (soak_to_json r)
  end
  else if Array.exists (fun a -> a = "--recover") Sys.argv then begin
    (* recovery loop only; same splice-in-place protocol as --soak *)
    let row = section_recovery () in
    patch_bench_json ~path:"BENCH.json" ~key:"recovery_loop"
      (recovery_to_json row)
  end
  else if Array.exists (fun a -> a = "--telemetry-overhead") Sys.argv then begin
    (* on/off soak pair only; same splice-in-place protocol *)
    let tv = section_telemetry_overhead () in
    patch_bench_json ~path:"BENCH.json" ~key:"telemetry_overhead"
      (telemetry_overhead_to_json tv)
  end
  else begin
    Printf.printf "MBR composition benchmark harness (DAC'17 reproduction)\n";
    section_tables ();
    section_ablations ();
    let scaling = section_scaling () in
    let alloc_scaling = section_allocate_scaling () in
    let eco_rows = section_eco () in
    let kernels = section_kernels () in
    let soak = section_soak () in
    let telemetry_overhead = section_telemetry_overhead () in
    let recovery = section_recovery () in
    emit_bench_json ~path:"BENCH.json" ~kernels ~scaling ~alloc_scaling
      ~eco_rows ~soak:(soak_to_json soak)
      ~recovery:(recovery_to_json recovery)
      ~telemetry_overhead:(telemetry_overhead_to_json telemetry_overhead);
    banner "done";
    print_endline
      "Recorded paper-vs-measured comparisons live in EXPERIMENTS.md;\n\
       the experiment-to-module map is in DESIGN.md section 4."
  end
