(* Large-scale smoke check for CI: generate a scaled D1 profile, run
   the full composition flow serially (jobs = 1) and fail loudly if
   wall time or peak RSS blow past the ceilings.

   The point is not a benchmark — BENCH.json owns the numbers — but a
   regression tripwire for the memory-and-scaling work: a quadratic
   slip in the compat graph, candidate enumeration or the STA engine
   turns a ~25 s run into minutes, and a per-pair materialization
   turns ~600 MB into many GB. The ceilings carry generous headroom
   over the measured scale-8 footprint (flow + generate ~26 s, peak
   RSS ~580 MB on a loaded 1-core host) so the check survives machine
   noise while still catching complexity-class regressions.

   The skew stage gets its own ceiling: it used to dominate large runs
   (convergence-driven per-register cone chasing), and the levelized
   batched propagation is exactly the kind of win a quadratic slip
   would silently undo while hiding inside the total wall headroom.

   Usage: scale_smoke.exe [SCALE] [WALL_CEILING_S] [RSS_CEILING_MB] [SKEW_CEILING_S]
   Defaults: 8.0, 180 s, 2048 MB, 20 s. *)

module P = Mbr_designgen.Profile
module G = Mbr_designgen.Generate

let () =
  Mbr_util.Runtime.tune ();
  let arg i default =
    if Array.length Sys.argv > i then float_of_string Sys.argv.(i) else default
  in
  let scale = arg 1 8.0 in
  let wall_ceiling = arg 2 180.0 in
  let rss_ceiling = arg 3 2048.0 in
  let skew_ceiling = arg 4 20.0 in
  let p = P.scaled P.d1 scale in
  Printf.printf "scale-smoke: scale %.1f (%d registers), jobs 1\n%!" scale
    p.P.n_registers;
  let t0 = Unix.gettimeofday () in
  let g = G.generate p in
  let r =
    Mbr_core.Flow.run ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let rss = Mbr_obs.Rss.peak_mb () in
  Printf.printf
    "scale-smoke: wall %.1f s (flow %.1f s), merges %d, peak rss %s\n%!" wall
    r.Mbr_core.Flow.runtime_s r.Mbr_core.Flow.n_merges
    (match rss with Some m -> Printf.sprintf "%.0f MB" m | None -> "n/a");
  let skew_s =
    match List.assoc_opt "skew" r.Mbr_core.Flow.stage_times with
    | Some s -> s
    | None -> 0.0
  in
  Printf.printf "scale-smoke: skew stage %.2f s\n%!" skew_s;
  let failed = ref false in
  if skew_s > skew_ceiling then begin
    Printf.printf "scale-smoke: FAIL skew stage %.2f s > ceiling %.0f s\n%!"
      skew_s skew_ceiling;
    failed := true
  end;
  if wall > wall_ceiling then begin
    Printf.printf "scale-smoke: FAIL wall %.1f s > ceiling %.0f s\n%!" wall
      wall_ceiling;
    failed := true
  end;
  (match rss with
  | Some m when m > rss_ceiling ->
    Printf.printf "scale-smoke: FAIL peak rss %.0f MB > ceiling %.0f MB\n%!" m
      rss_ceiling;
    failed := true
  | Some _ -> ()
  | None ->
    (* no /proc/self/status (non-Linux): wall ceiling still applies *)
    print_endline "scale-smoke: rss unavailable, skipping memory check");
  if r.Mbr_core.Flow.n_merges = 0 then begin
    print_endline "scale-smoke: FAIL flow produced no merges";
    failed := true
  end;
  if !failed then exit 1;
  print_endline "scale-smoke: ok"
