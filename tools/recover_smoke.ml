(* recover_smoke — CI tripwire for the compose <-> decompose recovery
   loop (the bench's section 8 scenario, pinned).

   The session composes the flat profile under the typical corner,
   then an incremental-placement pass misplaces the composed banks
   (each lands at the die corner farthest from where the flow put it)
   and sign-off widens the corner set to a cell-derated stress corner.
   The next recompose must (a) run at least one recovery round —
   splitting the worst-corner-negative banks, pinning the halves and
   re-entering the flow — and (b) converge: final worst-corner WNS
   >= 0 within the round budget.

   A control run keeps the corner set at typical through the identical
   displacement: it must recover NOTHING, proving the derate set — not
   the displacement itself — is what forces the decompose rounds.

   The recovery run executes with tracing and metrics enabled; pass
   TRACE.json METRICS.json paths to get artifacts for telemetry_check
   (which then verifies the flow.recover span and the multi-corner /
   decompose counters against them).

   Usage: recover_smoke.exe [TRACE.json METRICS.json] *)

module P = Mbr_designgen.Profile
module G = Mbr_designgen.Generate
module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module Corner = Mbr_sta.Corner
module Pl = Mbr_place.Placement
module Fp = Mbr_place.Floorplan
module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("recover-smoke: FAIL " ^ m);
      exit 1)
    fmt

let corners =
  match Corner.parse_set "typical,stress:2.0:2.0:1.2" with
  | Ok c -> c
  | Error m -> failwith m

let profile = P.flat ~seed:3

(* relax the clock so the un-composed design is clean at the stress
   corner: worst-corner convergence is achievable, hence the loop's to
   win or lose *)
let period =
  let g = G.generate profile in
  let eng = Mbr_sta.Engine.build ~config:g.G.sta_config ~corners g.G.placement in
  Mbr_sta.Engine.analyze eng;
  let wns, _ = Mbr_sta.Timing_view.wns_tns (Mbr_sta.Timing_view.of_engine eng) in
  g.G.sta_config.Mbr_sta.Engine.clock_period -. Float.min wns 0.0

(* compose under typical, misplace the composed banks, widen the
   corner set (or not: the control), recompose with a recovery budget *)
let scenario ~widen ~recover =
  let g = G.generate profile in
  let sta_config = { g.G.sta_config with Mbr_sta.Engine.clock_period = period } in
  let options =
    {
      Flow.default_options with
      Flow.skew =
        Some { Mbr_sta.Skew.default_config with Mbr_sta.Skew.bound = 5.0 };
      Flow.corners = [| Corner.typical |];
    }
  in
  let session =
    Flow.Session.create ~options ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config ()
  in
  let first = Flow.Session.recompose session in
  let pl = Flow.Session.placement session in
  let fp = Pl.floorplan pl in
  List.iter
    (fun cid ->
      let loc = Pl.location pl cid in
      let box = Pl.footprint pl cid in
      let w = box.Rect.hx -. box.Rect.lx and h = box.Rect.hy -. box.Rect.ly in
      let far =
        List.fold_left
          (fun acc cand ->
            let p = Fp.clamp_ll fp ~w ~h cand in
            if Point.manhattan p loc > Point.manhattan acc loc then p else acc)
          loc
          [
            { Point.x = -1e9; y = -1e9 };
            { Point.x = -1e9; y = 1e9 };
            { Point.x = 1e9; y = -1e9 };
            { Point.x = 1e9; y = 1e9 };
          ]
      in
      Pl.set pl cid far)
    first.Flow.new_mbrs;
  if widen then Flow.Session.set_corners session corners;
  (first, Flow.Session.recompose ~recover session)

let () =
  let budget = 4 in
  (* control: same displacement, corner set stays typical *)
  let _, control = scenario ~widen:false ~recover:budget in
  if control.Flow.recover_rounds <> 0 then
    fail "control (typical-only) ran %d recovery rounds, want 0"
      control.Flow.recover_rounds;
  (* recovery run, traced: the artifacts feed telemetry_check *)
  Mbr_obs.Trace.enable ();
  Mbr_obs.Metrics.enable ();
  let first, r = scenario ~widen:true ~recover:budget in
  let wns = r.Flow.after.Metrics.wns in
  Printf.printf
    "recover-smoke: %d merges, then %d recovery rounds, %d registers split, \
     final worst-corner WNS %.1f ps\n"
    first.Flow.n_merges r.Flow.recover_rounds r.Flow.recover_splits wns;
  List.iter
    (fun (name, wns, tns) ->
      Printf.printf "recover-smoke:   corner %-10s wns %8.1f  tns %10.1f\n" name
        wns tns)
    r.Flow.after.Metrics.corners;
  (match Sys.argv with
  | [| _; trace; metrics |] ->
    Mbr_obs.Trace.write trace;
    Mbr_obs.Metrics.write metrics
  | _ -> ());
  if r.Flow.recover_rounds < 1 then
    fail "widened corner set forced no recovery round";
  if r.Flow.recover_splits < 1 then fail "recovery round split no register";
  if List.length r.Flow.after.Metrics.corners <> Array.length corners then
    fail "per-corner QoR rows missing (%d, want %d)"
      (List.length r.Flow.after.Metrics.corners)
      (Array.length corners);
  if wns < 0.0 then
    fail "did not converge: worst-corner WNS %.1f ps after %d rounds" wns
      r.Flow.recover_rounds;
  print_endline "recover-smoke: ok"
