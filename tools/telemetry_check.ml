(* telemetry_check — CI validator for the telemetry outputs.
   Usage: telemetry_check TRACE.json METRICS.json

   Parses both files back with Mbr_obs.Json (the independent parser,
   not the emitter) and checks the properties the observability layer
   promises:

   trace:
     - well-formed Chrome trace_event JSON: {"traceEvents": [...]},
       every event carrying name/ph/ts/pid/tid;
     - B/E stack discipline per tid: every E closes the innermost open
       B of the same name, and no span is left open at the end;
     - a "flow.recompose" span exists;
     - the Fig.-4 stage spans appear in pipeline order;
     - the stage spans cover >= 95 % of their flow.recompose span.

   metrics:
     - well-formed {"counters": {...}, ...} snapshot;
     - the counters a traced flow run must have bumped are present and
       positive (including "sta.corners": every engine build registers
       its corner set);
     - the recovery-loop and warm-start counters are present (they are
       0 on runs that never decompose or never near-hit the cache);
     - when "flow.recover_rounds" > 0, the trace must carry a
       "flow.recover" span — the loop is required to announce itself. *)

module J = Mbr_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse what path =
  match J.of_string (read_file path) with
  | j -> j
  | exception J.Parse_error m -> fail "%s %s: %s" what path m

let stage_order =
  [ "eco-reset"; "metrics-before"; "decompose"; "compat-graph";
    "blocker-index"; "allocate"; "merge"; "scan-restitch"; "skew";
    "resize"; "metrics-after" ]

type ev = { name : string; ph : string; ts : float; tid : int }

let event_of_json j =
  let str k = Option.bind (J.member k j) J.to_str in
  let num k = Option.bind (J.member k j) J.to_float in
  let int k = Option.bind (J.member k j) J.to_int in
  match (str "name", str "ph", num "ts", int "pid", int "tid") with
  | Some name, Some ph, Some ts, Some _, Some tid -> { name; ph; ts; tid }
  | _ -> fail "trace event missing name/ph/ts/pid/tid: %s" (J.to_string j)

let check_trace path =
  let j = parse "trace" path in
  let events =
    match Option.bind (J.member "traceEvents" j) J.to_list with
    | Some l -> List.map event_of_json l
    | None -> fail "trace %s: no \"traceEvents\" array" path
  in
  if events = [] then fail "trace %s: empty" path;
  (* per-tid stack discipline, accumulating span durations on close *)
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  let spans = ref [] in (* (name, tid, dur_us) of every closed span *)
  List.iter
    (fun e ->
      let s = stack e.tid in
      match e.ph with
      | "B" -> s := (e.name, e.ts) :: !s
      | "E" -> (
        match !s with
        | (name, ts0) :: rest when name = e.name ->
          s := rest;
          spans := (name, e.tid, e.ts -. ts0) :: !spans
        | (name, _) :: _ ->
          fail "tid %d: E %S closes open span %S" e.tid e.name name
        | [] -> fail "tid %d: E %S with no span open" e.tid e.name)
      | "i" -> ()
      | ph -> fail "unknown phase %S" ph)
    events;
  Hashtbl.iter
    (fun tid s ->
      match !s with
      | [] -> ()
      | (name, _) :: _ -> fail "tid %d: span %S never closed" tid name)
    stacks;
  let spans = !spans in
  let dur name =
    List.fold_left
      (fun acc (n, _, d) -> if n = name then acc +. d else acc)
      0.0 spans
  in
  let recompose_us = dur "flow.recompose" in
  if recompose_us <= 0.0 then fail "no flow.recompose span";
  (* Fig.-4 stage spans in pipeline order *)
  let stage_begins =
    List.filter_map
      (fun e ->
        if e.ph = "B" && List.mem e.name stage_order then Some e.name else None)
      events
  in
  let rec ordered order seen = match (order, seen) with
    | _, [] -> true
    | [], s :: _ -> fail "stage %S after the pipeline ended" s
    | o :: os, s :: ss ->
      if o = s then ordered os ss
      else ordered os (s :: ss) (* stage missing from this round: skip *)
  in
  (* per recompose round the stages restart; check each round's prefix *)
  let rounds =
    List.fold_left
      (fun acc s ->
        match acc with
        | cur :: rest when not (List.mem s cur) -> (s :: cur) :: rest
        | _ -> [ s ] :: acc)
      [] stage_begins
  in
  List.iter (fun round -> ignore (ordered stage_order (List.rev round))) rounds;
  if not (List.exists (fun (n, _, _) -> n = "allocate") spans) then
    fail "no allocate stage span";
  (* coverage: the eleven stage spans account for >= 95 % of recompose *)
  let stage_us =
    List.fold_left (fun acc name -> acc +. dur name) 0.0 stage_order
  in
  let coverage = stage_us /. recompose_us in
  if coverage < 0.95 then
    fail "stage spans cover %.1f %% of flow.recompose (< 95 %%)"
      (100.0 *. coverage);
  Printf.printf
    "trace OK: %d events, %d closed spans, stage coverage %.1f %%\n"
    (List.length events) (List.length spans) (100.0 *. coverage);
  spans

let check_metrics path =
  let j = parse "metrics" path in
  let counters =
    match J.member "counters" j with
    | Some o -> o
    | None -> fail "metrics %s: no \"counters\" object" path
  in
  let counter name =
    match Option.bind (J.member name counters) J.to_int with
    | Some v -> v
    | None -> fail "metrics: counter %S missing" name
  in
  List.iter
    (fun name ->
      if counter name <= 0 then fail "metrics: counter %S is 0" name)
    [ "flow.recomposes"; "ilp.solves"; "ilp.components";
      "lp.simplex_solves"; "lp.simplex_pivots"; "sta.refreshes";
      "sta.corners" ];
  (* the reduction, recovery-loop and warm-start counters must exist in
     every snapshot (their modules register them at init); they are
     legitimately 0 on designs with nothing to prune, runs that never
     decompose, or caches that never near-hit, so presence — via
     [counter]'s missing check — and non-negativity are all we
     require *)
  List.iter
    (fun name ->
      if counter name < 0 then fail "metrics: counter %S is negative" name)
    [ "ilp.dominated_pruned"; "ilp.fixed_vars"; "flow.recover_rounds";
      "decompose.requested"; "decompose.splits"; "ilp.warm_start_hits" ];
  (match
     Option.bind (J.member "histograms" j) (fun h ->
         Option.bind (J.member "alloc.block_solve_s" h) (fun hs ->
             Option.bind (J.member "count" hs) J.to_int))
   with
  | Some n when n > 0 -> ()
  | Some _ -> fail "metrics: alloc.block_solve_s histogram is empty"
  | None -> fail "metrics: alloc.block_solve_s histogram missing");
  Printf.printf "metrics OK: flow.recomposes=%d ilp.solves=%d pivots=%d\n"
    (counter "flow.recomposes") (counter "ilp.solves")
    (counter "lp.simplex_pivots");
  counter "flow.recover_rounds"

let () =
  match Sys.argv with
  | [| _; trace; metrics |] ->
    let spans = check_trace trace in
    let recover_rounds = check_metrics metrics in
    if
      recover_rounds > 0
      && not (List.exists (fun (n, _, _) -> n = "flow.recover") spans)
    then
      fail "metrics count %d recovery rounds but the trace has no \
            flow.recover span"
        recover_rounds
  | _ ->
    prerr_endline "usage: telemetry_check TRACE.json METRICS.json";
    exit 2
