(* telemetry_check — CI validator for the telemetry outputs.
   Usage: telemetry_check TRACE.json METRICS.json
          telemetry_check --prom FILE.prom [REQUIRED_FAMILY...]
          telemetry_check --events EVENTS.log

   Default mode parses both files back with Mbr_obs.Json (the
   independent parser, not the emitter) and checks the properties the
   observability layer promises:

   trace:
     - well-formed Chrome trace_event JSON: {"traceEvents": [...]},
       every event carrying name/ph/ts/pid/tid;
     - B/E stack discipline per tid: every E closes the innermost open
       B of the same name, and no span is left open at the end;
     - a "flow.recompose" span exists;
     - the Fig.-4 stage spans appear in pipeline order;
     - the stage spans cover >= 95 % of their flow.recompose span.

   metrics:
     - well-formed {"counters": {...}, ...} snapshot;
     - the counters a traced flow run must have bumped are present and
       positive (including "sta.corners": every engine build registers
       its corner set);
     - the recovery-loop and warm-start counters are present (they are
       0 on runs that never decompose or never near-hit the cache);
     - when "flow.recover_rounds" > 0, the trace must carry a
       "flow.recover" span — the loop is required to announce itself.

   --prom validates a Prometheus text-exposition file (what mbrd
   --prom-file and tools/prom_export write): metric and label names
   legal per the 0.0.4 grammar, exactly one # TYPE per family, every
   sample under a declared family, histogram buckets cumulative with a
   +Inf bucket agreeing with _count, and any REQUIRED_FAMILY arguments
   present.

   --events validates a captured progress-event stream (mbrc client
   --progress stderr): every event line well-formed with one shared
   request id, rounds and cumulative block counters non-decreasing,
   stages in Fig.-4 pipeline order within each round, and round 0
   visiting every stage. Non-JSON lines are ignored (stderr carries
   other chatter). *)

module J = Mbr_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse what path =
  match J.of_string (read_file path) with
  | j -> j
  | exception J.Parse_error m -> fail "%s %s: %s" what path m

let stage_order =
  [ "eco-reset"; "metrics-before"; "decompose"; "compat-graph";
    "blocker-index"; "allocate"; "merge"; "scan-restitch"; "skew";
    "resize"; "metrics-after" ]

type ev = { name : string; ph : string; ts : float; tid : int }

let event_of_json j =
  let str k = Option.bind (J.member k j) J.to_str in
  let num k = Option.bind (J.member k j) J.to_float in
  let int k = Option.bind (J.member k j) J.to_int in
  match (str "name", str "ph", num "ts", int "pid", int "tid") with
  | Some name, Some ph, Some ts, Some _, Some tid -> { name; ph; ts; tid }
  | _ -> fail "trace event missing name/ph/ts/pid/tid: %s" (J.to_string j)

let check_trace path =
  let j = parse "trace" path in
  let events =
    match Option.bind (J.member "traceEvents" j) J.to_list with
    | Some l -> List.map event_of_json l
    | None -> fail "trace %s: no \"traceEvents\" array" path
  in
  if events = [] then fail "trace %s: empty" path;
  (* per-tid stack discipline, accumulating span durations on close *)
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  let spans = ref [] in (* (name, tid, dur_us) of every closed span *)
  List.iter
    (fun e ->
      let s = stack e.tid in
      match e.ph with
      | "B" -> s := (e.name, e.ts) :: !s
      | "E" -> (
        match !s with
        | (name, ts0) :: rest when name = e.name ->
          s := rest;
          spans := (name, e.tid, e.ts -. ts0) :: !spans
        | (name, _) :: _ ->
          fail "tid %d: E %S closes open span %S" e.tid e.name name
        | [] -> fail "tid %d: E %S with no span open" e.tid e.name)
      | "i" -> ()
      | ph -> fail "unknown phase %S" ph)
    events;
  Hashtbl.iter
    (fun tid s ->
      match !s with
      | [] -> ()
      | (name, _) :: _ -> fail "tid %d: span %S never closed" tid name)
    stacks;
  let spans = !spans in
  let dur name =
    List.fold_left
      (fun acc (n, _, d) -> if n = name then acc +. d else acc)
      0.0 spans
  in
  let recompose_us = dur "flow.recompose" in
  if recompose_us <= 0.0 then fail "no flow.recompose span";
  (* Fig.-4 stage spans in pipeline order *)
  let stage_begins =
    List.filter_map
      (fun e ->
        if e.ph = "B" && List.mem e.name stage_order then Some e.name else None)
      events
  in
  let rec ordered order seen = match (order, seen) with
    | _, [] -> true
    | [], s :: _ -> fail "stage %S after the pipeline ended" s
    | o :: os, s :: ss ->
      if o = s then ordered os ss
      else ordered os (s :: ss) (* stage missing from this round: skip *)
  in
  (* per recompose round the stages restart; check each round's prefix *)
  let rounds =
    List.fold_left
      (fun acc s ->
        match acc with
        | cur :: rest when not (List.mem s cur) -> (s :: cur) :: rest
        | _ -> [ s ] :: acc)
      [] stage_begins
  in
  List.iter (fun round -> ignore (ordered stage_order (List.rev round))) rounds;
  if not (List.exists (fun (n, _, _) -> n = "allocate") spans) then
    fail "no allocate stage span";
  (* coverage: the eleven stage spans account for >= 95 % of recompose *)
  let stage_us =
    List.fold_left (fun acc name -> acc +. dur name) 0.0 stage_order
  in
  let coverage = stage_us /. recompose_us in
  if coverage < 0.95 then
    fail "stage spans cover %.1f %% of flow.recompose (< 95 %%)"
      (100.0 *. coverage);
  Printf.printf
    "trace OK: %d events, %d closed spans, stage coverage %.1f %%\n"
    (List.length events) (List.length spans) (100.0 *. coverage);
  spans

let check_metrics path =
  let j = parse "metrics" path in
  let counters =
    match J.member "counters" j with
    | Some o -> o
    | None -> fail "metrics %s: no \"counters\" object" path
  in
  let counter name =
    match Option.bind (J.member name counters) J.to_int with
    | Some v -> v
    | None -> fail "metrics: counter %S missing" name
  in
  List.iter
    (fun name ->
      if counter name <= 0 then fail "metrics: counter %S is 0" name)
    [ "flow.recomposes"; "ilp.solves"; "ilp.components";
      "lp.simplex_solves"; "lp.simplex_pivots"; "sta.refreshes";
      "sta.corners" ];
  (* the reduction, recovery-loop and warm-start counters must exist in
     every snapshot (their modules register them at init); they are
     legitimately 0 on designs with nothing to prune, runs that never
     decompose, or caches that never near-hit, so presence — via
     [counter]'s missing check — and non-negativity are all we
     require *)
  List.iter
    (fun name ->
      if counter name < 0 then fail "metrics: counter %S is negative" name)
    [ "ilp.dominated_pruned"; "ilp.fixed_vars"; "flow.recover_rounds";
      "decompose.requested"; "decompose.splits"; "ilp.warm_start_hits";
      "trace.dropped"; "sta.skew.frontier_pins"; "sta.skew.level_passes";
      "sta.skew.corner_par" ];
  (match
     Option.bind (J.member "histograms" j) (fun h ->
         Option.bind (J.member "alloc.block_solve_s" h) (fun hs ->
             Option.bind (J.member "count" hs) J.to_int))
   with
  | Some n when n > 0 -> ()
  | Some _ -> fail "metrics: alloc.block_solve_s histogram is empty"
  | None -> fail "metrics: alloc.block_solve_s histogram missing");
  Printf.printf "metrics OK: flow.recomposes=%d ilp.solves=%d pivots=%d\n"
    (counter "flow.recomposes") (counter "ilp.solves")
    (counter "lp.simplex_pivots");
  counter "flow.recover_rounds"

(* ---- --prom: Prometheus text-exposition validation ---- *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

let parse_sample lineno line =
  let n = String.length line in
  let bad m = fail "prom line %d: %s (%s)" lineno m line in
  let i = ref 0 in
  while !i < n && line.[!i] <> '{' && line.[!i] <> ' ' do incr i done;
  let name = String.sub line 0 !i in
  if not (Mbr_obs.Prom.is_legal_metric_name name) then
    bad "illegal metric name";
  let labels =
    if !i < n && line.[!i] = '{' then begin
      incr i;
      let acc = ref [] in
      let rec pairs () =
        let k0 = !i in
        while !i < n && line.[!i] <> '=' do incr i done;
        if !i >= n then bad "unterminated label set";
        let k = String.sub line k0 (!i - k0) in
        if not (Mbr_obs.Prom.is_legal_label_name k) then
          bad ("illegal label name " ^ k);
        incr i;
        if !i >= n || line.[!i] <> '"' then bad "label value must be quoted";
        incr i;
        let buf = Buffer.create 16 in
        let rec value () =
          if !i >= n then bad "unterminated label value";
          match line.[!i] with
          | '"' -> incr i
          | '\\' ->
            if !i + 1 >= n then bad "dangling backslash";
            (match line.[!i + 1] with
            | '\\' -> Buffer.add_char buf '\\'
            | '"' -> Buffer.add_char buf '"'
            | 'n' -> Buffer.add_char buf '\n'
            | c -> bad (Printf.sprintf "bad escape \\%c" c));
            i := !i + 2;
            value ()
          | c ->
            Buffer.add_char buf c;
            incr i;
            value ()
        in
        value ();
        acc := (k, Buffer.contents buf) :: !acc;
        if !i < n && line.[!i] = ',' then begin
          incr i;
          pairs ()
        end
        else if !i < n && line.[!i] = '}' then incr i
        else bad "expected ',' or '}' in label set"
      in
      pairs ();
      List.rev !acc
    end
    else []
  in
  if !i >= n || line.[!i] <> ' ' then bad "expected space before value";
  let value =
    match String.trim (String.sub line (!i + 1) (n - !i - 1)) with
    | "+Inf" -> infinity
    | "-Inf" -> neg_infinity
    | "NaN" -> nan
    | s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> bad "unparseable sample value")
  in
  { s_name = name; s_labels = labels; s_value = value }

let label_key labels =
  String.concat ";"
    (List.map (fun (k, v) -> k ^ "=" ^ v) (List.sort compare labels))

let check_prom path required =
  let lines = String.split_on_char '\n' (read_file path) in
  let types : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let samples = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then (
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; fam; kind ] ->
          if not (Mbr_obs.Prom.is_legal_metric_name fam) then
            fail "prom line %d: illegal family name %S" lineno fam;
          if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
            fail "prom line %d: unknown type %S for %S" lineno kind fam;
          if Hashtbl.mem types fam then
            fail "prom line %d: duplicate # TYPE for %S" lineno fam;
          Hashtbl.add types fam kind
        | _ -> fail "prom line %d: malformed # TYPE line" lineno)
      else if line.[0] = '#' then ()
      else samples := (lineno, parse_sample lineno line) :: !samples)
    lines;
  let samples = List.rev !samples in
  if samples = [] then fail "prom %s: no samples" path;
  (* every sample belongs to a declared family (histogram samples via
     their _bucket/_sum/_count suffix) *)
  let family_of s =
    if Hashtbl.mem types s.s_name then Some s.s_name
    else
      List.find_map
        (fun suf ->
          let ls = String.length suf and ln = String.length s.s_name in
          if ln > ls && String.sub s.s_name (ln - ls) ls = suf then
            let fam = String.sub s.s_name 0 (ln - ls) in
            if Hashtbl.find_opt types fam = Some "histogram" then Some fam
            else None
          else None)
        [ "_bucket"; "_sum"; "_count" ]
  in
  List.iter
    (fun (lineno, s) ->
      if family_of s = None then
        fail "prom line %d: sample %S under no # TYPE family" lineno s.s_name)
    samples;
  (* histogram discipline, per family x label-set (minus le): buckets
     cumulative in file order, last bucket +Inf, +Inf = _count *)
  Hashtbl.iter
    (fun fam kind ->
      if kind = "histogram" then begin
        let groups : (string, (string * float) list) Hashtbl.t =
          Hashtbl.create 4
        in
        List.iter
          (fun (lineno, s) ->
            if s.s_name = fam ^ "_bucket" then begin
              let le =
                match List.assoc_opt "le" s.s_labels with
                | Some le -> le
                | None ->
                  fail "prom line %d: %s_bucket without le label" lineno fam
              in
              let key = label_key (List.remove_assoc "le" s.s_labels) in
              Hashtbl.replace groups key
                ((le, s.s_value)
                :: Option.value (Hashtbl.find_opt groups key) ~default:[])
            end)
          samples;
        if Hashtbl.length groups = 0 then
          fail "prom: histogram %s has no buckets" fam;
        Hashtbl.iter
          (fun key les_rev ->
            let les = List.rev les_rev in
            ignore
              (List.fold_left
                 (fun prev (le, v) ->
                   if v < prev then
                     fail "prom: %s{%s} bucket le=%s not cumulative" fam key le;
                   v)
                 0.0 les);
            match les_rev with
            | ("+Inf", vinf) :: _ -> (
              let count =
                List.find_opt
                  (fun (_, s) ->
                    s.s_name = fam ^ "_count" && label_key s.s_labels = key)
                  samples
              in
              match count with
              | Some (_, s) when s.s_value = vinf -> ()
              | Some _ ->
                fail "prom: %s{%s} +Inf bucket disagrees with _count" fam key
              | None -> fail "prom: %s{%s} has buckets but no _count" fam key)
            | _ -> fail "prom: %s{%s} last bucket is not +Inf" fam key)
          groups
      end)
    types;
  List.iter
    (fun fam ->
      if not (Hashtbl.mem types fam) then
        fail "prom %s: required family %S missing" path fam)
    required;
  Printf.printf "prom OK: %d families, %d samples%s\n" (Hashtbl.length types)
    (List.length samples)
    (if required = [] then ""
     else Printf.sprintf " (%d required present)" (List.length required))

(* ---- --events: progress-event stream validation ---- *)

type pev = {
  e_id : int;
  e_stage : string;
  e_round : int;
  e_resolved : int;
  e_total : int;
}

let check_events path =
  let lines = String.split_on_char '\n' (read_file path) in
  let events =
    List.concat_map
      (fun line ->
        if String.length line = 0 || line.[0] <> '{' then []
        else
          match J.of_string_result line with
          | Error _ -> [] (* stderr chatter that merely starts with '{' *)
          | Ok j ->
            if J.member "event" j = None then []
            else
              let str k = Option.bind (J.member k j) J.to_str in
              let int k = Option.bind (J.member k j) J.to_int in
              (match
                 ( str "event", int "id", str "stage", int "round",
                   int "blocks_resolved", int "blocks_total" )
               with
              | Some "progress", Some id, Some stage, Some round, Some res,
                Some tot ->
                [
                  {
                    e_id = id;
                    e_stage = stage;
                    e_round = round;
                    e_resolved = res;
                    e_total = tot;
                  };
                ]
              | _ -> fail "events: malformed progress event: %s" line))
      lines
  in
  if events = [] then fail "events %s: no progress events" path;
  let id0 = (List.hd events).e_id in
  List.iter
    (fun e ->
      if e.e_id <> id0 then fail "events: mixed request ids %d and %d" id0 e.e_id;
      if not (List.mem e.e_stage stage_order) then
        fail "events: unknown stage %S" e.e_stage;
      if e.e_resolved < 0 || e.e_total < 0 || e.e_resolved > e.e_total then
        fail "events: blocks_resolved %d / blocks_total %d inconsistent"
          e.e_resolved e.e_total)
    events;
  (* rounds and the cumulative block counters never go backwards *)
  ignore
    (List.fold_left
       (fun (pr, pres, ptot) e ->
         if e.e_round < pr then
           fail "events: round went backwards (%d after %d)" e.e_round pr;
         if e.e_resolved < pres then
           fail "events: blocks_resolved went backwards (%d after %d)"
             e.e_resolved pres;
         if e.e_total < ptot then
           fail "events: blocks_total went backwards (%d after %d)" e.e_total
             ptot;
         (e.e_round, e.e_resolved, e.e_total))
       (0, 0, 0) events);
  (* per-round stage order follows Fig. 4; the main pass (round 0)
     enters every stage *)
  let rounds : (int, string list) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun e ->
      Hashtbl.replace rounds e.e_round
        (e.e_stage
        :: Option.value (Hashtbl.find_opt rounds e.e_round) ~default:[]))
    events;
  Hashtbl.iter
    (fun round stages_rev ->
      let rec ordered order seen =
        match (order, seen) with
        | _, [] -> ()
        | [], s :: _ ->
          fail "events: round %d: stage %S out of pipeline order" round s
        | o :: os, s :: ss ->
          if o = s then ordered os ss else ordered os (s :: ss)
      in
      ordered stage_order (List.rev stages_rev))
    rounds;
  let round0 =
    Option.value (Hashtbl.find_opt rounds 0) ~default:[]
  in
  List.iter
    (fun st ->
      if not (List.mem st round0) then
        fail "events: round 0 never entered stage %S" st)
    stage_order;
  Printf.printf "events OK: %d events, %d round(s), request id %d\n"
    (List.length events) (Hashtbl.length rounds) id0

let () =
  match Array.to_list Sys.argv with
  | _ :: "--prom" :: path :: required -> check_prom path required
  | [ _; "--events"; path ] -> check_events path
  | [ _; trace; metrics ] ->
    let spans = check_trace trace in
    let recover_rounds = check_metrics metrics in
    if
      recover_rounds > 0
      && not (List.exists (fun (n, _, _) -> n = "flow.recover") spans)
    then
      fail "metrics count %d recovery rounds but the trace has no \
            flow.recover span"
        recover_rounds
  | _ ->
    prerr_endline
      "usage: telemetry_check TRACE.json METRICS.json\n\
      \       telemetry_check --prom FILE.prom [REQUIRED_FAMILY...]\n\
      \       telemetry_check --events EVENTS.log";
    exit 2
