(* prom_export — metrics snapshot JSON -> Prometheus text exposition.
   Usage: prom_export METRICS.json   (or - for stdin)

   The file is whatever `mbrc --metrics`, the daemon's query-metrics /
   telemetry verbs, or Metrics.write produced. Parsing goes through
   Metrics.snapshot_of_json, so a file this tool accepts is exactly a
   file the telemetry clients accept; rendering goes through
   Prom.render, the same code path as mbrd --prom-file. Exit 1 with a
   message on malformed input. *)

let read_all ic =
  let buf = Buffer.create 65536 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let () =
  let path =
    match Sys.argv with
    | [| _ |] -> "-"
    | [| _; p |] -> p
    | _ ->
      prerr_endline "usage: prom_export [METRICS.json | -]";
      exit 2
  in
  let text =
    if path = "-" then read_all stdin
    else begin
      let ic = try open_in_bin path with Sys_error m -> prerr_endline m; exit 1 in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    end
  in
  match Mbr_obs.Json.of_string_result text with
  | Error e ->
    Printf.eprintf "prom_export: %s: %s\n" path (Mbr_obs.Json.error_to_string e);
    exit 1
  | Ok j -> (
    (* accept both a bare snapshot and a query-metrics/telemetry
       response payload that wraps it under "metrics" *)
    let j = match Mbr_obs.Json.member "metrics" j with Some m -> m | None -> j in
    match Mbr_obs.Metrics.snapshot_of_json j with
    | Error m ->
      Printf.eprintf "prom_export: %s: %s\n" path m;
      exit 1
    | Ok snap -> print_string (Mbr_obs.Prom.render snap))
