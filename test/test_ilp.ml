(* Tests for Mbr_ilp.Set_partition: known instances, infeasibility,
   weight-infinity filtering, node limits, and a property test against
   the exhaustive oracle. *)

module Sp = Mbr_ilp.Set_partition

let check = Alcotest.(check bool)

let checkf = Alcotest.(check (float 1e-9))

let cand w elems = { Sp.weight = w; elems }

let solve p = Sp.solve p

let test_singletons_only () =
  let p =
    { Sp.n_elems = 3; candidates = [| cand 1.0 [ 0 ]; cand 1.0 [ 1 ]; cand 1.0 [ 2 ] |] }
  in
  let r = solve p in
  check "optimal" true (r.Sp.status = Sp.Optimal);
  checkf "cost" 3.0 r.Sp.cost;
  Alcotest.(check (list int)) "all chosen" [ 0; 1; 2 ] r.Sp.chosen

let test_merge_wins () =
  (* merging both elements costs 0.5 < 2 singletons *)
  let p =
    {
      Sp.n_elems = 2;
      candidates = [| cand 1.0 [ 0 ]; cand 1.0 [ 1 ]; cand 0.5 [ 0; 1 ] |];
    }
  in
  let r = solve p in
  checkf "cost" 0.5 r.Sp.cost;
  Alcotest.(check (list int)) "merge chosen" [ 2 ] r.Sp.chosen

let test_blocked_merge_loses () =
  (* the paper's weight logic: a pair with one blocker costs 2*2^1 = 4 >
     two singletons (2.0), so the ILP keeps the registers separate *)
  let p =
    {
      Sp.n_elems = 2;
      candidates = [| cand 1.0 [ 0 ]; cand 1.0 [ 1 ]; cand 4.0 [ 0; 1 ] |];
    }
  in
  let r = solve p in
  checkf "cost" 2.0 r.Sp.cost;
  Alcotest.(check (list int)) "singletons chosen" [ 0; 1 ] r.Sp.chosen

let test_paper_fig3_selection () =
  (* Fig. 3 without incomplete MBRs: elements A=0 B=1 C=2 D=3 E=4 F=5.
     Weights from the paper; optimum = {B,F} + {A,C,D} + E = 1/3+1/3+1. *)
  let p =
    {
      Sp.n_elems = 6;
      candidates =
        [|
          cand 1.0 [ 0 ];
          cand 1.0 [ 1 ];
          cand 1.0 [ 2 ];
          cand 1.0 [ 3 ];
          cand 1.0 [ 4 ];
          cand 1.0 [ 5 ];
          cand 0.5 [ 0; 1 ] (* AB *);
          cand 0.5 [ 0; 3 ] (* AD *);
          cand 0.5 [ 0; 2 ] (* AC *);
          cand 4.0 [ 1; 2 ] (* BC, blocked by D *);
          cand 0.5 [ 1; 3 ] (* BD *);
          cand 0.5 [ 2; 3 ] (* CD *);
          cand (1.0 /. 3.0) [ 1; 5 ] (* BF *);
          cand (1.0 /. 3.0) [ 2; 5 ] (* CF *);
          cand (1.0 /. 3.0) [ 0; 1; 3 ] (* ABD *);
          cand (1.0 /. 3.0) [ 1; 2; 3 ] (* BCD *);
          cand 6.0 [ 0; 1; 2 ] (* ABC, blocked by D *);
          cand (1.0 /. 3.0) [ 0; 3; 2 ] (* ADC *);
          cand 0.25 [ 0; 1; 2; 3 ] (* ABCD *);
          cand 8.0 [ 1; 2; 5 ] (* BCF, blocked *);
        |];
    }
  in
  let r = solve p in
  check "optimal" true (r.Sp.status = Sp.Optimal);
  checkf "cost = 1/3 + 1/3 + 1" (1.0 +. (2.0 /. 3.0)) r.Sp.cost;
  (* the chosen set must cover each element exactly once *)
  let covered = List.concat_map (fun i -> p.Sp.candidates.(i).Sp.elems) r.Sp.chosen in
  Alcotest.(check (list int)) "exact cover" [ 0; 1; 2; 3; 4; 5 ]
    (List.sort compare covered)

let test_infeasible_uncovered () =
  let p = { Sp.n_elems = 2; candidates = [| cand 1.0 [ 0 ] |] } in
  check "infeasible" true ((solve p).Sp.status = Sp.Infeasible)

let test_infinite_weight_skipped () =
  let p =
    { Sp.n_elems = 1; candidates = [| cand infinity [ 0 ]; cand 2.0 [ 0 ] |] }
  in
  let r = solve p in
  checkf "finite candidate used" 2.0 r.Sp.cost;
  Alcotest.(check (list int)) "index preserved" [ 1 ] r.Sp.chosen

let test_conflicting_merges () =
  (* two overlapping pairs: only one can be chosen *)
  let p =
    {
      Sp.n_elems = 3;
      candidates =
        [|
          cand 1.0 [ 0 ]; cand 1.0 [ 1 ]; cand 1.0 [ 2 ];
          cand 0.5 [ 0; 1 ]; cand 0.5 [ 1; 2 ];
        |];
    }
  in
  let r = solve p in
  checkf "cost 1.5" 1.5 r.Sp.cost

let test_duplicate_elems_deduped () =
  let p = { Sp.n_elems = 2; candidates = [| cand 0.7 [ 0; 0; 1; 1 ] |] } in
  let r = solve p in
  checkf "cost" 0.7 r.Sp.cost

let test_empty_problem () =
  let r = solve { Sp.n_elems = 0; candidates = [||] } in
  check "optimal empty" true (r.Sp.status = Sp.Optimal);
  checkf "zero cost" 0.0 r.Sp.cost

let test_node_limit () =
  (* tiny node limit still returns a feasible incumbent *)
  let n = 12 in
  let singles = List.init n (fun i -> cand 1.0 [ i ]) in
  let pairs =
    List.concat
      (List.init n (fun i ->
           List.filteri (fun j _ -> j > i) (List.init n (fun j -> cand 0.6 [ i; j ]))))
  in
  let p = { Sp.n_elems = n; candidates = Array.of_list (singles @ pairs) } in
  let r = Sp.solve ~node_limit:5 ~lp_bound:false p in
  check "feasible or optimal" true (r.Sp.status <> Sp.Infeasible)

let test_node_limit_incumbent () =
  (* the limit trips at the very first node: the result must still be
     the seeded greedy(+1-swap) incumbent — a real exact cover with a
     finite cost — never a Feasible with nothing chosen. The instance
     is built so greedy's first pick ({1,2} at share 0.2) conflicts
     with the optimal pairing {0,1}+{2,3}, forcing a non-trivial
     incumbent while the bound (1.5 < incumbent) keeps the root from
     proving optimality outright. *)
  let p =
    {
      Sp.n_elems = 4;
      candidates =
        [|
          cand 1.0 [ 0 ]; cand 1.0 [ 1 ]; cand 1.0 [ 2 ]; cand 1.0 [ 3 ];
          cand 1.1 [ 0; 1 ]; cand 1.1 [ 2; 3 ]; cand 0.4 [ 1; 2 ];
        |];
    }
  in
  let r = Sp.solve ~node_limit:1 ~lp_bound:false p in
  check "feasible, not proven" true (r.Sp.status = Sp.Feasible);
  check "non-empty chosen" true (r.Sp.chosen <> []);
  check "finite cost" true (Float.is_finite r.Sp.cost);
  let covered = List.concat_map (fun i -> p.Sp.candidates.(i).Sp.elems) r.Sp.chosen in
  Alcotest.(check (list int)) "exact cover" [ 0; 1; 2; 3 ] (List.sort compare covered);
  checkf "cost = sum of chosen weights"
    (List.fold_left
       (fun acc i -> acc +. p.Sp.candidates.(i).Sp.weight)
       0.0 r.Sp.chosen)
    r.Sp.cost

(* ---- cancellation (shares the node-limit contract) ---- *)

let test_cancel_keeps_incumbent () =
  (* a token tripping at the very first check behaves like node_limit 0:
     the greedy(+1-swap) incumbent comes back as a real exact cover,
     never an empty Feasible. Same instance as the node-limit test. *)
  let p =
    {
      Sp.n_elems = 4;
      candidates =
        [|
          cand 1.0 [ 0 ]; cand 1.0 [ 1 ]; cand 1.0 [ 2 ]; cand 1.0 [ 3 ];
          cand 1.1 [ 0; 1 ]; cand 1.1 [ 2; 3 ]; cand 0.4 [ 1; 2 ];
        |];
    }
  in
  let t = Mbr_util.Cancel.after_checks 1 in
  let r = Sp.solve ~lp_bound:false ~cancel:t p in
  check "token tripped" true (Mbr_util.Cancel.cancelled t);
  check "feasible, not proven" true (r.Sp.status = Sp.Feasible);
  check "non-empty chosen" true (r.Sp.chosen <> []);
  check "finite cost" true (Float.is_finite r.Sp.cost);
  let covered = List.concat_map (fun i -> p.Sp.candidates.(i).Sp.elems) r.Sp.chosen in
  Alcotest.(check (list int)) "exact cover" [ 0; 1; 2; 3 ] (List.sort compare covered)

let test_cancel_pre_tripped () =
  (* cancelling before the solve even starts = a zero node budget *)
  let p =
    {
      Sp.n_elems = 3;
      candidates =
        [|
          cand 1.0 [ 0 ]; cand 1.0 [ 1 ]; cand 1.0 [ 2 ];
          cand 0.5 [ 0; 1 ]; cand 0.5 [ 1; 2 ];
        |];
    }
  in
  let t = Mbr_util.Cancel.create () in
  Mbr_util.Cancel.cancel t;
  let a = Sp.solve ~lp_bound:false ~cancel:t p in
  let b = Sp.solve ~lp_bound:false ~node_limit:0 p in
  check "same status" true (a.Sp.status = b.Sp.status);
  checkf "same cost" b.Sp.cost a.Sp.cost;
  Alcotest.(check (list int)) "same chosen" b.Sp.chosen a.Sp.chosen;
  Alcotest.(check int) "same nodes" b.Sp.nodes a.Sp.nodes

let test_lp_relaxation_bound () =
  let p =
    {
      Sp.n_elems = 2;
      candidates = [| cand 1.0 [ 0 ]; cand 1.0 [ 1 ]; cand 0.5 [ 0; 1 ] |];
    }
  in
  (match Sp.lp_relaxation p with
  | Some v -> check "lp <= ilp" true (v <= (solve p).Sp.cost +. 1e-9)
  | None -> Alcotest.fail "lp should be feasible");
  check "lp infeasible when uncovered" true
    (Sp.lp_relaxation { Sp.n_elems = 2; candidates = [| cand 1.0 [ 0 ] |] } = None)

(* ---- property: B&B matches the brute-force oracle ---- *)

let problem_gen =
  let open QCheck.Gen in
  int_range 2 7 >>= fun n ->
  let cand_gen =
    map2
      (fun elems w -> cand (Float.of_int w /. 4.0) elems)
      (list_size (int_range 1 3) (int_bound (n - 1)))
      (int_range 1 12)
  in
  list_size (int_range 0 8) cand_gen >>= fun extra ->
  (* always include singletons so the instance is feasible *)
  let singles = List.init n (fun i -> cand 1.0 [ i ]) in
  return { Sp.n_elems = n; candidates = Array.of_list (singles @ extra) }

let print_problem p =
  Printf.sprintf "n=%d cands=[%s]" p.Sp.n_elems
    (String.concat "; "
       (Array.to_list
          (Array.map
             (fun c ->
               Printf.sprintf "%.2f:{%s}" c.Sp.weight
                 (String.concat "," (List.map string_of_int c.Sp.elems)))
             p.Sp.candidates)))

let problem_arb = QCheck.make ~print:print_problem problem_gen

(* Denser instances aimed at the reduction pipeline: up to 20
   candidates (within brute_force's reach), element sets up to 5 wide
   so dominance/decomposition both fire, and singletons sometimes
   missing entirely so infeasible and unique-cover-forced cases
   arise. *)
let dense_problem_gen =
  let open QCheck.Gen in
  int_range 2 8 >>= fun n ->
  bool >>= fun with_singles ->
  let max_extra = if with_singles then 20 - n else 20 in
  int_range 0 max_extra >>= fun n_extra ->
  let cand_gen =
    map2
      (fun elems w -> cand (Float.of_int w /. 8.0) elems)
      (list_size (int_range 1 5) (int_bound (n - 1)))
      (int_range 1 24)
  in
  list_size (return n_extra) cand_gen >>= fun extra ->
  let singles = if with_singles then List.init n (fun i -> cand 1.0 [ i ]) else [] in
  return { Sp.n_elems = n; candidates = Array.of_list (singles @ extra) }

let dense_problem_arb = QCheck.make ~print:print_problem dense_problem_gen

(* The central cancellation contract: a token tripping at the m-th
   check is bit-identical to a node limit of m-1 with no token —
   cancellation at ANY point has node-limit semantics. Costs may both
   be nan (no cover found under a tiny budget without singletons),
   which counts as equal. *)
let cancel_equals_node_limit =
  QCheck.Test.make ~name:"cancel at m-th check = node_limit (m-1)" ~count:300
    QCheck.(pair dense_problem_arb (int_range 1 40))
    (fun (p, m) ->
      let a = Sp.solve ~cancel:(Mbr_util.Cancel.after_checks m) p in
      let b = Sp.solve ~node_limit:(m - 1) p in
      let cost_eq =
        a.Sp.cost = b.Sp.cost
        || (Float.is_nan a.Sp.cost && Float.is_nan b.Sp.cost)
      in
      a.Sp.status = b.Sp.status && cost_eq && a.Sp.chosen = b.Sp.chosen
      && a.Sp.nodes = b.Sp.nodes)

(* And with the bound/reduction machinery disabled the search is
   longest, so the budget lands inside it most often. *)
let cancel_equals_node_limit_raw =
  QCheck.Test.make
    ~name:"cancel = node limit (no LP bound, no reductions)" ~count:300
    QCheck.(pair problem_arb (int_range 1 60))
    (fun (p, m) ->
      let solve_with ~cancel ~node_limit =
        Sp.solve ~lp_bound:false ~reductions:false ?cancel ~node_limit p
      in
      let a =
        solve_with ~cancel:(Some (Mbr_util.Cancel.after_checks m))
          ~node_limit:2_000_000
      in
      let b = solve_with ~cancel:None ~node_limit:(m - 1) in
      let cost_eq =
        a.Sp.cost = b.Sp.cost
        || (Float.is_nan a.Sp.cost && Float.is_nan b.Sp.cost)
      in
      a.Sp.status = b.Sp.status && cost_eq && a.Sp.chosen = b.Sp.chosen
      && a.Sp.nodes = b.Sp.nodes)

let cancelled_solve_still_covers =
  QCheck.Test.make ~name:"a cancelled solve still returns an exact cover"
    ~count:300
    QCheck.(pair problem_arb (int_range 1 20))
    (fun (p, m) ->
      (* problem_arb always includes singletons, so an incumbent exists
         no matter how early the token trips *)
      let r = Sp.solve ~cancel:(Mbr_util.Cancel.after_checks m) p in
      match r.Sp.status with
      | Sp.Infeasible -> false (* singletons make the instance feasible *)
      | Sp.Optimal | Sp.Feasible ->
        r.Sp.chosen <> []
        && Float.is_finite r.Sp.cost
        &&
        let covered =
          List.concat_map
            (fun i -> List.sort_uniq compare p.Sp.candidates.(i).Sp.elems)
            r.Sp.chosen
        in
        List.sort compare covered = List.init p.Sp.n_elems Fun.id)

let bb_matches_brute_force =
  QCheck.Test.make ~name:"branch-and-bound = brute force optimum" ~count:300
    problem_arb (fun p ->
      let a = Sp.solve p in
      let b = Sp.brute_force p in
      match (a.Sp.status, b.Sp.status) with
      | Sp.Optimal, Sp.Optimal -> Float.abs (a.Sp.cost -. b.Sp.cost) < 1e-9
      | Sp.Infeasible, Sp.Infeasible -> true
      | _, _ -> false)

let bb_chosen_is_exact_cover =
  QCheck.Test.make ~name:"chosen candidates form an exact cover" ~count:300
    problem_arb (fun p ->
      let r = Sp.solve p in
      match r.Sp.status with
      | Sp.Optimal | Sp.Feasible ->
        let covered =
          List.concat_map
            (fun i -> List.sort_uniq compare p.Sp.candidates.(i).Sp.elems)
            r.Sp.chosen
        in
        List.sort compare covered = List.init p.Sp.n_elems Fun.id
      | Sp.Infeasible -> true)

let reduced_matches_brute_force =
  QCheck.Test.make ~name:"reduced/decomposed solver = brute force" ~count:120
    dense_problem_arb (fun p ->
      let a = Sp.solve p in
      let b = Sp.brute_force p in
      match (a.Sp.status, b.Sp.status) with
      | Sp.Optimal, Sp.Optimal -> Float.abs (a.Sp.cost -. b.Sp.cost) < 1e-9
      | Sp.Infeasible, Sp.Infeasible -> true
      | _, _ -> false)

let reductions_preserve_result =
  QCheck.Test.make ~name:"reductions never change status or cost" ~count:150
    dense_problem_arb (fun p ->
      let a = Sp.solve p in
      let b = Sp.solve ~reductions:false p in
      a.Sp.status = b.Sp.status
      &&
      match a.Sp.status with
      | Sp.Optimal | Sp.Feasible -> Float.abs (a.Sp.cost -. b.Sp.cost) < 1e-9
      | Sp.Infeasible -> true)

let lp_below_ilp =
  QCheck.Test.make ~name:"LP relaxation lower-bounds the ILP" ~count:200
    problem_arb (fun p ->
      match (Sp.lp_relaxation p, Sp.solve p) with
      | Some lp, { Sp.status = Sp.Optimal; cost; _ } -> lp <= cost +. 1e-6
      | None, _ -> true
      | Some _, { Sp.status = Sp.Infeasible | Sp.Feasible; _ } -> true)

let () =
  Alcotest.run "mbr_ilp"
    [
      ( "set_partition",
        [
          Alcotest.test_case "singletons only" `Quick test_singletons_only;
          Alcotest.test_case "merge wins" `Quick test_merge_wins;
          Alcotest.test_case "blocked merge loses" `Quick test_blocked_merge_loses;
          Alcotest.test_case "paper Fig.3 selection" `Quick test_paper_fig3_selection;
          Alcotest.test_case "infeasible" `Quick test_infeasible_uncovered;
          Alcotest.test_case "infinite weight skipped" `Quick test_infinite_weight_skipped;
          Alcotest.test_case "conflicting merges" `Quick test_conflicting_merges;
          Alcotest.test_case "duplicate elements" `Quick test_duplicate_elems_deduped;
          Alcotest.test_case "empty problem" `Quick test_empty_problem;
          Alcotest.test_case "node limit" `Quick test_node_limit;
          Alcotest.test_case "node limit keeps incumbent" `Quick
            test_node_limit_incumbent;
          Alcotest.test_case "lp relaxation" `Quick test_lp_relaxation_bound;
          Alcotest.test_case "cancel keeps incumbent" `Quick
            test_cancel_keeps_incumbent;
          Alcotest.test_case "pre-tripped cancel = zero budget" `Quick
            test_cancel_pre_tripped;
          QCheck_alcotest.to_alcotest cancel_equals_node_limit;
          QCheck_alcotest.to_alcotest cancel_equals_node_limit_raw;
          QCheck_alcotest.to_alcotest cancelled_solve_still_covers;
          QCheck_alcotest.to_alcotest bb_matches_brute_force;
          QCheck_alcotest.to_alcotest bb_chosen_is_exact_cover;
          QCheck_alcotest.to_alcotest reduced_matches_brute_force;
          QCheck_alcotest.to_alcotest reductions_preserve_result;
          QCheck_alcotest.to_alcotest lp_below_ilp;
        ] );
    ]
