(* Tests for Mbr_core.Compat: the four §2 compatibility checks on
   hand-built register infos, plus graph construction on a generated
   design. *)

module Compat = Mbr_core.Compat
module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module Csr = Mbr_graph.Csr
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile
module Eco = Mbr_designgen.Eco
module Rng = Mbr_util.Rng

let check = Alcotest.(check bool)

let cfg = Compat.default_config

let info ?(cls = "dff") ?(clock = 0) ?enable ?reset ?scan ?(d_slack = 50.0)
    ?(q_slack = 50.0) ?(at = (0.0, 0.0)) ?(feas = 10.0) cid =
  let x, y = at in
  let footprint = Rect.make ~lx:x ~ly:y ~hx:(x +. 2.0) ~hy:(y +. 1.2) in
  Compat.
    {
      cid;
      bits = 1;
      func_class = cls;
      clock;
      enable;
      reset;
      scan;
      drive_res = 2.0;
      d_slack;
      q_slack;
      footprint;
      feasible = Rect.expand footprint feas;
      center = Rect.center footprint;
    }

(* ---- functional ---- *)

let test_functional_same () =
  check "identical attrs" true
    (Compat.functionally_compatible (info 0) (info 1))

let test_functional_class_mismatch () =
  check "class" false
    (Compat.functionally_compatible (info 0) (info ~cls:"dffr" 1))

let test_functional_clock_mismatch () =
  check "clock" false (Compat.functionally_compatible (info 0) (info ~clock:5 1))

let test_functional_enable_mismatch () =
  check "enable" false
    (Compat.functionally_compatible (info ~enable:"en0" 0) (info ~enable:"en1" 1));
  check "enable vs none" false
    (Compat.functionally_compatible (info ~enable:"en0" 0) (info 1));
  check "same enable ok" true
    (Compat.functionally_compatible (info ~enable:"en0" 0) (info ~enable:"en0" 1))

let test_functional_reset_mismatch () =
  check "reset nets differ" false
    (Compat.functionally_compatible (info ~reset:3 0) (info ~reset:4 1));
  check "same reset" true
    (Compat.functionally_compatible (info ~reset:3 0) (info ~reset:3 1))

(* ---- scan ---- *)

let scan ?section partition = Types.{ partition; section }

let test_scan_both_unscanned () =
  check "ok" true (Compat.scan_compatible (info 0) (info 1))

let test_scan_mixed () =
  check "scan vs plain" false
    (Compat.scan_compatible (info ~scan:(scan 0) 0) (info 1))

let test_scan_partitions () =
  check "same partition" true
    (Compat.scan_compatible (info ~scan:(scan 1) 0) (info ~scan:(scan 1) 1));
  check "different partition" false
    (Compat.scan_compatible (info ~scan:(scan 0) 0) (info ~scan:(scan 1) 1))

let test_scan_ordered_sections () =
  let sec i pos = scan ~section:(i, pos) 0 in
  check "same section" true
    (Compat.scan_compatible (info ~scan:(sec 2 0) 0) (info ~scan:(sec 2 5) 1));
  check "different sections" false
    (Compat.scan_compatible (info ~scan:(sec 1 0) 0) (info ~scan:(sec 2 0) 1));
  check "section vs free" false
    (Compat.scan_compatible (info ~scan:(sec 1 0) 0) (info ~scan:(scan 0) 1))

(* ---- placement ---- *)

let test_placement_overlap () =
  check "near regions overlap" true
    (Compat.placement_compatible (info ~at:(0.0, 0.0) 0) (info ~at:(5.0, 0.0) 1));
  check "far regions do not" false
    (Compat.placement_compatible
       (info ~at:(0.0, 0.0) ~feas:1.0 0)
       (info ~at:(50.0, 0.0) ~feas:1.0 1))

(* ---- timing ---- *)

let test_timing_similar () =
  check "close slacks ok" true
    (Compat.timing_compatible cfg
       (info ~d_slack:40.0 ~q_slack:60.0 0)
       (info ~d_slack:60.0 ~q_slack:40.0 1))

let test_timing_magnitude_limit () =
  check "large D difference rejected" false
    (Compat.timing_compatible cfg
       (info ~d_slack:0.0 0)
       (info ~d_slack:(cfg.Compat.slack_diff_limit +. 50.0) 1));
  check "large Q difference rejected" false
    (Compat.timing_compatible cfg
       (info ~q_slack:0.0 0)
       (info ~q_slack:(cfg.Compat.slack_diff_limit +. 50.0) 1))

let test_timing_opposite_skew_pressure () =
  (* §2: positive D/negative Q must not merge with negative D/positive Q *)
  let wants_later = info ~d_slack:(-30.0) ~q_slack:40.0 0 in
  let wants_earlier = info ~d_slack:40.0 ~q_slack:(-30.0) 1 in
  check "opposite forces rejected" false
    (Compat.timing_compatible cfg wants_later wants_earlier);
  check "symmetric" false (Compat.timing_compatible cfg wants_earlier wants_later);
  (* both wanting later is fine (same skew direction) *)
  let also_later = info ~d_slack:(-40.0) ~q_slack:30.0 2 in
  check "same direction ok" true (Compat.timing_compatible cfg wants_later also_later)

let test_timing_infinite_slack_ok () =
  (* unconnected side imposes no constraint *)
  check "inf vs finite" true
    (Compat.timing_compatible cfg (info ~q_slack:infinity 0) (info ~q_slack:10.0 1))

(* ---- on a generated design ---- *)

let g = G.generate (P.tiny ~seed:77)

let eng =
  let e = Engine.build ~config:g.G.sta_config g.G.placement in
  Engine.analyze e;
  e

let graph = Compat.build_graph eng g.G.library

let test_graph_nodes_are_composable () =
  Array.iter
    (fun i ->
      check "composable" true
        (Compat.is_composable g.G.design g.G.library i.Compat.cid))
    graph.Compat.infos

let test_graph_edges_are_compatible () =
  let infos = graph.Compat.infos in
  List.iter
    (fun (a, b) ->
      check "edge passes all checks" true
        (Compat.compatible Compat.default_config infos.(a) infos.(b)))
    (Csr.edges graph.Compat.adj)

let test_fixed_not_composable () =
  let fixed =
    List.filter
      (fun cid ->
        let a = Design.reg_attrs g.G.design cid in
        a.Types.fixed || a.Types.size_only)
      (Design.registers g.G.design)
  in
  check "some pinned registers exist" true (fixed <> []);
  List.iter
    (fun cid ->
      check "pinned not composable" false
        (Compat.is_composable g.G.design g.G.library cid))
    fixed

let test_max_width_not_composable () =
  List.iter
    (fun cid ->
      let a = Design.reg_attrs g.G.design cid in
      if a.Types.lib_cell.Mbr_liberty.Cell.bits = 8 then
        check "8-bit cannot grow" false
          (Compat.is_composable g.G.design g.G.library cid))
    (Design.registers g.G.design)

let test_feasible_region_contains_footprint () =
  Array.iter
    (fun i ->
      check "footprint feasible" true
        (Rect.intersects i.Compat.feasible i.Compat.footprint))
    graph.Compat.infos

let test_feasible_region_bounded () =
  let cfg = Compat.default_config in
  Array.iter
    (fun i ->
      let cap = Rect.expand i.Compat.footprint (cfg.Compat.max_dist +. 1e-6) in
      check "within max_dist" true (Rect.contains_rect cap i.Compat.feasible))
    graph.Compat.infos

let test_reg_info_matches_engine () =
  Array.iter
    (fun i ->
      check "d slack matches engine" true
        (i.Compat.d_slack = Engine.reg_d_slack eng i.Compat.cid))
    graph.Compat.infos

(* The spatial-hash pruning must be exactly the brute-force all-pairs
   graph: the hash may only skip pairs that placement_compatible would
   reject anyway. The odd seeds shrink max_dist to 2 µm so register
   footprints dominate the bucket pitch — the regime where a pitch of
   bare [2 * max_dist] drops real edges across bucket boundaries. *)
let pruning_matches_brute_force =
  QCheck.Test.make ~name:"build_graph = brute-force all-pairs compatible"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = G.generate (P.scaled (P.tiny ~seed:(seed mod 41)) 0.4) in
      let cfg =
        if seed mod 2 = 0 then Compat.default_config
        else { Compat.default_config with Compat.max_dist = 2.0 }
      in
      let eng = Engine.build ~config:g.G.sta_config g.G.placement in
      let graph = Compat.build_graph ~config:cfg eng g.G.library in
      let infos = graph.Compat.infos in
      let n = Array.length infos in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let expect = Compat.compatible cfg infos.(i) infos.(j) in
          let got = Csr.has_edge graph.Compat.adj i j in
          if expect <> got then begin
            ok := false;
            QCheck.Test.fail_reportf
              "seed %d: pair (%d, %d) cids (%d, %d): brute force %b, graph %b"
              seed i j infos.(i).Compat.cid infos.(j).Compat.cid expect got
          end
        done
      done;
      !ok)

(* Compat.refresh must rebuild exactly build_graph's structure — same
   node order, same edge set — after arbitrary ECO batches. *)
let refresh_matches_fresh =
  QCheck.Test.make ~name:"refresh = fresh build over random ECO batches"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = G.generate (P.scaled (P.tiny ~seed:(seed mod 41)) 0.5) in
      let eng = Engine.build ~config:g.G.sta_config g.G.placement in
      let prev = ref (Compat.build_graph eng g.G.library) in
      let rng = Rng.create ((seed * 13) + 5) in
      let rounds = 1 + (seed mod 3) in
      let ok = ref true in
      for round = 1 to rounds do
        ignore (Eco.perturb rng g);
        let fresh = Compat.build_graph eng g.G.library in
        let refreshed, stats = Compat.refresh !prev eng g.G.library in
        if refreshed.Compat.infos <> fresh.Compat.infos then begin
          ok := false;
          QCheck.Test.fail_reportf "seed %d round %d: node mismatch" seed round
        end;
        let n = Array.length fresh.Compat.infos in
        if stats.Compat.nodes_total <> n then begin
          ok := false;
          QCheck.Test.fail_reportf "seed %d round %d: stats count %d <> %d"
            seed round stats.Compat.nodes_total n
        end;
        for v = 0 to n - 1 do
          if
            Csr.neighbors refreshed.Compat.adj v
            <> Csr.neighbors fresh.Compat.adj v
          then begin
            ok := false;
            QCheck.Test.fail_reportf
              "seed %d round %d: adjacency mismatch at node %d (cid %d)" seed
              round v fresh.Compat.infos.(v).Compat.cid
          end
        done;
        prev := refreshed
      done;
      !ok)

let () =
  Alcotest.run "mbr_core.compat"
    [
      ( "functional",
        [
          Alcotest.test_case "same" `Quick test_functional_same;
          Alcotest.test_case "class" `Quick test_functional_class_mismatch;
          Alcotest.test_case "clock" `Quick test_functional_clock_mismatch;
          Alcotest.test_case "enable" `Quick test_functional_enable_mismatch;
          Alcotest.test_case "reset" `Quick test_functional_reset_mismatch;
        ] );
      ( "scan",
        [
          Alcotest.test_case "both unscanned" `Quick test_scan_both_unscanned;
          Alcotest.test_case "mixed" `Quick test_scan_mixed;
          Alcotest.test_case "partitions" `Quick test_scan_partitions;
          Alcotest.test_case "ordered sections" `Quick test_scan_ordered_sections;
        ] );
      ( "placement",
        [ Alcotest.test_case "region overlap" `Quick test_placement_overlap ] );
      ( "timing",
        [
          Alcotest.test_case "similar" `Quick test_timing_similar;
          Alcotest.test_case "magnitude limit" `Quick test_timing_magnitude_limit;
          Alcotest.test_case "opposite skew pressure" `Quick
            test_timing_opposite_skew_pressure;
          Alcotest.test_case "infinite slack" `Quick test_timing_infinite_slack_ok;
        ] );
      ( "graph",
        [
          Alcotest.test_case "nodes composable" `Quick test_graph_nodes_are_composable;
          Alcotest.test_case "edges compatible" `Quick test_graph_edges_are_compatible;
          Alcotest.test_case "fixed not composable" `Quick test_fixed_not_composable;
          Alcotest.test_case "max width not composable" `Quick
            test_max_width_not_composable;
          Alcotest.test_case "feasible contains footprint" `Quick
            test_feasible_region_contains_footprint;
          Alcotest.test_case "feasible bounded" `Quick test_feasible_region_bounded;
          Alcotest.test_case "info matches engine" `Quick test_reg_info_matches_engine;
          QCheck_alcotest.to_alcotest pruning_matches_brute_force;
          QCheck_alcotest.to_alcotest refresh_matches_fresh;
        ] );
    ]
