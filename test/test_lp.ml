(* Tests for Mbr_lp: two-phase simplex on known LPs (optimal, infeasible,
   unbounded, degenerate) and the piecewise HPWL minimizer, cross-checked
   against the simplex and a brute-force grid scan. *)

module Simplex = Mbr_lp.Simplex
module Piecewise = Mbr_lp.Piecewise

let checkf = Alcotest.(check (float 1e-6))

let check = Alcotest.(check bool)

let solve_expect_optimal lp =
  match Simplex.solve lp with
  | { Simplex.status = Simplex.Optimal; _ } as s -> s
  | { Simplex.status = Simplex.Infeasible; _ } -> Alcotest.fail "unexpected infeasible"
  | { Simplex.status = Simplex.Unbounded; _ } -> Alcotest.fail "unexpected unbounded"

(* max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 (classic Dantzig):
   optimum x=2, y=6, objective 36 -> minimize the negation. *)
let test_simplex_dantzig () =
  let lp = Simplex.create () in
  let x = Simplex.add_var ~obj:(-3.0) lp in
  let y = Simplex.add_var ~obj:(-5.0) lp in
  Simplex.add_constraint lp [ (x, 1.0) ] Simplex.Le 4.0;
  Simplex.add_constraint lp [ (y, 2.0) ] Simplex.Le 12.0;
  Simplex.add_constraint lp [ (x, 3.0); (y, 2.0) ] Simplex.Le 18.0;
  let s = solve_expect_optimal lp in
  checkf "objective" (-36.0) s.Simplex.objective;
  checkf "x" 2.0 s.Simplex.values.(x);
  checkf "y" 6.0 s.Simplex.values.(y)

let test_simplex_equality () =
  (* min x + y s.t. x + y = 10, x - y = 2 -> x=6, y=4 *)
  let lp = Simplex.create () in
  let x = Simplex.add_var ~obj:1.0 lp in
  let y = Simplex.add_var ~obj:1.0 lp in
  Simplex.add_constraint lp [ (x, 1.0); (y, 1.0) ] Simplex.Eq 10.0;
  Simplex.add_constraint lp [ (x, 1.0); (y, -1.0) ] Simplex.Eq 2.0;
  let s = solve_expect_optimal lp in
  checkf "x" 6.0 s.Simplex.values.(x);
  checkf "y" 4.0 s.Simplex.values.(y);
  checkf "obj" 10.0 s.Simplex.objective

let test_simplex_ge () =
  (* min 2x + 3y s.t. x + y >= 4, x >= 1 -> x=4,y=0? obj = 8... check:
     y=0, x=4 gives 8; x=1,y=3 gives 11. optimum (4,0) -> 8 *)
  let lp = Simplex.create () in
  let x = Simplex.add_var ~obj:2.0 lp in
  let y = Simplex.add_var ~obj:3.0 lp in
  Simplex.add_constraint lp [ (x, 1.0); (y, 1.0) ] Simplex.Ge 4.0;
  Simplex.add_constraint lp [ (x, 1.0) ] Simplex.Ge 1.0;
  let s = solve_expect_optimal lp in
  checkf "obj" 8.0 s.Simplex.objective

let test_simplex_infeasible () =
  let lp = Simplex.create () in
  let x = Simplex.add_var ~obj:1.0 lp in
  Simplex.add_constraint lp [ (x, 1.0) ] Simplex.Le 1.0;
  Simplex.add_constraint lp [ (x, 1.0) ] Simplex.Ge 2.0;
  check "infeasible" true ((Simplex.solve lp).Simplex.status = Simplex.Infeasible)

let test_simplex_unbounded () =
  let lp = Simplex.create () in
  let x = Simplex.add_var ~obj:(-1.0) lp in
  Simplex.add_constraint lp [ (x, -1.0) ] Simplex.Le 0.0;
  check "unbounded" true ((Simplex.solve lp).Simplex.status = Simplex.Unbounded)

let test_simplex_bounds () =
  (* min -x with 1 <= x <= 7 -> x = 7 *)
  let lp = Simplex.create () in
  let x = Simplex.add_var ~lb:1.0 ~ub:7.0 ~obj:(-1.0) lp in
  let s = solve_expect_optimal lp in
  checkf "x at ub" 7.0 s.Simplex.values.(x)

let test_simplex_free_var () =
  (* min |shape|: free variable pushed negative: min x s.t. x >= -5 via
     constraint (free var, lower bound by row) *)
  let lp = Simplex.create () in
  let x = Simplex.add_var ~lb:neg_infinity ~obj:1.0 lp in
  Simplex.add_constraint lp [ (x, 1.0) ] Simplex.Ge (-5.0);
  let s = solve_expect_optimal lp in
  checkf "x" (-5.0) s.Simplex.values.(x)

let test_simplex_mirrored_var () =
  (* variable with only an upper bound: min -x, x <= 3, x >= -inf with
     row x >= 0 -> 3 *)
  let lp = Simplex.create () in
  let x = Simplex.add_var ~lb:neg_infinity ~ub:3.0 ~obj:(-1.0) lp in
  Simplex.add_constraint lp [ (x, 1.0) ] Simplex.Ge 0.0;
  let s = solve_expect_optimal lp in
  checkf "x" 3.0 s.Simplex.values.(x)

let test_simplex_negative_rhs () =
  (* min x + y s.t. -x - y <= -3 (i.e. x + y >= 3) *)
  let lp = Simplex.create () in
  let x = Simplex.add_var ~obj:1.0 lp in
  let y = Simplex.add_var ~obj:1.0 lp in
  Simplex.add_constraint lp [ (x, -1.0); (y, -1.0) ] Simplex.Le (-3.0);
  let s = solve_expect_optimal lp in
  checkf "obj" 3.0 s.Simplex.objective

let test_simplex_degenerate () =
  (* degenerate vertex: multiple constraints meeting; Bland must not
     cycle. min -x - y s.t. x <= 1, y <= 1, x + y <= 2 *)
  let lp = Simplex.create () in
  let x = Simplex.add_var ~obj:(-1.0) lp in
  let y = Simplex.add_var ~obj:(-1.0) lp in
  Simplex.add_constraint lp [ (x, 1.0) ] Simplex.Le 1.0;
  Simplex.add_constraint lp [ (y, 1.0) ] Simplex.Le 1.0;
  Simplex.add_constraint lp [ (x, 1.0); (y, 1.0) ] Simplex.Le 2.0;
  let s = solve_expect_optimal lp in
  checkf "obj" (-2.0) s.Simplex.objective

let test_simplex_empty_box () =
  let lp = Simplex.create () in
  let _x = Simplex.add_var ~lb:2.0 ~ub:1.0 lp in
  check "empty box infeasible" true
    ((Simplex.solve lp).Simplex.status = Simplex.Infeasible)

let test_simplex_resolve () =
  (* builder reuse: add a row after a solve (branch-and-bound usage) *)
  let lp = Simplex.create () in
  let x = Simplex.add_var ~ub:10.0 ~obj:(-1.0) lp in
  let s1 = solve_expect_optimal lp in
  checkf "first" 10.0 s1.Simplex.values.(x);
  Simplex.add_constraint lp [ (x, 1.0) ] Simplex.Le 4.0;
  let s2 = solve_expect_optimal lp in
  checkf "second" 4.0 s2.Simplex.values.(x)

(* ---- Piecewise ---- *)

let test_piecewise_single_interval () =
  (* one term, offset 0: any u in [lo, hi] is optimal with value hi-lo *)
  let terms = [ Piecewise.{ lo = 2.0; hi = 5.0; offset = 0.0; weight = 1.0 } ] in
  let u, v = Piecewise.minimize terms in
  check "u in interval" true (u >= 2.0 && u <= 5.0);
  checkf "value" 3.0 v

let test_piecewise_median () =
  (* three point-intervals at 0, 10, 100: minimizer is the median 10 *)
  let term x = Piecewise.{ lo = x; hi = x; offset = 0.0; weight = 1.0 } in
  let u, _ = Piecewise.minimize [ term 0.0; term 10.0; term 100.0 ] in
  checkf "median" 10.0 u

let test_piecewise_weighted () =
  (* heavy weight drags the optimum: points 0 (w=10) and 100 (w=1) *)
  let u, _ =
    Piecewise.minimize
      [
        Piecewise.{ lo = 0.0; hi = 0.0; offset = 0.0; weight = 10.0 };
        Piecewise.{ lo = 100.0; hi = 100.0; offset = 0.0; weight = 1.0 };
      ]
  in
  checkf "at heavy point" 0.0 u

let test_piecewise_offset () =
  (* single point-interval at 10, pin offset +3: cell corner at 7 *)
  let u, v =
    Piecewise.minimize [ Piecewise.{ lo = 10.0; hi = 10.0; offset = 3.0; weight = 1.0 } ]
  in
  checkf "corner" 7.0 u;
  checkf "zero wl" 0.0 v

let test_piecewise_bounds () =
  let terms = [ Piecewise.{ lo = 10.0; hi = 10.0; offset = 0.0; weight = 1.0 } ] in
  let u, v = Piecewise.minimize ~bounds:(0.0, 4.0) terms in
  checkf "clamped" 4.0 u;
  checkf "cost" 6.0 v

let test_piecewise_empty () =
  let u, v = Piecewise.minimize ~bounds:(1.0, 2.0) [] in
  check "empty in bounds" true (u >= 1.0 && u <= 2.0);
  checkf "zero" 0.0 v

let test_piecewise_invalid () =
  Alcotest.check_raises "bad term" (Invalid_argument "Piecewise: term with hi < lo")
    (fun () ->
      ignore
        (Piecewise.minimize
           [ Piecewise.{ lo = 2.0; hi = 1.0; offset = 0.0; weight = 1.0 } ]));
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Piecewise.minimize: empty bounds") (fun () ->
      ignore
        (Piecewise.minimize ~bounds:(2.0, 1.0)
           [ Piecewise.{ lo = 0.0; hi = 1.0; offset = 0.0; weight = 1.0 } ]))

(* property: minimize beats a fine grid scan (within tolerance) *)
let terms_gen =
  let open QCheck.Gen in
  list_size (int_range 1 8)
    (map3
       (fun a b off ->
         let lo = Float.of_int (min a b) and hi = Float.of_int (max a b) in
         Piecewise.{ lo; hi; offset = Float.of_int off /. 2.0; weight = 1.0 })
       (int_range (-20) 20) (int_range (-20) 20) (int_range (-8) 8))

let terms_arb =
  QCheck.make
    ~print:(fun ts ->
      String.concat ";"
        (List.map
           (fun t ->
             Printf.sprintf "[%g,%g]+%g" t.Piecewise.lo t.Piecewise.hi
               t.Piecewise.offset)
           ts))
    terms_gen

let piecewise_beats_grid =
  QCheck.Test.make ~name:"piecewise minimum <= grid scan minimum" ~count:300
    terms_arb (fun terms ->
      let _, v = Piecewise.minimize terms in
      let grid_min = ref infinity in
      for k = -120 to 120 do
        let u = Float.of_int k /. 4.0 in
        grid_min := Float.min !grid_min (Piecewise.eval terms u)
      done;
      v <= !grid_min +. 1e-9)

let piecewise_matches_simplex =
  (* same 1-D LP solved via simplex with helper variables *)
  QCheck.Test.make ~name:"piecewise objective = simplex objective" ~count:200
    terms_arb (fun terms ->
      let _, v = Piecewise.minimize ~bounds:(-30.0, 30.0) terms in
      let lp = Simplex.create () in
      let u = Simplex.add_var ~lb:(-30.0) ~ub:30.0 lp in
      List.iter
        (fun t ->
          let zh = Simplex.add_var ~lb:neg_infinity ~obj:1.0 lp in
          let zl = Simplex.add_var ~lb:neg_infinity ~obj:(-1.0) lp in
          Simplex.add_constraint lp [ (zh, 1.0) ] Simplex.Ge t.Piecewise.hi;
          Simplex.add_constraint lp [ (zh, 1.0); (u, -1.0) ] Simplex.Ge t.Piecewise.offset;
          Simplex.add_constraint lp [ (zl, 1.0) ] Simplex.Le t.Piecewise.lo;
          Simplex.add_constraint lp [ (zl, 1.0); (u, -1.0) ] Simplex.Le t.Piecewise.offset)
        terms;
      match Simplex.solve lp with
      | { Simplex.status = Simplex.Optimal; objective; _ } ->
        Float.abs (objective -. v) < 1e-6
      | { Simplex.status = Simplex.Infeasible | Simplex.Unbounded; _ } -> false)

let test_simplex_duals () =
  (* Dantzig again: the dual of min -3x-5y over Le rows is <= 0 row
     multipliers with y.b = objective (strong duality). *)
  let lp = Simplex.create () in
  let x = Simplex.add_var ~obj:(-3.0) lp in
  let y = Simplex.add_var ~obj:(-5.0) lp in
  Simplex.add_constraint lp [ (x, 1.0) ] Simplex.Le 4.0;
  Simplex.add_constraint lp [ (y, 2.0) ] Simplex.Le 12.0;
  Simplex.add_constraint lp [ (x, 3.0); (y, 2.0) ] Simplex.Le 18.0;
  let s = solve_expect_optimal lp in
  checkf "y1" 0.0 s.Simplex.duals.(0);
  checkf "y2" (-1.5) s.Simplex.duals.(1);
  checkf "y3" (-1.0) s.Simplex.duals.(2);
  checkf "strong duality"
    s.Simplex.objective
    ((s.Simplex.duals.(0) *. 4.0) +. (s.Simplex.duals.(1) *. 12.0)
    +. (s.Simplex.duals.(2) *. 18.0));
  (* equality rows (the set-partition shape): c - A^T y = 0 on basic
     variables pins y exactly *)
  let lp = Simplex.create () in
  let x = Simplex.add_var ~obj:1.0 lp in
  let y = Simplex.add_var ~obj:1.0 lp in
  Simplex.add_constraint lp [ (x, 1.0); (y, 1.0) ] Simplex.Eq 10.0;
  Simplex.add_constraint lp [ (x, 1.0); (y, -1.0) ] Simplex.Eq 2.0;
  let s = solve_expect_optimal lp in
  checkf "eq y1" 1.0 s.Simplex.duals.(0);
  checkf "eq y2" 0.0 s.Simplex.duals.(1);
  (* a negative rhs flips the internal row; the reported dual must be
     for the row as stated *)
  let lp = Simplex.create () in
  let x = Simplex.add_var ~obj:1.0 lp in
  let y = Simplex.add_var ~obj:1.0 lp in
  Simplex.add_constraint lp [ (x, -1.0); (y, -1.0) ] Simplex.Eq (-10.0) ;
  let s = solve_expect_optimal lp in
  checkf "negated-row objective" 10.0 s.Simplex.objective;
  checkf "negated-row dual" (-1.0) s.Simplex.duals.(0);
  ignore y

let () =
  Alcotest.run "mbr_lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "dantzig" `Quick test_simplex_dantzig;
          Alcotest.test_case "equality" `Quick test_simplex_equality;
          Alcotest.test_case "ge rows" `Quick test_simplex_ge;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "variable bounds" `Quick test_simplex_bounds;
          Alcotest.test_case "free variable" `Quick test_simplex_free_var;
          Alcotest.test_case "mirrored variable" `Quick test_simplex_mirrored_var;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "degenerate vertex" `Quick test_simplex_degenerate;
          Alcotest.test_case "empty box" `Quick test_simplex_empty_box;
          Alcotest.test_case "resolve after new row" `Quick test_simplex_resolve;
          Alcotest.test_case "duals" `Quick test_simplex_duals;
        ] );
      ( "piecewise",
        [
          Alcotest.test_case "single interval" `Quick test_piecewise_single_interval;
          Alcotest.test_case "median" `Quick test_piecewise_median;
          Alcotest.test_case "weighted" `Quick test_piecewise_weighted;
          Alcotest.test_case "offset" `Quick test_piecewise_offset;
          Alcotest.test_case "bounds clamp" `Quick test_piecewise_bounds;
          Alcotest.test_case "empty terms" `Quick test_piecewise_empty;
          Alcotest.test_case "invalid input" `Quick test_piecewise_invalid;
          QCheck_alcotest.to_alcotest piecewise_beats_grid;
          QCheck_alcotest.to_alcotest piecewise_matches_simplex;
        ] );
    ]
