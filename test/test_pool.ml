(* Tests for Mbr_util.Pool: the fixed-size domain pool behind the
   parallel allocate stage. Determinism (results land in task order),
   the jobs = 1 serial degeneration, chunking, exception propagation,
   and a qcheck equivalence against Array.map. *)

module Pool = Mbr_util.Pool

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let int_array = Alcotest.(array int)

let test_recommended_jobs () =
  check "at least one job" true (Pool.recommended_jobs () >= 1)

let test_empty () =
  List.iter
    (fun jobs ->
      checki
        (Printf.sprintf "empty array, jobs=%d" jobs)
        0
        (Array.length (Pool.map_array ~jobs (fun x -> x * 2) [||])))
    [ 1; 2; 8 ]

let test_tasks_exceed_jobs () =
  (* far more tasks than workers: the atomic index must hand out every
     task exactly once and every result must land in its own slot *)
  let n = 500 in
  let tasks = Array.init n (fun i -> i) in
  let expected = Array.map (fun i -> (i * i) + 1) tasks in
  List.iter
    (fun jobs ->
      Alcotest.check int_array
        (Printf.sprintf "%d tasks on %d jobs" n jobs)
        expected
        (Pool.map_array ~jobs (fun i -> (i * i) + 1) tasks))
    [ 2; 3; 4; 7 ]

let test_jobs_one_is_serial () =
  (* jobs = 1 must run on the calling domain, in index order, without
     spawning: observable as strictly sequential side effects *)
  let order = ref [] in
  let self = Domain.self () in
  let r =
    Pool.map_array ~jobs:1
      (fun i ->
        check "runs on the calling domain" true (Domain.self () = self);
        order := i :: !order;
        i * 3)
      (Array.init 20 (fun i -> i))
  in
  Alcotest.check int_array "results" (Array.init 20 (fun i -> i * 3)) r;
  Alcotest.(check (list int)) "index order" (List.init 20 (fun i -> 19 - i)) !order

let test_chunking () =
  let n = 101 in
  let tasks = Array.init n (fun i -> i) in
  let expected = Array.map (fun i -> i + 7) tasks in
  List.iter
    (fun chunk ->
      Alcotest.check int_array
        (Printf.sprintf "chunk=%d" chunk)
        expected
        (Pool.map_array ~chunk ~jobs:3 (fun i -> i + 7) tasks))
    [ 1; 2; 16; 1000 ]

exception Boom of int

let test_exception_propagation () =
  let tasks = Array.init 64 (fun i -> i) in
  List.iter
    (fun jobs ->
      match
        Pool.map_array ~jobs (fun i -> if i = 33 then raise (Boom i) else i) tasks
      with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom 33 -> ()
      | exception e ->
        Alcotest.failf "wrong exception: %s" (Printexc.to_string e))
    [ 1; 2; 4 ]

let test_exception_stops_pool () =
  (* after a failure no new chunks are claimed: with 1000 tasks and an
     immediate failure, far fewer than 1000 tasks run *)
  let ran = Atomic.make 0 in
  (match
     Pool.map_array ~jobs:2
       (fun i ->
         Atomic.incr ran;
         if i = 0 then failwith "early";
         i)
       (Array.init 1000 (fun i -> i))
   with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  check "pool stopped early" true (Atomic.get ran < 1000)

let test_invalid_args () =
  (match Pool.map_array ~jobs:0 Fun.id [| 1 |] with
  | _ -> Alcotest.fail "jobs=0 accepted"
  | exception Invalid_argument _ -> ());
  match Pool.map_array ~chunk:0 ~jobs:2 Fun.id [| 1; 2 |] with
  | _ -> Alcotest.fail "chunk=0 accepted"
  | exception Invalid_argument _ -> ()

let test_order_param () =
  (* a claim order changes only when tasks run, never where their
     results land: any permutation must reproduce Array.map exactly *)
  let n = 257 in
  let tasks = Array.init n (fun i -> i) in
  let f i = (i * 13) + 1 in
  let expected = Array.map f tasks in
  let rev = Array.init n (fun i -> n - 1 - i) in
  (* 101 is coprime to 257, so the stride walk is a permutation *)
  let shuffled = Array.init n (fun i -> i * 101 mod n) in
  List.iter
    (fun jobs ->
      Alcotest.check int_array
        (Printf.sprintf "reversed order, jobs=%d" jobs)
        expected
        (Pool.map_array ~order:rev ~jobs f tasks);
      Alcotest.check int_array
        (Printf.sprintf "shuffled order, jobs=%d" jobs)
        expected
        (Pool.map_array ~order:shuffled ~jobs f tasks))
    [ 1; 2; 4 ]

let test_invalid_order () =
  let tasks = [| 10; 20; 30 |] in
  let expect_invalid name ~jobs order =
    match Pool.map_array ~order ~jobs Fun.id tasks with
    | _ -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "wrong length" ~jobs:2 [| 0; 1 |];
  expect_invalid "duplicate index" ~jobs:2 [| 0; 0; 2 |];
  expect_invalid "out of range" ~jobs:2 [| 0; 1; 3 |];
  expect_invalid "negative index" ~jobs:2 [| 0; -1; 2 |];
  (* the serial path validates too, so a bad order cannot hide behind
     a jobs=1 configuration *)
  expect_invalid "serial path skipped validation" ~jobs:1 [| 0; 0; 2 |]

(* qcheck: pool = Array.map for arbitrary tasks/jobs/chunk *)
let prop_matches_array_map =
  QCheck2.Test.make ~count:200 ~name:"pool.map_array = Array.map"
    QCheck2.Gen.(
      triple (array_size (int_bound 200) int) (int_range 1 6) (int_range 1 32))
    (fun (tasks, jobs, chunk) ->
      let f x = (x * 31) + 5 in
      Pool.map_array ~chunk ~jobs f tasks = Array.map f tasks)

(* same equivalence with a non-trivial claim order *)
let prop_order_matches_array_map =
  QCheck2.Test.make ~count:200 ~name:"pool.map_array ?order = Array.map"
    QCheck2.Gen.(
      triple (array_size (int_bound 200) int) (int_range 1 6) (int_range 1 32))
    (fun (tasks, jobs, chunk) ->
      let n = Array.length tasks in
      let order = Array.init n (fun i -> n - 1 - i) in
      let f x = (x * 17) + 3 in
      Pool.map_array ~chunk ~order ~jobs f tasks = Array.map f tasks)

(* ---- Executor ---- *)

let test_exec_runs_everything () =
  let exec = Pool.Executor.create ~workers:4 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 500 do
    Pool.Executor.submit exec (fun () -> Atomic.incr hits)
  done;
  Pool.Executor.shutdown exec;
  checki "every job ran before shutdown returned" 500 (Atomic.get hits)

let test_exec_job_exception_contained () =
  (* a raising job must not kill its worker or poison the queue *)
  let exec = Pool.Executor.create ~workers:2 () in
  let hits = Atomic.make 0 in
  for i = 1 to 100 do
    Pool.Executor.submit exec (fun () ->
        if i mod 3 = 0 then failwith "job bug";
        Atomic.incr hits)
  done;
  Pool.Executor.shutdown exec;
  checki "non-raising jobs all ran" 67 (Atomic.get hits)

let test_exec_submit_after_shutdown () =
  let exec = Pool.Executor.create ~workers:1 () in
  Pool.Executor.shutdown exec;
  Pool.Executor.shutdown exec (* idempotent *);
  check "submit after shutdown raises" true
    (match Pool.Executor.submit exec (fun () -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_exec_invalid_workers () =
  check "workers < 1 rejected" true
    (match Pool.Executor.create ~workers:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let exec = Pool.Executor.create ~workers:1 () in
  checki "worker count" 1 (Pool.Executor.workers exec);
  Pool.Executor.shutdown exec

let test_exec_concurrent_submitters () =
  (* several domains feeding one executor: nothing lost, nothing run
     twice (the sum is exact, not just the count) *)
  let exec = Pool.Executor.create ~workers:3 () in
  let sum = Atomic.make 0 in
  let feeder base () =
    for i = 1 to 100 do
      Pool.Executor.submit exec (fun () ->
          ignore (Atomic.fetch_and_add sum (base + i)))
    done
  in
  let ds = Array.init 4 (fun k -> Domain.spawn (feeder (k * 1000))) in
  Array.iter Domain.join ds;
  Pool.Executor.shutdown exec;
  let expected =
    (* sum over k of sum over i of (1000k + i) *)
    (1000 * 100 * (0 + 1 + 2 + 3)) + (4 * (100 * 101 / 2))
  in
  checki "exact sum" expected (Atomic.get sum)

let () =
  Alcotest.run "mbr_util.pool"
    [
      ( "pool",
        [
          Alcotest.test_case "recommended jobs" `Quick test_recommended_jobs;
          Alcotest.test_case "empty array" `Quick test_empty;
          Alcotest.test_case "tasks > jobs" `Quick test_tasks_exceed_jobs;
          Alcotest.test_case "jobs=1 serial" `Quick test_jobs_one_is_serial;
          Alcotest.test_case "chunking" `Quick test_chunking;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "exception stops pool" `Quick
            test_exception_stops_pool;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
          Alcotest.test_case "claim order" `Quick test_order_param;
          Alcotest.test_case "invalid claim order" `Quick test_invalid_order;
        ] );
      ( "executor",
        [
          Alcotest.test_case "runs everything" `Quick test_exec_runs_everything;
          Alcotest.test_case "job exception contained" `Quick
            test_exec_job_exception_contained;
          Alcotest.test_case "submit after shutdown" `Quick
            test_exec_submit_after_shutdown;
          Alcotest.test_case "invalid workers" `Quick test_exec_invalid_workers;
          Alcotest.test_case "concurrent submitters" `Quick
            test_exec_concurrent_submitters;
        ] );
      ( "qcheck",
        [
          QCheck_alcotest.to_alcotest prop_matches_array_map;
          QCheck_alcotest.to_alcotest prop_order_matches_array_map;
        ] );
    ]
