(* Tests for Mbr_core.Decompose (the paper's section 5 future work):
   splitting preserves connectivity and legality, skips protected
   registers, and the decompose+recompose flow stays sound. *)

module Decompose = Mbr_core.Decompose
module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Cell_lib = Mbr_liberty.Cell
module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let lib = Presets.default ()

let dff8 = Library.find lib "DFF8_X1"

let dff4 = Library.find lib "DFF4_X1"

let core = Rect.make ~lx:0.0 ~ly:0.0 ~hx:60.0 ~hy:60.0

let fp = Floorplan.make ~core ~row_height:1.2 ~site_width:0.2

let attrs ?(fixed = false) ?scan cell =
  Types.{ lib_cell = cell; fixed; size_only = false; scan; gate_enable = None }

(* one 8-bit register with fully wired D/Q nets *)
let eight_bit ?(fixed = false) ?scan () =
  let d = Design.create ~name:"dec" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let _ = Design.add_clock_root d "uclk" clk in
  let pl = Placement.create fp d in
  let dn =
    Array.init 8 (fun b ->
        let nid = Design.add_net d (Printf.sprintf "d%d" b) in
        let p = Design.add_port d (Printf.sprintf "pi%d" b) Types.In_port nid in
        Placement.set pl p (Point.make 1.0 1.2);
        Some nid)
  in
  let qn =
    Array.init 8 (fun b ->
        let nid = Design.add_net d (Printf.sprintf "q%d" b) in
        let p = Design.add_port d (Printf.sprintf "po%d" b) Types.Out_port nid in
        Placement.set pl p (Point.make 50.0 1.2);
        Some nid)
  in
  let r =
    Design.add_register d "big" (attrs ~fixed ?scan dff8)
      (Design.simple_conn ~d:dn ~q:qn ~clock:clk)
  in
  Placement.set pl r (Point.make 20.0 12.0);
  (d, pl, r, dn, qn)

let test_split_basic () =
  let d, pl, r, dn, qn = eight_bit () in
  let report = Decompose.split_max_width pl lib in
  checki "one split" 1 report.Decompose.n_split;
  checki "two new registers" 2 (List.length report.Decompose.new_ids);
  check "original dead" true (Design.cell d r).Types.c_dead;
  check "netlist valid" true (Design.validate d = []);
  checki "no overlaps" 0 (List.length (Placement.overlapping_registers pl));
  (* every old D/Q net still has exactly one register pin *)
  Array.iter
    (fun n ->
      match n with
      | Some nid ->
        let reg_pins =
          List.filter
            (fun pid ->
              match (Design.cell d (Design.pin d pid).Types.p_cell).Types.c_kind with
              | Types.Register _ -> true
              | _ -> false)
            (Design.net d nid).Types.n_pins
        in
        checki "one register pin per net" 1 (List.length reg_pins)
      | None -> ())
    (Array.append dn qn);
  (* bit order: low half keeps d0..d3 *)
  List.iter
    (fun cid ->
      let a = Design.reg_attrs d cid in
      checki "half width" 4 a.Types.lib_cell.Cell_lib.bits)
    report.Decompose.new_ids

let test_split_preserves_low_high_order () =
  let d, pl, _, dn, _ = eight_bit () in
  let report = Decompose.split_max_width pl lib in
  match report.Decompose.new_ids with
  | [ low; high ] ->
    let net_of cid b =
      match Design.pin_of d cid (Types.Pin_d b) with
      | Some pid -> (Design.pin d pid).Types.p_net
      | None -> None
    in
    check "low half bit0 = original d0" true (net_of low 0 = dn.(0));
    check "high half bit0 = original d4" true (net_of high 0 = dn.(4));
    check "high half bit3 = original d7" true (net_of high 3 = dn.(7))
  | _ -> Alcotest.fail "two halves expected"

let test_fixed_not_split () =
  let d, pl, r, _, _ = eight_bit ~fixed:true () in
  let report = Decompose.split_max_width pl lib in
  checki "nothing split" 0 report.Decompose.n_split;
  check "original alive" true (not (Design.cell d r).Types.c_dead)

let test_ordered_scan_not_split () =
  let scan = Types.{ partition = 0; section = Some (1, 3) } in
  let d, pl, r, _, _ = eight_bit ~scan () in
  ignore d;
  ignore r;
  let report = Decompose.split_max_width pl lib in
  checki "ordered section protected" 0 report.Decompose.n_split

let test_free_scan_is_split () =
  (* partition-only scan info splits fine; both halves keep it *)
  let scan = Types.{ partition = 2; section = None } in
  let lib8 = Library.find lib "SDFFR8_X1" in
  let d = Design.create ~name:"s" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let rst = Design.add_net d "rst" in
  let se = Design.add_net d "se" in
  let pl = Placement.create fp d in
  let conn =
    {
      Design.d_nets = Array.make 8 None;
      q_nets = Array.make 8 None;
      clock = clk;
      reset = Some rst;
      scan_enable = Some se;
      scan_ins = [];
      scan_outs = [];
    }
  in
  let r = Design.add_register d "sbig" (attrs ~scan lib8) conn in
  Placement.set pl r (Point.make 20.0 12.0);
  let report = Decompose.split_max_width pl lib in
  checki "split" 1 report.Decompose.n_split;
  List.iter
    (fun cid ->
      let a = Design.reg_attrs d cid in
      check "scan kept" true (a.Types.scan = Some scan);
      check "scan cell style kept" true
        (a.Types.lib_cell.Cell_lib.scan = Cell_lib.Internal_scan);
      (* the shared control nets follow *)
      check "reset reconnected" true
        (match Design.pin_of d cid Types.Pin_reset with
        | Some pid -> (Design.pin d pid).Types.p_net = Some rst
        | None -> false))
    report.Decompose.new_ids

let test_small_registers_untouched () =
  let d = Design.create ~name:"small" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let pl = Placement.create fp d in
  let r =
    Design.add_register d "r4" (attrs dff4)
      (Design.simple_conn ~d:(Array.make 4 None) ~q:(Array.make 4 None) ~clock:clk)
  in
  Placement.set pl r (Point.make 10.0 6.0);
  let report = Decompose.split_max_width pl lib in
  checki "4-bit not max width? still max-only rule" 0 report.Decompose.n_split

(* split_cells ~pin:true — the recovery loop's entry point. The halves
   must be valid, placed, legal, and frozen: [size_only] keeps them out
   of any later composition (Compat.is_composable), which is exactly
   what makes recovery rounds monotone. [splittable] must agree with
   what split_cells then does, on both sides. *)
let test_pinned_split_halves_frozen () =
  let d, pl, r, _, _ = eight_bit () in
  check "victim splittable" true (Decompose.splittable pl lib r);
  let report = Decompose.split_cells ~pin:true pl lib [ r ] in
  checki "one split" 1 report.Decompose.n_split;
  checki "two halves" 2 (List.length report.Decompose.new_ids);
  check "original dead" true (Design.cell d r).Types.c_dead;
  Alcotest.(check (list string)) "netlist valid" [] (Design.validate d);
  checki "no overlaps" 0 (List.length (Placement.overlapping_registers pl));
  List.iter
    (fun cid ->
      let a = Design.reg_attrs d cid in
      check "half is size_only (pinned)" true a.Types.size_only;
      check "half placed" true (Placement.is_placed pl cid);
      check "half inside the core" true
        (Rect.contains_rect fp.Floorplan.core (Placement.footprint pl cid));
      (* pinned halves are terminal for the loop: not splittable again *)
      check "half not splittable" true (not (Decompose.splittable pl lib cid)))
    report.Decompose.new_ids;
  (* a second pinned pass over the same ids is a no-op: the original is
     dead, the halves are size_only *)
  let again =
    Decompose.split_cells ~pin:true pl lib (r :: report.Decompose.new_ids)
  in
  checki "nothing left to split" 0 again.Decompose.n_split

(* ---- flow integration ---- *)

let test_flow_with_decompose () =
  let g = G.generate (P.tiny ~seed:4040) in
  let options = { Flow.default_options with Flow.decompose = true } in
  let r =
    Flow.run ~options ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  check "some registers split" true (r.Flow.n_split > 0);
  Alcotest.(check (list string)) "valid" [] (Design.validate g.G.design);
  checki "no overlaps" 0
    (List.length (Placement.overlapping_registers g.G.placement));
  check "registers still drop overall" true
    (r.Flow.after.Metrics.total_regs < r.Flow.before.Metrics.total_regs)

let test_decompose_helps_8bit_rich_design () =
  (* a D4-flavoured profile: composition alone leaves the 8-bit mass
     untouched; with decomposition the flow can rebalance it *)
  let p = P.scaled P.d4 0.25 in
  let run decompose =
    let g = G.generate p in
    let options = { Flow.default_options with Flow.decompose } in
    let r =
      Flow.run ~options ~design:g.G.design ~placement:g.G.placement
        ~library:g.G.library ~sta_config:g.G.sta_config ()
    in
    (r, g)
  in
  let off, _ = run false in
  let on, gon = run true in
  check "decompose actually split" true (on.Flow.n_split > 0);
  Alcotest.(check (list string)) "valid after heavy restructuring" []
    (Design.validate gon.G.design);
  (* it must not lose ground on register count by more than the split
     remainder, and timing must stay sound *)
  check "tns not degraded vs before" true
    (on.Flow.after.Metrics.tns >= on.Flow.before.Metrics.tns -. 1e-6);
  check "register count comparable or better" true
    (on.Flow.after.Metrics.total_regs
    <= off.Flow.after.Metrics.total_regs + (on.Flow.n_split / 2))

let () =
  Alcotest.run "mbr_core.decompose"
    [
      ( "split",
        [
          Alcotest.test_case "basic" `Quick test_split_basic;
          Alcotest.test_case "low/high order" `Quick test_split_preserves_low_high_order;
          Alcotest.test_case "fixed protected" `Quick test_fixed_not_split;
          Alcotest.test_case "ordered scan protected" `Quick test_ordered_scan_not_split;
          Alcotest.test_case "free scan splits" `Quick test_free_scan_is_split;
          Alcotest.test_case "small untouched" `Quick test_small_registers_untouched;
          Alcotest.test_case "pinned split freezes halves" `Quick
            test_pinned_split_halves_frozen;
        ] );
      ( "flow",
        [
          Alcotest.test_case "flow with decompose" `Quick test_flow_with_decompose;
          Alcotest.test_case "helps 8-bit-rich designs" `Slow
            test_decompose_helps_8bit_rich_design;
        ] );
    ]
