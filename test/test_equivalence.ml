(* Equivalence properties backing the streaming/worklist rewrites and
   the multi-corner engine:
   - the streaming candidate enumerator, when materialized, is exactly
     the list-building enumeration (same candidates, same order);
   - the worklist-driven skew optimizer is bit-identical to the
     whole-design reference sweep ([~full_sweep:true]) — same report,
     same final per-register skews;
   - an engine analyzing one unit-derate corner is bit-identical to
     the default (pre-corner) engine, through builds AND refreshes —
     the corner-indexed arrays are a pure generalization, never a
     numeric drift. *)

module Candidate = Mbr_core.Candidate
module Compat = Mbr_core.Compat
module Allocate = Mbr_core.Allocate
module Spatial = Mbr_core.Spatial
module Design = Mbr_netlist.Design
module Engine = Mbr_sta.Engine
module Corner = Mbr_sta.Corner
module Skew = Mbr_sta.Skew
module Kpart = Mbr_graph.Kpart
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile
module Eco = Mbr_designgen.Eco
module Rng = Mbr_util.Rng

let blocker_index_of graph =
  let idx = Spatial.create () in
  Array.iter
    (fun i -> Spatial.add idx i.Compat.cid i.Compat.center)
    graph.Compat.infos;
  idx

(* Candidate.iter collected into a list must equal Candidate.enumerate
   on every block the partitioner produces — streaming changes when
   work happens, never what is produced. *)
let streaming_matches_materialized =
  QCheck.Test.make ~name:"candidate stream = materialized enumeration"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = G.generate (P.scaled (P.tiny ~seed:(seed mod 37)) 0.5) in
      let eng = Engine.build ~config:g.G.sta_config g.G.placement in
      let graph = Compat.build_graph eng g.G.library in
      let position v = graph.Compat.infos.(v).Compat.center in
      let blocks = Kpart.partition_csr graph.Compat.adj ~position in
      let blocker_index = blocker_index_of graph in
      let cfg = Candidate.default_config in
      let ok = ref true in
      List.iter
        (fun block ->
          let materialized =
            Candidate.enumerate cfg graph ~block ~lib:g.G.library ~blocker_index
          in
          let streamed = ref [] in
          Candidate.iter cfg graph ~block ~lib:g.G.library ~blocker_index
            (fun c -> streamed := c :: !streamed);
          let streamed = List.rev !streamed in
          if streamed <> materialized then begin
            ok := false;
            QCheck.Test.fail_reportf
              "seed %d: block of %d nodes: stream has %d candidates, \
               materialized %d (or order/content differs)"
              seed (List.length block) (List.length streamed)
              (List.length materialized)
          end)
        blocks;
      !ok)

(* The worklist sweep must be indistinguishable from the full sweep:
   identical report fields and identical final skew on every register,
   including designs with real violations (shrunk clock period). *)
let worklist_skew_matches_full_sweep =
  QCheck.Test.make ~name:"worklist skew = full-sweep skew"
    ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = G.generate (P.scaled (P.tiny ~seed:(seed mod 37)) 0.5) in
      (* shrink the period on odd seeds so violations actually exist *)
      let factor = if seed mod 2 = 0 then 1.0 else 0.55 +. (0.1 *. float_of_int (seed mod 4)) in
      let config =
        { g.G.sta_config with
          Engine.clock_period = g.G.sta_config.Engine.clock_period *. factor }
      in
      let eng_work = Engine.build ~config g.G.placement in
      let eng_full = Engine.build ~config g.G.placement in
      let rep_work = Skew.optimize eng_work in
      let rep_full = Skew.optimize ~full_sweep:true eng_full in
      let ok = ref true in
      let fail fmt = ok := false; QCheck.Test.fail_reportf fmt in
      if rep_work <> rep_full then
        fail
          "seed %d: reports differ: worklist (tns %.17g wns %.17g sweeps %d) \
           vs full (tns %.17g wns %.17g sweeps %d)"
          seed rep_work.Skew.tns_after rep_work.Skew.wns_after
          rep_work.Skew.sweeps_run rep_full.Skew.tns_after
          rep_full.Skew.wns_after rep_full.Skew.sweeps_run;
      List.iter
        (fun r ->
          let s_work = Engine.skew eng_work r and s_full = Engine.skew eng_full r in
          if s_work <> s_full then
            fail "seed %d: register %d skew %.17g (worklist) <> %.17g (full)"
              seed r s_work s_full)
        (Design.registers g.G.design);
      !ok)

(* A single unit-derate corner — whatever its name — must be
   indistinguishable from the default engine, bit for bit: same wns /
   tns / failing counts and identical arrival / required on every pin.
   The property must survive {!Engine.refresh} too, because the
   incremental path re-times only dirty regions: both engines watch the
   same design/placement objects, so one ECO batch drives both and any
   corner-indexed refresh bug shows up as a pin-level mismatch. *)
let unit_corner_matches_default =
  QCheck.Test.make ~name:"1 unit corner engine = default engine (bit-exact)"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = G.generate (P.tiny ~seed:(seed mod 37)) in
      let unit = Corner.make ~name:"u" ~cell:1.0 ~wire:1.0 ~setup:1.0 in
      let eng_default = Engine.build ~config:g.G.sta_config g.G.placement in
      let eng_unit =
        Engine.build ~config:g.G.sta_config ~corners:[| unit |] g.G.placement
      in
      let fail fmt = QCheck.Test.fail_reportf fmt in
      let compare_engines what =
        Engine.analyze eng_default;
        Engine.analyze eng_unit;
        if Engine.wns eng_default <> Engine.wns eng_unit then
          fail "seed %d (%s): wns %.17g (default) <> %.17g (unit corner)" seed
            what (Engine.wns eng_default) (Engine.wns eng_unit);
        if Engine.tns eng_default <> Engine.tns eng_unit then
          fail "seed %d (%s): tns %.17g (default) <> %.17g (unit corner)" seed
            what (Engine.tns eng_default) (Engine.tns eng_unit);
        if
          Engine.failing_endpoints eng_default
          <> Engine.failing_endpoints eng_unit
        then
          fail "seed %d (%s): failing endpoints %d <> %d" seed what
            (Engine.failing_endpoints eng_default)
            (Engine.failing_endpoints eng_unit);
        for pid = 0 to Design.n_pins g.G.design - 1 do
          if Engine.arrival eng_default pid <> Engine.arrival eng_unit pid then
            fail "seed %d (%s): arrival mismatch at pin %d" seed what pid;
          if Engine.required eng_default pid <> Engine.required eng_unit pid
          then fail "seed %d (%s): required mismatch at pin %d" seed what pid
        done
      in
      compare_engines "fresh build";
      (* same ECO batch hits both engines (shared design/placement);
         the refreshed timings must stay bit-identical *)
      let rng = Rng.create ((seed * 13) + 5) in
      for round = 1 to 2 do
        ignore (Eco.perturb rng g);
        Engine.refresh eng_default;
        Engine.refresh eng_unit;
        compare_engines (Printf.sprintf "refresh %d" round)
      done;
      true)

(* The levelized batched [update_skews] must be bit-identical to the
   brute-force reference: set the same skews and run a full [analyze].
   Exercised over random skew batches interleaved with real ECO
   perturbations + [refresh] (which invalidates the cached propagation
   plan), under 1- and 3-corner sets, and with a cancel token tripping
   mid-batch — a batch is atomic, so a tripped token must leave exactly
   the planes an uncancelled call would. Also checks the
   [update_skews_touched] contract: any register whose D/Q slack moved
   is in the reported set. *)
let batched_update_skews_matches_analyze =
  QCheck.Test.make ~name:"batched update_skews = set_skew + analyze"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = G.generate (P.scaled (P.tiny ~seed:(seed mod 37)) 0.5) in
      let corners =
        if seed mod 2 = 0 then [| Corner.default.(0) |]
        else
          [|
            Corner.make ~name:"fast" ~cell:0.9 ~wire:0.85 ~setup:1.0;
            Corner.make ~name:"typ" ~cell:1.0 ~wire:1.0 ~setup:1.0;
            Corner.make ~name:"slow" ~cell:1.15 ~wire:1.25 ~setup:1.05;
          |]
      in
      let config =
        { g.G.sta_config with
          Engine.clock_period = g.G.sta_config.Engine.clock_period *. 0.7 }
      in
      let eng = Engine.build ~config ~corners g.G.placement in
      let ref_eng = Engine.build ~config ~corners g.G.placement in
      Engine.analyze eng;
      Engine.analyze ref_eng;
      let rng = Rng.create ((seed * 31) + 7) in
      let regs = Array.of_list (Design.registers g.G.design) in
      let fail fmt = QCheck.Test.fail_reportf fmt in
      let compare_engines what =
        if Engine.wns_tns eng <> Engine.wns_tns ref_eng then
          fail "seed %d (%s): wns/tns differ" seed what;
        for pid = 0 to Design.n_pins g.G.design - 1 do
          for k = 0 to Array.length corners - 1 do
            if Engine.corner_slack eng k pid <> Engine.corner_slack ref_eng k pid
            then
              fail "seed %d (%s): corner %d slack mismatch at pin %d" seed what
                k pid
          done
        done
      in
      let slacks_of e =
        Array.map
          (fun r -> (Engine.reg_d_slack e r, Engine.reg_q_slack e r))
          regs
      in
      for round = 1 to 4 do
        (* a random batch: some fresh offsets, some reverts to 0 *)
        let batch = ref [] in
        let n_moves = 1 + Rng.int rng 8 in
        for _ = 1 to n_moves do
          let r = regs.(Rng.int rng (Array.length regs)) in
          let s =
            if Rng.chance rng 0.25 then 0.0 else Rng.float rng 40.0 -. 20.0
          in
          if not (List.mem_assoc r !batch) then batch := (r, s) :: !batch
        done;
        let before = slacks_of eng in
        (* cancel tokens tripping mid-batch must not change the result:
           the batch is atomic *)
        let cancel =
          if round mod 2 = 0 then
            Some (Mbr_util.Cancel.after_checks (1 + Rng.int rng 3))
          else None
        in
        let touched = Engine.update_skews_touched ?cancel eng !batch in
        List.iter (fun (r, s) -> Engine.set_skew ref_eng r s) !batch;
        Engine.analyze ref_eng;
        compare_engines (Printf.sprintf "round %d" round);
        let after = slacks_of eng in
        Array.iteri
          (fun i r ->
            if before.(i) <> after.(i) && not (List.mem r touched) then
              fail "seed %d round %d: register %d slack moved but not touched"
                seed round r)
          regs;
        (* every other round, a real ECO + refresh: the cached
           propagation plan must be rebuilt, not reused stale *)
        if round mod 2 = 1 then begin
          ignore (Eco.perturb rng g);
          Engine.refresh eng;
          Engine.refresh ref_eng;
          compare_engines (Printf.sprintf "post-eco %d" round)
        end
      done;
      true)

(* Per-corner parallel propagation must be bit-identical to the serial
   all-corners pass — planes, wns/tns, and the touched-register list. *)
let parallel_corners_match_serial =
  QCheck.Test.make ~name:"parallel per-corner update_skews = serial"
    ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = G.generate (P.scaled (P.tiny ~seed:(seed mod 37)) 0.5) in
      let corners =
        [|
          Corner.make ~name:"fast" ~cell:0.9 ~wire:0.85 ~setup:1.0;
          Corner.make ~name:"typ" ~cell:1.0 ~wire:1.0 ~setup:1.0;
          Corner.make ~name:"slow" ~cell:1.15 ~wire:1.25 ~setup:1.05;
        |]
      in
      let config =
        { g.G.sta_config with
          Engine.clock_period = g.G.sta_config.Engine.clock_period *. 0.7 }
      in
      let par = Engine.build ~config ~corners g.G.placement in
      let ser = Engine.build ~config ~corners g.G.placement in
      Engine.analyze par;
      Engine.analyze ser;
      let rng = Rng.create ((seed * 17) + 3) in
      let regs = Array.of_list (Design.registers g.G.design) in
      let fail fmt = QCheck.Test.fail_reportf fmt in
      for round = 1 to 3 do
        let batch = ref [] in
        for _ = 1 to 1 + Rng.int rng 6 do
          let r = regs.(Rng.int rng (Array.length regs)) in
          if not (List.mem_assoc r !batch) then
            batch := (r, Rng.float rng 40.0 -. 20.0) :: !batch
        done;
        let t_par = Engine.update_skews_touched ~jobs:4 par !batch in
        let t_ser = Engine.update_skews_touched ser !batch in
        if t_par <> t_ser then
          fail "seed %d round %d: touched lists differ (%d vs %d)" seed round
            (List.length t_par) (List.length t_ser);
        if Engine.wns_tns par <> Engine.wns_tns ser then
          fail "seed %d round %d: wns/tns differ" seed round;
        for pid = 0 to Design.n_pins g.G.design - 1 do
          for k = 0 to 2 do
            if Engine.corner_slack par k pid <> Engine.corner_slack ser k pid
            then fail "seed %d round %d: corner %d pin %d differs" seed round k pid
          done
        done
      done;
      true)

let () =
  Alcotest.run "mbr.equivalence"
    [
      ( "streaming",
        [ QCheck_alcotest.to_alcotest streaming_matches_materialized ] );
      ( "skew",
        [
          QCheck_alcotest.to_alcotest worklist_skew_matches_full_sweep;
          QCheck_alcotest.to_alcotest batched_update_skews_matches_analyze;
          QCheck_alcotest.to_alcotest parallel_corners_match_serial;
        ] );
      ( "corners",
        [ QCheck_alcotest.to_alcotest unit_corner_matches_default ] );
    ]
