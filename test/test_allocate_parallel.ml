(* Parallel-allocate determinism: Allocate.run on a domain pool must
   return bit-identically the same selection as the serial path, for
   every allocator mode, on hand-built graphs and on randomly generated
   designs (the acceptance bar for running the per-block ILP fan-out in
   production). Also covers the solve_block/reduce decomposition. *)

module Allocate = Mbr_core.Allocate
module Candidate = Mbr_core.Candidate
module Compat = Mbr_core.Compat
module Spatial = Mbr_core.Spatial
module Rect = Mbr_geom.Rect
module Ugraph = Mbr_graph.Ugraph
module Presets = Mbr_liberty.Presets
module Design = Mbr_netlist.Design
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile

let check = Alcotest.(check bool)

let lib = Presets.default ()

let modes = [ ("ilp", `Ilp); ("greedy", `Greedy_share); ("clique", `Clique) ]

(* everything except the timing histogram, which measures rather than
   decides *)
let key (s : Allocate.selection) =
  ( s.Allocate.merges,
    s.Allocate.kept,
    s.Allocate.cost,
    s.Allocate.n_blocks,
    s.Allocate.n_candidates,
    s.Allocate.all_optimal )

let row_graph n =
  let infos =
    Array.init n (fun i ->
        let x = 3.0 *. float_of_int i in
        let footprint = Rect.make ~lx:x ~ly:0.0 ~hx:(x +. 1.4) ~hy:1.2 in
        Compat.
          {
            cid = 1000 + i;
            bits = 1;
            func_class = "dff";
            clock = 0;
            enable = None;
            reset = None;
            scan = None;
            drive_res = 2.0;
            d_slack = 50.0;
            q_slack = 50.0;
            footprint;
            feasible = Rect.expand footprint 30.0;
            center = Rect.center footprint;
          })
  in
  let g = Ugraph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Ugraph.add_edge g i j
    done
  done;
  { Compat.adj = Mbr_graph.Csr.of_ugraph g; infos }

let index_of (graph : Compat.graph) =
  let idx = Spatial.create () in
  Array.iter
    (fun i -> Spatial.add idx i.Compat.cid i.Compat.center)
    graph.Compat.infos;
  idx

let run_with_jobs ~mode ~jobs ?(bound = 30) graph ~lib ~blocker_index =
  let config =
    { Allocate.default_config with Allocate.jobs; partition_bound = bound }
  in
  Allocate.run ~mode ~config graph ~lib ~blocker_index

let test_row_graphs_all_modes () =
  (* bound 5 so even small rows produce several blocks to fan out *)
  List.iter
    (fun n ->
      let graph = row_graph n in
      let idx = index_of graph in
      List.iter
        (fun (mname, mode) ->
          let serial = run_with_jobs ~mode ~jobs:1 ~bound:5 graph ~lib ~blocker_index:idx in
          List.iter
            (fun jobs ->
              let par =
                run_with_jobs ~mode ~jobs ~bound:5 graph ~lib ~blocker_index:idx
              in
              check
                (Printf.sprintf "n=%d mode=%s jobs=%d identical" n mname jobs)
                true
                (key par = key serial))
            [ 2; 4 ])
        modes)
    [ 0; 1; 7; 23; 40 ]

let test_solve_block_matches_run () =
  (* running solve_block + reduce by hand equals Allocate.run *)
  let graph = row_graph 12 in
  let idx = index_of graph in
  let bound = 6 in
  let position i = graph.Compat.infos.(i).Compat.center in
  let blocks =
    Mbr_graph.Kpart.partition_csr ~bound graph.Compat.adj ~position
  in
  let config =
    { Allocate.default_config with Allocate.partition_bound = bound }
  in
  let results =
    Array.of_list
      (List.map
         (fun block ->
           Allocate.solve_block config graph ~lib ~blocker_index:idx ~block)
         blocks)
  in
  let manual = Allocate.reduce ~mode:`Ilp results in
  let auto = Allocate.run ~config graph ~lib ~blocker_index:idx in
  check "manual pipeline = run" true (key manual = key auto);
  check "block results carry candidates" true
    (Array.for_all (fun r -> r.Allocate.block_candidates > 0) results);
  check "block times non-negative" true
    (Array.for_all (fun r -> r.Allocate.solve_time_s >= 0.0) results)

let test_time_stats_sane () =
  let graph = row_graph 24 in
  let sel =
    run_with_jobs ~mode:`Ilp ~jobs:2 ~bound:6 graph ~lib
      ~blocker_index:(index_of graph)
  in
  let bt = sel.Allocate.block_times in
  check "total >= max" true (bt.Allocate.total_s >= bt.Allocate.max_s);
  check "max >= mean" true (bt.Allocate.max_s >= bt.Allocate.mean_s);
  check "mean >= 0" true (bt.Allocate.mean_s >= 0.0);
  let empty = run_with_jobs ~mode:`Ilp ~jobs:1 (row_graph 0) ~lib
      ~blocker_index:(Spatial.create ()) in
  check "no blocks -> zero stats" true
    (empty.Allocate.block_times = { Allocate.total_s = 0.0; mean_s = 0.0; max_s = 0.0 })

(* ---- qcheck: random generated designs, all three modes ---- *)

let design_inputs seed =
  let g = G.generate (P.tiny ~seed) in
  let eng = Engine.build ~config:g.G.sta_config g.G.placement in
  Engine.analyze eng;
  let graph = Compat.build_graph eng g.G.library in
  let idx = Spatial.create () in
  List.iter
    (fun cid ->
      if Placement.is_placed g.G.placement cid then
        Spatial.add idx cid (Placement.center g.G.placement cid))
    (Design.registers g.G.design);
  (graph, g.G.library, idx)

let prop_parallel_equals_serial =
  QCheck2.Test.make ~count:8
    ~name:"parallel Allocate.run = serial (random designs, all modes)"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let graph, lib, idx = design_inputs seed in
      List.for_all
        (fun (_, mode) ->
          let serial = run_with_jobs ~mode ~jobs:1 graph ~lib ~blocker_index:idx in
          let par = run_with_jobs ~mode ~jobs:3 graph ~lib ~blocker_index:idx in
          key par = key serial)
        modes)

let () =
  Alcotest.run "mbr_core.allocate_parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "row graphs, all modes" `Quick
            test_row_graphs_all_modes;
          Alcotest.test_case "solve_block + reduce = run" `Quick
            test_solve_block_matches_run;
          Alcotest.test_case "time stats sane" `Quick test_time_stats_sane;
        ] );
      ( "qcheck",
        [ QCheck_alcotest.to_alcotest ~long:true prop_parallel_equals_serial ] );
    ]
