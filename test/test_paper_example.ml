(* Golden tests against the paper's worked example (Figs. 1-3).

   Every weight documented in the paper's text and Fig. 3 is asserted,
   and both ILP outcomes (with and without incomplete MBRs) match the
   narrative: three final registers either way.

   One note on Fig. 3 as printed: the figure lists BF/CF at 0.50, but
   the paper's own formula (w = 1/b_i for clean candidates, with b_i
   "the number of bits of the registers that will be merged") gives
   1/3 for B1+F2 = 3 bits — the same arithmetic the text itself uses
   for AE (5 bits -> 0.20) and AEC (6 bits -> 0.17). We follow the
   formula. *)

module PE = Mbr_core.Paper_example
module Candidate = Mbr_core.Candidate
module Compat = Mbr_core.Compat
module Weight = Mbr_core.Weight
module Bk = Mbr_graph.Bron_kerbosch

let checkf = Alcotest.(check (float 1e-9))

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let t = PE.build ()

let w names = PE.weight_of t names

let test_singleton_weights () =
  (* Fig. 3 "Original" column: every kept register costs exactly 1 *)
  List.iter (fun n -> checkf n 1.0 (w [ n ])) [ "A"; "B"; "C"; "D"; "E"; "F" ]

let test_two_bit_weights () =
  checkf "AB" 0.5 (w [ "A"; "B" ]);
  checkf "AD" 0.5 (w [ "A"; "D" ]);
  checkf "AC" 0.5 (w [ "A"; "C" ]);
  checkf "BD" 0.5 (w [ "B"; "D" ]);
  checkf "CD" 0.5 (w [ "C"; "D" ]);
  (* D's center lies inside the B-C test polygon: 2 * 2^1 = 4 *)
  checkf "BC blocked by D" 4.0 (w [ "B"; "C" ])

let test_three_bit_weights () =
  checkf "ABD" (1.0 /. 3.0) (w [ "A"; "B"; "D" ]);
  checkf "BCD" (1.0 /. 3.0) (w [ "B"; "C"; "D" ]);
  checkf "ACD" (1.0 /. 3.0) (w [ "A"; "C"; "D" ]);
  checkf "BF" (1.0 /. 3.0) (w [ "B"; "F" ]);
  checkf "CF" (1.0 /. 3.0) (w [ "C"; "F" ]);
  (* the paper's example: {A,B,C} has {b,n} = {3,1} => 6 *)
  checkf "ABC blocked by D" 6.0 (w [ "A"; "B"; "C" ])

let test_four_bit_weights () =
  checkf "ABCD" 0.25 (w [ "A"; "B"; "C"; "D" ]);
  (* {B,C,F} = 4 bits with D inside: 4 * 2^1 = 8 *)
  checkf "BCF" 8.0 (w [ "B"; "C"; "F" ])

let test_wide_weights () =
  checkf "AE 5 bits" 0.2 (w [ "A"; "E" ]);
  checkf "AEC 6 bits" (1.0 /. 6.0) (w [ "A"; "C"; "E" ])

let test_fig1_maximal_cliques () =
  let cliques = Bk.maximal_cliques (Mbr_graph.Csr.to_ugraph t.PE.graph.Compat.adj) in
  (* {A,B,C,D}, {A,C,E}, {B,C,F} — the cliques the paper discusses *)
  Alcotest.(check (list (list int)))
    "cliques" [ [ 0; 1; 2; 3 ]; [ 0; 2; 4 ]; [ 1; 2; 5 ] ] cliques

let test_candidate_enumeration_no_incomplete () =
  let cands = PE.candidates ~allow_incomplete:false t in
  let has names =
    let nodes = List.sort compare (List.map (PE.node t) names) in
    List.exists (fun (c : Candidate.t) -> c.Candidate.members = nodes) cands
  in
  (* 6-bit {A,C,E} is invalid without an incomplete 8-bit mapping (§3) *)
  check "ACE absent" false (has [ "A"; "C"; "E" ]);
  check "AE absent" false (has [ "A"; "E" ]);
  check "ABCD present" true (has [ "A"; "B"; "C"; "D" ]);
  check "BF present" true (has [ "B"; "F" ]);
  check "singletons present" true (has [ "E" ])

let test_candidate_enumeration_incomplete () =
  let cands = PE.candidates ~allow_incomplete:true ~incomplete_area_overhead:0.6 t in
  let find names =
    let nodes = List.sort compare (List.map (PE.node t) names) in
    List.find_opt (fun (c : Candidate.t) -> c.Candidate.members = nodes) cands
  in
  (match find [ "A"; "E" ] with
  | Some c ->
    check "AE incomplete" true c.Candidate.incomplete;
    checki "AE 5 connected bits" 5 c.Candidate.bits;
    checki "AE maps to 8" 8 c.Candidate.target_bits
  | None -> Alcotest.fail "AE candidate expected");
  (* the production 5% rule rejects AE, as the paper notes *)
  let strict = PE.candidates ~allow_incomplete:true ~incomplete_area_overhead:0.05 t in
  check "AE rejected by area rule" true
    (not
       (List.exists
          (fun (c : Candidate.t) ->
            c.Candidate.members = List.sort compare [ PE.node t "A"; PE.node t "E" ])
          strict))

let test_ilp_without_incomplete () =
  (* paper: {B,F} + {A,C,D} + E kept = 3 registers, cost 1/3+1/3+1 *)
  let groups, cost = PE.solve ~allow_incomplete:false t in
  checki "three registers" 3 (List.length groups);
  checkf "cost 5/3" (5.0 /. 3.0) cost

let test_ilp_with_incomplete () =
  (* paper: "the same final register count" with incomplete MBRs *)
  let groups, cost = PE.solve ~allow_incomplete:true ~incomplete_area_overhead:0.6 t in
  checki "three registers" 3 (List.length groups);
  check "cheaper than the complete-only optimum" true (cost < 5.0 /. 3.0);
  (* every group is a pair: the incomplete mapping frees E to merge *)
  List.iter (fun g -> checki "pair" 2 (List.length g)) groups

let test_weight_formula_cases () =
  (* §3.2's arithmetic examples: 8-bit clean = 1/8 < two clean 4-bits;
     one 8-bit with a blocker (16) loses to 4-clean + 4-with-blocker
     (8.25) *)
  checkf "clean 8" (1.0 /. 8.0) (Weight.formula ~bits:8 ~blockers:0);
  checkf "two clean 4s" 0.5
    (Weight.formula ~bits:4 ~blockers:0 +. Weight.formula ~bits:4 ~blockers:0);
  checkf "8 with blocker" 16.0 (Weight.formula ~bits:8 ~blockers:1);
  checkf "4 clean + 4 blocked" 8.25
    (Weight.formula ~bits:4 ~blockers:0 +. Weight.formula ~bits:4 ~blockers:1);
  check "n >= b rejected" true
    (Weight.formula ~bits:3 ~blockers:3 = infinity);
  checkf "singleton rule" 1.0 (Weight.candidate_weight ~n_members:1 ~bits:4 ~blockers:0)

let () =
  Alcotest.run "paper_example"
    [
      ( "fig3_weights",
        [
          Alcotest.test_case "singletons" `Quick test_singleton_weights;
          Alcotest.test_case "2-cell candidates" `Quick test_two_bit_weights;
          Alcotest.test_case "3-bit candidates" `Quick test_three_bit_weights;
          Alcotest.test_case "4-bit candidates" `Quick test_four_bit_weights;
          Alcotest.test_case "5/6-bit candidates" `Quick test_wide_weights;
          Alcotest.test_case "weight formula cases" `Quick test_weight_formula_cases;
        ] );
      ( "fig1_graph",
        [ Alcotest.test_case "maximal cliques" `Quick test_fig1_maximal_cliques ] );
      ( "candidates",
        [
          Alcotest.test_case "no incomplete" `Quick test_candidate_enumeration_no_incomplete;
          Alcotest.test_case "incomplete admitted/rejected" `Quick
            test_candidate_enumeration_incomplete;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "without incomplete" `Quick test_ilp_without_incomplete;
          Alcotest.test_case "with incomplete" `Quick test_ilp_with_incomplete;
        ] );
    ]
