(* ECO sessions: Flow.Session.recompose must be indistinguishable from
   throwing everything away and re-running Flow.run on the same mutated
   design — the PR 1 refresh-vs-fresh STA property, one level up.

   The comparison protocol exploits determinism end to end: two
   identically-seeded generated designs start identical; each round
   applies identically-seeded Eco.perturb batches to both copies, then
   copy A is advanced by the persistent session's recompose and copy B
   by a from-scratch Flow.run. Both pipelines are deterministic, so the
   copies stay in lockstep round after round — any divergence in the
   results is a bug in the incremental path. *)

module Design = Mbr_netlist.Design
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module Corner = Mbr_sta.Corner
module Spatial = Mbr_core.Spatial
module Compat = Mbr_core.Compat
module Allocate = Mbr_core.Allocate
module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile
module Eco = Mbr_designgen.Eco
module Rng = Mbr_util.Rng

let close a b =
  a = b || (Float.is_finite a && Float.is_finite b && Float.abs (a -. b) <= 1e-6)

let profile seed = P.scaled (P.tiny ~seed) 0.5

let options_of ~mode ~jobs =
  { Flow.default_options with Flow.mode; jobs = Some jobs }

let blocker_index_of pl =
  let dsg = Placement.design pl in
  let index = Spatial.create () in
  List.iter
    (fun cid ->
      if Placement.is_placed pl cid then
        Spatial.add index cid (Placement.center pl cid))
    (Design.registers dsg);
  index

(* ---- Allocate.run_cached ---- *)

(* Identity with run on a cold cache; total reuse on an unchanged
   graph; identical selections either way. *)
let test_run_cached_identity () =
  let g = G.generate (profile 3) in
  let eng = Engine.build ~config:g.G.sta_config g.G.placement in
  let graph = Compat.build_graph eng g.G.library in
  let index = blocker_index_of g.G.placement in
  let plain = Allocate.run graph ~lib:g.G.library ~blocker_index:index in
  let cache = Allocate.create_cache () in
  let cold, s_cold =
    Allocate.run_cached cache graph ~lib:g.G.library ~blocker_index:index
  in
  Alcotest.(check int) "cold: all resolved" plain.Allocate.n_blocks
    s_cold.Allocate.blocks_resolved;
  Alcotest.(check int) "cold: none reused" 0 s_cold.Allocate.blocks_reused;
  let warm, s_warm =
    Allocate.run_cached cache graph ~lib:g.G.library ~blocker_index:index
  in
  Alcotest.(check int) "warm: none resolved" 0 s_warm.Allocate.blocks_resolved;
  Alcotest.(check int) "warm: all reused" plain.Allocate.n_blocks
    s_warm.Allocate.blocks_reused;
  Alcotest.(check int) "cache sized to the run" plain.Allocate.n_blocks
    (Allocate.cache_size cache);
  List.iter
    (fun (sel : Allocate.selection) ->
      Alcotest.(check (float 0.0)) "cost" plain.Allocate.cost sel.Allocate.cost;
      Alcotest.(check (list int)) "kept" plain.Allocate.kept sel.Allocate.kept;
      Alcotest.(check int) "merge count"
        (List.length plain.Allocate.merges)
        (List.length sel.Allocate.merges);
      List.iter2
        (fun (a : Mbr_core.Candidate.t) (b : Mbr_core.Candidate.t) ->
          Alcotest.(check (list int)) "members" a.members b.members;
          Alcotest.(check (list int)) "member cids" a.member_cids b.member_cids;
          Alcotest.(check (float 0.0)) "weight" a.weight b.weight)
        plain.Allocate.merges sel.Allocate.merges)
    [ cold; warm ]

(* ---- Flow.Session counters ---- *)

let test_session_counters () =
  let g = G.generate (profile 7) in
  let session =
    Flow.Session.create ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  let r1 = Flow.Session.recompose session in
  Alcotest.(check int) "first recompose reuses nothing" 0 r1.Flow.eco_blocks_reused;
  Alcotest.(check int) "first recompose resolves every block" r1.Flow.n_blocks
    r1.Flow.eco_blocks_resolved;
  Alcotest.(check int) "one recompose recorded" 1 (Flow.Session.recomposes session);
  let r2 = Flow.Session.recompose session in
  Alcotest.(check int) "counters cover the partition" r2.Flow.n_blocks
    (r2.Flow.eco_blocks_resolved + r2.Flow.eco_blocks_reused);
  Alcotest.(check bool) "compat refresh ran" true
    (Flow.Session.last_compat_stats session <> None)

(* A recompose with no intervening edits reaches a fixed point: once a
   previous recompose made no merges, the next one sees bit-identical
   register snapshots and must reuse every block. *)
let test_session_fixed_point_reuses_all () =
  let g = G.generate (profile 7) in
  let session =
    Flow.Session.create ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  let rec converge n prev =
    if n = 0 then prev
    else
      let r = Flow.Session.recompose session in
      if r.Flow.n_merges = 0 && r.Flow.n_resized = 0 then r
      else converge (n - 1) r
  in
  let settled = converge 5 (Flow.Session.recompose session) in
  Alcotest.(check int) "composition converged" 0 settled.Flow.n_merges;
  let next = Flow.Session.recompose session in
  Alcotest.(check int) "fixed point: nothing resolved" 0
    next.Flow.eco_blocks_resolved;
  Alcotest.(check int) "fixed point: everything reused" next.Flow.n_blocks
    next.Flow.eco_blocks_reused

(* A localized ECO on a converged session re-solves some blocks but
   not all of them (the counters the bench sweep relies on). *)
let test_session_localized_eco_reuses_some () =
  let g = G.generate (P.tiny ~seed:19) in
  let session =
    Flow.Session.create ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  ignore (Flow.Session.recompose session);
  ignore (Flow.Session.recompose session);
  ignore (Flow.Session.recompose session);
  let rng = Rng.create 23 in
  ignore (Eco.perturb ~config:{ Eco.default_config with Eco.move_frac = 0.05 } rng g);
  let r = Flow.Session.recompose session in
  Alcotest.(check bool) "some blocks reused" true (r.Flow.eco_blocks_reused > 0);
  Alcotest.(check bool) "strictly fewer blocks resolved than exist" true
    (r.Flow.eco_blocks_resolved < r.Flow.n_blocks)

(* ---- ownership (the single-writer discipline) ---- *)

let test_session_ownership () =
  let g = G.generate (profile 11) in
  let session =
    Flow.Session.create ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  Alcotest.(check (option int)) "fresh session unowned" None
    (Flow.Session.owner_id session);
  Flow.Session.acquire session;
  Alcotest.(check bool) "re-acquiring one's own session" true
    (Flow.Session.try_acquire session);
  (* another domain must neither steal nor drive the held session *)
  let stolen, drove =
    Domain.join
      (Domain.spawn (fun () ->
           let stolen = Flow.Session.try_acquire session in
           let drove =
             match Flow.Session.recompose session with
             | _ -> true
             | exception Invalid_argument _ -> false
           in
           (stolen, drove)))
  in
  Alcotest.(check bool) "try_acquire from another domain" false stolen;
  Alcotest.(check bool) "recompose from another domain" false drove;
  (* the owner works as usual, then hands the session over *)
  ignore (Flow.Session.recompose session);
  Flow.Session.release session;
  Alcotest.(check bool) "released: other domain takes it and drives it" true
    (Domain.join
       (Domain.spawn (fun () ->
            Flow.Session.acquire session;
            let r = Flow.Session.recompose session in
            Flow.Session.release session;
            r.Flow.n_blocks >= 0)));
  (* releasing a session we no longer hold is a bug, loudly *)
  Alcotest.(check bool) "double release raises" true
    (match Flow.Session.release session with
    | () -> false
    | exception Invalid_argument _ -> true)

(* A deadline that has already passed cancels the recompose's solver
   work, yet the pass completes, the result is feasible, and — the
   service-level promise — the same session serves the next request
   as if nothing happened. *)
let test_cancelled_recompose_session_usable () =
  let g = G.generate (profile 13) in
  let session =
    Flow.Session.create ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  let cancel = Mbr_util.Cancel.create ~timeout_s:0.0 () in
  let r1 = Flow.Session.recompose ~cancel session in
  Alcotest.(check bool) "reported cancelled" true r1.Flow.cancelled;
  Alcotest.(check bool) "still a complete pass" true (r1.Flow.n_blocks > 0);
  Alcotest.(check (option int)) "transient claim released" None
    (Flow.Session.owner_id session);
  (* the uncancelled rerun must match a from-scratch run on an
     identically-prepared twin: no cancelled-incumbent residue *)
  let r2 = Flow.Session.recompose session in
  Alcotest.(check bool) "not cancelled" false r2.Flow.cancelled;
  let gb = G.generate (profile 13) in
  let twin_session =
    Flow.Session.create ~design:gb.G.design ~placement:gb.G.placement
      ~library:gb.G.library ~sta_config:gb.G.sta_config ()
  in
  let t1 = Flow.Session.recompose ~cancel:(Mbr_util.Cancel.create ~timeout_s:0.0 ()) twin_session in
  Alcotest.(check bool) "twin cancelled too" true t1.Flow.cancelled;
  let t2 = Flow.Session.recompose twin_session in
  Alcotest.(check int) "same merges after recovery" t2.Flow.n_merges r2.Flow.n_merges;
  Alcotest.(check bool) "same cost after recovery" true
    (close t2.Flow.ilp_cost r2.Flow.ilp_cost);
  Alcotest.(check int) "same register count" t2.Flow.after.Metrics.total_regs
    r2.Flow.after.Metrics.total_regs

(* ---- the equivalence property ---- *)

let compare_results ~seed ~round (ra : Flow.result) (rb : Flow.result) =
  let fail fmt = QCheck.Test.fail_reportf fmt in
  let ma = ra.Flow.after and mb = rb.Flow.after in
  if ma.Metrics.total_regs <> mb.Metrics.total_regs then
    fail "seed %d round %d: register count %d (session) vs %d (fresh)" seed
      round ma.Metrics.total_regs mb.Metrics.total_regs;
  if ra.Flow.n_merges <> rb.Flow.n_merges then
    fail "seed %d round %d: merges %d vs %d" seed round ra.Flow.n_merges
      rb.Flow.n_merges;
  if not (close ra.Flow.ilp_cost rb.Flow.ilp_cost) then
    fail "seed %d round %d: cost %g vs %g" seed round ra.Flow.ilp_cost
      rb.Flow.ilp_cost;
  if not (close ma.Metrics.wns mb.Metrics.wns) then
    fail "seed %d round %d: wns %g vs %g" seed round ma.Metrics.wns
      mb.Metrics.wns;
  if not (close ma.Metrics.tns mb.Metrics.tns) then
    fail "seed %d round %d: tns %g vs %g" seed round ma.Metrics.tns
      mb.Metrics.tns;
  if
    ra.Flow.eco_blocks_resolved + ra.Flow.eco_blocks_reused <> ra.Flow.n_blocks
  then
    fail "seed %d round %d: counters %d + %d do not cover %d blocks" seed round
      ra.Flow.eco_blocks_resolved ra.Flow.eco_blocks_reused ra.Flow.n_blocks;
  if ra.Flow.recover_rounds <> rb.Flow.recover_rounds then
    fail "seed %d round %d: recovery rounds %d vs %d" seed round
      ra.Flow.recover_rounds rb.Flow.recover_rounds;
  if ra.Flow.recover_splits <> rb.Flow.recover_splits then
    fail "seed %d round %d: recovery splits %d vs %d" seed round
      ra.Flow.recover_splits rb.Flow.recover_splits;
  (if List.length ma.Metrics.corners <> List.length mb.Metrics.corners then
     fail "seed %d round %d: %d corner rows (session) vs %d (fresh)" seed round
       (List.length ma.Metrics.corners)
       (List.length mb.Metrics.corners)
   else
     List.iter2
       (fun (na, wa, ta) (nb, wb, tb) ->
         if na <> nb || not (close wa wb) || not (close ta tb) then
           fail "seed %d round %d: corner %s wns %g tns %g vs %s wns %g tns %g"
             seed round na wa ta nb wb tb)
       ma.Metrics.corners mb.Metrics.corners);
  true

let recompose_equivalence =
  QCheck.Test.make ~name:"recompose = from-scratch run over random ECO batches"
    ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let mode = if seed mod 2 = 0 then `Ilp else `Greedy_share in
      let jobs = if seed mod 4 < 2 then 1 else 4 in
      let options = options_of ~mode ~jobs in
      let gen_seed = seed mod 37 in
      let ga = G.generate (profile gen_seed) in
      let gb = G.generate (profile gen_seed) in
      let session =
        Flow.Session.create ~options ~design:ga.G.design
          ~placement:ga.G.placement ~library:ga.G.library
          ~sta_config:ga.G.sta_config ()
      in
      let fresh_run () =
        Flow.run ~options ~design:gb.G.design ~placement:gb.G.placement
          ~library:gb.G.library ~sta_config:gb.G.sta_config ()
      in
      let rounds = 1 + (seed mod 2) in
      let ok = ref true in
      (* round 0: identical inputs, session vs one-shot *)
      ok := !ok && compare_results ~seed ~round:0
                     (Flow.Session.recompose session)
                     (fresh_run ());
      for round = 1 to rounds do
        (* identically-seeded perturbations keep the copies in lockstep *)
        let batch_seed = (seed * 31) + round in
        ignore (Eco.perturb (Rng.create batch_seed) ga);
        ignore (Eco.perturb (Rng.create batch_seed) gb);
        ok :=
          !ok
          && compare_results ~seed ~round
               (Flow.Session.recompose session)
               (fresh_run ())
      done;
      !ok)

(* The equivalence must also hold when the session analyzes several
   corners and carries a recovery budget: the recovery loop's extra
   decompose rounds ride the incremental path (splits dirty blocks,
   re-solve only those), while the from-scratch run rebuilds the same
   state outright. Worst-corner victim picks, split placement, pinning
   and the per-corner QoR rows must all land identically — asserted by
   the recover_rounds / recover_splits / corner-row clauses of
   [compare_results]. The clock period is tightened so the derated
   corner has real violations and the recovery budget has work. *)
let multicorner_recompose_equivalence =
  QCheck.Test.make
    ~name:"multi-corner + recover: recompose = from-scratch run" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let corners =
        if seed mod 2 = 0 then [| Corner.typical; Corner.harsh |]
        else Corner.spread_set 0.25
      in
      let options =
        { Flow.default_options with
          Flow.corners;
          recover = 1 + (seed mod 3);
          jobs = Some (if seed mod 4 < 2 then 1 else 4)
        }
      in
      let gen_seed = seed mod 37 in
      let tighten g =
        { g.G.sta_config with
          Engine.clock_period = g.G.sta_config.Engine.clock_period *. 0.9 }
      in
      let ga = G.generate (profile gen_seed) in
      let gb = G.generate (profile gen_seed) in
      let session =
        Flow.Session.create ~options ~design:ga.G.design
          ~placement:ga.G.placement ~library:ga.G.library
          ~sta_config:(tighten ga) ()
      in
      let fresh_run () =
        Flow.run ~options ~design:gb.G.design ~placement:gb.G.placement
          ~library:gb.G.library ~sta_config:(tighten gb) ()
      in
      let ok = ref true in
      ok := !ok && compare_results ~seed ~round:0
                     (Flow.Session.recompose session)
                     (fresh_run ());
      for round = 1 to 1 + (seed mod 2) do
        let batch_seed = (seed * 53) + round in
        ignore (Eco.perturb (Rng.create batch_seed) ga);
        ignore (Eco.perturb (Rng.create batch_seed) gb);
        ok :=
          !ok
          && compare_results ~seed ~round
               (Flow.Session.recompose session)
               (fresh_run ())
      done;
      !ok)

let () =
  Alcotest.run "mbr_core.flow_eco"
    [
      ( "allocate-cache",
        [ Alcotest.test_case "run_cached identity + reuse" `Quick
            test_run_cached_identity ] );
      ( "session",
        [
          Alcotest.test_case "reuse counters" `Quick test_session_counters;
          Alcotest.test_case "fixed point reuses all blocks" `Quick
            test_session_fixed_point_reuses_all;
          Alcotest.test_case "localized ECO reuses some blocks" `Quick
            test_session_localized_eco_reuses_some;
          Alcotest.test_case "ownership discipline" `Quick
            test_session_ownership;
          Alcotest.test_case "cancelled recompose leaves session usable" `Quick
            test_cancelled_recompose_session_usable;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest recompose_equivalence;
          QCheck_alcotest.to_alcotest multicorner_recompose_equivalence;
        ] );
    ]
