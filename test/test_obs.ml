(* Tests for Mbr_obs: the telemetry layer (PR: span tracing + metrics
   registry + Chrome trace export).

   - Clock: monotone, starts near zero.
   - Json: printer/parser roundtrip, standard-JSON acceptance,
     accessors, non-finite handling.
   - Metrics: registration semantics, disabled-mode no-ops, the
     Stats.histogram bin convention, and the domain-safety property the
     registry promises — N pool workers bumping shared counters and
     histograms lose no increments, and a snapshot is identical at
     jobs = 1 and jobs = 4 (qcheck).
   - Trace: a traced Flow.run on the tiny design with a 2-domain pool
     exports valid Chrome trace JSON — parsed back with the
     independent parser: every B has its E, the Fig.-4 stages appear in
     pipeline order, the pool's worker domains appear as extra tids,
     the stage spans cover >= 95 % of flow.recompose, and a disabled
     run records nothing. *)

module Obs = Mbr_obs
module J = Mbr_obs.Json
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile
module Flow = Mbr_core.Flow

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* ---- clock ---- *)

let test_clock () =
  let a = Obs.Clock.now_s () in
  let b = Obs.Clock.now_s () in
  check "monotone" true (b >= a);
  check "non-negative" true (a >= 0.0);
  check "ns/us/s agree" true
    (Float.abs ((Obs.Clock.now_us () *. 1e-6) -. Obs.Clock.now_s ()) < 0.1)

(* ---- json ---- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("a", J.Num 1.0);
        ("b", J.Str "x\"y\\z\n\t");
        ("c", J.Arr [ J.Bool true; J.Null; J.Num (-2.5); J.Num 1e22 ]);
        ("nested", J.Obj [ ("empty_arr", J.Arr []); ("empty_obj", J.Obj []) ]);
      ]
  in
  check "roundtrip" true (J.of_string (J.to_string v) = v);
  Alcotest.(check string)
    "integral floats print as ints" "{\"n\":42}"
    (J.to_string (J.Obj [ ("n", J.Num 42.0) ]));
  check "non-finite prints as null" true
    (J.to_string (J.Num Float.nan) = "null"
    && J.to_string (J.Num Float.infinity) = "null")

let test_json_parse () =
  let j = J.of_string {| {"xs": [1, 2.5, "s\u0041", false, null], "k": -3e2} |} in
  (match Option.bind (J.member "xs" j) J.to_list with
  | Some [ one; _; s; f; n ] ->
    check "num" true (J.to_int one = Some 1);
    check "unicode escape" true (J.to_str s = Some "sA");
    check "bool" true (f = J.Bool false);
    check "null" true (n = J.Null)
  | _ -> Alcotest.fail "xs shape");
  check "exponent" true (Option.bind (J.member "k" j) J.to_float = Some (-300.0));
  check "trailing garbage rejected" true
    (match J.of_string "{} x" with
    | exception J.Parse_error _ -> true
    | _ -> false);
  check "to_int on non-integral" true (J.to_int (J.Num 1.5) = None)

(* typed errors: the wire-format entry point reports the failure mode
   as data, and agrees with the legacy exception's message *)
let test_json_typed_errors () =
  let kind_of s =
    match J.of_string_result s with
    | Ok _ -> None
    | Error e -> Some e.J.kind
  in
  check "trailing garbage" true (kind_of "{} x" = Some J.Trailing_garbage);
  check "unterminated string" true
    (kind_of "\"abc" = Some J.Unterminated_string);
  check "unterminated key mid-object" true
    (kind_of "{\"k" = Some J.Unterminated_string);
  check "empty input" true (kind_of "" = Some J.Unexpected_end);
  check "truncated object" true (kind_of "{\"k\": 1" = Some (J.Expected "',' or '}'"));
  check "bad escape" true (kind_of "\"a\\x\"" = Some J.Bad_escape);
  check "truncated \\u escape" true (kind_of "\"\\u00" = Some J.Bad_escape);
  check "bad number" true (kind_of "-" = Some J.Bad_number);
  check "missing colon" true (kind_of "{\"k\" 1}" = Some (J.Expected "':'"));
  check "bare garbage" true (kind_of "@" = Some J.Bad_number);
  (match J.of_string_result "{} x" with
  | Error e ->
    checki "offset points at the garbage" 3 e.J.offset;
    let msg =
      match J.of_string "{} x" with
      | exception J.Parse_error m -> m
      | _ -> Alcotest.fail "of_string accepted trailing garbage"
    in
    Alcotest.(check string)
      "exception message = error_to_string" (J.error_to_string e) msg
  | Ok _ -> Alcotest.fail "of_string_result accepted trailing garbage");
  check "ok path" true (J.of_string_result "[1, 2]" = Ok (J.Arr [ J.Num 1.0; J.Num 2.0 ]))

(* \uXXXX escapes: surrogate pairs combine into one code point (4-byte
   UTF-8), lone surrogates are Bad_escape, and the error offset points
   into the escape *)
let test_json_surrogates () =
  check "surrogate pair combines to 4-byte UTF-8" true
    (J.of_string "\"\\uD83D\\uDE00\"" = J.Str "\240\159\152\128");
  check "3-byte BMP escape" true
    (J.of_string "\"\\u20AC\"" = J.Str "\226\130\172");
  check "2-byte escape" true (J.of_string "\"\\u00E9\"" = J.Str "\195\169");
  check "astral char roundtrips raw through the printer" true
    (J.of_string (J.to_string (J.Str "\240\159\152\128"))
    = J.Str "\240\159\152\128");
  let err s =
    match J.of_string_result s with
    | Ok _ -> None
    | Error e -> Some (e.J.kind, e.J.offset)
  in
  check "lone high surrogate" true (err "\"\\uD83D\"" = Some (J.Bad_escape, 7));
  check "lone low surrogate" true (err "\"\\uDC00\"" = Some (J.Bad_escape, 7));
  check "high surrogate + non-low escape" true
    (err "\"\\uD83D\\u0041\"" = Some (J.Bad_escape, 13));
  check "non-hex digits" true (err "\"\\uZZ00\"" = Some (J.Bad_escape, 3));
  check "truncated escape" true (err "\"\\u00" = Some (J.Bad_escape, 3))

(* qcheck: anything the printers emit, the parser reads back, bit for
   bit — compact and pretty. Numbers are drawn from values [%.12g]
   renders exactly (integers and sixteenths), since JSON printing of
   arbitrary doubles is deliberately lossy in this module. *)
let json_gen =
  let open QCheck2.Gen in
  let num =
    oneof
      [
        map float_of_int (int_range (-1_000_000) 1_000_000);
        map (fun i -> float_of_int i /. 16.0) (int_range (-16_000) 16_000);
      ]
  in
  let str = small_string ~gen:(map Char.chr (int_range 0 255)) in
  let leaf =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun f -> J.Num f) num;
        map (fun s -> J.Str s) str;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           oneof
             [
               leaf;
               map (fun l -> J.Arr l) (list_size (int_range 0 4) (self (n / 2)));
               map
                 (fun l -> J.Obj l)
                 (list_size (int_range 0 4) (pair str (self (n / 2))));
             ])

let prop_json_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"json: write -> read roundtrip"
    json_gen
    (fun v ->
      J.of_string (J.to_string v) = v
      &&
      match J.of_string_result (J.to_string_pretty v) with
      | Ok v' -> v' = v
      | Error _ -> false)

(* ---- metrics ---- *)

let test_metrics_registry () =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "test.reg.c" in
  let c' = Obs.Metrics.counter "test.reg.c" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:2 c';
  checki "idempotent registration shares state" 3 (Obs.Metrics.counter_value c);
  check "kind mismatch raises" true
    (match Obs.Metrics.gauge "test.reg.c" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Obs.Metrics.disable ();
  Obs.Metrics.incr c;
  checki "disabled bump is a no-op" 3 (Obs.Metrics.counter_value c);
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  checki "reset zeroes, keeps handle" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  checki "handle live after reset" 1 (Obs.Metrics.counter_value c);
  Obs.Metrics.disable ()

let test_histogram_bins () =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let bins = [| 1.0; 2.0; 4.0 |] in
  let h = Obs.Metrics.histogram ~bins "test.histo.bins" in
  let xs = [| 0.5; 1.0; 1.5; 2.0; 3.9; 4.0; 4.1; 100.0 |] in
  Array.iter (Obs.Metrics.observe h) xs;
  let snap = Obs.Metrics.snapshot () in
  let hs = List.assoc "test.histo.bins" snap.Obs.Metrics.histograms in
  (* the registry must place observations exactly like Stats.histogram *)
  Alcotest.(check (array int))
    "Stats.histogram convention"
    (Mbr_util.Stats.histogram ~bins xs)
    hs.Obs.Metrics.counts;
  checki "count" (Array.length xs) hs.Obs.Metrics.count;
  check "sum" true
    (Float.abs (hs.Obs.Metrics.sum -. Array.fold_left ( +. ) 0.0 xs) < 1e-9);
  check "re-registration with other bins raises" true
    (match Obs.Metrics.histogram ~bins:[| 9.0 |] "test.histo.bins" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Obs.Metrics.disable ()

(* qcheck: concurrent bumps from pool workers lose nothing, and the
   snapshot is independent of the jobs setting *)
let prop_concurrent_counts =
  QCheck2.Test.make ~count:25 ~name:"metrics: pool workers lose no increments"
    QCheck2.Gen.(pair (int_range 1 400) (int_range 1 7))
    (fun (n_tasks, by) ->
      Obs.Metrics.reset ();
      Obs.Metrics.enable ();
      let c = Obs.Metrics.counter "test.conc.c" in
      let h = Obs.Metrics.histogram "test.conc.h" in
      let work _i =
        Obs.Metrics.incr ~by c;
        Obs.Metrics.observe h 0.002
      in
      let snap_for jobs =
        Obs.Metrics.reset ();
        ignore
          (Mbr_util.Pool.map_array ~jobs work (Array.init n_tasks Fun.id));
        Obs.Metrics.snapshot ()
      in
      let serial = snap_for 1 in
      let parallel = snap_for 4 in
      Obs.Metrics.disable ();
      let total (s : Obs.Metrics.snapshot) =
        List.assoc "test.conc.c" s.Obs.Metrics.counters
      in
      let hcount (s : Obs.Metrics.snapshot) =
        (List.assoc "test.conc.h" s.Obs.Metrics.histograms).Obs.Metrics.count
      in
      total serial = n_tasks * by
      && total parallel = n_tasks * by
      && hcount serial = n_tasks
      && hcount parallel = n_tasks
      (* identical snapshots up to the pool's own scheduling counters,
         which legitimately differ between jobs settings *)
      && List.filter (fun (k, _) -> not (String.length k >= 5 && String.sub k 0 5 = "pool."))
           serial.Obs.Metrics.counters
         = List.filter (fun (k, _) -> not (String.length k >= 5 && String.sub k 0 5 = "pool."))
             parallel.Obs.Metrics.counters
      && serial.Obs.Metrics.histograms = parallel.Obs.Metrics.histograms)

(* ---- labeled series, quantiles, snapshot algebra ---- *)

let test_labeled_metrics () =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let a = Obs.Metrics.counter ~labels:[ ("session", "a") ] "test.lab.c" in
  let b = Obs.Metrics.counter ~labels:[ ("session", "b") ] "test.lab.c" in
  Obs.Metrics.incr a;
  Obs.Metrics.incr ~by:2 b;
  let snap = Obs.Metrics.snapshot () in
  checki "series a independent" 1
    (List.assoc "test.lab.c{session=\"a\"}" snap.Obs.Metrics.counters);
  checki "series b independent" 2
    (List.assoc "test.lab.c{session=\"b\"}" snap.Obs.Metrics.counters);
  check "label order canonicalized" true
    (Obs.Metrics.series_name "m" [ ("z", "1"); ("a", "2") ]
    = Obs.Metrics.series_name "m" [ ("a", "2"); ("z", "1") ]);
  check "split_series inverts series_name" true
    (Obs.Metrics.split_series "test.lab.c{session=\"a\"}"
    = ("test.lab.c", [ ("session", "a") ]));
  check "unlabeled key passes through split" true
    (Obs.Metrics.split_series "plain.name" = ("plain.name", []));
  check "escaped label value survives" true
    (let key = Obs.Metrics.series_name "m" [ ("k", "a\"b\\c\nd") ] in
     Obs.Metrics.split_series key = ("m", [ ("k", "a\"b\\c\nd") ]));
  Obs.Metrics.disable ()

(* qcheck: labeled series bumped from pool workers lose nothing and
   agree between jobs settings, exactly like unlabeled ones *)
let prop_labeled_concurrent =
  QCheck2.Test.make ~count:20
    ~name:"metrics: labeled series lose no increments under pool"
    QCheck2.Gen.(int_range 1 200)
    (fun n_tasks ->
      Obs.Metrics.reset ();
      Obs.Metrics.enable ();
      let series =
        Array.init 4 (fun i ->
            Obs.Metrics.counter
              ~labels:[ ("w", string_of_int i) ]
              "test.labc.c")
      in
      let work i = Obs.Metrics.incr series.(i mod 4) in
      let totals_for jobs =
        Obs.Metrics.reset ();
        ignore (Mbr_util.Pool.map_array ~jobs work (Array.init n_tasks Fun.id));
        let s = Obs.Metrics.snapshot () in
        List.filter
          (fun (k, _) -> fst (Obs.Metrics.split_series k) = "test.labc.c")
          s.Obs.Metrics.counters
      in
      let serial = totals_for 1 in
      let parallel = totals_for 4 in
      Obs.Metrics.disable ();
      serial = parallel
      && List.fold_left (fun acc (_, v) -> acc + v) 0 serial = n_tasks)

let test_quantile () =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let h = Obs.Metrics.histogram ~bins:[| 1.0; 2.0; 4.0 |] "test.q.h" in
  let hs () =
    List.assoc "test.q.h" (Obs.Metrics.snapshot ()).Obs.Metrics.histograms
  in
  check "empty histogram -> 0" true (Obs.Metrics.quantile (hs ()) 0.5 = 0.0);
  for _ = 1 to 100 do
    Obs.Metrics.observe h 0.5
  done;
  (* 100 observations in (0,1]: rank interpolation is exact *)
  check "p50 interpolates inside the bin" true
    (Float.abs (Obs.Metrics.quantile (hs ()) 0.5 -. 0.5) < 1e-9);
  check "p99 interpolates inside the bin" true
    (Float.abs (Obs.Metrics.quantile (hs ()) 0.99 -. 0.99) < 1e-9);
  for _ = 1 to 100 do
    Obs.Metrics.observe h 100.0
  done;
  check "overflow rank clamps to the last finite edge" true
    (Obs.Metrics.quantile (hs ()) 0.99 = 4.0);
  check "q clamped to [0,1]" true (Obs.Metrics.quantile (hs ()) 2.0 = 4.0);
  Obs.Metrics.disable ()

(* qcheck: the delta algebra behind the telemetry verb — replaying a
   diff onto its base reproduces the newer snapshot, and the JSON
   codec is lossless *)
let prop_snapshot_diff =
  QCheck2.Test.make ~count:60 ~name:"metrics: apply(diff) = newer snapshot"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 30) (int_range 0 5))
        (list_size (int_range 0 30) (int_range 0 5)))
    (fun (ops1, ops2) ->
      Obs.Metrics.reset ();
      Obs.Metrics.enable ();
      let c = Obs.Metrics.counter "test.diff.c" in
      let g = Obs.Metrics.gauge "test.diff.g" in
      let h = Obs.Metrics.histogram ~bins:[| 1.0; 2.0 |] "test.diff.h" in
      let lab = Obs.Metrics.counter ~labels:[ ("s", "x") ] "test.diff.c2" in
      let apply_op i =
        match i with
        | 0 -> Obs.Metrics.incr c
        | 1 -> Obs.Metrics.set g (float_of_int i)
        | 2 -> Obs.Metrics.observe h 1.5
        | 3 -> Obs.Metrics.incr lab
        | 4 -> Obs.Metrics.observe h 0.25
        | _ -> Obs.Metrics.set g 7.5
      in
      List.iter apply_op ops1;
      let s1 = Obs.Metrics.snapshot () in
      List.iter apply_op ops2;
      let s2 = Obs.Metrics.snapshot () in
      Obs.Metrics.disable ();
      let delta = Obs.Metrics.Snapshot.diff ~base:s1 s2 in
      Obs.Metrics.Snapshot.apply ~base:s1 delta = s2
      && Obs.Metrics.snapshot_of_json (Obs.Metrics.snapshot_json s2) = Ok s2
      && Obs.Metrics.snapshot_of_json (Obs.Metrics.snapshot_json delta)
         = Ok delta)

(* ---- prometheus exposition ---- *)

(* qcheck: whatever garbage the registry holds, the renderer's output
   obeys the exposition grammar — legal metric and label names, one
   # TYPE per family, every sample line value parseable *)
let prom_snapshot_gen =
  let open QCheck2.Gen in
  let str = small_string ~gen:(map Char.chr (int_range 32 126)) in
  let key =
    map2 Obs.Metrics.series_name str (list_size (int_range 0 2) (pair str str))
  in
  let histo =
    map2
      (fun edges counts ->
        let bins =
          Array.of_list
            (List.sort_uniq compare (List.map (fun i -> float_of_int i /. 4.0) edges))
        in
        let counts =
          Array.init
            (Array.length bins + 1)
            (fun i -> try List.nth counts i with _ -> 0)
        in
        {
          Obs.Metrics.bins;
          counts;
          sum = Array.fold_left (fun a c -> a +. float_of_int c) 0.0 counts;
          count = Array.fold_left ( + ) 0 counts;
        })
      (list_size (int_range 1 4) (int_range (-8) 32))
      (list_size (return 5) (int_range 0 50))
  in
  map3
    (fun cs gs hs -> { Obs.Metrics.counters = cs; gauges = gs; histograms = hs })
    (list_size (int_range 0 5) (pair key (int_range 0 1000)))
    (list_size (int_range 0 5)
       (pair key (map (fun i -> float_of_int i /. 8.0) (int_range (-800) 800))))
    (list_size (int_range 0 3) (pair key histo))

let prop_prom_legal =
  QCheck2.Test.make ~count:100 ~name:"prom: rendered exposition is legal"
    prom_snapshot_gen
    (fun snap ->
      let text = Obs.Prom.render snap in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
      in
      let type_fams = Hashtbl.create 8 in
      List.for_all
        (fun line ->
          if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then (
            match String.split_on_char ' ' line with
            | [ _; _; fam; kind ] ->
              Obs.Prom.is_legal_metric_name fam
              && List.mem kind [ "counter"; "gauge"; "histogram" ]
              && not (Hashtbl.mem type_fams fam)
              && (Hashtbl.add type_fams fam ();
                  true)
            | _ -> false)
          else if String.length line >= 1 && line.[0] = '#' then true
          else
            (* sample: NAME["{" labels "}"] " " VALUE *)
            let name_end =
              match
                (String.index_opt line '{', String.index_opt line ' ')
              with
              | Some a, Some b -> min a b
              | None, Some b -> b
              | _, None -> -1
            in
            name_end > 0
            && Obs.Prom.is_legal_metric_name (String.sub line 0 name_end)
            && (* label values never contain raw spaces after escaping, so
                  the last space separates the value *)
            (match String.rindex_opt line ' ' with
            | None -> false
            | Some sp ->
              let v = String.sub line (sp + 1) (String.length line - sp - 1) in
              v = "+Inf" || v = "-Inf" || v = "NaN"
              || float_of_string_opt v <> None))
        lines)

(* ---- trace export over a real flow ---- *)

let fig4_stages =
  [ "eco-reset"; "metrics-before"; "decompose"; "compat-graph";
    "blocker-index"; "allocate"; "merge"; "scan-restitch"; "skew";
    "resize"; "metrics-after" ]

type ev = { name : string; ph : string; ts : float; tid : int }

let events_of_export j =
  match Option.bind (J.member "traceEvents" j) J.to_list with
  | None -> Alcotest.fail "no traceEvents array"
  | Some l ->
    List.map
      (fun e ->
        let get k f = Option.bind (J.member k e) f in
        match (get "name" J.to_str, get "ph" J.to_str, get "ts" J.to_float,
               get "pid" J.to_int, get "tid" J.to_int) with
        | Some name, Some ph, Some ts, Some _, Some tid -> { name; ph; ts; tid }
        | _ -> Alcotest.fail ("malformed event: " ^ J.to_string e))
      l

let run_tiny_traced () =
  Obs.Trace.clear ();
  Obs.Trace.enable ();
  let g = G.generate (P.tiny ~seed:11) in
  let options = { Flow.default_options with Flow.jobs = Some 2 } in
  let r =
    Flow.run ~options ~design:g.G.design ~placement:g.G.placement
      ~library:g.G.library ~sta_config:g.G.sta_config ()
  in
  Obs.Trace.disable ();
  let j = J.of_string (J.to_string (Obs.Trace.export ())) in
  (r, events_of_export j)

let test_trace_export () =
  let r, events = run_tiny_traced () in
  check "has events" true (events <> []);
  (* timestamps are exported in order *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.ts <= b.ts && sorted rest
    | _ -> true
  in
  check "ts sorted" true (sorted events);
  (* per-tid stack discipline: every B closed by a matching E *)
  let stacks = Hashtbl.create 8 in
  let spans = ref [] in
  List.iter
    (fun e ->
      let s =
        match Hashtbl.find_opt stacks e.tid with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.add stacks e.tid s;
          s
      in
      match e.ph with
      | "B" -> s := (e.name, e.ts) :: !s
      | "E" -> (
        match !s with
        | (name, t0) :: rest ->
          check "E matches innermost B" true (name = e.name);
          s := rest;
          spans := (name, e.tid, e.ts -. t0) :: !spans
        | [] -> Alcotest.fail "E with no open span")
      | _ -> ())
    events;
  Hashtbl.iter
    (fun _ s -> check "all spans closed" true (!s = []))
    stacks;
  (* Fig.-4 stage order *)
  let stage_begins =
    List.filter_map
      (fun e ->
        if e.ph = "B" && List.mem e.name fig4_stages then Some e.name else None)
      events
  in
  Alcotest.(check (list string)) "stages in pipeline order" fig4_stages
    stage_begins;
  (* the jobs = 2 pool ran worker spans on >= 2 distinct domains *)
  let worker_tids =
    List.sort_uniq compare
      (List.filter_map
         (fun (n, tid, _) -> if n = "pool.worker" then Some tid else None)
         !spans)
  in
  check "pool workers on >= 2 domains" true (List.length worker_tids >= 2);
  (* stage spans cover >= 95 % of the recompose span, which equals
     runtime_s (same clock, same reads) *)
  let dur name =
    List.fold_left
      (fun acc (n, _, d) -> if n = name then acc +. d else acc)
      0.0 !spans
  in
  let recompose_us = dur "flow.recompose" in
  check "recompose span = runtime_s" true
    (Float.abs ((recompose_us *. 1e-6) -. r.Flow.runtime_s) < 1e-9);
  let stage_us =
    List.fold_left (fun acc n -> acc +. dur n) 0.0 fig4_stages
  in
  check "stage coverage >= 95%" true (stage_us >= 0.95 *. recompose_us);
  (* stage_times in the result are the stage spans' own durations *)
  List.iter
    (fun (name, t) ->
      check (name ^ " time matches span") true
        (Float.abs ((dur name *. 1e-6) -. t) < 1e-9))
    r.Flow.stage_times

let test_trace_disabled () =
  Obs.Trace.clear ();
  check "disabled by default here" false (Obs.Trace.is_enabled ());
  let g = G.generate (P.tiny ~seed:2) in
  let r =
    Flow.run ~design:g.G.design ~placement:g.G.placement ~library:g.G.library
      ~sta_config:g.G.sta_config ()
  in
  checki "no events recorded when disabled" 0 (Obs.Trace.n_events ());
  (* timings still flow to the caller *)
  check "runtime measured anyway" true (r.Flow.runtime_s > 0.0);
  check "stage times measured anyway" true
    (List.for_all (fun (_, t) -> t >= 0.0) r.Flow.stage_times)

(* the ring is bounded: with capacity 8, 100 instants keep only the
   last 8 in order and account for the rest in dropped_events *)
let test_trace_ring_bound () =
  let saved = Obs.Trace.get_capacity () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.disable ();
      Obs.Metrics.disable ();
      Obs.Trace.set_capacity saved;
      Obs.Trace.clear ())
    (fun () ->
      Obs.Trace.set_capacity 8;
      Obs.Trace.clear ();
      Obs.Metrics.reset ();
      Obs.Metrics.enable ();
      let dropped0 = Obs.Trace.dropped_events () in
      Obs.Trace.enable ();
      for i = 0 to 99 do
        Obs.Trace.instant (Printf.sprintf "tick%d" i)
      done;
      Obs.Trace.disable ();
      checki "ring holds exactly capacity" 8 (Obs.Trace.n_events ());
      checki "overflow counted as dropped" 92
        (Obs.Trace.dropped_events () - dropped0);
      let names =
        List.map
          (fun e -> e.name)
          (events_of_export (J.of_string (J.to_string (Obs.Trace.export ()))))
      in
      Alcotest.(check (list string))
        "export keeps the newest events in order"
        (List.init 8 (fun i -> Printf.sprintf "tick%d" (92 + i)))
        names;
      check "dropped surfaces in metrics snapshot" true
        (match
           List.assoc_opt "trace.dropped"
             (Obs.Metrics.snapshot ()).Obs.Metrics.counters
         with
        | Some n -> n >= 92
        | None -> false))

let () =
  Alcotest.run "mbr_obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotone" `Quick test_clock ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "typed errors" `Quick test_json_typed_errors;
          Alcotest.test_case "surrogates" `Quick test_json_surrogates;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "histogram bins" `Quick test_histogram_bins;
          Alcotest.test_case "labeled series" `Quick test_labeled_metrics;
          Alcotest.test_case "quantile" `Quick test_quantile;
          QCheck_alcotest.to_alcotest prop_concurrent_counts;
          QCheck_alcotest.to_alcotest prop_labeled_concurrent;
          QCheck_alcotest.to_alcotest prop_snapshot_diff;
        ] );
      ( "prom",
        [ QCheck_alcotest.to_alcotest prop_prom_legal ] );
      ( "trace",
        [
          Alcotest.test_case "export over traced flow" `Quick test_trace_export;
          Alcotest.test_case "disabled mode" `Quick test_trace_disabled;
          Alcotest.test_case "ring bound" `Quick test_trace_ring_bound;
        ] );
    ]
