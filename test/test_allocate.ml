(* Tests for Mbr_core.Allocate: exact-cover invariants, ILP-vs-greedy
   ordering (Fig. 6's premise), and partition-bound behaviour, on both
   hand-built graphs and a generated design. *)

module Allocate = Mbr_core.Allocate
module Candidate = Mbr_core.Candidate
module Compat = Mbr_core.Compat
module Spatial = Mbr_core.Spatial
module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Ugraph = Mbr_graph.Ugraph
module Presets = Mbr_liberty.Presets
module Design = Mbr_netlist.Design
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let lib = Presets.default ()

let row_graph n =
  let infos =
    Array.init n (fun i ->
        let x = 3.0 *. float_of_int i in
        let footprint = Rect.make ~lx:x ~ly:0.0 ~hx:(x +. 1.4) ~hy:1.2 in
        Compat.
          {
            cid = 1000 + i;
            bits = 1;
            func_class = "dff";
            clock = 0;
            enable = None;
            reset = None;
            scan = None;
            drive_res = 2.0;
            d_slack = 50.0;
            q_slack = 50.0;
            footprint;
            feasible = Rect.expand footprint 30.0;
            center = Rect.center footprint;
          })
  in
  let g = Ugraph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Ugraph.add_edge g i j
    done
  done;
  { Compat.adj = Mbr_graph.Csr.of_ugraph g; infos }

let index_of graph =
  let idx = Spatial.create () in
  Array.iter (fun i -> Spatial.add idx i.Compat.cid i.Compat.center) graph.Compat.infos;
  idx

let exact_cover graph sel =
  let n = Array.length graph.Compat.infos in
  let covered = Array.make n 0 in
  List.iter
    (fun (c : Candidate.t) ->
      List.iter (fun v -> covered.(v) <- covered.(v) + 1) c.Candidate.members)
    sel.Allocate.merges;
  List.iter (fun v -> covered.(v) <- covered.(v) + 1) sel.Allocate.kept;
  Array.for_all (fun k -> k = 1) covered

let test_exact_cover_small () =
  let graph = row_graph 6 in
  let sel = Allocate.run graph ~lib ~blocker_index:(index_of graph) in
  check "exact cover" true (exact_cover graph sel);
  check "optimal" true sel.Allocate.all_optimal

let test_full_merge_of_eight () =
  (* 8 clean 1-bit registers in a row tile into one 8-bit MBR *)
  let graph = row_graph 8 in
  let sel = Allocate.run graph ~lib ~blocker_index:(index_of graph) in
  checki "one merge" 1 (List.length sel.Allocate.merges);
  checki "nothing kept" 0 (List.length sel.Allocate.kept);
  (match sel.Allocate.merges with
  | [ m ] -> checki "eight members" 8 (List.length m.Candidate.members)
  | _ -> Alcotest.fail "single merge expected")

let test_ilp_never_worse_than_greedy () =
  List.iter
    (fun n ->
      let graph = row_graph n in
      let idx = index_of graph in
      let ilp = Allocate.run ~mode:`Ilp graph ~lib ~blocker_index:idx in
      let greedy = Allocate.run ~mode:`Greedy_share graph ~lib ~blocker_index:idx in
      let regs sel =
        List.length sel.Allocate.merges + List.length sel.Allocate.kept
      in
      check "greedy also exact cover" true (exact_cover graph greedy);
      check "ILP cost <= greedy cost" true (ilp.Allocate.cost <= greedy.Allocate.cost +. 1e-9);
      check "ILP register count <= greedy" true (regs ilp <= regs greedy))
    [ 3; 5; 8; 11; 16 ]

let test_partition_bound_respected () =
  let graph = row_graph 40 in
  let cfg = { Allocate.default_config with Allocate.partition_bound = 10 } in
  let sel = Allocate.run ~config:cfg graph ~lib ~blocker_index:(index_of graph) in
  check "multiple blocks" true (sel.Allocate.n_blocks >= 4);
  check "still exact cover" true (exact_cover graph sel);
  List.iter
    (fun (c : Candidate.t) ->
      check "merge within a block" true (List.length c.Candidate.members <= 10))
    sel.Allocate.merges

let test_empty_graph () =
  let graph = row_graph 0 in
  let sel = Allocate.run graph ~lib ~blocker_index:(index_of graph) in
  checki "no merges" 0 (List.length sel.Allocate.merges);
  checki "nothing kept" 0 (List.length sel.Allocate.kept)

let test_isolated_nodes_kept () =
  let infos = (row_graph 3).Compat.infos in
  let g = Ugraph.create 3 in
  (* no edges at all *)
  let graph = { Compat.adj = Mbr_graph.Csr.of_ugraph g; infos } in
  let sel = Allocate.run graph ~lib ~blocker_index:(index_of graph) in
  checki "no merges possible" 0 (List.length sel.Allocate.merges);
  Alcotest.(check (list int)) "all kept" [ 0; 1; 2 ] sel.Allocate.kept

(* ---- generated design ---- *)

let test_generated_design_ilp_beats_greedy () =
  let g = G.generate (P.tiny ~seed:31) in
  let eng = Engine.build ~config:g.G.sta_config g.G.placement in
  Engine.analyze eng;
  let graph = Compat.build_graph eng g.G.library in
  let idx = Spatial.create () in
  List.iter
    (fun cid ->
      if Placement.is_placed g.G.placement cid then
        Spatial.add idx cid (Placement.center g.G.placement cid))
    (Design.registers g.G.design);
  let ilp = Allocate.run ~mode:`Ilp graph ~lib:g.G.library ~blocker_index:idx in
  let greedy = Allocate.run ~mode:`Greedy_share graph ~lib:g.G.library ~blocker_index:idx in
  let regs sel = List.length sel.Allocate.merges + List.length sel.Allocate.kept in
  check "exact cover (ilp)" true (exact_cover graph ilp);
  check "exact cover (greedy)" true (exact_cover graph greedy);
  check "Fig.6 direction" true (regs ilp <= regs greedy);
  check "some merges happen" true (List.length ilp.Allocate.merges > 0)

(* Warm starts: a cached block whose exact content key misses but whose
   member set matches the previous generation re-solves with the old
   cover as the branch-and-bound's starting incumbent. Observable two
   ways: ilp.warm_start_hits moves, and — the safety half — the warm
   solve still lands on the same proven optimum as a cold solve of the
   identical graph. *)
let test_warm_start_near_hit () =
  let g = G.generate (P.tiny ~seed:21) in
  let eng = Engine.build ~config:g.G.sta_config g.G.placement in
  let graph = Compat.build_graph eng g.G.library in
  let idx = index_of graph in
  let config = { Allocate.default_config with Allocate.warm_start = true } in
  let cache = Allocate.create_cache () in
  let cold, s_cold =
    Allocate.run_cached ~config cache graph ~lib:g.G.library ~blocker_index:idx
  in
  check "cold run merges something" true (cold.Allocate.merges <> []);
  checki "cold: nothing reused" 0 s_cold.Allocate.blocks_reused;
  (* drift every register's slack a little: every content key misses,
     every member set survives — all misses are near-hits *)
  let graph' =
    { graph with
      Compat.infos =
        Array.map
          (fun (i : Compat.reg_info) ->
            { i with Compat.d_slack = i.Compat.d_slack +. 0.5 })
          graph.Compat.infos
    }
  in
  Mbr_obs.Metrics.enable ();
  let hits = Mbr_obs.Metrics.counter "ilp.warm_start_hits" in
  let before = Mbr_obs.Metrics.counter_value hits in
  let warm, s_warm =
    Allocate.run_cached ~config cache graph' ~lib:g.G.library
      ~blocker_index:idx
  in
  Mbr_obs.Metrics.disable ();
  checki "near-hits are not exact hits" 0 s_warm.Allocate.blocks_reused;
  check "warm-start seeds counted" true
    (Mbr_obs.Metrics.counter_value hits > before);
  let plain =
    Allocate.run ~config:{ config with Allocate.warm_start = false } graph'
      ~lib:g.G.library ~blocker_index:idx
  in
  check "same cost as a cold solve" true
    (Float.abs (plain.Allocate.cost -. warm.Allocate.cost) <= 1e-9);
  Alcotest.(check (list int)) "same kept" plain.Allocate.kept warm.Allocate.kept;
  checki "same merge count"
    (List.length plain.Allocate.merges)
    (List.length warm.Allocate.merges)

let () =
  Alcotest.run "mbr_core.allocate"
    [
      ( "invariants",
        [
          Alcotest.test_case "exact cover" `Quick test_exact_cover_small;
          Alcotest.test_case "eight into one" `Quick test_full_merge_of_eight;
          Alcotest.test_case "partition bound" `Quick test_partition_bound_respected;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "isolated kept" `Quick test_isolated_nodes_kept;
        ] );
      ( "ilp_vs_greedy",
        [
          Alcotest.test_case "rows" `Quick test_ilp_never_worse_than_greedy;
          Alcotest.test_case "generated design" `Quick
            test_generated_design_ilp_beats_greedy;
        ] );
      ( "warm-start",
        [
          Alcotest.test_case "near-hit seeds the B&B, optimum unchanged"
            `Quick test_warm_start_near_hit;
        ] );
    ]
