(* Tests for Mbr_sta: hand-computed arrivals/slacks on a small pipeline
   (cells co-located so wire terms vanish), endpoint bookkeeping, cycle
   detection, skew semantics, and the useful-skew optimizer. *)

module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Cell_lib = Mbr_liberty.Cell
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module Skew = Mbr_sta.Skew

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf = Alcotest.(check (float 1e-6))

let lib = Presets.default ()

let dff1 = Library.find lib "DFF1_X1"

let attrs =
  Types.
    { lib_cell = dff1; fixed = false; size_only = false; scan = None; gate_enable = None }

let gate =
  Types.
    {
      gate = "BUF";
      n_inputs = 1;
      drive_res = 2.0;
      intrinsic = 20.0;
      input_cap = 0.5;
      area = 1.0;
      g_width = 1.0;
      g_height = 1.2;
    }

let core = Rect.make ~lx:0.0 ~ly:0.0 ~hx:60.0 ~hy:60.0

let fp = Floorplan.make ~core ~row_height:1.2 ~site_width:0.2

let cfg = { Engine.default_config with Engine.clock_period = 300.0 }

(* in --g1--> r1.D ; r1.Q --g2--> r2.D ; r2.Q -> out. All co-located. *)
let pipeline () =
  let d = Design.create ~name:"pipe" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let _ = Design.add_clock_root d "uclk" clk in
  let a = Design.add_net d "a" in
  let n1 = Design.add_net d "n1" in
  let q1 = Design.add_net d "q1" in
  let n2 = Design.add_net d "n2" in
  let q2 = Design.add_net d "q2" in
  let pa = Design.add_port d "a" Types.In_port a in
  let po = Design.add_port d "o" Types.Out_port q2 in
  let g1 = Design.add_comb d "g1" gate ~inputs:[ a ] ~output:n1 in
  let g2 = Design.add_comb d "g2" gate ~inputs:[ q1 ] ~output:n2 in
  let r1 =
    Design.add_register d "r1" attrs
      (Design.simple_conn ~d:[| Some n1 |] ~q:[| Some q1 |] ~clock:clk)
  in
  let r2 =
    Design.add_register d "r2" attrs
      (Design.simple_conn ~d:[| Some n2 |] ~q:[| Some q2 |] ~clock:clk)
  in
  let pl = Placement.create fp d in
  let at = Point.make 10.0 12.0 in
  List.iter (fun c -> Placement.set pl c at) [ pa; po; g1; g2; r1; r2 ];
  (match Design.find_cell d "uclk" with
  | Some id -> Placement.set pl id at
  | None -> ());
  (d, pl, r1, r2)

(* With zero wire length the only loads are pin caps; offsets within a
   cell still produce tiny wire terms, so compare with a loose eps. *)
let roughly msg expect actual = check msg true (Float.abs (expect -. actual) < 2.0)

let test_arrival_chain () =
  let d, pl, r1, _ = pipeline () in
  let eng = Engine.build ~config:cfg pl in
  Engine.analyze eng;
  let d_pin =
    match Design.pin_of d r1 (Types.Pin_d 0) with Some p -> p | None -> assert false
  in
  (match Engine.arrival eng d_pin with
  | Some a ->
    (* input_delay + g1 (intrinsic + drive*data_cap) *)
    let expect = 40.0 +. 20.0 +. (2.0 *. dff1.Cell_lib.data_pin_cap) in
    roughly "arrival at r1.D" expect a
  | None -> Alcotest.fail "arrival expected")

let test_slack_value () =
  let d, pl, r1, _ = pipeline () in
  let eng = Engine.build ~config:cfg pl in
  Engine.analyze eng;
  let d_pin =
    match Design.pin_of d r1 (Types.Pin_d 0) with Some p -> p | None -> assert false
  in
  (match (Engine.arrival eng d_pin, Engine.slack eng d_pin) with
  | Some a, Some s ->
    (* required = period - setup (zero skew) *)
    roughly "slack = period - setup - arrival" (300.0 -. dff1.Cell_lib.setup -. a) s
  | _, _ -> Alcotest.fail "timing expected")

let test_endpoints () =
  let _, pl, _, _ = pipeline () in
  let eng = Engine.build ~config:cfg pl in
  Engine.analyze eng;
  (* endpoints: r1.D, r2.D, out port *)
  checki "three endpoints" 3 (Engine.n_endpoints eng);
  checki "none failing at 300ps" 0 (Engine.failing_endpoints eng);
  checkf "tns zero" 0.0 (Engine.tns eng);
  check "wns positive" true (Engine.wns eng > 0.0)

let test_failing_when_period_short () =
  let _, pl, _, _ = pipeline () in
  let tight = { cfg with Engine.clock_period = 50.0 } in
  let eng = Engine.build ~config:tight pl in
  Engine.analyze eng;
  check "failing endpoints" true (Engine.failing_endpoints eng > 0);
  check "tns negative" true (Engine.tns eng < 0.0);
  check "wns = min slack" true (Engine.wns eng <= Engine.tns eng /. 3.0 +. 1e-9 || Engine.wns eng < 0.0)

let test_skew_shifts_required () =
  let d, pl, r1, _ = pipeline () in
  let eng = Engine.build ~config:cfg pl in
  Engine.analyze eng;
  let d_pin =
    match Design.pin_of d r1 (Types.Pin_d 0) with Some p -> p | None -> assert false
  in
  let s0 = match Engine.slack eng d_pin with Some s -> s | None -> assert false in
  Engine.set_skew eng r1 25.0;
  Engine.analyze eng;
  let s1 = match Engine.slack eng d_pin with Some s -> s | None -> assert false in
  checkf "late clock adds D slack" 25.0 (s1 -. s0)

let test_skew_propagates_to_downstream () =
  let d, pl, r1, r2 = pipeline () in
  let eng = Engine.build ~config:cfg pl in
  Engine.analyze eng;
  let d2 =
    match Design.pin_of d r2 (Types.Pin_d 0) with Some p -> p | None -> assert false
  in
  let s0 = match Engine.slack eng d2 with Some s -> s | None -> assert false in
  (* launching r1 later steals slack from the r1 -> r2 path *)
  Engine.set_skew eng r1 25.0;
  Engine.analyze eng;
  let s1 = match Engine.slack eng d2 with Some s -> s | None -> assert false in
  checkf "downstream loses the same amount" (-25.0) (s1 -. s0)

let test_reg_slacks () =
  let _, pl, r1, r2 = pipeline () in
  let eng = Engine.build ~config:cfg pl in
  Engine.analyze eng;
  check "r1 d slack finite" true (Float.is_finite (Engine.reg_d_slack eng r1));
  check "r1 q slack finite" true (Float.is_finite (Engine.reg_q_slack eng r1));
  (* r2.Q drives only the out port; still a real endpoint *)
  check "r2 q slack finite" true (Float.is_finite (Engine.reg_q_slack eng r2))

let test_output_load () =
  let d, pl, r1, _ = pipeline () in
  let eng = Engine.build ~config:cfg pl in
  Engine.analyze eng;
  let q_pin =
    match Design.pin_of d r1 (Types.Pin_q 0) with Some p -> p | None -> assert false
  in
  (* r1.Q drives g2's input: load >= g2 input cap *)
  check "load >= sink cap" true (Engine.output_load eng q_pin >= gate.Types.input_cap)

let test_cycle_detection () =
  let d = Design.create ~name:"cyc" in
  let n1 = Design.add_net d "n1" in
  let n2 = Design.add_net d "n2" in
  let _ = Design.add_comb d "g1" gate ~inputs:[ n2 ] ~output:n1 in
  let _ = Design.add_comb d "g2" gate ~inputs:[ n1 ] ~output:n2 in
  let pl = Placement.create fp d in
  let witness =
    try
      ignore (Engine.build ~config:cfg pl);
      Alcotest.fail "combinational cycle not detected"
    with Engine.Combinational_cycle pins -> pins
  in
  (* the witness is a closed pin path: at least a 2-pin loop plus the
     repeated entry pin, every hop an actual pin of the looped gates *)
  check "witness closed" true
    (match (witness, List.rev witness) with
    | first :: _ :: _, last :: _ -> first = last
    | _ -> false);
  checki "witness length" 5 (List.length witness);
  let g1 = match Design.find_cell d "g1" with Some c -> c | None -> assert false in
  let g2 = match Design.find_cell d "g2" with Some c -> c | None -> assert false in
  let loop_pins = Design.pins_of d g1 @ Design.pins_of d g2 in
  check "witness pins belong to the loop" true
    (List.for_all (fun pid -> List.mem pid loop_pins) witness);
  (* the human-readable rendering names the looped cells and pin kinds *)
  let s = Engine.cycle_to_string d witness in
  let contains affix =
    let n = String.length affix and m = String.length s in
    let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
    at 0
  in
  check "format mentions g1" true (contains "g1/");
  check "format mentions g2" true (contains "g2/");
  check "format draws arrows" true (contains " -> ")

let test_wire_delay_increases_with_distance () =
  let d, pl, _r1, r2 = pipeline () in
  ignore d;
  let eng = Engine.build ~config:cfg pl in
  Engine.analyze eng;
  let s_close = Engine.reg_d_slack eng r2 in
  (* move r2 far away: the r1 -> g2 -> r2 wires lengthen *)
  Placement.set pl r2 (Point.make 55.0 55.0);
  Engine.analyze eng;
  let s_far = Engine.reg_d_slack eng r2 in
  check "distance hurts slack" true (s_far < s_close)

let test_skew_optimizer_improves_tns () =
  let _, pl, _, _ = pipeline () in
  (* period short enough that the input stage fails but the r1->r2
     stage has margin: skewing r1 later fixes the input stage *)
  let tight = { cfg with Engine.clock_period = 95.0 } in
  let eng = Engine.build ~config:tight pl in
  Engine.analyze eng;
  let report = Skew.optimize eng in
  check "tns not worse" true (report.Skew.tns_after >= report.Skew.tns_before -. 1e-9);
  check "skew bounded" true (report.Skew.max_abs_skew <= Skew.default_config.Skew.bound +. 1e-9)

let test_update_skews_matches_full_analysis () =
  (* incremental patching after skew changes must reproduce the full
     analysis bit-for-bit, on a real generated design *)
  let module G = Mbr_designgen.Generate in
  let module P = Mbr_designgen.Profile in
  let g = G.generate (P.tiny ~seed:909) in
  let eng_inc = Engine.build ~config:g.G.sta_config g.G.placement in
  let eng_full = Engine.build ~config:g.G.sta_config g.G.placement in
  Engine.analyze eng_inc;
  Engine.analyze eng_full;
  let regs = Design.registers g.G.design in
  let rng = Mbr_util.Rng.create 17 in
  for _round = 1 to 5 do
    (* random subset of registers gets random skews *)
    let moves =
      List.filter_map
        (fun r ->
          if Mbr_util.Rng.chance rng 0.2 then
            Some (r, Mbr_util.Rng.float_in rng (-80.0) 80.0)
          else None)
        regs
    in
    Engine.update_skews eng_inc moves;
    List.iter (fun (r, s) -> Engine.set_skew eng_full r s) moves;
    Engine.analyze eng_full;
    checkf "wns equal" (Engine.wns eng_full) (Engine.wns eng_inc);
    checkf "tns equal" (Engine.tns eng_full) (Engine.tns eng_inc);
    checki "failing equal" (Engine.failing_endpoints eng_full)
      (Engine.failing_endpoints eng_inc);
    (* spot-check every register's D/Q slacks *)
    List.iter
      (fun r ->
        let close a b =
          (a = b) || (Float.is_finite a && Float.is_finite b && Float.abs (a -. b) < 1e-6)
        in
        check "d slack equal" true
          (close (Engine.reg_d_slack eng_full r) (Engine.reg_d_slack eng_inc r));
        check "q slack equal" true
          (close (Engine.reg_q_slack eng_full r) (Engine.reg_q_slack eng_inc r)))
      regs
  done

let test_skew_optimizer_no_op_when_clean () =
  let _, pl, _, _ = pipeline () in
  let eng = Engine.build ~config:cfg pl in
  let report = Skew.optimize eng in
  checkf "tns stays zero" 0.0 report.Skew.tns_after;
  checkf "no skew introduced" 0.0 report.Skew.max_abs_skew

let () =
  Alcotest.run "mbr_sta"
    [
      ( "engine",
        [
          Alcotest.test_case "arrival chain" `Quick test_arrival_chain;
          Alcotest.test_case "slack value" `Quick test_slack_value;
          Alcotest.test_case "endpoints" `Quick test_endpoints;
          Alcotest.test_case "failing endpoints" `Quick test_failing_when_period_short;
          Alcotest.test_case "reg slacks" `Quick test_reg_slacks;
          Alcotest.test_case "output load" `Quick test_output_load;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "wire delay grows" `Quick test_wire_delay_increases_with_distance;
        ] );
      ( "skew",
        [
          Alcotest.test_case "skew shifts required" `Quick test_skew_shifts_required;
          Alcotest.test_case "skew hits downstream" `Quick test_skew_propagates_to_downstream;
          Alcotest.test_case "optimizer improves tns" `Quick test_skew_optimizer_improves_tns;
          Alcotest.test_case "incremental = full analysis" `Quick
            test_update_skews_matches_full_analysis;
          Alcotest.test_case "optimizer no-op when clean" `Quick
            test_skew_optimizer_no_op_when_clean;
        ] );
    ]
