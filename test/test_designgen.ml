(* Tests for Mbr_designgen: the synthetic designs must be structurally
   sound (valid netlist, legal placement), deterministic, and calibrated
   (width mix, composable fraction, failing-endpoint fraction). *)

module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module Cell_lib = Mbr_liberty.Cell

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let tiny = P.tiny ~seed:1234

let g = G.generate tiny

let test_register_count () =
  checki "registers" tiny.P.n_registers (List.length (Design.registers g.G.design))

let test_netlist_valid () =
  Alcotest.(check (list string)) "no violations" [] (Design.validate g.G.design)

let test_placement_legal () =
  checki "no register overlaps" 0
    (List.length (Placement.overlapping_registers g.G.placement));
  let fp = Placement.floorplan g.G.placement in
  List.iter
    (fun cid ->
      let f = Placement.footprint g.G.placement cid in
      check "inside core" true
        (Mbr_geom.Rect.contains_rect fp.Mbr_place.Floorplan.core f))
    (Design.registers g.G.design)

let test_all_registers_placed () =
  List.iter
    (fun cid -> check "placed" true (Placement.is_placed g.G.placement cid))
    (Design.registers g.G.design)

let test_deterministic () =
  let g2 = G.generate tiny in
  checki "same cells" (Design.n_cells g.G.design) (Design.n_cells g2.G.design);
  checki "same nets" (Design.n_nets g.G.design) (Design.n_nets g2.G.design);
  check "same period" true
    (g.G.sta_config.Engine.clock_period = g2.G.sta_config.Engine.clock_period)

let test_seed_changes_design () =
  let g2 = G.generate (P.tiny ~seed:9999) in
  check "different" true (Design.n_nets g.G.design <> Design.n_nets g2.G.design
                          || g.G.sta_config.Engine.clock_period
                             <> g2.G.sta_config.Engine.clock_period)

let test_width_histogram () =
  let hist = G.width_histogram g.G.design in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  checki "histogram covers all" tiny.P.n_registers total;
  List.iter (fun (w, _) -> check "library width" true (List.mem w [ 1; 2; 4; 8 ])) hist;
  (* the tiny profile asks for a 1-bit-heavy mix *)
  (match List.assoc_opt 1 hist with
  | Some n -> check "1-bit majority-ish" true (float_of_int n > 0.25 *. float_of_int total)
  | None -> Alcotest.fail "1-bit registers expected")

let test_failing_fraction_calibrated () =
  let eng = Engine.build ~config:g.G.sta_config g.G.placement in
  Engine.analyze eng;
  let frac =
    float_of_int (Engine.failing_endpoints eng) /. float_of_int (Engine.n_endpoints eng)
  in
  check "within 10pp of target" true (Float.abs (frac -. tiny.P.failing_frac) < 0.10)

let test_timing_graph_acyclic () =
  (* Engine.build raises on cycles; reaching here is the assertion *)
  let eng = Engine.build ~config:g.G.sta_config g.G.placement in
  Engine.analyze eng;
  check "wns finite" true (Float.is_finite (Engine.wns eng))

let test_clock_domains_exist () =
  let clocks = Design.clock_nets g.G.design in
  checki "root + gated domains" (1 + tiny.P.n_gated_domains) (List.length clocks)

let test_scan_registers_have_partitions () =
  let scanned =
    List.filter
      (fun cid -> (Design.reg_attrs g.G.design cid).Types.scan <> None)
      (Design.registers g.G.design)
  in
  check "some scan registers" true (List.length scanned > 0);
  List.iter
    (fun cid ->
      match (Design.reg_attrs g.G.design cid).Types.scan with
      | Some s ->
        check "partition in range" true
          (s.Types.partition >= 0 && s.Types.partition < tiny.P.n_scan_partitions)
      | None -> ())
    scanned

let test_gated_registers_have_enables () =
  List.iter
    (fun cid ->
      let a = Design.reg_attrs g.G.design cid in
      match Design.pin_of g.G.design cid Types.Pin_clock with
      | Some pid -> (
        match (Design.pin g.G.design pid).Types.p_net with
        | Some nid ->
          let name = (Design.net g.G.design nid).Types.n_name in
          if name = "clk" then check "root clock has no enable" true (a.Types.gate_enable = None)
          else check "gated clock has enable" true (a.Types.gate_enable <> None)
        | None -> Alcotest.fail "clock connected")
      | None -> Alcotest.fail "clock pin")
    (Design.registers g.G.design)

let test_every_d_pin_driven () =
  List.iter
    (fun cid ->
      List.iter
        (fun pid ->
          let p = Design.pin g.G.design pid in
          match p.Types.p_kind with
          | Types.Pin_d _ -> (
            match p.Types.p_net with
            | Some nid -> check "driver exists" true (Design.driver g.G.design nid <> None)
            | None -> Alcotest.fail "generated D pins are connected")
          | _ -> ())
        (Design.pins_of g.G.design cid))
    (Design.registers g.G.design)

let test_scaled_profile () =
  let half = P.scaled tiny 0.5 in
  let gh = G.generate half in
  checki "half the registers" (tiny.P.n_registers / 2)
    (List.length (Design.registers gh.G.design))

(* The flat family must be structurally sound like any other profile,
   and actually aggregation-hostile: running the composition flow on it
   merges a materially smaller fraction of the registers than the
   clustered tiny profile does — if the two densities ever converge,
   "flat" has stopped exercising anything. *)
let test_flat_profile () =
  let p = P.flat ~seed:2 in
  let gf = G.generate p in
  check "flat flag set" true p.P.flat;
  checki "register count" p.P.n_registers
    (List.length (Design.registers gf.G.design));
  Alcotest.(check (list string)) "netlist valid" []
    (Design.validate gf.G.design);
  checki "no register overlaps" 0
    (List.length (Placement.overlapping_registers gf.G.placement));
  let merge_density (g : G.t) n_regs =
    let r =
      Mbr_core.Flow.run ~design:g.G.design ~placement:g.G.placement
        ~library:g.G.library ~sta_config:g.G.sta_config ()
    in
    float_of_int r.Mbr_core.Flow.n_merges /. float_of_int n_regs
  in
  let flat_d = merge_density gf p.P.n_registers in
  let tiny_p = P.tiny ~seed:2 in
  let tiny_d = merge_density (G.generate tiny_p) tiny_p.P.n_registers in
  check "flat composes something" true (flat_d > 0.0);
  check
    (Printf.sprintf "flat merge density %.3f well below tiny's %.3f" flat_d
       tiny_d)
    true
    (flat_d < 0.6 *. tiny_d)

let () =
  Alcotest.run "mbr_designgen"
    [
      ( "structure",
        [
          Alcotest.test_case "register count" `Quick test_register_count;
          Alcotest.test_case "netlist valid" `Quick test_netlist_valid;
          Alcotest.test_case "placement legal" `Quick test_placement_legal;
          Alcotest.test_case "all registers placed" `Quick test_all_registers_placed;
          Alcotest.test_case "every D pin driven" `Quick test_every_d_pin_driven;
          Alcotest.test_case "clock domains" `Quick test_clock_domains_exist;
          Alcotest.test_case "scan partitions" `Quick test_scan_registers_have_partitions;
          Alcotest.test_case "gating enables" `Quick test_gated_registers_have_enables;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_design;
          Alcotest.test_case "width histogram" `Quick test_width_histogram;
          Alcotest.test_case "failing fraction" `Quick test_failing_fraction_calibrated;
          Alcotest.test_case "timing acyclic" `Quick test_timing_graph_acyclic;
          Alcotest.test_case "scaled profile" `Quick test_scaled_profile;
          Alcotest.test_case "flat profile is aggregation-hostile" `Quick
            test_flat_profile;
        ] );
    ]
