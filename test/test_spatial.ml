(* Spatial grid index: add/remove/query behavior under churn, in
   particular that emptied buckets are reclaimed rather than leaking as
   empty lists in the hashtable. *)

module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Spatial = Mbr_core.Spatial
module Rng = Mbr_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_add_query () =
  let t = Spatial.create ~bucket:10.0 () in
  Spatial.add t 1 (Point.make 5.0 5.0);
  Spatial.add t 2 (Point.make 15.0 5.0);
  Spatial.add t 3 (Point.make 95.0 95.0);
  check_int "size" 3 (Spatial.size t);
  let hits =
    Spatial.query_rect t (Rect.make ~lx:0.0 ~ly:0.0 ~hx:20.0 ~hy:10.0)
  in
  check_int "two in box" 2 (List.length hits);
  check "ids" true
    (List.sort compare (List.map fst hits) = [ 1; 2 ])

let test_remove_exact_pair () =
  let t = Spatial.create ~bucket:10.0 () in
  let p = Point.make 5.0 5.0 in
  Spatial.add t 1 p;
  Spatial.add t 1 p;
  Spatial.add t 2 p;
  (* wrong point: no-op *)
  Spatial.remove t 1 (Point.make 6.0 5.0);
  check_int "no-op" 3 (Spatial.size t);
  (* removes one occurrence only *)
  Spatial.remove t 1 p;
  check_int "one gone" 2 (Spatial.size t);
  let hits = Spatial.query_rect t (Rect.make ~lx:0.0 ~ly:0.0 ~hx:10.0 ~hy:10.0) in
  check "1 and 2 remain" true
    (List.sort compare (List.map fst hits) = [ 1; 2 ])

let test_empty_buckets_reclaimed () =
  let t = Spatial.create ~bucket:10.0 () in
  let pts =
    List.init 100 (fun i ->
        Point.make (float_of_int (i mod 10) *. 10.0) (float_of_int (i / 10) *. 10.0))
  in
  List.iteri (fun i p -> Spatial.add t i p) pts;
  check_int "100 buckets" 100 (Spatial.n_buckets t);
  List.iteri (fun i p -> Spatial.remove t i p) pts;
  check_int "empty index" 0 (Spatial.size t);
  check_int "no leaked buckets" 0 (Spatial.n_buckets t)

let test_update_same_bucket () =
  let t = Spatial.create ~bucket:10.0 () in
  Spatial.add t 1 (Point.make 2.0 2.0);
  Spatial.add t 2 (Point.make 3.0 3.0);
  Spatial.update t 1 ~from:(Point.make 2.0 2.0) ~to_:(Point.make 8.0 8.0);
  check_int "size unchanged" 2 (Spatial.size t);
  check_int "still one bucket" 1 (Spatial.n_buckets t);
  let hits =
    Spatial.query_rect t (Rect.make ~lx:7.0 ~ly:7.0 ~hx:9.0 ~hy:9.0)
  in
  check "found at new point" true (List.map fst hits = [ 1 ])

let test_update_cross_bucket () =
  let t = Spatial.create ~bucket:10.0 () in
  Spatial.add t 1 (Point.make 5.0 5.0);
  Spatial.update t 1 ~from:(Point.make 5.0 5.0) ~to_:(Point.make 25.0 5.0);
  check_int "size unchanged" 1 (Spatial.size t);
  check_int "old bucket reclaimed" 1 (Spatial.n_buckets t);
  check "gone from old point" true
    (Spatial.query_rect t (Rect.make ~lx:0.0 ~ly:0.0 ~hx:10.0 ~hy:10.0) = []);
  let hits =
    Spatial.query_rect t (Rect.make ~lx:20.0 ~ly:0.0 ~hx:30.0 ~hy:10.0)
  in
  check "present at new point" true (List.map fst hits = [ 1 ])

let test_update_absent_adds () =
  let t = Spatial.create ~bucket:10.0 () in
  (* from-point never inserted: update degrades to add at to_ — the
     blocker-index reconcile relies on this for cells whose recorded
     position drifted. *)
  Spatial.update t 7 ~from:(Point.make 1.0 1.0) ~to_:(Point.make 4.0 4.0);
  check_int "added" 1 (Spatial.size t);
  let hits =
    Spatial.query_rect t (Rect.make ~lx:0.0 ~ly:0.0 ~hx:10.0 ~hy:10.0)
  in
  check "at to_" true
    (match hits with [ (7, p) ] -> p.Point.x = 4.0 && p.Point.y = 4.0 | _ -> false)

(* Random add/remove/query churn against a naive list model. *)
let test_churn_matches_model () =
  let rng = Rng.create 4242 in
  let t = Spatial.create ~bucket:7.5 () in
  let model = ref [] in
  let live = ref [] in
  for step = 1 to 2000 do
    if Rng.chance rng 0.55 || !live = [] then begin
      let x = Rng.float_in rng 0.0 100.0 in
      let y = Rng.float_in rng 0.0 100.0 in
      let p = Point.make x y in
      Spatial.add t step p;
      model := (step, p) :: !model;
      live := (step, p) :: !live
    end
    else if Rng.chance rng 0.5 then begin
      let k = Rng.int rng (List.length !live) in
      let v, p = List.nth !live k in
      Spatial.remove t v p;
      model := List.filter (fun (v', _) -> v' <> v) !model;
      live := List.filter (fun (v', _) -> v' <> v) !live
    end
    else begin
      let k = Rng.int rng (List.length !live) in
      let v, p = List.nth !live k in
      let q =
        Point.make (Rng.float_in rng 0.0 100.0) (Rng.float_in rng 0.0 100.0)
      in
      Spatial.update t v ~from:p ~to_:q;
      let repoint (v', p') = if v' = v && p' = p then (v', q) else (v', p') in
      model := List.map repoint !model;
      live := List.map repoint !live
    end;
    if step mod 100 = 0 then begin
      let lx = Rng.float_in rng 0.0 80.0 in
      let ly = Rng.float_in rng 0.0 80.0 in
      let r = Rect.make ~lx ~ly ~hx:(lx +. 30.0) ~hy:(ly +. 30.0) in
      let got = List.sort compare (List.map fst (Spatial.query_rect t r)) in
      let want =
        List.sort compare
          (List.filter_map
             (fun (v, p) -> if Rect.contains r p then Some v else None)
             !model)
      in
      check "query matches model" true (got = want)
    end
  done;
  check_int "final size" (List.length !model) (Spatial.size t);
  check "buckets bounded by live points" true
    (Spatial.n_buckets t <= Spatial.size t)

let () =
  Alcotest.run "mbr_core.spatial"
    [
      ( "spatial",
        [
          Alcotest.test_case "add/query" `Quick test_add_query;
          Alcotest.test_case "remove exact pair" `Quick test_remove_exact_pair;
          Alcotest.test_case "empty buckets reclaimed" `Quick
            test_empty_buckets_reclaimed;
          Alcotest.test_case "update within bucket" `Quick test_update_same_bucket;
          Alcotest.test_case "update across buckets" `Quick
            test_update_cross_bucket;
          Alcotest.test_case "update of absent entry adds" `Quick
            test_update_absent_adds;
          Alcotest.test_case "churn vs model" `Quick test_churn_matches_model;
        ] );
    ]
