(* Tests for Mbr_core.Candidate enumeration on hand-built compatibility
   graphs: validity rules (library widths, incomplete area rule, region
   intersection), dedup, caps, and the structured path for big blocks. *)

module Candidate = Mbr_core.Candidate
module Compat = Mbr_core.Compat
module Spatial = Mbr_core.Spatial
module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Ugraph = Mbr_graph.Ugraph
module Presets = Mbr_liberty.Presets

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let lib = Presets.default ()

(* a row of n 1-bit dff registers, all mutually compatible, 3um apart *)
let row_graph ?(bits = 1) ?(feas = 20.0) n =
  let infos =
    Array.init n (fun i ->
        let x = 3.0 *. float_of_int i in
        let footprint = Rect.make ~lx:x ~ly:0.0 ~hx:(x +. 1.4) ~hy:1.2 in
        Compat.
          {
            cid = i;
            bits;
            func_class = "dff";
            clock = 0;
            enable = None;
            reset = None;
            scan = None;
            drive_res = 2.0;
            d_slack = 50.0;
            q_slack = 50.0;
            footprint;
            feasible = Rect.expand footprint feas;
            center = Rect.center footprint;
          })
  in
  let g = Ugraph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Ugraph.add_edge g i j
    done
  done;
  { Compat.adj = Mbr_graph.Csr.of_ugraph g; infos }

let index_of graph =
  let idx = Spatial.create () in
  Array.iter
    (fun i -> Spatial.add idx i.Compat.cid i.Compat.center)
    graph.Compat.infos;
  idx

let enumerate ?(cfg = Candidate.default_config) graph =
  let n = Array.length graph.Compat.infos in
  Candidate.enumerate cfg graph ~block:(List.init n Fun.id) ~lib
    ~blocker_index:(index_of graph)

let members_sets cands = List.map (fun c -> c.Candidate.members) cands

let test_singletons_always_present () =
  let graph = row_graph 4 in
  let cands = enumerate graph in
  for i = 0 to 3 do
    check "singleton present" true (List.mem [ i ] (members_sets cands))
  done

let test_valid_widths_only () =
  let graph = row_graph 5 in
  let cands = enumerate ~cfg:{ Candidate.default_config with Candidate.allow_incomplete = false } graph in
  List.iter
    (fun c ->
      check "bits is a library width" true (List.mem c.Candidate.bits [ 1; 2; 4; 8 ]);
      checki "complete" c.Candidate.bits c.Candidate.target_bits)
    cands

let test_incomplete_mapping () =
  (* three 1-bit regs: a triple totals 3 bits -> incomplete 4-bit *)
  let graph = row_graph 3 in
  let cands =
    enumerate
      ~cfg:{ Candidate.default_config with Candidate.incomplete_area_overhead = 1.0 }
      graph
  in
  let triple =
    List.find_opt (fun c -> c.Candidate.members = [ 0; 1; 2 ]) cands
  in
  (match triple with
  | Some c ->
    check "incomplete" true c.Candidate.incomplete;
    checki "3 bits connected" 3 c.Candidate.bits;
    checki "maps to 4" 4 c.Candidate.target_bits
  | None -> Alcotest.fail "triple expected");
  (* with a strict overhead rule the 3-in-4 candidate dies *)
  let strict =
    enumerate
      ~cfg:{ Candidate.default_config with Candidate.incomplete_area_overhead = 0.0 }
      graph
  in
  check "strict rejects" true
    (not (List.exists (fun c -> c.Candidate.members = [ 0; 1; 2 ] && c.Candidate.incomplete) strict))

let test_region_intersection_required () =
  (* two compatible nodes with disjoint feasible regions: no pair *)
  let graph = row_graph 2 ~feas:0.1 in
  (* move node 1 far away but keep the edge *)
  let info1 = graph.Compat.infos.(1) in
  let far = Rect.make ~lx:100.0 ~ly:0.0 ~hx:101.4 ~hy:1.2 in
  graph.Compat.infos.(1) <-
    { info1 with Compat.footprint = far; feasible = Rect.expand far 0.1;
      center = Rect.center far };
  let cands = enumerate graph in
  check "no pair without common region" true
    (not (List.mem [ 0; 1 ] (members_sets cands)))

let test_no_duplicates () =
  let graph = row_graph 8 in
  let cands = enumerate graph in
  let sets = members_sets cands in
  checki "no duplicate member sets" (List.length sets)
    (List.length (List.sort_uniq compare sets))

let test_bits_respect_max_width () =
  let graph = row_graph 12 in
  let cands = enumerate graph in
  List.iter
    (fun c -> check "at most 8 bits" true (c.Candidate.bits <= 8))
    cands

let test_multi_bit_members () =
  (* 4-bit registers: pairs reach 8, triples (12) are impossible *)
  let graph = row_graph ~bits:4 6 in
  let cands = enumerate graph in
  check "pairs exist" true
    (List.exists (fun c -> List.length c.Candidate.members = 2) cands);
  check "no triples" true
    (not (List.exists (fun c -> List.length c.Candidate.members = 3) cands))

let test_weight_ablation () =
  let graph = row_graph 4 in
  let cands =
    enumerate ~cfg:{ Candidate.default_config with Candidate.use_weights = false } graph
  in
  List.iter
    (fun c ->
      if not (Candidate.is_singleton c) then
        check "uniform 1/bits" true
          (Float.abs (c.Candidate.weight -. (1.0 /. float_of_int c.Candidate.bits))
          < 1e-9))
    cands

let test_structured_path_covers_large_blocks () =
  (* 30 mutually-compatible 1-bit registers: the structured enumerator
     must still offer 8-member chains so the ILP can tile the block *)
  let graph = row_graph 30 in
  let cands = enumerate graph in
  check "has 8-member candidates" true
    (List.exists (fun c -> List.length c.Candidate.members = 8) cands);
  check "has pairs" true
    (List.exists (fun c -> List.length c.Candidate.members = 2) cands);
  checki "singletons for everyone" 30
    (List.length (List.filter Candidate.is_singleton cands))

let test_region_recorded () =
  let graph = row_graph 3 in
  let cands = enumerate graph in
  List.iter
    (fun (c : Candidate.t) ->
      match c.Candidate.members with
      | [ _ ] -> ()
      | members ->
        (* the recorded region is the intersection of member regions *)
        List.iter
          (fun m ->
            check "region inside member feasible" true
              (Rect.contains_rect graph.Compat.infos.(m).Compat.feasible
                 c.Candidate.region))
          members)
    cands

let test_cap_respected () =
  let graph = row_graph 10 in
  let cfg = { Candidate.default_config with Candidate.max_per_block = 15 } in
  let cands = enumerate ~cfg graph in
  (* the DFS path counts nodes; output is bounded accordingly *)
  check "bounded output" true (List.length cands <= 60)

let () =
  Alcotest.run "mbr_core.candidate"
    [
      ( "validity",
        [
          Alcotest.test_case "singletons present" `Quick test_singletons_always_present;
          Alcotest.test_case "valid widths only" `Quick test_valid_widths_only;
          Alcotest.test_case "incomplete mapping" `Quick test_incomplete_mapping;
          Alcotest.test_case "region intersection" `Quick test_region_intersection_required;
          Alcotest.test_case "bits <= max width" `Quick test_bits_respect_max_width;
          Alcotest.test_case "multi-bit members" `Quick test_multi_bit_members;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "no duplicates" `Quick test_no_duplicates;
          Alcotest.test_case "weight ablation" `Quick test_weight_ablation;
          Alcotest.test_case "structured large blocks" `Quick
            test_structured_path_covers_large_blocks;
          Alcotest.test_case "region recorded" `Quick test_region_recorded;
          Alcotest.test_case "cap respected" `Quick test_cap_respected;
        ] );
    ]
