(* Tests for Mbr_place: floorplan snapping, placement queries, the
   occupancy structure and both legalization paths. *)

module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Cell_lib = Mbr_liberty.Cell
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement
module Legalizer = Mbr_place.Legalizer
module Rng = Mbr_util.Rng

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf = Alcotest.(check (float 1e-9))

let lib = Presets.default ()

let dff1 = Library.find lib "DFF1_X1"

let dff8 = Library.find lib "DFF8_X1"

let core = Rect.make ~lx:0.0 ~ly:0.0 ~hx:24.0 ~hy:24.0

let fp () = Floorplan.make ~core ~row_height:1.2 ~site_width:0.2

let attrs cell =
  Types.{ lib_cell = cell; fixed = false; size_only = false; scan = None; gate_enable = None }

let design_with_regs n cell =
  let d = Design.create ~name:"t" in
  let clk = Design.add_net ~is_clock:true d "clk" in
  let regs =
    List.init n (fun i ->
        let bits = cell.Cell_lib.bits in
        Design.add_register d
          (Printf.sprintf "r%d" i)
          (attrs cell)
          (Design.simple_conn ~d:(Array.make bits None) ~q:(Array.make bits None)
             ~clock:clk))
  in
  (d, regs)

(* ---- Floorplan ---- *)

let test_fp_rows () =
  let f = fp () in
  checki "rows" 20 (Floorplan.n_rows f);
  checkf "row 0" 0.0 (Floorplan.row_y f 0);
  checkf "row 3" 3.6 (Floorplan.row_y f 3);
  checki "row_of_y mid" 2 (Floorplan.row_of_y f 2.5);
  checki "row_of_y clamped high" 19 (Floorplan.row_of_y f 99.0);
  checki "row_of_y clamped low" 0 (Floorplan.row_of_y f (-5.0))

let test_fp_snap () =
  let f = fp () in
  checkf "snap x" 1.2 (Floorplan.snap_x f 1.23);
  let p = Floorplan.snap f (Point.make 5.31 4.9) in
  checkf "snapped x" 5.4 p.Point.x;
  checkf "snapped y" 4.8 p.Point.y

let test_fp_invalid () =
  Alcotest.check_raises "bad pitch" (Invalid_argument "Floorplan.make: non-positive pitch")
    (fun () -> ignore (Floorplan.make ~core ~row_height:0.0 ~site_width:0.2))

let test_fp_clamp () =
  let f = fp () in
  let p = Floorplan.clamp_ll f ~w:2.0 ~h:1.2 (Point.make 23.5 30.0) in
  checkf "x clamped" 22.0 p.Point.x;
  checkf "y clamped" 22.8 p.Point.y

(* ---- Placement ---- *)

let test_placement_basics () =
  let d, regs = design_with_regs 2 dff1 in
  let pl = Placement.create (fp ()) d in
  (match regs with
  | [ a; b ] ->
    Placement.set pl a (Point.make 1.0 1.2);
    check "a placed" true (Placement.is_placed pl a);
    check "b unplaced" false (Placement.is_placed pl b);
    let f = Placement.footprint pl a in
    checkf "fp lx" 1.0 f.Rect.lx;
    checkf "fp width" dff1.Cell_lib.width (Rect.width f);
    checki "one placed register" 1 (List.length (Placement.placed_registers pl));
    Placement.remove pl a;
    check "removed" false (Placement.is_placed pl a)
  | _ -> Alcotest.fail "two regs")

let test_placement_pin_location () =
  let d, regs = design_with_regs 1 dff8 in
  let pl = Placement.create (fp ()) d in
  (match regs with
  | [ r ] ->
    Placement.set pl r (Point.make 2.0 3.6);
    (match Design.pin_of d r (Types.Pin_d 0) with
    | Some pid ->
      let loc = Placement.pin_location pl pid in
      let off = Cell_lib.d_pin_offset dff8 0 in
      checkf "pin x = corner + offset" (2.0 +. off.Point.x) loc.Point.x;
      checkf "pin y" (3.6 +. off.Point.y) loc.Point.y
    | None -> Alcotest.fail "d pin")
  | _ -> Alcotest.fail "one reg")

let test_overlapping_registers () =
  let d, regs = design_with_regs 3 dff1 in
  let pl = Placement.create (fp ()) d in
  (match regs with
  | [ a; b; c ] ->
    Placement.set pl a (Point.make 1.0 1.2);
    Placement.set pl b (Point.make 1.2 1.2) (* overlaps a *);
    Placement.set pl c (Point.make 10.0 1.2);
    checki "one overlap pair" 1 (List.length (Placement.overlapping_registers pl));
    (* touching cells do not overlap *)
    Placement.set pl b (Point.make (1.0 +. dff1.Cell_lib.width) 1.2);
    checki "no overlap when abutted" 0 (List.length (Placement.overlapping_registers pl))
  | _ -> Alcotest.fail "three regs")

let test_utilization () =
  let d, regs = design_with_regs 1 dff1 in
  let pl = Placement.create (fp ()) d in
  (match regs with
  | [ r ] ->
    Placement.set pl r (Point.make 0.0 0.0);
    checkf "util" (dff1.Cell_lib.area /. Rect.area core) (Placement.utilization pl)
  | _ -> Alcotest.fail "one reg")

(* ---- Occupancy ---- *)

let test_occupancy_fits () =
  let d, regs = design_with_regs 1 dff1 in
  let pl = Placement.create (fp ()) d in
  (match regs with
  | [ r ] ->
    Placement.set pl r (Point.make 5.0 1.2);
    let occ = Legalizer.Occupancy.of_placement pl in
    let here = Placement.footprint pl r in
    check "occupied" false (Legalizer.Occupancy.fits occ here);
    check "free elsewhere" true
      (Legalizer.Occupancy.fits occ (Rect.translate here (Point.make 5.0 0.0)));
    check "outside core" false
      (Legalizer.Occupancy.fits occ
         (Rect.make ~lx:(-1.0) ~ly:0.0 ~hx:0.5 ~hy:1.2))
  | _ -> Alcotest.fail "one reg")

let test_occupancy_add_remove () =
  let d, _ = design_with_regs 0 dff1 in
  let pl = Placement.create (fp ()) d in
  let occ = Legalizer.Occupancy.of_placement pl in
  let r = Rect.make ~lx:2.0 ~ly:2.4 ~hx:4.0 ~hy:3.6 in
  check "initially free" true (Legalizer.Occupancy.fits occ r);
  Legalizer.Occupancy.add occ r;
  check "occupied" false (Legalizer.Occupancy.fits occ r);
  Legalizer.Occupancy.remove occ r;
  check "free again" true (Legalizer.Occupancy.fits occ r)

let test_occupancy_find_nearest_exact () =
  let d, _ = design_with_regs 0 dff1 in
  let pl = Placement.create (fp ()) d in
  let occ = Legalizer.Occupancy.of_placement pl in
  let desired = Point.make 5.0 6.0 in
  (match Legalizer.Occupancy.find_nearest occ ~w:2.0 desired with
  | Some p ->
    checkf "x kept" 5.0 p.Point.x;
    checkf "y snapped to row" 6.0 p.Point.y
  | None -> Alcotest.fail "empty core must fit")

let test_occupancy_find_nearest_avoids () =
  let d, _ = design_with_regs 0 dff1 in
  let pl = Placement.create (fp ()) d in
  let occ = Legalizer.Occupancy.of_placement pl in
  (* block the desired row segment *)
  Legalizer.Occupancy.add occ (Rect.make ~lx:4.0 ~ly:6.0 ~hx:8.0 ~hy:7.2);
  (match Legalizer.Occupancy.find_nearest occ ~w:2.0 (Point.make 5.0 6.0) with
  | Some p ->
    let placed = Rect.make ~lx:p.Point.x ~ly:p.Point.y ~hx:(p.Point.x +. 2.0) ~hy:(p.Point.y +. 1.2) in
    check "legal spot" true (Legalizer.Occupancy.fits occ placed);
    check "moved" true (Point.manhattan p (Point.make 5.0 6.0) > 0.1)
  | None -> Alcotest.fail "room exists")

let test_occupancy_region_constraint () =
  let d, _ = design_with_regs 0 dff1 in
  let pl = Placement.create (fp ()) d in
  let occ = Legalizer.Occupancy.of_placement pl in
  let region = Rect.make ~lx:10.0 ~ly:12.0 ~hx:16.0 ~hy:16.8 in
  (match Legalizer.Occupancy.find_nearest occ ~region ~w:2.0 (Point.make 0.0 0.0) with
  | Some p ->
    check "inside region" true
      (Rect.contains_rect region
         (Rect.make ~lx:p.Point.x ~ly:p.Point.y ~hx:(p.Point.x +. 2.0)
            ~hy:(p.Point.y +. 1.2)))
  | None -> Alcotest.fail "region has room");
  (* region too small for the width *)
  let tiny = Rect.make ~lx:10.0 ~ly:12.0 ~hx:11.0 ~hy:13.2 in
  check "no fit in tiny region" true
    (Legalizer.Occupancy.find_nearest occ ~region:tiny ~w:2.0 (Point.make 0.0 0.0) = None)

let test_occupancy_full_row_skips () =
  let d, _ = design_with_regs 0 dff1 in
  let pl = Placement.create (fp ()) d in
  let occ = Legalizer.Occupancy.of_placement pl in
  (* fill row 5 completely *)
  Legalizer.Occupancy.add occ (Rect.make ~lx:0.0 ~ly:6.0 ~hx:24.0 ~hy:7.2);
  (match Legalizer.Occupancy.find_nearest occ ~w:3.0 (Point.make 12.0 6.0) with
  | Some p -> check "adjacent row" true (Float.abs (p.Point.y -. 6.0) >= 1.2 -. 1e-9)
  | None -> Alcotest.fail "other rows free")

(* ---- occupancy property: fits/add/remove vs a naive rectangle-list
   oracle ---- *)

let occupancy_matches_oracle =
  QCheck.Test.make ~name:"occupancy fits = naive overlap oracle" ~count:200
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let d, _ = design_with_regs 0 dff1 in
      let pl = Placement.create (fp ()) d in
      let occ = Legalizer.Occupancy.of_placement pl in
      let oracle = ref [] in
      let random_rect () =
        (* row-aligned, site-ish rectangles inside the 24x24 core *)
        let w = 0.5 +. Rng.float rng 4.0 in
        let row = Rng.int rng 18 in
        let x = Rng.float rng (24.0 -. w) in
        let y = 1.2 *. float_of_int row in
        Rect.make ~lx:x ~ly:y ~hx:(x +. w) ~hy:(y +. 1.2)
      in
      let ok = ref true in
      for _ = 1 to 30 do
        let r = random_rect () in
        let oracle_fits =
          List.for_all (fun o -> not (Rect.overlaps_strictly o r)) !oracle
        in
        if Legalizer.Occupancy.fits occ r <> oracle_fits then ok := false;
        (* mutate: add if free, occasionally remove a known rect *)
        if oracle_fits && Rng.bool rng then begin
          Legalizer.Occupancy.add occ r;
          oracle := r :: !oracle
        end
        else if !oracle <> [] && Rng.chance rng 0.3 then begin
          let victim = Rng.pick_list rng !oracle in
          Legalizer.Occupancy.remove occ victim;
          oracle := List.filter (fun o -> o <> victim) !oracle
        end
      done;
      !ok)

(* ---- find_nearest property: the gap-map walk vs the historical
   full-gap-scan reference, bit for bit ---- *)

(* Reference implementation: the pre-gap-map algorithm — per query,
   build every free gap in each candidate row from the sorted interval
   list and scan the (right-to-left) gap list keeping the first
   strictly better candidate. [Occupancy.find_nearest] must reproduce
   its answer exactly, including equal-cost tie-breaks. *)
let reference_find_nearest fp rows ?region ~w (desired : Point.t) =
  let nearest_x_in_row intervals ~w ~xmin ~xmax ~desired =
    if xmax -. xmin < w -. 1e-9 then None
    else begin
      let gaps = ref [] in
      let cursor = ref xmin in
      List.iter
        (fun (a, b) ->
          if a > !cursor then gaps := (!cursor, Float.min a xmax) :: !gaps;
          cursor := Float.max !cursor b)
        intervals;
      if !cursor < xmax then gaps := (!cursor, xmax) :: !gaps;
      let best = ref None in
      List.iter
        (fun (glo, ghi) ->
          if ghi -. glo >= w -. 1e-9 then begin
            let x = Float.max glo (Float.min (ghi -. w) desired) in
            let cost = Float.abs (x -. desired) in
            match !best with
            | Some (_, c) when c <= cost -> ()
            | Some _ | None -> best := Some (x, cost)
          end)
        !gaps;
      Option.map fst !best
    end
  in
  let core = fp.Floorplan.core in
  let h = fp.Floorplan.row_height in
  let xmin, xmax, ymin, ymax =
    match region with
    | Some r ->
      ( Float.max core.Rect.lx r.Rect.lx,
        Float.min (core.Rect.hx -. w) (r.Rect.hx -. w),
        Float.max core.Rect.ly r.Rect.ly,
        Float.min (core.Rect.hy -. h) (r.Rect.hy -. h) )
    | None -> (core.Rect.lx, core.Rect.hx -. w, core.Rect.ly, core.Rect.hy -. h)
  in
  if xmax < xmin -. 1e-9 || ymax < ymin -. 1e-9 then None
  else begin
    let n_rows = Floorplan.n_rows fp in
    let desired_row = Floorplan.row_of_y fp desired.Point.y in
    let best = ref None in
    let consider row =
      if row >= 0 && row < n_rows then begin
        let y = Floorplan.row_y fp row in
        if y >= ymin -. 1e-9 && y <= ymax +. 1e-9 then begin
          let dy = Float.abs (y -. desired.Point.y) in
          let prune = match !best with Some (_, c) -> dy >= c | None -> false in
          if not prune then begin
            match
              nearest_x_in_row rows.(row) ~w ~xmin ~xmax:(xmax +. w)
                ~desired:desired.Point.x
            with
            | Some x ->
              let cost = dy +. Float.abs (x -. desired.Point.x) in
              (match !best with
              | Some (_, c) when c <= cost -> ()
              | Some _ | None -> best := Some (Point.make x y, cost))
            | None -> ()
          end
        end
      end
    in
    let rec expand r =
      if r <= n_rows then begin
        let continue_ =
          match !best with
          | Some (_, c) -> float_of_int (r - 1) *. h <= c
          | None -> true
        in
        if continue_ then begin
          consider (desired_row + r);
          if r > 0 then consider (desired_row - r);
          expand (r + 1)
        end
      end
    in
    expand 0;
    Option.map fst !best
  end

let find_nearest_matches_reference =
  QCheck.Test.make ~name:"find_nearest = full-scan reference" ~count:300
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let f = fp () in
      let d, _ = design_with_regs 0 dff1 in
      let pl = Placement.create f d in
      let occ = Legalizer.Occupancy.of_placement pl in
      (* mirror of the occupancy as sorted per-row interval lists,
         maintained with the historical insert/remove code *)
      let rows = Array.make (Floorplan.n_rows f) [] in
      let rows_of_rect (r : Rect.t) =
        let row_floor y =
          let i =
            int_of_float
              (Float.floor ((y -. core.Rect.ly) /. f.Floorplan.row_height))
          in
          max 0 (min (Floorplan.n_rows f - 1) i)
        in
        let lo = row_floor (r.Rect.ly +. 1e-6) in
        let hi = row_floor (r.Rect.hy -. 1e-6) in
        List.init (hi - lo + 1) (fun k -> lo + k)
      in
      let insert_interval intervals (lo, hi) =
        let rec go = function
          | [] -> [ (lo, hi) ]
          | (a, b) :: rest when a < lo -> (a, b) :: go rest
          | rest -> (lo, hi) :: rest
        in
        go intervals
      in
      let mirror_add (r : Rect.t) =
        List.iter
          (fun i -> rows.(i) <- insert_interval rows.(i) (r.Rect.lx, r.Rect.hx))
          (rows_of_rect r)
      in
      let mirror_remove (r : Rect.t) =
        List.iter
          (fun i ->
            let eq (a, b) =
              Float.abs (a -. r.Rect.lx) < 1e-9
              && Float.abs (b -. r.Rect.hx) < 1e-9
            in
            let rec drop_first = function
              | [] -> []
              | iv :: rest -> if eq iv then rest else iv :: drop_first rest
            in
            rows.(i) <- drop_first rows.(i))
          (rows_of_rect r)
      in
      let live = ref [] in
      let random_rect () =
        let w = 0.5 +. Rng.float rng 5.0 in
        let row = Rng.int rng 18 in
        let x = Rng.float rng (24.0 -. w) in
        let y = 1.2 *. float_of_int row in
        Rect.make ~lx:x ~ly:y ~hx:(x +. w) ~hy:(y +. 1.2)
      in
      let ok = ref true in
      for _ = 1 to 40 do
        (* mutate: mostly adds (rows pack up), occasional removes *)
        if !live <> [] && Rng.chance rng 0.2 then begin
          let victim = Rng.pick_list rng !live in
          Legalizer.Occupancy.remove occ victim;
          mirror_remove victim;
          live := List.filter (fun o -> o <> victim) !live
        end
        else begin
          let r = random_rect () in
          Legalizer.Occupancy.add occ r;
          mirror_add r;
          live := r :: !live
        end;
        let w = 0.3 +. Rng.float rng 6.0 in
        let desired = Point.make (Rng.float rng 26.0 -. 1.0) (Rng.float rng 26.0 -. 1.0) in
        let region =
          if Rng.chance rng 0.3 then begin
            let lx = Rng.float rng 20.0 and ly = Rng.float rng 20.0 in
            Some
              (Rect.make ~lx ~ly
                 ~hx:(lx +. 2.0 +. Rng.float rng 8.0)
                 ~hy:(ly +. 1.2 +. Rng.float rng 6.0))
          end
          else None
        in
        let got = Legalizer.Occupancy.find_nearest occ ?region ~w desired in
        let want = reference_find_nearest f rows ?region ~w desired in
        (* bit-for-bit: same Some/None, same exact floats *)
        if got <> want then ok := false
      done;
      !ok)

(* ---- legalize_all ---- *)

let test_legalize_all_removes_overlaps () =
  let rng = Rng.create 5 in
  let d, regs = design_with_regs 40 dff1 in
  let pl = Placement.create (fp ()) d in
  (* random, overlapping, off-grid placement *)
  List.iter
    (fun r ->
      Placement.set pl r
        (Point.make (Rng.float rng 20.0) (Rng.float rng 20.0)))
    regs;
  Legalizer.legalize_all pl;
  checki "no overlaps" 0 (List.length (Placement.overlapping_registers pl));
  List.iter
    (fun r ->
      let f = Placement.footprint pl r in
      check "inside core" true (Rect.contains_rect core f);
      let row = Floorplan.row_of_y (fp ()) f.Rect.ly in
      checkf "row aligned" (Floorplan.row_y (fp ()) row) f.Rect.ly)
    regs

let test_legalize_all_small_displacement () =
  (* an already-legal placement should barely move *)
  let d, regs = design_with_regs 5 dff1 in
  let pl = Placement.create (fp ()) d in
  List.iteri
    (fun i r -> Placement.set pl r (Point.make (2.0 +. (3.0 *. float_of_int i)) 2.4))
    regs;
  let before = Placement.copy pl in
  Legalizer.legalize_all pl;
  let moved = Legalizer.total_displacement ~before ~after:pl in
  check "small displacement" true (moved < 2.0)

let () =
  Alcotest.run "mbr_place"
    [
      ( "floorplan",
        [
          Alcotest.test_case "rows" `Quick test_fp_rows;
          Alcotest.test_case "snap" `Quick test_fp_snap;
          Alcotest.test_case "invalid" `Quick test_fp_invalid;
          Alcotest.test_case "clamp" `Quick test_fp_clamp;
        ] );
      ( "placement",
        [
          Alcotest.test_case "basics" `Quick test_placement_basics;
          Alcotest.test_case "pin location" `Quick test_placement_pin_location;
          Alcotest.test_case "overlapping registers" `Quick test_overlapping_registers;
          Alcotest.test_case "utilization" `Quick test_utilization;
        ] );
      ( "occupancy",
        [
          Alcotest.test_case "fits" `Quick test_occupancy_fits;
          Alcotest.test_case "add/remove" `Quick test_occupancy_add_remove;
          Alcotest.test_case "nearest exact" `Quick test_occupancy_find_nearest_exact;
          Alcotest.test_case "nearest avoids" `Quick test_occupancy_find_nearest_avoids;
          Alcotest.test_case "region constraint" `Quick test_occupancy_region_constraint;
          Alcotest.test_case "full row skipped" `Quick test_occupancy_full_row_skips;
          QCheck_alcotest.to_alcotest occupancy_matches_oracle;
          QCheck_alcotest.to_alcotest find_nearest_matches_reference;
        ] );
      ( "legalize_all",
        [
          Alcotest.test_case "removes overlaps" `Quick test_legalize_all_removes_overlaps;
          Alcotest.test_case "small displacement" `Quick
            test_legalize_all_small_displacement;
        ] );
    ]
