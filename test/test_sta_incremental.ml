(* Property: Engine.refresh after an arbitrary batch of real netlist /
   placement edits produces the same timing as throwing the engine away
   and rebuilding from scratch. The edit batches are drawn from the
   operations the composition flow actually performs — cell moves,
   register retypes (sizing), Compose.execute merges and max-width
   decomposition — applied through the public APIs so the design and
   placement edit logs are exercised end to end. *)

module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Library = Mbr_liberty.Library
module Cell_lib = Mbr_liberty.Cell
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module Compose = Mbr_core.Compose
module Decompose = Mbr_core.Decompose
module G = Mbr_designgen.Generate
module P = Mbr_designgen.Profile
module Rng = Mbr_util.Rng

let close a b =
  a = b || (Float.is_finite a && Float.is_finite b && Float.abs (a -. b) <= 1e-6)

let close_opt a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> close x y
  | Some _, None | None, Some _ -> false

(* One random edit batch against the live design/placement. *)
let random_edits rng g =
  let dsg = g.G.design in
  let pl = g.G.placement in
  let lib = g.G.library in
  let core = (Placement.floorplan pl).Floorplan.core in
  let random_point () =
    Point.make
      (Rng.float_in rng core.Rect.lx core.Rect.hx)
      (Rng.float_in rng core.Rect.ly core.Rect.hy)
  in
  (* moves *)
  List.iter
    (fun r ->
      if Placement.is_placed pl r && Rng.chance rng 0.15 then
        Placement.set pl r (random_point ()))
    (Design.registers dsg);
  (* retype: swap a register for a pin-compatible sibling *)
  if Rng.chance rng 0.6 then begin
    match Design.registers dsg with
    | [] -> ()
    | regs ->
      let r = Rng.pick_list rng regs in
      let cur = (Design.reg_attrs dsg r).Types.lib_cell in
      let siblings =
        List.filter
          (fun (c : Cell_lib.t) ->
            c.Cell_lib.scan = cur.Cell_lib.scan
            && c.Cell_lib.name <> cur.Cell_lib.name)
          (Library.cells_of lib ~func_class:cur.Cell_lib.func_class
             ~bits:cur.Cell_lib.bits)
      in
      (match siblings with
      | [] -> ()
      | _ -> (
        try Design.retype_register dsg r (Rng.pick_list rng siblings)
        with Invalid_argument _ -> ()))
  end;
  (* compose: merge two same-class registers into a wider MBR *)
  if Rng.chance rng 0.7 then begin
    let placed =
      List.filter (fun r -> Placement.is_placed pl r) (Design.registers dsg)
    in
    match placed with
    | a :: _ :: _ -> (
      let ca = (Design.reg_attrs dsg a).Types.lib_cell in
      let partners =
        List.filter
          (fun r ->
            r <> a
            &&
            let c = (Design.reg_attrs dsg r).Types.lib_cell in
            c.Cell_lib.func_class = ca.Cell_lib.func_class
            && c.Cell_lib.scan = ca.Cell_lib.scan)
          placed
      in
      match partners with
      | [] -> ()
      | _ -> (
        let b = Rng.pick_list rng partners in
        let cb = (Design.reg_attrs dsg b).Types.lib_cell in
        let targets =
          List.filter
            (fun (c : Cell_lib.t) -> c.Cell_lib.scan = ca.Cell_lib.scan)
            (Library.cells_of lib ~func_class:ca.Cell_lib.func_class
               ~bits:(ca.Cell_lib.bits + cb.Cell_lib.bits))
        in
        match targets with
        | [] -> ()
        | cell :: _ -> (
          let corner = Placement.location pl a in
          try
            ignore
              (Compose.execute pl
                 { Compose.member_cids = [ a; b ]; cell; corner })
          with Invalid_argument _ -> ())))
    | [] | [ _ ] -> ()
  end;
  (* decompose: reopen max-width MBRs *)
  if Rng.chance rng 0.25 then ignore (Decompose.split_max_width pl lib)

let compare_engines ~seed eng fresh dsg =
  let fail fmt = QCheck.Test.fail_reportf fmt in
  if not (close (Engine.wns fresh) (Engine.wns eng)) then
    fail "seed %d: wns %g (fresh) vs %g (refresh)" seed (Engine.wns fresh)
      (Engine.wns eng);
  if not (close (Engine.tns fresh) (Engine.tns eng)) then
    fail "seed %d: tns %g (fresh) vs %g (refresh)" seed (Engine.tns fresh)
      (Engine.tns eng);
  if Engine.n_endpoints fresh <> Engine.n_endpoints eng then
    fail "seed %d: endpoint count %d vs %d" seed
      (Engine.n_endpoints fresh) (Engine.n_endpoints eng);
  if Engine.failing_endpoints fresh <> Engine.failing_endpoints eng then
    fail "seed %d: failing count %d vs %d" seed
      (Engine.failing_endpoints fresh)
      (Engine.failing_endpoints eng);
  for pid = 0 to Design.n_pins dsg - 1 do
    if not (close_opt (Engine.arrival fresh pid) (Engine.arrival eng pid)) then
      fail "seed %d: arrival mismatch at pin %d" seed pid;
    if not (close_opt (Engine.required fresh pid) (Engine.required eng pid))
    then fail "seed %d: required mismatch at pin %d" seed pid
  done;
  true

let refresh_equivalence =
  QCheck.Test.make ~name:"refresh = fresh build over random edit batches"
    ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = G.generate (P.tiny ~seed:(seed mod 37)) in
      let rng = Rng.create (seed * 7 + 1) in
      let eng = Engine.build ~config:g.G.sta_config g.G.placement in
      Engine.analyze eng;
      let rounds = 1 + Rng.int rng 3 in
      let ok = ref true in
      for _ = 1 to rounds do
        random_edits rng g;
        Engine.refresh eng;
        let fresh = Engine.build ~config:g.G.sta_config g.G.placement in
        Engine.analyze fresh;
        ok := !ok && compare_engines ~seed eng fresh g.G.design
      done;
      !ok)

(* A move-only batch must take the incremental path, not rebuild. *)
let test_moves_stay_incremental () =
  let g = G.generate (P.tiny ~seed:5) in
  let eng = Engine.build ~config:g.G.sta_config g.G.placement in
  Engine.analyze eng;
  let regs = Design.registers g.G.design in
  let r = List.nth regs 0 in
  let p = Placement.location g.G.placement r in
  Placement.set g.G.placement r (Point.make (p.Point.x +. 3.0) p.Point.y);
  Engine.refresh eng;
  Alcotest.(check int) "no rebuild" 1 (Engine.full_builds eng);
  Alcotest.(check int) "one refresh" 1 (Engine.refreshes eng);
  let fresh = Engine.build ~config:g.G.sta_config g.G.placement in
  Engine.analyze fresh;
  Alcotest.(check bool) "wns equal" true
    (close (Engine.wns fresh) (Engine.wns eng))

(* A small compose must also stay incremental. *)
let test_compose_stays_incremental () =
  let g = G.generate (P.tiny ~seed:11) in
  let pl = g.G.placement in
  let dsg = g.G.design in
  let lib = g.G.library in
  let eng = Engine.build ~config:g.G.sta_config pl in
  Engine.analyze eng;
  let merged =
    let placed = List.filter (fun r -> Placement.is_placed pl r) (Design.registers dsg) in
    let rec try_pairs = function
      | [] -> false
      | a :: rest -> (
        let ca = (Design.reg_attrs dsg a).Types.lib_cell in
        let partner =
          List.find_opt
            (fun b ->
              let cb = (Design.reg_attrs dsg b).Types.lib_cell in
              cb.Cell_lib.func_class = ca.Cell_lib.func_class
              && cb.Cell_lib.scan = ca.Cell_lib.scan
              && Library.cells_of lib ~func_class:ca.Cell_lib.func_class
                   ~bits:(ca.Cell_lib.bits + cb.Cell_lib.bits)
                 <> [])
            rest
        in
        match partner with
        | None -> try_pairs rest
        | Some b -> (
          let cb = (Design.reg_attrs dsg b).Types.lib_cell in
          let cell =
            List.find
              (fun (c : Cell_lib.t) -> c.Cell_lib.scan = ca.Cell_lib.scan)
              (Library.cells_of lib ~func_class:ca.Cell_lib.func_class
                 ~bits:(ca.Cell_lib.bits + cb.Cell_lib.bits))
          in
          try
            ignore
              (Compose.execute pl
                 {
                   Compose.member_cids = [ a; b ];
                   cell;
                   corner = Placement.location pl a;
                 });
            true
          with Invalid_argument _ -> try_pairs rest))
    in
    try_pairs placed
  in
  Alcotest.(check bool) "found a merge" true merged;
  Engine.refresh eng;
  Alcotest.(check int) "no rebuild" 1 (Engine.full_builds eng);
  let fresh = Engine.build ~config:g.G.sta_config pl in
  Engine.analyze fresh;
  Alcotest.(check bool) "tns equal" true
    (close (Engine.tns fresh) (Engine.tns eng))

let () =
  Alcotest.run "mbr_sta.incremental"
    [
      ( "refresh",
        [
          Alcotest.test_case "moves stay incremental" `Quick
            test_moves_stay_incremental;
          Alcotest.test_case "compose stays incremental" `Quick
            test_compose_stays_incremental;
          QCheck_alcotest.to_alcotest refresh_equivalence;
        ] );
    ]
