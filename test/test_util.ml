(* Unit and property tests for Mbr_util: Rng, Stats, Bitset, Union_find,
   Vec, Texttab. *)

module Rng = Mbr_util.Rng
module Stats = Mbr_util.Stats
module Bitset = Mbr_util.Bitset
module Union_find = Mbr_util.Union_find
module Vec = Mbr_util.Vec
module Texttab = Mbr_util.Texttab
module Cancel = Mbr_util.Cancel

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf = Alcotest.(check (float 1e-9))

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check "streams differ" true (!same < 4)

let test_rng_int_range () =
  let t = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int t 13 in
    check "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_in () =
  let t = Rng.create 8 in
  for _ = 1 to 1000 do
    let v = Rng.int_in t (-5) 5 in
    check "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_int_invalid () =
  let t = Rng.create 9 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int t 0))

let test_rng_float_range () =
  let t = Rng.create 10 in
  for _ = 1 to 10_000 do
    let v = Rng.float t 2.5 in
    check "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_uniformity () =
  (* chi-square-ish sanity: 10 buckets of 10k draws each expect ~1000 *)
  let t = Rng.create 11 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let b = Rng.int t 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter (fun n -> check "roughly uniform" true (n > 800 && n < 1200)) buckets

let test_rng_gaussian_moments () =
  let t = Rng.create 12 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian t ~mean:5.0 ~stddev:2.0) in
  let m = Stats.mean xs and sd = Stats.stddev xs in
  check "mean close" true (Float.abs (m -. 5.0) < 0.1);
  check "stddev close" true (Float.abs (sd -. 2.0) < 0.1)

let test_rng_split_independent () =
  let t = Rng.create 13 in
  let u = Rng.split t in
  let a = Array.init 32 (fun _ -> Rng.bits64 t) in
  let b = Array.init 32 (fun _ -> Rng.bits64 u) in
  check "split streams differ" true (a <> b)

let test_rng_shuffle_permutation () =
  let t = Rng.create 14 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_distinct () =
  let t = Rng.create 15 in
  let arr = Array.init 30 Fun.id in
  let s = Rng.sample t 10 arr in
  checki "sample size" 10 (Array.length s);
  let uniq = List.sort_uniq compare (Array.to_list s) in
  checki "distinct" 10 (List.length uniq)

(* ---- Stats ---- *)

let test_stats_mean () = checkf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_stats_mean_empty () = checkf "mean empty" 0.0 (Stats.mean [||])

let test_stats_geomean () =
  checkf "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_stats_stddev () =
  checkf "stddev" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_stats_minmax () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 2.0 |] in
  checkf "min" (-1.0) lo;
  checkf "max" 3.0 hi

let test_stats_percentile () =
  let xs = Array.init 101 float_of_int in
  checkf "p0" 0.0 (Stats.percentile xs 0.0);
  checkf "p50" 50.0 (Stats.percentile xs 50.0);
  checkf "p100" 100.0 (Stats.percentile xs 100.0);
  checkf "p25" 25.0 (Stats.percentile xs 25.0)

let test_stats_percentile_interp () =
  checkf "interpolated" 1.5 (Stats.percentile [| 1.0; 2.0 |] 50.0)

let test_stats_histogram () =
  let h = Stats.histogram ~bins:[| 1.0; 2.0 |] [| 0.5; 1.5; 1.0; 3.0; 9.9 |] in
  Alcotest.(check (array int)) "bins" [| 2; 1; 2 |] h

let test_stats_pct_change () =
  checkf "drop" 50.0 (Stats.pct_change 100.0 50.0);
  checkf "rise" (-10.0) (Stats.pct_change 100.0 110.0);
  checkf "zero base" 0.0 (Stats.pct_change 0.0 5.0)

(* ---- Bitset ---- *)

let test_bitset_basic () =
  let s = Bitset.of_list 100 [ 0; 5; 63; 99 ] in
  check "mem 0" true (Bitset.mem s 0);
  check "mem 63" true (Bitset.mem s 63);
  check "mem 99" true (Bitset.mem s 99);
  check "not mem 1" false (Bitset.mem s 1);
  checki "cardinal" 4 (Bitset.cardinal s)

let test_bitset_ops () =
  let a = Bitset.of_list 70 [ 1; 2; 3; 65 ] in
  let b = Bitset.of_list 70 [ 3; 4; 65 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 65 ]
    (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3; 65 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.elements (Bitset.diff a b));
  check "not disjoint" false (Bitset.disjoint a b);
  check "disjoint" true
    (Bitset.disjoint (Bitset.of_list 70 [ 0 ]) (Bitset.of_list 70 [ 69 ]))

let test_bitset_subset () =
  let a = Bitset.of_list 10 [ 1; 2 ] in
  let b = Bitset.of_list 10 [ 1; 2; 3 ] in
  check "a subset b" true (Bitset.subset a b);
  check "b not subset a" false (Bitset.subset b a);
  check "self subset" true (Bitset.subset a a)

let test_bitset_out_of_range () =
  Alcotest.check_raises "range" (Invalid_argument "Bitset.of_list: out of range")
    (fun () -> ignore (Bitset.of_list 4 [ 4 ]))

let bitset_prop =
  QCheck.Test.make ~name:"bitset ops mirror list-set ops" ~count:500
    QCheck.(pair (small_list (int_bound 61)) (small_list (int_bound 61)))
    (fun (xs, ys) ->
      let module IS = Set.Make (Int) in
      let a = Bitset.of_list 62 xs and b = Bitset.of_list 62 ys in
      let sa = IS.of_list xs and sb = IS.of_list ys in
      Bitset.elements (Bitset.union a b) = IS.elements (IS.union sa sb)
      && Bitset.elements (Bitset.inter a b) = IS.elements (IS.inter sa sb)
      && Bitset.elements (Bitset.diff a b) = IS.elements (IS.diff sa sb)
      && Bitset.disjoint a b = IS.is_empty (IS.inter sa sb)
      && Bitset.cardinal a = IS.cardinal sa)

(* ---- Union_find ---- *)

let test_uf_basic () =
  let uf = Union_find.create 6 in
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  check "same 0 2" true (Union_find.same uf 0 2);
  check "not same 0 3" false (Union_find.same uf 0 3);
  Union_find.union uf 3 4;
  Union_find.union uf 2 3;
  check "same 0 4" true (Union_find.same uf 0 4);
  check "5 alone" false (Union_find.same uf 5 0)

let test_uf_groups () =
  let uf = Union_find.create 5 in
  Union_find.union uf 0 2;
  Union_find.union uf 1 3;
  let groups = Union_find.groups uf in
  let sorted =
    List.sort compare (Array.to_list groups)
  in
  Alcotest.(check (list (list int))) "groups" [ [ 0; 2 ]; [ 1; 3 ]; [ 4 ] ] sorted

(* ---- Vec ---- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    checki "push index" i (Vec.push v (i * 2))
  done;
  checki "length" 100 (Vec.length v);
  checki "get 50" 100 (Vec.get v 50);
  Vec.set v 50 7;
  checki "set" 7 (Vec.get v 50)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of range") (fun () ->
      ignore (Vec.get v 2))

let test_vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  checki "fold" 6 (Vec.fold ( + ) 0 v);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Vec.to_list v);
  Alcotest.(check (array int)) "map_to_array" [| 2; 4; 6 |]
    (Vec.map_to_array (fun x -> 2 * x) v)

(* ---- Texttab ---- *)

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_texttab_renders () =
  let t = Texttab.create ~headers:[ "a"; "b" ] in
  Texttab.add_row t [ "x"; "1" ];
  Texttab.add_sep t;
  Texttab.add_row t [ "yy"; "22" ];
  let s = Texttab.render t in
  check "contains header a" true (contains_sub s "a");
  check "contains row x" true (contains_sub s "x");
  check "contains row yy" true (contains_sub s "yy");
  (* header, separator, row, separator, row *)
  checki "lines" 5
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' s)))

let test_texttab_width_mismatch () =
  let t = Texttab.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Texttab.add_row: width mismatch")
    (fun () -> Texttab.add_row t [ "only one" ])

let test_texttab_formats () =
  Alcotest.(check string) "int" "1,234,567" (Texttab.fmt_int 1234567);
  Alcotest.(check string) "small int" "42" (Texttab.fmt_int 42);
  Alcotest.(check string) "neg int" "-1,000" (Texttab.fmt_int (-1000));
  Alcotest.(check string) "float" "3.14" (Texttab.fmt_float 3.14159);
  Alcotest.(check string) "pct" "+3.1 %" (Texttab.fmt_pct 3.1)

(* ---- Cancel ---- *)

let test_cancel_explicit () =
  let t = Cancel.create () in
  check "fresh: not cancelled" false (Cancel.cancelled t);
  check "fresh: check false" false (Cancel.check t);
  Cancel.cancel t;
  check "tripped" true (Cancel.cancelled t);
  check "check true" true (Cancel.check t);
  Cancel.cancel t;
  check "idempotent" true (Cancel.cancelled t)

let test_cancel_after_checks () =
  let t = Cancel.after_checks 3 in
  check "1st check" false (Cancel.check t);
  check "2nd check" false (Cancel.check t);
  (* passive observation must not consume budget *)
  for _ = 1 to 50 do
    check "cancelled is passive" false (Cancel.cancelled t)
  done;
  check "3rd check trips" true (Cancel.check t);
  check "sticky" true (Cancel.check t);
  check "observed tripped" true (Cancel.cancelled t)

let test_cancel_after_checks_one () =
  let t = Cancel.after_checks 1 in
  check "first check trips" true (Cancel.check t)

let test_cancel_deadline () =
  let hot = Cancel.create ~timeout_s:0.0 () in
  check "elapsed deadline trips on check" true (Cancel.check hot);
  check "stays tripped" true (Cancel.cancelled hot);
  let cold = Cancel.create ~timeout_s:3600.0 () in
  check "distant deadline does not" false (Cancel.check cold);
  check "not cancelled" false (Cancel.cancelled cold)

let test_cancel_invalid () =
  Alcotest.check_raises "after_checks 0"
    (Invalid_argument "Cancel.after_checks: n < 1") (fun () ->
      ignore (Cancel.after_checks 0))

let test_cancel_cross_domain () =
  (* one token shared by several domains: a single cancel stops all *)
  let t = Cancel.create () in
  let seen = Atomic.make 0 in
  let worker () =
    while not (Cancel.check t) do
      Domain.cpu_relax ()
    done;
    Atomic.incr seen
  in
  let ds = Array.init 3 (fun _ -> Domain.spawn worker) in
  Cancel.cancel t;
  Array.iter Domain.join ds;
  checki "all workers saw the trip" 3 (Atomic.get seen)

let () =
  Alcotest.run "mbr_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "mean empty" `Quick test_stats_mean_empty;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min_max" `Quick test_stats_minmax;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile interp" `Quick test_stats_percentile_interp;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "pct_change" `Quick test_stats_pct_change;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "ops" `Quick test_bitset_ops;
          Alcotest.test_case "subset" `Quick test_bitset_subset;
          Alcotest.test_case "out of range" `Quick test_bitset_out_of_range;
          QCheck_alcotest.to_alcotest bitset_prop;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "groups" `Quick test_uf_groups;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iter/fold" `Quick test_vec_iter_fold;
        ] );
      ( "texttab",
        [
          Alcotest.test_case "renders" `Quick test_texttab_renders;
          Alcotest.test_case "width mismatch" `Quick test_texttab_width_mismatch;
          Alcotest.test_case "formats" `Quick test_texttab_formats;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "explicit cancel" `Quick test_cancel_explicit;
          Alcotest.test_case "check budget" `Quick test_cancel_after_checks;
          Alcotest.test_case "budget of one" `Quick test_cancel_after_checks_one;
          Alcotest.test_case "deadline" `Quick test_cancel_deadline;
          Alcotest.test_case "invalid budget" `Quick test_cancel_invalid;
          Alcotest.test_case "cross-domain" `Quick test_cancel_cross_domain;
        ] );
    ]
