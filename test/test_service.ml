(* Tests for Mbr_service: protocol codecs (qcheck round-trip +
   validation), a live daemon smoke test over a real Unix socket, the
   service-level cancellation contract, and the concurrency
   equivalence property — N clients hammering disjoint sessions
   concurrently must produce exactly what a serial replay of the same
   verbs through Flow.Session produces, because the daemon serializes
   per session and sessions share nothing. *)

module J = Mbr_obs.Json
module P = Mbr_service.Protocol
module C = Mbr_service.Client
module S = Mbr_service.Server
module Flow = Mbr_core.Flow
module G = Mbr_designgen.Generate
module Prof = Mbr_designgen.Profile
module Eco = Mbr_designgen.Eco

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* ---- protocol codecs ---- *)

(* Wire floats go through %.12g, so the generator sticks to values
   that print exactly (same policy as the Json round-trip test). *)
let exact_float_gen =
  QCheck2.Gen.(
    oneof
      [
        map float_of_int (int_range 0 1_000_000);
        map (fun i -> float_of_int i /. 16.0) (int_range 0 16_000);
      ])

let wire_string_gen =
  QCheck2.Gen.(small_string ~gen:(map Char.chr (int_range 0 255)))

let request_gen =
  let open QCheck2.Gen in
  let opt g = option g in
  int_range 0 1_000_000 >>= fun id ->
  oneofl P.all_verbs >>= fun verb ->
  opt wire_string_gen >>= fun session ->
  opt wire_string_gen >>= fun profile ->
  opt exact_float_gen >>= fun scale ->
  opt (int_range 0 9999) >>= fun seed ->
  opt exact_float_gen >>= fun frac ->
  opt exact_float_gen >>= fun timeout_s ->
  opt wire_string_gen >>= fun path ->
  opt wire_string_gen >>= fun corners ->
  opt (int_range 0 9) >>= fun recover ->
  opt (int_range 0 1_000_000) >>= fun cursor ->
  opt bool >>= fun flight ->
  opt bool >>= fun progress ->
  return
    { P.id; verb; session; profile; scale; seed; frac; timeout_s; path;
      corners; recover; cursor; flight; progress }

let request_print (r : P.request) = J.to_string (P.request_to_json r)

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"request -> json -> string -> request" ~count:500
    ~print:request_print request_gen (fun r ->
      match P.request_of_json (J.of_string (J.to_string (P.request_to_json r))) with
      | Ok r' -> r' = r
      | Error _ -> false)

let json_value_gen =
  QCheck2.Gen.(
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun f -> J.Num f) exact_float_gen;
        map (fun s -> J.Str s) wire_string_gen;
        map (fun l -> J.Arr (List.map (fun f -> J.Num f) l))
          (small_list exact_float_gen);
      ])

let response_gen =
  let open QCheck2.Gen in
  int_range 0 1_000_000 >>= fun id ->
  bool >>= fun is_ok ->
  if is_ok then json_value_gen >>= fun data -> return (P.ok id data)
  else
    oneofl P.[ Invalid_json; Bad_request; Unknown_verb; Unknown_session;
               Session_exists; Overloaded; Cancelled; Shutting_down; Internal ]
    >>= fun code ->
    wire_string_gen >>= fun msg -> return (P.fail id code msg)

let response_print (r : P.response) = J.to_string (P.response_to_json r)

let prop_response_roundtrip =
  QCheck2.Test.make ~name:"response -> json -> string -> response" ~count:500
    ~print:response_print response_gen (fun r ->
      match P.response_of_json (J.of_string (J.to_string (P.response_to_json r))) with
      | Ok r' -> r' = r
      | Error _ -> false)

let test_request_validation () =
  let parse s = P.request_of_json (J.of_string s) in
  (match parse {|{"verb": "load"}|} with
  | Error (-1, { P.code = P.Bad_request; _ }) -> ()
  | _ -> Alcotest.fail "missing id must be Bad_request with id -1");
  (match parse {|{"id": 7, "verb": "explode"}|} with
  | Error (7, { P.code = P.Unknown_verb; _ }) -> ()
  | _ -> Alcotest.fail "unknown verb must keep the id");
  (match parse {|{"id": 3, "verb": "load", "seed": "nope"}|} with
  | Error (3, { P.code = P.Bad_request; _ }) -> ()
  | _ -> Alcotest.fail "ill-typed field must be Bad_request");
  (match parse {|{"id": -4, "verb": "load"}|} with
  | Error (-1, { P.code = P.Bad_request; _ }) -> ()
  | _ -> Alcotest.fail "negative id rejected");
  (match parse {|[1, 2]|} with
  | Error (-1, { P.code = P.Bad_request; _ }) -> ()
  | _ -> Alcotest.fail "non-object rejected");
  (* unknown extra fields are ignored (forward compatibility) *)
  match parse {|{"id": 1, "verb": "shutdown", "future_knob": true}|} with
  | Ok { P.id = 1; verb = P.Shutdown; _ } -> ()
  | _ -> Alcotest.fail "extra fields must be ignored"

(* ---- a live daemon ---- *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%s/mbrd-test-%d-%d.sock" (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !n

(* Run the daemon on its own thread; returns after it is accepting. *)
let start_server config =
  let ready = Mutex.create () and cond = Condition.create () in
  let up = ref false in
  let on_ready () =
    Mutex.lock ready;
    up := true;
    Condition.signal cond;
    Mutex.unlock ready
  in
  let th = Thread.create (fun () -> S.run ~on_ready config) () in
  Mutex.lock ready;
  while not !up do
    Condition.wait cond ready
  done;
  Mutex.unlock ready;
  th

let with_server ?(workers = 2) ?(queue_limit = 8) f =
  let socket_path = fresh_socket () in
  let config = { S.default_config with S.socket_path; workers; queue_limit } in
  let th = start_server config in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      (if not !finished then
         (* a failing test must still stop the daemon or alcotest hangs *)
         try
           let c = C.connect socket_path in
           ignore (C.shutdown c);
           C.close c
         with _ -> ());
      Thread.join th)
    (fun () ->
      let r = f socket_path in
      finished := true;
      r)

let get_ok = function
  | Ok data -> data
  | Error { P.code; message } ->
    Alcotest.failf "unexpected error %s: %s" (P.error_code_to_string code)
      message

let get_err = function
  | Ok data -> Alcotest.failf "expected an error, got %s" (J.to_string data)
  | Error e -> e

let int_field name j =
  match Option.bind (J.member name j) J.to_int with
  | Some i -> i
  | None -> Alcotest.failf "field %S missing in %s" name (J.to_string j)

let test_smoke () =
  with_server @@ fun socket_path ->
  let c = C.connect socket_path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let loaded = get_ok (C.load c ~session:"s" ~profile:"tiny" ~seed:5 ()) in
  check "load reports registers" true (int_field "registers" loaded > 0);
  (* duplicate load is refused, the original session is unharmed *)
  check "duplicate load" true
    ((get_err (C.load c ~session:"s" ())).P.code = P.Session_exists);
  let p = get_ok (C.perturb c ~session:"s" ~seed:3 ()) in
  check "perturb did something" true
    (int_field "moved" p + int_field "retyped" p + int_field "removed" p
     + int_field "added" p
    > 0);
  let r = get_ok (C.recompose c ~session:"s" ()) in
  check "recompose merged" true (int_field "n_merges" r >= 0);
  checki "round counter" 1 (int_field "round" r);
  (* errors: unknown session, missing session param, raw garbage *)
  check "unknown session" true
    ((get_err (C.perturb c ~session:"ghost" ())).P.code = P.Unknown_session);
  check "missing session param" true
    ((get_err (C.call c P.Recompose)).P.code = P.Bad_request);
  let m = get_ok (C.query_metrics c) in
  let sessions = Option.bind (J.member "sessions" m) J.to_list in
  check "query-metrics lists the session" true
    (match sessions with
    | Some l ->
      List.exists
        (fun s -> J.member "name" s = Some (J.Str "s"))
        l
    | None -> false);
  check "query-metrics carries the registry" true (J.member "metrics" m <> None);
  let trace_file = fresh_socket () ^ ".trace.json" in
  ignore (get_ok (C.export_trace c ~path:trace_file));
  check "trace file written and parseable" true
    (match J.of_string_result (In_channel.with_open_text trace_file In_channel.input_all) with
    | Ok (J.Obj _) -> Sys.remove trace_file; true
    | _ -> false);
  ignore (get_ok (C.shutdown c));
  (* the daemon unlinks its socket on the way out *)
  let rec gone n =
    (not (Sys.file_exists socket_path))
    || n > 0
       && begin
            Unix.sleepf 0.01;
            gone (n - 1)
          end
  in
  check "socket removed after shutdown" true (gone 500)

let test_malformed_lines () =
  with_server @@ fun socket_path ->
  let c = C.connect socket_path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* speak raw bytes at the daemon: it must answer errors, not die *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let expect_code line code =
    output_string oc (line ^ "\n");
    flush oc;
    match P.response_of_json (J.of_string (input_line ic)) with
    | Ok { P.result = Error e; _ } ->
      Alcotest.(check string)
        (Printf.sprintf "code for %s" line)
        (P.error_code_to_string code)
        (P.error_code_to_string e.P.code)
    | _ -> Alcotest.failf "expected an error response to %s" line
  in
  expect_code "{nonsense" P.Invalid_json;
  expect_code {|"just a string"|} P.Bad_request;
  expect_code {|{"id": 1, "verb": "frobnicate"}|} P.Unknown_verb;
  expect_code {|{"id": 2, "verb": "load"}|} P.Bad_request;
  close_in ic;
  (* the daemon survived: a real client still gets served *)
  ignore (get_ok (C.query_metrics c));
  ignore (get_ok (C.shutdown c))

let test_cancelled_recompose_usable () =
  with_server @@ fun socket_path ->
  let c = C.connect socket_path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  ignore (get_ok (C.load c ~session:"s" ~profile:"tiny" ~seed:2 ()));
  let e = get_err (C.recompose c ~session:"s" ~timeout_s:0.0 ()) in
  Alcotest.(check string) "deadline exceeded" "cancelled"
    (P.error_code_to_string e.P.code);
  (* the same session serves the next request normally *)
  let r = get_ok (C.recompose c ~session:"s" ()) in
  check "session usable after cancellation" true (int_field "n_merges" r >= 0);
  ignore (get_ok (C.shutdown c))

(* ---- progress streaming ----

   A recompose sent with [progress: true] streams one event per Fig.-4
   stage entered, strictly before the final response, all carrying the
   request's id. The raw-socket variant checks the wire ordering
   directly; the typed variant checks the event contents. *)

let fig4_stages =
  [ "eco-reset"; "metrics-before"; "decompose"; "compat-graph";
    "blocker-index"; "allocate"; "merge"; "scan-restitch"; "skew";
    "resize"; "metrics-after" ]

let test_progress_stream_wire () =
  with_server @@ fun socket_path ->
  let c = C.connect socket_path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  ignore (get_ok (C.load c ~session:"s" ~profile:"tiny" ~seed:4 ()));
  (* raw connection: observe the exact line sequence for one request *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let req_id = 41 in
  output_string oc
    (J.to_string
       (P.request_to_json
          { (P.request ~id:req_id ~session:"s" P.Recompose) with
            P.progress = Some true })
    ^ "\n");
  flush oc;
  let events = ref [] and response = ref None in
  while !response = None do
    let j = J.of_string (input_line ic) in
    if P.is_event j then begin
      check "events arrive strictly before the final response" true
        (!response = None);
      match P.progress_of_json j with
      | Ok ev -> events := ev :: !events
      | Error m -> Alcotest.failf "malformed event: %s" m
    end
    else
      match P.response_of_json j with
      | Ok r -> response := Some r
      | Error m -> Alcotest.failf "protocol violation: %s" m
  done;
  close_in ic;
  let events = List.rev !events in
  (match !response with
  | Some { P.id; result = Ok _; _ } -> checki "response id" req_id id
  | _ -> Alcotest.fail "recompose must succeed");
  check "at least one event per stage" true
    (List.length events >= List.length fig4_stages);
  check "every event carries the request id" true
    (List.for_all (fun e -> e.P.pe_id = req_id) events);
  (* the main pass (round 0) enters every Fig.-4 stage, in order *)
  let round0 =
    List.filter_map
      (fun e -> if e.P.pe_round = 0 then Some e.P.pe_stage else None)
      events
  in
  Alcotest.(check (list string))
    "round 0 walks the Fig.-4 pipeline" fig4_stages round0;
  (* monotonicity: rounds and block counters never go backwards *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.P.pe_round <= b.P.pe_round
      && a.P.pe_resolved <= b.P.pe_resolved
      && monotone rest
    | _ -> true
  in
  check "rounds and resolved counts are monotone" true (monotone events);
  check "resolved <= total" true
    (List.for_all (fun e -> e.P.pe_resolved <= e.P.pe_total) events);
  ignore (get_ok (C.shutdown c))

let test_progress_typed_client () =
  with_server @@ fun socket_path ->
  let c = C.connect socket_path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  ignore (get_ok (C.load c ~session:"s" ~profile:"tiny" ~seed:6 ()));
  let seen = ref [] in
  let r =
    get_ok
      (C.recompose c ~session:"s"
         ~on_progress:(fun e -> seen := e.P.pe_stage :: !seen)
         ())
  in
  check "recompose answered" true (int_field "n_merges" r >= 0);
  Alcotest.(check (list string))
    "typed client sees the stage walk" fig4_stages (List.rev !seen);
  (* without on_progress no events are requested — the callback-free
     path still works against the same daemon *)
  let r2 = get_ok (C.recompose c ~session:"s" ()) in
  check "plain recompose still fine" true (int_field "n_merges" r2 >= 0);
  ignore (get_ok (C.shutdown c))

(* a cancelled recompose must still terminate the event stream: the
   final (error) response arrives after whatever events escaped, and
   the client call returns instead of hanging *)
let test_cancelled_progress_terminates () =
  with_server @@ fun socket_path ->
  let c = C.connect socket_path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  ignore (get_ok (C.load c ~session:"s" ~profile:"tiny" ~seed:3 ()));
  let n_events = ref 0 in
  let e =
    get_err
      (C.recompose c ~session:"s" ~timeout_s:0.0
         ~on_progress:(fun _ -> incr n_events)
         ())
  in
  Alcotest.(check string) "cancelled" "cancelled"
    (P.error_code_to_string e.P.code);
  (* the stream terminated and the connection is still usable *)
  let r = get_ok (C.recompose c ~session:"s" ()) in
  check "session usable after cancelled stream" true
    (int_field "n_merges" r >= 0);
  ignore (get_ok (C.shutdown c))

(* ---- telemetry verb ---- *)

let test_telemetry_cursor () =
  with_server @@ fun socket_path ->
  let c = C.connect socket_path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  ignore (get_ok (C.load c ~session:"s" ~profile:"tiny" ~seed:9 ()));
  ignore (get_ok (C.recompose c ~session:"s" ()));
  let str_field name j =
    match Option.bind (J.member name j) J.to_str with
    | Some s -> s
    | None -> Alcotest.failf "field %S missing in %s" name (J.to_string j)
  in
  let t1 = get_ok (C.telemetry c ()) in
  Alcotest.(check string) "first poll is full" "full" (str_field "mode" t1);
  check "snapshot parses back" true
    (match
       Option.map Mbr_obs.Metrics.snapshot_of_json (J.member "metrics" t1)
     with
    | Some (Ok _) -> true
    | _ -> false);
  check "queue depth reported" true (int_field "queue_depth" t1 >= 0);
  check "sessions listed" true
    (match Option.bind (J.member "sessions" t1) J.to_list with
    | Some l ->
      List.exists (fun s -> J.member "name" s = Some (J.Str "s")) l
    | None -> false);
  let c1 = int_field "cursor" t1 in
  ignore (get_ok (C.perturb c ~session:"s" ~seed:17 ()));
  let t2 = get_ok (C.telemetry c ~cursor:c1 ()) in
  Alcotest.(check string) "echoed cursor answers a delta" "delta"
    (str_field "mode" t2);
  check "cursor advances" true (int_field "cursor" t2 > c1);
  (* a delta applied to nothing still decodes as a snapshot *)
  check "delta parses back" true
    (match
       Option.map Mbr_obs.Metrics.snapshot_of_json (J.member "metrics" t2)
     with
    | Some (Ok _) -> true
    | _ -> false);
  (* an unknown (expired) cursor degrades to full, never errors *)
  let t3 = get_ok (C.telemetry c ~cursor:999_999 ()) in
  Alcotest.(check string) "unknown cursor falls back to full" "full"
    (str_field "mode" t3);
  (* the flight recorder remembers the requests just made *)
  let t4 = get_ok (C.telemetry c ~flight:true ()) in
  (match Option.bind (J.member "flight" t4) J.to_list with
  | Some digests ->
    check "flight recorder non-empty" true (digests <> []);
    check "flight digests carry verb/outcome" true
      (List.for_all
         (fun d ->
           J.member "verb" d <> None && J.member "outcome" d <> None
           && J.member "latency_s" d <> None)
         digests);
    check "flight remembers the recompose" true
      (List.exists
         (fun d -> J.member "verb" d = Some (J.Str "recompose"))
         digests)
  | None -> Alcotest.fail "flight dump missing despite flight: true");
  check "no flight dump unless asked" true (J.member "flight" t1 = None);
  ignore (get_ok (C.shutdown c))

(* ---- concurrency equivalence ----

   [n_sessions] sessions, [n_clients] client threads, each thread
   driving its own disjoint slice through load -> perturb -> recompose
   -> perturb -> recompose. The daemon interleaves the slices over its
   worker domains; the oracle replays every slice serially through
   Flow.Session in this process. Equal final numbers mean no request
   was lost, misrouted, reordered within a session, or allowed to
   touch a neighbouring session's state. *)

let replay_serial seed =
  let gen = G.generate (Prof.tiny ~seed) in
  let options = { Flow.default_options with Flow.jobs = Some 1 } in
  let session =
    Flow.Session.create ~options ~design:gen.G.design
      ~placement:gen.G.placement ~library:gen.G.library
      ~sta_config:gen.G.sta_config ()
  in
  let r = ref (Flow.Session.recompose session) in
  for round = 1 to 2 do
    ignore
      (Eco.perturb (Mbr_util.Rng.create (seed + (round * 100))) gen);
    r := Flow.Session.recompose session
  done;
  !r

let test_concurrent_equivalence () =
  let n_sessions = 6 and n_clients = 3 in
  with_server ~workers:4 @@ fun socket_path ->
  let results = Array.make n_sessions J.Null in
  let client k () =
    let c = C.connect socket_path in
    Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
    let s = ref k in
    while !s < n_sessions do
      let seed = !s in
      let name = Printf.sprintf "sess-%d" seed in
      ignore (get_ok (C.load c ~session:name ~profile:"tiny" ~seed ()));
      ignore (get_ok (C.recompose c ~session:name ()));
      for round = 1 to 2 do
        ignore
          (get_ok (C.perturb c ~session:name ~seed:(seed + (round * 100)) ()));
        results.(seed) <- get_ok (C.recompose c ~session:name ())
      done;
      s := !s + n_clients
    done
  in
  let threads = Array.init n_clients (fun k -> Thread.create (client k) ()) in
  Array.iter Thread.join threads;
  let c = C.connect socket_path in
  ignore (get_ok (C.shutdown c));
  C.close c;
  for seed = 0 to n_sessions - 1 do
    let oracle = replay_serial seed in
    let got = results.(seed) in
    checki
      (Printf.sprintf "session %d: rounds" seed)
      3 (int_field "round" got);
    checki
      (Printf.sprintf "session %d: merges" seed)
      oracle.Flow.n_merges (int_field "n_merges" got);
    checki
      (Printf.sprintf "session %d: registers" seed)
      oracle.Flow.after.Mbr_core.Metrics.total_regs
      (int_field "total_regs" got);
    let cost =
      match Option.bind (J.member "ilp_cost" got) J.to_float with
      | Some f -> f
      | None -> Alcotest.fail "ilp_cost missing"
    in
    check
      (Printf.sprintf "session %d: cost" seed)
      true
      (Float.abs (cost -. oracle.Flow.ilp_cost)
      <= 1e-6 *. Float.max 1.0 (Float.abs oracle.Flow.ilp_cost))
  done

(* Backpressure: with a queue limit of 1 and a slow session verb in
   flight, piling on more must eventually answer overloaded — and the
   session must survive the episode. *)
let test_overload_backpressure () =
  with_server ~workers:1 ~queue_limit:1 @@ fun socket_path ->
  let c = C.connect socket_path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  ignore (get_ok (C.load c ~session:"s" ~profile:"tiny" ~seed:1 ()));
  (* fire-and-forget raw writer: floods without waiting for answers *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let n = 24 in
  for i = 0 to n - 1 do
    output_string oc
      (J.to_string
         (P.request_to_json
            (P.request ~id:i ~session:"s" ~seed:i P.Perturb))
      ^ "\n")
  done;
  flush oc;
  let codes = Hashtbl.create 8 in
  for _ = 1 to n do
    match P.response_of_json (J.of_string (input_line ic)) with
    | Ok { P.result = Ok _; _ } ->
      Hashtbl.replace codes "ok" (1 + Option.value ~default:0 (Hashtbl.find_opt codes "ok"))
    | Ok { P.result = Error e; _ } ->
      let k = P.error_code_to_string e.P.code in
      Hashtbl.replace codes k (1 + Option.value ~default:0 (Hashtbl.find_opt codes k))
    | Error m -> Alcotest.failf "protocol violation: %s" m
  done;
  close_in ic;
  check "every request answered exactly once" true
    (Hashtbl.fold (fun _ v acc -> acc + v) codes 0 = n);
  check "some succeeded" true (Hashtbl.mem codes "ok");
  check "some shed as overloaded" true (Hashtbl.mem codes "overloaded");
  check "nothing else went wrong" true
    (Hashtbl.fold
       (fun k _ acc -> acc && (k = "ok" || k = "overloaded"))
       codes true);
  (* the flooded session still serves *)
  ignore (get_ok (C.recompose c ~session:"s" ()));
  ignore (get_ok (C.shutdown c))

let () =
  Alcotest.run "mbr_service"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          Alcotest.test_case "request validation" `Quick test_request_validation;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "smoke" `Quick test_smoke;
          Alcotest.test_case "malformed lines" `Quick test_malformed_lines;
          Alcotest.test_case "cancelled recompose leaves session usable" `Quick
            test_cancelled_recompose_usable;
          Alcotest.test_case "overload backpressure" `Quick
            test_overload_backpressure;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "progress stream on the wire" `Quick
            test_progress_stream_wire;
          Alcotest.test_case "typed client progress callback" `Quick
            test_progress_typed_client;
          Alcotest.test_case "cancelled recompose terminates the stream"
            `Quick test_cancelled_progress_terminates;
          Alcotest.test_case "telemetry cursor and flight recorder" `Quick
            test_telemetry_cursor;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "concurrent clients = serial replay" `Slow
            test_concurrent_equivalence;
        ] );
    ]
