(* mbrd — the standalone ECO-service daemon.

   Exactly `mbrc serve` without the rest of the toolbox: holds many
   named Flow.Sessions behind a line-delimited JSON protocol on a
   Unix-domain socket and serves load / perturb / recompose /
   query-metrics / export-trace / shutdown. See DESIGN.md §14 for the
   protocol and the concurrency architecture. *)

open Cmdliner
module S = Mbr_service.Server

let run socket workers queue_limit alloc_jobs trace log_level prom_file
    sample_period no_session_metrics flight_capacity =
  (match Mbr_obs.Log.level_of_string log_level with
  | Ok level -> Mbr_obs.Log.setup ~level ()
  | Error m -> failwith (Printf.sprintf "--log-level: %s" m));
  Mbr_obs.Metrics.enable ();
  (* tracing is opt-in: per-domain ring buffers are bounded
     (Trace.default_capacity), but recording still costs per event *)
  if trace then Mbr_obs.Trace.enable ();
  Printf.eprintf "mbrd: serving on %s\n%!" socket;
  (match prom_file with
  | Some f -> Printf.eprintf "mbrd: prometheus exposition at %s\n%!" f
  | None -> ());
  S.run
    {
      S.socket_path = socket;
      workers;
      queue_limit;
      alloc_jobs;
      session_metrics = not no_session_metrics;
      sample_period_s = sample_period;
      prom_file;
      flight_capacity;
      handle_sigusr2 = true;
    };
  Printf.eprintf "mbrd: drained, exiting\n%!"

let () =
  Mbr_util.Runtime.tune ();
  let socket_arg =
    Arg.(value & opt string S.default_config.S.socket_path
         & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
  in
  let workers_arg =
    Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
           ~doc:"Executor worker domains (0 = auto-detect cores).")
  in
  let queue_limit_arg =
    Arg.(value & opt int S.default_config.S.queue_limit
         & info [ "queue-limit" ] ~docv:"N"
             ~doc:"Pending requests per session before overloaded.")
  in
  let alloc_jobs_arg =
    Arg.(value & opt int 1 & info [ "alloc-jobs" ] ~docv:"N"
           ~doc:"Nested allocate fan-out per recompose (default 1).")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Record spans so export-trace has something to write.")
  in
  let log_level_arg =
    Arg.(value & opt string "warning" & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"quiet, error, warning, info or debug.")
  in
  let prom_file_arg =
    Arg.(value & opt (some string) None & info [ "prom-file" ] ~docv:"PATH"
           ~doc:"Atomically rewrite $(docv) in Prometheus text format every \
                 sampler tick (point a node_exporter textfile collector or \
                 file scraper at it).")
  in
  let sample_period_arg =
    Arg.(value & opt float S.default_config.S.sample_period_s
         & info [ "sample-period" ] ~docv:"SECONDS"
             ~doc:"Background sampler period for GC/RSS/queue-depth gauges \
                   (0 disables unless --prom-file forces it at 1s).")
  in
  let no_session_metrics_arg =
    Arg.(value & flag & info [ "no-session-metrics" ]
           ~doc:"Skip per-session labeled metric series (bounds registry \
                 growth under heavy session churn).")
  in
  let flight_capacity_arg =
    Arg.(value & opt int S.default_config.S.flight_capacity
         & info [ "flight-capacity" ] ~docv:"N"
             ~doc:"Flight-recorder ring size: last N request digests, \
                   dumped by SIGUSR2 or telemetry {flight:true} (0 \
                   disables).")
  in
  let info =
    Cmd.info "mbrd" ~version:"1.0.0"
      ~doc:"concurrent multi-session MBR-composition ECO daemon"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(const run $ socket_arg $ workers_arg $ queue_limit_arg
                $ alloc_jobs_arg $ trace_arg $ log_level_arg $ prom_file_arg
                $ sample_period_arg $ no_session_metrics_arg
                $ flight_capacity_arg)))
