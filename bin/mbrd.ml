(* mbrd — the standalone ECO-service daemon.

   Exactly `mbrc serve` without the rest of the toolbox: holds many
   named Flow.Sessions behind a line-delimited JSON protocol on a
   Unix-domain socket and serves load / perturb / recompose /
   query-metrics / export-trace / shutdown. See DESIGN.md §14 for the
   protocol and the concurrency architecture. *)

open Cmdliner
module S = Mbr_service.Server

let run socket workers queue_limit alloc_jobs trace log_level =
  (match Mbr_obs.Log.level_of_string log_level with
  | Ok level -> Mbr_obs.Log.setup ~level ()
  | Error m -> failwith (Printf.sprintf "--log-level: %s" m));
  Mbr_obs.Metrics.enable ();
  (* tracing is opt-in: per-domain buffers hold every event, which a
     long-running daemon would accumulate without bound *)
  if trace then Mbr_obs.Trace.enable ();
  Printf.eprintf "mbrd: serving on %s\n%!" socket;
  S.run { S.socket_path = socket; workers; queue_limit; alloc_jobs };
  Printf.eprintf "mbrd: drained, exiting\n%!"

let () =
  let socket_arg =
    Arg.(value & opt string S.default_config.S.socket_path
         & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
  in
  let workers_arg =
    Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
           ~doc:"Executor worker domains (0 = auto-detect cores).")
  in
  let queue_limit_arg =
    Arg.(value & opt int S.default_config.S.queue_limit
         & info [ "queue-limit" ] ~docv:"N"
             ~doc:"Pending requests per session before overloaded.")
  in
  let alloc_jobs_arg =
    Arg.(value & opt int 1 & info [ "alloc-jobs" ] ~docv:"N"
           ~doc:"Nested allocate fan-out per recompose (default 1).")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Record spans so export-trace has something to write.")
  in
  let log_level_arg =
    Arg.(value & opt string "warning" & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"quiet, error, warning, info or debug.")
  in
  let info =
    Cmd.info "mbrd" ~version:"1.0.0"
      ~doc:"concurrent multi-session MBR-composition ECO daemon"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(const run $ socket_arg $ workers_arg $ queue_limit_arg
                $ alloc_jobs_arg $ trace_arg $ log_level_arg)))
