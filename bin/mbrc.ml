(* mbrc — the command-line driver for the MBR-composition library.

   Subcommands:
     run       run the full flow on one design profile
     eco       persistent session: perturb + recompose rounds
     table1    regenerate the paper's Table 1 on D1-D5
     fig5      MBR bit-width histograms before/after
     fig6      ILP vs heuristic allocator comparison
     ablations partition bound / weights / incomplete / skew / decompose
     export    write a design as Verilog + DEF + Liberty
     compose   run the flow on Verilog + DEF + Liberty files from disk
     example   the paper's Figs. 1-3 worked example *)

open Cmdliner
module P = Mbr_designgen.Profile
module G = Mbr_designgen.Generate
module Eco = Mbr_designgen.Eco
module Flow = Mbr_core.Flow
module Metrics = Mbr_core.Metrics
module Allocate = Mbr_core.Allocate
module Candidate = Mbr_core.Candidate
module E = Mbr_harness.Experiments

(* Everything every subcommand shares: profile resolution, option
   assembly, and the cmdliner terms themselves. Subcommands compose
   their Term from these — no per-command redefinitions. *)
module Common_args = struct
  let profile_of_name name seed scale =
    let base =
      match String.lowercase_ascii name with
      | "d1" -> P.d1
      | "d2" -> P.d2
      | "d3" -> P.d3
      | "d4" -> P.d4
      | "d5" -> P.d5
      | "tiny" -> P.tiny ~seed:(match seed with Some s -> s | None -> 1)
      | "flat" -> P.flat ~seed:(match seed with Some s -> s | None -> 1)
      | other ->
        failwith (Printf.sprintf "unknown profile %S (d1..d5, tiny, flat)" other)
    in
    let base = match seed with Some s -> { base with P.seed = s } | None -> base in
    P.scaled base scale

  (* -j 0 means "use every core the runtime recommends" *)
  let resolve_jobs = function
    | None -> None
    | Some 0 -> Some (Mbr_util.Pool.recommended_jobs ())
    | Some n -> Some n

  let corners_of = function
    | None -> Flow.default_options.Flow.corners
    | Some spec -> (
      match Mbr_sta.Corner.parse_set spec with
      | Ok cs -> cs
      | Error m -> failwith (Printf.sprintf "--corners: %s" m))

  let options_of ~mode ~no_skew ~no_incomplete ~bound ~decompose ~jobs
      ~corners ~recover =
    let mode =
      match String.lowercase_ascii mode with
      | "ilp" -> `Ilp
      | "greedy" -> `Greedy_share
      | "clique" -> `Clique
      | other -> failwith (Printf.sprintf "unknown mode %S (ilp|greedy|clique)" other)
    in
    if recover < 0 then failwith "--recover must be non-negative";
    {
      Flow.default_options with
      Flow.mode;
      decompose;
      corners = corners_of corners;
      recover;
      jobs = resolve_jobs jobs;
      skew = (if no_skew then None else Flow.default_options.Flow.skew);
      allocate =
        {
          Allocate.default_config with
          Allocate.partition_bound = bound;
          candidate =
            {
              Candidate.default_config with
              Candidate.allow_incomplete = not no_incomplete;
            };
        };
    }

  let profile_arg =
    Arg.(value & opt string "d1" & info [ "p"; "profile" ] ~docv:"NAME"
           ~doc:"Design profile: d1..d5, tiny, or flat (aggregation-hostile \
                 flat netlist).")

  let seed_arg =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N"
           ~doc:"Override the profile's RNG seed.")

  let scale_arg =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"F"
           ~doc:"Scale the register count (e.g. 0.25 for a quick run).")

  let mode_arg =
    Arg.(value & opt string "ilp" & info [ "mode" ] ~docv:"M"
           ~doc:"Allocator: ilp, greedy (weighted heuristic) or clique.")

  let no_skew_arg =
    Arg.(value & flag & info [ "no-skew" ] ~doc:"Disable useful skew after composition.")

  let no_incomplete_arg =
    Arg.(value & flag & info [ "no-incomplete" ] ~doc:"Disallow incomplete MBRs.")

  let bound_arg =
    Arg.(value & opt int 30 & info [ "bound" ] ~docv:"N"
           ~doc:"K-partition node bound (paper: 30).")

  let decompose_arg =
    Arg.(value & flag & info [ "decompose" ]
           ~doc:"Decompose max-width MBRs before composing (paper's future work).")

  let corners_arg =
    Arg.(value & opt (some string) None & info [ "corners" ] ~docv:"SPEC"
           ~doc:"Multi-corner STA: comma-separated corner set, each element \
                 a built-in name (typical, slow, fast, harsh) or a custom \
                 name:cell:wire:setup derate quadruple. All QoR numbers \
                 become worst-corner. Default: typical only.")

  let recover_arg =
    Arg.(value & opt int 0 & info [ "recover" ] ~docv:"N"
           ~doc:"Recovery-round budget: after composing, decompose MBRs \
                 whose worst-corner slack went negative and re-run the flow \
                 on the affected region, up to N rounds (default 0 = off).")

  let jobs_arg =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the per-block allocate stage (default 1 = \
                 serial; 0 = auto-detect cores). Results are identical at any \
                 setting.")

  (* ---- telemetry, shared by every subcommand ---- *)

  type telemetry = {
    trace_out : string option;
    metrics_out : string option;
    log_level : string;
  }

  let trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE.json"
           ~doc:"Record a span trace of the run and write it as Chrome \
                 trace_event JSON, loadable as-is in chrome://tracing or \
                 https://ui.perfetto.dev.")

  let metrics_arg =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE.json"
           ~doc:"Collect the telemetry counters/histograms (STA refreshes, \
                 ILP nodes, simplex pivots, cache hits, block solve times, \
                 ...) and write a JSON snapshot at exit.")

  let log_level_arg =
    Arg.(value & opt string "warning" & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"Log verbosity on stderr: quiet, error, warning, info or \
                 debug.")

  let telemetry_term =
    let mk trace_out metrics_out log_level =
      { trace_out; metrics_out; log_level }
    in
    Term.(const mk $ trace_arg $ metrics_arg $ log_level_arg)

  (* Run a subcommand body under the requested telemetry: install the
     log reporter, switch tracing/metrics on up front, and write the
     output files even when the body raises (a trace of a crashed run
     is exactly the trace one wants). *)
  let with_telemetry tele f =
    (match Mbr_obs.Log.level_of_string tele.log_level with
    | Ok level -> Mbr_obs.Log.setup ~level ()
    | Error m -> failwith (Printf.sprintf "--log-level: %s" m));
    if tele.trace_out <> None then Mbr_obs.Trace.enable ();
    if tele.metrics_out <> None then Mbr_obs.Metrics.enable ();
    Fun.protect
      ~finally:(fun () ->
        Option.iter
          (fun path ->
            Mbr_obs.Trace.write path;
            Printf.eprintf "wrote trace (%d events) to %s\n%!"
              (Mbr_obs.Trace.n_events ()) path)
          tele.trace_out;
        Option.iter
          (fun path ->
            Mbr_obs.Metrics.write path;
            Printf.eprintf "wrote metrics to %s\n%!" path)
          tele.metrics_out)
      f
end

open Common_args

let run_cmd =
  let run tele profile seed scale mode no_skew no_incomplete bound decompose
      jobs corners recover =
    with_telemetry tele @@ fun () ->
    let p = profile_of_name profile seed scale in
    let options =
      options_of ~mode ~no_skew ~no_incomplete ~bound ~decompose ~jobs ~corners
        ~recover
    in
    Printf.printf "running %s (%d registers)...\n%!" p.P.name p.P.n_registers;
    let r = E.run_profile ~options p in
    List.iter
      (fun (name, wns, tns) ->
        Printf.printf "corner %-10s wns %8.1f  tns %10.1f\n" name wns tns)
      r.E.result.Flow.after.Metrics.corners;
    if r.E.result.Flow.recover_rounds > 0 then
      Printf.printf "recovery: %d rounds, %d registers split\n"
        r.E.result.Flow.recover_rounds r.E.result.Flow.recover_splits;
    Format.printf "before: %a@." Metrics.pp_row r.E.result.Flow.before;
    Format.printf "after : %a@." Metrics.pp_row r.E.result.Flow.after;
    Printf.printf
      "%d split, %d MBRs from %d registers (%d incomplete, %d resized), %d blocks, %.1f s\n"
      r.E.result.Flow.n_split r.E.result.Flow.n_merges
      r.E.result.Flow.n_regs_merged r.E.result.Flow.n_incomplete
      r.E.result.Flow.n_resized r.E.result.Flow.n_blocks r.E.result.Flow.runtime_s;
    let bt = r.E.result.Flow.alloc_block_times in
    Printf.printf
      "allocate: %d jobs, block solves total %.2f s (mean %.4f, max %.4f)\n"
      r.E.result.Flow.alloc_jobs bt.Allocate.total_s bt.Allocate.mean_s
      bt.Allocate.max_s
  in
  Cmd.v (Cmd.info "run" ~doc:"Run the MBR-composition flow on one design.")
    Term.(const run $ telemetry_term $ profile_arg $ seed_arg $ scale_arg
          $ mode_arg $ no_skew_arg $ no_incomplete_arg $ bound_arg
          $ decompose_arg $ jobs_arg $ corners_arg $ recover_arg)

let eco_cmd =
  let run tele profile seed scale mode jobs rounds eco_seed move_frac corners
      recover =
    with_telemetry tele @@ fun () ->
    let p = profile_of_name profile seed scale in
    let options =
      options_of ~mode ~no_skew:false ~no_incomplete:false ~bound:30
        ~decompose:false ~jobs ~corners ~recover
    in
    let g = G.generate p in
    (* no --corners: analyze under the profile's own derate set *)
    let options =
      if corners = None then { options with Flow.corners = g.G.corners }
      else options
    in
    Printf.printf "eco session on %s (%d registers), %d rounds\n%!" p.P.name
      p.P.n_registers rounds;
    let session =
      Flow.Session.create ~options ~design:g.G.design ~placement:g.G.placement
        ~library:g.G.library ~sta_config:g.G.sta_config ()
    in
    let rng = Mbr_util.Rng.create eco_seed in
    let config = { Eco.default_config with Eco.move_frac } in
    for round = 0 to rounds do
      if round > 0 then begin
        let s = Eco.perturb ~config rng g in
        Printf.printf
          "round %d: %d edits (%d moved, %d retyped, %d removed, %d added)\n%!"
          round (Eco.total s) s.Eco.moved s.Eco.retyped s.Eco.removed s.Eco.added
      end;
      let r = Flow.Session.recompose session in
      Printf.printf
        "  recompose: %d merges, %d/%d blocks re-solved (%d reused), %.2f s\n"
        r.Flow.n_merges r.Flow.eco_blocks_resolved r.Flow.n_blocks
        r.Flow.eco_blocks_reused r.Flow.runtime_s;
      if r.Flow.recover_rounds > 0 then
        Printf.printf "  recovery: %d rounds, %d registers split\n"
          r.Flow.recover_rounds r.Flow.recover_splits;
      Format.printf "  after: %a@." Metrics.pp_row r.Flow.after
    done
  in
  let rounds_arg =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"N"
           ~doc:"Number of perturb + recompose rounds after the initial one.")
  in
  let eco_seed_arg =
    Arg.(value & opt int 1 & info [ "eco-seed" ] ~docv:"N"
           ~doc:"RNG seed for the ECO perturbations (independent of the \
                 design-generation seed).")
  in
  let move_frac_arg =
    Arg.(value & opt float Eco.default_config.Eco.move_frac
         & info [ "move-frac" ] ~docv:"F"
             ~doc:"Fraction of registers jittered per round (default 0.10).")
  in
  Cmd.v
    (Cmd.info "eco"
       ~doc:"Open a persistent session and alternate random ECO batches with \
             incremental recompose, printing block reuse per round.")
    Term.(const run $ telemetry_term $ profile_arg $ seed_arg $ scale_arg
          $ mode_arg $ jobs_arg $ rounds_arg $ eco_seed_arg $ move_frac_arg
          $ corners_arg $ recover_arg)

let profiles_scaled scale = List.map (fun p -> P.scaled p scale) P.all

let table1_cmd =
  let run tele scale jobs =
    with_telemetry tele @@ fun () ->
    let jobs = resolve_jobs jobs in
    let runs = List.map (E.run_profile ?jobs) (profiles_scaled scale) in
    print_string (E.table1 runs);
    print_newline ();
    print_string (E.table1_summary runs)
  in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate the paper's Table 1 on D1-D5.")
    Term.(const run $ telemetry_term $ scale_arg $ jobs_arg)

let fig5_cmd =
  let run tele scale jobs =
    with_telemetry tele @@ fun () ->
    let jobs = resolve_jobs jobs in
    let runs = List.map (E.run_profile ?jobs) (profiles_scaled scale) in
    print_string (E.fig5 runs)
  in
  Cmd.v (Cmd.info "fig5" ~doc:"MBR bit-width histograms before/after (Fig. 5).")
    Term.(const run $ telemetry_term $ scale_arg $ jobs_arg)

let fig6_cmd =
  let run tele scale jobs =
    with_telemetry tele @@ fun () ->
    let _, s = E.fig6 ?jobs:(resolve_jobs jobs) (profiles_scaled scale) in
    print_string s
  in
  Cmd.v (Cmd.info "fig6" ~doc:"ILP vs heuristic allocator (Fig. 6).")
    Term.(const run $ telemetry_term $ scale_arg $ jobs_arg)

let ablations_cmd =
  let run tele profile seed scale jobs =
    with_telemetry tele @@ fun () ->
    let jobs = resolve_jobs jobs in
    let p = profile_of_name profile seed scale in
    print_endline "--- partition bound (section 3) ---";
    print_string (E.ablation_partition_bound ?jobs p [ 10; 20; 30; 40 ]);
    print_endline "\n--- placement-aware weights (section 3.2) ---";
    print_string (E.ablation_weights ?jobs p);
    print_endline "\n--- incomplete MBRs (section 3) ---";
    print_string (E.ablation_incomplete ?jobs p);
    print_endline "\n--- useful skew (Fig. 4) ---";
    print_string (E.ablation_skew ?jobs p);
    print_endline "\n--- decompose + recompose (section 5 future work) ---";
    print_string (E.ablation_decompose ?jobs p);
    print_endline "\n--- global vs detailed placement entry ---";
    print_string (E.ablation_global_entry ?jobs p)
  in
  Cmd.v (Cmd.info "ablations" ~doc:"Design-choice ablation studies.")
    Term.(const run $ telemetry_term $ profile_arg $ seed_arg $ scale_arg
          $ jobs_arg)

let export_cmd =
  let run tele profile seed scale dir compose svg jobs =
    with_telemetry tele @@ fun () ->
    let p = profile_of_name profile seed scale in
    let g = Mbr_designgen.Generate.generate p in
    let write path content =
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    let base = Filename.concat dir (String.lowercase_ascii p.P.name) in
    if svg && compose then
      write (base ^ "_before.svg")
        (Mbr_export.Svg.render ~title:(p.P.name ^ " before composition")
           g.Mbr_designgen.Generate.placement);
    let highlight =
      if compose then begin
        let options =
          { Flow.default_options with Flow.jobs = resolve_jobs jobs }
        in
        let r =
          Flow.run ~options ~design:g.Mbr_designgen.Generate.design
            ~placement:g.Mbr_designgen.Generate.placement
            ~library:g.Mbr_designgen.Generate.library
            ~sta_config:g.Mbr_designgen.Generate.sta_config ()
        in
        Printf.printf "composed: %d MBRs from %d registers\n" r.Flow.n_merges
          r.Flow.n_regs_merged;
        r.Flow.new_mbrs
      end
      else []
    in
    if svg then
      write
        (base ^ (if compose then "_after.svg" else ".svg"))
        (Mbr_export.Svg.render ~highlight
           ~title:(p.P.name ^ if compose then " after composition" else "")
           g.Mbr_designgen.Generate.placement);
    write (base ^ ".v")
      (Mbr_export.Verilog.to_verilog g.Mbr_designgen.Generate.design);
    write (base ^ ".def") (Mbr_export.Def.to_def g.Mbr_designgen.Generate.placement);
    write (base ^ ".lib")
      (Mbr_liberty.Liberty_io.to_liberty
         ~gates:(Mbr_designgen.Generate.gate_cells ())
         g.Mbr_designgen.Generate.library)
  in
  let dir_arg =
    Arg.(value & opt string "." & info [ "o"; "outdir" ] ~docv:"DIR"
           ~doc:"Output directory for the .v/.def/.lib files.")
  in
  let compose_arg =
    Arg.(value & flag & info [ "composed" ]
           ~doc:"Run MBR composition before exporting.")
  in
  let svg_arg =
    Arg.(value & flag & info [ "svg" ]
           ~doc:"Also render the placement as SVG (before/after with \
                 $(b,--composed), new MBRs outlined).")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export a design as structural Verilog + DEF + Liberty (+ SVG).")
    Term.(const run $ telemetry_term $ profile_arg $ seed_arg $ scale_arg
          $ dir_arg $ compose_arg $ svg_arg $ jobs_arg)

let compose_cmd =
  let run tele netlist def lib outdir period mode no_skew no_incomplete
      decompose bound jobs corners recover =
    with_telemetry tele @@ fun () ->
    let read path =
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let library, gate_cells = Mbr_liberty.Liberty_io.of_liberty_full (read lib) in
    let design =
      Mbr_export.Verilog.of_verilog ~library
        ~gates:(Mbr_export.Verilog.resolver_of_gates gate_cells)
        (read netlist)
    in
    let placement = Mbr_export.Def.of_def design (read def) in
    let options =
      options_of ~mode ~no_skew ~no_incomplete ~bound ~decompose ~jobs ~corners
        ~recover
    in
    Printf.printf "loaded %s: %d cells, %d registers\n%!"
      (Mbr_netlist.Design.name design)
      (Mbr_netlist.Design.n_cells design)
      (List.length (Mbr_netlist.Design.registers design));
    let sta_config =
      { Mbr_sta.Engine.default_config with Mbr_sta.Engine.clock_period = period }
    in
    let r = Flow.run ~options ~design ~placement ~library ~sta_config () in
    Format.printf "before: %a@." Metrics.pp_row r.Flow.before;
    Format.printf "after : %a@." Metrics.pp_row r.Flow.after;
    let write path content =
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    let base =
      Filename.concat outdir (Mbr_netlist.Design.name design ^ "_composed")
    in
    write (base ^ ".v") (Mbr_export.Verilog.to_verilog design);
    write (base ^ ".def") (Mbr_export.Def.to_def placement)
  in
  let netlist_arg =
    Arg.(required & opt (some string) None & info [ "netlist" ] ~docv:"FILE.v"
           ~doc:"Structural Verilog netlist (see mbrc export).")
  in
  let def_arg =
    Arg.(required & opt (some string) None & info [ "def" ] ~docv:"FILE.def"
           ~doc:"DEF placement.")
  in
  let lib_arg =
    Arg.(required & opt (some string) None & info [ "lib" ] ~docv:"FILE.lib"
           ~doc:"Liberty register library.")
  in
  let dir_arg =
    Arg.(value & opt string "." & info [ "o"; "outdir" ] ~docv:"DIR"
           ~doc:"Where to write the composed netlist/placement.")
  in
  let period_arg =
    Arg.(value & opt float 800.0 & info [ "period" ] ~docv:"PS"
           ~doc:"Clock period for timing analysis (ps).")
  in
  Cmd.v
    (Cmd.info "compose"
       ~doc:"Run MBR composition on a Verilog+DEF+Liberty design from disk.")
    Term.(const run $ telemetry_term $ netlist_arg $ def_arg $ lib_arg
          $ dir_arg $ period_arg $ mode_arg $ no_skew_arg $ no_incomplete_arg
          $ decompose_arg $ bound_arg $ jobs_arg $ corners_arg $ recover_arg)

let example_cmd =
  let run tele jobs =
    with_telemetry tele @@ fun () ->
    let module PE = Mbr_core.Paper_example in
    (match jobs with
    | Some _ ->
      print_endline "(-j noted but irrelevant here: the worked example is 6 registers)"
    | None -> ());
    let t = PE.build () in
    print_endline "paper worked example (Figs. 1-3); see also examples/quickstart.exe";
    List.iter
      (fun names ->
        Printf.printf "  w(%s) = %.3f\n" (String.concat "" names)
          (PE.weight_of t names))
      [ [ "A"; "B" ]; [ "B"; "C" ]; [ "A"; "B"; "D" ]; [ "A"; "B"; "C" ];
        [ "A"; "B"; "C"; "D" ]; [ "A"; "E" ]; [ "A"; "C"; "E" ] ];
    let groups, cost = PE.solve ~allow_incomplete:false t in
    Printf.printf "ILP (complete only): %d registers, cost %.4f\n"
      (List.length groups) cost
  in
  Cmd.v (Cmd.info "example" ~doc:"The paper's worked example (Figs. 1-3).")
    Term.(const run $ telemetry_term $ jobs_arg)

(* ---- the ECO service (DESIGN.md §14) ---- *)

let socket_arg =
  Arg.(value & opt string Mbr_service.Server.default_config.Mbr_service.Server.socket_path
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let run tele socket workers queue_limit alloc_jobs =
    with_telemetry tele @@ fun () ->
    (* the daemon's query-metrics verb is only useful live *)
    Mbr_obs.Metrics.enable ();
    Printf.eprintf "mbrd: serving on %s\n%!" socket;
    Mbr_service.Server.run
      {
        Mbr_service.Server.default_config with
        Mbr_service.Server.socket_path = socket;
        workers;
        queue_limit;
        alloc_jobs;
      };
    Printf.eprintf "mbrd: drained, exiting\n%!"
  in
  let workers_arg =
    Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
           ~doc:"Executor worker domains (0 = auto-detect cores).")
  in
  let queue_limit_arg =
    Arg.(value & opt int Mbr_service.Server.default_config.Mbr_service.Server.queue_limit
         & info [ "queue-limit" ] ~docv:"N"
             ~doc:"Pending requests per session before the daemon answers \
                   overloaded (explicit backpressure).")
  in
  let alloc_jobs_arg =
    Arg.(value & opt int 1 & info [ "alloc-jobs" ] ~docv:"N"
           ~doc:"Nested allocate-stage fan-out inside each recompose \
                 (default 1: concurrency comes from serving many sessions).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the mbrd ECO daemon in the foreground: many named flow \
             sessions behind a line-delimited JSON protocol on a Unix socket. \
             Stops on the shutdown verb.")
    Term.(const run $ telemetry_term $ socket_arg $ workers_arg
          $ queue_limit_arg $ alloc_jobs_arg)

let client_cmd =
  let module C = Mbr_service.Client in
  let module Pr = Mbr_service.Protocol in
  let run socket verb session profile scale seed frac timeout_s path corners
      recover progress cursor flight =
    let verb =
      match Pr.verb_of_string verb with
      | Some v -> v
      | None ->
        failwith
          (Printf.sprintf "unknown verb %S (%s)" verb
             (String.concat ", " (List.map Pr.verb_to_string Pr.all_verbs)))
    in
    let c = C.connect socket in
    Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
    (* progress events go to stderr as raw JSON lines, one per stage, so
       the pretty response on stdout stays machine-readable *)
    let on_event =
      if progress then
        Some
          (fun ev ->
            Printf.eprintf "%s\n%!" (Mbr_obs.Json.to_string (Pr.progress_to_json ev)))
      else None
    in
    match
      C.call c verb ?on_event ~params:(fun r ->
          { r with Pr.session; profile; scale; seed; frac; timeout_s; path;
            corners; recover; cursor; flight;
            progress = (if progress then Some true else None) })
    with
    | Ok data -> print_string (Mbr_obs.Json.to_string_pretty data)
    | Error { Pr.code; message } ->
      Printf.eprintf "error %s: %s\n" (Pr.error_code_to_string code) message;
      exit 1
  in
  let verb_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"VERB"
           ~doc:"load | perturb | recompose | set-corners | query-metrics \
                 | export-trace | telemetry | shutdown")
  in
  let session_arg =
    Arg.(value & opt (some string) None & info [ "session" ] ~docv:"NAME"
           ~doc:"Target session (load/perturb/recompose).")
  in
  let frac_arg =
    Arg.(value & opt (some float) None & info [ "frac" ] ~docv:"F"
           ~doc:"perturb: scale the default ECO fractions.")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"recompose: cancellation deadline; past it the request is \
                 answered cancelled and the session stays usable.")
  in
  let path_arg =
    Arg.(value & opt (some string) None & info [ "path" ] ~docv:"FILE"
           ~doc:"export-trace: output file on the daemon's side.")
  in
  let opt_profile_arg =
    Arg.(value & opt (some string) None & info [ "p"; "profile" ] ~docv:"NAME"
           ~doc:"load: design profile (tiny, d1..d5).")
  in
  let opt_scale_arg =
    Arg.(value & opt (some float) None & info [ "scale" ] ~docv:"F"
           ~doc:"load: scale the register count.")
  in
  let opt_corners_arg =
    Arg.(value & opt (some string) None & info [ "corners" ] ~docv:"SPEC"
           ~doc:"load / set-corners: comma-separated corner set (built-in \
                 names or name:cell:wire:setup quadruples).")
  in
  let opt_recover_arg =
    Arg.(value & opt (some int) None & info [ "recover" ] ~docv:"N"
           ~doc:"recompose: recovery-round budget for this pass.")
  in
  let progress_arg =
    Arg.(value & flag & info [ "progress" ]
           ~doc:"recompose: stream per-stage progress events and print each \
                 as a JSON line on stderr as it arrives.")
  in
  let cursor_arg =
    Arg.(value & opt (some int) None & info [ "cursor" ] ~docv:"N"
           ~doc:"telemetry: ask for the metrics delta since this cursor \
                 (from a previous telemetry response).")
  in
  let flight_arg =
    Arg.(value & flag & info [ "flight" ]
           ~doc:"telemetry: include the flight-recorder dump (last N \
                 answered request digests).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running mbrd daemon and print the JSON \
             answer (exit 1 with the error on stderr otherwise).")
    Term.(const run $ socket_arg $ verb_arg $ session_arg $ opt_profile_arg
          $ opt_scale_arg $ seed_arg $ frac_arg $ timeout_arg $ path_arg
          $ opt_corners_arg $ opt_recover_arg $ progress_arg $ cursor_arg
          $ Term.(const (fun b -> if b then Some true else None) $ flight_arg))

(* `mbrc top` — a terminal dashboard over the telemetry verb. Each
   frame polls with the previous frame's cursor, so per-verb request
   rates and latency quantiles come from the *delta* histograms (what
   happened during the last interval), while gauges (heap, RSS, queue
   depth) are absolute. *)
let top_cmd =
  let module C = Mbr_service.Client in
  let module Pr = Mbr_service.Protocol in
  let module M = Mbr_obs.Metrics in
  let module J = Mbr_obs.Json in
  let module T = Mbr_util.Texttab in
  let render_frame ~frame ~mode ~interval data snap =
    let buf = Buffer.create 2048 in
    let gauge name =
      List.assoc_opt name snap.M.gauges |> Option.value ~default:0.0
    in
    let queue_depth =
      Option.bind (J.member "queue_depth" data) J.to_int
      |> Option.value ~default:0
    in
    let sessions =
      Option.bind (J.member "sessions" data) J.to_list
      |> Option.value ~default:[]
    in
    Printf.bprintf buf
      "mbrd top — frame %d (%s)  sessions %d  exec queue %d  heap %.1f MB  \
       rss %.1f MB\n"
      frame mode (List.length sessions) queue_depth (gauge "gc.heap_mb")
      (gauge "rss.mb");
    (* per-verb traffic, from the labeled svc.latency_s family *)
    let verb_rows =
      List.filter_map
        (fun (key, h) ->
          let base, labels = M.split_series key in
          match (base, List.assoc_opt "verb" labels) with
          | "svc.latency_s", Some v when h.M.count > 0 -> Some (v, h)
          | _ -> None)
        snap.M.histograms
    in
    if verb_rows <> [] then begin
      let tab =
        T.create ~headers:[ "verb"; "req"; "req/s"; "p50 ms"; "p99 ms" ]
      in
      List.iter
        (fun (v, h) ->
          T.add_row tab
            [
              v;
              string_of_int h.M.count;
              (if mode = "delta" then
                 T.fmt_float ~dec:1 (float_of_int h.M.count /. interval)
               else "-");
              T.fmt_float ~dec:2 (1000.0 *. M.quantile h 0.5);
              T.fmt_float ~dec:2 (1000.0 *. M.quantile h 0.99);
            ])
        (List.sort compare verb_rows);
      Buffer.add_string buf (T.render tab)
    end
    else
      Buffer.add_string buf
        (if mode = "delta" then "(no requests this interval)\n"
         else "(no requests yet)\n");
    (* per-session status, including the in-flight recompose heartbeat *)
    if sessions <> [] then begin
      let tab =
        T.create
          ~headers:
            [ "session"; "state"; "recomposes"; "served"; "pending"; "now" ]
      in
      List.iter
        (fun s ->
          let str k =
            Option.bind (J.member k s) J.to_str |> Option.value ~default:"?"
          in
          let int k =
            Option.bind (J.member k s) J.to_int |> Option.value ~default:0
          in
          let now =
            match
              Option.map Pr.progress_of_json (J.member "progress" s)
            with
            | Some (Ok ev) ->
              Printf.sprintf "%s r%d %d/%d%s" ev.Pr.pe_stage ev.Pr.pe_round
                ev.Pr.pe_resolved ev.Pr.pe_total
                (match ev.Pr.pe_wns with
                | Some w -> Printf.sprintf " wns %.0f" w
                | None -> "")
            | _ -> "idle"
          in
          T.add_row tab
            [
              str "name";
              (match Option.bind (J.member "loaded" s) J.to_bool with
              | Some true -> "ready"
              | _ -> "loading");
              string_of_int (int "recomposes");
              string_of_int (int "served");
              string_of_int (int "pending");
              now;
            ])
        sessions;
      Buffer.add_string buf (T.render tab)
    end;
    Buffer.contents buf
  in
  let run socket interval count =
    if not (Float.is_finite interval && interval > 0.0) then
      failwith "--interval must be positive";
    let c = C.connect socket in
    Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
    let clear = Unix.isatty Unix.stdout in
    let cursor = ref None in
    let frame = ref 0 in
    while count <= 0 || !frame < count do
      if !frame > 0 then Unix.sleepf interval;
      incr frame;
      match C.telemetry c ?cursor:!cursor () with
      | Error { Pr.code; message } ->
        Printf.eprintf "error %s: %s\n" (Pr.error_code_to_string code) message;
        exit 1
      | Ok data ->
        cursor := Option.bind (J.member "cursor" data) J.to_int;
        let mode =
          Option.bind (J.member "mode" data) J.to_str
          |> Option.value ~default:"full"
        in
        let snap =
          match
            Option.map M.snapshot_of_json (J.member "metrics" data)
          with
          | Some (Ok s) -> s
          | _ -> { M.counters = []; gauges = []; histograms = [] }
        in
        if clear then print_string "\027[2J\027[H";
        print_string (render_frame ~frame:!frame ~mode ~interval data snap);
        flush stdout
    done
  in
  let interval_arg =
    Arg.(value & opt float 2.0 & info [ "n"; "interval" ] ~docv:"SECONDS"
           ~doc:"Refresh interval between telemetry polls.")
  in
  let count_arg =
    Arg.(value & opt int 0 & info [ "count" ] ~docv:"N"
           ~doc:"Stop after N frames (0 = run until interrupted).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live terminal dashboard over a running mbrd: per-verb request \
             rates and latency quantiles (from telemetry deltas), executor \
             queue depth, process vitals, and per-session status including \
             in-flight recompose progress.")
    Term.(const run $ socket_arg $ interval_arg $ count_arg)

let () =
  Mbr_util.Runtime.tune ();
  let doc = "timing-driven incremental multi-bit register composition (DAC'17)" in
  let info = Cmd.info "mbrc" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
    [ run_cmd; eco_cmd; table1_cmd; fig5_cmd; fig6_cmd; ablations_cmd;
      export_cmd; compose_cmd; example_cmd; serve_cmd; client_cmd; top_cmd ]))
