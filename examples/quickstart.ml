(* Quickstart: the paper's worked example (Figs. 1-3), end to end.

   Six registers A1..F2 with the Fig. 2 placement are analysed: the
   compatibility graph's maximal cliques are enumerated, every candidate
   MBR is weighted with the placement-aware heuristic of §3.2, and the
   ILP of §3.1 picks the final grouping — once without and once with
   incomplete MBRs, reproducing both outcomes the paper discusses.

   Run with: dune exec examples/quickstart.exe *)

module PE = Mbr_core.Paper_example
module Candidate = Mbr_core.Candidate
module Compat = Mbr_core.Compat
module Design = Mbr_netlist.Design
module Bk = Mbr_graph.Bron_kerbosch
module Texttab = Mbr_util.Texttab

let () =
  let t = PE.build () in
  print_endline "=== Fig. 1: compatibility graph ===";
  Printf.printf "registers: %s (widths 1,1,1,1,4,2)\n"
    (String.concat " " (Array.to_list t.PE.names));
  let cliques = Bk.maximal_cliques (Mbr_graph.Csr.to_ugraph t.PE.graph.Compat.adj) in
  List.iter
    (fun c ->
      Printf.printf "maximal clique: {%s}\n"
        (String.concat "," (List.map (fun i -> t.PE.names.(i)) c)))
    cliques;

  print_endline "\n=== Fig. 3: candidate MBRs and their weights ===";
  let tab = Texttab.create ~headers:[ "candidate"; "bits"; "target"; "weight" ] in
  let cands = PE.candidates ~allow_incomplete:true ~incomplete_area_overhead:0.6 t in
  let name_of (c : Candidate.t) =
    String.concat "" (List.map (fun i -> t.PE.names.(i)) c.Candidate.members)
  in
  let sorted =
    List.sort
      (fun a b ->
        compare
          (a.Candidate.bits, name_of a)
          (b.Candidate.bits, name_of b))
      cands
  in
  List.iter
    (fun (c : Candidate.t) ->
      Texttab.add_row tab
        [
          name_of c;
          string_of_int c.Candidate.bits;
          (if c.Candidate.incomplete then
             Printf.sprintf "%d (incomplete)" c.Candidate.target_bits
           else string_of_int c.Candidate.target_bits);
          Texttab.fmt_float ~dec:3 c.Candidate.weight;
        ])
    sorted;
  Texttab.print tab;

  let show label groups cost =
    Printf.printf "\n%s: %d final registers, ILP cost %.4f\n" label
      (List.length groups) cost;
    List.iter
      (fun cids ->
        let names =
          List.map (fun cid -> (Design.cell t.PE.design cid).Mbr_netlist.Types.c_name) cids
        in
        Printf.printf "  {%s}\n" (String.concat "," names))
      groups
  in
  print_endline "\n=== ILP selection (§3.1) ===";
  let groups, cost = PE.solve ~allow_incomplete:false t in
  show "without incomplete MBRs (paper: {B,F} + {A,C,D} + E)" groups cost;
  let groups2, cost2 = PE.solve ~allow_incomplete:true ~incomplete_area_overhead:0.6 t in
  show "with incomplete MBRs (same count, different grouping)" groups2 cost2;
  print_endline "\nBoth runs end with three registers, as in the paper."
