module J = Mbr_obs.Json
module P = Protocol

type t = {
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
  mutable closed : bool;
}

exception Protocol_violation of string

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  {
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    next_id = 0;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* ic and oc share the fd; closing one channel closes it *)
    try close_in t.ic with Sys_error _ -> ()
  end

let call t ?(params = Fun.id) ?on_event verb =
  let id = t.next_id in
  t.next_id <- id + 1;
  let req = params (P.request ~id verb) in
  output_string t.oc (J.to_string (P.request_to_json { req with P.id }));
  output_char t.oc '\n';
  flush t.oc;
  (* drain until our id: a synchronous client has one request in
     flight, so anything else is a peer bug worth surfacing. Event
     lines (out-of-band progress) are routed to [on_event] — or
     silently dropped, so a caller may request streaming and ignore
     it — and never terminate the wait. *)
  let rec await () =
    let line = input_line t.ic in
    match J.of_string_result line with
    | Error e ->
      raise (Protocol_violation ("unparseable response: " ^ J.error_to_string e))
    | Ok j ->
      if P.is_event j then begin
        (match (on_event, P.progress_of_json j) with
        | Some f, Ok ev when ev.P.pe_id = id -> f ev
        | _ -> ());
        await ()
      end
      else
        match P.response_of_json j with
        | Error m -> raise (Protocol_violation m)
        | Ok resp ->
          if resp.P.id = id || resp.P.id = -1 then resp.P.result else await ()
  in
  await ()

let load t ~session ?profile ?scale ?seed ?corners () =
  call t P.Load ~params:(fun r ->
      { r with P.session = Some session; profile; scale; seed; corners })

let perturb t ~session ?seed ?frac () =
  call t P.Perturb ~params:(fun r ->
      { r with P.session = Some session; seed; frac })

let recompose t ~session ?timeout_s ?recover ?on_progress () =
  call t P.Recompose ?on_event:on_progress ~params:(fun r ->
      {
        r with
        P.session = Some session;
        timeout_s;
        recover;
        progress = (if on_progress = None then None else Some true);
      })

let set_corners t ~session ~corners () =
  call t P.Set_corners ~params:(fun r ->
      { r with P.session = Some session; corners = Some corners })

let query_metrics t = call t P.Query_metrics

let telemetry t ?cursor ?flight () =
  call t P.Telemetry ~params:(fun r -> { r with P.cursor; flight })

let export_trace t ~path = call t P.Export_trace ~params:(fun r -> { r with P.path = Some path })

let shutdown t = call t P.Shutdown
