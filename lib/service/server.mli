(** The [mbrd] daemon: many named {!Mbr_core.Flow.Session}s behind one
    Unix-domain socket.

    Architecture (DESIGN.md §14):

    - one {b accept loop} on the calling thread, spawning a reader
      thread per connection;
    - {b reader threads} parse lines, answer the cheap global verbs
      (query-metrics, export-trace, shutdown) inline, and enqueue
      session verbs (load, perturb, recompose) onto the target
      session's bounded queue — a full queue is answered [overloaded]
      immediately (explicit backpressure, the client retries);
    - a shared {!Mbr_util.Pool.Executor} of worker domains drains the
      session queues, {b one in-flight request per session} (the
      single-writer discipline: the worker holds the
      {!Mbr_core.Flow.Session} via [acquire]/[release] for the
      request's duration, and the session moves freely between worker
      domains across requests);
    - a recompose with a [timeout_s] runs under a
      {!Mbr_util.Cancel} token: past the deadline the solvers wind
      down to their incumbents and the request is answered
      [cancelled] — the session stays consistent and serves the next
      request.

    Observability: every request is a ["svc.<verb>"] trace span on the
    domain that served it, and its receipt-to-response latency feeds
    the [svc.latency.<verb>] histogram ([svc.requests],
    [svc.errors], [svc.overloaded], [svc.cancelled] count traffic).
    With [session_metrics] on (the default), latency also lands in the
    labeled [svc.latency_s{verb=...}] family, each session gets its
    own labeled series ([svc.session.requests{session=...}],
    [flow.session.blocks_resolved{session=...}],
    [svc.session.wns{session=...,corner=...}], ...), and the
    [telemetry] verb serves cursor-stamped snapshots/deltas plus
    per-session status (including the in-flight recompose's latest
    progress heartbeat). A recompose sent with [progress: true]
    streams out-of-band progress event lines on its connection,
    strictly before the final response. Every answered request also
    lands in a bounded in-memory {b flight recorder} (last
    [flight_capacity] request digests), dumped via
    [telemetry {flight: true}] or — when [handle_sigusr2] — to stderr
    on SIGUSR2.

    Shutdown (the verb) stops accepting, drains every queued request,
    joins the workers, stops the sampler (final tick included, so a
    [prom_file] reflects the drained state) and removes the socket
    file. *)

type config = {
  socket_path : string;
  workers : int;  (** executor domains; [<= 0] = {!Mbr_util.Pool.recommended_jobs} *)
  queue_limit : int;  (** pending requests per session before [overloaded] *)
  alloc_jobs : int;
      (** [jobs] inside each recompose's allocate stage. Default 1:
          with many concurrent sessions the executor already uses the
          machine; nested fan-out only helps a lone giant session. *)
  session_metrics : bool;
      (** register per-session labeled series and per-verb labeled
          latency (default [true]; turn off to bound registry growth
          under hostile session churn) *)
  sample_period_s : float;
      (** {!Mbr_obs.Sampler} period; [<= 0] disables the sampler
          unless [prom_file] forces it (at 1 s) *)
  prom_file : string option;
      (** atomically rewrite this file in Prometheus text format every
          sampler tick *)
  flight_capacity : int;  (** flight-recorder ring size; [0] disables *)
  handle_sigusr2 : bool;
      (** install a SIGUSR2 handler that dumps the flight recorder to
          stderr (opt-in: embedders may own their signals) *)
}

val default_config : config
(** [{socket_path = "mbrd.sock"; workers = 0; queue_limit = 32;
    alloc_jobs = 1; session_metrics = true; sample_period_s = 0.0;
    prom_file = None; flight_capacity = 256;
    handle_sigusr2 = false}] *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Bind the socket (replacing a stale file), call [on_ready] once
    accepting (test/launcher synchronization), and serve until a
    [shutdown] request arrives. Returns after the full drain: accepted
    requests are answered, worker domains joined, socket unlinked.
    Raises [Unix.Unix_error] if the socket cannot be bound. *)
