module J = Mbr_obs.Json
module P = Protocol
module Flow = Mbr_core.Flow
module G = Mbr_designgen.Generate
module Prof = Mbr_designgen.Profile
module Eco = Mbr_designgen.Eco
module Executor = Mbr_util.Pool.Executor

type config = {
  socket_path : string;
  workers : int;
  queue_limit : int;
  alloc_jobs : int;
  session_metrics : bool;
  sample_period_s : float;
  prom_file : string option;
  flight_capacity : int;
  handle_sigusr2 : bool;
}

let default_config =
  {
    socket_path = "mbrd.sock";
    workers = 0;
    queue_limit = 32;
    alloc_jobs = 1;
    session_metrics = true;
    sample_period_s = 0.0;
    prom_file = None;
    flight_capacity = 256;
    handle_sigusr2 = false;
  }

(* ---- metrics (pre-registered: the registry mutex never sits on the
   request path, and a metrics query sees every series from the start) ---- *)

let m_requests = Mbr_obs.Metrics.counter "svc.requests"

let m_errors = Mbr_obs.Metrics.counter "svc.errors"

let m_overloaded = Mbr_obs.Metrics.counter "svc.overloaded"

let m_cancelled = Mbr_obs.Metrics.counter "svc.cancelled"

let latency_histograms =
  List.map
    (fun v ->
      (v, Mbr_obs.Metrics.histogram ("svc.latency." ^ P.verb_to_string v)))
    P.all_verbs

let latency_histogram verb = List.assq verb latency_histograms

(* the labeled twins: one family, one series per verb — what `mbrc
   top` and the Prometheus side consume (the dotted per-verb names
   above predate labels and stay for compatibility) *)
let labeled_latency_histograms =
  List.map
    (fun v ->
      ( v,
        Mbr_obs.Metrics.histogram
          ~labels:[ ("verb", P.verb_to_string v) ]
          "svc.latency_s" ))
    P.all_verbs

let labeled_latency verb = List.assq verb labeled_latency_histograms

let g_queue_depth = Mbr_obs.Metrics.gauge "svc.exec.queue_depth"

let g_sessions = Mbr_obs.Metrics.gauge "svc.sessions"

(* ---- connections ---- *)

type conn = {
  ic : in_channel;
  oc : out_channel;
  wlock : Mutex.t;  (** responses from several worker domains interleave *)
  mutable alive : bool;
}

(* A dead peer must not take the daemon down: write failures just mark
   the connection, and the work that produced the response is already
   done (and has updated the session) either way. *)
let send_json conn j =
  Mutex.lock conn.wlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.wlock) @@ fun () ->
  if conn.alive then
    try
      output_string conn.oc (J.to_string j);
      output_char conn.oc '\n';
      flush conn.oc
    with Sys_error _ | Unix.Unix_error _ -> conn.alive <- false

let send conn resp = send_json conn (P.response_to_json resp)

(* ---- sessions ---- *)

type session_state =
  | Loading  (** name reserved; the load request is still in the queue *)
  | Ready of { gen : G.t; flow : Flow.Session.t }

(* Per-session labeled series, registered once at session creation so
   the request path never touches the registry mutex. *)
type session_handles = {
  h_requests : Mbr_obs.Metrics.counter;
  h_errors : Mbr_obs.Metrics.counter;
  h_resolved : Mbr_obs.Metrics.counter;
  h_reused : Mbr_obs.Metrics.counter;
  h_recover_rounds : Mbr_obs.Metrics.counter;
  h_recompose_s : Mbr_obs.Metrics.histogram;
  h_pending : Mbr_obs.Metrics.gauge;
  h_served : Mbr_obs.Metrics.gauge;
}

let session_handles name =
  let labels = [ ("session", name) ] in
  {
    h_requests = Mbr_obs.Metrics.counter ~labels "svc.session.requests";
    h_errors = Mbr_obs.Metrics.counter ~labels "svc.session.errors";
    h_resolved = Mbr_obs.Metrics.counter ~labels "flow.session.blocks_resolved";
    h_reused = Mbr_obs.Metrics.counter ~labels "flow.session.blocks_reused";
    h_recover_rounds =
      Mbr_obs.Metrics.counter ~labels "flow.session.recover_rounds";
    h_recompose_s = Mbr_obs.Metrics.histogram ~labels "flow.session.recompose_s";
    h_pending = Mbr_obs.Metrics.gauge ~labels "svc.session.pending";
    h_served = Mbr_obs.Metrics.gauge ~labels "svc.session.served";
  }

type session = {
  sname : string;
  mutable state : session_state;
  pending : pending Queue.t;  (** guarded by the server lock *)
  mutable running : bool;  (** an executor job is draining this queue *)
  mutable served : int;
  handles : session_handles option;  (** [None] when session metrics are off *)
  mutable last_progress : P.progress_event option;
      (** latest heartbeat of an in-flight recompose; [None] when idle *)
}

and pending = { preq : P.request; pconn : conn; t_recv : float }

(* One answered request, as the flight recorder remembers it. *)
type flight = {
  fl_verb : string;
  fl_session : string;  (** [""] for global verbs *)
  fl_recv_s : float;  (** monotonic receipt time *)
  fl_latency_s : float;
  fl_outcome : string;  (** ["ok"] or the error code *)
  fl_message : string;  (** error message, truncated *)
}

type t = {
  config : config;
  exec : Executor.t;
  lock : Mutex.t;
  sessions : (string, session) Hashtbl.t;
  mutable stopping : bool;
  (* flight recorder: its own lock, never nested with [lock], so the
     SIGUSR2 dump can try-lock it without deadlock risk *)
  flight_lock : Mutex.t;
  flight : flight option array;
  mutable flight_next : int;  (** total recorded; slot = next mod cap *)
  (* telemetry cursors: recent snapshots the delta protocol can diff
     against (guarded by [lock]) *)
  mutable telem_next : int;
  mutable telem_snaps : (int * Mbr_obs.Metrics.snapshot) list;
}

(* how many snapshots the cursor protocol remembers: enough for a few
   concurrent pollers, small enough to never matter for memory *)
let telem_history = 8

let record_flight t fl =
  let cap = Array.length t.flight in
  if cap > 0 then begin
    Mutex.lock t.flight_lock;
    t.flight.(t.flight_next mod cap) <- Some fl;
    t.flight_next <- t.flight_next + 1;
    Mutex.unlock t.flight_lock
  end

(* Oldest-to-newest dump; [locked] callers already hold the lock. *)
let flight_list t =
  let cap = Array.length t.flight in
  let n = min t.flight_next cap in
  List.filter_map
    (fun i -> t.flight.((t.flight_next - n + i) mod cap))
    (List.init n Fun.id)

let flight_json t =
  Mutex.lock t.flight_lock;
  let l = flight_list t in
  Mutex.unlock t.flight_lock;
  J.Arr
    (List.map
       (fun fl ->
         J.Obj
           [
             ("verb", J.Str fl.fl_verb);
             ("session", J.Str fl.fl_session);
             ("recv_s", J.Num fl.fl_recv_s);
             ("latency_s", J.Num fl.fl_latency_s);
             ("outcome", J.Str fl.fl_outcome);
             ("message", J.Str fl.fl_message);
           ])
       l)

(* The SIGUSR2 path: handlers run at safe points but may interrupt a
   domain that holds the flight lock — try-lock and give up rather
   than deadlock. *)
let dump_flight_stderr t =
  if Mutex.try_lock t.flight_lock then begin
    let l = flight_list t in
    Mutex.unlock t.flight_lock;
    Printf.eprintf "mbrd flight recorder (%d of %d recorded):\n"
      (List.length l) t.flight_next;
    List.iter
      (fun fl ->
        Printf.eprintf "  %-12s %-16s recv=%.3fs lat=%.4fs %s%s\n" fl.fl_verb
          (if fl.fl_session = "" then "-" else fl.fl_session)
          fl.fl_recv_s fl.fl_latency_s fl.fl_outcome
          (if fl.fl_message = "" then "" else " " ^ fl.fl_message))
      l;
    flush stderr
  end
  else prerr_endline "mbrd flight recorder: busy, try again"

(* ---- request execution (on executor worker domains) ---- *)

let profile_of req =
  let seed = Option.value req.P.seed ~default:1 in
  let base =
    match Option.value req.P.profile ~default:"tiny" with
    | "tiny" -> Prof.tiny ~seed
    | "flat" -> Prof.flat ~seed
    | "d1" -> { Prof.d1 with Prof.seed }
    | "d2" -> { Prof.d2 with Prof.seed }
    | "d3" -> { Prof.d3 with Prof.seed }
    | "d4" -> { Prof.d4 with Prof.seed }
    | "d5" -> { Prof.d5 with Prof.seed }
    | other -> P.reject P.Bad_request "unknown profile %S" other
  in
  match req.P.scale with
  | None -> base
  | Some f when f > 0.0 && Float.is_finite f -> Prof.scaled base f
  | Some _ -> P.reject P.Bad_request "\"scale\" must be a positive number"

let eco_config frac =
  if not (Float.is_finite frac && frac >= 0.0) then
    P.reject P.Bad_request "\"frac\" must be a non-negative number";
  let d = Eco.default_config in
  {
    Eco.move_frac = d.Eco.move_frac *. frac;
    move_sigma = d.Eco.move_sigma;
    retype_frac = d.Eco.retype_frac *. frac;
    remove_frac = d.Eco.remove_frac *. frac;
    add_frac = d.Eco.add_frac *. frac;
  }

let corners_payload (m : Mbr_core.Metrics.t) =
  J.Arr
    (List.map
       (fun (name, wns, tns) ->
         J.Obj [ ("name", J.Str name); ("wns", J.Num wns); ("tns", J.Num tns) ])
       m.Mbr_core.Metrics.corners)

let recompose_payload (r : Flow.result) round =
  J.Obj
    [
      ("round", J.Num (float_of_int round));
      ("runtime_s", J.Num r.Flow.runtime_s);
      ("wns", J.Num r.Flow.after.Mbr_core.Metrics.wns);
      ("tns", J.Num r.Flow.after.Mbr_core.Metrics.tns);
      ("corners", corners_payload r.Flow.after);
      ("total_regs", J.Num (float_of_int r.Flow.after.Mbr_core.Metrics.total_regs));
      ("n_merges", J.Num (float_of_int r.Flow.n_merges));
      ("n_regs_merged", J.Num (float_of_int r.Flow.n_regs_merged));
      ("ilp_cost", J.Num r.Flow.ilp_cost);
      ("all_optimal", J.Bool r.Flow.all_optimal);
      ("blocks_resolved", J.Num (float_of_int r.Flow.eco_blocks_resolved));
      ("blocks_reused", J.Num (float_of_int r.Flow.eco_blocks_reused));
      ("recover_rounds", J.Num (float_of_int r.Flow.recover_rounds));
      ("recover_splits", J.Num (float_of_int r.Flow.recover_splits));
      ("cancelled", J.Bool r.Flow.cancelled);
    ]

let parse_corners spec =
  match Mbr_sta.Corner.parse_set spec with
  | Ok cs -> cs
  | Error m -> P.reject P.Bad_request "bad \"corners\": %s" m

(* One session request, on whichever worker domain picked it up. The
   session is held (acquire/release) for exactly the mutating part, so
   the ownership invariant is machine-checked on every request — a
   routing bug that let two domains at one session would trip
   [acquire], not corrupt state. *)
let exec_pending t sess p =
  let req = p.preq in
  try
    Mbr_obs.Trace.with_span ~name:("svc." ^ P.verb_to_string req.P.verb)
      ~args:[ ("session", Mbr_obs.Trace.Str sess.sname) ]
    @@ fun () ->
    match (req.P.verb, sess.state) with
    | P.Load, Loading ->
      let gen = G.generate (profile_of req) in
      (* explicit corner spec wins; otherwise the profile's derate
         spread decides (single typical corner when the spread is 0) *)
      let corners =
        match req.P.corners with
        | Some spec -> parse_corners spec
        | None -> gen.G.corners
      in
      let options =
        {
          Flow.default_options with
          Flow.jobs = Some (max 1 t.config.alloc_jobs);
          Flow.corners = corners;
        }
      in
      let flow =
        Flow.Session.create ~options ~design:gen.G.design
          ~placement:gen.G.placement ~library:gen.G.library
          ~sta_config:gen.G.sta_config ()
      in
      sess.state <- Ready { gen; flow };
      P.ok req.P.id
        (J.Obj
           [
             ("session", J.Str sess.sname);
             ( "registers",
               J.Num
                 (float_of_int
                    (List.length (Mbr_netlist.Design.registers gen.G.design)))
             );
             ("profile", J.Str gen.G.profile.Prof.name);
             ("corners", J.Str (Mbr_sta.Corner.set_to_string corners));
           ])
    | P.Load, Ready _ ->
      (* unreachable: load is only ever queued on a fresh entry *)
      P.fail req.P.id P.Session_exists sess.sname
    | (P.Perturb | P.Recompose | P.Set_corners), Loading ->
      (* only reachable if this session's load failed and teardown
         raced new requests in; answered like the load never happened *)
      P.fail req.P.id P.Unknown_session sess.sname
    | P.Perturb, Ready { gen; flow } ->
      Flow.Session.acquire flow;
      Fun.protect ~finally:(fun () -> Flow.Session.release flow) @@ fun () ->
      let cfg = eco_config (Option.value req.P.frac ~default:1.0) in
      let rng = Mbr_util.Rng.create (Option.value req.P.seed ~default:0) in
      let stats = Eco.perturb ~config:cfg rng gen in
      P.ok req.P.id
        (J.Obj
           [
             ("moved", J.Num (float_of_int stats.Eco.moved));
             ("retyped", J.Num (float_of_int stats.Eco.retyped));
             ("removed", J.Num (float_of_int stats.Eco.removed));
             ("added", J.Num (float_of_int stats.Eco.added));
           ])
    | P.Recompose, Ready { flow; _ } ->
      Flow.Session.acquire flow;
      Fun.protect ~finally:(fun () -> Flow.Session.release flow) @@ fun () ->
      let cancel =
        Option.map
          (fun dt ->
            if not (Float.is_finite dt && dt >= 0.0) then
              P.reject P.Bad_request "\"timeout_s\" must be non-negative";
            Mbr_util.Cancel.create ~timeout_s:dt ())
          req.P.timeout_s
      in
      let recover =
        Option.map
          (fun n ->
            if n < 0 then
              P.reject P.Bad_request "\"recover\" must be non-negative";
            n)
          req.P.recover
      in
      (* Progress heartbeats: always recorded on the session (so a
         telemetry poll sees the in-flight stage), streamed to the
         requesting connection only when asked. The stream terminates
         unconditionally — cancelled or failed recomposes still send
         their final response after the last event, and the callback
         itself cannot raise (send_json swallows write errors). *)
      let streaming = req.P.progress = Some true in
      let on_progress (pg : Flow.progress) =
        let ev =
          {
            P.pe_id = req.P.id;
            pe_stage = pg.Flow.pr_stage;
            pe_round = pg.Flow.pr_round;
            pe_resolved = pg.Flow.pr_blocks_resolved;
            pe_total = pg.Flow.pr_blocks_total;
            pe_wns =
              (if Float.is_nan pg.Flow.pr_wns then None
               else Some pg.Flow.pr_wns);
          }
        in
        sess.last_progress <- Some ev;
        if streaming then send_json p.pconn (P.progress_to_json ev)
      in
      let r =
        Fun.protect ~finally:(fun () -> sess.last_progress <- None)
        @@ fun () -> Flow.Session.recompose ?cancel ?recover ~on_progress flow
      in
      (match sess.handles with
      | Some h when t.config.session_metrics ->
        Mbr_obs.Metrics.incr ~by:r.Flow.eco_blocks_resolved h.h_resolved;
        Mbr_obs.Metrics.incr ~by:r.Flow.eco_blocks_reused h.h_reused;
        Mbr_obs.Metrics.incr ~by:r.Flow.recover_rounds h.h_recover_rounds;
        Mbr_obs.Metrics.observe h.h_recompose_s r.Flow.runtime_s;
        (* per-corner WNS, labeled session x corner *)
        List.iter
          (fun (cname, wns, _) ->
            Mbr_obs.Metrics.set
              (Mbr_obs.Metrics.gauge
                 ~labels:[ ("session", sess.sname); ("corner", cname) ]
                 "svc.session.wns")
              wns)
          r.Flow.after.Mbr_core.Metrics.corners
      | _ -> ());
      if r.Flow.cancelled then
        P.fail req.P.id P.Cancelled
          (Printf.sprintf
             "recompose exceeded its %gs deadline; session %S is consistent \
              and usable"
             (Option.value req.P.timeout_s ~default:0.0)
             sess.sname)
      else P.ok req.P.id (recompose_payload r (Flow.Session.recomposes flow))
    | P.Set_corners, Ready { flow; _ } ->
      Flow.Session.acquire flow;
      Fun.protect ~finally:(fun () -> Flow.Session.release flow) @@ fun () ->
      let cs =
        match req.P.corners with
        | None -> P.reject P.Bad_request "set-corners needs \"corners\""
        | Some spec -> parse_corners spec
      in
      Flow.Session.set_corners flow cs;
      P.ok req.P.id
        (J.Obj
           [
             ("session", J.Str sess.sname);
             ("corners", J.Str (Mbr_sta.Corner.set_to_string cs));
             ("n_corners", J.Num (float_of_int (Array.length cs)));
           ])
    | (P.Query_metrics | P.Export_trace | P.Telemetry | P.Shutdown), _ ->
      (* global verbs never reach a session queue *)
      assert false
  with
  | P.Reject e -> { P.id = req.P.id; result = Error e }
  | e -> P.fail req.P.id P.Internal (Printexc.to_string e)

let truncate_msg m =
  if String.length m <= 120 then m else String.sub m 0 117 ^ "..."

let account t ?sess verb t_recv result =
  let dt = Mbr_obs.Clock.now_s () -. t_recv in
  (match result with
  | Ok _ -> ()
  | Error { P.code; _ } ->
    Mbr_obs.Metrics.incr m_errors;
    (match code with
    | P.Overloaded -> Mbr_obs.Metrics.incr m_overloaded
    | P.Cancelled -> Mbr_obs.Metrics.incr m_cancelled
    | _ -> ()));
  Mbr_obs.Metrics.observe (latency_histogram verb) dt;
  if t.config.session_metrics then begin
    Mbr_obs.Metrics.observe (labeled_latency verb) dt;
    match Option.bind sess (fun s -> s.handles) with
    | Some h ->
      Mbr_obs.Metrics.incr h.h_requests;
      (match result with
      | Error _ -> Mbr_obs.Metrics.incr h.h_errors
      | Ok _ -> ())
    | None -> ()
  end;
  let outcome, message =
    match result with
    | Ok _ -> ("ok", "")
    | Error { P.code; message } ->
      (P.error_code_to_string code, truncate_msg message)
  in
  record_flight t
    {
      fl_verb = P.verb_to_string verb;
      fl_session = (match sess with Some s -> s.sname | None -> "");
      fl_recv_s = t_recv;
      fl_latency_s = dt;
      fl_outcome = outcome;
      fl_message = message;
    }

let answer t ?sess verb t_recv conn resp =
  send conn resp;
  account t ?sess verb t_recv resp.P.result

(* Drain one request, then resubmit: the executor's FIFO round-robins
   the sessions, so a deep queue on one session cannot starve the
   others. [running] guarantees at most one in-flight job per session —
   that, plus acquire/release inside, IS the serialization. *)
let rec pump t sess () =
  let next =
    Mutex.lock t.lock;
    let j = Queue.take_opt sess.pending in
    if j = None then sess.running <- false;
    Mutex.unlock t.lock;
    j
  in
  match next with
  | None -> ()
  | Some p ->
    let resp = exec_pending t sess p in
    sess.served <- sess.served + 1;
    answer t ~sess p.preq.P.verb p.t_recv p.pconn resp;
    (* a failed load tears the reservation down: the name frees up and
       anything already queued behind it is answered unknown-session *)
    let orphans =
      match (p.preq.P.verb, resp.P.result) with
      | P.Load, Error _ ->
        Mutex.lock t.lock;
        Hashtbl.remove t.sessions sess.sname;
        let q = Queue.fold (fun acc x -> x :: acc) [] sess.pending in
        Queue.clear sess.pending;
        sess.running <- false;
        Mutex.unlock t.lock;
        List.rev q
      | _ -> []
    in
    List.iter
      (fun o ->
        answer t ~sess o.preq.P.verb o.t_recv o.pconn
          (P.fail o.preq.P.id P.Unknown_session sess.sname))
      orphans;
    if orphans = [] then
      try Executor.submit t.exec (pump t sess)
      with Invalid_argument _ ->
        (* executor already shut down: finish the drain here *)
        pump t sess ()

(* ---- global verbs (answered on the reader thread: cheap) ---- *)

let metrics_payload t =
  let sessions =
    Mutex.lock t.lock;
    let l =
      Hashtbl.fold
        (fun name sess acc ->
          J.Obj
            [
              ("name", J.Str name);
              ("loaded", J.Bool (match sess.state with Ready _ -> true | Loading -> false));
              ( "recomposes",
                J.Num
                  (float_of_int
                     (match sess.state with
                     | Ready { flow; _ } -> Flow.Session.recomposes flow
                     | Loading -> 0)) );
              ("served", J.Num (float_of_int sess.served));
              ("pending", J.Num (float_of_int (Queue.length sess.pending)));
            ]
          :: acc)
        t.sessions []
    in
    Mutex.unlock t.lock;
    l
  in
  J.Obj
    [
      ("metrics", Mbr_obs.Metrics.snapshot_json (Mbr_obs.Metrics.snapshot ()));
      ("sessions", J.Arr sessions);
    ]

(* The telemetry verb: one poll = one snapshot, stamped with a cursor.
   A poller that echoes its previous cursor gets the metrics *delta*
   since that snapshot (counters/histograms subtract, gauges stay
   absolute) as long as the server still remembers it — the ring keeps
   the last [telem_history] cursors, so a handful of concurrent
   dashboards each get deltas; a stale or unknown cursor degrades to a
   full snapshot, never an error. *)
let telemetry_payload t req =
  (* snapshot outside the server lock: it takes the registry mutex,
     and lock order is t.lock -> registry, never the reverse *)
  let snap = Mbr_obs.Metrics.snapshot () in
  let cursor, base, sessions =
    Mutex.lock t.lock;
    let base =
      Option.bind req.P.cursor (fun c -> List.assoc_opt c t.telem_snaps)
    in
    let cursor = t.telem_next in
    t.telem_next <- t.telem_next + 1;
    t.telem_snaps <-
      (cursor, snap) :: List.filteri (fun i _ -> i < telem_history - 1) t.telem_snaps;
    let sessions =
      Hashtbl.fold
        (fun name sess acc ->
          J.Obj
            ([
               ("name", J.Str name);
               ( "loaded",
                 J.Bool
                   (match sess.state with Ready _ -> true | Loading -> false)
               );
               ( "recomposes",
                 J.Num
                   (float_of_int
                      (match sess.state with
                      | Ready { flow; _ } -> Flow.Session.recomposes flow
                      | Loading -> 0)) );
               ("served", J.Num (float_of_int sess.served));
               ("pending", J.Num (float_of_int (Queue.length sess.pending)));
             ]
            @
            match sess.last_progress with
            | Some ev -> [ ("progress", P.progress_to_json ev) ]
            | None -> [])
          :: acc)
        t.sessions []
    in
    Mutex.unlock t.lock;
    (cursor, base, sessions)
  in
  let mode, metrics =
    match base with
    | Some b -> ("delta", Mbr_obs.Metrics.Snapshot.diff ~base:b snap)
    | None -> ("full", snap)
  in
  J.Obj
    ([
       ("cursor", J.Num (float_of_int cursor));
       ("mode", J.Str mode);
       ( "queue_depth",
         J.Num (float_of_int (Executor.queue_depth t.exec)) );
       ("metrics", Mbr_obs.Metrics.snapshot_json metrics);
       ("sessions", J.Arr sessions);
     ]
    @ if req.P.flight = Some true then [ ("flight", flight_json t) ] else [])

(* Wake the accept loop: connect-and-close is portable where closing a
   listening socket out from under accept(2) is not. *)
let initiate_stop t =
  let fresh =
    Mutex.lock t.lock;
    let fresh = not t.stopping in
    t.stopping <- true;
    Mutex.unlock t.lock;
    fresh
  in
  if fresh then
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      Unix.connect fd (Unix.ADDR_UNIX t.config.socket_path)
    with Unix.Unix_error _ -> ()

(* ---- request routing (on reader threads) ---- *)

let route_session_verb t conn req t_recv =
  match req.P.session with
  | None ->
    answer t req.P.verb t_recv conn
      (P.fail req.P.id P.Bad_request
         (Printf.sprintf "verb %S needs a \"session\""
            (P.verb_to_string req.P.verb)))
  | Some name ->
    let p = { preq = req; pconn = conn; t_recv } in
    let decision =
      Mutex.lock t.lock;
      let d =
        if t.stopping then `Err (P.Shutting_down, "server is shutting down")
        else
          match (req.P.verb, Hashtbl.find_opt t.sessions name) with
          | P.Load, Some _ ->
            `Err (P.Session_exists, Printf.sprintf "session %S exists" name)
          | P.Load, None ->
            let sess =
              {
                sname = name;
                state = Loading;
                pending = Queue.create ();
                running = false;
                served = 0;
                handles =
                  (if t.config.session_metrics then Some (session_handles name)
                   else None);
                last_progress = None;
              }
            in
            Hashtbl.add t.sessions name sess;
            Queue.add p sess.pending;
            sess.running <- true;
            `Pump sess
          | _, None ->
            `Err (P.Unknown_session, Printf.sprintf "no session %S" name)
          | _, Some sess ->
            if Queue.length sess.pending >= t.config.queue_limit then
              `Err
                ( P.Overloaded,
                  Printf.sprintf "session %S has %d requests pending" name
                    (Queue.length sess.pending) )
            else begin
              Queue.add p sess.pending;
              if sess.running then `Queued
              else begin
                sess.running <- true;
                `Pump sess
              end
            end
      in
      Mutex.unlock t.lock;
      d
    in
    (match decision with
    | `Err (code, msg) ->
      answer t req.P.verb t_recv conn (P.fail req.P.id code msg)
    | `Queued -> ()
    | `Pump sess -> (
      try Executor.submit t.exec (pump t sess)
      with Invalid_argument _ -> pump t sess ()))

let handle_line t conn line =
  Mbr_obs.Metrics.incr m_requests;
  let t_recv = Mbr_obs.Clock.now_s () in
  match J.of_string_result line with
  | Error e -> send conn (P.fail (-1) P.Invalid_json (J.error_to_string e))
  | Ok j -> (
    match P.request_of_json j with
    | Error (id, e) -> send conn { P.id; result = Error e }
    | Ok req -> (
      match req.P.verb with
      | P.Query_metrics ->
        answer t req.P.verb t_recv conn (P.ok req.P.id (metrics_payload t))
      | P.Telemetry ->
        answer t req.P.verb t_recv conn (P.ok req.P.id (telemetry_payload t req))
      | P.Export_trace -> (
        match req.P.path with
        | None ->
          answer t req.P.verb t_recv conn
            (P.fail req.P.id P.Bad_request "export-trace needs a \"path\"")
        | Some path ->
          let resp =
            try
              Mbr_obs.Trace.write path;
              P.ok req.P.id (J.Obj [ ("path", J.Str path) ])
            with Sys_error m -> P.fail req.P.id P.Internal m
          in
          answer t req.P.verb t_recv conn resp)
      | P.Shutdown ->
        answer t req.P.verb t_recv conn
          (P.ok req.P.id (J.Obj [ ("stopping", J.Bool true) ]));
        initiate_stop t
      | P.Load | P.Perturb | P.Recompose | P.Set_corners ->
        route_session_verb t conn req t_recv)
    )

let reader t conn () =
  let rec loop () =
    match input_line conn.ic with
    | line ->
      if String.length line > 0 then handle_line t conn line;
      loop ()
    | exception (End_of_file | Sys_error _) -> ()
  in
  loop ();
  Mutex.lock conn.wlock;
  conn.alive <- false;
  Mutex.unlock conn.wlock;
  (* closing ic closes the shared fd; oc's buffer is already flushed
     after every response *)
  try close_in conn.ic with Sys_error _ -> ()

(* ---- lifecycle ---- *)

let run ?on_ready config =
  let t =
    {
      config;
      exec =
        Executor.create
          ?workers:(if config.workers <= 0 then None else Some config.workers)
          ();
      lock = Mutex.create ();
      sessions = Hashtbl.create 64;
      stopping = false;
      flight_lock = Mutex.create ();
      flight = Array.make (max 0 config.flight_capacity) None;
      flight_next = 0;
      telem_next = 0;
      telem_snaps = [];
    }
  in
  if config.handle_sigusr2 then
    (try
       Sys.set_signal Sys.sigusr2
         (Sys.Signal_handle (fun _ -> dump_flight_stderr t))
     with Invalid_argument _ | Sys_error _ -> ());
  (* the sampler publishes process vitals plus the server's own gauges
     (executor queue depth, session count, per-session pending/served) *)
  let sampler =
    if config.sample_period_s > 0.0 || config.prom_file <> None then begin
      let period_s =
        if config.sample_period_s > 0.0 then config.sample_period_s else 1.0
      in
      let extra () =
        Mbr_obs.Metrics.set g_queue_depth
          (float_of_int (Executor.queue_depth t.exec));
        Mutex.lock t.lock;
        Mbr_obs.Metrics.set g_sessions
          (float_of_int (Hashtbl.length t.sessions));
        Hashtbl.iter
          (fun _ sess ->
            match sess.handles with
            | Some h ->
              Mbr_obs.Metrics.set h.h_pending
                (float_of_int (Queue.length sess.pending));
              Mbr_obs.Metrics.set h.h_served (float_of_int sess.served)
            | None -> ())
          t.sessions;
        Mutex.unlock t.lock
      in
      Some
        (Mbr_obs.Sampler.start ~period_s ?prom_file:config.prom_file ~extra ())
    end
    else None
  in
  (if Sys.file_exists config.socket_path then
     try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;
  Option.iter (fun f -> f ()) on_ready;
  let threads = ref [] in
  let rec accept_loop () =
    if not t.stopping then begin
      match Unix.accept listen_fd with
      | fd, _ ->
        if t.stopping then Unix.close fd
        else begin
          let conn =
            {
              ic = Unix.in_channel_of_descr fd;
              oc = Unix.out_channel_of_descr fd;
              wlock = Mutex.create ();
              alive = true;
            }
          in
          threads := Thread.create (reader t conn) () :: !threads
        end;
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> if not t.stopping then raise Exit
    end
  in
  accept_loop ();
  Unix.close listen_fd;
  (* drain: every queued request is answered before the workers go *)
  Executor.shutdown t.exec;
  (* final sampler tick runs before the join, so a prom_file always
     reflects the drained state *)
  Option.iter Mbr_obs.Sampler.stop sampler;
  (* readers exit on client EOF; shutdown-side nudge is the socket file
     disappearing — clients close when their last response arrives *)
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  List.iter Thread.join !threads
