(** The [mbrd] wire protocol: line-delimited JSON over a Unix socket.

    One request per line, one response per line, matched by the
    client-chosen [id] (responses to one connection may interleave
    across sessions, since each session's work is serialized
    independently). The grammar is deliberately small — see DESIGN.md
    §14 for the full protocol description:

    {v request  := {"id": int, "verb": verb, ...verb params}
       verb     := "load" | "perturb" | "recompose" | "set-corners"
                 | "query-metrics" | "export-trace" | "telemetry"
                 | "shutdown"
       response := {"id": int, "ok": true, "data": value}
                 | {"id": int, "ok": false, "error": code,
                    "message": string}
       event    := {"id": int, "event": "progress", "stage": string,
                    "round": int, "blocks_resolved": int,
                    "blocks_total": int, "wns"?: number} v}

    Event lines are out-of-band: a recompose sent with
    [progress: true] streams them on the requesting connection,
    strictly before its final response, each carrying the request's
    [id]. They have an ["event"] member and no ["ok"] member, so
    {!is_event} routes a line with one lookup.

    Everything here is pure data and codecs — both the daemon and the
    client link against this module, and the qcheck round-trip test
    pins the two directions together. Malformed input is a value
    ({!Mbr_obs.Json.of_string_result}, {!request_of_json}), never an
    exception: the daemon answers garbage with an error response. *)

type verb =
  | Load
  | Perturb
  | Recompose
  | Set_corners
  | Query_metrics
  | Export_trace
  | Telemetry
  | Shutdown

val verb_to_string : verb -> string
(** ["load"], ["perturb"], ["recompose"], ["set-corners"],
    ["query-metrics"], ["export-trace"], ["telemetry"],
    ["shutdown"]. *)

val verb_of_string : string -> verb option

val all_verbs : verb list

type request = {
  id : int;  (** echoed in the response; client's correlation key *)
  verb : verb;
  session : string option;  (** required by load / perturb / recompose *)
  profile : string option;  (** load: ["tiny"] (default) or ["d1"]..["d5"] *)
  scale : float option;  (** load: register-count multiplier, > 0 *)
  seed : int option;  (** load: generator seed; perturb: ECO seed *)
  frac : float option;  (** perturb: scales the default ECO fractions *)
  timeout_s : float option;  (** recompose: cancellation deadline *)
  path : string option;  (** export-trace: file to write *)
  corners : string option;
      (** load / set-corners: corner-set spec, comma-separated
          {!Mbr_sta.Corner.parse_set} syntax, e.g.
          ["typical,slow,fast"] *)
  recover : int option;  (** recompose: recovery-round budget *)
  cursor : int option;
      (** telemetry: a cursor from an earlier telemetry response —
          answer with the metrics {e delta} since that snapshot when
          the server still remembers it, full snapshot otherwise *)
  flight : bool option;
      (** telemetry: include the flight-recorder dump (last N request
          digests) in the response *)
  progress : bool option;
      (** recompose: stream progress event lines on this connection
          before the final response *)
}

val request :
  ?session:string ->
  ?profile:string ->
  ?scale:float ->
  ?seed:int ->
  ?frac:float ->
  ?timeout_s:float ->
  ?path:string ->
  ?corners:string ->
  ?recover:int ->
  ?cursor:int ->
  ?flight:bool ->
  ?progress:bool ->
  id:int ->
  verb ->
  request

(** Error codes a response can carry. [Overloaded] is the backpressure
    signal (a session's bounded queue is full — retry later);
    [Cancelled] is a recompose whose deadline tripped (the session
    stays usable); the rest are request or server faults. *)
type error_code =
  | Invalid_json  (** the line did not parse as JSON *)
  | Bad_request  (** missing/ill-typed field, bad parameter value *)
  | Unknown_verb
  | Unknown_session
  | Session_exists  (** load onto a name already in use *)
  | Overloaded  (** per-session queue full: explicit backpressure *)
  | Cancelled  (** recompose deadline exceeded; incumbent discarded upstream *)
  | Shutting_down
  | Internal  (** handler raised; the daemon survived, the request did not *)

val error_code_to_string : error_code -> string
(** Kebab-case wire form, e.g. ["unknown-session"]. *)

val error_code_of_string : string -> error_code option

type error = { code : error_code; message : string }

exception Reject of error
(** Internal control flow for request validation: codecs and the
    daemon's handlers raise it, and the nearest request boundary turns
    it into an error response. Never escapes {!request_of_json}. *)

val reject : error_code -> ('a, unit, string, 'b) format4 -> 'a
(** [reject code fmt ...] raises {!Reject} with a formatted message. *)

type response = { id : int; result : (Mbr_obs.Json.t, error) result }

val ok : int -> Mbr_obs.Json.t -> response

val fail : int -> error_code -> string -> response

val request_to_json : request -> Mbr_obs.Json.t
(** Omits [None] fields — the wire form carries only what the verb
    needs. *)

val request_of_json : Mbr_obs.Json.t -> (request, int * error) result
(** The [int] in the error is the request's [id] when one could be
    read ([-1] otherwise), so even a rejected request gets a
    correlatable response. Ill-typed known fields are [Bad_request];
    an unrecognized verb is [Unknown_verb]; unknown extra fields are
    ignored (forward compatibility). *)

val response_to_json : response -> Mbr_obs.Json.t

val response_of_json : Mbr_obs.Json.t -> (response, string) result
(** [Error] describes the shape violation — a client talking to
    something that is not an [mbrd]. *)

(** {2 Out-of-band events} *)

type progress_event = {
  pe_id : int;  (** id of the recompose request being served *)
  pe_stage : string;  (** stage entered (a {!Mbr_core.Flow} stage name) *)
  pe_round : int;  (** 0 = main pass, n = n-th recovery round *)
  pe_resolved : int;  (** blocks solved so far, cumulative *)
  pe_total : int;  (** blocks of completed allocate stages *)
  pe_wns : float option;  (** worst-corner WNS (ps); absent until known *)
}

val is_event : Mbr_obs.Json.t -> bool
(** The line is an event, not a response: route it to the event
    handler before trying {!response_of_json}. *)

val progress_to_json : progress_event -> Mbr_obs.Json.t

val progress_of_json : Mbr_obs.Json.t -> (progress_event, string) result
