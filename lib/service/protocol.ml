module J = Mbr_obs.Json

type verb =
  | Load
  | Perturb
  | Recompose
  | Set_corners
  | Query_metrics
  | Export_trace
  | Telemetry
  | Shutdown

let verb_to_string = function
  | Load -> "load"
  | Perturb -> "perturb"
  | Recompose -> "recompose"
  | Set_corners -> "set-corners"
  | Query_metrics -> "query-metrics"
  | Export_trace -> "export-trace"
  | Telemetry -> "telemetry"
  | Shutdown -> "shutdown"

let all_verbs =
  [
    Load; Perturb; Recompose; Set_corners; Query_metrics; Export_trace;
    Telemetry; Shutdown;
  ]

let verb_of_string s =
  List.find_opt (fun v -> verb_to_string v = s) all_verbs

type request = {
  id : int;
  verb : verb;
  session : string option;
  profile : string option;
  scale : float option;
  seed : int option;
  frac : float option;
  timeout_s : float option;
  path : string option;
  corners : string option;
  recover : int option;
  cursor : int option;
  flight : bool option;
  progress : bool option;
}

let request ?session ?profile ?scale ?seed ?frac ?timeout_s ?path ?corners
    ?recover ?cursor ?flight ?progress ~id verb =
  {
    id;
    verb;
    session;
    profile;
    scale;
    seed;
    frac;
    timeout_s;
    path;
    corners;
    recover;
    cursor;
    flight;
    progress;
  }

type error_code =
  | Invalid_json
  | Bad_request
  | Unknown_verb
  | Unknown_session
  | Session_exists
  | Overloaded
  | Cancelled
  | Shutting_down
  | Internal

let all_codes =
  [
    Invalid_json; Bad_request; Unknown_verb; Unknown_session; Session_exists;
    Overloaded; Cancelled; Shutting_down; Internal;
  ]

let error_code_to_string = function
  | Invalid_json -> "invalid-json"
  | Bad_request -> "bad-request"
  | Unknown_verb -> "unknown-verb"
  | Unknown_session -> "unknown-session"
  | Session_exists -> "session-exists"
  | Overloaded -> "overloaded"
  | Cancelled -> "cancelled"
  | Shutting_down -> "shutting-down"
  | Internal -> "internal"

let error_code_of_string s =
  List.find_opt (fun c -> error_code_to_string c = s) all_codes

type error = { code : error_code; message : string }

type response = { id : int; result : (J.t, error) result }

let ok id data = { id; result = Ok data }

let fail id code message = { id; result = Error { code; message } }

(* ---- codecs ---- *)

let request_to_json (r : request) =
  let opt k f v = Option.map (fun x -> (k, f x)) v in
  J.Obj
    (List.filter_map Fun.id
       [
         Some ("id", J.Num (float_of_int r.id));
         Some ("verb", J.Str (verb_to_string r.verb));
         opt "session" (fun s -> J.Str s) r.session;
         opt "profile" (fun s -> J.Str s) r.profile;
         opt "scale" (fun f -> J.Num f) r.scale;
         opt "seed" (fun i -> J.Num (float_of_int i)) r.seed;
         opt "frac" (fun f -> J.Num f) r.frac;
         opt "timeout_s" (fun f -> J.Num f) r.timeout_s;
         opt "path" (fun s -> J.Str s) r.path;
         opt "corners" (fun s -> J.Str s) r.corners;
         opt "recover" (fun i -> J.Num (float_of_int i)) r.recover;
         opt "cursor" (fun i -> J.Num (float_of_int i)) r.cursor;
         opt "flight" (fun b -> J.Bool b) r.flight;
         opt "progress" (fun b -> J.Bool b) r.progress;
       ])

(* Field readers distinguish "absent" (fine, every param is optional at
   this layer) from "present but ill-typed" (a Bad_request): a client
   that sends {"seed": "7"} should hear about it, not silently run with
   a default seed. *)
exception Reject of error

let reject code fmt =
  Printf.ksprintf (fun message -> raise (Reject { code; message })) fmt

let field name conv j =
  match J.member name j with
  | None -> None
  | Some v -> (
    match conv v with
    | Some x -> Some x
    | None -> reject Bad_request "field %S has the wrong type" name)

let request_of_json j =
  let id =
    match Option.bind (J.member "id" j) J.to_int with
    | Some i when i >= 0 -> i
    | Some _ | None -> -1
  in
  match
    (match j with
    | J.Obj _ -> ()
    | _ -> reject Bad_request "request must be a JSON object");
    (if id < 0 then
       match J.member "id" j with
       | None -> reject Bad_request "missing \"id\""
       | Some _ -> reject Bad_request "\"id\" must be a non-negative integer");
    let verb =
      match field "verb" J.to_str j with
      | None -> reject Bad_request "missing \"verb\""
      | Some s -> (
        match verb_of_string s with
        | Some v -> v
        | None -> reject Unknown_verb "unknown verb %S" s)
    in
    {
      id;
      verb;
      session = field "session" J.to_str j;
      profile = field "profile" J.to_str j;
      scale = field "scale" J.to_float j;
      seed = field "seed" J.to_int j;
      frac = field "frac" J.to_float j;
      timeout_s = field "timeout_s" J.to_float j;
      path = field "path" J.to_str j;
      corners = field "corners" J.to_str j;
      recover = field "recover" J.to_int j;
      cursor = field "cursor" J.to_int j;
      flight = field "flight" J.to_bool j;
      progress = field "progress" J.to_bool j;
    }
  with
  | r -> Ok r
  | exception Reject e -> Error (id, e)

let response_to_json r =
  match r.result with
  | Ok data ->
    J.Obj
      [
        ("id", J.Num (float_of_int r.id)); ("ok", J.Bool true); ("data", data);
      ]
  | Error { code; message } ->
    J.Obj
      [
        ("id", J.Num (float_of_int r.id));
        ("ok", J.Bool false);
        ("error", J.Str (error_code_to_string code));
        ("message", J.Str message);
      ]

let response_of_json j =
  match
    ( Option.bind (J.member "id" j) J.to_int,
      J.member "ok" j,
      J.member "data" j,
      Option.bind (J.member "error" j) J.to_str,
      Option.bind (J.member "message" j) J.to_str )
  with
  | Some id, Some (J.Bool true), Some data, _, _ -> Ok (ok id data)
  | Some id, Some (J.Bool false), _, Some code_s, message -> (
    let message = Option.value message ~default:"" in
    match error_code_of_string code_s with
    | Some code -> Ok (fail id code message)
    | None -> Error (Printf.sprintf "unknown error code %S" code_s))
  | _ -> Error "response is not an mbrd response object"

(* ---- out-of-band events ----

   Event lines share the stream with responses but carry an "event"
   member and no "ok" member, so a client can route on one lookup. *)

type progress_event = {
  pe_id : int;
  pe_stage : string;
  pe_round : int;
  pe_resolved : int;
  pe_total : int;
  pe_wns : float option;
}

let is_event j = J.member "event" j <> None

let progress_to_json (e : progress_event) =
  J.Obj
    ([
       ("id", J.Num (float_of_int e.pe_id));
       ("event", J.Str "progress");
       ("stage", J.Str e.pe_stage);
       ("round", J.Num (float_of_int e.pe_round));
       ("blocks_resolved", J.Num (float_of_int e.pe_resolved));
       ("blocks_total", J.Num (float_of_int e.pe_total));
     ]
    @ match e.pe_wns with None -> [] | Some w -> [ ("wns", J.Num w) ])

let progress_of_json j =
  match
    ( Option.bind (J.member "id" j) J.to_int,
      Option.bind (J.member "event" j) J.to_str,
      Option.bind (J.member "stage" j) J.to_str,
      Option.bind (J.member "round" j) J.to_int,
      Option.bind (J.member "blocks_resolved" j) J.to_int,
      Option.bind (J.member "blocks_total" j) J.to_int )
  with
  | Some id, Some "progress", Some stage, Some round, Some resolved, Some total
    ->
    Ok
      {
        pe_id = id;
        pe_stage = stage;
        pe_round = round;
        pe_resolved = resolved;
        pe_total = total;
        pe_wns = Option.bind (J.member "wns" j) J.to_float;
      }
  | _ -> Error "not a progress event"
