(** Synchronous [mbrd] client: one connection, blocking request/response.

    Each call writes one protocol line and reads lines until the
    response carrying the request's id arrives (the daemon may
    interleave responses to other in-flight ids on the same
    connection; a synchronous client never has any, but the loop makes
    the pairing explicit rather than assumed). Ids are assigned from a
    per-connection counter.

    Not thread-safe: one {!t} per thread. Concurrency belongs to many
    connections, matching the daemon's accept-loop design. *)

type t

exception Protocol_violation of string
(** The peer sent something that is not an [mbrd] response — wrong
    shape, unparseable JSON, or the connection died mid-request. *)

val connect : string -> t
(** Connect to the daemon's Unix socket at the given path. Raises
    [Unix.Unix_error] when nothing is listening. *)

val close : t -> unit
(** Idempotent. *)

val call : t -> ?params:(Protocol.request -> Protocol.request) ->
  ?on_event:(Protocol.progress_event -> unit) ->
  Protocol.verb -> (Mbr_obs.Json.t, Protocol.error) result
(** Lowest-level entry: send the verb with an auto-assigned id,
    [params] patching the defaults-free request, and return the
    matched response's result. Out-of-band event lines carrying this
    request's id are fed to [on_event] (dropped when absent) and never
    end the wait — the daemon guarantees they arrive strictly before
    the final response. Raises {!Protocol_violation} on a non-protocol
    peer, [Sys_error]/[End_of_file] on a dead one. *)

(** {2 Typed helpers} — thin wrappers over {!call}. *)

val load :
  t -> session:string -> ?profile:string -> ?scale:float -> ?seed:int ->
  ?corners:string -> unit -> (Mbr_obs.Json.t, Protocol.error) result
(** [corners] is a {!Mbr_sta.Corner.parse_set} spec overriding the
    profile's derate spread, e.g. ["typical,slow,fast"]. *)

val perturb :
  t -> session:string -> ?seed:int -> ?frac:float -> unit ->
  (Mbr_obs.Json.t, Protocol.error) result

val recompose :
  t -> session:string -> ?timeout_s:float -> ?recover:int ->
  ?on_progress:(Protocol.progress_event -> unit) -> unit ->
  (Mbr_obs.Json.t, Protocol.error) result
(** [recover] bounds the compose ↔ decompose recovery loop for this
    pass (see {!Mbr_core.Flow.Session.recompose}); the response carries
    [recover_rounds], [recover_splits] and per-corner WNS/TNS.
    [on_progress] asks the daemon to stream per-stage progress events
    ([progress: true] on the wire) and receives each one as it
    arrives; without it, no events are requested. *)

val set_corners :
  t -> session:string -> corners:string -> unit ->
  (Mbr_obs.Json.t, Protocol.error) result
(** Swap the session's corner set (comma-separated
    {!Mbr_sta.Corner.parse_set} spec); takes effect on the next
    recompose. *)

val query_metrics : t -> (Mbr_obs.Json.t, Protocol.error) result

val telemetry :
  t -> ?cursor:int -> ?flight:bool -> unit ->
  (Mbr_obs.Json.t, Protocol.error) result
(** One telemetry poll. The response carries a ["cursor"]; echo it on
    the next poll to receive the metrics {e delta} since this snapshot
    (["mode"] says whether the server answered ["delta"] or fell back
    to ["full"]). [flight] asks for the flight-recorder dump too. *)

val export_trace : t -> path:string -> (Mbr_obs.Json.t, Protocol.error) result

val shutdown : t -> (Mbr_obs.Json.t, Protocol.error) result
(** Asks the daemon to stop; the daemon still answers this request
    (and everything already queued) before exiting. *)
