(** Synchronous [mbrd] client: one connection, blocking request/response.

    Each call writes one protocol line and reads lines until the
    response carrying the request's id arrives (the daemon may
    interleave responses to other in-flight ids on the same
    connection; a synchronous client never has any, but the loop makes
    the pairing explicit rather than assumed). Ids are assigned from a
    per-connection counter.

    Not thread-safe: one {!t} per thread. Concurrency belongs to many
    connections, matching the daemon's accept-loop design. *)

type t

exception Protocol_violation of string
(** The peer sent something that is not an [mbrd] response — wrong
    shape, unparseable JSON, or the connection died mid-request. *)

val connect : string -> t
(** Connect to the daemon's Unix socket at the given path. Raises
    [Unix.Unix_error] when nothing is listening. *)

val close : t -> unit
(** Idempotent. *)

val call : t -> ?params:(Protocol.request -> Protocol.request) ->
  Protocol.verb -> (Mbr_obs.Json.t, Protocol.error) result
(** Lowest-level entry: send the verb with an auto-assigned id,
    [params] patching the defaults-free request, and return the
    matched response's result. Raises {!Protocol_violation} on a
    non-protocol peer, [Sys_error]/[End_of_file] on a dead one. *)

(** {2 Typed helpers} — thin wrappers over {!call}. *)

val load :
  t -> session:string -> ?profile:string -> ?scale:float -> ?seed:int ->
  ?corners:string -> unit -> (Mbr_obs.Json.t, Protocol.error) result
(** [corners] is a {!Mbr_sta.Corner.parse_set} spec overriding the
    profile's derate spread, e.g. ["typical,slow,fast"]. *)

val perturb :
  t -> session:string -> ?seed:int -> ?frac:float -> unit ->
  (Mbr_obs.Json.t, Protocol.error) result

val recompose :
  t -> session:string -> ?timeout_s:float -> ?recover:int -> unit ->
  (Mbr_obs.Json.t, Protocol.error) result
(** [recover] bounds the compose ↔ decompose recovery loop for this
    pass (see {!Mbr_core.Flow.Session.recompose}); the response carries
    [recover_rounds], [recover_splits] and per-corner WNS/TNS. *)

val set_corners :
  t -> session:string -> corners:string -> unit ->
  (Mbr_obs.Json.t, Protocol.error) result
(** Swap the session's corner set (comma-separated
    {!Mbr_sta.Corner.parse_set} spec); takes effect on the next
    recompose. *)

val query_metrics : t -> (Mbr_obs.Json.t, Protocol.error) result

val export_trace : t -> path:string -> (Mbr_obs.Json.t, Protocol.error) result

val shutdown : t -> (Mbr_obs.Json.t, Protocol.error) result
(** Asks the daemon to stop; the daemon still answers this request
    (and everything already queued) before exiting. *)
