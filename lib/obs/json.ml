type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

type error_kind =
  | Unexpected_end
  | Unterminated_string
  | Bad_escape
  | Bad_number
  | Trailing_garbage
  | Expected of string

type error = { offset : int; kind : error_kind }

let error_to_string { offset; kind } =
  let what =
    match kind with
    | Unexpected_end -> "unexpected end of input"
    | Unterminated_string -> "unterminated string"
    | Bad_escape -> "bad escape"
    | Bad_number -> "malformed number"
    | Trailing_garbage -> "trailing garbage"
    | Expected w -> "expected " ^ w
  in
  Printf.sprintf "%s at offset %d" what offset

exception Parse_error of string

(* internal carrier so [of_string_result] never pays a string format on
   the error path; [of_string] renders it for the legacy exception *)
exception Err of error

(* ---- printing ---- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 9.007199254740992e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s -> escape buf s
    | Arr l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        l;
      Buffer.add_char buf ']'
    | Obj l ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          go x)
        l;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* Two-space indented rendering, for files a person diffs (BENCH.json).
   Empty containers stay on one line; everything else breaks. *)
let to_string_pretty v =
  let buf = Buffer.create 1024 in
  let pad d = Buffer.add_string buf (String.make (2 * d) ' ') in
  let rec go d = function
    | (Null | Bool _ | Num _ | Str _) as v -> Buffer.add_string buf (to_string v)
    | Arr [] -> Buffer.add_string buf "[]"
    | Obj [] -> Buffer.add_string buf "{}"
    | Arr l ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (d + 1);
          go (d + 1) x)
        l;
      Buffer.add_char buf '\n';
      pad d;
      Buffer.add_char buf ']'
    | Obj l ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (d + 1);
          escape buf k;
          Buffer.add_string buf ": ";
          go (d + 1) x)
        l;
      Buffer.add_char buf '\n';
      pad d;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- parsing ---- *)

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail kind = raise (Err { offset = !pos; kind }) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Expected (Printf.sprintf "'%c'" c))
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Expected word)
  in
  (* encode a Unicode scalar value as UTF-8 *)
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail Unterminated_string
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
        | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
        | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
        | Some 'u' ->
          advance ();
          let read_hex4 () =
            if !pos + 4 > n then fail Bad_escape;
            let hex = String.sub s !pos 4 in
            let is_hex = function
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
              | _ -> false
            in
            if not (String.for_all is_hex hex) then fail Bad_escape;
            pos := !pos + 4;
            int_of_string ("0x" ^ hex)
          in
          let u = read_hex4 () in
          if u >= 0xD800 && u <= 0xDBFF then begin
            (* high surrogate: the low half must follow immediately *)
            if
              not
                (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
            then fail Bad_escape;
            pos := !pos + 2;
            let lo = read_hex4 () in
            if lo < 0xDC00 || lo > 0xDFFF then fail Bad_escape;
            add_utf8 buf
              (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if u >= 0xDC00 && u <= 0xDFFF then
            (* lone low surrogate: not a scalar value *)
            fail Bad_escape
          else add_utf8 buf u;
          go ()
        | _ -> fail Bad_escape)
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail Bad_number;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail Bad_number
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail Unexpected_end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail (Expected "',' or '}'")
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail (Expected "',' or ']'")
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail Trailing_garbage;
  v

let of_string_result s =
  match parse_exn s with v -> Ok v | exception Err e -> Error e

let of_string s =
  match parse_exn s with
  | v -> v
  | exception Err e -> raise (Parse_error (error_to_string e))

(* ---- accessors ---- *)

let member key = function
  | Obj l -> List.assoc_opt key l
  | _ -> None

let to_list = function Arr l -> Some l | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
