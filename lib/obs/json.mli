(** Minimal JSON tree, printer and parser.

    Just enough JSON for the telemetry layer and the [mbrd] wire
    protocol: Chrome trace files and metrics snapshots are emitted
    through {!to_string}, the tests / CI checker parse them back with
    {!of_string} instead of trusting the emitter, and the service
    parses untrusted client lines with {!of_string_result} (typed
    errors — a malformed request is an error {e response}, never a
    daemon crash). No dependency beyond the stdlib (the repo has no
    yojson offline). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Why parsing failed, as data: the service turns these into
    [invalid-json] error responses, and tests can assert the failure
    mode rather than substring-match a message. *)
type error_kind =
  | Unexpected_end  (** input stopped mid-value *)
  | Unterminated_string  (** no closing quote before end of input *)
  | Bad_escape  (** backslash escape that JSON does not define *)
  | Bad_number
  | Trailing_garbage  (** a complete value followed by more input *)
  | Expected of string  (** specific punctuation or literal missing *)

type error = { offset : int; kind : error_kind }
(** [offset] is the byte position in the input where parsing stopped. *)

val error_to_string : error -> string
(** Human-readable, position-annotated — the same text {!of_string}
    puts in its exception. *)

exception Parse_error of string
(** Raised by {!of_string} with a position-annotated message. *)

val to_string : t -> string
(** Compact (single-line) rendering. Integral [Num] values within
    [2^53] print without a decimal point; non-finite floats print as
    [null] (JSON has no representation for them). *)

val to_string_pretty : t -> string
(** Two-space-indented multi-line rendering ending in a newline, for
    files people read and diff (BENCH.json). Parses back to the same
    tree as {!to_string} (property-tested). *)

val of_string : string -> t
(** Strict parser for the subset {!to_string} emits plus standard JSON:
    escapes (including [\uXXXX], encoded to UTF-8 — surrogate pairs
    combine into one code point, lone surrogates are a [Bad_escape]),
    exponents, nested containers. Rejects trailing garbage. *)

val of_string_result : string -> (t, error) result
(** {!of_string} without the exception: same grammar, same strictness,
    the failure as a typed {!error}. This is the entry point for
    untrusted input (the daemon's wire protocol). *)

(** {2 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]. *)

val to_list : t -> t list option

val to_float : t -> float option

val to_int : t -> int option
(** [Num] values that are integral. *)

val to_str : t -> string option

val to_bool : t -> bool option
