(** Minimal JSON tree, printer and parser.

    Just enough JSON for the telemetry layer: Chrome trace files and
    metrics snapshots are emitted through {!to_string}, and the tests /
    CI checker parse them back with {!of_string} instead of trusting
    the emitter. No dependency beyond the stdlib (the repo has no
    yojson offline). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a position-annotated message. *)

val to_string : t -> string
(** Compact (single-line) rendering. Integral [Num] values within
    [2^53] print without a decimal point; non-finite floats print as
    [null] (JSON has no representation for them). *)

val of_string : string -> t
(** Strict parser for the subset {!to_string} emits plus standard JSON:
    escapes (including [\uXXXX], encoded to UTF-8), exponents, nested
    containers. Rejects trailing garbage. *)

(** {2 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]. *)

val to_list : t -> t list option

val to_float : t -> float option

val to_int : t -> int option
(** [Num] values that are integral. *)

val to_str : t -> string option
