type arg =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type event = {
  ev_name : string;
  ev_ph : char;  (* 'B' | 'E' | 'i' *)
  ev_ts_us : float;
  ev_tid : int;
  ev_args : (string * arg) list;
}

let enabled = Atomic.make false

let enable () = Atomic.set enabled true

let disable () = Atomic.set enabled false

let is_enabled () = Atomic.get enabled

(* Each domain records into a bounded ring (constant-time push, no
   synchronization: only the owning domain writes). When a ring is
   full the oldest event is overwritten and [trace.dropped] bumped —
   a long-lived traced daemon keeps the newest [capacity] events per
   domain instead of growing without limit. The registry of rings is
   the module's only shared mutable structure; its mutex is taken once
   per domain lifetime plus once per export/clear/resize. Rings of
   finished pool domains stay registered so their events survive into
   the export. *)

let default_capacity = 65536

let capacity = Atomic.make default_capacity

(* The metrics counter makes drops visible in every snapshot; the
   atomic keeps the count observable when metrics are disabled. *)
let m_dropped = Metrics.counter "trace.dropped"

let dropped = Atomic.make 0

let dropped_events () = Atomic.get dropped

type buf = {
  b_tid : int;
  mutable b_arr : event array;
  mutable b_start : int;  (* index of the oldest event *)
  mutable b_len : int;
}

let dummy =
  { ev_name = ""; ev_ph = 'i'; ev_ts_us = 0.0; ev_tid = 0; ev_args = [] }

let reg_mutex = Mutex.create ()

let buffers : buf list ref = ref []

let dls : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          b_tid = (Domain.self () :> int);
          b_arr = Array.make (max 1 (Atomic.get capacity)) dummy;
          b_start = 0;
          b_len = 0;
        }
      in
      Mutex.lock reg_mutex;
      buffers := b :: !buffers;
      Mutex.unlock reg_mutex;
      b)

let buf_events b =
  let cap = Array.length b.b_arr in
  List.init b.b_len (fun i -> b.b_arr.((b.b_start + i) mod cap))

let set_capacity n =
  let n = max 1 n in
  Atomic.set capacity n;
  (* resize existing rings, keeping the newest events; like [export],
     only safe while the owning domains are quiescent *)
  Mutex.lock reg_mutex;
  List.iter
    (fun b ->
      if Array.length b.b_arr <> n then begin
        let evs = buf_events b in
        let keep = List.filteri (fun i _ -> i >= List.length evs - n) evs in
        let arr = Array.make n dummy in
        List.iteri (fun i e -> arr.(i) <- e) keep;
        b.b_arr <- arr;
        b.b_start <- 0;
        b.b_len <- List.length keep
      end)
    !buffers;
  Mutex.unlock reg_mutex

let get_capacity () = Atomic.get capacity

let emit ~ts name ph args =
  let b = Domain.DLS.get dls in
  let ev =
    { ev_name = name; ev_ph = ph; ev_ts_us = ts; ev_tid = b.b_tid;
      ev_args = args }
  in
  let cap = Array.length b.b_arr in
  if b.b_len = cap then begin
    (* full: the new event takes the oldest slot *)
    b.b_arr.(b.b_start) <- ev;
    b.b_start <- (b.b_start + 1) mod cap;
    Atomic.incr dropped;
    Metrics.incr m_dropped
  end
  else begin
    b.b_arr.((b.b_start + b.b_len) mod cap) <- ev;
    b.b_len <- b.b_len + 1
  end

let clear () =
  Mutex.lock reg_mutex;
  List.iter
    (fun b ->
      Array.fill b.b_arr 0 (Array.length b.b_arr) dummy;
      b.b_start <- 0;
      b.b_len <- 0)
    !buffers;
  Mutex.unlock reg_mutex

let timed_span ?(args = []) ~name f =
  (* capture the flag once so the B/E pair stays matched even if
     tracing is toggled mid-span *)
  let on = Atomic.get enabled in
  let t0 = Clock.now_us () in
  if on then emit ~ts:t0 name 'B' args;
  let finish () =
    let t1 = Clock.now_us () in
    if on then emit ~ts:t1 name 'E' [];
    (t1 -. t0) *. 1e-6
  in
  match f () with
  | r -> (r, finish ())
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    ignore (finish ());
    Printexc.raise_with_backtrace e bt

let with_span ?args ~name f =
  if Atomic.get enabled then fst (timed_span ?args ~name f) else f ()

let instant ?(args = []) name =
  if Atomic.get enabled then emit ~ts:(Clock.now_us ()) name 'i' args

let events () =
  Mutex.lock reg_mutex;
  let chunks = List.map buf_events !buffers in
  Mutex.unlock reg_mutex;
  (* per-ring lists are chronological; the stable sort keeps
     same-timestamp events of one domain in recording order *)
  List.stable_sort
    (fun a b -> compare a.ev_ts_us b.ev_ts_us)
    (List.concat chunks)

let n_events () = List.length (events ())

let arg_json = function
  | Str s -> Json.Str s
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Bool b -> Json.Bool b

let export () =
  let pid = float_of_int (Unix.getpid ()) in
  let event_json e =
    Json.Obj
      ([
         ("name", Json.Str e.ev_name);
         ("ph", Json.Str (String.make 1 e.ev_ph));
         ("ts", Json.Num e.ev_ts_us);
         ("pid", Json.Num pid);
         ("tid", Json.Num (float_of_int e.ev_tid));
         ("cat", Json.Str "mbr");
       ]
      @
      match e.ev_args with
      | [] -> []
      | args ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)) ])
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map event_json (events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write path =
  let oc = open_out path in
  output_string oc (Json.to_string (export ()));
  output_char oc '\n';
  close_out oc
