type arg =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type event = {
  ev_name : string;
  ev_ph : char;  (* 'B' | 'E' | 'i' *)
  ev_ts_us : float;
  ev_tid : int;
  ev_args : (string * arg) list;
}

let enabled = Atomic.make false

let enable () = Atomic.set enabled true

let disable () = Atomic.set enabled false

let is_enabled () = Atomic.get enabled

(* Buffers hold events newest-first (constant-time push, no
   synchronization: only the owning domain writes). The registry of
   buffers is the module's only shared mutable structure; its mutex is
   taken once per domain lifetime plus once per export. Buffers of
   finished pool domains stay registered so their events survive into
   the export. *)
let reg_mutex = Mutex.create ()

let buffers : (int * event list ref) list ref = ref []

let dls : (int * event list ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let tid = (Domain.self () :> int) in
      let buf = ref [] in
      Mutex.lock reg_mutex;
      buffers := (tid, buf) :: !buffers;
      Mutex.unlock reg_mutex;
      (tid, buf))

let emit ~ts name ph args =
  let tid, buf = Domain.DLS.get dls in
  buf :=
    { ev_name = name; ev_ph = ph; ev_ts_us = ts; ev_tid = tid; ev_args = args }
    :: !buf

let clear () =
  Mutex.lock reg_mutex;
  List.iter (fun (_, buf) -> buf := []) !buffers;
  Mutex.unlock reg_mutex

let timed_span ?(args = []) ~name f =
  (* capture the flag once so the B/E pair stays matched even if
     tracing is toggled mid-span *)
  let on = Atomic.get enabled in
  let t0 = Clock.now_us () in
  if on then emit ~ts:t0 name 'B' args;
  let finish () =
    let t1 = Clock.now_us () in
    if on then emit ~ts:t1 name 'E' [];
    (t1 -. t0) *. 1e-6
  in
  match f () with
  | r -> (r, finish ())
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    ignore (finish ());
    Printexc.raise_with_backtrace e bt

let with_span ?args ~name f =
  if Atomic.get enabled then fst (timed_span ?args ~name f) else f ()

let instant ?(args = []) name =
  if Atomic.get enabled then emit ~ts:(Clock.now_us ()) name 'i' args

let events () =
  Mutex.lock reg_mutex;
  let chunks = List.map (fun (_, buf) -> List.rev !buf) !buffers in
  Mutex.unlock reg_mutex;
  (* per-buffer lists are chronological after the rev; the stable sort
     keeps same-timestamp events of one domain in recording order *)
  List.stable_sort
    (fun a b -> compare a.ev_ts_us b.ev_ts_us)
    (List.concat chunks)

let n_events () = List.length (events ())

let arg_json = function
  | Str s -> Json.Str s
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Bool b -> Json.Bool b

let export () =
  let pid = float_of_int (Unix.getpid ()) in
  let event_json e =
    Json.Obj
      ([
         ("name", Json.Str e.ev_name);
         ("ph", Json.Str (String.make 1 e.ev_ph));
         ("ts", Json.Num e.ev_ts_us);
         ("pid", Json.Num pid);
         ("tid", Json.Num (float_of_int e.ev_tid));
         ("cat", Json.Str "mbr");
       ]
      @
      match e.ev_args with
      | [] -> []
      | args ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)) ])
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map event_json (events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write path =
  let oc = open_out path in
  output_string oc (Json.to_string (export ()));
  output_char oc '\n';
  close_out oc
