(** Span tracing with Chrome [trace_event] export.

    [with_span ~name f] brackets [f] with begin/end events carrying the
    calling domain's id, so a traced run renders as a flame chart of
    the Fig.-4 stages over the allocation pool's worker domains in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Recording is {e per-domain and lock-free}: each domain appends to
    its own buffer (reached through domain-local storage), and the one
    mutex in the module guards only buffer {e registration} (once per
    domain) and export. Tracing is off by default; a disabled
    [with_span] is one atomic load plus the two clock reads that also
    produce the duration callers consume, so hot paths stay clean.

    Spans may nest freely and cross domains only by nesting (a span
    opened on one domain closes on the same domain — [Fun.protect]
    semantics, so an exception still closes the span). *)

type arg =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

val enable : unit -> unit

val disable : unit -> unit

val is_enabled : unit -> bool

val clear : unit -> unit
(** Drop every recorded event (buffers stay registered). *)

val timed_span :
  ?args:(string * arg) list -> name:string -> (unit -> 'a) -> 'a * float
(** Run the thunk inside a span and return its result with the span's
    duration in seconds — the same two clock reads produce the trace
    events and the returned duration, so stage-time tables and the
    trace can never disagree. When tracing is disabled only the
    duration is produced. *)

val with_span : ?args:(string * arg) list -> name:string -> (unit -> 'a) -> 'a
(** [timed_span] without the duration. *)

val instant : ?args:(string * arg) list -> string -> unit
(** A zero-duration marker event ([ph = "i"]). No-op when disabled. *)

val export : unit -> Json.t
(** The Chrome trace: [{"traceEvents": [...], "displayTimeUnit":
    "ms"}], events in timestamp order (ties keep per-domain
    recording order, so a B never trails its E). Safe to call while
    workers are quiescent — i.e. between flow stages or after a run. *)

val write : string -> unit
(** {!export} serialized to a file, loadable by Perfetto as-is. *)

val n_events : unit -> int
