(** Span tracing with Chrome [trace_event] export.

    [with_span ~name f] brackets [f] with begin/end events carrying the
    calling domain's id, so a traced run renders as a flame chart of
    the Fig.-4 stages over the allocation pool's worker domains in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Recording is {e per-domain and lock-free}: each domain appends to
    its own buffer (reached through domain-local storage), and the one
    mutex in the module guards only buffer {e registration} (once per
    domain) and export. Tracing is off by default; a disabled
    [with_span] is one atomic load plus the two clock reads that also
    produce the duration callers consume, so hot paths stay clean.

    {b Bounded memory.} Each per-domain buffer is a ring of
    {!get_capacity} events ({!default_capacity} unless
    {!set_capacity} was called): once full, each new event overwrites
    the oldest one in that domain and bumps the [trace.dropped]
    metrics counter (also readable via {!dropped_events} when metrics
    are off). A long-lived traced daemon therefore holds at most
    [capacity × domains] events, and an export shows the newest
    window, still in chronological order.

    Spans may nest freely and cross domains only by nesting (a span
    opened on one domain closes on the same domain — [Fun.protect]
    semantics, so an exception still closes the span). *)

type arg =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

val enable : unit -> unit

val disable : unit -> unit

val is_enabled : unit -> bool

val clear : unit -> unit
(** Drop every recorded event (buffers stay registered; the
    [trace.dropped] count is {e not} reset — it is cumulative like
    every other counter). *)

val default_capacity : int
(** 65536 events per domain (an event is a few words plus its args;
    the default bounds a busy 8-domain daemon to a few tens of MB). *)

val set_capacity : int -> unit
(** Ring size, in events per domain, for rings created after the call
    — and existing rings are resized in place, keeping their newest
    events. Clamped to at least 1. Like {!export}, only safe while
    recording domains are quiescent; call it at setup, before
    tracing. *)

val get_capacity : unit -> int
(** Current per-domain ring size. *)

val dropped_events : unit -> int
(** Events overwritten ring-buffer-style since process start, across
    all domains — same value the [trace.dropped] counter reports, but
    live even when metrics are disabled. *)

val timed_span :
  ?args:(string * arg) list -> name:string -> (unit -> 'a) -> 'a * float
(** Run the thunk inside a span and return its result with the span's
    duration in seconds — the same two clock reads produce the trace
    events and the returned duration, so stage-time tables and the
    trace can never disagree. When tracing is disabled only the
    duration is produced. *)

val with_span : ?args:(string * arg) list -> name:string -> (unit -> 'a) -> 'a
(** [timed_span] without the duration. *)

val instant : ?args:(string * arg) list -> string -> unit
(** A zero-duration marker event ([ph = "i"]). No-op when disabled. *)

val export : unit -> Json.t
(** The Chrome trace: [{"traceEvents": [...], "displayTimeUnit":
    "ms"}], events in timestamp order (ties keep per-domain
    recording order, so a B never trails its E). Safe to call while
    workers are quiescent — i.e. between flow stages or after a run. *)

val write : string -> unit
(** {!export} serialized to a file, loadable by Perfetto as-is. *)

val n_events : unit -> int
