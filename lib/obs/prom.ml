(* Prometheus text exposition (format 0.0.4) of a metrics snapshot.

   Snapshot keys carry labels in their canonical [name{k="v"}] form
   (see Metrics.series_name); here each key is split back apart, the
   base name is mapped onto the exposition grammar (dots become
   underscores, everything gets an [mbr_] prefix) and series of the
   same base name are grouped into one family under a single # TYPE
   line — the grouping matters because snapshot order is sorted by the
   full series key, which interleaves labeled and unlabeled names. *)

let is_legal_metric_name s =
  s <> ""
  && (match s.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let is_legal_label_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && (not (String.length s >= 2 && s.[0] = '_' && s.[1] = '_'))
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let sanitize s =
  String.map
    (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' as c -> c | _ -> '_')
    s

let metric_name raw = "mbr_" ^ sanitize raw

let label_name raw =
  let s = sanitize raw in
  let s = if s = "" then "label" else s in
  let s =
    match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s
  in
  (* leading "__" is reserved for the Prometheus server itself *)
  if String.length s >= 2 && s.[0] = '_' && s.[1] = '_' then
    "l" ^ s
  else s

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let float_str f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 9.007199254740992e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let labels_str labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (label_name k) (escape_label_value v))
           labels)
    ^ "}"

type family = {
  fam_kind : string; (* "counter" | "gauge" | "histogram" *)
  mutable fam_lines : string list; (* reversed sample lines *)
}

let render (s : Metrics.snapshot) =
  (* Families keyed by exposition name, in first-appearance order.
     Two raw names may sanitize to the same exposition name with
     different kinds; the later one gets a numbered _dup suffix so the
     output always parses. *)
  let families : (string, family) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let family name kind =
    let rec claim name n =
      match Hashtbl.find_opt families name with
      | Some f when f.fam_kind = kind -> f
      | Some _ -> claim (Printf.sprintf "%s_dup%d" name n) (n + 1)
      | None ->
        let f = { fam_kind = kind; fam_lines = [] } in
        Hashtbl.replace families name f;
        order := name :: !order;
        f
    in
    claim name 1
  in
  let sample name kind labels value =
    let f = family name kind in
    f.fam_lines <-
      Printf.sprintf "%s%s %s" name (labels_str labels) value :: f.fam_lines
  in
  List.iter
    (fun (key, v) ->
      let base, labels = Metrics.split_series key in
      sample (metric_name base) "counter" labels (string_of_int v))
    s.Metrics.counters;
  List.iter
    (fun (key, v) ->
      let base, labels = Metrics.split_series key in
      sample (metric_name base) "gauge" labels (float_str v))
    s.Metrics.gauges;
  List.iter
    (fun (key, (h : Metrics.histo_snapshot)) ->
      let base, labels = Metrics.split_series key in
      let name = metric_name base in
      let f = family name "histogram" in
      let bucket le cum =
        f.fam_lines <-
          Printf.sprintf "%s_bucket%s %d" name
            (labels_str (labels @ [ ("le", le) ]))
            cum
          :: f.fam_lines
      in
      let nb = Array.length h.Metrics.bins in
      let cum = ref 0 in
      for i = 0 to nb - 1 do
        (if i < Array.length h.Metrics.counts then
           cum := !cum + h.Metrics.counts.(i));
        bucket (float_str h.Metrics.bins.(i)) !cum
      done;
      bucket "+Inf" h.Metrics.count;
      f.fam_lines <-
        Printf.sprintf "%s_sum%s %s" name (labels_str labels)
          (float_str h.Metrics.sum)
        :: f.fam_lines;
      f.fam_lines <-
        Printf.sprintf "%s_count%s %d" name (labels_str labels)
          h.Metrics.count
        :: f.fam_lines)
    s.Metrics.histograms;
  let buf = Buffer.create 4096 in
  List.iter
    (fun name ->
      let f = Hashtbl.find families name in
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" name f.fam_kind);
      List.iter
        (fun line ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        (List.rev f.fam_lines))
    (List.rev !order);
  Buffer.contents buf
