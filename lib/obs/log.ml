(* Origin of the reporter's timestamps: set by [setup], so every line
   shows seconds since the frontend initialized logging — the same
   monotonic clock the tracer stamps events with, which is what makes
   a stderr line and a trace span correlatable. *)
let t0 = Atomic.make 0.0

let reporter () =
  let app = Fmt.stderr in
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf @@ fun ?header ?tags:_ fmt ->
    Format.kfprintf k app
      ("[%8.3f d%d] %a [%s] @[" ^^ fmt ^^ "@]@.")
      (Clock.now_s () -. Atomic.get t0)
      ((Domain.self () :> int))
      Logs_fmt.pp_header (level, header) (Logs.Src.name src)
  in
  { Logs.report }

let setup ?(level = Some Logs.Warning) () =
  Atomic.set t0 (Clock.now_s ());
  Logs.set_reporter (reporter ());
  Logs.set_level level

let level_of_string s =
  match String.lowercase_ascii s with
  | "quiet" | "none" | "off" -> Ok None
  | s -> (
    match Logs.level_of_string s with
    | Ok l -> Ok l
    | Error (`Msg m) -> Error m)
