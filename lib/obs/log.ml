let setup ?(level = Some Logs.Warning) () =
  Logs.set_reporter (Logs_fmt.reporter ~app:Fmt.stderr ());
  Logs.set_level level

let level_of_string s =
  match String.lowercase_ascii s with
  | "quiet" | "none" | "off" -> Ok None
  | s -> (
    match Logs.level_of_string s with
    | Ok l -> Ok l
    | Error (`Msg m) -> Error m)
