(** Resident-set-size probes for the bench harness and CI ceilings.

    Values come from [/proc/self/status], so they cover the whole
    process — every domain, the GC heaps, and mapped code. [None] on
    platforms without procfs. *)

val peak_mb : unit -> float option
(** Peak resident set ([VmHWM]) in MB since process start. The kernel
    high-water mark never decreases, which is exactly the "how much
    memory did this run need" number a scaling table wants. *)

val current_mb : unit -> float option
(** Current resident set ([VmRSS]) in MB. *)
