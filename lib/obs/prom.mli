(** Prometheus text exposition (format 0.0.4) of a {!Metrics}
    snapshot.

    Every snapshot key is split with {!Metrics.split_series}; base
    names are mapped onto the exposition grammar ([mbr_] prefix,
    every character outside [[a-zA-Z0-9]] becomes [_]) and series
    sharing a base name are grouped into one family under a single
    [# TYPE] line. Histograms render as cumulative
    [_bucket{le="..."}] samples plus the [+Inf] bucket, [_sum] and
    [_count]. The output of {!render} always parses: name collisions
    created by sanitization get a [_dup<n>] suffix rather than
    emitting a duplicate family. *)

val render : Metrics.snapshot -> string
(** The whole snapshot as exposition text, one family per metric,
    ending in a newline (empty string for an empty snapshot). *)

val metric_name : string -> string
(** Exposition name for a raw metric base name, e.g.
    ["flow.recompose_s"] → ["mbr_flow_recompose_s"]. Always satisfies
    {!is_legal_metric_name}. *)

val label_name : string -> string
(** Exposition name for a raw label key. Always satisfies
    {!is_legal_label_name} (never starts with the reserved [__]). *)

val escape_label_value : string -> string
(** Backslash, double quote and newline escaped as the exposition
    format requires; everything else byte-for-byte. *)

val float_str : float -> string
(** Sample-value rendering: integral floats without a fraction,
    [NaN]/[+Inf]/[-Inf] spelled the way Prometheus parses them. *)

val is_legal_metric_name : string -> bool
(** [[a-zA-Z_:][a-zA-Z0-9_:]*] — the exposition grammar for metric
    names. *)

val is_legal_label_name : string -> bool
(** [[a-zA-Z_][a-zA-Z0-9_]*] and not starting with [__]. *)
