(* CLOCK_MONOTONIC via bechamel's [@@noalloc] stub; subtracting a
   module-load origin keeps the float conversions fully precise for
   runs of any realistic length. *)

let origin = Monotonic_clock.now ()

let now_ns () = Int64.sub (Monotonic_clock.now ()) origin

let now_s () = Int64.to_float (now_ns ()) *. 1e-9

let now_us () = Int64.to_float (now_ns ()) *. 1e-3
