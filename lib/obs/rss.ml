(* /proc/self/status is Linux-only; both probes degrade to None
   elsewhere (or in containers that hide procfs) so callers can print
   "n/a" instead of crashing the harness. *)

let read_status_kb field =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let prefix = field ^ ":" in
    let plen = String.length prefix in
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line > plen && String.sub line 0 plen = prefix then begin
          (* "VmHWM:    12345 kB" — take the first integer token *)
          let rest = String.sub line plen (String.length line - plen) in
          match Scanf.sscanf rest " %d" (fun kb -> kb) with
          | kb -> Some kb
          | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None
        end
        else scan ()
    in
    let r = scan () in
    close_in ic;
    r

let peak_mb () =
  match read_status_kb "VmHWM" with
  | Some kb -> Some (float_of_int kb /. 1024.0)
  | None -> None

let current_mb () =
  match read_status_kb "VmRSS" with
  | Some kb -> Some (float_of_int kb /. 1024.0)
  | None -> None
