type counter = { c_name : string; c_v : int Atomic.t }

type gauge = { g_name : string; g_v : float Atomic.t }

type histogram = {
  h_name : string;
  h_bins : float array;
  h_counts : int Atomic.t array;
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let enabled = Atomic.make false

let enable () = Atomic.set enabled true

let disable () = Atomic.set enabled false

let is_enabled () = Atomic.get enabled

let reg_mutex = Mutex.create ()

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* Labeled series are ordinary registry entries whose key is the
   canonical series name [name{k="v",...}] — labels sorted by key,
   values escaped the way the Prometheus text format escapes them
   (backslash, double quote, newline). Everything downstream of
   [snapshot] (JSON, diffs, the text renderer, List.assoc consumers
   keyed on unlabeled names) keeps working on plain string keys;
   [split_series] recovers the structure when a consumer wants it. *)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let series_name name labels =
  match labels with
  | [] -> name
  | labels ->
    let labels =
      List.sort (fun (a, _) (b, _) -> String.compare a b) labels
    in
    let buf = Buffer.create (String.length name + 16) in
    Buffer.add_string buf name;
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}';
    Buffer.contents buf

let split_series s =
  let len = String.length s in
  match String.index_opt s '{' with
  | None -> (s, [])
  | Some i when len > 0 && s.[len - 1] = '}' -> (
    let base = String.sub s 0 i in
    let body = String.sub s (i + 1) (len - i - 2) in
    let n = String.length body in
    let buf = Buffer.create 16 in
    let rec value k j =
      if j >= n then raise Exit
      else
        match body.[j] with
        | '"' ->
          let v = Buffer.contents buf in
          Buffer.clear buf;
          if j + 1 >= n then [ (k, v) ]
          else if body.[j + 1] = ',' then (k, v) :: pair (j + 2)
          else raise Exit
        | '\\' when j + 1 < n ->
          (match body.[j + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | c -> Buffer.add_char buf c);
          value k (j + 2)
        | c ->
          Buffer.add_char buf c;
          value k (j + 1)
    and pair j =
      match String.index_from_opt body j '=' with
      | Some e when e > j && e + 1 < n && body.[e + 1] = '"' ->
        value (String.sub body j (e - j)) (e + 2)
      | _ -> raise Exit
    in
    try (base, if n = 0 then [] else pair 0) with Exit -> (s, []))
  | Some _ -> (s, [])

(* Registration is rare (once per handle); every lookup-or-create runs
   under the mutex so two domains registering the same name race
   safely. *)
let register name create cast =
  Mutex.lock reg_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg_mutex)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match cast m with
        | Some h -> h
        | None ->
          invalid_arg
            (Printf.sprintf
               "Mbr_obs.Metrics: %S already registered as a different kind"
               name))
      | None ->
        let h, m = create () in
        Hashtbl.replace registry name m;
        h)

let counter ?(labels = []) name =
  let name = series_name name labels in
  register name
    (fun () ->
      let c = { c_name = name; c_v = Atomic.make 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c =
  if Atomic.get enabled then ignore (Atomic.fetch_and_add c.c_v by)

let counter_value c = Atomic.get c.c_v

let gauge ?(labels = []) name =
  let name = series_name name labels in
  register name
    (fun () ->
      let g = { g_name = name; g_v = Atomic.make 0.0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let set g v = if Atomic.get enabled then Atomic.set g.g_v v

(* log-spaced seconds: right for both sub-millisecond block solves and
   multi-second stages *)
let default_bins =
  [| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0 |]

let histogram ?(bins = default_bins) ?(labels = []) name =
  let name = series_name name labels in
  register name
    (fun () ->
      let h =
        {
          h_name = name;
          h_bins = Array.copy bins;
          h_counts = Array.init (Array.length bins + 1) (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0.0;
          h_count = Atomic.make 0;
        }
      in
      (h, Histogram h))
    (function
      | Histogram h ->
        if h.h_bins <> bins && bins != default_bins then
          invalid_arg
            (Printf.sprintf
               "Mbr_obs.Metrics: histogram %S re-registered with different bins"
               name);
        Some h
      | _ -> None)

let rec atomic_add_float a x =
  let v = Atomic.get a in
  if not (Atomic.compare_and_set a v (v +. x)) then atomic_add_float a x

let observe h x =
  if Atomic.get enabled then begin
    (* same placement rule as Mbr_util.Stats.histogram: first bin whose
       upper edge x does not exceed; the trailing bin is the overflow *)
    let nb = Array.length h.h_bins in
    let rec find i = if i >= nb || x <= h.h_bins.(i) then i else find (i + 1) in
    ignore (Atomic.fetch_and_add h.h_counts.(find 0) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    atomic_add_float h.h_sum x
  end

let reset () =
  Mutex.lock reg_mutex;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c.c_v 0
      | Gauge g -> Atomic.set g.g_v 0.0
      | Histogram h ->
        Array.iter (fun a -> Atomic.set a 0) h.h_counts;
        Atomic.set h.h_sum 0.0;
        Atomic.set h.h_count 0)
    registry;
  Mutex.unlock reg_mutex

type histo_snapshot = {
  bins : float array;
  counts : int array;
  sum : float;
  count : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histo_snapshot) list;
}

let snapshot () =
  Mutex.lock reg_mutex;
  let cs = ref [] and gs = ref [] and hs = ref [] in
  Hashtbl.iter
    (fun name m ->
      match m with
      | Counter c -> cs := (name, Atomic.get c.c_v) :: !cs
      | Gauge g -> gs := (name, Atomic.get g.g_v) :: !gs
      | Histogram h ->
        hs :=
          ( name,
            {
              bins = Array.copy h.h_bins;
              counts = Array.map Atomic.get h.h_counts;
              sum = Atomic.get h.h_sum;
              count = Atomic.get h.h_count;
            } )
          :: !hs)
    registry;
  Mutex.unlock reg_mutex;
  let by_name (a, _) (b, _) = compare a b in
  {
    counters = List.sort by_name !cs;
    gauges = List.sort by_name !gs;
    histograms = List.sort by_name !hs;
  }

let snapshot_json s =
  let num_arr a = Json.Arr (Array.to_list (Array.map (fun f -> Json.Num f) a)) in
  let int_arr a =
    Json.Arr (Array.to_list (Array.map (fun i -> Json.Num (float_of_int i)) a))
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) s.counters)
      );
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) s.gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) ->
               ( k,
                 Json.Obj
                   [
                     ("bins", num_arr h.bins);
                     ("counts", int_arr h.counts);
                     ("sum", Json.Num h.sum);
                     ("count", Json.Num (float_of_int h.count));
                   ] ))
             s.histograms) );
    ]

let pp ppf s =
  let open Format in
  if s.counters <> [] then begin
    fprintf ppf "@[<v>counters:@,";
    List.iter (fun (k, v) -> fprintf ppf "  %-36s %12d@," k v) s.counters;
    fprintf ppf "@]"
  end;
  if s.gauges <> [] then begin
    fprintf ppf "@[<v>gauges:@,";
    List.iter (fun (k, v) -> fprintf ppf "  %-36s %12.6g@," k v) s.gauges;
    fprintf ppf "@]"
  end;
  if s.histograms <> [] then begin
    fprintf ppf "@[<v>histograms:@,";
    List.iter
      (fun (k, h) ->
        let mean = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count in
        fprintf ppf "  %-36s n=%-8d sum=%-10.4g mean=%-10.4g@," k h.count h.sum
          mean;
        let nb = Array.length h.bins in
        Array.iteri
          (fun i c ->
            if c > 0 then
              if i < nb then fprintf ppf "    <= %-10.4g %8d@," h.bins.(i) c
              else fprintf ppf "    >  %-10.4g %8d@," h.bins.(nb - 1) c)
          h.counts)
      s.histograms;
    fprintf ppf "@]"
  end

let quantile h q =
  if h.count <= 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int h.count in
    let nb = Array.length h.bins in
    let nc = Array.length h.counts in
    let rec go i cum =
      if i >= nc then if nb = 0 then 0.0 else h.bins.(nb - 1)
      else begin
        let c = h.counts.(i) in
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= target then
          if i >= nb then (* overflow bin: clamp to the last edge *)
            if nb = 0 then 0.0 else h.bins.(nb - 1)
          else begin
            let lower = if i = 0 then 0.0 else h.bins.(i - 1) in
            lower
            +. ((h.bins.(i) -. lower) *. ((target -. cum) /. float_of_int c))
          end
        else go (i + 1) cum'
      end
    in
    go 0 0.0
  end

module Snapshot = struct
  type t = snapshot

  let same_shape a b =
    a.bins = b.bins && Array.length a.counts = Array.length b.counts

  let diff ~base newer =
    {
      counters =
        List.map
          (fun (k, v) ->
            ( k,
              v - Option.value ~default:0 (List.assoc_opt k base.counters) ))
          newer.counters;
      gauges = newer.gauges;
      histograms =
        List.map
          (fun (k, h) ->
            match List.assoc_opt k base.histograms with
            | Some hb when same_shape hb h ->
              ( k,
                {
                  bins = h.bins;
                  counts = Array.mapi (fun i c -> c - hb.counts.(i)) h.counts;
                  sum = h.sum -. hb.sum;
                  count = h.count - hb.count;
                } )
            | _ -> (k, h))
          newer.histograms;
    }

  (* Both inputs are sorted by name (every producer in this module
     sorts), so all three merges are single passes. *)
  let rec merge combine b d =
    match (b, d) with
    | [], d -> d
    | b, [] -> b
    | (kb, vb) :: tb, (kd, vd) :: td ->
      if kb = kd then (kb, combine vb vd) :: merge combine tb td
      else if kb < kd then (kb, vb) :: merge combine tb ((kd, vd) :: td)
      else (kd, vd) :: merge combine ((kb, vb) :: tb) td

  let apply ~base delta =
    {
      counters = merge (fun b d -> b + d) base.counters delta.counters;
      gauges = merge (fun _ d -> d) base.gauges delta.gauges;
      histograms =
        merge
          (fun b d ->
            if same_shape b d then
              {
                bins = d.bins;
                counts = Array.mapi (fun i c -> c + b.counts.(i)) d.counts;
                sum = b.sum +. d.sum;
                count = b.count + d.count;
              }
            else d)
          base.histograms delta.histograms;
    }
end

exception Bad_snapshot of string

let snapshot_of_json j =
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad_snapshot s)) fmt in
  let obj name =
    match Json.member name j with
    | Some (Json.Obj kvs) -> kvs
    | Some _ -> fail "%S is not an object" name
    | None -> []
  in
  let num k = function
    | Json.Num f -> f
    | _ -> fail "%S: expected a number" k
  in
  let farr k = function
    | Json.Arr l -> Array.of_list (List.map (num k) l)
    | _ -> fail "%S: expected an array" k
  in
  try
    let counters =
      List.map (fun (k, v) -> (k, int_of_float (num k v))) (obj "counters")
    in
    let gauges = List.map (fun (k, v) -> (k, num k v)) (obj "gauges") in
    let histograms =
      List.map
        (fun (k, v) ->
          let m field =
            match Json.member field v with
            | Some x -> x
            | None -> fail "histogram %S lacks %S" k field
          in
          ( k,
            {
              bins = farr k (m "bins");
              counts = Array.map int_of_float (farr k (m "counts"));
              sum = num k (m "sum");
              count = int_of_float (num k (m "count"));
            } ))
        (obj "histograms")
    in
    let by_name (a, _) (b, _) = compare a b in
    Ok
      {
        counters = List.sort by_name counters;
        gauges = List.sort by_name gauges;
        histograms = List.sort by_name histograms;
      }
  with Bad_snapshot msg -> Error msg

let write path =
  let oc = open_out path in
  output_string oc (Json.to_string (snapshot_json (snapshot ())));
  output_char oc '\n';
  close_out oc
