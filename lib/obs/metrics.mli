(** Domain-safe metrics registry: named counters, gauges and fixed-bin
    histograms.

    Handles are registered once by name (typically at module load or
    stage setup) and bumped from anywhere — including
    {!Mbr_util.Pool} worker domains: every mutation is a single
    [Atomic] operation (a CAS loop for float accumulation), so
    concurrent bumps lose no increments and a {!snapshot} taken between
    fan-outs is deterministic for a deterministic workload regardless
    of the jobs setting (property-tested).

    The registry is {e disabled by default}: a disabled bump is one
    atomic load and nothing else, keeping instrumented hot paths
    (per-block solves, STA worklists, simplex pivots) clean when nobody
    is looking. Registration itself is always live so handles can be
    created eagerly at the top of instrumented modules.

    Histogram bins follow the [Mbr_util.Stats.histogram] convention:
    [bins] holds ascending upper edges, an observation lands in the
    first bin whose edge it does not exceed, and one extra overflow bin
    catches the rest — so [counts] has [length bins + 1] entries. *)

type counter

type gauge

type histogram

val enable : unit -> unit

val disable : unit -> unit

val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero every value; registrations (names, bins, handles) survive. *)

val counter : string -> counter
(** Register (or retrieve — registration is idempotent) the named
    counter. Raises [Invalid_argument] when the name is already bound
    to a different metric kind. *)

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

val gauge : string -> gauge

val set : gauge -> float -> unit

val histogram : ?bins:float array -> string -> histogram
(** [bins] defaults to a log-spaced seconds scale (0.1 ms .. 3 s)
    suitable for the solve/stage timings this repo observes. The bins
    of the first registration win; re-registering with different bins
    raises [Invalid_argument]. *)

val observe : histogram -> float -> unit

(** {2 Snapshots} *)

type histo_snapshot = {
  bins : float array;  (** ascending upper edges *)
  counts : int array;  (** per-bin counts, length [bins + 1] *)
  sum : float;
  count : int;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * histo_snapshot) list;
}

val snapshot : unit -> snapshot
(** Point-in-time copy of every registered metric (readable even while
    disabled — values simply stop moving). *)

val snapshot_json : snapshot -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {"bins", "counts", "sum", "count"}}}]. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable table: counters, gauges, then histograms with
    count/mean/max-bin summaries. *)

val write : string -> unit
(** Current {!snapshot} as JSON to a file. *)
