(** Domain-safe metrics registry: named counters, gauges and fixed-bin
    histograms.

    Handles are registered once by name (typically at module load or
    stage setup) and bumped from anywhere — including
    {!Mbr_util.Pool} worker domains: every mutation is a single
    [Atomic] operation (a CAS loop for float accumulation), so
    concurrent bumps lose no increments and a {!snapshot} taken between
    fan-outs is deterministic for a deterministic workload regardless
    of the jobs setting (property-tested).

    The registry is {e disabled by default}: a disabled bump is one
    atomic load and nothing else, keeping instrumented hot paths
    (per-block solves, STA worklists, simplex pivots) clean when nobody
    is looking. Registration itself is always live so handles can be
    created eagerly at the top of instrumented modules.

    Histogram bins follow the [Mbr_util.Stats.histogram] convention:
    [bins] holds ascending upper edges, an observation lands in the
    first bin whose edge it does not exceed, and one extra overflow bin
    catches the rest — so [counts] has [length bins + 1] entries. *)

type counter

type gauge

type histogram

val enable : unit -> unit

val disable : unit -> unit

val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero every value; registrations (names, bins, handles) survive. *)

val counter : ?labels:(string * string) list -> string -> counter
(** Register (or retrieve — registration is idempotent) the named
    counter. Raises [Invalid_argument] when the name is already bound
    to a different metric kind.

    [labels] makes this a {e labeled series}: the registry key becomes
    the canonical form [name{k="v",...}] (labels sorted by key, values
    escaped as in the Prometheus text format), so
    [counter ~labels:[("session","a")] "svc.requests"] and the same
    with [("session","b")] are two independent series that appear as
    two entries in every {!snapshot}. Consumers that want the
    structure back use {!split_series}. *)

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

val gauge : ?labels:(string * string) list -> string -> gauge

val set : gauge -> float -> unit

val histogram :
  ?bins:float array -> ?labels:(string * string) list -> string -> histogram
(** [bins] defaults to a log-spaced seconds scale (0.1 ms .. 3 s)
    suitable for the solve/stage timings this repo observes. The bins
    of the first registration win; re-registering with different bins
    raises [Invalid_argument]. *)

val observe : histogram -> float -> unit

(** {2 Snapshots} *)

type histo_snapshot = {
  bins : float array;  (** ascending upper edges *)
  counts : int array;  (** per-bin counts, length [bins + 1] *)
  sum : float;
  count : int;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * histo_snapshot) list;
}

val snapshot : unit -> snapshot
(** Point-in-time copy of every registered metric (readable even while
    disabled — values simply stop moving). *)

val snapshot_json : snapshot -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {"bins", "counts", "sum", "count"}}}]. *)

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Inverse of {!snapshot_json} (missing sections read as empty; the
    result is re-sorted by name). This is what remote consumers — the
    [telemetry] verb's clients, [tools/prom_export] — use to get a
    first-class snapshot back from the wire. *)

val series_name : string -> (string * string) list -> string
(** Canonical registry key for [name] under [labels] — [name] itself
    when [labels] is empty. *)

val split_series : string -> string * (string * string) list
(** Parse a snapshot key back into (base name, labels). Total: a key
    that is not in canonical labeled form comes back as
    [(key, \[\])]. Inverse of {!series_name} for well-formed keys. *)

val quantile : histo_snapshot -> float -> float
(** [quantile h q] estimates the [q]-quantile (clamped to [0,1]) of
    the observations by linear interpolation inside the bin where the
    target rank falls, taking 0 as the lower edge of the first bin.
    Ranks landing in the overflow bin report the last finite edge (a
    lower bound). 0 when the histogram is empty. *)

(** Pure functions over snapshots: the delta/merge algebra behind the
    [telemetry] verb's cursor protocol. For snapshots [s1] taken
    before [s2] of the same registry,
    [apply ~base:s1 (diff ~base:s1 s2) = s2] (property-tested). *)
module Snapshot : sig
  type t = snapshot

  val diff : base:t -> t -> t
  (** Per-series change from [base] to the newer snapshot: counters
      and histograms subtract (series absent from [base] pass through
      whole), gauges report the newer value. Series absent from the
      newer snapshot are dropped — the registry only grows, so this
      only happens across a {!reset}. *)

  val apply : base:t -> t -> t
  (** Re-play a {!diff} onto [base]: counters/histograms add, gauges
      take the delta's value; series only in one side pass through. *)
end

val pp : Format.formatter -> snapshot -> unit
(** Human-readable table: counters, gauges, then histograms with
    count/mean/max-bin summaries. *)

val write : string -> unit
(** Current {!snapshot} as JSON to a file. *)
