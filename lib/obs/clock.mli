(** The one clock of the telemetry layer.

    Monotonic (CLOCK_MONOTONIC through bechamel's no-alloc stub — mtime
    is not available offline), with an arbitrary origin fixed at module
    load. Every duration in the repo — flow stage times, per-block
    solve times, trace event timestamps — is a difference of reads of
    this clock, so the numbers can no longer drift apart the way three
    independent [Unix.gettimeofday] call sites could (wall-clock steps,
    NTP slew). *)

val now_ns : unit -> int64
(** Raw monotonic nanoseconds since the (arbitrary) origin. *)

val now_s : unit -> float
(** Monotonic seconds since the origin. Only differences are
    meaningful. *)

val now_us : unit -> float
(** Monotonic microseconds since the origin — the unit of Chrome
    [trace_event] timestamps. *)
