(* Periodic background sampler: publishes process vitals (GC, RSS)
   as gauges and optionally dumps a Prometheus rendering of the whole
   registry to a file, atomically (write tmp + rename), every period.

   A systhread, not a domain: sampling is a handful of syscalls and
   atomic stores per tick, so it needs concurrency, not parallelism,
   and must not occupy one of the flow's worker domains. *)

let m_ticks = Metrics.counter "obs.sampler_ticks"

let g_major_words = Metrics.gauge "gc.major_words"

let g_compactions = Metrics.gauge "gc.compactions"

let g_minor_collections = Metrics.gauge "gc.minor_collections"

let g_major_collections = Metrics.gauge "gc.major_collections"

let g_heap_mb = Metrics.gauge "gc.heap_mb"

let g_rss_mb = Metrics.gauge "rss.mb"

let sample ?extra () =
  let st = Gc.quick_stat () in
  Metrics.set g_major_words st.Gc.major_words;
  Metrics.set g_compactions (float_of_int st.Gc.compactions);
  Metrics.set g_minor_collections (float_of_int st.Gc.minor_collections);
  Metrics.set g_major_collections (float_of_int st.Gc.major_collections);
  Metrics.set g_heap_mb
    (float_of_int st.Gc.heap_words
    *. float_of_int (Sys.word_size / 8)
    /. 1048576.0);
  (match Rss.current_mb () with
  | Some mb -> Metrics.set g_rss_mb mb
  | None -> ());
  (match extra with
  | Some f -> ( try f () with _ -> ())
  | None -> ());
  Metrics.incr m_ticks

let dump_prom path =
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out tmp in
    output_string oc (Prom.render (Metrics.snapshot ()));
    close_out oc;
    Sys.rename tmp path
  with Sys_error _ -> ()

type t = { s_stop : bool Atomic.t; s_thread : Thread.t }

let start ?(period_s = 1.0) ?prom_file ?extra () =
  let period_s = Float.max 0.01 period_s in
  let s_stop = Atomic.make false in
  let tick () =
    sample ?extra ();
    Option.iter dump_prom prom_file
  in
  let s_thread =
    Thread.create
      (fun () ->
        tick ();
        while not (Atomic.get s_stop) do
          (* sleep in short slices so [stop] is prompt *)
          let slept = ref 0.0 in
          while (not (Atomic.get s_stop)) && !slept < period_s do
            let d = Float.min 0.05 (period_s -. !slept) in
            Thread.delay d;
            slept := !slept +. d
          done;
          tick ()
        done)
      ()
  in
  { s_stop; s_thread }

let stop t =
  Atomic.set t.s_stop true;
  Thread.join t.s_thread
