(** Periodic background sampler for process vitals.

    Every period the sampler publishes GC statistics
    ([gc.major_words], [gc.compactions], [gc.minor_collections],
    [gc.major_collections], [gc.heap_mb]), live RSS ([rss.mb], Linux
    only), bumps [obs.sampler_ticks], runs the caller's [extra] hook
    (where a server publishes executor queue depth and per-session
    gauges), and — when [prom_file] is set — dumps the whole registry
    in Prometheus text format, atomically (tmp file + [rename], so a
    scraper's file collector never reads a torn write).

    The sampler is a systhread: it costs no worker domain, and the
    values it stores are ordinary {!Metrics} gauges, so everything it
    publishes rides the same snapshot/delta/exposition machinery as
    the rest of the registry. *)

type t

val sample : ?extra:(unit -> unit) -> unit -> unit
(** One synchronous sampling pass (what the background thread runs
    per tick). Exposed so short-lived processes can publish vitals
    without starting a thread. Exceptions from [extra] are
    swallowed. *)

val dump_prom : string -> unit
(** Render the current registry with {!Prom.render} and atomically
    replace the file. Write errors are swallowed (telemetry must never
    take the server down). *)

val start :
  ?period_s:float -> ?prom_file:string -> ?extra:(unit -> unit) -> unit -> t
(** Launch the sampler thread; [period_s] defaults to 1.0 (clamped to
    ≥ 10 ms). The first tick runs immediately, so even a short-lived
    process gets one sample and one exposition dump. *)

val stop : t -> unit
(** Signal the thread and join it (bounded by one sleep slice,
    ~50 ms). A final tick has always run — [stop] after [start] never
    leaves a stale [prom_file] behind. *)
