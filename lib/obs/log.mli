(** One [Logs] reporter setup for every frontend.

    [bin/mbrc] and [bench/main] previously each had to arrange their
    own reporter (and mostly didn't, silently dropping the library's
    [Logs.warn] messages); both now call {!setup}, and `mbrc` threads a
    [--log-level] flag through its shared argument block. *)

val setup : ?level:Logs.level option -> unit -> unit
(** Install an [Fmt]-based reporter on [stderr] and set the global
    level (default [Some Warning]). [Some Debug] shows everything;
    [None] silences all logging. Idempotent (re-running resets the
    timestamp origin).

    Each line is prefixed with [\[ssss.mmm dN\]] — monotonic seconds
    since [setup] (the tracer's clock, so log lines correlate with
    trace spans) and the emitting domain's id. *)

val level_of_string : string -> (Logs.level option, string) result
(** [Logs.level_of_string] plus the spellings ["quiet"], ["none"] and
    ["off"] for [None]. *)
