module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Estimator = Mbr_route.Estimator
module Synth = Mbr_cts.Synth
module Engine = Mbr_sta.Engine

type config = {
  vdd : float;
  clock_period : float;
  data_activity : float;
  wire_cap : float;
}

let config_of_sta (sta : Engine.config) =
  {
    vdd = 0.9;
    clock_period = sta.Engine.clock_period;
    data_activity = 0.25;
    wire_cap = sta.Engine.wire_cap;
  }

type report = {
  clock_power : float;
  signal_power : float;
  leakage_power : float;
  total : float;
  clock_fraction : float;
}

(* P[µW] = 1000 * C[fF] * Vdd^2 / period[ps] * activity:
   1 fF*V^2/ps = 1 mW = 1000 µW. *)
let dynamic_uw cfg ~cap ~activity =
  1000.0 *. cap *. cfg.vdd *. cfg.vdd *. activity /. cfg.clock_period

let estimate ?config ?cts pl =
  let cfg =
    match config with
    | Some c -> c
    | None -> config_of_sta Engine.default_config
  in
  let dsg = Placement.design pl in
  let cts =
    match cts with Some c -> c | None -> Synth.synthesize pl
  in
  let clock_power = dynamic_uw cfg ~cap:cts.Synth.total_cap ~activity:1.0 in
  let signal_cap = ref 0.0 in
  for nid = 0 to Design.n_nets dsg - 1 do
    let n = Design.net dsg nid in
    if (not n.Types.n_is_clock) && Design.driver dsg nid <> None then begin
      let pin_caps =
        List.fold_left
          (fun acc pid -> acc +. Design.pin_cap dsg pid)
          0.0 (Design.sinks dsg nid)
      in
      signal_cap := !signal_cap +. pin_caps +. (cfg.wire_cap *. Estimator.net_hpwl pl nid)
    end
  done;
  let signal_power = dynamic_uw cfg ~cap:!signal_cap ~activity:cfg.data_activity in
  let leakage_power =
    List.fold_left
      (fun acc cid ->
        match (Design.cell dsg cid).Types.c_kind with
        | Types.Register a -> acc +. a.Types.lib_cell.Mbr_liberty.Cell.leakage
        | Types.Comb _ | Types.Clock_root | Types.Clock_gate _ | Types.Port _ ->
          acc)
      0.0 (Design.live_cells dsg)
    /. 1000.0
  in
  let dynamic = clock_power +. signal_power in
  {
    clock_power;
    signal_power;
    leakage_power;
    total = dynamic +. leakage_power;
    clock_fraction = (if dynamic > 0.0 then clock_power /. dynamic else 0.0);
  }
