(** Register compatibility (paper §2) and compatibility-graph
    construction (§3).

    A register is {e composable} when the designer has not pinned it
    (fixed / size-only) and its functional class has a strictly larger
    MBR in the library. Two composable registers are compatible — an
    edge of graph G — when all four checks pass:

    - {b functional}: same class, same clock net (hence same gating
      cone), same gating enable, same reset net;
    - {b scan}: same scan partition; ordered-section members only with
      members of the same section (their relative order survives inside
      one MBR's internal chain);
    - {b placement}: their timing-feasible regions overlap. A region is
      built per D/Q pin and intersected: a pin with positive slack may
      move up to slack/[delay_per_um] beyond the bounding box of its
      net's other pins; a violating pin restricts the cell to that
      bounding box itself (movement inside a net's bbox does not
      lengthen it to first order — the paper's rule for negative
      slack). The result is capped at [max_dist] displacement, and the
      cell's own footprint is always feasible, so immovable violators
      still participate as merge {e targets};
    - {b timing}: similar D slacks and similar Q slacks, and no
      opposite useful-skew pressure (one register wanting a later clock
      while the other needs an earlier one). *)

type config = {
  delay_per_um : float;
      (** ps of path-delay change per µm of movement (slack→distance) *)
  slack_margin : float;  (** ps of slack held back before converting *)
  max_dist : float;  (** µm cap on the feasible-region expansion *)
  slack_diff_limit : float;
      (** max |Δ D-slack| and |Δ Q-slack| between merge partners, ps *)
  viol_tolerance : float;
      (** ps of delay degradation tolerated on any path during
          composition — recovered by the useful-skew and sizing steps
          that immediately follow (Fig. 4) *)
}

val default_config : config

type reg_info = {
  cid : Mbr_netlist.Types.cell_id;
  bits : int;
  func_class : string;
  clock : Mbr_netlist.Types.net_id;
  enable : string option;
  reset : Mbr_netlist.Types.net_id option;
  scan : Mbr_netlist.Types.scan_info option;
  drive_res : float;
  d_slack : float;  (** worst slack over connected D pins *)
  q_slack : float;  (** worst slack over connected Q pins *)
  footprint : Mbr_geom.Rect.t;
  feasible : Mbr_geom.Rect.t;
  center : Mbr_geom.Point.t;
}

val is_composable :
  Mbr_netlist.Design.t ->
  Mbr_liberty.Library.t ->
  Mbr_netlist.Types.cell_id ->
  bool
(** Not fixed/size-only, and the library has a wider MBR in its class. *)

val reg_info :
  config -> Mbr_sta.Engine.t -> Mbr_netlist.Types.cell_id -> reg_info
(** Snapshot of the compatibility-relevant state of one placed
    register; slacks come from the engine's last analysis. Raises
    [Invalid_argument] on non-registers, [Not_found] when unplaced. *)

val functionally_compatible : reg_info -> reg_info -> bool

val scan_compatible : reg_info -> reg_info -> bool

val placement_compatible : reg_info -> reg_info -> bool

val timing_compatible : config -> reg_info -> reg_info -> bool

val compatible : config -> reg_info -> reg_info -> bool
(** Conjunction of the four checks. *)

type graph = {
  adj : Mbr_graph.Csr.t;  (** node i describes [infos.(i)] *)
  infos : reg_info array;  (** the composable registers *)
}
(** Frozen {e during allocation fan-out}, revised only {e between}
    fan-outs: neither the adjacency nor [infos] is written while the
    allocate stage shares the graph read-only across worker domains
    (the invariant documented in {!Allocate}). Between fan-outs an ECO
    session replaces the graph wholesale via {!refresh} — revision
    produces a fresh value, it never mutates one a worker might still
    hold. *)

val build_graph :
  ?config:config ->
  Mbr_sta.Engine.t ->
  Mbr_liberty.Library.t ->
  graph
(** G over the composable, placed registers. Pair checks are limited to
    spatial-hash neighbourhoods — two feasible regions can only overlap
    when the footprint centers are within [2 * max_dist] plus the
    largest footprint dimension per axis, which sizes the hash bucket —
    so construction is near-linear for clustered designs. *)

type refresh_stats = {
  nodes_total : int;  (** composable registers in the new graph *)
  nodes_dirty : int;  (** nodes whose snapshot changed (or are new) *)
  pairs_checked : int;  (** [compatible] evaluations actually run *)
  edges_copied : int;  (** edges carried over from the previous graph *)
}

val refresh :
  ?config:config ->
  graph ->
  Mbr_sta.Engine.t ->
  Mbr_liberty.Library.t ->
  graph * refresh_stats
(** Incremental {!build_graph}: recomputes the (cheap) per-register
    snapshots, then re-runs the four pair checks only for pairs
    involving a register whose snapshot differs from the previous
    graph's — removed/retyped/newly-fixed registers drop out with their
    edges, new composable ones are checked against their spatial
    neighbourhood, and clean-clean pair verdicts are copied. When the
    composable register set is unchanged (the common pure-move ECO),
    pair checks run only over the spatial neighbourhoods of the dirty
    registers and the new adjacency is assembled by {!Mbr_graph.Csr}
    row rewriting — untouched rows are blitted over as raw slices.
    Returns a new graph (the input is not mutated) that is structurally
    identical to what {!build_graph} would build from scratch on the
    same state: same node order (registers in ascending cell id), same
    edge set (property-tested). [config] must match the one the
    previous graph was built with. *)
