(** Candidate-MBR enumeration (§3): the valid cliques of a partition
    block of the compatibility graph.

    All cliques are enumerated by ordered DFS (equivalent to
    sub-clique enumeration of the Bron–Kerbosch maximal cliques, but
    with the validity prunes applied {e during} the walk):

    - total bits never exceed the widest library MBR of the class;
    - the running intersection of feasible regions stays non-empty
      (there must be somewhere to put the merged MBR);
    - extension is ordered by distance from the running centroid, and a
      per-block candidate cap keeps dense blocks tractable.

    A clique is a valid candidate when its bit total matches a library
    width exactly, or — when incomplete MBRs are enabled — rounds up to
    the next width while passing the paper's two area rules (area/bit
    below the members' average, and total area within the configured
    overhead of the replaced area). Singletons ("keep this register")
    are always valid and cost exactly 1. *)

type config = {
  allow_incomplete : bool;
  incomplete_area_overhead : float;
      (** e.g. 0.05: incomplete cell area <= (1+5%) × replaced area (§5) *)
  max_per_block : int;  (** enumeration cap (default 6_000) *)
  use_weights : bool;
      (** false = ablation: every merge weighs 1/bits, blockers ignored *)
}

val default_config : config

type t = {
  members : int list;  (** graph-node indices, ascending *)
  member_cids : Mbr_netlist.Types.cell_id list;
  bits : int;  (** connected bits (the paper's b_i) *)
  target_bits : int;  (** library width the candidate maps to *)
  incomplete : bool;
  weight : float;
  region : Mbr_geom.Rect.t;  (** common timing-feasible region *)
  func_class : string;
}

val is_singleton : t -> bool

val iter :
  config ->
  Compat.graph ->
  block:int list ->
  lib:Mbr_liberty.Library.t ->
  blocker_index:Mbr_netlist.Types.cell_id Spatial.t ->
  (t -> unit) ->
  unit
(** Streams the candidates of one partition block (node ids refer to
    the full graph) to the callback, each exactly once, without
    materializing the set — peak memory is the per-block dedup table,
    not the candidate list. {!enumerate} is this with a list
    accumulator; consumers that fold candidates into their own
    structures (the ILP problem builder) should use [iter] directly.

    {b Domain safety:} [iter] only reads [graph], [lib] and
    [blocker_index]; all of its working state (the DFS frontier, seen
    sets, tiling cover tables) is allocated per call. Concurrent calls
    from multiple domains on the same inputs are safe as long as nobody
    mutates those inputs — the read-only sharing invariant documented
    in {!Allocate}. *)

val enumerate :
  config ->
  Compat.graph ->
  block:int list ->
  lib:Mbr_liberty.Library.t ->
  blocker_index:Mbr_netlist.Types.cell_id Spatial.t ->
  t list
(** Materialized {!iter}, in emission order; weights of infinity are
    filtered out. *)
