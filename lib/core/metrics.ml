module Design = Mbr_netlist.Design
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module Timing_view = Mbr_sta.Timing_view
module Synth = Mbr_cts.Synth
module Estimator = Mbr_route.Estimator
module Stats = Mbr_util.Stats

type t = {
  cells : int;
  area : float;
  clk_wl : float;
  other_wl : float;
  total_regs : int;
  comp_regs : int;
  clk_bufs : int;
  clk_cap : float;
  clk_power : float;
  clk_power_frac : float;
  tns : float;
  wns : float;
  failing : int;
  endpoints : int;
  ovfl : int;
  utilization : float;
  corners : (string * float * float) list;
}

let collect ?route_config ?cts_config eng lib =
  let pl = Engine.placement eng in
  let dsg = Placement.design pl in
  let tv = Timing_view.of_engine eng in
  Engine.refresh eng;
  let cts = Synth.synthesize ?config:cts_config pl in
  let route = Estimator.estimate ?config:route_config pl in
  let regs = Design.registers dsg in
  let comp_regs =
    List.length (List.filter (Compat.is_composable dsg lib) regs)
  in
  let buf_area =
    float_of_int cts.Synth.n_buffers
    *. (match cts_config with
       | Some c -> c.Synth.buf_area
       | None -> Synth.default_config.Synth.buf_area)
  in
  let power =
    Power.estimate ~config:(Power.config_of_sta (Engine.config eng)) ~cts pl
  in
  {
    cells = Design.n_cells dsg;
    area = Design.total_area dsg +. buf_area;
    clk_wl = cts.Synth.wirelength;
    other_wl = route.Estimator.signal_wl;
    total_regs = List.length regs;
    comp_regs;
    clk_bufs = cts.Synth.n_buffers;
    clk_cap = cts.Synth.total_cap;
    clk_power = power.Power.clock_power;
    clk_power_frac = power.Power.clock_fraction;
    tns = Timing_view.tns tv;
    wns = Timing_view.wns tv;
    failing = Timing_view.failing_endpoints tv;
    endpoints = Timing_view.n_endpoints tv;
    ovfl = route.Estimator.overflow_edges;
    utilization = Placement.utilization pl;
    corners = Timing_view.per_corner tv;
  }

let pp_row ppf m =
  Format.fprintf ppf
    "cells=%d area=%.0f clkWL=%.0f sigWL=%.0f regs=%d comp=%d bufs=%d \
     clkCap=%.1f clkPwr=%.1fuW(%.0f%%) tns=%.1f wns=%.1f fail=%d/%d ovfl=%d \
     util=%.2f"
    m.cells m.area m.clk_wl m.other_wl m.total_regs m.comp_regs m.clk_bufs
    m.clk_cap m.clk_power
    (100.0 *. m.clk_power_frac)
    m.tns m.wns m.failing m.endpoints m.ovfl m.utilization

let save_pct ~before ~after =
  let f = float_of_int in
  [
    ("area", Stats.pct_change before.area after.area);
    ("clk_wl", Stats.pct_change before.clk_wl after.clk_wl);
    ("other_wl", Stats.pct_change before.other_wl after.other_wl);
    ("total_regs", Stats.pct_change (f before.total_regs) (f after.total_regs));
    ("comp_regs", Stats.pct_change (f before.comp_regs) (f after.comp_regs));
    ("clk_bufs", Stats.pct_change (f before.clk_bufs) (f after.clk_bufs));
    ("clk_cap", Stats.pct_change before.clk_cap after.clk_cap);
    ("clk_power", Stats.pct_change before.clk_power after.clk_power);
    ("tns", Stats.pct_change before.tns after.tns);
    ("failing", Stats.pct_change (f before.failing) (f after.failing));
    ("ovfl", Stats.pct_change (f before.ovfl) (f after.ovfl));
  ]
