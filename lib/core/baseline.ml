module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Csr = Mbr_graph.Csr
module Bk = Mbr_graph.Bron_kerbosch
module Library = Mbr_liberty.Library

(* Pack clique members nearest-first around the centroid until adding
   another would exceed the widest library cell or empty the common
   region, then shrink to the largest complete width. *)
let pack infos lib members =
  match members with
  | [] -> None
  | seed :: _ ->
    let func_class = (infos.(seed) : Compat.reg_info).Compat.func_class in
    let widths = Library.widths lib ~func_class in
    let max_width = Library.max_width lib ~func_class in
    let centroid =
      Point.centroid (List.map (fun i -> infos.(i).Compat.center) members)
    in
    let ordered =
      List.sort
        (fun a b ->
          compare
            (Point.manhattan centroid infos.(a).Compat.center)
            (Point.manhattan centroid infos.(b).Compat.center))
        members
    in
    let rec grow acc bits region = function
      | [] -> List.rev acc
      | v :: rest ->
        let b = infos.(v).Compat.bits in
        if bits + b > max_width then List.rev acc
        else begin
          match Rect.inter region infos.(v).Compat.feasible with
          | Some region' -> grow (v :: acc) (bits + b) region' rest
          | None -> grow acc bits region rest
        end
    in
    let packed = grow [] 0 (Rect.make ~lx:neg_infinity ~ly:neg_infinity ~hx:infinity ~hy:infinity) ordered in
    (* shrink from the back until the bit total matches a library width *)
    let rec shrink group =
      let bits = List.fold_left (fun acc i -> acc + infos.(i).Compat.bits) 0 group in
      if List.mem bits widths then group
      else
        match List.rev group with
        | [] | [ _ ] -> []
        | _ :: kept_rev -> shrink (List.rev kept_rev)
    in
    (match shrink packed with
    | [] | [ _ ] -> None
    | group -> Some group)

let solve_block graph ~block ~lib =
  let infos = graph.Compat.infos in
  let live = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.replace live v ()) block;
  let groups = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let nodes = Array.of_list (List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) live [])) in
    if Array.length nodes < 2 then continue_ := false
    else begin
      let sub = Csr.induced_ugraph graph.Compat.adj nodes in
      let cliques = Bk.maximal_cliques sub in
      let bits_of c =
        List.fold_left (fun acc k -> acc + infos.(nodes.(k)).Compat.bits) 0 c
      in
      let best =
        List.fold_left
          (fun acc c ->
            match acc with
            | Some b when bits_of b >= bits_of c -> acc
            | Some _ | None -> Some c)
          None cliques
      in
      match best with
      | None -> continue_ := false
      | Some clique ->
        let members = List.map (fun k -> nodes.(k)) clique in
        (match pack infos lib members with
        | Some group ->
          groups := group :: !groups;
          List.iter (fun v -> Hashtbl.remove live v) group
        | None ->
          (* nothing mergeable in the biggest clique: retire its seed so
             the loop makes progress *)
          (match members with
          | v :: _ -> Hashtbl.remove live v
          | [] -> continue_ := false))
    end
  done;
  List.rev !groups
