module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module Timing_view = Mbr_sta.Timing_view
module Library = Mbr_liberty.Library
module Cell_lib = Mbr_liberty.Cell

type config = { margin : float }

let default_config = { margin = 20.0 }

let worst_q_load eng dsg cid =
  List.fold_left
    (fun acc pid ->
      let p = Design.pin dsg pid in
      match p.Types.p_kind with
      | Types.Pin_q _ -> Float.max acc (Engine.output_load eng pid)
      | Types.Pin_d _ | Types.Pin_clock | Types.Pin_reset | Types.Pin_scan_in _
      | Types.Pin_scan_out _ | Types.Pin_scan_enable | Types.Pin_in _
      | Types.Pin_out | Types.Pin_port ->
        acc)
    0.0 (Design.pins_of dsg cid)

let downsize ?(config = default_config) eng lib cids =
  let pl = Engine.placement eng in
  let dsg = Placement.design pl in
  (* downsizing must leave margin in every corner, so the budget reads
     worst-corner slack *)
  let tv = Timing_view.of_engine eng in
  Engine.refresh eng;
  let swapped = ref 0 in
  List.iter
    (fun cid ->
      let a = Design.reg_attrs dsg cid in
      let cur = a.Types.lib_cell in
      let s_d = Timing_view.reg_d_slack tv cid in
      let s_q = Timing_view.reg_q_slack tv cid in
      let slack = Float.min s_d s_q in
      if Float.is_finite slack && slack > config.margin then begin
        let budget = slack -. config.margin in
        let load = worst_q_load eng dsg cid in
        let alternatives =
          List.filter
            (fun (c : Cell_lib.t) ->
              c.Cell_lib.scan = cur.Cell_lib.scan
              && c.Cell_lib.name <> cur.Cell_lib.name
              && c.Cell_lib.drive_res >= cur.Cell_lib.drive_res
              && (c.Cell_lib.drive_res -. cur.Cell_lib.drive_res) *. load
                 <= budget
              && (c.Cell_lib.clock_pin_cap < cur.Cell_lib.clock_pin_cap
                 || c.Cell_lib.area < cur.Cell_lib.area))
            (Library.cells_of lib ~func_class:cur.Cell_lib.func_class
               ~bits:cur.Cell_lib.bits)
        in
        (* weakest acceptable drive = largest delay budget spent =
           smallest area/cap *)
        let best =
          List.fold_left
            (fun acc (c : Cell_lib.t) ->
              match acc with
              | Some (b : Cell_lib.t)
                when (b.Cell_lib.area, b.Cell_lib.clock_pin_cap)
                     <= (c.Cell_lib.area, c.Cell_lib.clock_pin_cap) ->
                acc
              | Some _ | None -> Some c)
            None alternatives
        in
        match best with
        | Some c ->
          Design.retype_register dsg cid c;
          incr swapped
        | None -> ()
      end)
    cids;
  !swapped
