module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Placement = Mbr_place.Placement
module Legalizer = Mbr_place.Legalizer
module Engine = Mbr_sta.Engine
module Skew = Mbr_sta.Skew
module Cell_lib = Mbr_liberty.Cell

type options = {
  compat : Compat.config;
  allocate : Allocate.config;
  mode : [ `Ilp | `Greedy_share | `Clique ];
  jobs : int option;
  skew : Skew.config option;
  resize : Resize.config option;
  decompose : bool;
  corners : Mbr_sta.Corner.t array;
  recover : int;
  route_config : Mbr_route.Estimator.config option;
  cts_config : Mbr_cts.Synth.config option;
}

let default_options =
  {
    compat = Compat.default_config;
    allocate = Allocate.default_config;
    mode = `Ilp;
    jobs = None;
    skew = Some Skew.default_config;
    resize = Some Resize.default_config;
    decompose = false;
    corners = Mbr_sta.Corner.default;
    recover = 0;
    route_config = None;
    cts_config = None;
  }

type result = {
  before : Metrics.t;
  after : Metrics.t;
  n_split : int;
  scan_chain_wl : float;
  merge_displacement : float;
  n_merges : int;
  n_regs_merged : int;
  n_incomplete : int;
  n_resized : int;
  ilp_cost : float;
  n_blocks : int;
  n_candidates : int;
  all_optimal : bool;
  alloc_jobs : int;
  alloc_block_times : Allocate.time_stats;
  skew_report : Skew.report option;
  new_mbrs : Mbr_netlist.Types.cell_id list;
  runtime_s : float;
  stage_times : (string * float) list;
  sta_full_builds : int;
  sta_refreshes : int;
  eco_blocks_resolved : int;
  eco_blocks_reused : int;
  recover_rounds : int;
  recover_splits : int;
  cancelled : bool;
}

type progress = {
  pr_stage : string;
  pr_round : int;
  pr_blocks_resolved : int;
  pr_blocks_total : int;
  pr_wns : float;
}

(* Everything the stage functions share: the run's inputs, the one STA
   engine, the stage-time accumulator (reversed; execution order is
   restored when the result is assembled), and the progress state the
   notify callback reports — updated by the stages that learn
   something (allocate: block counts; the metrics passes: WNS). *)
type context = {
  options : options;
  placement : Placement.t;
  library : Mbr_liberty.Library.t;
  eng : Engine.t;
  mutable stage_times_rev : (string * float) list;
  notify : (progress -> unit) option;
  mutable pg_round : int;
  mutable pg_resolved : int;
  mutable pg_total : int;
  mutable pg_wns : float;  (* nan until a metrics pass has run *)
}

(* Every stage is a trace span; the per-stage duration recorded in
   [stage_times] is the span's own (monotonic) duration, so the result
   and an exported Chrome trace can never disagree. Entering a stage
   is also the progress heartbeat: the callback fires before the
   stage's work, so a long allocate is announced when it starts, not
   when it ends. *)
let stage ctx name f =
  (match ctx.notify with
  | Some cb ->
    cb
      {
        pr_stage = name;
        pr_round = ctx.pg_round;
        pr_blocks_resolved = ctx.pg_resolved;
        pr_blocks_total = ctx.pg_total;
        pr_wns = ctx.pg_wns;
      }
  | None -> ());
  let r, dt = Mbr_obs.Trace.timed_span ~name f in
  ctx.stage_times_rev <- (name, dt) :: ctx.stage_times_rev;
  r

let m_recomposes = Mbr_obs.Metrics.counter "flow.recomposes"

let m_recover_rounds = Mbr_obs.Metrics.counter "flow.recover_rounds"

(* The effective allocate configuration: [options.jobs] (the frontends'
   [-j]) overrides the config's own [jobs] field when given. *)
let allocate_config options =
  match options.jobs with
  | None -> options.allocate
  | Some j -> { options.allocate with Allocate.jobs = max 1 j }

(* Find a legal spot for the mapped cell, preferring the LP optimum
   inside the feasible region, then widening the search. *)
let legalize_merge occ ~(cell : Cell_lib.t) ~region ~desired =
  let w = cell.Cell_lib.width and h = cell.Cell_lib.height in
  let grown = Rect.expand region (Float.max w h) in
  let try_region r = Legalizer.Occupancy.find_nearest occ ?region:r ~w desired in
  match try_region (Some region) with
  | Some p -> Some p
  | None -> (
    match try_region (Some grown) with
    | Some p -> Some p
    | None -> try_region None)

(* ---- stages, in Fig. 4 order ---- *)

let collect_metrics ctx =
  Metrics.collect ?route_config:ctx.options.route_config
    ?cts_config:ctx.options.cts_config ctx.eng ctx.library


(* optional pre-pass: open up max-width MBRs for recomposition *)
let stage_decompose ctx =
  stage ctx "decompose" (fun () ->
      if ctx.options.decompose then begin
        let report = Decompose.split_max_width ctx.placement ctx.library in
        Engine.refresh ctx.eng;
        report.Decompose.n_split
      end
      else 0)

type merge_outcome = {
  mo_new_mbrs : Mbr_netlist.Types.cell_id list;  (** in creation order *)
  mo_n_incomplete : int;
  mo_n_regs_merged : int;
  mo_displacement : float;
}

(* Centers of the members that are actually placed; the merge loop
   needs them once for the displacement metric. *)
let placed_member_centers placement members =
  List.filter_map
    (fun cid ->
      if Placement.is_placed placement cid then
        Some (Placement.center placement cid)
      else None)
    members

let execute_one_merge ctx occ infos (c : Candidate.t) outcome =
  let placement = ctx.placement in
  let members = c.Candidate.member_cids in
  let member_centroid =
    match placed_member_centers placement members with
    | [] -> None
    | centers -> Some (Point.centroid centers)
  in
  match
    Mapping.for_members ctx.library infos ~members:c.Candidate.members
      ~target_bits:c.Candidate.target_bits
  with
  | None -> outcome (* no cell (cannot happen for enumerated candidates) *)
  | Some cell -> (
    (* free the members' sites first: the best MBR spot usually is
       where its registers were *)
    List.iter
      (fun cid ->
        if Placement.is_placed placement cid then
          Legalizer.Occupancy.remove occ (Placement.footprint placement cid))
      members;
    let assignment = Compose.bit_assignment placement members in
    let conns =
      Mbr_placer.conn_boxes placement ~cell ~assignment ~exclude:members
    in
    let desired, _ =
      Mbr_placer.optimal_corner ~cell ~conns ~region:c.Candidate.region
    in
    match legalize_merge occ ~cell ~region:c.Candidate.region ~desired with
    | Some corner ->
      let id =
        Compose.execute placement { Compose.member_cids = members; cell; corner }
      in
      Legalizer.Occupancy.add occ (Placement.footprint placement id);
      let displacement =
        match member_centroid with
        | Some old_center ->
          Point.manhattan old_center (Placement.center placement id)
        | None -> 0.0
      in
      {
        mo_new_mbrs = id :: outcome.mo_new_mbrs;
        mo_n_incomplete =
          (outcome.mo_n_incomplete + if c.Candidate.incomplete then 1 else 0);
        mo_n_regs_merged = outcome.mo_n_regs_merged + List.length members;
        mo_displacement = outcome.mo_displacement +. displacement;
      }
    | None ->
      (* nowhere to put it: abandon the merge, restore occupancy *)
      List.iter
        (fun cid ->
          if Placement.is_placed placement cid then
            Legalizer.Occupancy.add occ (Placement.footprint placement cid))
        members;
      outcome)

let stage_merge ctx graph (selection : Allocate.selection) =
  stage ctx "merge" (fun () ->
      let occ = Legalizer.Occupancy.of_placement ctx.placement in
      let infos = graph.Compat.infos in
      let outcome =
        List.fold_left
          (fun acc c -> execute_one_merge ctx occ infos c acc)
          {
            mo_new_mbrs = [];
            mo_n_incomplete = 0;
            mo_n_regs_merged = 0;
            mo_displacement = 0.0;
          }
          selection.Allocate.merges
      in
      { outcome with mo_new_mbrs = List.rev outcome.mo_new_mbrs })

(* Re-stitch the scan chains the composition broke: removed members
   leave dangling SI/SO hops, and new MBRs need threading (§2's scan
   rules guaranteed this stays possible). No-op without scan cells. *)
let stage_scan_restitch ctx =
  stage ctx "scan-restitch" (fun () -> Mbr_dft.Scan_stitch.stitch ctx.placement)

(* splice the merge/scan edits into the timing graph, then useful
   skew + sizing; skews live in the engine so they carry through *)
let stage_skew ctx ?cancel () =
  stage ctx "skew" (fun () ->
      match ctx.options.skew with
      | Some cfg ->
        let jobs = match ctx.options.jobs with Some j -> max 1 j | None -> 1 in
        Some (Skew.optimize ~config:cfg ~jobs ?cancel ctx.eng)
      | None ->
        Engine.refresh ctx.eng;
        None)

let stage_resize ctx new_mbrs =
  stage ctx "resize" (fun () ->
      match ctx.options.resize with
      | Some cfg -> Resize.downsize ~config:cfg ctx.eng ctx.library new_mbrs
      | None -> 0)

(* pin caps changed under resize: the final refresh inside the metrics
   pass absorbs the retypes *)
let stage_metrics_after ctx =
  stage ctx "metrics-after" (fun () -> collect_metrics ctx)

module Session = struct
  type s = {
    options : options;
    design : Design.t;
    placement : Placement.t;
    library : Mbr_liberty.Library.t;
    eng : Engine.t;
    cache : Allocate.cache;
    blocker_index : Mbr_netlist.Types.cell_id Spatial.t;
    blocker_pos : (Mbr_netlist.Types.cell_id, Point.t) Hashtbl.t;
        (** mirror of [blocker_index]'s current entry per register, so
            edits can be reconciled without a linear scan *)
    mutable graph : Compat.graph option;  (** last recompose's graph *)
    mutable blk_dsg_cursor : int;  (** design edits reconciled into the index *)
    mutable blk_pl_cursor : int;  (** placement moves reconciled *)
    mutable n_recomposes : int;
    mutable last_compat_stats : Compat.refresh_stats option;
    mutable last_after : (Metrics.t * int * int) option;
        (** previous recompose's "after" snapshot with the design and
            placement revisions it measured; the next "before" pass is
            this value verbatim when nothing moved in between *)
    owner : int Atomic.t;
        (** domain id currently holding the session, [-1] when unowned;
            the single-writer gate every recompose passes through *)
  }

  type t = s

  let create ?(options = default_options) ~design ~placement ~library
      ~sta_config () =
    if Placement.design placement != design then
      invalid_arg
        "Flow.Session.create: placement does not belong to the given design";
    (* The one full graph construction of the session: every stage of
       every recompose brings this same engine up to date through
       Engine.refresh, which consumes the design/placement edit logs
       instead of rebuilding. *)
    {
      options;
      design;
      placement;
      library;
      eng = Engine.build ~config:sta_config ~corners:options.corners placement;
      cache = Allocate.create_cache ();
      blocker_index = Spatial.create ();
      blocker_pos = Hashtbl.create 1024;
      graph = None;
      blk_dsg_cursor = 0;
      blk_pl_cursor = 0;
      n_recomposes = 0;
      last_compat_stats = None;
      last_after = None;
      owner = Atomic.make (-1);
    }

  let design s = s.design

  let placement s = s.placement

  let engine s = s.eng

  let recomposes s = s.n_recomposes

  let last_compat_stats s = s.last_compat_stats

  (* Swapping the corner set invalidates every timing-derived number;
     the engine re-analyzes lazily, but the cached "after" snapshot is
     keyed only on design/placement revisions and would otherwise be
     served stale by the next metrics-before pass. *)
  let set_corners s cs =
    Engine.set_corners s.eng cs;
    s.last_after <- None

  (* ---- ownership: the single-writer discipline ----

     A session is one mutable value (engine, graph, caches, cursors,
     edit-log positions) with no internal locking; correctness comes
     from at most one domain driving it at a time. The owner field
     makes that discipline explicit and checkable: acquisition is a
     CAS from -1 to the acquiring domain's id, so two domains can
     never both believe they hold the same session, and a session is
     movable — release on one domain, acquire on another, nothing in
     the state pins it to where it was created. *)

  let self_id () = (Domain.self () :> int)

  let try_acquire s =
    let me = self_id () in
    Atomic.get s.owner = me || Atomic.compare_and_set s.owner (-1) me

  let acquire s =
    if not (try_acquire s) then
      invalid_arg
        (Printf.sprintf
           "Flow.Session.acquire: session is owned by domain %d (self: %d)"
           (Atomic.get s.owner) (self_id ()))

  let release s =
    if not (Atomic.compare_and_set s.owner (self_id ()) (-1)) then
      invalid_arg "Flow.Session.release: session not owned by this domain"

  let owner_id s = match Atomic.get s.owner with -1 -> None | d -> Some d

  let live_register dsg cid =
    let c = Design.cell dsg cid in
    (not c.Mbr_netlist.Types.c_dead)
    &&
    match c.Mbr_netlist.Types.c_kind with
    | Mbr_netlist.Types.Register _ -> true
    | _ -> false

  (* Return the engine to the neutral clock tree: a from-scratch run
     starts with zero useful skew everywhere, so a recompose must too.
     Structural edits are absorbed first (the supported refresh path);
     zeroing then patches only the affected cones. Skew entries of
     registers an ECO removed are skipped — their pins detach from the
     timing graph and contribute to no endpoint. *)
  let stage_eco_reset ctx s =
    stage ctx "eco-reset" (fun () ->
        Engine.refresh s.eng;
        match
          List.filter_map
            (fun (cid, _) ->
              if live_register s.design cid then Some (cid, 0.0) else None)
            (Engine.skew_assignments s.eng)
        with
        | [] -> false
        | zeros ->
          Engine.update_skews s.eng zeros;
          true)

  (* The "before" snapshot only differs from the previous recompose's
     "after" snapshot if something happened in between: an ECO edit
     (design or placement revision moved) or a skew zeroing in
     eco-reset (timing columns shift). When neither did, the cached
     snapshot IS the measurement — the stage still runs (and appears in
     the trace) but costs nothing. *)
  let stage_metrics_before ctx s ~skews_zeroed =
    stage ctx "metrics-before" (fun () ->
        match s.last_after with
        | Some (m, drev, prev)
          when (not skews_zeroed)
               && drev = Design.revision s.design
               && prev = Placement.revision s.placement ->
          m
        | _ -> collect_metrics ctx)

  let stage_graph ctx s =
    stage ctx "compat-graph" (fun () ->
        match s.graph with
        | None ->
          let g = Compat.build_graph ~config:s.options.compat s.eng s.library in
          s.graph <- Some g;
          g
        | Some prev ->
          let g, stats =
            Compat.refresh ~config:s.options.compat prev s.eng s.library
          in
          s.graph <- Some g;
          s.last_compat_stats <- Some stats;
          g)

  (* The blocker population is every live placed register's center
     (§3.2 counts any register inside a test polygon). Instead of
     rebuilding the index per run, drain the edit logs from the
     session's cursors and touch only the registers they name; on the
     first recompose the cursors are 0, so the drain IS the full
     build. *)
  let stage_blocker_index ctx s =
    stage ctx "blocker-index" (fun () ->
        let dsg = s.design in
        let touched = Hashtbl.create 64 in
        List.iter
          (function
            | Design.Cell_added cid
            | Design.Cell_removed cid
            | Design.Cell_retyped cid ->
              Hashtbl.replace touched cid ()
            | Design.Net_changed _ -> ())
          (Design.edits_since dsg s.blk_dsg_cursor);
        List.iter
          (fun cid -> Hashtbl.replace touched cid ())
          (Placement.moves_since s.placement s.blk_pl_cursor);
        s.blk_dsg_cursor <- Design.revision dsg;
        s.blk_pl_cursor <- Placement.revision s.placement;
        Hashtbl.iter
          (fun cid () ->
            let now =
              if live_register dsg cid && Placement.is_placed s.placement cid
              then Some (Placement.center s.placement cid)
              else None
            in
            match (Hashtbl.find_opt s.blocker_pos cid, now) with
            | None, None -> ()
            | None, Some p ->
              Spatial.add s.blocker_index cid p;
              Hashtbl.replace s.blocker_pos cid p
            | Some p, None ->
              Spatial.remove s.blocker_index cid p;
              Hashtbl.remove s.blocker_pos cid
            | Some p, Some p' ->
              if not (Point.equal ~eps:0.0 p p') then begin
                Spatial.update s.blocker_index cid ~from:p ~to_:p';
                Hashtbl.replace s.blocker_pos cid p'
              end)
          touched)

  let stage_allocate ctx s ?cancel graph =
    stage ctx "allocate" (fun () ->
        Allocate.run_cached ~mode:s.options.mode
          ~config:(allocate_config s.options) ?cancel s.cache graph
          ~lib:s.library ~blocker_index:s.blocker_index)

  (* The whole pass runs under one ["flow.recompose"] span whose
     duration IS [runtime_s] — the stage spans nest inside it, so the
     exported trace accounts for the run's wall time with no second
     clock involved. *)
  (* One recovery round: decompose the victims (pinning the halves so
     they can never re-compose — that monotonicity is what bounds the
     loop), then re-enter the pipeline from the compat graph. The
     session's incrementality keeps each round regional: only blocks
     the splits dirtied are re-solved, only touched cones re-timed. *)
  let recover_round ctx s ?cancel ~round victims =
    fst
    @@ Mbr_obs.Trace.timed_span ~name:"flow.recover"
         ~args:
           [
             ("round", Mbr_obs.Trace.Int round);
             ("victims", Mbr_obs.Trace.Int (List.length victims));
           ]
    @@ fun () ->
    ctx.pg_round <- round;
    let split =
      stage ctx "decompose" (fun () ->
          let rep =
            Decompose.split_cells ~pin:true s.placement s.library victims
          in
          Engine.refresh s.eng;
          rep)
    in
    let graph = stage_graph ctx s in
    stage_blocker_index ctx s;
    let selection, cache_stats = stage_allocate ctx s ?cancel graph in
    ctx.pg_resolved <- ctx.pg_resolved + cache_stats.Allocate.blocks_resolved;
    ctx.pg_total <- ctx.pg_total + selection.Allocate.n_blocks;
    let merged = stage_merge ctx graph selection in
    let scan_report = stage_scan_restitch ctx in
    let skew_report = stage_skew ctx ?cancel () in
    let n_resized = stage_resize ctx merged.mo_new_mbrs in
    let after = stage_metrics_after ctx in
    ctx.pg_wns <- after.Metrics.wns;
    ( split,
      selection,
      cache_stats,
      merged,
      scan_report,
      skew_report,
      n_resized,
      after )

  let recompose ?cancel ?recover ?on_progress s =
    (* Single-writer gate. A caller that already holds the session
       keeps it; an unowned session is claimed for just this call
       (which is what keeps plain single-threaded usage ceremony-free);
       a session held by another domain is a caller bug. *)
    let me = self_id () in
    let transient = Atomic.get s.owner <> me in
    if transient && not (Atomic.compare_and_set s.owner (-1) me) then
      invalid_arg
        (Printf.sprintf
           "Flow.Session.recompose: session is owned by domain %d (self: %d)"
           (Atomic.get s.owner) me);
    Fun.protect ~finally:(fun () ->
        if transient then ignore (Atomic.compare_and_set s.owner me (-1)))
    @@ fun () ->
    let result, runtime_s =
      Mbr_obs.Trace.timed_span ~name:"flow.recompose"
        ~args:[ ("round", Mbr_obs.Trace.Int s.n_recomposes) ]
      @@ fun () ->
      let ctx =
        {
          options = s.options;
          placement = s.placement;
          library = s.library;
          eng = s.eng;
          stage_times_rev = [];
          notify = on_progress;
          pg_round = 0;
          pg_resolved = 0;
          pg_total = 0;
          pg_wns = Float.nan;
        }
      in
      let skews_zeroed = stage_eco_reset ctx s in
      let before = stage_metrics_before ctx s ~skews_zeroed in
      ctx.pg_wns <- before.Metrics.wns;
      let n_split = stage_decompose ctx in
      let graph = stage_graph ctx s in
      stage_blocker_index ctx s;
      let selection, cache_stats = stage_allocate ctx s ?cancel graph in
      ctx.pg_resolved <- ctx.pg_resolved + cache_stats.Allocate.blocks_resolved;
      ctx.pg_total <- ctx.pg_total + selection.Allocate.n_blocks;
      let merged = stage_merge ctx graph selection in
      let scan_report = stage_scan_restitch ctx in
      let skew_report = stage_skew ctx ?cancel () in
      let n_resized = stage_resize ctx merged.mo_new_mbrs in
      let after = stage_metrics_after ctx in
      ctx.pg_wns <- after.Metrics.wns;
      (* ---- recovery loop: worst-corner-negative MBRs go back through
         decompose → (partition → allocate → compose) until every MBR
         this pass created is clean or the round budget runs out ---- *)
      let budget =
        match recover with Some r -> max 0 r | None -> s.options.recover
      in
      (* Victims are a function of design + placement + timing state
         alone, never of session history: a from-scratch [run] over the
         same state must reach the same recovery decisions (the
         equivalence property). Any live register {!Decompose.splittable}
         would actually split — composed this pass, by an earlier
         recompose (a set-corners in between can turn those into
         victims), or multi-bit in the input — qualifies when its worst
         corner goes negative. Splittability guarantees every round
         makes >= 1 split, so rounds are never spent on unsplittable
         violators. *)
      let tv = Mbr_sta.Timing_view.of_engine s.eng in
      let victims () =
        List.filter
          (fun cid ->
            live_register s.design cid
            && Decompose.splittable s.placement s.library cid
            &&
            let sl =
              Float.min
                (Mbr_sta.Timing_view.reg_d_slack tv cid)
                (Mbr_sta.Timing_view.reg_q_slack tv cid)
            in
            Float.is_finite sl && sl < 0.0)
          (Design.registers s.design)
      in
      let r_after = ref after in
      let r_mbrs = ref merged.mo_new_mbrs in
      let r_regs = ref merged.mo_n_regs_merged in
      let r_incomplete = ref merged.mo_n_incomplete in
      let r_displacement = ref merged.mo_displacement in
      let r_resized = ref n_resized in
      let r_cost = ref selection.Allocate.cost in
      let r_blocks = ref selection.Allocate.n_blocks in
      let r_candidates = ref selection.Allocate.n_candidates in
      let r_all_optimal = ref selection.Allocate.all_optimal in
      let r_resolved = ref cache_stats.Allocate.blocks_resolved in
      let r_reused = ref cache_stats.Allocate.blocks_reused in
      let r_scan_wl = ref scan_report.Mbr_dft.Scan_stitch.wirelength in
      let r_skew = ref skew_report in
      let recover_rounds = ref 0 in
      let recover_splits = ref 0 in
      (try
         while !recover_rounds < budget do
           (match cancel with
           | Some t when Mbr_util.Cancel.cancelled t -> raise Exit
           | _ -> ());
           match victims () with
           | [] -> raise Exit
           | victims ->
             incr recover_rounds;
             Mbr_obs.Metrics.incr m_recover_rounds;
             let ( split,
                   selection,
                   cache_stats,
                   merged,
                   scan_report,
                   skew_report,
                   n_resized,
                   after ) =
               recover_round ctx s ?cancel ~round:!recover_rounds victims
             in
             recover_splits := !recover_splits + split.Decompose.n_split;
             r_after := after;
             (* dead (split) ids drop out through the final liveness
                filter on [new_mbrs], so appending is enough *)
             r_mbrs := !r_mbrs @ merged.mo_new_mbrs;
             r_regs := !r_regs + merged.mo_n_regs_merged;
             r_incomplete := !r_incomplete + merged.mo_n_incomplete;
             r_displacement := !r_displacement +. merged.mo_displacement;
             r_resized := !r_resized + n_resized;
             r_cost := !r_cost +. selection.Allocate.cost;
             r_blocks := !r_blocks + selection.Allocate.n_blocks;
             r_candidates := !r_candidates + selection.Allocate.n_candidates;
             r_all_optimal := !r_all_optimal && selection.Allocate.all_optimal;
             r_resolved := !r_resolved + cache_stats.Allocate.blocks_resolved;
             r_reused := !r_reused + cache_stats.Allocate.blocks_reused;
             r_scan_wl := scan_report.Mbr_dft.Scan_stitch.wirelength;
             r_skew := skew_report
         done
       with Exit -> ());
      let live_mbrs =
        List.filter (fun cid -> live_register s.design cid) !r_mbrs
      in
      s.last_after <-
        Some
          (!r_after, Design.revision s.design, Placement.revision s.placement);
      s.n_recomposes <- s.n_recomposes + 1;
      Mbr_obs.Metrics.incr m_recomposes;
      {
        before;
        after = !r_after;
        n_split;
        scan_chain_wl = !r_scan_wl;
        merge_displacement = !r_displacement;
        n_merges = List.length !r_mbrs;
        n_regs_merged = !r_regs;
        n_incomplete = !r_incomplete;
        n_resized = !r_resized;
        ilp_cost = !r_cost;
        n_blocks = !r_blocks;
        n_candidates = !r_candidates;
        all_optimal = !r_all_optimal;
        alloc_jobs = (allocate_config s.options).Allocate.jobs;
        alloc_block_times = selection.Allocate.block_times;
        skew_report = !r_skew;
        new_mbrs = live_mbrs;
        runtime_s = 0.0 (* patched below from the span's duration *);
        stage_times = List.rev ctx.stage_times_rev;
        sta_full_builds = Engine.full_builds s.eng;
        sta_refreshes = Engine.refreshes s.eng;
        eco_blocks_resolved = !r_resolved;
        eco_blocks_reused = !r_reused;
        recover_rounds = !recover_rounds;
        recover_splits = !recover_splits;
        cancelled =
          (match cancel with
          | Some t -> Mbr_util.Cancel.cancelled t
          | None -> false);
      }
    in
    { result with runtime_s }
end

let run ?(options = default_options) ~design ~placement ~library ~sta_config ()
    =
  if Placement.design placement != design then
    invalid_arg "Flow.run: placement does not belong to the given design";
  Session.recompose
    (Session.create ~options ~design ~placement ~library ~sta_config ())
