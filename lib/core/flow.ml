module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Placement = Mbr_place.Placement
module Legalizer = Mbr_place.Legalizer
module Engine = Mbr_sta.Engine
module Skew = Mbr_sta.Skew
module Cell_lib = Mbr_liberty.Cell

type options = {
  compat : Compat.config;
  allocate : Allocate.config;
  mode : [ `Ilp | `Greedy_share | `Clique ];
  jobs : int option;
  skew : Skew.config option;
  resize : Resize.config option;
  decompose : bool;
  route_config : Mbr_route.Estimator.config option;
  cts_config : Mbr_cts.Synth.config option;
}

let default_options =
  {
    compat = Compat.default_config;
    allocate = Allocate.default_config;
    mode = `Ilp;
    jobs = None;
    skew = Some Skew.default_config;
    resize = Some Resize.default_config;
    decompose = false;
    route_config = None;
    cts_config = None;
  }

type result = {
  before : Metrics.t;
  after : Metrics.t;
  n_split : int;
  scan_chain_wl : float;
  merge_displacement : float;
  n_merges : int;
  n_regs_merged : int;
  n_incomplete : int;
  n_resized : int;
  ilp_cost : float;
  n_blocks : int;
  n_candidates : int;
  all_optimal : bool;
  alloc_jobs : int;
  alloc_block_times : Allocate.time_stats;
  skew_report : Skew.report option;
  new_mbrs : Mbr_netlist.Types.cell_id list;
  runtime_s : float;
  stage_times : (string * float) list;
  sta_full_builds : int;
  sta_refreshes : int;
}

(* Everything the stage functions share: the run's inputs, the one STA
   engine, and the stage-time accumulator (reversed; execution order is
   restored when the result is assembled). *)
type context = {
  options : options;
  placement : Placement.t;
  library : Mbr_liberty.Library.t;
  eng : Engine.t;
  mutable stage_times_rev : (string * float) list;
}

let stage ctx name f =
  let s0 = Unix.gettimeofday () in
  let r = f () in
  ctx.stage_times_rev <- (name, Unix.gettimeofday () -. s0) :: ctx.stage_times_rev;
  r

(* The effective allocate configuration: [options.jobs] (the frontends'
   [-j]) overrides the config's own [jobs] field when given. *)
let allocate_config options =
  match options.jobs with
  | None -> options.allocate
  | Some j -> { options.allocate with Allocate.jobs = max 1 j }

(* All live register centers: the blocker population for the weight
   heuristic (§3.2 counts any register inside the test polygon). *)
let blocker_index_of pl =
  let dsg = Placement.design pl in
  let index = Spatial.create () in
  List.iter
    (fun cid ->
      if Placement.is_placed pl cid then
        Spatial.add index cid (Placement.center pl cid))
    (Design.registers dsg);
  index

(* Find a legal spot for the mapped cell, preferring the LP optimum
   inside the feasible region, then widening the search. *)
let legalize_merge occ ~(cell : Cell_lib.t) ~region ~desired =
  let w = cell.Cell_lib.width and h = cell.Cell_lib.height in
  let grown = Rect.expand region (Float.max w h) in
  let try_region r = Legalizer.Occupancy.find_nearest occ ?region:r ~w desired in
  match try_region (Some region) with
  | Some p -> Some p
  | None -> (
    match try_region (Some grown) with
    | Some p -> Some p
    | None -> try_region None)

(* ---- stages, in Fig. 4 order ---- *)

let collect_metrics ctx =
  Metrics.collect ?route_config:ctx.options.route_config
    ?cts_config:ctx.options.cts_config ctx.eng ctx.library

let stage_metrics_before ctx =
  stage ctx "metrics-before" (fun () -> collect_metrics ctx)

(* optional pre-pass: open up max-width MBRs for recomposition *)
let stage_decompose ctx =
  stage ctx "decompose" (fun () ->
      if ctx.options.decompose then begin
        let report = Decompose.split_max_width ctx.placement ctx.library in
        Engine.refresh ctx.eng;
        report.Decompose.n_split
      end
      else 0)

let stage_compat_graph ctx =
  stage ctx "compat-graph" (fun () ->
      Compat.build_graph ~config:ctx.options.compat ctx.eng ctx.library)

let stage_allocate ctx graph ~blocker_index =
  stage ctx "allocate" (fun () ->
      Allocate.run ~mode:ctx.options.mode ~config:(allocate_config ctx.options)
        graph ~lib:ctx.library ~blocker_index)

type merge_outcome = {
  mo_new_mbrs : Mbr_netlist.Types.cell_id list;  (** in creation order *)
  mo_n_incomplete : int;
  mo_n_regs_merged : int;
  mo_displacement : float;
}

(* Centers of the members that are actually placed; the merge loop
   needs them once for the displacement metric. *)
let placed_member_centers placement members =
  List.filter_map
    (fun cid ->
      if Placement.is_placed placement cid then
        Some (Placement.center placement cid)
      else None)
    members

let execute_one_merge ctx occ infos (c : Candidate.t) outcome =
  let placement = ctx.placement in
  let members = c.Candidate.member_cids in
  let member_centroid =
    match placed_member_centers placement members with
    | [] -> None
    | centers -> Some (Point.centroid centers)
  in
  match
    Mapping.for_members ctx.library infos ~members:c.Candidate.members
      ~target_bits:c.Candidate.target_bits
  with
  | None -> outcome (* no cell (cannot happen for enumerated candidates) *)
  | Some cell -> (
    (* free the members' sites first: the best MBR spot usually is
       where its registers were *)
    List.iter
      (fun cid ->
        if Placement.is_placed placement cid then
          Legalizer.Occupancy.remove occ (Placement.footprint placement cid))
      members;
    let assignment = Compose.bit_assignment placement members in
    let conns =
      Mbr_placer.conn_boxes placement ~cell ~assignment ~exclude:members
    in
    let desired, _ =
      Mbr_placer.optimal_corner ~cell ~conns ~region:c.Candidate.region
    in
    match legalize_merge occ ~cell ~region:c.Candidate.region ~desired with
    | Some corner ->
      let id =
        Compose.execute placement { Compose.member_cids = members; cell; corner }
      in
      Legalizer.Occupancy.add occ (Placement.footprint placement id);
      let displacement =
        match member_centroid with
        | Some old_center ->
          Point.manhattan old_center (Placement.center placement id)
        | None -> 0.0
      in
      {
        mo_new_mbrs = id :: outcome.mo_new_mbrs;
        mo_n_incomplete =
          (outcome.mo_n_incomplete + if c.Candidate.incomplete then 1 else 0);
        mo_n_regs_merged = outcome.mo_n_regs_merged + List.length members;
        mo_displacement = outcome.mo_displacement +. displacement;
      }
    | None ->
      (* nowhere to put it: abandon the merge, restore occupancy *)
      List.iter
        (fun cid ->
          if Placement.is_placed placement cid then
            Legalizer.Occupancy.add occ (Placement.footprint placement cid))
        members;
      outcome)

let stage_merge ctx graph (selection : Allocate.selection) =
  stage ctx "merge" (fun () ->
      let occ = Legalizer.Occupancy.of_placement ctx.placement in
      let infos = graph.Compat.infos in
      let outcome =
        List.fold_left
          (fun acc c -> execute_one_merge ctx occ infos c acc)
          {
            mo_new_mbrs = [];
            mo_n_incomplete = 0;
            mo_n_regs_merged = 0;
            mo_displacement = 0.0;
          }
          selection.Allocate.merges
      in
      { outcome with mo_new_mbrs = List.rev outcome.mo_new_mbrs })

(* Re-stitch the scan chains the composition broke: removed members
   leave dangling SI/SO hops, and new MBRs need threading (§2's scan
   rules guaranteed this stays possible). No-op without scan cells. *)
let stage_scan_restitch ctx =
  stage ctx "scan-restitch" (fun () -> Mbr_dft.Scan_stitch.stitch ctx.placement)

(* splice the merge/scan edits into the timing graph, then useful
   skew + sizing; skews live in the engine so they carry through *)
let stage_skew ctx =
  stage ctx "skew" (fun () ->
      match ctx.options.skew with
      | Some cfg -> Some (Skew.optimize ~config:cfg ctx.eng)
      | None ->
        Engine.refresh ctx.eng;
        None)

let stage_resize ctx new_mbrs =
  stage ctx "resize" (fun () ->
      match ctx.options.resize with
      | Some cfg -> Resize.downsize ~config:cfg ctx.eng ctx.library new_mbrs
      | None -> 0)

(* pin caps changed under resize: the final refresh inside the metrics
   pass absorbs the retypes *)
let stage_metrics_after ctx =
  stage ctx "metrics-after" (fun () -> collect_metrics ctx)

let run ?(options = default_options) ~design ~placement ~library ~sta_config () =
  if Placement.design placement != design then
    invalid_arg "Flow.run: placement does not belong to the given design";
  let t0 = Unix.gettimeofday () in
  (* The one full graph construction of the run: every later stage
     brings this same engine up to date through Engine.refresh, which
     consumes the design/placement edit logs instead of rebuilding. *)
  let eng = Engine.build ~config:sta_config placement in
  let ctx = { options; placement; library; eng; stage_times_rev = [] } in
  let before = stage_metrics_before ctx in
  let n_split = stage_decompose ctx in
  let graph = stage_compat_graph ctx in
  let blocker_index = blocker_index_of placement in
  let selection = stage_allocate ctx graph ~blocker_index in
  let merged = stage_merge ctx graph selection in
  let scan_report = stage_scan_restitch ctx in
  let skew_report = stage_skew ctx in
  let n_resized = stage_resize ctx merged.mo_new_mbrs in
  let after = stage_metrics_after ctx in
  {
    before;
    after;
    n_split;
    scan_chain_wl = scan_report.Mbr_dft.Scan_stitch.wirelength;
    merge_displacement = merged.mo_displacement;
    n_merges = List.length merged.mo_new_mbrs;
    n_regs_merged = merged.mo_n_regs_merged;
    n_incomplete = merged.mo_n_incomplete;
    n_resized;
    ilp_cost = selection.Allocate.cost;
    n_blocks = selection.Allocate.n_blocks;
    n_candidates = selection.Allocate.n_candidates;
    all_optimal = selection.Allocate.all_optimal;
    alloc_jobs = (allocate_config options).Allocate.jobs;
    alloc_block_times = selection.Allocate.block_times;
    skew_report;
    new_mbrs = merged.mo_new_mbrs;
    runtime_s = Unix.gettimeofday () -. t0;
    stage_times = List.rev ctx.stage_times_rev;
    sta_full_builds = Engine.full_builds eng;
    sta_refreshes = Engine.refreshes eng;
  }
