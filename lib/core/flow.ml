module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Placement = Mbr_place.Placement
module Legalizer = Mbr_place.Legalizer
module Engine = Mbr_sta.Engine
module Skew = Mbr_sta.Skew
module Cell_lib = Mbr_liberty.Cell

type options = {
  compat : Compat.config;
  allocate : Allocate.config;
  mode : [ `Ilp | `Greedy_share | `Clique ];
  skew : Skew.config option;
  resize : Resize.config option;
  decompose : bool;
  route_config : Mbr_route.Estimator.config option;
  cts_config : Mbr_cts.Synth.config option;
}

let default_options =
  {
    compat = Compat.default_config;
    allocate = Allocate.default_config;
    mode = `Ilp;
    skew = Some Skew.default_config;
    resize = Some Resize.default_config;
    decompose = false;
    route_config = None;
    cts_config = None;
  }

type result = {
  before : Metrics.t;
  after : Metrics.t;
  n_split : int;
  scan_chain_wl : float;
  merge_displacement : float;
  n_merges : int;
  n_regs_merged : int;
  n_incomplete : int;
  n_resized : int;
  ilp_cost : float;
  n_blocks : int;
  n_candidates : int;
  all_optimal : bool;
  skew_report : Skew.report option;
  new_mbrs : Mbr_netlist.Types.cell_id list;
  runtime_s : float;
  stage_times : (string * float) list;
  sta_full_builds : int;
  sta_refreshes : int;
}

(* All live register centers: the blocker population for the weight
   heuristic (§3.2 counts any register inside the test polygon). *)
let blocker_index_of pl =
  let dsg = Placement.design pl in
  let index = Spatial.create () in
  List.iter
    (fun cid ->
      if Placement.is_placed pl cid then
        Spatial.add index cid (Placement.center pl cid))
    (Design.registers dsg);
  index

(* Find a legal spot for the mapped cell, preferring the LP optimum
   inside the feasible region, then widening the search. *)
let legalize_merge occ ~(cell : Cell_lib.t) ~region ~desired =
  let w = cell.Cell_lib.width and h = cell.Cell_lib.height in
  let grown = Rect.expand region (Float.max w h) in
  let try_region r = Legalizer.Occupancy.find_nearest occ ?region:r ~w desired in
  match try_region (Some region) with
  | Some p -> Some p
  | None -> (
    match try_region (Some grown) with
    | Some p -> Some p
    | None -> try_region None)

let run ?(options = default_options) ~design:_ ~placement ~library ~sta_config () =
  let t0 = Unix.gettimeofday () in
  let stage_times = ref [] in
  let stage name f =
    let s0 = Unix.gettimeofday () in
    let r = f () in
    stage_times := (name, Unix.gettimeofday () -. s0) :: !stage_times;
    r
  in
  (* The one full graph construction of the run: every later stage
     brings this same engine up to date through Engine.refresh, which
     consumes the design/placement edit logs instead of rebuilding. *)
  let eng = Engine.build ~config:sta_config placement in
  let before =
    stage "metrics-before" (fun () ->
        Metrics.collect ?route_config:options.route_config
          ?cts_config:options.cts_config eng library)
  in
  (* optional pre-pass: open up max-width MBRs for recomposition *)
  let n_split =
    stage "decompose" (fun () ->
        if options.decompose then begin
          let report = Decompose.split_max_width placement library in
          Engine.refresh eng;
          report.Decompose.n_split
        end
        else 0)
  in
  let graph =
    stage "compat-graph" (fun () ->
        Compat.build_graph ~config:options.compat eng library)
  in
  let blocker_index = blocker_index_of placement in
  let selection =
    stage "allocate" (fun () ->
        Allocate.run ~mode:options.mode ~config:options.allocate graph
          ~lib:library ~blocker_index)
  in
  let merge_t0 = Unix.gettimeofday () in
  let occ = Legalizer.Occupancy.of_placement placement in
  let infos = graph.Compat.infos in
  let new_mbrs = ref [] in
  let n_incomplete = ref 0 in
  let n_regs_merged = ref 0 in
  let merge_displacement = ref 0.0 in
  List.iter
    (fun (c : Candidate.t) ->
      let members = c.Candidate.member_cids in
      let member_centroid =
        match
          List.filter_map (fun cid -> Placement.location_opt placement cid) members
        with
        | [] -> None
        | _ ->
          Some
            (Point.centroid
               (List.filter_map
                  (fun cid ->
                    if Placement.is_placed placement cid then
                      Some (Placement.center placement cid)
                    else None)
                  members))
      in
      match
        Mapping.for_members library infos ~members:c.Candidate.members
          ~target_bits:c.Candidate.target_bits
      with
      | None -> () (* no cell (cannot happen for enumerated candidates) *)
      | Some cell ->
        (* free the members' sites first: the best MBR spot usually is
           where its registers were *)
        List.iter
          (fun cid ->
            if Placement.is_placed placement cid then
              Legalizer.Occupancy.remove occ (Placement.footprint placement cid))
          members;
        let assignment = Compose.bit_assignment placement members in
        let conns =
          Mbr_placer.conn_boxes placement ~cell ~assignment ~exclude:members
        in
        let desired, _ =
          Mbr_placer.optimal_corner ~cell ~conns ~region:c.Candidate.region
        in
        (match legalize_merge occ ~cell ~region:c.Candidate.region ~desired with
        | Some corner ->
          let id =
            Compose.execute placement
              { Compose.member_cids = members; cell; corner }
          in
          Legalizer.Occupancy.add occ (Placement.footprint placement id);
          new_mbrs := id :: !new_mbrs;
          (match member_centroid with
          | Some old_center ->
            merge_displacement :=
              !merge_displacement
              +. Point.manhattan old_center (Placement.center placement id)
          | None -> ());
          if c.Candidate.incomplete then incr n_incomplete;
          n_regs_merged := !n_regs_merged + List.length members
        | None ->
          (* nowhere to put it: abandon the merge, restore occupancy *)
          List.iter
            (fun cid ->
              if Placement.is_placed placement cid then
                Legalizer.Occupancy.add occ (Placement.footprint placement cid))
            members))
    selection.Allocate.merges;
  let new_mbrs = List.rev !new_mbrs in
  stage_times := ("merge", Unix.gettimeofday () -. merge_t0) :: !stage_times;
  (* Re-stitch the scan chains the composition broke: removed members
     leave dangling SI/SO hops, and new MBRs need threading (§2's scan
     rules guaranteed this stays possible). No-op without scan cells. *)
  let scan_report =
    stage "scan-restitch" (fun () -> Mbr_dft.Scan_stitch.stitch placement)
  in
  (* splice the merge/scan edits into the timing graph, then useful
     skew + sizing; skews live in the engine so they carry through *)
  let skew_report =
    stage "skew" (fun () ->
        match options.skew with
        | Some cfg -> Some (Skew.optimize ~config:cfg eng)
        | None ->
          Engine.refresh eng;
          None)
  in
  let n_resized =
    stage "resize" (fun () ->
        match options.resize with
        | Some cfg -> Resize.downsize ~config:cfg eng library new_mbrs
        | None -> 0)
  in
  (* pin caps changed under resize: the final refresh inside the metrics
     pass absorbs the retypes *)
  let after =
    stage "metrics-after" (fun () ->
        Metrics.collect ?route_config:options.route_config
          ?cts_config:options.cts_config eng library)
  in
  {
    before;
    after;
    n_split;
    scan_chain_wl = scan_report.Mbr_dft.Scan_stitch.wirelength;
    merge_displacement = !merge_displacement;
    n_merges = List.length new_mbrs;
    n_regs_merged = !n_regs_merged;
    n_incomplete = !n_incomplete;
    n_resized;
    ilp_cost = selection.Allocate.cost;
    n_blocks = selection.Allocate.n_blocks;
    n_candidates = selection.Allocate.n_candidates;
    all_optimal = selection.Allocate.all_optimal;
    skew_report;
    new_mbrs;
    runtime_s = Unix.gettimeofday () -. t0;
    stage_times = List.rev !stage_times;
    sta_full_builds = Engine.full_builds eng;
    sta_refreshes = Engine.refreshes eng;
  }
