module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect

type 'a t = {
  bucket : float;
  cells : (int, ('a * Point.t) list) Hashtbl.t;
  mutable n : int;
}

let create ?(bucket = 25.0) () =
  if bucket <= 0.0 then invalid_arg "Spatial.create: bucket <= 0";
  { bucket; cells = Hashtbl.create 256; n = 0 }

(* Grid coordinates packed into one non-negative int (2^30 offset per
   axis) so bucket lookups hash an immediate instead of a boxed pair. *)
let grid_offset = 0x4000_0000

let pack_cell i j = ((i + grid_offset) lsl 31) lor (j + grid_offset)

let key t (p : Point.t) =
  pack_cell
    (int_of_float (Float.floor (p.x /. t.bucket)))
    (int_of_float (Float.floor (p.y /. t.bucket)))

let add t v p =
  let k = key t p in
  let cur = match Hashtbl.find_opt t.cells k with Some l -> l | None -> [] in
  Hashtbl.replace t.cells k ((v, p) :: cur);
  t.n <- t.n + 1

let remove t v p =
  let k = key t p in
  match Hashtbl.find_opt t.cells k with
  | None -> ()
  | Some l ->
    let removed = ref false in
    let l' =
      List.filter
        (fun (v', p') ->
          if (not !removed) && v' = v && Point.equal ~eps:0.0 p' p then begin
            removed := true;
            false
          end
          else true)
        l
    in
    if !removed then begin
      (* drop emptied buckets so churn does not grow the table *)
      if l' = [] then Hashtbl.remove t.cells k
      else Hashtbl.replace t.cells k l';
      t.n <- t.n - 1
    end

let update t v ~from ~to_ =
  let kf = key t from and kt = key t to_ in
  if kf = kt then begin
    (* same grid cell: rewrite the entry in place, no churn *)
    match Hashtbl.find_opt t.cells kf with
    | None -> add t v to_
    | Some l ->
      let moved = ref false in
      let l' =
        List.map
          (fun ((v', p') as entry) ->
            if (not !moved) && v' = v && Point.equal ~eps:0.0 p' from then begin
              moved := true;
              (v, to_)
            end
            else entry)
          l
      in
      if !moved then Hashtbl.replace t.cells kf l' else add t v to_
  end
  else begin
    remove t v from;
    add t v to_
  end

let query_rect t (r : Rect.t) =
  let i0 = int_of_float (Float.floor (r.Rect.lx /. t.bucket)) in
  let i1 = int_of_float (Float.floor (r.Rect.hx /. t.bucket)) in
  let j0 = int_of_float (Float.floor (r.Rect.ly /. t.bucket)) in
  let j1 = int_of_float (Float.floor (r.Rect.hy /. t.bucket)) in
  let acc = ref [] in
  for i = i0 to i1 do
    for j = j0 to j1 do
      match Hashtbl.find_opt t.cells (pack_cell i j) with
      | Some l ->
        List.iter (fun ((_, p) as entry) -> if Rect.contains r p then acc := entry :: !acc) l
      | None -> ()
    done
  done;
  !acc

let size t = t.n

let n_buckets t = Hashtbl.length t.cells
