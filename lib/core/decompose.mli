(** MBR decomposition — the paper's §5 future work, implemented:

    "To optimize such designs \[rich in max-width MBRs, like D4\], we
    plan in the future to consider the decomposition of the initial
    8-bit MBRs and their recomposition using the proposed methodology,
    instead of skipping them completely."

    A max-width MBR is not composable (nothing larger exists), so the
    flow skips it and its clock capacitance is frozen. Splitting it
    into two half-width registers wired to the same nets re-opens the
    search space: the halves can re-merge with {e better} partners (or
    with each other, reproducing the original at no loss beyond the
    split's small cap overhead).

    Registers that are fixed/size-only, carry an ordered-scan section,
    or have no half-width library cell are left untouched. *)

type report = {
  n_split : int;  (** registers decomposed *)
  new_ids : Mbr_netlist.Types.cell_id list;  (** 2 per split *)
}

val split_max_width :
  Mbr_place.Placement.t -> Mbr_liberty.Library.t -> report
(** Split every eligible live register whose width equals its class's
    maximum into two half-width registers, placed legally at/near the
    original location (lower bits keep the original corner). The
    netlist stays valid; connectivity, clock, reset, scan-enable and
    gating attributes are preserved bit-for-bit. *)

val splittable :
  Mbr_place.Placement.t ->
  Mbr_liberty.Library.t ->
  Mbr_netlist.Types.cell_id ->
  bool
(** Would {!split_cells} actually split this register? True iff it is
    placed and passes every eligibility rule (not fixed/size-only, even
    width >= 2, no ordered-scan section, half-width cell available).
    The recovery loop uses this to pick victims that are guaranteed to
    make progress — a nonempty victim list always yields >= 1 split. *)

val split_cells :
  ?pin:bool ->
  Mbr_place.Placement.t ->
  Mbr_liberty.Library.t ->
  Mbr_netlist.Types.cell_id list ->
  report
(** Split the given registers (any even width >= 2, not just max-width;
    the other eligibility rules still apply — ineligible ids are
    silently skipped). This is the recovery loop's entry point: a
    composed MBR whose worst-corner slack went negative is decomposed
    here and re-enters partitioning.

    With [~pin:true] (default false) the halves are marked
    [size_only], excluding them from {!Compat.is_composable} — they can
    be resized but never re-composed, which makes the recovery loop
    monotone (a split can never be undone, so rounds converge). Pinned
    halves are also placed at the centroid of their connected nets'
    other pins rather than at the original corner, recovering
    wirelength the oversized MBR was paying. *)
