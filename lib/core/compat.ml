module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module Library = Mbr_liberty.Library
module Cell_lib = Mbr_liberty.Cell
module Ugraph = Mbr_graph.Ugraph

type config = {
  delay_per_um : float;
  slack_margin : float;
  max_dist : float;
  slack_diff_limit : float;
  viol_tolerance : float;
}

let default_config =
  {
    delay_per_um = 0.45;
    slack_margin = 5.0;
    max_dist = 60.0;
    slack_diff_limit = 120.0;
    viol_tolerance = 15.0;
  }

type reg_info = {
  cid : Types.cell_id;
  bits : int;
  func_class : string;
  clock : Types.net_id;
  enable : string option;
  reset : Types.net_id option;
  scan : Types.scan_info option;
  drive_res : float;
  d_slack : float;
  q_slack : float;
  footprint : Rect.t;
  feasible : Rect.t;
  center : Point.t;
}

let is_composable dsg lib cid =
  let a = Design.reg_attrs dsg cid in
  (not a.Types.fixed) && (not a.Types.size_only)
  &&
  let cls = a.Types.lib_cell.Cell_lib.func_class in
  Library.max_width lib ~func_class:cls > a.Types.lib_cell.Cell_lib.bits

let reg_pin_net dsg cid kind =
  match Design.pin_of dsg cid kind with
  | Some pid -> (Design.pin dsg pid).Types.p_net
  | None -> None

(* Bounding box of the other pins on a pin's net; None when the pin is
   unconnected or alone on its net. *)
let net_box pl pid =
  let dsg = Placement.design pl in
  let p = Design.pin dsg pid in
  match p.Types.p_net with
  | None -> None
  | Some nid ->
    let pts =
      List.filter_map
        (fun (qid, _, pt) -> if qid = pid then None else Some pt)
        (Placement.net_pin_points pl nid)
    in
    (match pts with [] -> None | _ -> Some (Rect.of_points pts))

(* Per-pin feasible region (§2, placement compatibility): positive slack
   converts to a movement radius around the pin's net box; a violating
   pin restricts the cell to the net box itself (moving inside the box
   does not lengthen the net to first order). The cell's region is the
   intersection over its D/Q pins, capped at max_dist of the footprint
   so that displacement stays bounded. *)
let feasible_region cfg eng cid footprint =
  let pl = Engine.placement eng in
  let dsg = Placement.design pl in
  let cap = Rect.expand footprint cfg.max_dist in
  let pin_region pid =
    let p = Design.pin dsg pid in
    let relevant =
      match p.Types.p_kind with
      | Types.Pin_d _ | Types.Pin_q _ -> p.Types.p_net <> None
      | Types.Pin_clock | Types.Pin_reset | Types.Pin_scan_in _
      | Types.Pin_scan_out _ | Types.Pin_scan_enable | Types.Pin_in _
      | Types.Pin_out | Types.Pin_port ->
        false
    in
    if not relevant then None
    else
      match (net_box pl pid, Engine.slack eng pid) with
      | None, _ | _, None -> None
      | Some box, Some s ->
        (* the violation tolerance admits small degradations everywhere:
           the flow applies useful skew and sizing right after
           composition, which recover them (Fig. 4) *)
        let budget = cfg.viol_tolerance +. Float.max 0.0 (s -. cfg.slack_margin) in
        let freedom = Float.min cfg.max_dist (budget /. cfg.delay_per_um) in
        Some (Rect.expand box freedom)
  in
  let regions = List.filter_map pin_region (Design.pins_of dsg cid) in
  match Rect.inter_all (cap :: regions) with
  | Some r -> (
    (* the cell's own footprint is always feasible (it stands there);
       fold it in, staying within the displacement cap *)
    match Rect.inter (Rect.union r footprint) cap with
    | Some r' -> r'
    | None -> footprint)
  | None -> footprint

let reg_info cfg eng cid =
  let pl = Engine.placement eng in
  let dsg = Placement.design pl in
  let a = Design.reg_attrs dsg cid in
  let lib_cell = a.Types.lib_cell in
  let footprint = Placement.footprint pl cid in
  let d_slack = Engine.reg_d_slack eng cid in
  let q_slack = Engine.reg_q_slack eng cid in
  let clock =
    match reg_pin_net dsg cid Types.Pin_clock with
    | Some nid -> nid
    | None -> invalid_arg "Compat.reg_info: register without a clock net"
  in
  {
    cid;
    bits = lib_cell.Cell_lib.bits;
    func_class = lib_cell.Cell_lib.func_class;
    clock;
    enable = a.Types.gate_enable;
    reset = reg_pin_net dsg cid Types.Pin_reset;
    scan = a.Types.scan;
    drive_res = lib_cell.Cell_lib.drive_res;
    d_slack;
    q_slack;
    footprint;
    feasible = feasible_region cfg eng cid footprint;
    center = Rect.center footprint;
  }

let functionally_compatible a b =
  a.func_class = b.func_class && a.clock = b.clock && a.enable = b.enable
  && a.reset = b.reset

let scan_compatible a b =
  match (a.scan, b.scan) with
  | None, None -> true
  | Some _, None | None, Some _ -> false
  | Some sa, Some sb ->
    sa.Types.partition = sb.Types.partition
    && (match (sa.Types.section, sb.Types.section) with
       | None, None -> true
       | Some (seca, _), Some (secb, _) -> seca = secb
       | Some _, None | None, Some _ -> false)

let placement_compatible a b = Rect.intersects a.feasible b.feasible

(* A register with negative D slack wants its clock later (+skew); one
   with negative Q slack wants it earlier. Composing the two would pull
   the shared MBR clock in opposite directions. *)
let opposite_skew_pressure a b =
  let wants_later r = r.d_slack < 0.0 && r.q_slack >= 0.0 in
  let wants_earlier r = r.q_slack < 0.0 && r.d_slack >= 0.0 in
  (wants_later a && wants_earlier b) || (wants_earlier a && wants_later b)

let timing_compatible cfg a b =
  (not (opposite_skew_pressure a b))
  &&
  (* unconnected sides (infinite slack) impose no magnitude constraint *)
  let close x y =
    (not (Float.is_finite x)) || (not (Float.is_finite y))
    || Float.abs (x -. y) <= cfg.slack_diff_limit
  in
  close a.d_slack b.d_slack && close a.q_slack b.q_slack

let compatible cfg a b =
  functionally_compatible a b && scan_compatible a b
  && placement_compatible a b && timing_compatible cfg a b

type graph = { ugraph : Ugraph.t; infos : reg_info array }

(* Two feasible regions can only overlap when the footprint centers are
   within 2*max_dist + (w_a + w_b)/2 per axis (each region sits inside
   its footprint expanded by max_dist), so a grid of this pitch with a
   3x3 neighbourhood scan sees every potentially compatible pair. The
   footprint term matters: without it an MBR wider than the slack budget
   could pair with a neighbour across a bucket boundary and be missed. *)
let pair_bucket config infos =
  let max_fp =
    Array.fold_left
      (fun acc info ->
        Float.max acc
          (Float.max (Rect.width info.footprint) (Rect.height info.footprint)))
      0.0 infos
  in
  Float.max 1.0 ((2.0 *. config.max_dist) +. max_fp)

(* Calls [f i j] (with j > i) for every pair within the spatial-hash
   neighbourhood — the superset of pairs that can pass
   [placement_compatible]. *)
let iter_near_pairs config infos f =
  let n = Array.length infos in
  let bucket = pair_bucket config infos in
  let tbl = Hashtbl.create (4 * max 1 n) in
  let key (p : Point.t) =
    (int_of_float (Float.floor (p.x /. bucket)),
     int_of_float (Float.floor (p.y /. bucket)))
  in
  Array.iteri
    (fun i info ->
      let kx, ky = key info.center in
      let cur = match Hashtbl.find_opt tbl (kx, ky) with Some l -> l | None -> [] in
      Hashtbl.replace tbl (kx, ky) (i :: cur))
    infos;
  Array.iteri
    (fun i info ->
      let kx, ky = key info.center in
      for dx = -1 to 1 do
        for dy = -1 to 1 do
          match Hashtbl.find_opt tbl (kx + dx, ky + dy) with
          | Some js -> List.iter (fun j -> if j > i then f i j) js
          | None -> ()
        done
      done)
    infos

let composable_infos config eng lib =
  let pl = Engine.placement eng in
  let dsg = Placement.design pl in
  Engine.refresh eng;
  let composable =
    List.filter
      (fun cid -> is_composable dsg lib cid && Placement.is_placed pl cid)
      (Design.registers dsg)
  in
  Array.of_list (List.map (reg_info config eng) composable)

let build_graph ?(config = default_config) eng lib =
  let infos = composable_infos config eng lib in
  let g = Ugraph.create (Array.length infos) in
  iter_near_pairs config infos (fun i j ->
      if compatible config infos.(i) infos.(j) then Ugraph.add_edge g i j);
  { ugraph = g; infos }

type refresh_stats = {
  nodes_total : int;
  nodes_dirty : int;
  pairs_checked : int;
  edges_copied : int;
}

(* Telemetry mirror of [refresh_stats]: the registry accumulates across
   rounds what each call also returns, so one metrics snapshot prices
   the clean-pair reuse for a whole ECO session. *)
let m_nodes_dirty = Mbr_obs.Metrics.counter "compat.nodes_dirty"

let m_pairs_checked = Mbr_obs.Metrics.counter "compat.pairs_checked"

let m_edges_copied = Mbr_obs.Metrics.counter "compat.edges_copied"

let refresh ?(config = default_config) prev eng lib =
  let infos = composable_infos config eng lib in
  let n = Array.length infos in
  (* A node is clean when a register with a structurally equal snapshot
     existed in the previous graph. Pair checks are pure functions of
     (config, info, info), and the previous build's bucket covered every
     pair its infos could make compatible, so a clean-clean pair's
     verdict can be copied; every pair touching a dirty node is
     re-checked. *)
  let old_ix = Hashtbl.create (max 16 (Array.length prev.infos)) in
  Array.iteri (fun i (info : reg_info) -> Hashtbl.replace old_ix info.cid i)
    prev.infos;
  let clean = Array.make n (-1) in
  let dirty = ref 0 in
  Array.iteri
    (fun i info ->
      (match Hashtbl.find_opt old_ix info.cid with
      | Some oi when prev.infos.(oi) = info -> clean.(i) <- oi
      | Some _ | None -> ());
      if clean.(i) < 0 then incr dirty)
    infos;
  let g = Ugraph.create n in
  let checked = ref 0 and copied = ref 0 in
  iter_near_pairs config infos (fun i j ->
      if clean.(i) >= 0 && clean.(j) >= 0 then begin
        if Ugraph.has_edge prev.ugraph clean.(i) clean.(j) then begin
          incr copied;
          Ugraph.add_edge g i j
        end
      end
      else begin
        incr checked;
        if compatible config infos.(i) infos.(j) then Ugraph.add_edge g i j
      end);
  Mbr_obs.Metrics.incr ~by:!dirty m_nodes_dirty;
  Mbr_obs.Metrics.incr ~by:!checked m_pairs_checked;
  Mbr_obs.Metrics.incr ~by:!copied m_edges_copied;
  ( { ugraph = g; infos },
    {
      nodes_total = n;
      nodes_dirty = !dirty;
      pairs_checked = !checked;
      edges_copied = !copied;
    } )
