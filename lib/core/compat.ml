module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Placement = Mbr_place.Placement
module Engine = Mbr_sta.Engine
module Timing_view = Mbr_sta.Timing_view
module Library = Mbr_liberty.Library
module Cell_lib = Mbr_liberty.Cell
module Csr = Mbr_graph.Csr

type config = {
  delay_per_um : float;
  slack_margin : float;
  max_dist : float;
  slack_diff_limit : float;
  viol_tolerance : float;
}

let default_config =
  {
    delay_per_um = 0.45;
    slack_margin = 5.0;
    max_dist = 60.0;
    slack_diff_limit = 120.0;
    viol_tolerance = 15.0;
  }

type reg_info = {
  cid : Types.cell_id;
  bits : int;
  func_class : string;
  clock : Types.net_id;
  enable : string option;
  reset : Types.net_id option;
  scan : Types.scan_info option;
  drive_res : float;
  d_slack : float;
  q_slack : float;
  footprint : Rect.t;
  feasible : Rect.t;
  center : Point.t;
}

let is_composable dsg lib cid =
  let a = Design.reg_attrs dsg cid in
  (not a.Types.fixed) && (not a.Types.size_only)
  &&
  let cls = a.Types.lib_cell.Cell_lib.func_class in
  Library.max_width lib ~func_class:cls > a.Types.lib_cell.Cell_lib.bits

let reg_pin_net dsg cid kind =
  match Design.pin_of dsg cid kind with
  | Some pid -> (Design.pin dsg pid).Types.p_net
  | None -> None

(* Bounding box of the other pins on a pin's net; None when the pin is
   unconnected or alone on its net. *)
let net_box pl pid =
  let dsg = Placement.design pl in
  let p = Design.pin dsg pid in
  match p.Types.p_net with
  | None -> None
  | Some nid ->
    let pts =
      List.filter_map
        (fun (qid, _, pt) -> if qid = pid then None else Some pt)
        (Placement.net_pin_points pl nid)
    in
    (match pts with [] -> None | _ -> Some (Rect.of_points pts))

(* Per-pin feasible region (§2, placement compatibility): positive slack
   converts to a movement radius around the pin's net box; a violating
   pin restricts the cell to the net box itself (moving inside the box
   does not lengthen the net to first order). The cell's region is the
   intersection over its D/Q pins, capped at max_dist of the footprint
   so that displacement stays bounded. *)
let feasible_region cfg eng cid footprint =
  let pl = Engine.placement eng in
  (* worst-corner slack: the region must be feasible in every corner *)
  let tv = Timing_view.of_engine eng in
  let dsg = Placement.design pl in
  let cap = Rect.expand footprint cfg.max_dist in
  let pin_region pid =
    let p = Design.pin dsg pid in
    let relevant =
      match p.Types.p_kind with
      | Types.Pin_d _ | Types.Pin_q _ -> p.Types.p_net <> None
      | Types.Pin_clock | Types.Pin_reset | Types.Pin_scan_in _
      | Types.Pin_scan_out _ | Types.Pin_scan_enable | Types.Pin_in _
      | Types.Pin_out | Types.Pin_port ->
        false
    in
    if not relevant then None
    else
      match (net_box pl pid, Timing_view.slack tv pid) with
      | None, _ | _, None -> None
      | Some box, Some s ->
        (* the violation tolerance admits small degradations everywhere:
           the flow applies useful skew and sizing right after
           composition, which recover them (Fig. 4) *)
        let budget = cfg.viol_tolerance +. Float.max 0.0 (s -. cfg.slack_margin) in
        let freedom = Float.min cfg.max_dist (budget /. cfg.delay_per_um) in
        Some (Rect.expand box freedom)
  in
  let regions = List.filter_map pin_region (Design.pins_of dsg cid) in
  match Rect.inter_all (cap :: regions) with
  | Some r -> (
    (* the cell's own footprint is always feasible (it stands there);
       fold it in, staying within the displacement cap *)
    match Rect.inter (Rect.union r footprint) cap with
    | Some r' -> r'
    | None -> footprint)
  | None -> footprint

let reg_info cfg eng cid =
  let pl = Engine.placement eng in
  let dsg = Placement.design pl in
  let a = Design.reg_attrs dsg cid in
  let lib_cell = a.Types.lib_cell in
  let footprint = Placement.footprint pl cid in
  let tv = Timing_view.of_engine eng in
  let d_slack = Timing_view.reg_d_slack tv cid in
  let q_slack = Timing_view.reg_q_slack tv cid in
  let clock =
    match reg_pin_net dsg cid Types.Pin_clock with
    | Some nid -> nid
    | None -> invalid_arg "Compat.reg_info: register without a clock net"
  in
  {
    cid;
    bits = lib_cell.Cell_lib.bits;
    func_class = lib_cell.Cell_lib.func_class;
    clock;
    enable = a.Types.gate_enable;
    reset = reg_pin_net dsg cid Types.Pin_reset;
    scan = a.Types.scan;
    drive_res = lib_cell.Cell_lib.drive_res;
    d_slack;
    q_slack;
    footprint;
    feasible = feasible_region cfg eng cid footprint;
    center = Rect.center footprint;
  }

let functionally_compatible a b =
  a.func_class = b.func_class && a.clock = b.clock && a.enable = b.enable
  && a.reset = b.reset

let scan_compatible a b =
  match (a.scan, b.scan) with
  | None, None -> true
  | Some _, None | None, Some _ -> false
  | Some sa, Some sb ->
    sa.Types.partition = sb.Types.partition
    && (match (sa.Types.section, sb.Types.section) with
       | None, None -> true
       | Some (seca, _), Some (secb, _) -> seca = secb
       | Some _, None | None, Some _ -> false)

let placement_compatible a b = Rect.intersects a.feasible b.feasible

(* A register with negative D slack wants its clock later (+skew); one
   with negative Q slack wants it earlier. Composing the two would pull
   the shared MBR clock in opposite directions. *)
let opposite_skew_pressure a b =
  let wants_later r = r.d_slack < 0.0 && r.q_slack >= 0.0 in
  let wants_earlier r = r.q_slack < 0.0 && r.d_slack >= 0.0 in
  (wants_later a && wants_earlier b) || (wants_earlier a && wants_later b)

let timing_compatible cfg a b =
  (not (opposite_skew_pressure a b))
  &&
  (* unconnected sides (infinite slack) impose no magnitude constraint *)
  let close x y =
    (not (Float.is_finite x)) || (not (Float.is_finite y))
    || Float.abs (x -. y) <= cfg.slack_diff_limit
  in
  close a.d_slack b.d_slack && close a.q_slack b.q_slack

let compatible cfg a b =
  functionally_compatible a b && scan_compatible a b
  && placement_compatible a b && timing_compatible cfg a b

type graph = { adj : Csr.t; infos : reg_info array }

(* Two feasible regions can only overlap when the footprint centers are
   within 2*max_dist + (w_a + w_b)/2 per axis (each region sits inside
   its footprint expanded by max_dist), so a grid of this pitch with a
   3x3 neighbourhood scan sees every potentially compatible pair. The
   footprint term matters: without it an MBR wider than the slack budget
   could pair with a neighbour across a bucket boundary and be missed. *)
let pair_bucket config infos =
  let max_fp =
    Array.fold_left
      (fun acc info ->
        Float.max acc
          (Float.max (Rect.width info.footprint) (Rect.height info.footprint)))
      0.0 infos
  in
  Float.max 1.0 ((2.0 *. config.max_dist) +. max_fp)

(* Grid coordinates packed into one int so bucket lookups hash an
   immediate instead of a boxed pair; the 2^30 offset keeps both
   halves non-negative (grid indices are far below 2^30 for any real
   die). *)
let grid_offset = 0x4000_0000

let pack_cell kx ky = ((kx + grid_offset) lsl 31) lor (ky + grid_offset)

(* Spatial hash of the info centers at the near-pair pitch: bucket key
   -> indices, newest first. *)
let near_hash bucket infos =
  let n = Array.length infos in
  let tbl : (int, int list) Hashtbl.t = Hashtbl.create (4 * max 1 n) in
  Array.iteri
    (fun i info ->
      let p = info.center in
      let k =
        pack_cell
          (int_of_float (Float.floor (p.Point.x /. bucket)))
          (int_of_float (Float.floor (p.Point.y /. bucket)))
      in
      let cur = match Hashtbl.find_opt tbl k with Some l -> l | None -> [] in
      Hashtbl.replace tbl k (i :: cur))
    infos;
  tbl

(* Calls [f i] for every index in the 3x3 neighbourhood of [p]
   (including the bucket of [p] itself). *)
let iter_near tbl bucket (p : Point.t) f =
  let kx = int_of_float (Float.floor (p.x /. bucket)) in
  let ky = int_of_float (Float.floor (p.y /. bucket)) in
  for dx = -1 to 1 do
    for dy = -1 to 1 do
      match Hashtbl.find_opt tbl (pack_cell (kx + dx) (ky + dy)) with
      | Some js -> List.iter f js
      | None -> ()
    done
  done

(* Calls [f i j] (with j > i) for every pair within the spatial-hash
   neighbourhood — the superset of pairs that can pass
   [placement_compatible]. *)
let iter_near_pairs config infos f =
  let bucket = pair_bucket config infos in
  let tbl = near_hash bucket infos in
  Array.iteri
    (fun i info -> iter_near tbl bucket info.center (fun j -> if j > i then f i j))
    infos

let composable_infos config eng lib =
  let pl = Engine.placement eng in
  let dsg = Placement.design pl in
  Engine.refresh eng;
  let composable =
    List.filter
      (fun cid -> is_composable dsg lib cid && Placement.is_placed pl cid)
      (Design.registers dsg)
  in
  Array.of_list (List.map (reg_info config eng) composable)

let build_graph ?(config = default_config) eng lib =
  let infos = composable_infos config eng lib in
  let b = Csr.Builder.create (Array.length infos) in
  iter_near_pairs config infos (fun i j ->
      if compatible config infos.(i) infos.(j) then Csr.Builder.add_edge b i j);
  { adj = Csr.Builder.finish b; infos }

type refresh_stats = {
  nodes_total : int;
  nodes_dirty : int;
  pairs_checked : int;
  edges_copied : int;
}

(* Telemetry mirror of [refresh_stats]: the registry accumulates across
   rounds what each call also returns, so one metrics snapshot prices
   the clean-pair reuse for a whole ECO session. *)
let m_nodes_dirty = Mbr_obs.Metrics.counter "compat.nodes_dirty"

let m_pairs_checked = Mbr_obs.Metrics.counter "compat.pairs_checked"

let m_edges_copied = Mbr_obs.Metrics.counter "compat.edges_copied"

(* Fast path: the composable register set is unchanged (same cids in
   the same ascending order), only some snapshots differ. Then old and
   new node indices coincide, a clean node's row can only change in its
   dirty columns, and only the spatial neighbourhoods of dirty nodes
   need pair checks. New rows are spliced into the CSR arrays with
   [Csr.rewrite]: clean rows whose dirty-column set is empty are kept
   as raw [Array.blit] slices, affected rows get a merge of (old row
   minus dirty columns) with the re-checked dirty edges. *)
let refresh_same_nodes config prev (infos : reg_info array) clean =
  let n = Array.length infos in
  let is_dirty = Array.make n false in
  let dirty = ref [] in
  for i = n - 1 downto 0 do
    if clean.(i) < 0 then begin
      is_dirty.(i) <- true;
      dirty := i :: !dirty
    end
  done;
  let checked = ref 0 and found = ref 0 in
  (* re-check every near pair with a dirty endpoint *)
  let add : int list array = Array.make n [] in
  let bucket = pair_bucket config infos in
  let tbl = near_hash bucket infos in
  List.iter
    (fun d ->
      iter_near tbl bucket infos.(d).center (fun x ->
          if x <> d && ((not is_dirty.(x)) || x > d) then begin
            incr checked;
            if compatible config infos.(d) infos.(x) then begin
              incr found;
              add.(d) <- x :: add.(d);
              add.(x) <- d :: add.(x)
            end
          end))
    !dirty;
  (* affected clean rows: had an old dirty neighbour, or gained one *)
  let affected = Array.make n false in
  List.iter
    (fun d ->
      affected.(d) <- true;
      Csr.iter_neighbors prev.adj d (fun x -> affected.(x) <- true))
    !dirty;
  Array.iteri (fun i l -> if l <> [] then affected.(i) <- true) add;
  let merged i =
    let adds = List.sort_uniq compare add.(i) in
    if is_dirty.(i) then Array.of_list adds
    else begin
      (* old row (sorted) minus dirty columns, merged with the sorted
         additions — all additions are dirty, so no duplicates *)
      let old_row = Csr.row prev.adj i in
      let keep = List.filter (fun j -> not is_dirty.(j)) (Array.to_list old_row) in
      let rec merge a b =
        match (a, b) with
        | [], r | r, [] -> r
        | x :: xs, y :: ys ->
          if x < y then x :: merge xs b else y :: merge a ys
      in
      Array.of_list (merge keep adds)
    end
  in
  let adj =
    Csr.rewrite prev.adj (fun i -> if affected.(i) then `Replace (merged i) else `Keep)
  in
  let copied = Csr.n_edges adj - !found in
  ( { adj; infos },
    {
      nodes_total = n;
      nodes_dirty = List.length !dirty;
      pairs_checked = !checked;
      edges_copied = copied;
    } )

(* General path (registers added/removed/re-ordered): rebuild the CSR,
   copying clean-clean verdicts from the previous adjacency. *)
let refresh_general config prev (infos : reg_info array) clean dirty =
  let n = Array.length infos in
  let b = Csr.Builder.create n in
  let checked = ref 0 and copied = ref 0 in
  iter_near_pairs config infos (fun i j ->
      if clean.(i) >= 0 && clean.(j) >= 0 then begin
        if Csr.has_edge prev.adj clean.(i) clean.(j) then begin
          incr copied;
          Csr.Builder.add_edge b i j
        end
      end
      else begin
        incr checked;
        if compatible config infos.(i) infos.(j) then Csr.Builder.add_edge b i j
      end);
  ( { adj = Csr.Builder.finish b; infos },
    {
      nodes_total = n;
      nodes_dirty = dirty;
      pairs_checked = !checked;
      edges_copied = !copied;
    } )

let refresh ?(config = default_config) prev eng lib =
  let infos = composable_infos config eng lib in
  let n = Array.length infos in
  (* A node is clean when a register with a structurally equal snapshot
     existed in the previous graph. Pair checks are pure functions of
     (config, info, info), and the previous build's bucket covered every
     pair its infos could make compatible, so a clean-clean pair's
     verdict can be copied; every pair touching a dirty node is
     re-checked. *)
  let old_ix = Hashtbl.create (max 16 (Array.length prev.infos)) in
  Array.iteri (fun i (info : reg_info) -> Hashtbl.replace old_ix info.cid i)
    prev.infos;
  let clean = Array.make n (-1) in
  let dirty = ref 0 in
  Array.iteri
    (fun i info ->
      (match Hashtbl.find_opt old_ix info.cid with
      | Some oi when prev.infos.(oi) = info -> clean.(i) <- oi
      | Some _ | None -> ());
      if clean.(i) < 0 then incr dirty)
    infos;
  let same_nodes =
    n = Array.length prev.infos
    &&
    let ok = ref true in
    Array.iteri
      (fun i (info : reg_info) ->
        if info.cid <> prev.infos.(i).cid then ok := false)
      infos;
    !ok
  in
  let result, stats =
    if same_nodes then refresh_same_nodes config prev infos clean
    else refresh_general config prev infos clean !dirty
  in
  Mbr_obs.Metrics.incr ~by:stats.nodes_dirty m_nodes_dirty;
  Mbr_obs.Metrics.incr ~by:stats.pairs_checked m_pairs_checked;
  Mbr_obs.Metrics.incr ~by:stats.edges_copied m_edges_copied;
  (result, stats)
