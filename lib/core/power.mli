(** Power estimation — the quantity the paper actually optimizes for
    (§1: clock distribution is 20–40 % of a synchronous design's
    dynamic power).

    Dynamic power follows the standard 0.5·α·f·C·V² model. The clock
    network toggles every cycle (α = 1, twice the data rate is already
    folded into the 0.5·f convention for clocks: two edges per period
    drive CV² of charge through the network per cycle); data nets use a
    configurable activity factor. Capacitances come from the clock tree
    ({!Mbr_cts.Synth}) and the signal-net pin+wire loads; leakage comes
    from the library cells. *)

type config = {
  vdd : float;  (** supply, V (default 0.9 — 28 nm-flavoured) *)
  clock_period : float;  (** ps *)
  data_activity : float;  (** toggles per cycle on signal nets (default 0.25) *)
  wire_cap : float;  (** fF per µm, matching the STA config *)
}

val config_of_sta : Mbr_sta.Engine.config -> config
(** Defaults with the period and wire cap taken from an STA config. *)

type report = {
  clock_power : float;  (** µW: sinks + clock wire + buffers, every cycle *)
  signal_power : float;  (** µW: data pin+wire caps at [data_activity] *)
  leakage_power : float;  (** µW from cell leakage *)
  total : float;
  clock_fraction : float;  (** clock_power / total dynamic *)
}

val estimate :
  ?config:config -> ?cts:Mbr_cts.Synth.result -> Mbr_place.Placement.t -> report
(** Uses the current placement for wire lengths and the current netlist
    for pin caps and leakage; clock capacitance comes from a CTS run on
    the current sinks. Pass [?cts] to reuse a tree already synthesized
    for the same placement instead of synthesizing a second one —
    {!Metrics.collect} does, which halves the CTS work per snapshot. *)
