(** The incremental MBR-composition flow of Fig. 4:

    placement snapshot → compatibility graph → K-partition → candidate
    enumeration + weights → ILP allocation → mapping → LP placement +
    legalization → netlist rewrite → useful skew → MBR sizing →
    metrics.

    Internally each arrow is a named stage function over one shared
    flow context (the inputs, the single incremental STA engine, and
    the stage-time accumulator). The whole pipeline is edit-log
    driven: a persistent {!Session} holds the engine, the compat
    graph, the blocker spatial index and the per-block solve cache,
    and {!Session.recompose} consumes the design/placement edit logs
    to refresh each of them incrementally — [run] is just "open a
    session, recompose once". The allocation stage is the only
    parallel one: with [jobs >= 2] its per-block solves fan out over a
    {!Mbr_util.Pool} of domains, with results guaranteed identical to
    the serial order (see {!Allocate}).

    The flow mutates the design and placement it is given; callers
    wanting a before/after comparison in hand get both metric bundles
    in the result. *)

type options = {
  compat : Compat.config;
  allocate : Allocate.config;
  mode : [ `Ilp | `Greedy_share | `Clique ];
      (** allocator: exact ILP, the Fig. 6 greedy on the same weighted
          candidates, or the external clique heuristic *)
  jobs : int option;
      (** worker domains for the allocate stage; [None] defers to
          [allocate.jobs] (default 1 = serial), [Some j] overrides it.
          The frontends' [-j 0] resolves to
          {!Mbr_util.Pool.recommended_jobs} before it gets here. *)
  skew : Mbr_sta.Skew.config option;  (** None disables useful skew *)
  resize : Resize.config option;  (** None disables MBR sizing *)
  decompose : bool;
      (** split max-width MBRs first and let composition rebuild better
          groupings — the paper's §5 future work (off by default, as in
          the paper's experiments) *)
  corners : Mbr_sta.Corner.t array;
      (** timing corners the session's engine analyzes; every slack the
          flow consumes is the worst over this set (default:
          {!Mbr_sta.Corner.default}, single typical corner) *)
  recover : int;
      (** recovery-round budget per recompose: after composition, MBRs
          with negative worst-corner slack are decomposed (halves
          pinned) and the affected region re-enters
          partition→allocate→compose, up to this many rounds (default
          0 = loop off). {!Session.recompose}'s [?recover] overrides
          it per call. *)
  route_config : Mbr_route.Estimator.config option;
  cts_config : Mbr_cts.Synth.config option;
}

val default_options : options

type progress = {
  pr_stage : string;
      (** the stage being entered, one of the [stage_times] names (a
          recovery round re-enters at ["decompose"]) *)
  pr_round : int;
      (** 0 for the main pass, n for the n-th recovery round *)
  pr_blocks_resolved : int;
      (** partition blocks solved so far, cumulative over the pass *)
  pr_blocks_total : int;
      (** partition blocks of the passes whose allocate stage has
          completed — 0 until the first allocate finishes *)
  pr_wns : float;
      (** worst-corner WNS (ps) as of the latest metrics pass;
          [Float.nan] before the first one *)
}
(** A progress heartbeat, delivered by {!Session.recompose}'s
    [on_progress] callback at every stage entry — what a server
    forwards to clients as out-of-band events during a long
    recompose. *)

type result = {
  before : Metrics.t;
  after : Metrics.t;
  n_split : int;  (** max-width MBRs decomposed before composition *)
  scan_chain_wl : float;
      (** wirelength of the re-stitched scan chains, µm (0 when the
          design has no scan cells) *)
  merge_displacement : float;
      (** total Manhattan distance between each merge's member centroid
          and the placed MBR's center, µm — the placement disturbance
          §3.2 aims to keep small *)
  n_merges : int;  (** MBRs created *)
  n_regs_merged : int;  (** registers absorbed into them *)
  n_incomplete : int;  (** merges using an incomplete MBR *)
  n_resized : int;
  ilp_cost : float;
  n_blocks : int;
  n_candidates : int;
  all_optimal : bool;
  alloc_jobs : int;  (** worker domains the allocate stage ran with *)
  alloc_block_times : Allocate.time_stats;
      (** per-block solve-time histogram of the allocate stage
          (max/mean/total seconds); [max_s] is the parallel critical
          path, [total_s] the serial-equivalent work *)
  skew_report : Mbr_sta.Skew.report option;
  new_mbrs : Mbr_netlist.Types.cell_id list;
  runtime_s : float;
      (** duration of the pass's ["flow.recompose"] trace span — same
          monotonic clock, same two reads, so an exported Chrome trace
          and this field can never disagree *)
  stage_times : (string * float) list;
      (** seconds per stage, in execution order: "eco-reset",
          "metrics-before", "decompose", "compat-graph",
          "blocker-index", "allocate", "merge", "scan-restitch",
          "skew", "resize", "metrics-after". Each entry is the duration
          of that stage's trace span (see {!Mbr_obs.Trace}) — derived
          from the trace clock, not a second [gettimeofday] pair *)
  sta_full_builds : int;
      (** full STA graph constructions over the whole session: 1 (the
          initial build) unless an edit batch forced {!Mbr_sta.Engine.refresh}
          to fall back to a rebuild *)
  sta_refreshes : int;
      (** STA updates that took the incremental path *)
  eco_blocks_resolved : int;
      (** partition blocks actually solved by this run/recompose *)
  eco_blocks_reused : int;
      (** partition blocks spliced in from the session's solve cache —
          0 for a from-scratch [run], > 0 when a recompose found blocks
          the ECO left untouched *)
  recover_rounds : int;
      (** recovery rounds this pass actually ran: 0 when the budget was
          0 or every new MBR was already clean in every corner *)
  recover_splits : int;
      (** violating MBRs decomposed across all recovery rounds *)
  cancelled : bool;
      (** the recompose's cancellation token tripped at some point
          while it ran: the pass still completed every stage and the
          result is complete and feasible, but the allocation may hold
          unproven incumbents and the skew sweep may have stopped
          early. Always [false] when no token was passed. *)
}

(** A persistent composition session for ECO workflows.

    Open a session once over a design/placement/library, then mutate
    the design and placement freely through their normal editing APIs
    (move cells, add/remove/retype registers, rewire nets) and call
    {!Session.recompose} after each batch. The session owns every
    derived structure the pipeline needs — the incremental STA engine,
    the compatibility graph, the blocker spatial index, and the
    per-block allocation cache — and [recompose] consumes the
    design/placement edit logs (the same pull-based cursor scheme the
    STA engine uses) to bring each one up to date incrementally:

    - the STA engine via {!Mbr_sta.Engine.refresh}, after zeroing the
      useful skew a previous recompose applied (a from-scratch run
      starts skewless, so a recompose must too);
    - the compat graph via {!Compat.refresh} — only registers whose
      snapshot (slacks, feasible region, attributes, position) changed
      are re-checked against their spatial neighbourhood;
    - the blocker index via {!Spatial.update}/add/remove for exactly
      the cells the logs name;
    - the allocation via {!Allocate.run_cached} — blocks of the
      K-partition whose content hash is unchanged are spliced in from
      the cache and only blocks intersecting the dirty region are
      re-solved.

    Each [recompose] is property-tested equivalent to a from-scratch
    {!run} on the same mutated inputs (same register count, ILP cost,
    WNS/TNS).

    {b Ownership.} The session is one mutable value with no internal
    locking; at most one domain may drive it at a time (the
    single-writer discipline). The discipline is explicit: a domain
    {!acquire}s the session (a CAS on the owner field, so two domains
    can never both hold it), drives it through any number of edits and
    recomposes, and {!release}s it — after which any other domain may
    acquire it. Nothing in the state pins a session to the domain that
    created it, so sessions are movable: a service can park hundreds of
    them and hand each to whichever worker domain serves its next
    request. {!recompose} on an unowned session claims it for just
    that call, keeping plain single-threaded use ceremony-free. *)
module Session : sig
  type t

  val create :
    ?options:options ->
    design:Mbr_netlist.Design.t ->
    placement:Mbr_place.Placement.t ->
    library:Mbr_liberty.Library.t ->
    sta_config:Mbr_sta.Engine.config ->
    unit ->
    t
  (** Builds the STA engine (the session's one full graph
      construction); everything else is materialized lazily by the
      first {!recompose}. Raises [Invalid_argument] when [placement]
      was not built over [design]. *)

  val recompose :
    ?cancel:Mbr_util.Cancel.t ->
    ?recover:int ->
    ?on_progress:(progress -> unit) ->
    t ->
    result
  (** Run the composition pipeline over the current design/placement
      state, reusing everything the edit logs prove untouched. The
      first call is exactly {!run}; later calls report
      [eco_blocks_reused] > 0 whenever the ECO left partition blocks
      clean.

      [recover] overrides [options.recover] for this call: after the
      main pass, while some splittable MBR (composed by any pass, or
      multi-bit in the input design) has negative worst-corner slack
      and rounds remain, the violators are decomposed with
      {!Decompose.split_cells}[ ~pin:true] (the halves
      can be resized but never re-composed, so rounds are monotone)
      and the pipeline re-enters at the compat graph. Each round rides
      the session's incrementality — only blocks the splits dirtied
      re-solve. Accumulated counts land in [recover_rounds] /
      [recover_splits]; [after] is the final post-recovery snapshot.

      Requires the session to be owned by the calling domain or
      unowned (then it is claimed for the duration of the call);
      raises [Invalid_argument] when another domain holds it.

      [on_progress] fires synchronously on the calling domain at
      every stage entry (main pass and recovery rounds alike) with
      the cumulative {!progress} state. The callback must be cheap
      and must not touch the session; an exception it raises aborts
      the recompose.

      [cancel] reaches the two open-ended stages — the per-block
      branch-and-bound ({!Allocate.run_cached}) and the skew sweep
      ({!Mbr_sta.Skew.optimize}). A tripped token never aborts the
      pass: every stage still runs, the solvers fall back to their
      incumbents, the result reports [cancelled = true], and the
      session remains fully consistent — the next recompose behaves as
      if this one had simply used a smaller node budget (the solve
      cache keeps its previous generation rather than memoizing
      time-dependent incumbents). *)

  (** {2 Ownership} *)

  val try_acquire : t -> bool
  (** Claim the session for the calling domain: [true] when the domain
      now holds it (re-acquiring one's own session succeeds), [false]
      when another domain does. *)

  val acquire : t -> unit
  (** {!try_acquire}, raising [Invalid_argument] on failure. *)

  val release : t -> unit
  (** Give the session up so another domain can acquire it. Raises
      [Invalid_argument] when the calling domain does not hold it —
      releasing somebody else's session is always a bug. *)

  val owner_id : t -> int option
  (** Domain id currently holding the session, [None] when unowned.
      For diagnostics and assertions; racing a decision on it is what
      {!try_acquire} is for. *)

  val design : t -> Mbr_netlist.Design.t

  val placement : t -> Mbr_place.Placement.t

  val engine : t -> Mbr_sta.Engine.t
  (** The session's STA engine — shared with the caller for slack
      queries between recomposes; do not [set_skew] behind the
      session's back. *)

  val recomposes : t -> int
  (** Completed {!recompose} calls. *)

  val set_corners : t -> Mbr_sta.Corner.t array -> unit
  (** Swap the corner set the session's engine analyzes (see
      {!Mbr_sta.Engine.set_corners}); the next recompose re-measures
      everything under the new set (the cached "after" snapshot is
      dropped — its timing columns are stale). Raises
      [Invalid_argument] on an empty set. *)

  val last_compat_stats : t -> Compat.refresh_stats option
  (** Dirtiness accounting of the most recent incremental compat-graph
      refresh; [None] until the second {!recompose} (the first builds
      the graph from scratch). *)
end

val run :
  ?options:options ->
  design:Mbr_netlist.Design.t ->
  placement:Mbr_place.Placement.t ->
  library:Mbr_liberty.Library.t ->
  sta_config:Mbr_sta.Engine.config ->
  unit ->
  result
(** [Session.create] + one [Session.recompose]: the one-shot flow.
    Raises [Invalid_argument] when [placement] was not built over
    [design] (the two would silently drift apart mid-flow otherwise). *)
