(** The Table 1 measurement bundle: one snapshot of a placed design,
    collected identically before and after composition so the Save
    percentages are apples-to-apples. *)

type t = {
  cells : int;  (** live cells *)
  area : float;  (** µm², cell area + clock-tree buffer area *)
  clk_wl : float;  (** clock-tree wirelength, µm *)
  other_wl : float;  (** signal (star) wirelength, µm *)
  total_regs : int;
  comp_regs : int;  (** composable under {!Compat.is_composable} *)
  clk_bufs : int;
  clk_cap : float;  (** fF: sinks + clock wire + buffers *)
  clk_power : float;  (** µW at the design's clock period (see {!Power}) *)
  clk_power_frac : float;  (** clock share of dynamic power (§1: 20–40 %) *)
  tns : float;  (** ps, <= 0, worst-corner *)
  wns : float;  (** ps, worst-corner *)
  failing : int;
  endpoints : int;
  ovfl : int;  (** overflow edges *)
  utilization : float;
  corners : (string * float * float) list;
      (** per-corner [(name, wns, tns)], in the engine's corner-set
          order; a single ["typical"] entry for single-corner runs *)
}

val collect :
  ?route_config:Mbr_route.Estimator.config ->
  ?cts_config:Mbr_cts.Synth.config ->
  Mbr_sta.Engine.t ->
  Mbr_liberty.Library.t ->
  t
(** Runs STA (with whatever useful skew the engine carries), CTS and
    the congestion estimate on the engine's placement. *)

val pp_row : Format.formatter -> t -> unit
(** One-line human-readable summary. *)

val save_pct : before:t -> after:t -> (string * float) list
(** The paper's "Save" row: percent improvement per column (positive =
    better). *)
