module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Csr = Mbr_graph.Csr
module Library = Mbr_liberty.Library
module Cell_lib = Mbr_liberty.Cell

type config = {
  allow_incomplete : bool;
  incomplete_area_overhead : float;
  max_per_block : int;
  use_weights : bool;
}

let default_config =
  {
    allow_incomplete = true;
    incomplete_area_overhead = 0.05;
    max_per_block = 6_000;
    use_weights = true;
  }

type t = {
  members : int list;
  member_cids : Mbr_netlist.Types.cell_id list;
  bits : int;
  target_bits : int;
  incomplete : bool;
  weight : float;
  region : Rect.t;
  func_class : string;
}

let is_singleton c = match c.members with [ _ ] -> true | [] | _ :: _ :: _ -> false

let target_cell cfg lib infos members bits =
  let func_class =
    match members with
    | m :: _ -> (infos.(m) : Compat.reg_info).Compat.func_class
    | [] -> invalid_arg "Candidate: empty member list"
  in
  let max_drive_res = Mapping.min_drive_res infos members in
  let need = Mapping.scan_need infos members in
  let best bits' = Mapping.best_for lib ~func_class ~bits:bits' ~max_drive_res ~need in
  if List.mem bits (Library.widths lib ~func_class) then
    match best bits with
    | Some c -> Some (bits, false, c)
    | None -> None
  else if cfg.allow_incomplete then begin
    match Library.smallest_width_geq lib ~func_class bits with
    | Some w -> (
      match best w with Some c -> Some (w, true, c) | None -> None)
    | None -> None
  end
  else None

let iter cfg (graph : Compat.graph) ~block ~lib ~blocker_index yield =
  let infos = graph.Compat.infos in
  let g = graph.Compat.adj in
  let block = List.sort compare block in
  let max_width =
    match block with
    | [] -> 0
    | m :: _ -> Library.max_width lib ~func_class:infos.(m).Compat.func_class
  in
  let count = ref 0 in
  let member_area members =
    List.fold_left
      (fun acc i ->
        let info = infos.(i) in
        acc +. Rect.area info.Compat.footprint)
      0.0 members
  in
  let emit members bits region =
    match members with
    | [] -> ()
    | [ single ] ->
      let info = infos.(single) in
      yield
        {
          members = [ single ];
          member_cids = [ info.Compat.cid ];
          bits = info.Compat.bits;
          target_bits = info.Compat.bits;
          incomplete = false;
          weight = 1.0;
          region = info.Compat.feasible;
          func_class = info.Compat.func_class;
        }
    | _ :: _ :: _ -> (
      match target_cell cfg lib infos members bits with
      | None -> ()
      | Some (target_bits, incomplete, cell) ->
        (* §5's operative form of the §3 area rule: the incomplete cell
           may cost at most [overhead] more area than what it replaces
           (which also implies a lower area/bit than the members'
           average whenever target_bits > bits). *)
        let area_ok =
          (not incomplete)
          || cell.Cell_lib.area
             <= (1.0 +. cfg.incomplete_area_overhead) *. member_area members
        in
        if area_ok then begin
          let weight =
            if cfg.use_weights then begin
              let rects = List.map (fun i -> infos.(i).Compat.footprint) members in
              let polygon = Weight.test_polygon rects in
              let constituents = List.map (fun i -> infos.(i).Compat.cid) members in
              let blockers =
                Weight.count_blockers ~polygon ~constituents ~index:blocker_index
              in
              Weight.formula ~bits ~blockers
            end
            else 1.0 /. float_of_int bits
          in
          if Float.is_finite weight then
            yield
              {
                members = List.sort compare members;
                member_cids =
                  List.map (fun i -> infos.(i).Compat.cid) (List.sort compare members);
                bits;
                target_bits;
                incomplete;
                weight;
                region;
                func_class = infos.(List.hd members).Compat.func_class;
              }
        end)
  in
  let block_arr = Array.of_list block in
  let in_block = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace in_block v ()) block_arr;
  let seen = Hashtbl.create 256 in
  let emit_once members bits region =
    let key = List.sort compare members in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      emit members bits region
    end
  in
  let block_neighbors v =
    List.rev
      (Csr.fold_neighbors g v
         (fun acc w -> if Hashtbl.mem in_block w then w :: acc else acc)
         [])
  in
  (* Exhaustive ordered DFS: every clique of the block visited once.
     Affordable only on small blocks. *)
  let rec dfs members bits region centroid ext =
    if !count < cfg.max_per_block then begin
      incr count;
      emit_once members bits region;
      let ordered =
        List.sort
          (fun a b ->
            compare
              (Point.manhattan centroid infos.(a).Compat.center)
              (Point.manhattan centroid infos.(b).Compat.center))
          ext
      in
      List.iter
        (fun v ->
          if !count < cfg.max_per_block then begin
            let info = infos.(v) in
            let bits' = bits + info.Compat.bits in
            if bits' <= max_width then begin
              match Rect.inter region info.Compat.feasible with
              | None -> ()
              | Some region' ->
                let ext' =
                  List.filter (fun w -> w > v && Csr.has_edge g v w) ext
                in
                let k = float_of_int (List.length members) in
                let centroid' =
                  Point.scale
                    (1.0 /. (k +. 1.0))
                    (Point.add (Point.scale k centroid) info.Compat.center)
                in
                dfs (members @ [ v ]) bits' region' centroid' ext'
            end
          end)
        ordered
    end
  in
  (* Structured enumeration for dense blocks: a full sub-clique walk of
     a 30-node near-clique is astronomically large, so we emit the
     candidates that actually win the ILP — spatially tight groups with
     few hull blockers:

     - a blocker-aware nearest-first chain from every seed (each
       extension step prefers candidates that keep the test polygon
       clean, then proximity), all prefixes emitted;
     - greedy disjoint tilings of the block from several starting
       corners (so the ILP can cover a whole bank with clean tiles the
       way the Fig. 6 heuristic does);
     - every compatible pair, and every pair extended by its nearest
       common neighbour. *)
  let blockers_of members =
    let rects = List.map (fun i -> infos.(i).Compat.footprint) members in
    let polygon = Weight.test_polygon rects in
    let constituents = List.map (fun i -> infos.(i).Compat.cid) members in
    Weight.count_blockers ~polygon ~constituents ~index:blocker_index
  in
  let grow_chain ?(allowed = fun _ -> true) seed =
    let rec grow members bits region centroid =
      emit_once members bits region;
      if bits < max_width then begin
        let common =
          List.filter
            (fun w ->
              (not (List.mem w members))
              && allowed w
              && List.for_all (fun m -> Csr.has_edge g m w) members
              && infos.(w).Compat.bits + bits <= max_width)
            (block_neighbors seed)
        in
        let best =
          List.fold_left
            (fun acc w ->
              match Rect.inter region infos.(w).Compat.feasible with
              | None -> acc
              | Some r ->
                let score =
                  ( (if cfg.use_weights then blockers_of (w :: members) else 0),
                    Point.manhattan centroid infos.(w).Compat.center )
                in
                (match acc with
                | Some (_, bs) when bs <= score -> acc
                | Some _ | None -> Some ((w, r), score)))
            None common
        in
        match best with
        | Some ((w, region'), _) ->
          let k = float_of_int (List.length members) in
          let centroid' =
            Point.scale
              (1.0 /. (k +. 1.0))
              (Point.add (Point.scale k centroid) infos.(w).Compat.center)
          in
          let members' = members @ [ w ] in
          grow members' (bits + infos.(w).Compat.bits) region' centroid'
        | None -> members
      end
      else members
    in
    let info = infos.(seed) in
    grow [ seed ] info.Compat.bits info.Compat.feasible info.Compat.center
  in
  let tiling order =
    let covered = Hashtbl.create 32 in
    List.iter
      (fun seed ->
        if not (Hashtbl.mem covered seed) then begin
          let chain =
            grow_chain ~allowed:(fun w -> not (Hashtbl.mem covered w)) seed
          in
          List.iter (fun v -> Hashtbl.replace covered v ()) chain
        end)
      order
  in
  let structured () =
    List.iter
      (fun v ->
        let info = infos.(v) in
        emit_once [ v ] info.Compat.bits info.Compat.feasible;
        ignore (grow_chain v))
      block;
    (* disjoint tilings from four sweep orders *)
    let key f = List.sort (fun a b -> compare (f a) (f b)) block in
    let c i = infos.(i).Compat.center in
    tiling (key (fun i -> ((c i).Point.y, (c i).Point.x)));
    tiling (key (fun i -> (-.(c i).Point.y, -.(c i).Point.x)));
    tiling (key (fun i -> ((c i).Point.x, (c i).Point.y)));
    tiling (key (fun i -> (-.(c i).Point.x, -.(c i).Point.y)));
    (* pairs and nearest-extended triples *)
    List.iter
      (fun v ->
        let iv = infos.(v) in
        List.iter
          (fun w ->
            if w > v then begin
              let iw = infos.(w) in
              let bits = iv.Compat.bits + iw.Compat.bits in
              if bits <= max_width then begin
                match Rect.inter iv.Compat.feasible iw.Compat.feasible with
                | None -> ()
                | Some region ->
                  emit_once [ v; w ] bits region;
                  let mid = Point.midpoint iv.Compat.center iw.Compat.center in
                  let common =
                    List.filter
                      (fun u ->
                        u <> v && u <> w && Csr.has_edge g u v
                        && Csr.has_edge g u w
                        && infos.(u).Compat.bits + bits <= max_width)
                      (block_neighbors v)
                  in
                  let nearest =
                    List.fold_left
                      (fun acc u ->
                        let d = Point.manhattan mid infos.(u).Compat.center in
                        match acc with
                        | Some (_, bd) when bd <= d -> acc
                        | Some _ | None -> (
                          match Rect.inter region infos.(u).Compat.feasible with
                          | Some r -> Some ((u, r), d)
                          | None -> acc))
                      None common
                  in
                  (match nearest with
                  | Some ((u, r), _) ->
                    emit_once [ v; w; u ] (bits + infos.(u).Compat.bits) r
                  | None -> ())
              end
            end)
          (block_neighbors v))
      block
  in
  let dfs_threshold = 13 in
  if List.length block <= dfs_threshold then
    List.iter
      (fun v ->
        let info = infos.(v) in
        let ext =
          List.filter (fun w -> w > v) (block_neighbors v)
        in
        dfs [ v ] info.Compat.bits info.Compat.feasible info.Compat.center ext)
      block
  else structured ()

let enumerate cfg graph ~block ~lib ~blocker_index =
  let out = ref [] in
  iter cfg graph ~block ~lib ~blocker_index (fun c -> out := c :: !out);
  List.rev !out
