(** Point index on a uniform grid: blocker lookups for the weight
    heuristic (which registers' centers fall inside a candidate's test
    polygon) and other range queries over cell centers. *)

type 'a t

val create : ?bucket:float -> unit -> 'a t
(** [bucket] is the grid pitch in µm (default 25). *)

val add : 'a t -> 'a -> Mbr_geom.Point.t -> unit

val remove : 'a t -> 'a -> Mbr_geom.Point.t -> unit
(** Removes one occurrence of the (value, point) pair, if present. *)

val update : 'a t -> 'a -> from:Mbr_geom.Point.t -> to_:Mbr_geom.Point.t -> unit
(** Moves one occurrence of [(value, from)] to [(value, to_)].
    Equivalent to [remove] + [add] but rewrites the entry in place when
    both points hash to the same grid cell, so ECO sessions that jitter
    blockers by less than a bucket pitch do not churn the table. If the
    [(value, from)] entry is absent, the value is simply added at
    [to_]. *)

val query_rect : 'a t -> Mbr_geom.Rect.t -> ('a * Mbr_geom.Point.t) list
(** All entries whose point lies in the closed rectangle.

    {b Domain safety:} a pure read — it never touches the index's
    mutable state. Any number of domains may query the same index
    concurrently provided no [add]/[remove] runs at the same time;
    the allocate stage upholds this by fully populating the blocker
    index before fanning out (see {!Allocate}). *)

val size : 'a t -> int

val n_buckets : 'a t -> int
(** Grid buckets currently allocated; emptied buckets are reclaimed, so
    this tracks the live population, not the historical footprint. *)
