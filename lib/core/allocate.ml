module Csr = Mbr_graph.Csr
module Kpart = Mbr_graph.Kpart
module Pool = Mbr_util.Pool
module Vec = Mbr_util.Vec
module Sp = Mbr_ilp.Set_partition

type config = {
  candidate : Candidate.config;
  partition_bound : int;
  node_limit : int;
  jobs : int;
  warm_start : bool;
}

let default_config =
  {
    candidate = Candidate.default_config;
    partition_bound = 30;
    node_limit = 300_000;
    jobs = 1;
    warm_start = false;
  }

type block_result = {
  chosen : Candidate.t list;
  block_cost : float;
  optimal : bool;
  block_candidates : int;
  solve_time_s : float;
}

type time_stats = { total_s : float; mean_s : float; max_s : float }

type selection = {
  merges : Candidate.t list;
  kept : int list;
  cost : float;
  n_blocks : int;
  n_candidates : int;
  all_optimal : bool;
  block_times : time_stats;
}

let singleton_of (infos : Compat.reg_info array) v =
  let info = infos.(v) in
  {
    Candidate.members = [ v ];
    member_cids = [ info.Compat.cid ];
    bits = info.Compat.bits;
    target_bits = info.Compat.bits;
    incomplete = false;
    weight = 1.0;
    region = info.Compat.feasible;
    func_class = info.Compat.func_class;
  }

(* The ILP path consumes the candidate stream directly: each candidate
   is appended to the problem's column vector as it is emitted, so the
   enumeration is never buffered as a separate list alongside the
   problem — the per-block vector the chosen indices resolve against is
   the only copy, and nothing outlives the block solve. *)
let solve_block_ilp ?cancel ?(warm_hint = []) cfg (graph : Compat.graph) ~lib
    ~blocker_index block =
  (* element ids = positions of nodes within the block *)
  let pos = Hashtbl.create 32 in
  List.iteri (fun k v -> Hashtbl.replace pos v k) block;
  (* A warm hint is the chosen cover of a near-identical previous solve
     of this block, as (member cids, target bits) per chosen candidate.
     Hinted candidates are recognized as the enumeration streams past
     them; each hint entry matches at most once (removed on first
     match), so the matched index set inherits the hint's disjointness. *)
  let hint_tbl =
    match warm_hint with
    | [] -> None
    | hs ->
      let t = Hashtbl.create (List.length hs) in
      List.iter
        (fun (cids, tb) -> Hashtbl.replace t (List.sort compare cids, tb) ())
        hs;
      Some t
  in
  let warm = ref [] in
  let cands = Vec.create () in
  Candidate.iter cfg.candidate graph ~block ~lib ~blocker_index (fun c ->
      let i = Vec.push cands c in
      match hint_tbl with
      | None -> ()
      | Some t ->
        let key =
          (List.sort compare c.Candidate.member_cids, c.Candidate.target_bits)
        in
        if Hashtbl.mem t key then begin
          Hashtbl.remove t key;
          warm := i :: !warm
        end);
  let n_cands = Vec.length cands in
  let problem =
    {
      Sp.n_elems = List.length block;
      candidates =
        Vec.map_to_array
          (fun (c : Candidate.t) ->
            {
              Sp.weight = c.Candidate.weight;
              elems = List.map (Hashtbl.find pos) c.Candidate.members;
            })
          cands;
    }
  in
  let result = Sp.solve ~node_limit:cfg.node_limit ?cancel ~warm:!warm problem in
  match result.Sp.status with
  | Sp.Infeasible ->
    (* cannot happen when the enumeration emits every singleton; if it
       ever fires anyway, fall back to real "keep as-is" singletons
       built from the graph — never fabricated placeholders *)
    Logs.warn (fun m ->
        m "Allocate: set-partition ILP infeasible on a %d-node block; \
           keeping its registers unmerged"
          (List.length block));
    let keeps = List.map (singleton_of graph.Compat.infos) block in
    (keeps, float_of_int (List.length block), false, n_cands)
  | (Sp.Optimal | Sp.Feasible) when result.Sp.chosen = [] && block <> [] ->
    (* a node-limited solve that never reached a full cover: the kernel
       seeds a greedy incumbent so this is near-unreachable, but a
       [Feasible] with nothing chosen must not silently drop the
       block's registers *)
    Logs.warn (fun m ->
        m "Allocate: set-partition ILP returned no cover on a %d-node \
           block (node limit %d); keeping its registers unmerged"
          (List.length block) cfg.node_limit);
    let keeps = List.map (singleton_of graph.Compat.infos) block in
    (keeps, float_of_int (List.length block), false, n_cands)
  | Sp.Optimal | Sp.Feasible ->
    ( List.map (Vec.get cands) result.Sp.chosen,
      result.Sp.cost,
      result.Sp.status = Sp.Optimal,
      n_cands )

(* Greedy weighted set-partitioning on the same candidate set as the
   ILP: repeatedly commit the disjoint candidate with the best
   weight-per-register share. This is the heuristic allocator Fig. 6
   compares the ILP against — same formulation, no global optimization. *)
let solve_block_share cands =
  let order =
    List.sort
      (fun (a : Candidate.t) (b : Candidate.t) ->
        compare
          (a.Candidate.weight /. float_of_int (List.length a.Candidate.members),
           a.Candidate.weight)
          (b.Candidate.weight /. float_of_int (List.length b.Candidate.members),
           b.Candidate.weight))
      cands
  in
  let taken = Hashtbl.create 32 in
  let chosen =
    List.filter
      (fun (c : Candidate.t) ->
        let free =
          List.for_all (fun v -> not (Hashtbl.mem taken v)) c.Candidate.members
        in
        if free then
          List.iter (fun v -> Hashtbl.replace taken v ()) c.Candidate.members;
        free)
      order
  in
  let cost =
    List.fold_left (fun acc (c : Candidate.t) -> acc +. c.Candidate.weight) 0.0 chosen
  in
  (* a greedy pick is never a proof of optimality *)
  (chosen, cost, false)

(* The external [8]/[12]-style heuristic: maximal-clique merging on the
   raw compatibility subgraph (see Baseline), converted into the same
   selection shape the ILP path produces. *)
let solve_block_greedy (graph : Compat.graph) lib block =
  let infos = graph.Compat.infos in
  let groups = Baseline.solve_block graph ~block ~lib in
  let taken = Hashtbl.create 32 in
  let to_candidate group =
    List.iter (fun v -> Hashtbl.replace taken v ()) group;
    let bits = List.fold_left (fun acc v -> acc + infos.(v).Compat.bits) 0 group in
    let region =
      match
        Mbr_geom.Rect.inter_all (List.map (fun v -> infos.(v).Compat.feasible) group)
      with
      | Some r -> r
      | None -> infos.(List.nth group 0).Compat.feasible
    in
    {
      Candidate.members = List.sort compare group;
      member_cids = List.map (fun v -> infos.(v).Compat.cid) (List.sort compare group);
      bits;
      target_bits = bits;
      incomplete = false;
      weight = 1.0 /. float_of_int bits;
      region;
      func_class = infos.(List.nth group 0).Compat.func_class;
    }
  in
  let merges = List.map to_candidate groups in
  let singles =
    List.filter_map
      (fun v -> if Hashtbl.mem taken v then None else Some (singleton_of infos v))
      block
  in
  let all = merges @ singles in
  let cost =
    List.fold_left (fun acc (c : Candidate.t) -> acc +. c.Candidate.weight) 0.0 all
  in
  (all, cost, false)

let mode_name = function
  | `Ilp -> "ilp"
  | `Greedy_share -> "greedy-share"
  | `Clique -> "clique"

(* Per-block solve times feed a histogram rather than a gauge: the max
   bin is the parallel critical path, the spread says whether the
   partition bound balances the blocks. *)
let h_solve_s = Mbr_obs.Metrics.histogram "alloc.block_solve_s"

let m_cache_hit = Mbr_obs.Metrics.counter "alloc.cache.hit"

let m_cache_miss = Mbr_obs.Metrics.counter "alloc.cache.miss"

let solve_block ?(block_id = -1)
    ?(mode : [ `Ilp | `Greedy_share | `Clique ] = `Ilp) ?cancel ?warm_hint
    config graph ~lib ~blocker_index ~block =
  (* [timed_span] hands back the duration measured by the same pair of
     clock reads that bound the trace span, so [solve_time_s] and the
     trace agree exactly (and no wall-clock syscall pair remains). *)
  let (chosen, block_cost, optimal, block_candidates), solve_time_s =
    Mbr_obs.Trace.timed_span ~name:"alloc.solve_block"
      ~args:
        [
          ("block", Mbr_obs.Trace.Int block_id);
          ("size", Mbr_obs.Trace.Int (List.length block));
          ("mode", Mbr_obs.Trace.Str (mode_name mode));
        ]
      (fun () ->
        match mode with
        | `Ilp ->
          solve_block_ilp ?cancel ?warm_hint config graph ~lib ~blocker_index
            block
        | `Greedy_share ->
          let cands =
            Candidate.enumerate config.candidate graph ~block ~lib ~blocker_index
          in
          let n = List.length cands in
          let chosen, cost, opt = solve_block_share cands in
          (chosen, cost, opt, n)
        | `Clique ->
          let chosen, cost, opt = solve_block_greedy graph lib block in
          (chosen, cost, opt, 0))
  in
  Mbr_obs.Metrics.observe h_solve_s solve_time_s;
  { chosen; block_cost; optimal; block_candidates; solve_time_s }

let reduce ~mode results =
  (* Fold in block (array) order: exactly the additions and consing of
     the serial loop, so the selection is independent of how the block
     results were computed. *)
  let merges = ref [] in
  let kept = ref [] in
  let cost = ref 0.0 in
  let n_candidates = ref 0 in
  let all_optimal = ref true in
  let total_s = ref 0.0 in
  let max_s = ref 0.0 in
  Array.iter
    (fun r ->
      cost := !cost +. r.block_cost;
      n_candidates := !n_candidates + r.block_candidates;
      if not r.optimal then all_optimal := false;
      total_s := !total_s +. r.solve_time_s;
      if r.solve_time_s > !max_s then max_s := r.solve_time_s;
      List.iter
        (fun (c : Candidate.t) ->
          match c.Candidate.members with
          | [ v ] -> kept := v :: !kept
          | _ -> merges := c :: !merges)
        r.chosen)
    results;
  let n_blocks = Array.length results in
  {
    merges = List.rev !merges;
    kept = List.sort compare !kept;
    cost = !cost;
    n_blocks;
    n_candidates = !n_candidates;
    (* the heuristic modes never prove optimality, even over zero
       blocks *)
    all_optimal =
      (match mode with
      | `Ilp -> !all_optimal
      | `Greedy_share | `Clique -> false);
    block_times =
      {
        total_s = !total_s;
        mean_s = (if n_blocks = 0 then 0.0 else !total_s /. float_of_int n_blocks);
        max_s = !max_s;
      };
  }

let partition_blocks config (graph : Compat.graph) =
  let infos = graph.Compat.infos in
  let position i = infos.(i).Compat.center in
  Array.of_list
    (Kpart.partition_csr ~bound:config.partition_bound graph.Compat.adj ~position)

(* Claim order for the parallel fan-out: largest predicted solve first.
   Block solve time is driven by the candidate enumeration, which grows
   with the block's size and in-block compatibility density, so the key
   is (size, in-block edges) descending — ascending block index breaks
   ties to keep the order reproducible. Scheduling the expensive blocks
   first stops a whale claimed last from serializing the tail of the
   run; results are slot-placed, so the selection is unchanged. *)
let schedule_order (graph : Compat.graph) blocks =
  let nb = Array.length blocks in
  let key =
    Array.map
      (fun block ->
        let arr = Array.of_list block in
        let m = Array.length arr in
        let edges = ref 0 in
        for i = 0 to m - 1 do
          for j = i + 1 to m - 1 do
            if Csr.has_edge graph.Compat.adj arr.(i) arr.(j) then incr edges
          done
        done;
        (m, !edges))
      blocks
  in
  let order = Array.init nb Fun.id in
  Array.sort
    (fun a b ->
      let c = compare key.(b) key.(a) in
      if c <> 0 then c else compare a b)
    order;
  order

let run ?(mode : [ `Ilp | `Greedy_share | `Clique ] = `Ilp)
    ?(config = default_config) ?cancel graph ~lib ~blocker_index =
  let blocks = partition_blocks config graph in
  let idx = Array.init (Array.length blocks) Fun.id in
  let solve i =
    (* one token, every worker: the flag is atomic, so a single cancel
       winds down the whole fan-out at each block's next search node *)
    solve_block ~block_id:i ~mode ?cancel config graph ~lib ~blocker_index
      ~block:blocks.(i)
  in
  let results =
    (* jobs = 1: the serial code path, no pool involved *)
    if config.jobs <= 1 then Array.map solve idx
    else
      Pool.map_array ~jobs:config.jobs
        ~order:(schedule_order graph blocks)
        solve idx
  in
  reduce ~mode results

type cache = {
  mutable table : (string, block_result) Hashtbl.t;
  mutable by_members :
    (Mbr_netlist.Types.cell_id list, block_result) Hashtbl.t;
      (* secondary index of the same generation, keyed by the block's
         sorted member cids alone: when an edit perturbs a block just
         enough to miss the exact content key (a member moved, a slack
         drifted) but the membership is unchanged, the previous cover
         is still an excellent warm-start hint for the re-solve *)
}

let create_cache () = { table = Hashtbl.create 64; by_members = Hashtbl.create 64 }

let cache_size cache = Hashtbl.length cache.table

type cache_stats = { blocks_resolved : int; blocks_reused : int }

(* Everything [solve_block] reads about a block, serialized: the mode,
   the candidate/solver knobs, the member snapshots in block order, the
   in-block adjacency as member positions, and the blocker-index
   entries that any weight query for this block can see (every test
   polygon is a hull of member footprints, so its bbox lies inside the
   union bbox of the members' footprints). Two blocks with equal keys
   are solved identically up to node renumbering, which member cids
   undo. The library is deliberately absent: it is immutable and fixed
   for the life of a session's cache. *)
let block_key ~(mode : [ `Ilp | `Greedy_share | `Clique ]) config
    (graph : Compat.graph) ~blocker_index ~block =
  let infos = graph.Compat.infos in
  let member_infos = List.map (fun v -> infos.(v)) block in
  let arr = Array.of_list block in
  let m = Array.length arr in
  let adj = ref [] in
  for i = m - 1 downto 0 do
    for j = m - 1 downto i + 1 do
      if Csr.has_edge graph.Compat.adj arr.(i) arr.(j) then adj := (i, j) :: !adj
    done
  done;
  let blockers =
    match member_infos with
    | [] -> []
    | info0 :: rest ->
      let bbox =
        List.fold_left
          (fun acc (i : Compat.reg_info) -> Mbr_geom.Rect.union acc i.Compat.footprint)
          info0.Compat.footprint rest
      in
      List.sort compare (Spatial.query_rect blocker_index bbox)
  in
  Marshal.to_string
    (mode, config.candidate, config.node_limit, member_infos, !adj, blockers)
    [ Marshal.No_sharing ]

(* A cached cover is valid for a new graph revision modulo node
   renumbering; cids are stable across revisions and the cid -> node
   map is monotone, so remapped member lists stay sorted. *)
let remap_result cid_ix r =
  {
    r with
    chosen =
      List.map
        (fun (c : Candidate.t) ->
          {
            c with
            Candidate.members =
              List.map (Hashtbl.find cid_ix) c.Candidate.member_cids;
          })
        r.chosen;
  }

let run_cached ?(mode : [ `Ilp | `Greedy_share | `Clique ] = `Ilp)
    ?(config = default_config) ?cancel cache graph ~lib ~blocker_index =
  let blocks = partition_blocks config graph in
  let nb = Array.length blocks in
  let keys =
    Array.map (fun block -> block_key ~mode config graph ~blocker_index ~block) blocks
  in
  let infos = graph.Compat.infos in
  let cid_ix = Hashtbl.create (max 16 (Array.length infos)) in
  Array.iteri
    (fun i (info : Compat.reg_info) -> Hashtbl.replace cid_ix info.Compat.cid i)
    infos;
  let members_key block =
    List.sort compare (List.map (fun v -> infos.(v).Compat.cid) block)
  in
  let results = Array.make nb None in
  let misses = ref [] in
  for i = nb - 1 downto 0 do
    match Hashtbl.find_opt cache.table keys.(i) with
    | Some r -> results.(i) <- Some (remap_result cid_ix r)
    | None -> misses := i :: !misses
  done;
  let miss_idx = Array.of_list !misses in
  Mbr_obs.Metrics.incr ~by:(nb - Array.length miss_idx) m_cache_hit;
  Mbr_obs.Metrics.incr ~by:(Array.length miss_idx) m_cache_miss;
  (* Warm-start hints for the misses: a block whose exact content key
     missed but whose member set matches a previous generation's block
     hands its old cover to the branch-and-bound as the starting
     incumbent (see {!Mbr_ilp.Set_partition.solve}'s [warm]). *)
  let hints =
    if not config.warm_start then Array.make nb None
    else
      Array.init nb (fun i ->
          if results.(i) <> None then None
          else
            match Hashtbl.find_opt cache.by_members (members_key blocks.(i)) with
            | None -> None
            | Some r ->
              Some
                (List.map
                   (fun (c : Candidate.t) ->
                     (c.Candidate.member_cids, c.Candidate.target_bits))
                   r.chosen))
  in
  let solve i =
    solve_block ~block_id:i ~mode ?cancel ?warm_hint:hints.(i) config graph
      ~lib ~blocker_index ~block:blocks.(i)
  in
  let solved =
    if config.jobs <= 1 then Array.map solve miss_idx
    else
      let miss_blocks = Array.map (fun i -> blocks.(i)) miss_idx in
      Pool.map_array ~jobs:config.jobs
        ~order:(schedule_order graph miss_blocks)
        solve miss_idx
  in
  Array.iteri (fun k i -> results.(i) <- Some solved.(k)) miss_idx;
  let results =
    Array.map (function Some r -> r | None -> assert false) results
  in
  (* Generational eviction: the next table holds exactly this run's
     blocks, so results for regions the design has since drifted away
     from do not accumulate across a long session. A cancelled run
     skips the swap entirely: its incumbents are time-dependent (where
     the token tripped), and a cached entry must mean "the
     deterministic result at this key's node limit" — so the previous
     generation stays, and the next uncancelled run repairs coverage. *)
  let tripped =
    match cancel with Some t -> Mbr_util.Cancel.cancelled t | None -> false
  in
  if not tripped then begin
    let next = Hashtbl.create (max 64 nb) in
    Array.iteri (fun i key -> Hashtbl.replace next key results.(i)) keys;
    cache.table <- next;
    let next_bm = Hashtbl.create (max 64 nb) in
    Array.iteri
      (fun i block -> Hashtbl.replace next_bm (members_key block) results.(i))
      blocks;
    cache.by_members <- next_bm
  end;
  ( reduce ~mode results,
    {
      blocks_resolved = Array.length miss_idx;
      blocks_reused = nb - Array.length miss_idx;
    } )
