module Ugraph = Mbr_graph.Ugraph
module Kpart = Mbr_graph.Kpart
module Sp = Mbr_ilp.Set_partition

type config = {
  candidate : Candidate.config;
  partition_bound : int;
  node_limit : int;
}

let default_config =
  { candidate = Candidate.default_config; partition_bound = 30; node_limit = 300_000 }

type selection = {
  merges : Candidate.t list;
  kept : int list;
  cost : float;
  n_blocks : int;
  n_candidates : int;
  all_optimal : bool;
}

let solve_block_ilp cfg block cands =
  (* element ids = positions of nodes within the block *)
  let pos = Hashtbl.create 32 in
  List.iteri (fun k v -> Hashtbl.replace pos v k) block;
  let problem =
    {
      Sp.n_elems = List.length block;
      candidates =
        Array.of_list
          (List.map
             (fun (c : Candidate.t) ->
               {
                 Sp.weight = c.Candidate.weight;
                 elems = List.map (Hashtbl.find pos) c.Candidate.members;
               })
             cands);
    }
  in
  let result = Sp.solve ~node_limit:cfg.node_limit problem in
  let cand_arr = Array.of_list cands in
  match result.Sp.status with
  | Sp.Infeasible ->
    (* cannot happen: singletons cover everything; keep all as-is *)
    (List.map (fun v -> Candidate.{
         members = [ v ];
         member_cids = [];
         bits = 0;
         target_bits = 0;
         incomplete = false;
         weight = 1.0;
         region = Mbr_geom.Rect.make ~lx:0. ~ly:0. ~hx:0. ~hy:0.;
         func_class = "";
       }) block
     |> fun keeps -> (keeps, float_of_int (List.length block), false))
  | Sp.Optimal | Sp.Feasible ->
    ( List.map (fun i -> cand_arr.(i)) result.Sp.chosen,
      result.Sp.cost,
      result.Sp.status = Sp.Optimal )

(* Greedy weighted set-partitioning on the same candidate set as the
   ILP: repeatedly commit the disjoint candidate with the best
   weight-per-register share. This is the heuristic allocator Fig. 6
   compares the ILP against — same formulation, no global optimization. *)
let solve_block_share block cands =
  let order =
    List.sort
      (fun (a : Candidate.t) (b : Candidate.t) ->
        compare
          (a.Candidate.weight /. float_of_int (List.length a.Candidate.members),
           a.Candidate.weight)
          (b.Candidate.weight /. float_of_int (List.length b.Candidate.members),
           b.Candidate.weight))
      cands
  in
  let taken = Hashtbl.create 32 in
  let chosen =
    List.filter
      (fun (c : Candidate.t) ->
        let free =
          List.for_all (fun v -> not (Hashtbl.mem taken v)) c.Candidate.members
        in
        if free then
          List.iter (fun v -> Hashtbl.replace taken v ()) c.Candidate.members;
        free)
      order
  in
  ignore block;
  let cost =
    List.fold_left (fun acc (c : Candidate.t) -> acc +. c.Candidate.weight) 0.0 chosen
  in
  (* a greedy pick is never a proof of optimality *)
  (chosen, cost, false)

(* The external [8]/[12]-style heuristic: maximal-clique merging on the
   raw compatibility subgraph (see Baseline), converted into the same
   selection shape the ILP path produces. *)
let solve_block_greedy graph lib block =
  let infos = graph.Compat.infos in
  let groups = Baseline.solve_block graph ~block ~lib in
  let taken = Hashtbl.create 32 in
  let to_candidate group =
    List.iter (fun v -> Hashtbl.replace taken v ()) group;
    let bits = List.fold_left (fun acc v -> acc + infos.(v).Compat.bits) 0 group in
    let region =
      match
        Mbr_geom.Rect.inter_all (List.map (fun v -> infos.(v).Compat.feasible) group)
      with
      | Some r -> r
      | None -> infos.(List.nth group 0).Compat.feasible
    in
    {
      Candidate.members = List.sort compare group;
      member_cids = List.map (fun v -> infos.(v).Compat.cid) (List.sort compare group);
      bits;
      target_bits = bits;
      incomplete = false;
      weight = 1.0 /. float_of_int bits;
      region;
      func_class = infos.(List.nth group 0).Compat.func_class;
    }
  in
  let merges = List.map to_candidate groups in
  let singles =
    List.filter_map
      (fun v ->
        if Hashtbl.mem taken v then None
        else
          Some
            {
              Candidate.members = [ v ];
              member_cids = [ infos.(v).Compat.cid ];
              bits = infos.(v).Compat.bits;
              target_bits = infos.(v).Compat.bits;
              incomplete = false;
              weight = 1.0;
              region = infos.(v).Compat.feasible;
              func_class = infos.(v).Compat.func_class;
            })
      block
  in
  let all = merges @ singles in
  let cost =
    List.fold_left (fun acc (c : Candidate.t) -> acc +. c.Candidate.weight) 0.0 all
  in
  (all, cost, false)

let run ?(mode : [ `Ilp | `Greedy_share | `Clique ] = `Ilp)
    ?(config = default_config) graph ~lib ~blocker_index =
  let infos = graph.Compat.infos in
  let position i = infos.(i).Compat.center in
  let blocks =
    Kpart.partition ~bound:config.partition_bound graph.Compat.ugraph ~position
  in
  let merges = ref [] in
  let kept = ref [] in
  let cost = ref 0.0 in
  let n_candidates = ref 0 in
  let all_optimal = ref true in
  List.iter
    (fun block ->
      let chosen, block_cost, opt =
        match mode with
        | `Ilp | `Greedy_share ->
          let cands =
            Candidate.enumerate config.candidate graph ~block ~lib ~blocker_index
          in
          n_candidates := !n_candidates + List.length cands;
          if mode = `Ilp then solve_block_ilp config block cands
          else solve_block_share block cands
        | `Clique -> solve_block_greedy graph lib block
      in
      cost := !cost +. block_cost;
      if not opt then all_optimal := false;
      List.iter
        (fun (c : Candidate.t) ->
          match c.Candidate.members with
          | [ v ] -> kept := v :: !kept
          | _ -> merges := c :: !merges)
        chosen)
    blocks;
  {
    merges = List.rev !merges;
    kept = List.sort compare !kept;
    cost = !cost;
    n_blocks = List.length blocks;
    n_candidates = !n_candidates;
    (* the heuristic modes never prove optimality, even over zero
       blocks *)
    all_optimal =
      (match mode with
      | `Ilp -> !all_optimal
      | `Greedy_share | `Clique -> false);
  }
