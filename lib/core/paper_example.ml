module Point = Mbr_geom.Point
module Rect = Mbr_geom.Rect
module Design = Mbr_netlist.Design
module Types = Mbr_netlist.Types
module Floorplan = Mbr_place.Floorplan
module Placement = Mbr_place.Placement
module Library = Mbr_liberty.Library
module Presets = Mbr_liberty.Presets
module Cell_lib = Mbr_liberty.Cell
module Ugraph = Mbr_graph.Ugraph
module Csr = Mbr_graph.Csr
module Sp = Mbr_ilp.Set_partition

type t = {
  design : Design.t;
  placement : Placement.t;
  library : Library.t;
  graph : Compat.graph;
  blocker_index : Types.cell_id Spatial.t;
  names : string array;
}

let names = [| "A"; "B"; "C"; "D"; "E"; "F" |]

(* Fig. 2 reconstruction: register centers in µm. *)
let centers =
  [|
    Point.make 0.0 6.0 (* A, 1 bit *);
    Point.make 8.0 8.0 (* B, 1 bit *);
    Point.make 8.0 0.0 (* C, 1 bit *);
    Point.make 8.0 4.0 (* D, 1 bit *);
    Point.make 2.0 2.0 (* E, 4 bits *);
    Point.make 12.0 4.0 (* F, 2 bits *);
  |]

let widths = [| 1; 1; 1; 1; 4; 2 |]

(* Fig. 1 edges. *)
let edges =
  [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3); (1, 5); (2, 5); (0, 4); (2, 4) ]

let build () =
  let library = Presets.paper_example () in
  let dsg = Design.create ~name:"paper_example" in
  let core = Rect.make ~lx:(-20.0) ~ly:(-20.0) ~hx:40.0 ~hy:40.0 in
  let fp = Floorplan.make ~core ~row_height:1.2 ~site_width:0.2 in
  let pl = Placement.create fp dsg in
  let clk = Design.add_net ~is_clock:true dsg "clk" in
  let _root = Design.add_clock_root dsg "u_clk" clk in
  (match Design.find_cell dsg "u_clk" with
  | Some id -> Placement.set pl id (Point.make 6.0 (-10.0))
  | None -> ());
  let cids =
    Array.mapi
      (fun i name ->
        let bits = widths.(i) in
        let cell = Library.find library (Printf.sprintf "EX_DFF%d" bits) in
        (* each D is driven by its own input port, each Q loads its own
           output port, placed at the register location so the LP-based
           MBR placement is anchored near Fig. 2 *)
        let d =
          Array.init bits (fun b ->
              let nid = Design.add_net dsg (Printf.sprintf "d_%s_%d" name b) in
              let port =
                Design.add_port dsg (Printf.sprintf "pi_%s_%d" name b) Types.In_port nid
              in
              Placement.set pl port centers.(i);
              Some nid)
        in
        let q =
          Array.init bits (fun b ->
              let nid = Design.add_net dsg (Printf.sprintf "q_%s_%d" name b) in
              let port =
                Design.add_port dsg (Printf.sprintf "po_%s_%d" name b) Types.Out_port nid
              in
              Placement.set pl port centers.(i);
              Some nid)
        in
        let attrs =
          Types.
            {
              lib_cell = cell;
              fixed = false;
              size_only = false;
              scan = None;
              gate_enable = None;
            }
        in
        let conn = Design.simple_conn ~d ~q ~clock:clk in
        let id = Design.add_register dsg name attrs conn in
        let corner =
          Point.make
            (centers.(i).Point.x -. (cell.Cell_lib.width /. 2.0))
            (centers.(i).Point.y -. (cell.Cell_lib.height /. 2.0))
        in
        Placement.set pl id corner;
        id)
      names
  in
  (* reg_infos with generous slacks: the example exercises geometry and
     weights, not timing *)
  let everywhere = Rect.expand core (-1.0) in
  let infos =
    Array.mapi
      (fun i cid ->
        let cell = Library.find library (Printf.sprintf "EX_DFF%d" widths.(i)) in
        Compat.
          {
            cid;
            bits = widths.(i);
            func_class = "dff";
            clock = clk;
            enable = None;
            reset = None;
            scan = None;
            drive_res = cell.Cell_lib.drive_res;
            d_slack = 100.0;
            q_slack = 100.0;
            footprint = Placement.footprint pl cid;
            feasible = everywhere;
            center = centers.(i);
          })
      cids
  in
  let g = Ugraph.create 6 in
  List.iter (fun (a, b) -> Ugraph.add_edge g a b) edges;
  let blocker_index = Spatial.create () in
  Array.iteri (fun i cid -> Spatial.add blocker_index cid centers.(i)) cids;
  {
    design = dsg;
    placement = pl;
    library;
    graph = { Compat.adj = Csr.of_ugraph g; infos };
    blocker_index;
    names;
  }

let node t name =
  let rec find i =
    if i >= Array.length t.names then raise Not_found
    else if t.names.(i) = name then i
    else find (i + 1)
  in
  find 0

let weight_of t member_names =
  let members = List.map (node t) member_names in
  match members with
  | [ _ ] -> 1.0
  | _ ->
    let infos = t.graph.Compat.infos in
    let rects = List.map (fun i -> infos.(i).Compat.footprint) members in
    let polygon = Weight.test_polygon rects in
    let constituents = List.map (fun i -> infos.(i).Compat.cid) members in
    let blockers =
      Weight.count_blockers ~polygon ~constituents ~index:t.blocker_index
    in
    let bits = List.fold_left (fun acc i -> acc + infos.(i).Compat.bits) 0 members in
    Weight.formula ~bits ~blockers

let candidates ?(allow_incomplete = false) ?(incomplete_area_overhead = 0.05) t =
  let cfg =
    {
      Candidate.allow_incomplete;
      incomplete_area_overhead;
      max_per_block = 100_000;
      use_weights = true;
    }
  in
  Candidate.enumerate cfg t.graph ~block:[ 0; 1; 2; 3; 4; 5 ] ~lib:t.library
    ~blocker_index:t.blocker_index

let solve ?allow_incomplete ?incomplete_area_overhead t =
  let cands = candidates ?allow_incomplete ?incomplete_area_overhead t in
  let arr = Array.of_list cands in
  let problem =
    {
      Sp.n_elems = 6;
      candidates =
        Array.map
          (fun (c : Candidate.t) ->
            { Sp.weight = c.Candidate.weight; elems = c.Candidate.members })
          arr;
    }
  in
  let r = Sp.solve problem in
  let groups = List.map (fun i -> arr.(i).Candidate.member_cids) r.Sp.chosen in
  (groups, r.Sp.cost)
